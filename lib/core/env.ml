(* The environment is immutable after construction: every distance and
   risk term is materialised into flat arrays up front, so routing sweeps
   can fan out across domains with nothing but read sharing.

   - [miles] is the dense n x n great-circle matrix (row-major, 0 on the
     diagonal), making [link_miles] a single array read for any pair.
     Above [dense_threshold] nodes the matrix is skipped entirely
     ([miles] is empty): per-arc miles are computed per undirected edge
     and mirrored through the reverse-CSR mate, bit-identical to the
     dense fill, and [link_miles] falls back to on-the-fly great-circle
     trigonometry — that is what makes 10k-50k-PoP continental
     environments buildable (the matrix alone would be gigabytes).
   - [arc_off]/[arc_tgt] is the graph in CSR form ([Graph.to_csr]);
     [arc_miles]/[arc_risk] carry the per-arc distance and target-node
     risk, so the Dijkstra relaxation weighs arc [k] as
     [arc_miles.(k) +. kappa *. arc_risk.(k)] — no hashing, no closure
     over coordinates, no trigonometry. [arc_mate] pairs each arc with
     its reverse, which is what lets [patch] enumerate the in-arcs of a
     changed PoP in O(degree). *)
type t = {
  graph : Rr_graph.Graph.t;
  coords : Rr_geo.Coord.t array;
  params : Params.t;
  impact : float array;
  historical : float array;
  forecast : float array;
  node_risk : float array;
  miles : float array;
  arc_off : int array;
  arc_tgt : int array;
  arc_mate : int array;
  arc_miles : float array;
  arc_risk : float array;
  query : Rr_graph.Query.t;
}

let c_builds = Rr_obs.Counter.make "env.builds"

let c_csr_arcs = Rr_obs.Counter.make "env.csr_arcs"

let c_nodes = Rr_obs.Counter.make "env.nodes"

let h_build = Rr_obs.Histogram.make "env.build_seconds"

let compute_node_risk params historical forecast =
  Array.init (Array.length historical) (fun i ->
      (params.Params.lambda_h *. params.Params.risk_scale *. historical.(i))
      +. (params.Params.lambda_f *. forecast.(i)))

(* Each row u fills cells (u, v) and (v, u) for v > u, so rows write
   disjoint cell sets and the sweep parallelises cleanly. *)
let compute_miles coords =
  let n = Array.length coords in
  let miles = Array.make (n * n) 0.0 in
  Rr_util.Parallel.parallel_for n (fun u ->
      let base = u * n in
      for v = u + 1 to n - 1 do
        let d = Rr_geo.Distance.miles coords.(u) coords.(v) in
        miles.(base + v) <- d;
        miles.((v * n) + u) <- d
      done);
  miles

let dense_threshold = 1024

let compute_arcs graph miles n =
  let arc_off, arc_tgt = Rr_graph.Graph.to_csr graph in
  let arc_mate = Rr_graph.Graph.csr_mates ~off:arc_off ~tgt:arc_tgt in
  let arc_miles = Array.make (Array.length arc_tgt) 0.0 in
  for u = 0 to n - 1 do
    let base = u * n in
    for k = arc_off.(u) to arc_off.(u + 1) - 1 do
      arc_miles.(k) <- miles.(base + arc_tgt.(k))
    done
  done;
  (arc_off, arc_tgt, arc_mate, arc_miles)

(* Sparse twin of [compute_arcs]: per-arc miles straight from the
   coordinates, computed once per undirected edge at its [u < v] side
   and mirrored through the mate — the same single trigonometric
   evaluation the dense fill performs, so the resulting arrays are
   bit-identical to the dense path. *)
let compute_arcs_sparse graph coords n =
  let arc_off, arc_tgt = Rr_graph.Graph.to_csr graph in
  let arc_mate = Rr_graph.Graph.csr_mates ~off:arc_off ~tgt:arc_tgt in
  let arc_miles = Array.make (Array.length arc_tgt) 0.0 in
  for u = 0 to n - 1 do
    for k = arc_off.(u) to arc_off.(u + 1) - 1 do
      let v = arc_tgt.(k) in
      if u < v then begin
        let d = Rr_geo.Distance.miles coords.(u) coords.(v) in
        arc_miles.(k) <- d;
        arc_miles.(arc_mate.(k)) <- d
      end
    done
  done;
  (arc_off, arc_tgt, arc_mate, arc_miles)

let compute_arc_risk node_risk arc_tgt =
  Array.map (fun v -> node_risk.(v)) arc_tgt

let make ?(params = Params.default) ?dense ~graph ~coords ~impact ~historical
    ?forecast () =
  Rr_obs.with_kernel "env.make" (fun () ->
      let tel = Rr_obs.enabled () in
      let t0 = if tel then Rr_obs.Clock.monotonic () else 0.0 in
      Params.validate params;
      let n = Rr_graph.Graph.node_count graph in
      let dense = match dense with Some d -> d | None -> n <= dense_threshold in
      let forecast =
        match forecast with Some f -> f | None -> Array.make n 0.0
      in
      if
        Array.length coords <> n || Array.length impact <> n
        || Array.length historical <> n
        || Array.length forecast <> n
      then invalid_arg "Env.make: array lengths must match the node count";
      let node_risk = compute_node_risk params historical forecast in
      let miles, (arc_off, arc_tgt, arc_mate, arc_miles) =
        if dense then begin
          let miles =
            Rr_obs.with_span "env.miles_matrix" (fun () -> compute_miles coords)
          in
          (miles, compute_arcs graph miles n)
        end
        else ([||], compute_arcs_sparse graph coords n)
      in
      let query =
        Rr_graph.Query.create ~n ~off:arc_off ~tgt:arc_tgt ~miles:arc_miles ()
      in
      if tel then begin
        Rr_obs.Counter.incr c_builds;
        Rr_obs.Counter.add c_nodes n;
        Rr_obs.Counter.add c_csr_arcs (Array.length arc_tgt);
        Rr_obs.Histogram.observe h_build (Rr_obs.Clock.monotonic () -. t0)
      end;
      {
        graph;
        coords;
        params;
        impact;
        historical;
        forecast;
        node_risk;
        miles;
        arc_off;
        arc_tgt;
        arc_mate;
        arc_miles;
        arc_risk = compute_arc_risk node_risk arc_tgt;
        query;
      })

let forecast_of_advisory params coords advisory =
  Array.map
    (fun coord ->
      Rr_forecast.Riskfield.risk_at
        ~rho_tropical:params.Params.rho_tropical
        ~rho_hurricane:params.Params.rho_hurricane advisory coord)
    coords

let of_net ?(params = Params.default) ?riskmap ?impact ?advisory
    (net : Rr_topology.Net.t) =
  Rr_obs.with_kernel "env.of_net" (fun () ->
      let riskmap =
        match riskmap with Some r -> r | None -> Rr_disaster.Riskmap.shared ()
      in
      let coords =
        Array.map (fun (p : Rr_topology.Pop.t) -> p.Rr_topology.Pop.coord)
          net.Rr_topology.Net.pops
      in
      let impact =
        match impact with
        | Some i -> i
        | None -> Rr_census.Service.shared_fractions net
      in
      let historical = Rr_disaster.Riskmap.pop_risks riskmap net in
      let forecast =
        Option.map (forecast_of_advisory params coords) advisory
      in
      make ~params ~graph:net.Rr_topology.Net.graph ~coords ~impact ~historical
        ?forecast ())

(* Risk refreshes (new forecast tick, new params) recompute only the
   O(n + arcs) risk vectors; the distance matrix and CSR layout are
   shared with the parent environment. *)
let with_node_risk t node_risk =
  { t with node_risk; arc_risk = compute_arc_risk node_risk t.arc_tgt }

let with_forecast t forecast =
  if Array.length forecast <> Array.length t.forecast then
    invalid_arg "Env.with_forecast: length mismatch";
  let t = with_node_risk t (compute_node_risk t.params t.historical forecast) in
  { t with forecast }

let with_advisory t advisory =
  match advisory with
  | None -> with_forecast t (Array.make (Array.length t.forecast) 0.0)
  | Some adv -> with_forecast t (forecast_of_advisory t.params t.coords adv)

let with_params t params =
  Params.validate params;
  let t = with_node_risk t (compute_node_risk params t.historical t.forecast) in
  { t with params }

let with_graph t graph =
  let n = Array.length t.coords in
  if Rr_graph.Graph.node_count graph <> n then
    invalid_arg "Env.with_graph: node-count mismatch";
  let arc_off, arc_tgt, arc_mate, arc_miles =
    if Array.length t.miles > 0 then compute_arcs graph t.miles n
    else compute_arcs_sparse graph t.coords n
  in
  {
    t with
    graph;
    arc_off;
    arc_tgt;
    arc_mate;
    arc_miles;
    arc_risk = compute_arc_risk t.node_risk arc_tgt;
    query = Rr_graph.Query.create ~n ~off:arc_off ~tgt:arc_tgt ~miles:arc_miles ();
  }

(* --- Sparse advisory-tick patching ----------------------------------

   [patch] re-derives the risk vectors for a sparse forecast delta
   without touching geometry: the O(n) forecast/node-risk copies plus
   O(degree) arc-risk writes per changed PoP replace a full [of_net]
   rebuild. The result is bit-identical to [with_forecast] on the
   patched field (CI-gated) because the changed entries are computed
   with exactly the [compute_node_risk] expression and [arc_risk]
   mirrors [node_risk] of the arc target either way. *)

type patched = {
  env : t;
  changed_pops : int array;
  patched_arcs : (int * int) array;
      (* (arc index, arc source): every arc whose target's risk changed *)
}

let patch t ~indices ~values =
  let n = Array.length t.coords in
  let m = Array.length indices in
  if Array.length values <> m then
    invalid_arg "Env.patch: indices/values length mismatch";
  Array.iteri
    (fun j i ->
      if i < 0 || i >= n then invalid_arg "Env.patch: index out of range";
      if j > 0 && indices.(j - 1) >= i then
        invalid_arg "Env.patch: indices must be strictly increasing")
    indices;
  let materially_changed =
    let changed = ref false in
    Array.iteri
      (fun j i ->
        if
          Int64.bits_of_float values.(j)
          <> Int64.bits_of_float t.forecast.(i)
        then changed := true)
      indices;
    !changed
  in
  if not materially_changed then
    (* The delta is a no-op bitwise: the parent env IS the patched env. *)
    { env = t; changed_pops = [||]; patched_arcs = [||] }
  else begin
    let forecast = Array.copy t.forecast in
    let node_risk = Array.copy t.node_risk in
    let arc_risk = Array.copy t.arc_risk in
    let changed = ref [] and arcs = ref [] in
    Array.iteri
      (fun j i ->
        let v = values.(j) in
        forecast.(i) <- v;
        let nr =
          (t.params.Params.lambda_h *. t.params.Params.risk_scale
         *. t.historical.(i))
          +. (t.params.Params.lambda_f *. v)
        in
        if Int64.bits_of_float nr <> Int64.bits_of_float node_risk.(i) then begin
          node_risk.(i) <- nr;
          changed := i :: !changed;
          (* Arcs into [i] are the mates of [i]'s out-arcs. *)
          for k = t.arc_off.(i) to t.arc_off.(i + 1) - 1 do
            let into = t.arc_mate.(k) in
            arc_risk.(into) <- nr;
            arcs := (into, t.arc_tgt.(k)) :: !arcs
          done
        end)
      indices;
    {
      env = { t with forecast; node_risk; arc_risk };
      changed_pops = Array.of_list (List.rev !changed);
      patched_arcs = Array.of_list (List.rev !arcs);
    }
  end

let graph t = t.graph

let coords t = t.coords

let params t = t.params

let impact t = t.impact

let historical t = t.historical

let forecast t = t.forecast

let node_risk t v = t.node_risk.(v)

let node_count t = Array.length t.coords

let dense t = Array.length t.miles > 0

(* The sparse fallback evaluates the great-circle distance with the
   lower-numbered endpoint first — the exact call the dense fill makes
   for cell (u, v), so both representations agree bitwise. *)
let link_miles t u v =
  if dense t then t.miles.((u * Array.length t.coords) + v)
  else if u = v then 0.0
  else if u < v then Rr_geo.Distance.miles t.coords.(u) t.coords.(v)
  else Rr_geo.Distance.miles t.coords.(v) t.coords.(u)

let arc_off t = t.arc_off

let arc_tgt t = t.arc_tgt

let arc_mate t = t.arc_mate

let arc_miles t = t.arc_miles

let arc_risk t = t.arc_risk

let arc_count t = Array.length t.arc_tgt

let kappa t i j = t.impact.(i) +. t.impact.(j)

let mean_kappa t =
  let n = float_of_int (Array.length t.impact) in
  2.0 *. Rr_util.Arrayx.fsum t.impact /. n

let edge_weight t ~kappa u v = link_miles t u v +. (kappa *. t.node_risk.(v))

let distance_weight t u v = link_miles t u v

let query t = t.query
