(** Availability accounting: turning strike statistics into "nines".

    The paper's introduction motivates everything with the five-nines
    SLA (99.999% availability, ~26 seconds of downtime per 30 days).
    This module closes the loop: combining the disaster-strike rate
    implied by the historical catalogue (events per year over 1970-2010)
    with a mean-time-to-repair, it converts the Monte Carlo hit
    probabilities of {!Outagesim} into expected annual downtime and
    achieved availability per routing posture. *)

type result = {
  pairs : int;
  events_per_year : float;   (** strike rate implied by the catalogue *)
  mttr_hours : float;
  shortest : float;          (** availability with static shortest paths *)
  riskroute : float;         (** availability with static RiskRoute paths *)
  reactive : float;          (** availability with reactive reconvergence *)
}

val nines : float -> float
(** [nines 0.99999 = 5.0]; [infinity] for perfect availability. *)

val downtime_minutes_per_year : float -> float
(** Annual downtime implied by an availability figure. *)

val run :
  ?rng:Rr_util.Prng.t -> ?samples:int -> ?pair_cap:int ->
  ?mttr_hours:float -> ?radius_miles:float -> ?kind:Rr_disaster.Event.kind ->
  Env.t -> result
(** Monte Carlo estimate (defaults: 400 strike samples, 150 pairs, 12 h
    MTTR, 80-mile damage radius, hurricane strikes). Expected downtime of
    a pair is [rate * P(strike takes its path down) * MTTR]; endpoint
    failures count against every posture. *)
