(** Per-network service fractions [c_i] (Sec. 5.1).

    For a Tier-1 network the whole CONUS population is assigned across
    its PoPs; for a geographically constrained regional network only the
    population of the states where it has infrastructure is considered
    (per the paper). *)

val fractions : Rr_topology.Net.t -> Block.t array -> float array
(** [fractions net blocks] is [c_i] per PoP id, summing to 1. *)

val shared_fractions : Rr_topology.Net.t -> float array
(** {!fractions} against the memoised {!Synthetic.shared} dataset, with
    per-network memoisation (keyed by network name) — the form used by
    the experiments. *)
