type t = {
  peering : Rr_topology.Peering.t;
  threshold_miles : float;
  offsets : int array;
  graph : Rr_graph.Graph.t;
  coords : Rr_geo.Coord.t array;
  node_net : int array;
  peering_links : int;
}

let merge ?(threshold_miles = Rr_topology.Colocation.default_threshold_miles)
    (peering : Rr_topology.Peering.t) =
  let nets = peering.Rr_topology.Peering.nets in
  let count = Array.length nets in
  let offsets = Array.make count 0 in
  let total = ref 0 in
  Array.iteri
    (fun i net ->
      offsets.(i) <- !total;
      total := !total + Rr_topology.Net.pop_count net)
    nets;
  let n = !total in
  let coords = Array.make n (Rr_geo.Coord.make ~lat:0.0 ~lon:0.0) in
  let node_net = Array.make n 0 in
  let graph = Rr_graph.Graph.create n in
  Array.iteri
    (fun i net ->
      Array.iter
        (fun (p : Rr_topology.Pop.t) ->
          let id = offsets.(i) + p.Rr_topology.Pop.id in
          coords.(id) <- p.Rr_topology.Pop.coord;
          node_net.(id) <- i)
        net.Rr_topology.Net.pops;
      List.iter
        (fun (u, v) ->
          Rr_graph.Graph.add_edge graph (offsets.(i) + u) (offsets.(i) + v))
        (Rr_graph.Graph.edges net.Rr_topology.Net.graph))
    nets;
  let peering_links = ref 0 in
  List.iter
    (fun (a, b) ->
      let pairs = Rr_topology.Colocation.pairs ~threshold_miles nets.(a) nets.(b) in
      List.iter
        (fun (i, j) ->
          let u = offsets.(a) + i and v = offsets.(b) + j in
          if not (Rr_graph.Graph.has_edge graph u v) then begin
            Rr_graph.Graph.add_edge graph u v;
            incr peering_links
          end)
        pairs)
    peering.Rr_topology.Peering.edges;
  {
    peering;
    threshold_miles;
    offsets;
    graph;
    coords;
    node_net;
    peering_links = !peering_links;
  }

let peering t = t.peering

let graph t = t.graph

let node_count t = Array.length t.coords

let node_id t ~net ~pop = t.offsets.(net) + pop

let owner t node = t.node_net.(node)

let net_nodes t i =
  let size = Rr_topology.Net.pop_count t.peering.Rr_topology.Peering.nets.(i) in
  Array.init size (fun pop -> t.offsets.(i) + pop)

let regional_nodes t =
  let nets = t.peering.Rr_topology.Peering.nets in
  let acc = ref [] in
  Array.iteri
    (fun i net ->
      match net.Rr_topology.Net.tier with
      | Rr_topology.Net.Regional ->
        Array.iter (fun node -> acc := node :: !acc) (net_nodes t i)
      | Rr_topology.Net.Tier1 -> ())
    nets;
  Array.of_list (List.rev !acc)

let peering_link_count t = t.peering_links

let with_extra_peering t ~net_a ~net_b =
  let nets = t.peering.Rr_topology.Peering.nets in
  let graph = Rr_graph.Graph.copy t.graph in
  let added = ref 0 in
  let pairs =
    Rr_topology.Colocation.pairs ~threshold_miles:t.threshold_miles nets.(net_a)
      nets.(net_b)
  in
  List.iter
    (fun (i, j) ->
      let u = t.offsets.(net_a) + i and v = t.offsets.(net_b) + j in
      if not (Rr_graph.Graph.has_edge graph u v) then begin
        Rr_graph.Graph.add_edge graph u v;
        incr added
      end)
    pairs;
  { t with graph; peering_links = t.peering_links + !added }

let env ?(params = Params.default) ?riskmap ?advisory t =
  let riskmap =
    match riskmap with Some r -> r | None -> Rr_disaster.Riskmap.shared ()
  in
  (* Impact is per-network: each PoP carries the fraction of its OWN
     network's served population, halved so that kappa_ij = c_i + c_j
     reads as the endpoints' share of the two networks' combined customer
     base — the natural interdomain normalisation that keeps kappa on the
     intradomain scale. *)
  let impact =
    Array.concat
      (Array.to_list
         (Array.map
            (fun net ->
              Array.map (fun c -> c /. 2.0) (Rr_census.Service.shared_fractions net))
            t.peering.Rr_topology.Peering.nets))
  in
  let historical =
    Array.map (fun c -> Rr_disaster.Riskmap.risk_at riskmap c) t.coords
  in
  let base =
    Env.make ~params ~graph:t.graph ~coords:t.coords ~impact ~historical ()
  in
  match advisory with
  | None -> base
  | Some adv -> Env.with_advisory base (Some adv)

let shared =
  let cache =
    lazy
      (let zoo = Rr_topology.Zoo.shared () in
       let merged = merge zoo.Rr_topology.Zoo.peering in
       (merged, env merged))
  in
  fun () -> Lazy.force cache
