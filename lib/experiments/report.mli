(** Registry of every reproduced table and figure.

    The bench harness and the CLI's [report] subcommand both drive
    experiments through this registry. *)

type experiment = {
  id : string;          (** e.g. ["table2"], ["fig12"] *)
  title : string;
  run : Rr_engine.Context.t -> Format.formatter -> unit;
}

val all : experiment list
(** In paper order: table1-3, fig1-13, then the ablation/extension
    studies ([abl-*]). *)

val find : string -> experiment option
(** Case-insensitive id lookup. *)

val ids : unit -> string list

val run_timed : experiment -> Rr_engine.Context.t -> Format.formatter -> unit
(** Run one experiment under a ["report.<id>"] telemetry span, so engine
    counters and nested spans recorded during the run attribute to it. *)

val run_all : Rr_engine.Context.t -> Format.formatter -> unit
(** Run everything against one shared context, separated by headers,
    with per-experiment wall-clock timing lines. Sharing the context is
    what lets later experiments reuse environments and trees built by
    earlier ones ([engine.cache.*] counters record the traffic). *)
