open Rr_util

type tree = { dist : float array; parent : int array }

(* Shared core: runs Dijkstra from [src]; stops early when [stop_at]
   (if any) is settled. *)
let run g ~weight ~src ~stop_at =
  let n = Graph.node_count g in
  if src < 0 || src >= n then invalid_arg "Dijkstra: source out of range";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create ~capacity:(max 16 n) () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let finished = ref false in
  while (not !finished) && not (Heap.is_empty heap) do
    match Heap.pop_min heap with
    | None -> finished := true
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        if stop_at = Some u then finished := true
        else
          Graph.iter_neighbors g u (fun v ->
              if not settled.(v) then begin
                let w = weight u v in
                if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
                let nd = d +. w in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  parent.(v) <- u;
                  Heap.push heap nd v
                end
              end)
      end
  done;
  { dist; parent }

let single_source g ~weight ~src = run g ~weight ~src ~stop_at:None

let path_of_tree tree ~src ~dst =
  if tree.dist.(dst) = infinity then None
  else begin
    let rec build acc v =
      if v = src then src :: acc
      else begin
        let p = tree.parent.(v) in
        assert (p >= 0);
        build (v :: acc) p
      end
    in
    Some (build [] dst)
  end

let single_pair g ~weight ~src ~dst =
  let n = Graph.node_count g in
  if dst < 0 || dst >= n then invalid_arg "Dijkstra: destination out of range";
  if src = dst then Some (0.0, [ src ])
  else begin
    let tree = run g ~weight ~src ~stop_at:(Some dst) in
    if tree.dist.(dst) = infinity then None
    else
      match path_of_tree tree ~src ~dst with
      | None -> None
      | Some path -> Some (tree.dist.(dst), path)
  end

let path_cost ~weight path =
  let rec loop acc = function
    | a :: (b :: _ as rest) -> loop (acc +. weight a b) rest
    | [ _ ] | [] -> acc
  in
  loop 0.0 path
