(** Multi-objective routing: the distance / risk trade-off between two
    PoPs (the paper's Sec. 6.4 / Sec. 8 SLA extension).

    RiskRoute collapses distance and risk into one scalar via lambda; an
    operator negotiating SLAs wants the whole trade-off curve instead:
    every route that cannot be improved in bit-miles without taking more
    risk, and vice versa. *)

type point = {
  path : int list;
  bit_miles : float;
  risk : float;  (** impact-scaled path risk [kappa_ij * sum node_risk] *)
}

val frontier : ?k:int -> Env.t -> src:int -> dst:int -> point list
(** Non-dominated routes, sorted by increasing bit-miles (hence
    decreasing risk). Candidates are drawn from the [k] (default 24)
    shortest paths under each of the distance-only, risk-only and
    combined weights; the true Pareto set is approximated from below.
    Empty when disconnected. *)

val sweep : Env.t -> src:int -> dst:int -> lambdas:float array ->
  (float * Router.route) list
(** The RiskRoute optimum at each historical-risk weight — how the chosen
    route migrates as the operator turns the risk-averseness knob
    (Fig. 7 generalised). Each entry is [(lambda_h, route)]. *)

val knee : point list -> point option
(** The frontier point with the best normalised trade-off (maximum
    distance to the segment joining the frontier's endpoints) — a
    reasonable default pick for an SLA. [None] for frontiers with fewer
    than three points. *)
