(* Tests for the interdomain/operational extensions: valley-free BGP
   policy routing, MRC backup configurations, gravity traffic matrices,
   and availability accounting. *)

open Riskroute

let coord lat lon = Rr_geo.Coord.make ~lat ~lon

let mk_net ?(tier = Rr_topology.Net.Regional) name cities edges =
  let pops =
    Array.of_list
      (List.mapi
         (fun id (city, lat, lon) ->
           Rr_topology.Pop.make ~id ~city ~state:"XX" (coord lat lon))
         cities)
  in
  Rr_topology.Net.make ~name ~tier pops
    (Rr_graph.Graph.of_edges (Array.length pops) edges)

(* Three-AS chain: regional A -- tier1 T -- regional B, where A and B also
   peer directly through a co-located PoP pair. The direct A--B peering is
   valley-free for A<->B traffic; transit THROUGH a regional is not. *)
let triad () =
  let a =
    mk_net "A"
      [ ("Austin", 30.27, -97.74); ("Dallas", 32.78, -96.8) ]
      [ (0, 1) ]
  in
  let t =
    mk_net ~tier:Rr_topology.Net.Tier1 "T"
      [ ("Dallas", 32.78, -96.8); ("Chicago", 41.88, -87.63); ("Denver", 39.74, -104.99) ]
      [ (0, 1); (1, 2); (0, 2) ]
  in
  let b =
    mk_net "B"
      [ ("Chicago", 41.88, -87.63); ("Milwaukee", 43.04, -87.91) ]
      [ (0, 1) ]
  in
  let peering =
    { Rr_topology.Peering.nets = [| t; a; b |]; edges = [ (0, 1); (0, 2); (1, 2) ] }
  in
  let merged = Interdomain.merge peering in
  let n = Interdomain.node_count merged in
  let env =
    Env.make
      ~graph:(Interdomain.graph merged)
      ~coords:
        (Array.init n (fun v ->
             let owner = Interdomain.owner merged v in
             let nets = [| t; a; b |] in
             let offset = v - Interdomain.node_id merged ~net:owner ~pop:0 in
             (Rr_topology.Net.pop nets.(owner) offset).Rr_topology.Pop.coord))
      ~impact:(Array.make n (1.0 /. float_of_int n))
      ~historical:(Array.make n 1e-6)
      ()
  in
  (merged, env)

(* --- Peering relationships --- *)

let test_relationships () =
  let merged, _ = triad () in
  let peering = Interdomain.peering merged in
  Alcotest.(check bool) "regional -> tier1 is c2p" true
    (Rr_topology.Peering.relationship peering 1 0
    = Some Rr_topology.Peering.Customer_to_provider);
  Alcotest.(check bool) "tier1 -> regional is p2c" true
    (Rr_topology.Peering.relationship peering 0 1
    = Some Rr_topology.Peering.Provider_to_customer);
  Alcotest.(check bool) "regional -- regional is p2p" true
    (Rr_topology.Peering.relationship peering 1 2
    = Some Rr_topology.Peering.Peer_to_peer);
  Alcotest.(check bool) "non-peers have no relationship" true
    (let zoo = Rr_topology.Zoo.shared () in
     let p = zoo.Rr_topology.Zoo.peering in
     (* find some non-peering pair among regionals *)
     let non_peer =
       List.find_opt
         (fun (i, j) -> not (Rr_topology.Peering.are_peers p i j))
         (Rr_util.Listx.pairs (Rr_util.Listx.range 7 23))
     in
     match non_peer with
     | Some (i, j) -> Rr_topology.Peering.relationship p i j = None
     | None -> true)

(* --- Bgp --- *)

let test_bgp_route_exists () =
  let merged, env = triad () in
  (* Austin (A) -> Milwaukee (B): A -> T -> B is customer->provider then
     provider->customer: valley-free *)
  let src = Interdomain.node_id merged ~net:1 ~pop:0 in
  let dst = Interdomain.node_id merged ~net:2 ~pop:1 in
  match Bgp.route merged env ~src ~dst with
  | Some route ->
    Alcotest.(check bool) "multi-hop" true (List.length route.Router.path >= 3)
  | None -> Alcotest.fail "valley-free path exists"

let test_bgp_bounds_ordering () =
  let merged, env = triad () in
  let src = Interdomain.node_id merged ~net:1 ~pop:0 in
  let dst = Interdomain.node_id merged ~net:2 ~pop:1 in
  match Bgp.bounds merged env ~src ~dst with
  | Some b ->
    Alcotest.(check bool) "lower <= policy" true (b.Bgp.lower <= b.Bgp.policy +. 1e-6);
    Alcotest.(check bool) "policy finite" true (Float.is_finite b.Bgp.policy)
  | None -> Alcotest.fail "routable"

let test_bgp_no_valley () =
  (* Tier-1 to Tier-1 traffic must not transit a customer: build a case
     where the ONLY physical path dips through a regional. *)
  let t1 =
    mk_net ~tier:Rr_topology.Net.Tier1 "T1" [ ("Dallas", 32.78, -96.8) ] []
  in
  let t2 =
    mk_net ~tier:Rr_topology.Net.Tier1 "T2" [ ("Chicago", 41.88, -87.63) ] []
  in
  let r =
    mk_net "R"
      [ ("Dallas", 32.78, -96.8); ("Chicago", 41.88, -87.63) ]
      [ (0, 1) ]
  in
  (* T1 -- R and R -- T2 peer (provider-customer both ways); T1 and T2 do
     not peer directly. The only path T1 -> T2 descends into customer R
     then climbs back up: a valley. *)
  let peering =
    { Rr_topology.Peering.nets = [| t1; t2; r |]; edges = [ (0, 2); (1, 2) ] }
  in
  let merged = Interdomain.merge peering in
  let n = Interdomain.node_count merged in
  let env =
    Env.make
      ~graph:(Interdomain.graph merged)
      ~coords:
        [| coord 32.78 (-96.8); coord 41.88 (-87.63); coord 32.78 (-96.8); coord 41.88 (-87.63) |]
      ~impact:(Array.make n 0.25)
      ~historical:(Array.make n 1e-6)
      ()
  in
  let src = Interdomain.node_id merged ~net:0 ~pop:0 in
  let dst = Interdomain.node_id merged ~net:1 ~pop:0 in
  (* physically connected ... *)
  Alcotest.(check bool) "physical path exists" true
    (Router.shortest env ~src ~dst <> None);
  (* ... but not valley-free *)
  Alcotest.(check bool) "no valley-free route" true (Bgp.route merged env ~src ~dst = None)

let test_bgp_self_route () =
  let merged, env = triad () in
  let src = Interdomain.node_id merged ~net:1 ~pop:0 in
  match Bgp.route merged env ~src ~dst:src with
  | Some route -> Alcotest.(check (list int)) "trivial" [ src ] route.Router.path
  | None -> Alcotest.fail "self route"

(* --- Mrc --- *)

let ring_env n =
  let graph = Rr_graph.Graph.create n in
  for i = 0 to n - 1 do
    Rr_graph.Graph.add_edge graph i ((i + 1) mod n)
  done;
  Env.make ~graph
    ~coords:(Array.init n (fun i -> coord (30.0 +. float_of_int i) (-100.0)))
    ~impact:(Array.make n (1.0 /. float_of_int n))
    ~historical:(Array.init n (fun i -> if i mod 2 = 0 then 1e-5 else 1e-7))
    ()

let test_mrc_ring_coverage () =
  let env = ring_env 8 in
  let mrc = Mrc.build ~k:4 env in
  (* on a ring, removing any single node keeps the rest connected *)
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 (Mrc.coverage mrc);
  for v = 0 to 7 do
    Alcotest.(check bool) "every node assigned" true (Mrc.config_of_node mrc v <> None)
  done

let test_mrc_recovery_avoids_failure () =
  let env = ring_env 8 in
  let mrc = Mrc.build ~k:4 env in
  for failed = 1 to 6 do
    match Mrc.recovery_route mrc ~failed ~src:0 ~dst:7 with
    | Some route ->
      Alcotest.(check bool) "avoids failed node" false
        (List.mem failed route.Router.path)
    | None ->
      (* a ring minus one interior node still connects 0 and 7 *)
      Alcotest.fail "ring recovery must exist"
  done

let test_mrc_endpoint_failure () =
  let env = ring_env 6 in
  let mrc = Mrc.build ~k:3 env in
  Alcotest.(check bool) "no recovery when the endpoint died" true
    (Mrc.recovery_route mrc ~failed:0 ~src:0 ~dst:3 = None)

let test_mrc_chain_articulation () =
  (* a path graph: every interior node is an articulation point, so no
     configuration can isolate it while keeping survivors connected *)
  let graph = Rr_graph.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let env =
    Env.make ~graph
      ~coords:(Array.init 4 (fun i -> coord (30.0 +. float_of_int i) (-100.0)))
      ~impact:(Array.make 4 0.25)
      ~historical:(Array.make 4 1e-6)
      ()
  in
  let mrc = Mrc.build ~k:3 env in
  (* whatever the grouping, losing the articulation point 1 physically
     separates 0 from 3: recovery must honestly report failure *)
  Alcotest.(check bool) "no recovery through the cut" true
    (Mrc.recovery_route mrc ~failed:1 ~src:0 ~dst:3 = None);
  (* and each configuration's survivors stay connected: a route between
     two survivors of the same side always exists *)
  match Mrc.config_of_node mrc 1 with
  | None -> ()
  | Some config ->
    (match Mrc.route mrc ~config ~src:2 ~dst:3 with
    | Some _ -> ()
    | None -> Alcotest.fail "survivor-side routing must work")

let test_mrc_validation () =
  let env = ring_env 4 in
  Alcotest.check_raises "k < 1" (Invalid_argument "Mrc.build: k < 1") (fun () ->
      ignore (Mrc.build ~k:0 env))

(* --- Traffic --- *)

let square_net () =
  mk_net "Sq"
    [
      ("NYC", 40.71, -74.01); ("Philly", 39.95, -75.17);
      ("Chicago", 41.88, -87.63); ("Denver", 39.74, -104.99);
    ]
    [ (0, 1); (1, 2); (2, 3); (0, 2) ]

let test_traffic_gravity_shape () =
  let net = square_net () in
  let tm =
    Rr_topology.Traffic.gravity ~populations:[| 0.5; 0.2; 0.2; 0.1 |] net
  in
  Alcotest.(check (float 1e-6)) "normalised" 1000.0 (Rr_topology.Traffic.total tm);
  Alcotest.(check (float 1e-12)) "no self traffic" 0.0 (Rr_topology.Traffic.demand tm 1 1);
  (* the NYC-Philly pair: biggest populations and shortest distance *)
  match Rr_topology.Traffic.top_flows tm 1 with
  | [ (i, j, _) ] ->
    Alcotest.(check bool) "NYC-Philly dominates" true
      ((i = 0 && j = 1) || (i = 1 && j = 0))
  | _ -> Alcotest.fail "top flow"

let test_traffic_symmetry () =
  let net = square_net () in
  let tm = Rr_topology.Traffic.gravity ~populations:[| 0.4; 0.3; 0.2; 0.1 |] net in
  for i = 0 to 3 do
    for j = 0 to 3 do
      Alcotest.(check (float 1e-9)) "gravity symmetric"
        (Rr_topology.Traffic.demand tm i j)
        (Rr_topology.Traffic.demand tm j i)
    done
  done

let test_traffic_alpha_effect () =
  let net = square_net () in
  let pops = [| 0.25; 0.25; 0.25; 0.25 |] in
  let near = Rr_topology.Traffic.gravity ~alpha:2.0 ~populations:pops net in
  let flat = Rr_topology.Traffic.gravity ~alpha:0.0 ~populations:pops net in
  (* higher alpha concentrates traffic on short pairs *)
  let share tm = Rr_topology.Traffic.demand tm 0 1 /. Rr_topology.Traffic.total tm in
  Alcotest.(check bool) "alpha concentrates demand locally" true
    (share near > share flat)

let test_traffic_validation () =
  let net = square_net () in
  Alcotest.check_raises "bad populations"
    (Invalid_argument "Traffic.gravity: population length mismatch") (fun () ->
      ignore (Rr_topology.Traffic.gravity ~populations:[| 1.0 |] net))

let test_weighted_ratios () =
  (* weighting a single pair reproduces that pair's ratio *)
  let coords =
    [| coord 29.76 (-95.37); coord 29.95 (-90.07); coord 36.16 (-86.78); coord 30.33 (-81.66) |]
  in
  let graph = Rr_graph.Graph.of_edges 4 [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let env =
    Env.make ~graph ~coords ~impact:[| 0.4; 0.3; 0.1; 0.2 |]
      ~historical:[| 1e-5; 3e-4; 1e-7; 2e-5 |] ()
  in
  let weight i j = if i = 0 && j = 3 then 1.0 else 0.0 in
  let r = Ratios.weighted ~weight env in
  Alcotest.(check int) "single weighted pair" 1 r.Ratios.pairs;
  let rr = Option.get (Router.riskroute env ~src:0 ~dst:3) in
  let sp = Option.get (Router.shortest env ~src:0 ~dst:3) in
  Alcotest.(check (float 1e-9)) "pair ratio"
    (1.0 -. (rr.Router.bit_risk_miles /. sp.Router.bit_risk_miles))
    r.Ratios.risk_reduction

(* --- Availability --- *)

let test_availability_nines () =
  Alcotest.(check (float 1e-9)) "five nines" 5.0 (Availability.nines 0.99999);
  Alcotest.(check bool) "perfect" true (Availability.nines 1.0 = infinity);
  Alcotest.(check (float 1.0)) "five nines downtime ~ 5.3 min/yr" 5.3
    (Availability.downtime_minutes_per_year 0.99999)

let test_availability_ordering () =
  let zoo = Rr_topology.Zoo.shared () in
  let net = Option.get (Rr_topology.Zoo.find zoo "Sprint") in
  let env = Env.of_net net in
  let a = Availability.run ~samples:150 ~pair_cap:80 env in
  Alcotest.(check bool) "riskroute >= shortest" true
    (a.Availability.riskroute >= a.Availability.shortest -. 0.002);
  Alcotest.(check bool) "reactive best" true
    (a.Availability.reactive >= a.Availability.riskroute -. 0.002);
  Alcotest.(check bool) "availabilities in [0,1]" true
    (a.Availability.shortest >= 0.0 && a.Availability.reactive <= 1.0)

let test_availability_mttr_scaling () =
  let zoo = Rr_topology.Zoo.shared () in
  let net = Option.get (Rr_topology.Zoo.find zoo "Globalcenter") in
  let env = Env.of_net net in
  let rng () = Rr_util.Prng.create 6L in
  let short = Availability.run ~rng:(rng ()) ~samples:100 ~pair_cap:40 ~mttr_hours:2.0 env in
  let long = Availability.run ~rng:(rng ()) ~samples:100 ~pair_cap:40 ~mttr_hours:24.0 env in
  Alcotest.(check bool) "longer repairs hurt availability" true
    (long.Availability.shortest <= short.Availability.shortest +. 1e-9)

let () =
  Alcotest.run "routing-extensions"
    [
      ( "relationships",
        [ Alcotest.test_case "triad relationships" `Quick test_relationships ] );
      ( "bgp",
        [
          Alcotest.test_case "route exists" `Quick test_bgp_route_exists;
          Alcotest.test_case "bounds ordering" `Quick test_bgp_bounds_ordering;
          Alcotest.test_case "valley rejected" `Quick test_bgp_no_valley;
          Alcotest.test_case "self route" `Quick test_bgp_self_route;
        ] );
      ( "mrc",
        [
          Alcotest.test_case "ring coverage" `Quick test_mrc_ring_coverage;
          Alcotest.test_case "recovery avoids failure" `Quick test_mrc_recovery_avoids_failure;
          Alcotest.test_case "endpoint failure" `Quick test_mrc_endpoint_failure;
          Alcotest.test_case "chain articulation" `Quick test_mrc_chain_articulation;
          Alcotest.test_case "validation" `Quick test_mrc_validation;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "gravity shape" `Quick test_traffic_gravity_shape;
          Alcotest.test_case "symmetry" `Quick test_traffic_symmetry;
          Alcotest.test_case "alpha effect" `Quick test_traffic_alpha_effect;
          Alcotest.test_case "validation" `Quick test_traffic_validation;
          Alcotest.test_case "weighted ratios" `Quick test_weighted_ratios;
        ] );
      ( "availability",
        [
          Alcotest.test_case "nines" `Quick test_availability_nines;
          Alcotest.test_case "posture ordering" `Slow test_availability_ordering;
          Alcotest.test_case "mttr scaling" `Slow test_availability_mttr_scaling;
        ] );
    ]
