type t = {
  lambda_h : float;
  lambda_f : float;
  risk_scale : float;
  rho_tropical : float;
  rho_hurricane : float;
}

let default =
  {
    lambda_h = 1e5;
    lambda_f = 1e3;
    risk_scale = 3000.0;
    rho_tropical = 50.0;
    rho_hurricane = 100.0;
  }

let validate t =
  if t.lambda_h <= 0.0 then invalid_arg "Params: lambda_h must be positive";
  if t.lambda_f <= 0.0 then invalid_arg "Params: lambda_f must be positive";
  if t.risk_scale <= 0.0 then invalid_arg "Params: risk_scale must be positive";
  if t.rho_tropical < 0.0 || t.rho_hurricane < t.rho_tropical then
    invalid_arg "Params: need 0 <= rho_tropical <= rho_hurricane"

let make ?(lambda_h = default.lambda_h) ?(lambda_f = default.lambda_f)
    ?(risk_scale = default.risk_scale) ?(rho_tropical = default.rho_tropical)
    ?(rho_hurricane = default.rho_hurricane) () =
  let t = { lambda_h; lambda_f; risk_scale; rho_tropical; rho_hurricane } in
  validate t;
  t

let with_lambda_h lambda_h t =
  let t = { t with lambda_h } in
  validate t;
  t

let with_lambda_f lambda_f t =
  let t = { t with lambda_f } in
  validate t;
  t
