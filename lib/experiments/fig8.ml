type point = {
  network : string;
  result : Riskroute.Ratios.result;
}

let compute_uncached ?(pair_cap = 1200) () =
  let merged, env = Riskroute.Interdomain.shared () in
  let peering = Riskroute.Interdomain.peering merged in
  let nets = peering.Rr_topology.Peering.nets in
  let dests = Riskroute.Interdomain.regional_nodes merged in
  List.filter_map
    (fun i ->
      match nets.(i).Rr_topology.Net.tier with
      | Rr_topology.Net.Tier1 -> None
      | Rr_topology.Net.Regional ->
        let sources = Riskroute.Interdomain.net_nodes merged i in
        let result = Riskroute.Ratios.between ~pair_cap env ~sources ~dests in
        Some { network = nets.(i).Rr_topology.Net.name; result })
    (Rr_util.Listx.range 0 (Array.length nets))

let cache : (int, point list) Hashtbl.t = Hashtbl.create 4

let compute ?(pair_cap = 1200) () =
  match Hashtbl.find_opt cache pair_cap with
  | Some points -> points
  | None ->
    let points = compute_uncached ~pair_cap () in
    Hashtbl.add cache pair_cap points;
    points

let run ppf =
  Format.fprintf ppf
    "Fig 8: interdomain RiskRoute — regional networks, lambda_h = 1e5@.";
  Format.fprintf ppf "%-18s %14s %14s %8s@." "Network" "Distance ratio"
    "Risk ratio" "Pairs";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-18s %14.3f %14.3f %8d@." p.network
        p.result.Riskroute.Ratios.distance_increase
        p.result.Riskroute.Ratios.risk_reduction p.result.Riskroute.Ratios.pairs)
    (compute ())
