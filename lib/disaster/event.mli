(** Historical disaster events (Sec. 4.3).

    Five catalogues drive the historical risk surface: three FEMA
    emergency-declaration types and two NOAA archives, 1970-2010. *)

type kind =
  | Fema_hurricane
  | Fema_tornado
  | Fema_storm
  | Noaa_earthquake
  | Noaa_wind

type t = {
  kind : kind;
  coord : Rr_geo.Coord.t;
  year : int;
  month : int;  (** 1-12 *)
}

val all_kinds : kind list
(** In the paper's Table 1 order. *)

val kind_name : kind -> string
(** e.g. ["FEMA Hurricane"]. *)

val paper_count : kind -> int
(** Event count reported in Table 1 (2,805 / 6,437 / 20,623 / 2,267 /
    143,847). *)

val paper_bandwidth : kind -> float
(** Optimal kernel bandwidth reported in Table 1 (71.56 / 59.48 / 24.38 /
    298.82 / 3.59). *)
