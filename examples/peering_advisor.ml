(* Peering advisor: interdomain what-if for a regional ISP.

   For a chosen regional network, evaluate every candidate peer (networks
   co-located with it but not yet peered) and report how much each would
   lower the regional's mean lower-bound bit-risk miles across the merged
   multi-ISP graph (Sec. 6.3, Fig. 11).

   Run with:  dune exec examples/peering_advisor.exe [regional] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "Telepak" in
  let merged, env = Riskroute.Interdomain.shared () in
  let peering = Riskroute.Interdomain.peering merged in
  let nets = peering.Rr_topology.Peering.nets in
  let index =
    match Rr_topology.Peering.index_of peering name with
    | Some i -> i
    | None -> failwith ("unknown network " ^ name)
  in
  (match nets.(index).Rr_topology.Net.tier with
  | Rr_topology.Net.Regional -> ()
  | Rr_topology.Net.Tier1 -> failwith (name ^ " is a Tier-1, pick a regional"));
  Printf.printf "Peering advisor for %s\n" name;
  Printf.printf "current peers:";
  List.iter
    (fun p -> Printf.printf " %s" nets.(p).Rr_topology.Net.name)
    (Rr_topology.Peering.peers peering index);
  print_newline ();
  let candidates = Riskroute.Peer_advisor.candidates_for merged index in
  Printf.printf "co-located non-peers:";
  List.iter (fun c -> Printf.printf " %s" nets.(c).Rr_topology.Net.name) candidates;
  print_newline ();
  match Riskroute.Peer_advisor.recommend_for merged env ~regional:index with
  | None -> print_endline "no candidate peers are co-located with this network"
  | Some r ->
    Printf.printf
      "\nrecommendation: peer with %s\n  mean lower-bound bit-risk %.0f -> %.0f (%.1f%% better)\n"
      r.Riskroute.Peer_advisor.peer r.Riskroute.Peer_advisor.baseline
      r.Riskroute.Peer_advisor.with_peer
      (100.0 *. r.Riskroute.Peer_advisor.improvement)
