(* The telemetry subsystem: sharded-metric merge determinism across pool
   sizes, span nesting (including across the domain pool), the disabled
   mode being a true no-op, and golden exposition formats. *)

open Riskroute
module Parallel = Rr_util.Parallel

let with_domains k f =
  let old = Parallel.domain_count () in
  Parallel.set_domain_count k;
  Fun.protect ~finally:(fun () -> Parallel.set_domain_count old) f

(* Every test that records telemetry runs under this guard so a failure
   cannot leave recording enabled for later tests. *)
let with_telemetry f =
  Rr_obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Rr_obs.set_enabled false) f

let pool_sizes = [ 1; 2; 4 ]

(* --- merge determinism --- *)

let test_counter_merge_deterministic () =
  with_telemetry @@ fun () ->
  let c = Rr_obs.Counter.make "test.obs.counter_merge" in
  List.iter
    (fun k ->
      with_domains k (fun () ->
          Rr_obs.Counter.reset c;
          Parallel.parallel_for 1000 (fun _ -> Rr_obs.Counter.incr c);
          Alcotest.(check int)
            (Printf.sprintf "1000 increments at pool size %d" k)
            1000 (Rr_obs.Counter.value c)))
    pool_sizes

let test_histogram_merge_deterministic () =
  with_telemetry @@ fun () ->
  let h = Rr_obs.Histogram.make "test.obs.hist_merge" in
  let observe_all () =
    Rr_obs.Histogram.reset h;
    (* A fixed multiset of values; which domain observes which must not
       matter for count/min/max/buckets. *)
    Parallel.parallel_for 512 (fun i ->
        Rr_obs.Histogram.observe h (Float.ldexp 1.0 ((i mod 9) - 4)));
    Rr_obs.Histogram.snapshot h
  in
  let snaps = List.map (fun k -> with_domains k observe_all) pool_sizes in
  match snaps with
  | base :: rest ->
    List.iteri
      (fun i s ->
        let k = List.nth pool_sizes (i + 1) in
        Alcotest.(check int) (Printf.sprintf "count at %d domains" k)
          base.Rr_obs.Histogram.count s.Rr_obs.Histogram.count;
        Alcotest.(check (float 0.0)) (Printf.sprintf "min at %d domains" k)
          base.Rr_obs.Histogram.vmin s.Rr_obs.Histogram.vmin;
        Alcotest.(check (float 0.0)) (Printf.sprintf "max at %d domains" k)
          base.Rr_obs.Histogram.vmax s.Rr_obs.Histogram.vmax;
        Alcotest.(check (array int)) (Printf.sprintf "buckets at %d domains" k)
          base.Rr_obs.Histogram.buckets s.Rr_obs.Histogram.buckets)
      rest
  | [] -> ()

(* --- spans --- *)

let test_span_nesting () =
  with_telemetry @@ fun () ->
  let r = Rr_obs.Registry.create () in
  Rr_obs.with_span ~registry:r "outer" (fun () ->
      Rr_obs.with_span ~registry:r "inner" (fun () -> ()));
  match Rr_obs.spans ~registry:r () with
  | [ a; b ] ->
    let outer, inner =
      if a.Rr_obs.sp_name = "outer" then (a, b) else (b, a)
    in
    Alcotest.(check string) "outer name" "outer" outer.Rr_obs.sp_name;
    Alcotest.(check int) "outer is a root span" 0 outer.Rr_obs.sp_parent;
    Alcotest.(check int) "inner parents to outer" outer.Rr_obs.sp_id
      inner.Rr_obs.sp_parent
  | sps -> Alcotest.failf "expected 2 spans, got %d" (List.length sps)

let test_span_pool_attribution () =
  with_telemetry @@ fun () ->
  with_domains 4 @@ fun () ->
  let r = Rr_obs.Registry.create () in
  Rr_obs.with_span ~registry:r "submit" (fun () ->
      Parallel.parallel_for 64 (fun _ ->
          Rr_obs.with_span ~registry:r "task" (fun () -> ())));
  let sps = Rr_obs.spans ~registry:r () in
  let submit =
    List.find (fun sp -> sp.Rr_obs.sp_name = "submit") sps
  in
  let tasks = List.filter (fun sp -> sp.Rr_obs.sp_name = "task") sps in
  Alcotest.(check int) "one span per task body" 64 (List.length tasks);
  List.iter
    (fun sp ->
      Alcotest.(check int) "task span parents to submitting span"
        submit.Rr_obs.sp_id sp.Rr_obs.sp_parent)
    tasks

(* --- disabled mode --- *)

let test_disabled_is_noop () =
  Rr_obs.set_enabled false;
  let r = Rr_obs.Registry.create () in
  let c = Rr_obs.Counter.make ~registry:r "test.obs.off_counter" in
  let g = Rr_obs.Gauge.make ~registry:r "test.obs.off_gauge" in
  let h = Rr_obs.Histogram.make ~registry:r "test.obs.off_hist" in
  Rr_obs.Counter.add c 5;
  Rr_obs.Gauge.set g 9;
  Rr_obs.Histogram.observe h 1.5;
  let v = Rr_obs.with_span ~registry:r "off" (fun () -> 17) in
  Alcotest.(check int) "with_span passes the value through" 17 v;
  Alcotest.(check int) "counter untouched" 0 (Rr_obs.Counter.value c);
  Alcotest.(check int) "gauge untouched" 0 (Rr_obs.Gauge.value g);
  Alcotest.(check int) "histogram untouched" 0
    (Rr_obs.Histogram.snapshot h).Rr_obs.Histogram.count;
  Alcotest.(check int) "no spans recorded" 0
    (List.length (Rr_obs.spans ~registry:r ()))

(* --- golden exposition --- *)

(* A registry with a pinned clock and fixed contents, so both exposition
   formats can be compared byte for byte. *)
let golden_registry () =
  Rr_obs.Clock.set_source (fun () -> 42.0);
  let r = Rr_obs.Registry.create () in
  let c = Rr_obs.Counter.make ~registry:r "alpha.count" in
  let g = Rr_obs.Gauge.make ~registry:r "beta.gauge" in
  let h = Rr_obs.Histogram.make ~registry:r "gamma.seconds" in
  Rr_obs.Counter.add c 7;
  Rr_obs.Gauge.set g 4;
  List.iter (Rr_obs.Histogram.observe h) [ 0.25; 0.5; 2.0 ];
  Rr_obs.set_meta ~registry:r "host" "golden";
  Rr_obs.with_span ~registry:r "root.op" (fun () -> ());
  r

let with_golden f =
  with_telemetry @@ fun () ->
  Fun.protect ~finally:Rr_obs.Clock.reset_source (fun () ->
      f (golden_registry ()))

let golden_json =
  "{\n\
  \  \"schema\": 1,\n\
  \  \"meta\": {\n\
  \    \"host\": \"golden\"\n\
  \  },\n\
  \  \"counters\": {\n\
  \    \"alpha.count\": 7\n\
  \  },\n\
  \  \"gauges\": {\n\
  \    \"beta.gauge\": 4\n\
  \  },\n\
  \  \"histograms\": {\n\
  \    \"gamma.seconds\": {\"count\": 3, \"sum\": 2.75, \"min\": 0.25, \
   \"max\": 2.0, \"buckets\": [[0.25, 1], [0.5, 1], [2.0, 1]]}\n\
  \  },\n\
  \  \"spans\": [\n\
  \    {\"id\": 1, \"parent\": 0, \"name\": \"root.op\", \"start\": 0.0, \
   \"dur\": 0.0}\n\
  \  ]\n\
   }\n"

let golden_prom =
  "# TYPE riskroute_alpha_count counter\n\
   riskroute_alpha_count 7\n\
   # TYPE riskroute_beta_gauge gauge\n\
   riskroute_beta_gauge 4\n\
   # TYPE riskroute_gamma_seconds histogram\n\
   riskroute_gamma_seconds_bucket{le=\"0.25\"} 1\n\
   riskroute_gamma_seconds_bucket{le=\"0.5\"} 2\n\
   riskroute_gamma_seconds_bucket{le=\"2\"} 3\n\
   riskroute_gamma_seconds_bucket{le=\"+Inf\"} 3\n\
   riskroute_gamma_seconds_sum 2.75\n\
   riskroute_gamma_seconds_count 3\n"

let test_golden_json () =
  with_golden (fun r ->
      Alcotest.(check string) "JSON exposition" golden_json
        (Rr_obs.to_json ~registry:r ()))

let test_golden_prometheus () =
  with_golden (fun r ->
      Alcotest.(check string) "Prometheus exposition" golden_prom
        (Rr_obs.to_prometheus ~registry:r ()))

(* --- engine integration --- *)

let coord lat lon = Rr_geo.Coord.make ~lat ~lon

let small_env () =
  let coords =
    [|
      coord 29.76 (-95.37); coord 30.27 (-89.09); coord 29.95 (-90.07);
      coord 30.69 (-88.04); coord 30.33 (-81.66); coord 32.08 (-81.09);
      coord 33.75 (-84.39); coord 35.15 (-90.05);
    |]
  in
  let n = Array.length coords in
  let graph =
    Rr_graph.Graph.of_edges n
      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 7); (0, 7); (2, 6) ]
  in
  let impact = Array.init n (fun i -> 0.01 +. (0.02 *. float_of_int i)) in
  let historical = Array.init n (fun i -> 1e-6 *. float_of_int (i + 1)) in
  let forecast = Array.make n 0.0 in
  Env.make ~graph ~coords ~impact ~historical ~forecast ()

let test_engine_counters_flow () =
  with_telemetry @@ fun () ->
  (* Pool size >= 2: at 1 domain the sweeps take the sequential path,
     which legitimately records no parallel.tasks. *)
  with_domains 2 @@ fun () ->
  let relax = Rr_obs.Counter.make "dijkstra.relaxations" in
  let scored = Rr_obs.Counter.make "augment.candidates_scored" in
  let tasks = Rr_obs.Counter.make "parallel.tasks" in
  let r0 = Rr_obs.Counter.value relax
  and s0 = Rr_obs.Counter.value scored
  and t0 = Rr_obs.Counter.value tasks in
  let env = small_env () in
  ignore (Augment.greedy ~k:1 env);
  Alcotest.(check bool) "dijkstra.relaxations advanced" true
    (Rr_obs.Counter.value relax > r0);
  Alcotest.(check bool) "augment.candidates_scored advanced" true
    (Rr_obs.Counter.value scored > s0);
  Alcotest.(check bool) "parallel.tasks advanced" true
    (Rr_obs.Counter.value tasks > t0)

let test_results_unchanged_by_telemetry () =
  let env = small_env () in
  let compute () =
    let picks =
      List.map
        (fun (p : Augment.pick) -> (p.Augment.u, p.Augment.v, p.Augment.total_after))
        (Augment.greedy ~k:2 env)
    in
    let r = Ratios.intradomain ~pair_cap:40 env in
    (picks, r.Ratios.risk_reduction, r.Ratios.distance_increase)
  in
  Rr_obs.set_enabled false;
  let off = compute () in
  let on = with_telemetry compute in
  Alcotest.(check bool) "telemetry on/off results identical" true (off = on)

let () =
  Alcotest.run "obs"
    [
      ( "merge",
        [
          Alcotest.test_case "counter deterministic across pool sizes" `Quick
            test_counter_merge_deterministic;
          Alcotest.test_case "histogram deterministic across pool sizes" `Quick
            test_histogram_merge_deterministic;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "pool parent attribution" `Quick
            test_span_pool_attribution;
        ] );
      ( "disabled",
        [ Alcotest.test_case "recording is a no-op" `Quick test_disabled_is_noop ] );
      ( "golden",
        [
          Alcotest.test_case "json format" `Quick test_golden_json;
          Alcotest.test_case "prometheus format" `Quick test_golden_prometheus;
        ] );
      ( "integration",
        [
          Alcotest.test_case "engine counters flow" `Quick
            test_engine_counters_flow;
          Alcotest.test_case "results unchanged by telemetry" `Quick
            test_results_unchanged_by_telemetry;
        ] );
    ]
