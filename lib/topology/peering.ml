open Rr_util

type t = { nets : Net.t array; edges : (int * int) list }

let build ~rng ~tier1s ~regionals =
  let nets = Array.of_list (tier1s @ regionals) in
  let nt1 = List.length tier1s in
  let edges = ref [] in
  let add i j =
    let e = (min i j, max i j) in
    if not (List.mem e !edges) then edges := e :: !edges
  in
  (* Tier-1 full mesh. *)
  for i = 0 to nt1 - 1 do
    for j = i + 1 to nt1 - 1 do
      add i j
    done
  done;
  (* Regionals multihome to co-located Tier-1s. *)
  for r = nt1 to Array.length nets - 1 do
    let candidates =
      List.filter_map
        (fun i ->
          let shared = Colocation.shared_cities nets.(r) nets.(i) in
          match shared with [] -> None | _ :: _ -> Some (i, List.length shared))
        (Listx.range 0 nt1)
    in
    let ranked = List.sort (fun (_, a) (_, b) -> compare b a) candidates in
    let how_many = 1 + Prng.int rng 3 in
    List.iteri (fun k (i, _) -> if k < how_many then add r i) ranked
  done;
  { nets; edges = List.sort compare !edges }

let net_count t = Array.length t.nets

let net t i =
  if i < 0 || i >= Array.length t.nets then invalid_arg "Peering.net: out of range";
  t.nets.(i)

let index_of t name =
  let rec loop i =
    if i >= Array.length t.nets then None
    else if String.equal t.nets.(i).Net.name name then Some i
    else loop (i + 1)
  in
  loop 0

let peers t i =
  List.filter_map
    (fun (a, b) -> if a = i then Some b else if b = i then Some a else None)
    t.edges

let are_peers t i j =
  let e = (min i j, max i j) in
  List.mem e t.edges

let degree t i = List.length (peers t i)

type relationship =
  | Customer_to_provider
  | Provider_to_customer
  | Peer_to_peer

let relationship t i j =
  if not (are_peers t i j) then None
  else begin
    let tier k = t.nets.(k).Net.tier in
    match (tier i, tier j) with
    | Net.Tier1, Net.Tier1 | Net.Regional, Net.Regional -> Some Peer_to_peer
    | Net.Regional, Net.Tier1 -> Some Customer_to_provider
    | Net.Tier1, Net.Regional -> Some Provider_to_customer
  end

let pp ppf t =
  List.iter
    (fun (a, b) ->
      Format.fprintf ppf "%s -- %s@." t.nets.(a).Net.name t.nets.(b).Net.name)
    t.edges
