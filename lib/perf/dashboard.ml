(* One self-contained HTML page per JSON artifact: series dumps get
   stat tiles + a sparkline per metric, bench files get metadata tiles
   + a horizontal p50 bar chart. No external assets — the page must
   open from a CI artifact tarball or an email attachment. *)

let html_escape s =
  let b = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Thousands grouping for the digits of a plain integer string. *)
let commas s =
  let n = String.length s in
  let b = Buffer.create (n + n / 3) in
  String.iteri
    (fun i c ->
      if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char b ',';
      Buffer.add_char b c)
    s;
  Buffer.contents b

(* Auto-compact figures: 1,284 / 12.9K / 4.2M — stat-tile style. *)
let compact v =
  if Float.is_nan v then "-"
  else
    let a = Float.abs v in
    if a >= 1e9 then Printf.sprintf "%.1fG" (v /. 1e9)
    else if a >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
    else if a >= 1e4 then Printf.sprintf "%.1fK" (v /. 1e3)
    else if Float.is_integer v then commas (Printf.sprintf "%.0f" v)
    else if a >= 1.0 then Printf.sprintf "%.2f" v
    else if a = 0.0 then "0"
    else Printf.sprintf "%.3g" v

let fmt_ns v =
  if Float.is_nan v then "-"
  else if v >= 1e9 then Printf.sprintf "%.2f s" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.2f ms" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.2f us" (v /. 1e3)
  else Printf.sprintf "%.0f ns" v

(* Histogram windows record seconds; everything else is unitless. *)
let fmt_seconds v = fmt_ns (v *. 1e9)

(* Minimal JSON string literal for values we generate ourselves
   (time captions, formatted figures) — no exotic characters. *)
let jstr s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Sparkline: a 560x80 inline SVG — 2px round-capped line, 10%-opacity
   area wash, end dot with a 2px surface ring, plus hidden crosshair +
   hover dot driven by the shared script. [None] values (a histogram
   window with no observations) break the line into segments. *)

let spark_w = 560.
let spark_h = 80.
let pad_l = 8.
let pad_r = 14.
let pad_t = 10.
let pad_b = 12.

let render_spark b ~title ~labels ~values ~fmt =
  let n = Array.length values in
  if n = 0 then ()
  else begin
    let finite =
      Array.to_list values
      |> List.filter_map (fun v -> v)
      |> List.filter (fun v -> Float.is_finite v)
    in
    let vmin = List.fold_left Float.min infinity finite in
    let vmax = List.fold_left Float.max neg_infinity finite in
    let x i =
      if n = 1 then (pad_l +. (spark_w -. pad_l -. pad_r) /. 2.)
      else
        pad_l
        +. float_of_int i *. (spark_w -. pad_l -. pad_r) /. float_of_int (n - 1)
    in
    let y v =
      let span = vmax -. vmin in
      if span <= 0.0 then (pad_t +. (spark_h -. pad_t -. pad_b) /. 2.)
      else
        spark_h -. pad_b
        -. ((v -. vmin) /. span *. (spark_h -. pad_t -. pad_b))
    in
    (* Contiguous runs of observed points; the line and its wash are
       drawn per run so gaps stay visibly empty. *)
    let runs = ref [] and cur = ref [] in
    Array.iteri
      (fun i v ->
        match v with
        | Some v when Float.is_finite v -> cur := (x i, y v) :: !cur
        | _ ->
          if !cur <> [] then runs := List.rev !cur :: !runs;
          cur := [])
      values;
    if !cur <> [] then runs := List.rev !cur :: !runs;
    let runs = List.rev !runs in
    let baseline = spark_h -. pad_b in
    Buffer.add_string b
      (Printf.sprintf
         "<figure class=\"card\"><figcaption>%s</figcaption><svg \
          class=\"spark\" viewBox=\"0 0 %.0f %.0f\" \
          preserveAspectRatio=\"none\" data-hx=\"[%s]\" data-hy=\"[%s]\" \
          data-lx=\"[%s]\" data-lv=\"[%s]\">"
         (html_escape title) spark_w spark_h
         (String.concat ","
            (List.init n (fun i -> Printf.sprintf "%.1f" (x i))))
         (String.concat ","
            (List.init n (fun i ->
                 match values.(i) with
                 | Some v when Float.is_finite v -> Printf.sprintf "%.1f" (y v)
                 | _ -> "null")))
         (html_escape (String.concat "," (List.map jstr labels)))
         (html_escape
            (String.concat ","
               (List.init n (fun i ->
                    jstr
                      (match values.(i) with
                      | Some v -> fmt v
                      | None -> "-"))))));
    (* Recessive hairline baseline. *)
    Buffer.add_string b
      (Printf.sprintf
         "<line class=\"axis\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" \
          y2=\"%.1f\"/>"
         pad_l baseline (spark_w -. pad_r) baseline);
    List.iter
      (fun run ->
        match run with
        | [] -> ()
        | [ (px, py) ] ->
          Buffer.add_string b
            (Printf.sprintf
               "<circle class=\"pt\" cx=\"%.1f\" cy=\"%.1f\" r=\"4\"/>" px py)
        | (x0, _) :: _ ->
          let path =
            String.concat " "
              (List.mapi
                 (fun i (px, py) ->
                   Printf.sprintf "%s%.1f %.1f" (if i = 0 then "M" else "L")
                     px py)
                 run)
          in
          let lx, _ = List.nth run (List.length run - 1) in
          Buffer.add_string b
            (Printf.sprintf
               "<path class=\"wash\" d=\"%s L%.1f %.1f L%.1f %.1f Z\"/>" path
               lx baseline x0 baseline);
          Buffer.add_string b
            (Printf.sprintf "<path class=\"line\" d=\"%s\"/>" path))
      runs;
    (* End dot on the most recent observation. *)
    let last = ref None in
    Array.iteri
      (fun i v ->
        match v with
        | Some v when Float.is_finite v -> last := Some (x i, y v)
        | _ -> ())
      values;
    (match !last with
    | Some (px, py) ->
      Buffer.add_string b
        (Printf.sprintf
           "<circle class=\"pt\" cx=\"%.1f\" cy=\"%.1f\" r=\"4\"/>" px py)
    | None ->
      Buffer.add_string b
        (Printf.sprintf
           "<text class=\"empty\" x=\"%.1f\" y=\"%.1f\">no \
            observations</text>"
           (spark_w /. 2.) (spark_h /. 2.)));
    Buffer.add_string b
      (Printf.sprintf
         "<line class=\"cross\" style=\"display:none\" x1=\"0\" \
          y1=\"%.1f\" x2=\"0\" y2=\"%.1f\"/><circle class=\"hdot\" \
          style=\"display:none\" r=\"4\"/>"
         pad_t baseline);
    Buffer.add_string b "</svg></figure>\n"
  end

(* ------------------------------------------------------------------ *)
(* Page chrome: palette tokens as CSS custom properties, light theme
   default, dark theme via media query and explicit [data-theme]
   scopes. Series marks wear the accent; text wears text tokens. *)

let css =
  {|:root,[data-theme="light"]{--surface:#fcfcfb;--ink:#0b0b0b;--ink2:#52514e;--muted:#898781;--grid:#e1e0d9;--base:#c3c2b7;--accent:#2a78d6;--wash:rgba(42,120,214,.10)}
@media (prefers-color-scheme: dark){:root{--surface:#1a1a19;--ink:#ffffff;--ink2:#c3c2b7;--muted:#898781;--grid:#2c2c2a;--base:#383835;--accent:#3987e5;--wash:rgba(57,135,229,.12)}}
[data-theme="dark"]{--surface:#1a1a19;--ink:#ffffff;--ink2:#c3c2b7;--muted:#898781;--grid:#2c2c2a;--base:#383835;--accent:#3987e5;--wash:rgba(57,135,229,.12)}
*{box-sizing:border-box}
body{margin:0;padding:24px;background:var(--surface);color:var(--ink);font:14px/1.45 system-ui,-apple-system,"Segoe UI",Roboto,sans-serif}
h1{font-size:18px;font-weight:600;margin:0 0 2px}
.sub{color:var(--ink2);margin:0 0 20px;font-size:13px}
.hero{margin:0 0 18px}
.hero .v{font-size:48px;font-weight:600;line-height:1.1}
.hero .l{color:var(--ink2);font-size:13px}
.tiles{display:flex;flex-wrap:wrap;gap:12px;margin:0 0 22px}
.tile{border:1px solid var(--grid);border-radius:8px;padding:10px 14px;min-width:130px}
.tile .l{color:var(--ink2);font-size:12px}
.tile .v{font-size:20px;font-weight:600;margin-top:2px}
.grid{display:grid;grid-template-columns:repeat(auto-fill,minmax(360px,1fr));gap:14px}
.card{border:1px solid var(--grid);border-radius:8px;padding:12px 14px;margin:0}
.card figcaption{color:var(--ink2);font-size:12px;margin-bottom:6px}
svg.spark{display:block;width:100%;height:auto}
svg .line{fill:none;stroke:var(--accent);stroke-width:2;stroke-linecap:round;stroke-linejoin:round}
svg .wash{fill:var(--wash);stroke:none}
svg .pt{fill:var(--accent);stroke:var(--surface);stroke-width:2}
svg .axis{stroke:var(--base);stroke-width:1}
svg .gl{stroke:var(--grid);stroke-width:1}
svg .cross{stroke:var(--base);stroke-width:1}
svg .hdot{fill:var(--accent);stroke:var(--surface);stroke-width:2}
svg .empty{fill:var(--muted);font-size:12px;text-anchor:middle}
svg.bars{display:block;width:100%;height:auto}
svg.bars .bar path{fill:var(--accent)}
svg.bars .name{fill:var(--ink2);font-size:12px}
svg.bars .val{fill:var(--ink);font-size:12px;font-variant-numeric:tabular-nums}
details{margin:24px 0 0}
summary{cursor:pointer;color:var(--ink2);font-size:13px}
table{border-collapse:collapse;margin-top:10px;font-size:13px}
th,td{text-align:left;padding:4px 14px 4px 0;border-bottom:1px solid var(--grid)}
td.n,th.n{text-align:right;font-variant-numeric:tabular-nums}
th{color:var(--ink2);font-weight:500}
.tip{position:absolute;pointer-events:none;background:var(--ink);color:var(--surface);border-radius:6px;padding:4px 9px;font-size:12px;z-index:9}
.tip span{opacity:.75}
.foot{margin-top:26px;color:var(--muted);font-size:12px}
|}

let script =
  {|(function(){
var tip=document.createElement('div');tip.className='tip';tip.style.display='none';
document.body.appendChild(tip);
function show(x,y,html){tip.innerHTML=html;tip.style.display='block';tip.style.left=(x+14)+'px';tip.style.top=(y+14)+'px';}
function hide(){tip.style.display='none';}
document.querySelectorAll('svg.spark').forEach(function(svg){
  var hx=JSON.parse(svg.dataset.hx),hy=JSON.parse(svg.dataset.hy);
  var lx=JSON.parse(svg.dataset.lx),lv=JSON.parse(svg.dataset.lv);
  var cross=svg.querySelector('.cross'),dot=svg.querySelector('.hdot');
  svg.addEventListener('mousemove',function(e){
    var r=svg.getBoundingClientRect();
    var fx=(e.clientX-r.left)/r.width*560;
    var best=0,bd=1/0;
    for(var i=0;i<hx.length;i++){var d=Math.abs(hx[i]-fx);if(d<bd){bd=d;best=i;}}
    cross.setAttribute('x1',hx[best]);cross.setAttribute('x2',hx[best]);cross.style.display='';
    if(hy[best]==null){dot.style.display='none';}
    else{dot.setAttribute('cx',hx[best]);dot.setAttribute('cy',hy[best]);dot.style.display='';}
    show(e.pageX,e.pageY,'<b>'+lv[best]+'</b> <span>'+lx[best]+'</span>');
  });
  svg.addEventListener('mouseleave',function(){cross.style.display='none';dot.style.display='none';hide();});
});
document.querySelectorAll('[data-tip]').forEach(function(el){
  el.addEventListener('mousemove',function(e){show(e.pageX,e.pageY,el.dataset.tip);});
  el.addEventListener('mouseleave',hide);
});
})();|}

let page ~title ~subtitle ~body =
  Printf.sprintf
    "<!DOCTYPE html>\n\
     <html lang=\"en\">\n\
     <head>\n\
     <meta charset=\"utf-8\">\n\
     <meta name=\"viewport\" content=\"width=device-width, \
     initial-scale=1\">\n\
     <title>%s</title>\n\
     <style>%s</style>\n\
     </head>\n\
     <body>\n\
     <h1>%s</h1>\n\
     <p class=\"sub\">%s</p>\n\
     %s\n\
     <p class=\"foot\">riskroute dashboard &middot; self-contained; no \
     external assets</p>\n\
     <script>%s</script>\n\
     </body>\n\
     </html>\n"
    (html_escape title) css (html_escape title) (html_escape subtitle) body
    script

let tile b label value =
  Buffer.add_string b
    (Printf.sprintf
       "<div class=\"tile\"><div class=\"l\">%s</div><div \
        class=\"v\">%s</div></div>"
       (html_escape label) (html_escape value))

let hero b label value =
  Buffer.add_string b
    (Printf.sprintf
       "<div class=\"hero\"><div class=\"v\">%s</div><div \
        class=\"l\">%s</div></div>"
       (html_escape value) (html_escape label))

(* ------------------------------------------------------------------ *)
(* Series flavour. *)

type tick = {
  t_seq : int;
  t_time : float;
  t_counters : (string * float) list;
  t_gauges : (string * float) list;
  t_hists : (string * (float * float)) list; (* count, p50 *)
  t_gc : float * float * float * float * float;
      (* minor_words, major_words, minor_collections, major_collections,
         heap_words *)
  t_stats : (string * float) list;
}

let num_pairs j key =
  match Json.member key j with
  | Some (Json.Obj l) ->
    List.filter_map
      (fun (n, v) -> Option.map (fun f -> (n, f)) (Json.to_num v))
      l
  | _ -> []

let numf ?(default = 0.0) j key =
  match Option.bind (Json.member key j) Json.to_num with
  | Some v -> v
  | None -> default

let parse_tick j =
  let gc =
    match Json.member "gc" j with
    | Some g ->
      ( numf g "minor_words",
        numf g "major_words",
        numf g "minor_collections",
        numf g "major_collections",
        numf g "heap_words" )
    | None -> (0., 0., 0., 0., 0.)
  in
  let hists =
    match Json.member "histograms" j with
    | Some (Json.Obj l) ->
      List.filter_map
        (fun (n, h) ->
          match h with
          | Json.Obj _ -> Some (n, (numf h "count", numf h "p50"))
          | _ -> None)
        l
    | _ -> []
  in
  {
    t_seq = int_of_float (numf j "seq");
    t_time = numf j "time";
    t_counters = num_pairs j "counters";
    t_gauges = num_pairs j "gauges";
    t_hists = hists;
    t_gc = gc;
    t_stats = num_pairs j "stats";
  }

(* Union of names across ticks, sorted. *)
let names_of project ticks =
  List.sort_uniq compare
    (List.concat_map (fun t -> List.map fst (project t)) ticks)

let series_of ~absent project name ticks =
  Array.of_list
    (List.map
       (fun t ->
         match List.assoc_opt name (project t) with
         | Some v -> Some v
         | None -> absent)
       ticks)

let render_series ~source j =
  let ticks =
    match Json.member "samples" j with
    | Some (Json.Arr l) -> List.map parse_tick l
    | _ -> []
  in
  let b = Buffer.create 65536 in
  let recorded = numf j "recorded" in
  hero b "telemetry samples recorded" (compact recorded);
  Buffer.add_string b "<div class=\"tiles\">";
  tile b "Sample period" (Printf.sprintf "%g s" (numf j "period_seconds"));
  tile b "Ring capacity" (compact (numf j "capacity"));
  tile b "Retained" (compact (numf j "retained"));
  (match ticks with
  | first :: _ :: _ ->
    let last = List.nth ticks (List.length ticks - 1) in
    tile b "Time span"
      (Printf.sprintf "%.1f s" (last.t_time -. first.t_time));
    let _, _, _, _, heap = last.t_gc in
    tile b "Heap words (last)" (compact heap);
    let total f =
      List.fold_left (fun acc t -> acc +. f t.t_gc) 0.0 ticks
    in
    tile b "Minor collections"
      (compact (total (fun (_, _, mc, _, _) -> mc)));
    tile b "Major collections"
      (compact (total (fun (_, _, _, jc, _) -> jc)))
  | _ -> ());
  Buffer.add_string b "</div>\n<div class=\"grid\">\n";
  (if ticks = [] then
     Buffer.add_string b
       "<p class=\"sub\">The ring held no samples — enable the sampler \
        with --series or RISKROUTE_SERIES and let it run for at least \
        one period.</p>"
   else
     let labels =
       let t0 = (List.hd ticks).t_time in
       List.map
         (fun t ->
           Printf.sprintf "+%.1fs (#%d)" (t.t_time -. t0) t.t_seq)
         ticks
     in
     let chart title values fmt = render_spark b ~title ~labels ~values ~fmt in
     let gc_chart title f =
       chart title (Array.of_list (List.map (fun t -> Some (f t.t_gc)) ticks))
     in
     gc_chart "GC minor words / tick" (fun (mw, _, _, _, _) -> mw) compact;
     gc_chart "GC major words / tick" (fun (_, jw, _, _, _) -> jw) compact;
     gc_chart "GC minor collections / tick"
       (fun (_, _, mc, _, _) -> mc)
       compact;
     gc_chart "GC major collections / tick"
       (fun (_, _, _, jc, _) -> jc)
       compact;
     gc_chart "GC heap words" (fun (_, _, _, _, hw) -> hw) compact;
     List.iter
       (fun n ->
         chart (n ^ " / tick")
           (series_of ~absent:(Some 0.0) (fun t -> t.t_counters) n ticks)
           compact)
       (names_of (fun t -> t.t_counters) ticks);
     List.iter
       (fun n ->
         chart n
           (series_of ~absent:(Some 0.0) (fun t -> t.t_gauges) n ticks)
           compact)
       (names_of (fun t -> t.t_gauges) ticks);
     List.iter
       (fun n ->
         chart (n ^ " p50 / window")
           (Array.of_list
              (List.map
                 (fun t ->
                   Option.map (fun (_, p50) -> p50)
                     (List.assoc_opt n t.t_hists))
                 ticks))
           fmt_seconds)
       (names_of (fun t -> t.t_hists) ticks);
     List.iter
       (fun n ->
         chart n
           (series_of ~absent:None (fun t -> t.t_stats) n ticks)
           compact)
       (names_of (fun t -> t.t_stats) ticks));
  Buffer.add_string b "</div>\n";
  (* Table view: the underlying numbers, nothing gated on hover. *)
  Buffer.add_string b
    "<details><summary>Table view</summary><table><tr><th \
     class=\"n\">seq</th><th class=\"n\">t (s)</th><th class=\"n\">minor \
     words</th><th class=\"n\">major words</th><th class=\"n\">minor \
     coll</th><th class=\"n\">major coll</th><th class=\"n\">heap \
     words</th><th>nonzero counters</th></tr>";
  let t0 = match ticks with t :: _ -> t.t_time | [] -> 0.0 in
  List.iter
    (fun t ->
      let mw, jw, mc, jc, hw = t.t_gc in
      Buffer.add_string b
        (Printf.sprintf
           "<tr><td class=\"n\">%d</td><td class=\"n\">%.1f</td><td \
            class=\"n\">%s</td><td class=\"n\">%s</td><td \
            class=\"n\">%s</td><td class=\"n\">%s</td><td \
            class=\"n\">%s</td><td>%s</td></tr>"
           t.t_seq (t.t_time -. t0) (compact mw) (compact jw) (compact mc)
           (compact jc) (compact hw)
           (html_escape
              (String.concat "; "
                 (List.map
                    (fun (n, v) -> Printf.sprintf "%s +%s" n (compact v))
                    t.t_counters)))))
    ticks;
  Buffer.add_string b "</table></details>";
  Ok
    (page
       ~title:(Printf.sprintf "RiskRoute telemetry series — %s" source)
       ~subtitle:
         (Printf.sprintf
            "time-series sampler ring · one sparkline per metric · \
             window deltas unless marked absolute (%s)"
            source)
       ~body:(Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Bench flavour: magnitude comparison over kernels — horizontal bars,
   one measure, p50 labelled at every tip (so no gridlines). *)

let bar_row_h = 46.
let bar_left = 16.
let bar_label_reserve = 96.
let bars_w = 720.

let render_bench ~source (f : Benchfile.file) =
  let m = f.Benchfile.meta in
  let results =
    List.sort
      (fun a b -> compare b.Benchfile.p50_ns a.Benchfile.p50_ns)
      f.Benchfile.results
  in
  let b = Buffer.create 65536 in
  hero b "kernels benchmarked" (compact (float_of_int (List.length results)));
  Buffer.add_string b "<div class=\"tiles\">";
  tile b "Pool size" (string_of_int m.Benchfile.domains);
  tile b "Repetitions"
    (Printf.sprintf "%d + %d warmup" m.Benchfile.reps m.Benchfile.warmups);
  if m.Benchfile.ocaml_version <> "" then
    tile b "OCaml" m.Benchfile.ocaml_version;
  if m.Benchfile.hostname <> "" then tile b "Host" m.Benchfile.hostname;
  if m.Benchfile.git_rev <> "" then tile b "Git" m.Benchfile.git_rev;
  let ch = m.Benchfile.cache_hits and cm = m.Benchfile.cache_misses in
  if ch + cm > 0 then
    tile b "Cache hit rate"
      (Printf.sprintf "%.0f%%"
         (100.0 *. float_of_int ch /. float_of_int (ch + cm)));
  if m.Benchfile.gc_minor_pause_p99_ns > 0.0 then
    tile b "Minor GC pause p99" (fmt_ns m.Benchfile.gc_minor_pause_p99_ns);
  if m.Benchfile.gc_major_pause_p99_ns > 0.0 then
    tile b "Major GC pause p99" (fmt_ns m.Benchfile.gc_major_pause_p99_ns);
  Buffer.add_string b "</div>\n";
  let n = List.length results in
  if n > 0 then begin
    let vmax =
      List.fold_left
        (fun acc r -> Float.max acc r.Benchfile.p50_ns)
        0.0 results
    in
    let plot_w = bars_w -. bar_left -. bar_label_reserve in
    let h = (float_of_int n *. bar_row_h) +. 18. in
    Buffer.add_string b
      (Printf.sprintf
         "<figure class=\"card\"><figcaption>p50 wall time per kernel \
          (%d repetitions)</figcaption><svg class=\"bars\" viewBox=\"0 0 \
          %.0f %.0f\">"
         m.Benchfile.reps bars_w h);
    Buffer.add_string b
      (Printf.sprintf
         "<line class=\"axis\" x1=\"%.1f\" y1=\"6\" x2=\"%.1f\" \
          y2=\"%.1f\"/>"
         bar_left bar_left (h -. 6.));
    List.iteri
      (fun i r ->
        let yy = 8. +. (float_of_int i *. bar_row_h) in
        let w =
          if vmax <= 0.0 then 2.0
          else Float.max 2.0 (r.Benchfile.p50_ns /. vmax *. plot_w)
        in
        let by = yy +. 18. in
        let bh = 16. in
        (* Rounded at the data end only; square at the baseline. *)
        let bar_path =
          Printf.sprintf
            "M%.1f %.1f H%.1f Q%.1f %.1f %.1f %.1f V%.1f Q%.1f %.1f %.1f \
             %.1f H%.1f Z"
            bar_left by
            (bar_left +. w -. 4.)
            (bar_left +. w) by (bar_left +. w) (by +. 4.)
            (by +. bh -. 4.)
            (bar_left +. w)
            (by +. bh)
            (bar_left +. w -. 4.)
            (by +. bh) bar_left
        in
        Buffer.add_string b
          (Printf.sprintf
             "<g class=\"bar\" data-tip=\"%s\"><text class=\"name\" \
              x=\"%.1f\" y=\"%.1f\">%s</text><path d=\"%s\"/><text \
              class=\"val\" x=\"%.1f\" y=\"%.1f\">%s</text></g>"
             (html_escape
                (Printf.sprintf
                   "<b>%s</b> mean %s · p50 %s · p95 %s · min %s · max %s"
                   (html_escape r.Benchfile.name)
                   (fmt_ns r.Benchfile.mean_ns)
                   (fmt_ns r.Benchfile.p50_ns)
                   (fmt_ns r.Benchfile.p95_ns)
                   (fmt_ns r.Benchfile.min_ns)
                   (fmt_ns r.Benchfile.max_ns)))
             bar_left (yy +. 12.)
             (html_escape r.Benchfile.name)
             bar_path
             (bar_left +. w +. 8.)
             (by +. bh -. 4.)
             (fmt_ns r.Benchfile.p50_ns)))
      results;
    Buffer.add_string b "</svg></figure>\n"
  end;
  Buffer.add_string b
    "<details><summary>Table view</summary><table><tr><th>kernel</th><th \
     class=\"n\">reps</th><th class=\"n\">mean</th><th \
     class=\"n\">p50</th><th class=\"n\">p95</th><th \
     class=\"n\">min</th><th class=\"n\">max</th><th class=\"n\">minor \
     w/run</th><th class=\"n\">major w/run</th></tr>";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf
           "<tr><td>%s</td><td class=\"n\">%d</td><td \
            class=\"n\">%s</td><td class=\"n\">%s</td><td \
            class=\"n\">%s</td><td class=\"n\">%s</td><td \
            class=\"n\">%s</td><td class=\"n\">%s</td><td \
            class=\"n\">%s</td></tr>"
           (html_escape r.Benchfile.name)
           r.Benchfile.reps
           (fmt_ns r.Benchfile.mean_ns)
           (fmt_ns r.Benchfile.p50_ns)
           (fmt_ns r.Benchfile.p95_ns)
           (fmt_ns r.Benchfile.min_ns)
           (fmt_ns r.Benchfile.max_ns)
           (compact r.Benchfile.gc_minor_words)
           (compact r.Benchfile.gc_major_words)))
    results;
  Buffer.add_string b "</table></details>";
  page
    ~title:(Printf.sprintf "RiskRoute benchmarks — %s" source)
    ~subtitle:
      (Printf.sprintf "BENCH file schema %d · %s" m.Benchfile.schema source)
    ~body:(Buffer.contents b)

(* ------------------------------------------------------------------ *)

let render ~source text =
  match Json.parse text with
  | Error e -> Error (Printf.sprintf "%s: not valid JSON (%s)" source e)
  | Ok j ->
    if Option.is_some (Json.member "samples" j) then render_series ~source j
    else if Option.is_some (Json.member "results" j) then
      match Benchfile.of_json_string text with
      | Ok f -> Ok (render_bench ~source f)
      | Error e -> Error (Printf.sprintf "%s: %s" source e)
    else
      Error
        (Printf.sprintf
           "%s: unrecognized document — expected a telemetry series dump \
            (\"samples\") or a bench file (\"results\")"
           source)
