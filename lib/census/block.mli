(** A census block: the unit of population in the impact model. *)

type t = {
  coord : Rr_geo.Coord.t;
  state : string;      (** USPS code of the anchoring city's state *)
  population : float;
}

val total_population : t array -> float
