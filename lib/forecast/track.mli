(** Models of the three historical storms used in the case studies
    (Sec. 4.4 / Sec. 7.3): Hurricanes Irene (2011), Katrina (2005) and
    Sandy (2012).

    Each storm is a piecewise-linear best-track-style trajectory with
    per-waypoint wind radii, discretised into the paper's advisory counts
    (70 / 61 / 60) at three-hour ticks. {!advisories} renders each tick
    as NHC prose and re-parses it, so the advisory data used by the
    experiments always flows through the NLP parser. *)

type waypoint = {
  hour : float;                    (** hours since the first advisory *)
  lat : float;
  lon : float;
  hurricane_radius : float;        (** miles; 0 when below hurricane force *)
  tropical_radius : float;
}

type storm = {
  name : string;                   (** upper case, e.g. ["IRENE"] *)
  year : int;
  start_month : int;
  start_day : int;
  start_hour : int;                (** 0-23, local *)
  tz : string;                     (** e.g. ["EDT"] *)
  advisory_count : int;
  interval_hours : float;
  waypoints : waypoint array;      (** strictly increasing [hour] *)
}

val irene : storm
val katrina : storm
val sandy : storm

val all : storm list
(** Irene, Katrina, Sandy — the paper's three case studies. *)

val find : string -> storm option
(** Case-insensitive lookup. *)

val position_at : storm -> float -> waypoint
(** Piecewise-linear state at an hour offset (clamped to track ends). *)

val advisory_texts : storm -> string list
(** The full advisory text sequence, in NHC format. *)

val advisories : storm -> Advisory.t list
(** Rendered then re-parsed advisories (raises [Failure] if the
    renderer/parser round trip ever fails — a programming error). *)

val timestamp : storm -> tick:int -> string
(** Issuance string of advisory [tick] (0-based), e.g.
    ["1100 PM EDT MON OCT 29 2012"]. *)
