(** BENCH_*.json files: the machine-readable benchmark format written
    by [bench/main.exe json] and read by [riskroute bench-compare].

    Schema 4 is statistics-aware: each kernel row carries mean/p50/p95
    over N repetitions plus per-run GC allocation deltas, and the meta
    block is self-describing (OCaml version, word size, resolved pool
    size, engine cache hit/miss totals) so baselines stay comparable
    across machines. Older files remain readable: schema-3 metas default
    the cache totals to 0, and schema-2 files (single Bechamel OLS
    estimate per kernel) reuse the one estimate for every statistic. *)

type meta = {
  schema : int;
  domains : int;  (** resolved pool size the run actually used *)
  git_rev : string;
  hostname : string;
  ocaml_version : string;
  word_size : int;
  riskroute_domains : string;  (** raw RISKROUTE_DOMAINS value, "" if unset *)
  reps : int;
  warmups : int;
  cache_hits : int;
      (** total engine artifact-cache hits ([engine.cache.env_hit] +
          [engine.cache.tree_hit]) observed over the recorded run *)
  cache_misses : int;  (** same, for [engine.cache.*_miss] *)
}

type result = {
  name : string;
  reps : int;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  min_ns : float;
  max_ns : float;
  gc_minor_words : float;  (** mean minor words allocated per run *)
  gc_major_words : float;
}

type file = { meta : meta; results : result list }

val schema : int
(** The schema this module writes (4). *)

val to_json_string : file -> string

val of_json_string : string -> (file, string) Stdlib.result

val write : string -> file -> unit

val read : string -> (file, string) Stdlib.result
(** [read path] loads and parses; IO errors become [Error]. *)

val find : file -> string -> result option
