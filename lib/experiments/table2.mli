(** Table 2: Tier-1 bit-risk versus bit-miles trade-off under RiskRoute at
    [lambda_h = 1e5] and [1e6]. *)

type row = {
  network : string;
  pops : int;
  rr_1e5 : float;  (** risk reduction ratio at lambda_h = 1e5 *)
  dr_1e5 : float;  (** distance increase ratio at lambda_h = 1e5 *)
  rr_1e6 : float;
  dr_1e6 : float;
}

val paper : (string * (float * float * float * float)) list
(** The paper's (rr_1e5, dr_1e5, rr_1e6, dr_1e6) per network. *)

val default_spec : Rr_engine.Spec.t
(** Tier-1s, pair_cap 6000. *)

val compute : Rr_engine.Context.t -> Rr_engine.Spec.t -> row list
(** The lambda sweep reuses context-cached geographic trees — geometry
    is independent of lambda, so both columns share them. *)

val run : Rr_engine.Context.t -> Format.formatter -> unit
