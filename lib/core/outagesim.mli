(** Monte Carlo outage simulation: does preemptive risk-averse routing
    actually keep traffic up when disasters strike?

    Strikes are sampled from the synthetic disaster models; every PoP
    within the damage radius fails. For a fixed sample of
    source/destination pairs we compare three routing postures:

    - {e static shortest}: the geographic shortest path was installed and
      cannot change — the pair survives only if no PoP on it failed;
    - {e static riskroute}: the RiskRoute path was installed instead;
    - {e reactive}: routing reconverges after the failure (upper bound) —
      the pair survives if any path remains.

    The gap between the first two is the operational value of RiskRoute's
    preemptive avoidance; the third shows how much headroom reactive
    recovery has on top. *)

type scenario = {
  center : Rr_geo.Coord.t;
  radius_miles : float;
  failed_pops : int list;
}

type result = {
  scenarios : int;
  pairs : int;              (** traffic pairs evaluated per scenario *)
  shortest_survival : float;   (** mean fraction of pairs whose static shortest path survived *)
  riskroute_survival : float;  (** same for static RiskRoute paths *)
  reactive_survival : float;   (** same with post-failure reconvergence *)
  endpoint_loss : float;
      (** mean fraction of pairs whose source or destination PoP itself
          failed (no routing can save those) *)
}

val sample_scenarios :
  ?rng:Rr_util.Prng.t -> ?radius_miles:float -> ?probabilistic:bool ->
  kind:Rr_disaster.Event.kind -> count:int -> Env.t -> scenario list
(** Draw disaster strikes and resolve the failed PoPs of the
    environment. Scenarios that fail no PoP are kept (they measure the
    quiet baseline). With [probabilistic] (default false) each PoP fails
    with probability [exp (-(d/r)^2)] instead of deterministically inside
    the radius — the probabilistic geographic failure model of Agarwal et
    al. (the paper's reference [20]). *)

val run :
  ?rng:Rr_util.Prng.t -> ?scenario_count:int -> ?pair_cap:int ->
  ?radius_miles:float -> ?kind:Rr_disaster.Event.kind -> Env.t -> result
(** Full simulation (defaults: 200 hurricane-kind scenarios, 200 pairs,
    80-mile damage radius). *)
