(** The historical outage-risk surface [o_h] (Sec. 5.2).

    [o_h(y)] is the sum of the five per-kind kernel likelihoods at
    location [y], each fitted with its Table 1 bandwidth (or a
    caller-supplied one, e.g. from a fresh {!Rr_kde.Bandwidth.select}
    run). Densities are rasterised ({!Rr_kde.Grid_density}) so that
    evaluating hundreds of PoPs is cheap. *)

type t

val build :
  ?bandwidth:(Event.kind -> float) ->
  Catalog.t ->
  t
(** Fit the five surfaces. Default bandwidths are the paper's Table 1
    values. *)

val risk_at : t -> Rr_geo.Coord.t -> float
(** Aggregate likelihood [o_h] (per square mile, summed over the five
    kinds). *)

val kind_density : t -> Event.kind -> Rr_kde.Grid_density.t
(** One fitted surface (for Fig. 4 rendering). *)

val pop_risks : t -> Rr_topology.Net.t -> float array
(** [o_h] at every PoP of a network. *)

val average_pop_risk : t -> Rr_topology.Net.t -> float
(** Mean PoP risk — the Table 3 "average PoP risk" characteristic. *)

val shared : unit -> t
(** Surface over {!Catalog.shared} with paper bandwidths, memoised. *)

val build_seasonal :
  ?bandwidth:(Event.kind -> float) -> months:int list -> Catalog.t -> t
(** Seasonal variant: each kind's surface is fitted only to events whose
    month falls in [months] (kinds left with no events contribute zero
    risk). The paper notes the strong seasonal correlation of tornadoes
    and hurricanes but fits a single annual surface; this is that
    extension. *)
