let all_ordered_pairs n =
  let out = Array.make (n * (n - 1)) (0, 0) in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        out.(!k) <- (i, j);
        incr k
      end
    done
  done;
  out

let pair_indices rng ~n ~cap =
  assert (n >= 0 && cap >= 0);
  if n < 2 || cap = 0 then [||]
  else
    let total = n * (n - 1) in
    if total <= cap then all_ordered_pairs n
    else begin
      (* Sample distinct ordered pairs by rejection over a hash set: cap is
         far below total in practice, so collisions are rare. *)
      let seen = Hashtbl.create (2 * cap) in
      let out = Array.make cap (0, 0) in
      let k = ref 0 in
      while !k < cap do
        let i = Prng.int rng n in
        let j = Prng.int rng n in
        if i <> j && not (Hashtbl.mem seen (i, j)) then begin
          Hashtbl.add seen (i, j) ();
          out.(!k) <- (i, j);
          incr k
        end
      done;
      out
    end

let reservoir rng ~k a =
  let n = Array.length a in
  if k >= n then Array.copy a
  else begin
    let out = Array.sub a 0 k in
    for i = k to n - 1 do
      let j = Prng.int rng (i + 1) in
      if j < k then out.(j) <- a.(i)
    done;
    out
  end
