(** Spatial generative models for the five disaster catalogues.

    Each kind is a mixture of regional Gaussian components encoding the
    geography of Fig. 4 (hurricanes on the Gulf/Atlantic coasts,
    tornadoes in Tornado + Dixie Alley, storms over the central plains,
    earthquakes in the West plus New Madrid, damaging wind broadly east
    of the Rockies), plus a uniform CONUS background.

    FEMA declarations are recorded at county level and NOAA wind reports
    at towns, so those catalogues are {e two-scale}: a fixed set of
    discrete sites is first drawn from the regional mixture, and events
    then scatter tightly around sites. This is what makes the
    cross-validated bandwidth of a 143,847-event wind catalogue come out
    near 4 miles while a 2,267-event earthquake catalogue comes out near
    300 (Table 1): the bandwidth tracks the within-site scatter when
    events are dense and the between-event spacing when they are
    sparse. *)

type component = {
  center : Rr_geo.Coord.t;
  sigma_miles : float;
  weight : float;
}

type t = {
  kind : Event.kind;
  macro : component array;        (** regional mixture *)
  background : float;             (** uniform-background weight, [0, 1) *)
  cluster_sites : int option;     (** [Some k]: quantise onto [k] discrete sites *)
  site_jitter_miles : float;      (** scatter around a site (county/town scale) *)
  city_anchor : float;
      (** share of sites anchored at gazetteer cities — event records
          concentrate where people are, which is what gives metro PoPs in
          disaster country their elevated risk *)
}

val macro_density : t -> Rr_geo.Coord.t -> float
(** Regional mixture density (per square mile) of the model at a point
    (before site quantisation). *)

val for_kind : Event.kind -> t
(** The calibrated model of each catalogue. *)

val month_weights : Event.kind -> float array
(** Twelve seasonal weights (sum 1): hurricanes peak August-October,
    tornadoes April-June, severe storms and wind in the warm half of the
    year, earthquakes uniform. Used to stamp synthetic events with a
    month, enabling the seasonal risk surfaces the paper leaves to future
    work. *)

val sample_month : Rr_util.Prng.t -> Event.kind -> int
(** Draw a month (1-12) from {!month_weights}. *)

val sampler : t -> seed:int64 -> (Rr_util.Prng.t -> Rr_geo.Coord.t)
(** [sampler model ~seed] materialises the model (drawing its site set
    deterministically from [seed]) and returns an event sampler. All
    returned coordinates lie inside {!Rr_geo.Bbox.conus}. *)
