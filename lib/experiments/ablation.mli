(** Ablation and extension studies beyond the paper's tables/figures.

    Each [run_*] prints a self-contained report; they are registered in
    {!Report} under the ids [abl-scale], [abl-impact], [abl-candidates],
    [abl-kde], [abl-outage], [abl-seasonal], [abl-ospf], [abl-backup] and
    [abl-pareto]. *)

val run_scale : Rr_engine.Context.t -> Format.formatter -> unit
(** Sensitivity of the Table 2 ratios to the density-to-likelihood
    calibration constant [risk_scale]. *)

val run_impact : Rr_engine.Context.t -> Format.formatter -> unit
(** Role of the outage-impact factor: census-derived [kappa_ij = c_i + c_j]
    versus uniform impact. *)

val run_candidates : Rr_engine.Context.t -> Format.formatter -> unit
(** Sweep of the Sec. 6.3 candidate-link pruning threshold (the paper's
    ">50% bit-miles reduction" rule). *)

val run_kde : Rr_engine.Context.t -> Format.formatter -> unit
(** Rasterised versus exact KDE: accuracy at the gazetteer cities. *)

val run_outage : Rr_engine.Context.t -> Format.formatter -> unit
(** Monte Carlo outage simulation: survival of static shortest-path
    routes versus static RiskRoute routes under disaster strikes. *)

val run_seasonal : Rr_engine.Context.t -> Format.formatter -> unit
(** Seasonal risk surfaces: hurricane-season versus winter risk at probe
    cities. *)

val run_ospf : Rr_engine.Context.t -> Format.formatter -> unit
(** Fidelity of OSPF link-weight export per Tier-1 network. *)

val run_backup : Rr_engine.Context.t -> Format.formatter -> unit
(** IP-fast-reroute style backup coverage and stretch. *)

val run_pareto : Rr_engine.Context.t -> Format.formatter -> unit
(** Distance/risk Pareto frontiers for headline city pairs. *)

val run_bgp : Rr_engine.Context.t -> Format.formatter -> unit
(** Valley-free (policy-compliant) interdomain routing versus the
    paper's upper/lower bounds ([abl-bgp]). *)

val run_availability : Rr_engine.Context.t -> Format.formatter -> unit
(** Achieved availability ("nines") per routing posture under the
    catalogue's strike rate ([abl-availability]). *)

val run_traffic : Rr_engine.Context.t -> Format.formatter -> unit
(** Gravity traffic matrix and traffic-weighted ratios
    ([abl-traffic]). *)

val run_mrc : Rr_engine.Context.t -> Format.formatter -> unit
(** Multiple-routing-configurations recovery with RiskRoute weights
    ([abl-mrc]). *)

val run_sla : Rr_engine.Context.t -> Format.formatter -> unit
(** Latency-budgeted minimum-risk routing (LARAC): risk achievable as the
    SLA budget loosens ([abl-sla]). *)
