type route = {
  path : int list;
  bit_miles : float;
  bit_risk_miles : float;
}

let route_of_path env path =
  {
    path;
    bit_miles = Metric.bit_miles env path;
    bit_risk_miles = Metric.bit_risk_miles env path;
  }

let riskroute env ~src ~dst =
  let kappa = Env.kappa env src dst in
  let weight u v = Env.edge_weight env ~kappa u v in
  match Rr_graph.Dijkstra.single_pair (Env.graph env) ~weight ~src ~dst with
  | None -> None
  | Some (cost, path) ->
    Some { path; bit_miles = Metric.bit_miles env path; bit_risk_miles = cost }

let shortest env ~src ~dst =
  let weight u v = Env.distance_weight env u v in
  match Rr_graph.Dijkstra.single_pair (Env.graph env) ~weight ~src ~dst with
  | None -> None
  | Some (cost, path) ->
    Some { path; bit_miles = cost; bit_risk_miles = Metric.bit_risk_miles env path }
