(** Geometric graph constructions over an abstract metric.

    The synthetic topology builder ({!Rr_topology.Builder}) grows ISP maps
    the way real fibre maps look: a minimum spanning tree for backbone
    connectivity, Gabriel-graph edges for regional meshiness, and k-NN
    edges for dense metros. All constructions only need a pairwise
    distance function, keeping this library free of geographic types. *)

val mst : n:int -> dist:(int -> int -> float) -> Graph.t
(** Prim minimum spanning tree over the complete metric graph ([n >= 1]).
    The result is connected by construction. *)

val gabriel : n:int -> dist:(int -> int -> float) -> Graph.t
(** Metric Gabriel graph: [(u, v)] is an edge when no third point [w]
    satisfies [dist u w ^ 2 + dist v w ^ 2 <= dist u v ^ 2]. O(n^3) — fine
    for the few-hundred-node maps used here. *)

val knn : n:int -> dist:(int -> int -> float) -> k:int -> Graph.t
(** Each node linked to its [k] nearest neighbours (union, undirected). *)

val union : Graph.t -> Graph.t -> Graph.t
(** Edge union of two graphs on the same node set. *)
