(** A parsed National Hurricane Center public advisory (Sec. 4.4).

    Each advisory carries the storm centre and the radii of
    hurricane-force and tropical-storm-force winds — the two data points
    the paper extracts by natural-language parsing. *)

type t = {
  storm : string;                    (** e.g. ["IRENE"] *)
  number : int;                      (** advisory number *)
  issued : string;                   (** e.g. ["1100 AM EDT SAT AUG 27 2011"] *)
  center : Rr_geo.Coord.t;
  hurricane_radius_miles : float;    (** 0 when no hurricane-force winds *)
  tropical_radius_miles : float;     (** 0 when no tropical-storm-force winds *)
}

val make :
  storm:string -> number:int -> issued:string -> center:Rr_geo.Coord.t ->
  hurricane_radius_miles:float -> tropical_radius_miles:float -> t
(** Validates radii: non-negative, hurricane radius not exceeding the
    tropical radius when both are positive. *)

val pp : Format.formatter -> t -> unit
