open Rr_util

let check_float = Alcotest.(check (float 1e-9))

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1L and b = Prng.create 2L in
  Alcotest.(check bool) "different seeds differ" true (Prng.int64 a <> Prng.int64 b)

let test_prng_float_range () =
  let rng = Prng.create 7L in
  for _ = 1 to 1000 do
    let v = Prng.float rng 10.0 in
    Alcotest.(check bool) "in [0, 10)" true (v >= 0.0 && v < 10.0)
  done

let test_prng_int_range () =
  let rng = Prng.create 8L in
  let seen = Array.make 6 false in
  for _ = 1 to 600 do
    let v = Prng.int rng 6 in
    Alcotest.(check bool) "in [0, 6)" true (v >= 0 && v < 6);
    seen.(v) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

let test_prng_uniform () =
  let rng = Prng.create 9L in
  for _ = 1 to 100 do
    let v = Prng.uniform rng (-3.0) (-1.0) in
    Alcotest.(check bool) "in [-3, -1)" true (v >= -3.0 && v < -1.0)
  done

let test_prng_gaussian_moments () =
  let rng = Prng.create 10L in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Prng.gaussian rng) in
  let mean = Arrayx.fmean samples in
  let var = Arrayx.fmean (Array.map (fun x -> x *. x) samples) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_prng_exponential_mean () =
  let rng = Prng.create 11L in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Prng.exponential rng 2.0) in
  let mean = Arrayx.fmean samples in
  Alcotest.(check bool) "mean near 1/rate" true (Float.abs (mean -. 0.5) < 0.05)

let test_prng_pareto_support () =
  let rng = Prng.create 12L in
  for _ = 1 to 1000 do
    let v = Prng.pareto rng ~alpha:2.0 ~xmin:3.0 in
    Alcotest.(check bool) "at least xmin" true (v >= 3.0)
  done

let test_prng_categorical () =
  let rng = Prng.create 13L in
  let weights = [| 0.0; 5.0; 0.0; 5.0 |] in
  for _ = 1 to 500 do
    let i = Prng.categorical rng weights in
    Alcotest.(check bool) "only positive-weight indices" true (i = 1 || i = 3)
  done

let test_prng_categorical_skew () =
  let rng = Prng.create 14L in
  let weights = [| 1.0; 9.0 |] in
  let counts = [| 0; 0 |] in
  for _ = 1 to 10_000 do
    counts.(Prng.categorical rng weights) <- counts.(Prng.categorical rng weights) + 1
  done;
  Alcotest.(check bool) "index 1 dominates" true (counts.(1) > counts.(0))

let test_prng_split_independent () =
  let root = Prng.create 99L in
  let a = Prng.split root in
  let b = Prng.split root in
  Alcotest.(check bool) "split streams differ" true (Prng.int64 a <> Prng.int64 b)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 15L in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (_, v) ->
      order := v :: !order;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop on empty" true (Heap.pop_min h = None)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 "a";
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h)

let test_heap_ensure_capacity () =
  let h = Heap.create () in
  Heap.push h 2.0 20;
  Heap.push h 1.0 10;
  Heap.ensure_capacity h 1024;
  (* Growth must preserve contents... *)
  (match Heap.pop_min h with
  | Some (k, 10) -> check_float "min survives growth" 1.0 k
  | _ -> Alcotest.fail "expected 10 first");
  Alcotest.(check int) "one left" 1 (Heap.length h);
  (* ...and the clear + ensure_capacity reuse cycle must not shrink or
     lose ordering. *)
  Heap.clear h;
  Heap.ensure_capacity h 8;
  for i = 99 downto 0 do
    Heap.push h (float_of_int i) i
  done;
  (match Heap.pop_min h with
  | Some (_, 0) -> ()
  | _ -> Alcotest.fail "expected 0 first after reuse");
  Alcotest.(check int) "rest retained" 99 (Heap.length h)

let test_heap_duplicate_keys () =
  let h = Heap.create () in
  Heap.push h 1.0 "a";
  Heap.push h 1.0 "b";
  Heap.push h 0.5 "c";
  (match Heap.pop_min h with
  | Some (k, "c") -> check_float "min key" 0.5 k
  | _ -> Alcotest.fail "expected c first");
  Alcotest.(check int) "two left" 2 (Heap.length h)

let heap_sort_property =
  QCheck.Test.make ~name:"heap pops keys in ascending order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k k) keys;
      let rec drain acc =
        match Heap.pop_min h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
      in
      let out = drain [] in
      out = List.sort Float.compare keys)

(* --- Arrayx / Listx --- *)

let test_fsum_kahan () =
  let a = Array.make 10_000 0.1 in
  check_float "compensated" 1000.0 (Arrayx.fsum a)

let test_argmin_argmax () =
  let a = [| 3.0; 1.0; 4.0; 1.0; 5.0 |] in
  Alcotest.(check int) "argmin first tie" 1 (Arrayx.argmin a);
  Alcotest.(check int) "argmax" 4 (Arrayx.argmax a)

let test_normalize () =
  let a = Arrayx.normalize [| 1.0; 3.0 |] in
  check_float "first" 0.25 a.(0);
  check_float "second" 0.75 a.(1)

let test_take () =
  Alcotest.(check (array int)) "prefix" [| 1; 2 |] (Arrayx.take 2 [| 1; 2; 3 |]);
  Alcotest.(check (array int)) "whole" [| 1; 2 |] (Arrayx.take 5 [| 1; 2 |])

let test_listx_range () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Listx.range 2 5);
  Alcotest.(check (list int)) "empty" [] (Listx.range 5 5)

let test_listx_pairs () =
  Alcotest.(check int) "C(4,2)" 6 (List.length (Listx.pairs [ 1; 2; 3; 4 ]))

let test_listx_group_by () =
  let groups = Listx.group_by (fun x -> x mod 2) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  Alcotest.(check (list int)) "odds in order" [ 1; 3; 5 ] (List.assoc 1 groups)

let test_listx_min_max_by () =
  Alcotest.(check (option int)) "min" (Some 3)
    (Listx.min_by float_of_int [ 5; 3; 9 ]);
  Alcotest.(check (option int)) "max" (Some 9)
    (Listx.max_by float_of_int [ 5; 3; 9 ]);
  Alcotest.(check (option int)) "empty" None (Listx.min_by float_of_int [])

(* --- Sampling --- *)

let test_pair_indices_exhaustive () =
  let rng = Prng.create 1L in
  let pairs = Sampling.pair_indices rng ~n:4 ~cap:100 in
  Alcotest.(check int) "all ordered pairs" 12 (Array.length pairs);
  Array.iter (fun (i, j) -> Alcotest.(check bool) "distinct" true (i <> j)) pairs

let test_pair_indices_capped () =
  let rng = Prng.create 2L in
  let pairs = Sampling.pair_indices rng ~n:50 ~cap:100 in
  Alcotest.(check int) "capped" 100 (Array.length pairs);
  let seen = Hashtbl.create 128 in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "no duplicates" false (Hashtbl.mem seen p);
      Hashtbl.add seen p ())
    pairs

let test_pair_indices_degenerate () =
  let rng = Prng.create 3L in
  Alcotest.(check int) "n=1" 0 (Array.length (Sampling.pair_indices rng ~n:1 ~cap:10));
  Alcotest.(check int) "cap=0" 0 (Array.length (Sampling.pair_indices rng ~n:5 ~cap:0))

let test_reservoir () =
  let rng = Prng.create 4L in
  let a = Array.init 100 Fun.id in
  let s = Sampling.reservoir rng ~k:10 a in
  Alcotest.(check int) "size" 10 (Array.length s);
  Array.iter (fun v -> Alcotest.(check bool) "from source" true (v >= 0 && v < 100)) s;
  let all = Sampling.reservoir rng ~k:200 a in
  Alcotest.(check int) "whole array when k >= n" 100 (Array.length all)

let () =
  Alcotest.run "rr_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "uniform range" `Quick test_prng_uniform;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "pareto support" `Quick test_prng_pareto_support;
          Alcotest.test_case "categorical support" `Quick test_prng_categorical;
          Alcotest.test_case "categorical skew" `Quick test_prng_categorical_skew;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "ensure capacity" `Quick test_heap_ensure_capacity;
          Alcotest.test_case "duplicate keys" `Quick test_heap_duplicate_keys;
          QCheck_alcotest.to_alcotest heap_sort_property;
        ] );
      ( "arrayx-listx",
        [
          Alcotest.test_case "fsum kahan" `Quick test_fsum_kahan;
          Alcotest.test_case "argmin/argmax" `Quick test_argmin_argmax;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "take" `Quick test_take;
          Alcotest.test_case "range" `Quick test_listx_range;
          Alcotest.test_case "pairs" `Quick test_listx_pairs;
          Alcotest.test_case "group_by" `Quick test_listx_group_by;
          Alcotest.test_case "min_by/max_by" `Quick test_listx_min_max_by;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "exhaustive pairs" `Quick test_pair_indices_exhaustive;
          Alcotest.test_case "capped pairs" `Quick test_pair_indices_capped;
          Alcotest.test_case "degenerate" `Quick test_pair_indices_degenerate;
          Alcotest.test_case "reservoir" `Quick test_reservoir;
        ] );
    ]
