type t = {
  env : Env.t;
  group : int array;  (* -1 = uncovered *)
  k : int;
}

(* Is the graph still connected after removing [removed]? *)
let connected_without graph removed =
  let n = Rr_graph.Graph.node_count graph in
  let keep = Array.make n true in
  List.iter (fun v -> keep.(v) <- false) removed;
  let survivors = List.filter (fun v -> keep.(v)) (Rr_util.Listx.range 0 n) in
  match survivors with
  | [] -> true
  | start :: _ ->
    let visited = Array.make n false in
    let stack = Stack.create () in
    Stack.push start stack;
    visited.(start) <- true;
    let count = ref 1 in
    while not (Stack.is_empty stack) do
      let u = Stack.pop stack in
      Rr_graph.Graph.iter_neighbors graph u (fun v ->
          if keep.(v) && not visited.(v) then begin
            visited.(v) <- true;
            incr count;
            Stack.push v stack
          end)
    done;
    !count = List.length survivors

let build ?(k = 4) env =
  if k < 1 then invalid_arg "Mrc.build: k < 1";
  let graph = Env.graph env in
  let n = Env.node_count env in
  let group = Array.make n (-1) in
  let members = Array.make k [] in
  (* Greedy: place each node in the first configuration whose isolation
     set, extended with it, still leaves the survivors connected. Spread
     attempts round-robin so groups stay balanced. *)
  for v = 0 to n - 1 do
    let rec try_groups attempt =
      if attempt >= k then ()
      else begin
        let c = (v + attempt) mod k in
        if connected_without graph (v :: members.(c)) then begin
          group.(v) <- c;
          members.(c) <- v :: members.(c)
        end
        else try_groups (attempt + 1)
      end
    in
    try_groups 0
  done;
  { env; group; k }

let config_count t = t.k

let config_of_node t v =
  if v < 0 || v >= Array.length t.group then invalid_arg "Mrc.config_of_node";
  if t.group.(v) = -1 then None else Some t.group.(v)

let coverage t =
  let covered = Array.fold_left (fun acc g -> if g >= 0 then acc + 1 else acc) 0 t.group in
  float_of_int covered /. float_of_int (max 1 (Array.length t.group))

let banned_cost = 1e15

let route t ~config ~src ~dst =
  if config < 0 || config >= t.k then invalid_arg "Mrc.route: bad configuration";
  let kappa = Env.kappa t.env src dst in
  let weight u v =
    (* no transit through isolated nodes: an isolated node may appear
       only as an endpoint of the whole path *)
    let transit_banned w = t.group.(w) = config && w <> src && w <> dst in
    if transit_banned u || transit_banned v then banned_cost
    else Env.edge_weight t.env ~kappa u v
  in
  match Rr_graph.Dijkstra.single_pair (Env.graph t.env) ~weight ~src ~dst with
  | Some (cost, path) when cost < banned_cost -> Some (Router.route_of_path t.env path)
  | Some _ | None -> None

let recovery_route t ~failed ~src ~dst =
  if failed = src || failed = dst then None
  else
    match config_of_node t failed with
    | None -> None
    | Some config -> (
      match route t ~config ~src ~dst with
      | Some r when not (List.mem failed r.Router.path) -> Some r
      | Some _ | None -> None)
