(** A bounded least-recently-used cache with string keys.

    Plain single-threaded structure — callers (see {!Context}) serialise
    access under their own lock. Capacity 0 disables storage entirely
    (every [add] evicts immediately). *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] on negative capacity. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Marks the entry most-recently used on a hit. *)

val add : 'a t -> string -> 'a -> int
(** Insert (or refresh) a binding and return how many entries were
    evicted to stay within capacity. *)

val mem : 'a t -> string -> bool
(** Membership without touching recency. *)

val fold : 'a t -> init:'b -> f:('b -> string -> 'a -> 'b) -> 'b
(** Fold over all entries, most-recently used first, without touching
    recency. [f] must not add or remove entries. *)

val remove : 'a t -> string -> bool
(** Drop a binding; [false] when absent. *)
