let take n l =
  let rec loop acc n = function
    | [] -> List.rev acc
    | _ when n <= 0 -> List.rev acc
    | x :: rest -> loop (x :: acc) (n - 1) rest
  in
  loop [] n l

let range lo hi =
  let rec loop acc i = if i < lo then acc else loop (i :: acc) (i - 1) in
  loop [] (hi - 1)

let pairs l =
  let rec loop acc = function
    | [] -> List.rev acc
    | x :: rest ->
      let acc = List.fold_left (fun acc y -> (x, y) :: acc) acc rest in
      loop acc rest
  in
  loop [] l

let group_by key l =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt tbl k with
      | None ->
        Hashtbl.add tbl k (ref [ x ]);
        order := k :: !order
      | Some cell -> cell := x :: !cell)
    l;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let extreme_by better score = function
  | [] -> None
  | x :: rest ->
    let best, _ =
      List.fold_left
        (fun (best, best_score) y ->
          let s = score y in
          if better s best_score then (y, s) else (best, best_score))
        (x, score x) rest
    in
    Some best

let min_by score l = extreme_by ( < ) score l

let max_by score l = extreme_by ( > ) score l

let sum_by score l = List.fold_left (fun acc x -> acc +. score x) 0.0 l
