(** Forecasted outage risk [o_f] (Sec. 5.3).

    Given an advisory, a location is at risk [rho_h] when inside the
    hurricane-force wind radius, [rho_t] when inside the
    tropical-storm-force radius, and 0 otherwise. Section 7 uses
    [rho_t = 50] and [rho_h = 100]. *)

val default_rho_tropical : float
(** 50. *)

val default_rho_hurricane : float
(** 100. *)

val risk_at :
  ?rho_tropical:float -> ?rho_hurricane:float -> Advisory.t ->
  Rr_geo.Coord.t -> float

val pop_risks :
  ?rho_tropical:float -> ?rho_hurricane:float -> Advisory.t ->
  Rr_topology.Net.t -> float array
(** [o_f] per PoP id. *)

val pops_in_scope : Advisory.t -> Rr_topology.Net.t -> int
(** PoPs inside the tropical-storm-force radius ("in the scope" of the
    event, the paper's phrase). *)

val pops_in_hurricane_scope : Advisory.t -> Rr_topology.Net.t -> int

val scope_fraction : Advisory.t list -> Rr_topology.Net.t -> float
(** Fraction of the network's PoPs that are inside the tropical radius at
    {e any} advisory of the event — the ">20% of their PoPs" filter of
    Sec. 7.3.1. *)

val union_scope : Advisory.t list -> Rr_geo.Coord.t -> float
(** Final geographic scope of an event (Fig. 6): the maximum per-advisory
    risk at the point across the advisory sequence (default rho values). *)

(** {1 Advisory-tick deltas}

    Consecutive advisories perturb [o_f] only near the storm; the rest
    of the field is bit-for-bit unchanged. A {!delta} captures exactly
    the changed entries, which is what lets the engine patch an existing
    environment ([Riskroute.Env.patch]) instead of rebuilding it. *)

type delta = {
  indices : int array;  (** changed point indices, strictly increasing *)
  values : float array;  (** the new [o_f] value per changed index *)
  bbox : Rr_geo.Bbox.t option;
      (** tight bounding box around the changed points — the
          "where did the field move" summary; [None] when nothing
          changed *)
}

val empty_delta : delta

val diff :
  ?rho_tropical:float ->
  ?rho_hurricane:float ->
  prev:Advisory.t option ->
  next:Advisory.t option ->
  Rr_geo.Coord.t array ->
  delta
(** Sparse field delta between two consecutive ticks over a fixed point
    set ([None] means "no advisory", i.e. the all-zero field). An entry
    is reported when the new value differs {e bitwise} from the old —
    the same notion of change the engine's fingerprint caches key on. *)

val diff_field :
  ?rho_tropical:float ->
  ?rho_hurricane:float ->
  old_field:float array ->
  next:Advisory.t option ->
  Rr_geo.Coord.t array ->
  delta
(** Like {!diff} but against a materialised previous field (e.g.
    [Riskroute.Env.forecast] of the environment being patched), so the
    comparison is exactly against what the consumer currently holds. *)
