(* Hurricane response: step tick-by-tick through the synthetic Hurricane
   Sandy advisory feed and watch RiskRoute preemptively move a Washington
   -> Boston flow off the coastal corridor as the storm approaches.

   This is the operational loop of Sec. 7.3: every three hours a new NHC
   advisory arrives as text, is parsed, becomes a forecast risk field
   o_f, and backup routes are recomputed.

   Run with:  dune exec examples/hurricane_response.exe *)

let () =
  let storm = Rr_forecast.Track.sandy in
  let zoo = Rr_topology.Zoo.shared () in
  let net =
    match Rr_topology.Zoo.find zoo "Level3" with
    | Some net -> net
    | None -> failwith "Level3 missing"
  in
  let src =
    match Rr_topology.Net.find_pop net ~city:"Washington" with
    | Some i -> i
    | None -> failwith "no Washington PoP"
  in
  let dst =
    match Rr_topology.Net.find_pop net ~city:"Boston" with
    | Some i -> i
    | None -> failwith "no Boston PoP"
  in
  let base = Riskroute.Env.of_net net in
  Printf.printf
    "Hurricane %s: Washington -> Boston on Level3, every 12 hours\n\n"
    storm.Rr_forecast.Track.name;
  Printf.printf "%-28s %6s %8s %10s  %s\n" "advisory" "inNet" "miles" "risk-miles" "route changed?";
  let previous_path = ref [] in
  List.iteri
    (fun tick advisory ->
      if tick mod 4 = 0 then begin
        let env = Riskroute.Env.with_advisory base (Some advisory) in
        match Riskroute.Router.riskroute env ~src ~dst with
        | None -> Printf.printf "%-28s (disconnected)\n" advisory.Rr_forecast.Advisory.issued
        | Some route ->
          let in_scope = Rr_forecast.Riskfield.pops_in_scope advisory net in
          let changed =
            !previous_path <> [] && !previous_path <> route.Riskroute.Router.path
          in
          Printf.printf "%-28s %6d %8.0f %10.0f  %s\n"
            advisory.Rr_forecast.Advisory.issued in_scope
            route.Riskroute.Router.bit_miles route.Riskroute.Router.bit_risk_miles
            (if changed then "RE-ROUTED" else "-");
          previous_path := route.Riskroute.Router.path
      end)
    (Rr_forecast.Track.advisories storm);
  print_endline "\nFinal preemptive route:";
  let advisories = Array.of_list (Rr_forecast.Track.advisories storm) in
  let landfall = advisories.(Array.length advisories - 1) in
  let env = Riskroute.Env.with_advisory base (Some landfall) in
  (match Riskroute.Router.riskroute env ~src ~dst with
  | Some route ->
    List.iter
      (fun i ->
        Printf.printf "  %s\n" (Rr_topology.Net.pop net i).Rr_topology.Pop.name)
      route.Riskroute.Router.path
  | None -> print_endline "  disconnected")
