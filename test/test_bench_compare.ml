(* The performance tooling behind `bench json` and `riskroute
   bench-compare`: the zero-dependency JSON reader, the repetition
   harness statistics, the BENCH_*.json round trip (including schema-2
   back-compat) and the regression verdict model. *)

module Json = Rr_perf.Json
module Benchfile = Rr_perf.Benchfile
module Harness = Rr_perf.Harness
module Compare = Rr_perf.Compare

(* --- JSON reader --- *)

let test_json_values () =
  match Json.parse {| {"a": [1, -2.5, 1e3], "b": "x\"y", "c": null, "d": true} |} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
    let nums =
      match Option.bind (Json.member "a" j) Json.to_arr with
      | Some l -> List.filter_map Json.to_num l
      | None -> []
    in
    Alcotest.(check (list (float 0.0))) "numbers" [ 1.0; -2.5; 1000.0 ] nums;
    Alcotest.(check (option string)) "escaped string" (Some "x\"y")
      (Option.bind (Json.member "b" j) Json.to_str);
    Alcotest.(check bool) "null member present" true
      (Json.member "c" j = Some Json.Null);
    Alcotest.(check bool) "bool" true
      (Json.member "d" j = Some (Json.Bool true));
    Alcotest.(check (option string)) "missing member" None
      (Option.bind (Json.member "nope" j) Json.to_str)

let test_json_rejects_garbage () =
  List.iter
    (fun text ->
      match Json.parse text with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" text
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "{} trailing" ]

let test_json_parses_own_exposition () =
  (* The telemetry JSON dump must be readable by the repo's own parser
     (CI validates dumps this way). *)
  Rr_obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Rr_obs.set_enabled false) @@ fun () ->
  let r = Rr_obs.Registry.create () in
  Rr_obs.Counter.add (Rr_obs.Counter.make ~registry:r "a.count") 3;
  List.iter
    (Rr_obs.Histogram.observe (Rr_obs.Histogram.make ~registry:r "b.seconds"))
    [ 0.1; 0.2 ];
  Rr_obs.with_span ~registry:r "op" (fun () -> ());
  match Json.parse (Rr_obs.to_json ~registry:r ()) with
  | Error e -> Alcotest.failf "telemetry dump is not valid JSON: %s" e
  | Ok j ->
    Alcotest.(check (option int)) "counter value survives" (Some 3)
      (Option.bind
         (Option.bind (Json.member "counters" j) (Json.member "a.count"))
         Json.to_int)

(* --- harness statistics --- *)

let test_quantile () =
  Alcotest.(check bool) "empty sample is NaN" true
    (Float.is_nan (Harness.quantile [||] 0.5));
  Alcotest.(check (float 0.0)) "single sample" 7.0
    (Harness.quantile [| 7.0 |] 0.95);
  let s = [| 40.0; 10.0; 30.0; 20.0 |] in
  Alcotest.(check (float 0.0)) "p50 nearest rank" 20.0 (Harness.quantile s 0.5);
  Alcotest.(check (float 0.0)) "p0 is the minimum" 10.0
    (Harness.quantile s 0.0);
  Alcotest.(check (float 0.0)) "p100 is the maximum" 40.0
    (Harness.quantile s 1.0)

let test_measure_smoke () =
  let calls = ref 0 in
  let rows =
    Harness.measure ~warmups:2 ~reps:5
      [
        ("k.first", fun () -> incr calls);
        ("k.second", fun () -> ignore (Array.make 64 0.0));
      ]
  in
  Alcotest.(check int) "warmups plus reps" 7 !calls;
  Alcotest.(check (list string)) "input order kept" [ "k.first"; "k.second" ]
    (List.map (fun r -> r.Benchfile.name) rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "reps recorded" 5 r.Benchfile.reps;
      Alcotest.(check bool) "ordered statistics" true
        (r.Benchfile.min_ns <= r.Benchfile.p50_ns
        && r.Benchfile.p50_ns <= r.Benchfile.p95_ns
        && r.Benchfile.p95_ns <= r.Benchfile.max_ns);
      Alcotest.(check bool) "non-negative timings" true
        (r.Benchfile.min_ns >= 0.0))
    rows

(* --- bench file format --- *)

let meta =
  {
    Benchfile.schema = Benchfile.schema;
    domains = 4;
    git_rev = "abc1234";
    hostname = "testhost";
    ocaml_version = "5.1.1";
    word_size = 64;
    riskroute_domains = "4";
    reps = 10;
    warmups = 3;
    cache_hits = 7;
    cache_misses = 2;
    tree_cache_cap = 4096;
    topology_pops = "1000,10000";
    gc_minor_pause_p50_ns = 1200.0;
    gc_minor_pause_p99_ns = 45000.0;
    gc_major_pause_p50_ns = 250000.0;
    gc_major_pause_p99_ns = 1900000.0;
  }

let result name p50 p95 =
  {
    Benchfile.name;
    reps = 10;
    mean_ns = p50;
    p50_ns = p50;
    p95_ns = p95;
    min_ns = p50;
    max_ns = p95;
    gc_minor_words = 128.5;
    gc_major_words = 0.0;
  }

let test_benchfile_roundtrip () =
  let f =
    {
      Benchfile.meta;
      results = [ result "dijkstra.flat" 1500.25 1800.5; result "kde.fit" 92.0 95.0 ];
    }
  in
  match Benchfile.of_json_string (Benchfile.to_json_string f) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok f' ->
    Alcotest.(check bool) "meta survives" true (f'.Benchfile.meta = meta);
    Alcotest.(check bool) "results survive" true
      (f'.Benchfile.results = f.Benchfile.results);
    (match Benchfile.find f' "kde.fit" with
    | Some r ->
      Alcotest.(check (float 0.0)) "find returns the row" 92.0 r.Benchfile.p50_ns
    | None -> Alcotest.fail "find missed an existing kernel");
    Alcotest.(check bool) "find misses absent kernels" true
      (Benchfile.find f' "nope" = None)

let test_benchfile_schema2_compat () =
  let text =
    "{\"meta\": {\"schema\": 2, \"domains\": 2, \"git_rev\": \"old\", \
     \"hostname\": \"h\"},\n\
     \"results\": [{\"name\": \"augment.greedy\", \"ns_per_run\": 2500.0}]}"
  in
  match Benchfile.of_json_string text with
  | Error e -> Alcotest.failf "schema-2 parse failed: %s" e
  | Ok f -> (
    Alcotest.(check int) "schema read" 2 f.Benchfile.meta.Benchfile.schema;
    match Benchfile.find f "augment.greedy" with
    | Some r ->
      Alcotest.(check (float 0.0)) "estimate fills p50" 2500.0
        r.Benchfile.p50_ns;
      Alcotest.(check (float 0.0)) "estimate fills p95" 2500.0
        r.Benchfile.p95_ns;
      Alcotest.(check (float 0.0)) "gc defaults to zero" 0.0
        r.Benchfile.gc_minor_words
    | None -> Alcotest.fail "schema-2 row missing")

let test_benchfile_schema5_compat () =
  (* A schema-5 meta predates the GC pause quantiles: the reader must
     default them to zero rather than reject the file. *)
  let text =
    "{\"meta\": {\"schema\": 5, \"domains\": 2, \"git_rev\": \"old\", \
     \"hostname\": \"h\", \"ocaml_version\": \"5.1.1\", \"word_size\": 64, \
     \"riskroute_domains\": \"\", \"reps\": 10, \"warmups\": 3, \
     \"cache_hits\": 1, \"cache_misses\": 1, \"tree_cache_cap\": 4096, \
     \"topology_pops\": \"1000\"},\n\
     \"results\": [{\"name\": \"k\", \"reps\": 10, \"mean_ns\": 5.0, \
     \"p50_ns\": 5.0, \"p95_ns\": 6.0, \"min_ns\": 4.0, \"max_ns\": 7.0, \
     \"gc_minor_words\": 0.0, \"gc_major_words\": 0.0}]}"
  in
  match Benchfile.of_json_string text with
  | Error e -> Alcotest.failf "schema-5 parse failed: %s" e
  | Ok f ->
    let m = f.Benchfile.meta in
    List.iter
      (fun (what, v) ->
        Alcotest.(check (float 0.0))
          (Printf.sprintf "%s defaults to 0" what)
          0.0 v)
      [
        ("minor p50", m.Benchfile.gc_minor_pause_p50_ns);
        ("minor p99", m.Benchfile.gc_minor_pause_p99_ns);
        ("major p50", m.Benchfile.gc_major_pause_p50_ns);
        ("major p99", m.Benchfile.gc_major_pause_p99_ns);
      ]

let test_benchfile_rejects_missing_results () =
  match Benchfile.of_json_string "{\"meta\": {\"schema\": 3}}" with
  | Ok _ -> Alcotest.fail "accepted a file with no results array"
  | Error _ -> ()

(* --- regression verdicts --- *)

let file results = { Benchfile.meta; results }

let verdict_of rows name =
  match List.find_opt (fun r -> r.Compare.name = name) rows with
  | Some r -> r.Compare.verdict
  | None -> Alcotest.failf "no row for %s" name

let test_compare_self_is_clean () =
  let f = file [ result "a" 1000.0 1100.0; result "b" 50.0 60.0 ] in
  let rows = Compare.run f f in
  Alcotest.(check int) "one row per kernel" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "self comparison is Within" true
        (r.Compare.verdict = Compare.Within))
    rows;
  Alcotest.(check bool) "no regression" false (Compare.any_regression rows)

let test_compare_flags_slowdown () =
  (* Stable kernel (p95 = p50, so tau = tau_base = 0.25): 2x is well
     past the band; 1.2x is inside it. *)
  let baseline = file [ result "slow" 1000.0 1000.0; result "ok" 1000.0 1000.0 ] in
  let current = file [ result "slow" 2000.0 2000.0; result "ok" 1200.0 1200.0 ] in
  let rows = Compare.run baseline current in
  Alcotest.(check bool) "2x slowdown regresses" true
    (verdict_of rows "slow" = Compare.Regressed);
  Alcotest.(check bool) "1.2x stays within a 0.25 band" true
    (verdict_of rows "ok" = Compare.Within);
  Alcotest.(check bool) "gate trips" true (Compare.any_regression rows);
  (match rows with
  | first :: _ ->
    Alcotest.(check string) "regressions sort first" "slow" first.Compare.name
  | [] -> Alcotest.fail "no rows");
  (* The same slowdown under a generous threshold passes. *)
  let relaxed = Compare.run ~tau_base:1.5 baseline current in
  Alcotest.(check bool) "generous tau_base absorbs the slowdown" false
    (Compare.any_regression relaxed)

let test_compare_noise_widens_band () =
  (* A jittery baseline (p95 = 1.4 * p50) earns tau = 0.25 + 0.4 = 0.65,
     so a 1.5x current p50 is still within; a stable baseline at the
     same ratio regresses. *)
  let baseline = file [ result "jittery" 1000.0 1400.0; result "stable" 1000.0 1000.0 ] in
  let current = file [ result "jittery" 1500.0 1500.0; result "stable" 1500.0 1500.0 ] in
  let rows = Compare.run baseline current in
  Alcotest.(check bool) "jitter widens the band" true
    (verdict_of rows "jittery" = Compare.Within);
  Alcotest.(check bool) "stable kernel still regresses" true
    (verdict_of rows "stable" = Compare.Regressed)

let test_compare_improvement_and_churn () =
  let baseline = file [ result "fast" 1000.0 1000.0; result "gone" 10.0 10.0 ] in
  let current = file [ result "fast" 400.0 400.0; result "new" 10.0 10.0 ] in
  let rows = Compare.run baseline current in
  Alcotest.(check bool) "speedup is Improved" true
    (verdict_of rows "fast" = Compare.Improved);
  Alcotest.(check bool) "removed kernel reported" true
    (verdict_of rows "gone" = Compare.Removed);
  Alcotest.(check bool) "added kernel reported" true
    (verdict_of rows "new" = Compare.Added);
  Alcotest.(check bool) "churn alone never trips the gate" false
    (Compare.any_regression rows)

let test_meta_warnings () =
  Alcotest.(check (list string)) "identical metas are silent" []
    (Compare.meta_warnings meta meta);
  let cur =
    { meta with Benchfile.hostname = "elsewhere"; ocaml_version = "5.2.0" }
  in
  Alcotest.(check (list string))
    "differing facts warn, in audit order, with both values"
    [
      "hostname differs (baseline testhost, current elsewhere); timings \
       may not be comparable";
      "OCaml version differs (baseline 5.1.1, current 5.2.0); timings may \
       not be comparable";
    ]
    (Compare.meta_warnings meta cur);
  (* Fields an older schema never recorded (zero / empty on one side)
     must not warn against every new run. *)
  let old =
    { meta with Benchfile.tree_cache_cap = 0; topology_pops = "" }
  in
  Alcotest.(check (list string)) "unrecorded old-schema fields stay silent"
    []
    (Compare.meta_warnings old meta);
  let resized = { meta with Benchfile.tree_cache_cap = 64 } in
  Alcotest.(check (list string)) "recorded capacity change does warn"
    [
      "tree cache capacity differs (baseline 4096, current 64); timings \
       may not be comparable";
    ]
    (Compare.meta_warnings meta resized)

let test_compare_table_renders () =
  let baseline = file [ result "a" 1000.0 1000.0 ] in
  let current = file [ result "a" 3000.0 3000.0 ] in
  let rows = Compare.run baseline current in
  let text = Format.asprintf "%a" Compare.pp_table rows in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "table flags the regression" true
    (contains "REGRESSED");
  Alcotest.(check bool) "table summarises the count" true
    (contains "1 kernel(s) regressed")

(* --- dashboard sparklines --- *)

module Dashboard = Rr_perf.Dashboard

let page_contains needle hay =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* A series dump hand-built around the degenerate shapes: the sparkline
   scaler divides by [n - 1] (x) and by [vmax - vmin] (y), so a
   single-sample ring and a constant metric are the regression cases —
   either must render finite coordinates, never "nan"/"inf" attribute
   soup. *)
let series_doc samples =
  Printf.sprintf
    "{\"schema\": 1, \"period_seconds\": 1, \"capacity\": 8, \"recorded\": \
     %d, \"retained\": %d, \"samples\": [%s]}"
    (List.length samples) (List.length samples)
    (String.concat ", " samples)

let render_series_exn samples =
  match Dashboard.render ~source:"test.json" (series_doc samples) with
  | Ok html -> html
  | Error e -> Alcotest.failf "dashboard render failed: %s" e

let check_finite_svg label html =
  let lowered = String.lowercase_ascii html in
  List.iter
    (fun tok ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: no %S in the page" label tok)
        false (page_contains tok lowered))
    [ "nan"; "infinity" ]

let test_dashboard_single_sample () =
  let html =
    render_series_exn
      [
        "{\"seq\": 0, \"time\": 10.0, \"counters\": {\"demo.requests\": 5}, \
         \"gauges\": {\"demo.level\": 3}, \"gc\": {\"minor_words\": 10, \
         \"major_words\": 0, \"minor_collections\": 1, \
         \"major_collections\": 0, \"heap_words\": 1000}}";
      ]
  in
  check_finite_svg "single sample" html;
  (* One tick cannot draw a line; the point marker stands in. *)
  Alcotest.(check bool) "renders the single-point marker" true
    (page_contains "circle class=\"pt\"" html);
  Alcotest.(check bool) "names the metric" true
    (page_contains "demo.requests" html)

let test_dashboard_constant_and_gappy_series () =
  (* Three ticks: a constant counter (zero vertical span), and a stat
     present only in the middle tick (single-point run inside gaps). *)
  let tick seq time stats =
    Printf.sprintf
      "{\"seq\": %d, \"time\": %.1f, \"counters\": {\"demo.requests\": 5}, \
       \"gc\": {\"minor_words\": 10, \"major_words\": 0, \
       \"minor_collections\": 1, \"major_collections\": 0, \"heap_words\": \
       1000}%s}"
      seq time stats
  in
  let html =
    render_series_exn
      [
        tick 0 10.0 "";
        tick 1 11.0 ", \"stats\": {\"probe.level\": 42}";
        tick 2 12.0 "";
      ]
  in
  check_finite_svg "constant series" html;
  (* The constant counter still draws its (flat, centred) line... *)
  Alcotest.(check bool) "constant series draws a line" true
    (page_contains "path class=\"line\"" html);
  (* ...and the lone mid-gap observation degrades to a point marker. *)
  Alcotest.(check bool) "gappy stat draws a point" true
    (page_contains "circle class=\"pt\"" html);
  Alcotest.(check bool) "names the gappy stat" true
    (page_contains "probe.level" html)

let () =
  Alcotest.run "bench_compare"
    [
      ( "json",
        [
          Alcotest.test_case "values and escapes" `Quick test_json_values;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "parses telemetry dumps" `Quick
            test_json_parses_own_exposition;
        ] );
      ( "harness",
        [
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "measure smoke" `Quick test_measure_smoke;
        ] );
      ( "benchfile",
        [
          Alcotest.test_case "roundtrip" `Quick test_benchfile_roundtrip;
          Alcotest.test_case "schema-2 compat" `Quick
            test_benchfile_schema2_compat;
          Alcotest.test_case "schema-5 compat" `Quick
            test_benchfile_schema5_compat;
          Alcotest.test_case "missing results rejected" `Quick
            test_benchfile_rejects_missing_results;
        ] );
      ( "compare",
        [
          Alcotest.test_case "self comparison clean" `Quick
            test_compare_self_is_clean;
          Alcotest.test_case "slowdown flagged" `Quick
            test_compare_flags_slowdown;
          Alcotest.test_case "noisy baseline widens band" `Quick
            test_compare_noise_widens_band;
          Alcotest.test_case "improvement and churn" `Quick
            test_compare_improvement_and_churn;
          Alcotest.test_case "meta comparability warnings" `Quick
            test_meta_warnings;
          Alcotest.test_case "table renders" `Quick test_compare_table_renders;
        ] );
      ( "dashboard",
        [
          Alcotest.test_case "single-sample ring renders finite" `Quick
            test_dashboard_single_sample;
          Alcotest.test_case "constant and gappy series render finite" `Quick
            test_dashboard_constant_and_gappy_series;
        ] );
    ]
