let edge_count ctx =
  let zoo = Rr_engine.Context.zoo ctx in
  List.length zoo.Rr_topology.Zoo.peering.Rr_topology.Peering.edges

let run ctx ppf =
  let zoo = Rr_engine.Context.zoo ctx in
  let peering = zoo.Rr_topology.Zoo.peering in
  Format.fprintf ppf "Fig 2: AS connectivity between all %d networks (%d peerings)@."
    (Rr_topology.Peering.net_count peering)
    (edge_count ctx);
  Rr_topology.Peering.pp ppf peering
