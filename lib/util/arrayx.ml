let fsum a =
  let sum = ref 0.0 and comp = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let y = a.(i) -. !comp in
    let t = !sum +. y in
    comp := t -. !sum -. y;
    sum := t
  done;
  !sum

let fmean a =
  assert (Array.length a > 0);
  fsum a /. float_of_int (Array.length a)

let fmin a =
  assert (Array.length a > 0);
  Array.fold_left min a.(0) a

let fmax a =
  assert (Array.length a > 0);
  Array.fold_left max a.(0) a

let argextreme better a =
  assert (Array.length a > 0);
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if better a.(i) a.(!best) then best := i
  done;
  !best

let argmin a = argextreme ( < ) a

let argmax a = argextreme ( > ) a

let normalize a =
  let total = fsum a in
  assert (total > 0.0);
  Array.map (fun x -> x /. total) a

let init_matrix rows cols f =
  Array.init rows (fun i -> Array.init cols (fun j -> f i j))

let take n a = if n >= Array.length a then Array.copy a else Array.sub a 0 n
