(** Bit-risk miles (Definition 1 / Eq. 1).

    For a path [p = p1 ... pK] between nodes [i = p1] and [j = pK]:
    [r_ij(p) = sum_{x=2..K} (d(p_x, p_{x-1})
               + kappa_ij * (lambda_h * o_h(p_x) + lambda_f * o_f(p_x)))]. *)

val bit_miles : Env.t -> int list -> float
(** Geographic length of a node path (the Level-3 "bit-miles"). *)

val bit_risk_miles : Env.t -> int list -> float
(** Eq. 1 on a node path; [kappa_ij] is taken from the path's endpoints.
    Returns 0 for paths shorter than two nodes. *)

val bit_risk_miles_kappa : Env.t -> kappa:float -> int list -> float
(** Eq. 1 with an explicit impact factor (pair-independent analyses). *)

val path_risk : Env.t -> int list -> float
(** The pure risk term [sum_{x=2..K} node_risk(p_x)] (unscaled by
    kappa). *)
