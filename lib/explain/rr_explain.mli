(** Route provenance: why a RiskRoute answer is what it is.

    Given an engine context and a pair, produce a structured record that
    decomposes Eq. 1 per arc into its [{miles, kappa, lambda_h * o_h,
    lambda_f * o_f}] ingredients, rolls them up per route, ranks the
    risk-contributing PoPs and arcs, tells the "risk detour" story
    against the shortest-miles baseline, and attaches computation
    provenance (content fingerprints, cache traffic, query runner and
    settled counts).

    The decomposition is {e exact}: every per-arc value replays the
    engine's own float expressions (see {!Riskroute.Metric.term}), so
    the left fold of arc weights equals the engine's bit-risk-mile
    total bit-for-bit — at any pool size, since routing is
    deterministic. [side.exact] re-checks the invariant on every
    explained route.

    Explain traffic records [explain.requests] / [explain.errors]
    counters and an [explain.seconds] histogram, and each computation
    runs under an ["explain.route"] span, so the new path feeds every
    existing sink (Prometheus, series, flight). *)

type arc = {
  tail : int;
  head : int;
  tail_name : string;
  head_name : string;
  miles : float;  (** [d(tail, head)] *)
  hist : float;  (** [lambda_h * risk_scale * o_h(head)] *)
  fcst : float;  (** [lambda_f * o_f(head)] *)
  weight : float;
      (** [miles + kappa * (hist + fcst)] — bitwise the arc weight the
          query kernel accumulated *)
}

type side = {
  label : string;  (** ["riskroute"] or ["shortest"] *)
  path : int list;
  names : string list;  (** PoP names along [path] *)
  arcs : arc list;  (** one per hop, in path order *)
  bit_miles : float;
  bit_risk_miles : float;  (** the engine's total for this path *)
  term_sum : float;  (** left fold of [arc.weight] — must equal it *)
  exact : bool;  (** [term_sum] = [bit_risk_miles] bit-for-bit *)
  hist_contribution : float;  (** sum of [kappa * hist] over arcs *)
  fcst_contribution : float;  (** sum of [kappa * fcst] over arcs *)
  runner : string;  (** ["plain"] / ["bidir"] / ["alt"] *)
  settled : int;  (** nodes settled answering this side's query *)
}

type diff = {
  diverted : bool;  (** the two paths differ *)
  extra_miles : float;  (** riskroute minus shortest bit-miles *)
  extra_hops : int;
  risk_avoided : float;  (** shortest minus riskroute risk contribution *)
  hist_avoided : float;
  fcst_avoided : float;
  bit_risk_delta : float;  (** shortest minus riskroute bit-risk miles *)
}

type contributor = {
  node : int;
  name : string;
  risk : float;  (** summed [kappa * (hist + fcst)] charged to this PoP *)
}

type t = {
  net : string;
  nodes : int;
  src : int;
  dst : int;
  src_name : string;
  dst_name : string;
  params : Riskroute.Params.t;
  advisory : string option;  (** e.g. ["SANDY advisory 20"] *)
  impact_src : float;
  impact_dst : float;
  kappa : float;
  riskroute : side;
  shortest : side;
  diff : diff;
  top_pops : contributor list;  (** descending risk, ties by id *)
  top_arcs : arc list;  (** descending [kappa * (hist + fcst)] *)
  fingerprints : (string * string) list;
      (** [params] / [advisory] / [geometry] / [risk] content digests
          ({!Rr_engine.Fingerprint}); continental records omit [risk]
          (no environment at that scale) *)
  cache_before : (string * int) list;
      (** {!Rr_engine.Context.stats_fields} sampled before the
          computation; the delta against [cache_after] is the cache
          hit/miss evidence *)
  cache_after : (string * int) list;
  domains : int;  (** resolved {!Rr_util.Parallel} pool size *)
}

val schema_version : int
(** Version of the JSON document {!to_json} emits (1). *)

val explain :
  ?params:Riskroute.Params.t ->
  ?advisory:Rr_forecast.Advisory.t ->
  ?top_k:int ->
  Rr_engine.Context.t ->
  Rr_topology.Net.t ->
  src:int ->
  dst:int ->
  (t, string) result
(** Explain one pair on a corpus network through the cached Env
    pipeline. [top_k] bounds [top_pops] / [top_arcs] (default 5).
    Errors on out-of-range ids or a disconnected pair. *)

val explain_continental :
  ?params:Riskroute.Params.t ->
  ?top_k:int ->
  Rr_engine.Context.t ->
  pops:int ->
  src:int ->
  dst:int ->
  (t, string) result
(** Explain one pair on the synthetic continental-[pops] topology
    through the Env-free CSR pipeline ({!Rr_engine.Context.net_query}).
    The forecast term is identically zero at this scale. *)

val explain_named :
  ?lambda_h:float ->
  ?storm:string ->
  ?tick:int ->
  ?top_k:int ->
  Rr_engine.Context.t ->
  net:string ->
  src:string ->
  dst:string ->
  (t, string) result
(** Name-based front door shared by the CLI subcommand and the live
    endpoint: [net] is a corpus name or [continental-<pops>]; [src] /
    [dst] are PoP city names or numeric ids; [storm] ([irene] /
    [katrina] / [sandy]) overlays the advisory at [tick] (default 40,
    corpus networks only). *)

val to_json : t -> string
(** Schema-{!schema_version} JSON. Floats are printed with [%.17g], so
    every value round-trips exactly and external consumers can verify
    the decomposition bit-for-bit. *)

val of_query : Rr_engine.Context.t -> (string * string) list -> (string, string) result
(** The [/explain] provider body: decoded query parameters ([net] /
    [src] / [dst], optional [lambda_h] / [storm] / [tick]) to the JSON
    document, or a client-error message. Register with
    [Rr_live.set_explain_provider (of_query ctx)]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering: per-arc tables for both routes, the risk
    detour summary, top contributors, and the provenance block. *)
