type error =
  | Missing_center
  | Missing_storm_name
  | Malformed of string

let error_to_string = function
  | Missing_center -> "advisory has no parsable LATITUDE/LONGITUDE sentence"
  | Missing_storm_name -> "advisory has no storm-name header"
  | Malformed msg -> "malformed advisory: " ^ msg

let lat_re =
  Re.compile
    (Re.Pcre.re {|LATITUDE\s+([0-9]+(?:\.[0-9]+)?)\s+(NORTH|SOUTH)|})

let lon_re =
  Re.compile
    (Re.Pcre.re {|LONGITUDE\s+([0-9]+(?:\.[0-9]+)?)\s+(EAST|WEST)|})

let hurricane_re =
  Re.compile
    (Re.Pcre.re
       {|HURRICANE-FORCE\s+WINDS\s+EXTEND\s+OUTWARD\s+UP\s+TO\s+([0-9]+)\s+MILES|})

let tropical_re =
  Re.compile
    (Re.Pcre.re
       {|TROPICAL-STORM-FORCE\s+WINDS\s+EXTEND\s+OUTWARD\s+UP\s+TO\s+([0-9]+)\s+MILES|})

let storm_re =
  Re.compile
    (Re.Pcre.re
       {|(?:HURRICANE|TROPICAL\s+STORM|POST-TROPICAL\s+CYCLONE)\s+([A-Z]+)\s+ADVISORY\s+NUMBER\s+([0-9]+)|})

(* Issuance line, e.g. "1100 AM EDT SAT AUG 27 2011". *)
let issued_re =
  Re.compile
    (Re.Pcre.re
       {|([0-9]{3,4}\s+(?:AM|PM)\s+[A-Z]{3}\s+[A-Z]{3}\s+[A-Z]{3}\s+[0-9]{1,2}\s+[0-9]{4})|})

let first_group re text =
  match Re.exec_opt re text with
  | Some groups -> Some (Re.Group.get groups 1)
  | None -> None

let advisory text =
  let text = String.uppercase_ascii text in
  match Re.exec_opt storm_re text with
  | None -> Error Missing_storm_name
  | Some header -> (
    let storm = Re.Group.get header 1 in
    let number = int_of_string (Re.Group.get header 2) in
    match (Re.exec_opt lat_re text, Re.exec_opt lon_re text) with
    | None, _ | _, None -> Error Missing_center
    | Some latg, Some long -> (
      let lat_value = float_of_string (Re.Group.get latg 1) in
      let lat =
        match Re.Group.get latg 2 with
        | "NORTH" -> lat_value
        | _ -> -.lat_value
      in
      let lon_value = float_of_string (Re.Group.get long 1) in
      let lon =
        match Re.Group.get long 2 with
        | "EAST" -> lon_value
        | _ -> -.lon_value
      in
      let radius re =
        match first_group re text with
        | Some miles -> float_of_string miles
        | None -> 0.0
      in
      let issued =
        match first_group issued_re text with
        | Some s -> s
        | None -> "UNKNOWN TIME"
      in
      match
        Advisory.make ~storm ~number ~issued
          ~center:(Rr_geo.Coord.make ~lat ~lon)
          ~hurricane_radius_miles:(radius hurricane_re)
          ~tropical_radius_miles:(radius tropical_re)
      with
      | adv -> Ok adv
      | exception Invalid_argument msg -> Error (Malformed msg)))
