(** Disaster case studies (Sec. 7.3 / Figs. 12-13): RiskRoute versus
    shortest path tick-by-tick through a hurricane's advisory sequence.

    At each advisory, the environment's forecast risk [o_f] is refreshed
    from the parsed advisory and the risk-reduction ratio (Eq. 5) is
    recomputed; the resulting series shows how much a preemptive reroute
    would have helped as the storm evolved. *)

type point = {
  tick : int;          (** advisory index, 0-based *)
  label : string;      (** advisory issuance time *)
  risk_reduction : float;
  distance_increase : float;
  pops_in_scope : int; (** PoPs inside tropical-storm-force winds *)
}

type series = {
  network : string;
  storm : string;
  scope_fraction : float;
      (** fraction of PoPs ever inside the event's tropical scope *)
  points : point list;
}

val tier1 :
  ?params:Params.t ->
  ?pair_cap:int ->
  ?tick_stride:int ->
  ?base:Env.t ->
  ?trees_for:(Env.t -> int -> Rr_graph.Dijkstra.tree) ->
  storm:Rr_forecast.Track.storm ->
  Rr_topology.Net.t ->
  series
(** Intradomain series for one Tier-1 network (Fig. 12). [pair_cap]
    (default 1500) bounds sampled pairs per tick; [tick_stride] (default
    1) evaluates every n-th advisory. [base], when given, replaces the
    internally-built [Env.of_net] (e.g. an engine-cached environment);
    [trees_for] supplies cached geographic shortest-path trees for each
    per-tick environment (see [Rr_engine.Context.dist_trees] — distance
    trees are advisory-independent, so one cache line serves every
    tick). *)

val regional :
  ?params:Params.t ->
  ?pair_cap:int ->
  ?tick_stride:int ->
  ?trees_for:(Env.t -> int -> Rr_graph.Dijkstra.tree) ->
  storm:Rr_forecast.Track.storm ->
  merged:Interdomain.t ->
  base_env:Env.t ->
  int ->
  series
(** [regional ~storm ~merged ~base_env i] — interdomain series for the
    regional network with member index [i] over the merged graph
    (Fig. 13): sources are the regional's PoPs, destinations all regional
    PoPs. *)

val in_scope_filter :
  storm:Rr_forecast.Track.storm -> Rr_topology.Net.t list ->
  (Rr_topology.Net.t * float) list
(** Networks with more than 20% of PoPs in the event's final scope (the
    Sec. 7.3.1 inclusion rule), with their scope fractions. *)
