(** Table 3: coefficient of determination (R^2) of regional network
    characteristics against the interdomain ratios of Fig. 8. *)

val paper : (string * (float * float)) list
(** Paper's (risk-ratio R^2, distance-ratio R^2) per characteristic. *)

val default_spec : Rr_engine.Spec.t
(** Same as {!Fig8.default_spec} — the points are shared. *)

val compute :
  Rr_engine.Context.t -> Rr_engine.Spec.t -> Riskroute.Characteristics.row list

val run : Rr_engine.Context.t -> Format.formatter -> unit
