open Rr_util

type style = Mesh | Ring

type spec = {
  name : string;
  tier : Net.tier;
  states : string list;
  pop_count : int;
  style : style;
  mesh_fraction : float;
  hub_links : int;
}

(* Weighted sample of [k] site assignments over the city pool. Cities can
   repeat once the pool is exhausted (or when a metro is drawn again after
   every city has been used), yielding secondary metro PoPs. *)
let choose_sites rng pool k =
  let n = Array.length pool in
  let weights = Array.map (fun (c : Rr_cities.Data.city) -> float_of_int c.population) pool in
  let live = Array.copy weights in
  let uses = Array.make n 0 in
  let order = ref [] in
  for _ = 1 to k do
    let total = Arrayx.fsum live in
    let idx =
      if total > 0.0 then Prng.categorical rng live
      else Prng.categorical rng weights (* pool exhausted: re-draw by population *)
    in
    live.(idx) <- 0.0;
    uses.(idx) <- uses.(idx) + 1;
    order := (idx, uses.(idx)) :: !order
  done;
  List.rev !order

let jitter rng coord =
  (* About 0.03 degrees sigma: secondary metro PoPs stay within a couple
     of miles of the city centre (carrier hotels cluster downtown), so
     they share the metro's risk surface. *)
  let dlat = 0.03 *. Prng.gaussian rng in
  let dlon = 0.03 *. Prng.gaussian rng in
  let moved =
    Rr_geo.Coord.make
      ~lat:(Float.max (-89.0) (Float.min 89.0 (Rr_geo.Coord.lat coord +. dlat)))
      ~lon:(Float.max (-179.0) (Float.min 179.0 (Rr_geo.Coord.lon coord +. dlon)))
  in
  Rr_geo.Bbox.clamp Rr_geo.Bbox.conus moved

let build ~rng spec =
  if spec.pop_count < 1 then invalid_arg "Builder.build: pop_count < 1";
  let pool =
    match spec.states with
    | [] -> Rr_cities.Data.all
    | states ->
      Array.of_list (Rr_cities.Query.in_states states)
  in
  if Array.length pool = 0 then invalid_arg "Builder.build: empty city pool";
  let sites = choose_sites rng pool spec.pop_count in
  let pops =
    Array.of_list
      (List.mapi
         (fun id (city_idx, metro_index) ->
           let city = pool.(city_idx) in
           let coord =
             if metro_index = 1 then city.Rr_cities.Data.coord
             else jitter rng city.Rr_cities.Data.coord
           in
           Pop.make ~id ~city:city.Rr_cities.Data.name
             ~state:city.Rr_cities.Data.state ~metro_index coord)
         sites)
  in
  let n = Array.length pops in
  let dist u v = Rr_geo.Distance.miles pops.(u).Pop.coord pops.(v).Pop.coord in
  (* Ring backbone: tour the PoPs by angle around the footprint centroid,
     the shape of small national backbones in the Topology Zoo. *)
  let ring_backbone () =
    let mean_lat = Arrayx.fmean (Array.map (fun p -> Rr_geo.Coord.lat p.Pop.coord) pops) in
    let mean_lon = Arrayx.fmean (Array.map (fun p -> Rr_geo.Coord.lon p.Pop.coord) pops) in
    let angle i =
      atan2
        (Rr_geo.Coord.lat pops.(i).Pop.coord -. mean_lat)
        (Rr_geo.Coord.lon pops.(i).Pop.coord -. mean_lon)
    in
    let order =
      List.sort
        (fun a b -> Float.compare (angle a) (angle b))
        (Listx.range 0 n)
    in
    let g = Rr_graph.Graph.create n in
    (match order with
    | [] | [ _ ] -> ()
    | first :: _ ->
      let rec link = function
        | a :: (b :: _ as rest) ->
          Rr_graph.Graph.add_edge g a b;
          link rest
        | [ last ] -> if last <> first then Rr_graph.Graph.add_edge g last first
        | [] -> ()
      in
      link order);
    g
  in
  let backbone =
    match spec.style with
    | Mesh -> Rr_graph.Spanner.mst ~n ~dist
    | Ring -> if n >= 3 then ring_backbone () else Rr_graph.Spanner.mst ~n ~dist
  in
  let graph =
    if n <= 2 then backbone
    else begin
      let gabriel = Rr_graph.Spanner.gabriel ~n ~dist in
      let g = backbone in
      List.iter
        (fun (u, v) ->
          if Prng.float rng 1.0 < spec.mesh_fraction then
            Rr_graph.Graph.add_edge g u v)
        (Rr_graph.Graph.edges gabriel);
      g
    end
  in
  (* Hub shortcuts: ring the biggest metros together so large networks get
     the long-haul express links real backbones have. *)
  if spec.hub_links > 0 && n > 3 then begin
    let pop_weight i =
      match Rr_cities.Query.by_name ~state:pops.(i).Pop.state pops.(i).Pop.city with
      | Some c -> float_of_int c.Rr_cities.Data.population
      | None -> 0.0
    in
    let ranked =
      List.sort
        (fun a b -> Float.compare (pop_weight b) (pop_weight a))
        (Listx.range 0 n)
    in
    let hubs = Array.of_list (Listx.take (min n (spec.hub_links + 1)) ranked) in
    for i = 0 to Array.length hubs - 2 do
      if hubs.(i) <> hubs.(i + 1) then Rr_graph.Graph.add_edge graph hubs.(i) hubs.(i + 1)
    done
  end;
  Net.make ~name:spec.name ~tier:spec.tier ~states:spec.states pops graph

(* ------------------------------------------------------------------ *)
(* Continental-scale generation                                       *)

type continental_spec = {
  name : string;
  pop_count : int;
  region_size : int;
  cell_degrees : float;
  mesh_fraction : float;
  interconnects : int;
  hub_links : int;
}

let continental_defaults ~name ~pop_count =
  {
    name;
    pop_count;
    region_size = 250;
    cell_degrees = 5.0;
    mesh_fraction = 0.35;
    interconnects = 2;
    hub_links = 12;
  }

(* A continental net is grown cell by cell over a geographic grid:
   PoP counts are allocated to grid cells proportionally to the cells'
   gazetteer population (largest remainder), each cell's sites are drawn
   population-weighted within the cell, the sites are wired as regional
   Mesh/Ring networks of at most [region_size] PoPs, and the regions are
   stitched along a spanning tree of their centroids plus sampled
   chords. Everything draws from the single [rng] in a fixed order, so
   equal seeds give equal networks. *)
let continental ~rng (spec : continental_spec) =
  if spec.pop_count < 1 then invalid_arg "Builder.continental: pop_count < 1";
  if spec.region_size < 1 then
    invalid_arg "Builder.continental: region_size < 1";
  if spec.interconnects < 1 then
    invalid_arg "Builder.continental: interconnects < 1";
  let pool = Rr_cities.Data.all in
  (* Geographic grid cells, in deterministic (lat band, lon band) order;
     per-cell city lists keep gazetteer order. *)
  let cell_of (c : Rr_cities.Data.city) =
    ( int_of_float (Float.floor (Rr_geo.Coord.lat c.coord /. spec.cell_degrees)),
      int_of_float (Float.floor (Rr_geo.Coord.lon c.coord /. spec.cell_degrees))
    )
  in
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      let k = cell_of c in
      Hashtbl.replace tbl k
        (c :: Option.value (Hashtbl.find_opt tbl k) ~default:[]))
    pool;
  let cell_keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []) in
  let cell_pools =
    Array.of_list
      (List.map (fun k -> Array.of_list (List.rev (Hashtbl.find tbl k))) cell_keys)
  in
  let ncells = Array.length cell_pools in
  (* Largest-remainder allocation of the PoP budget across cells,
     proportional to cell population. *)
  let cellpop =
    Array.map
      (fun cities ->
        Arrayx.fsum
          (Array.map
             (fun (c : Rr_cities.Data.city) -> float_of_int c.population)
             cities))
      cell_pools
  in
  let total_pop = Arrayx.fsum cellpop in
  let quota =
    Array.map (fun w -> float_of_int spec.pop_count *. w /. total_pop) cellpop
  in
  let alloc = Array.map (fun q -> int_of_float (Float.floor q)) quota in
  let assigned = Array.fold_left ( + ) 0 alloc in
  let order =
    List.sort
      (fun a b ->
        let fa = quota.(a) -. Float.floor quota.(a)
        and fb = quota.(b) -. Float.floor quota.(b) in
        if fa = fb then compare a b else Float.compare fb fa)
      (Listx.range 0 ncells)
  in
  let rec top_up remaining = function
    | [] -> if remaining > 0 then top_up remaining order
    | i :: rest ->
      if remaining > 0 then begin
        alloc.(i) <- alloc.(i) + 1;
        top_up (remaining - 1) rest
      end
  in
  top_up (spec.pop_count - assigned) order;
  (* Sites per cell, sliced into balanced regional chunks. *)
  let pops_rev = ref [] in
  let next_id = ref 0 in
  let chunks = ref [] in
  for i = 0 to ncells - 1 do
    if alloc.(i) > 0 then begin
      let sites = choose_sites rng cell_pools.(i) alloc.(i) in
      let ids =
        List.map
          (fun (city_idx, metro_index) ->
            let city = cell_pools.(i).(city_idx) in
            let coord =
              if metro_index = 1 then city.Rr_cities.Data.coord
              else jitter rng city.Rr_cities.Data.coord
            in
            let id = !next_id in
            incr next_id;
            pops_rev :=
              Pop.make ~id ~city:city.Rr_cities.Data.name
                ~state:city.Rr_cities.Data.state ~metro_index coord
              :: !pops_rev;
            id)
          sites
      in
      let m = List.length ids in
      let nchunks = (m + spec.region_size - 1) / spec.region_size in
      let ids = Array.of_list ids in
      for c = 0 to nchunks - 1 do
        let lo = c * m / nchunks and hi = (c + 1) * m / nchunks in
        chunks := Array.sub ids lo (hi - lo) :: !chunks
      done
    end
  done;
  let chunks = Array.of_list (List.rev !chunks) in
  let pops = Array.of_list (List.rev !pops_rev) in
  let n = Array.length pops in
  let coord i = pops.(i).Pop.coord in
  let dist u v = Rr_geo.Distance.miles (coord u) (coord v) in
  let graph = Rr_graph.Graph.create n in
  (* Regional wiring: alternate Mesh (MST backbone) and Ring (angular
     tour) flavours, plus nearest-neighbour chords sampled at
     [mesh_fraction] — the same texture [build] gives zoo-size maps,
     with k-NN standing in for the O(n^3) Gabriel construction. *)
  let ring_region ids =
    let m = Array.length ids in
    let mean_lat =
      Arrayx.fmean (Array.map (fun i -> Rr_geo.Coord.lat (coord i)) ids)
    in
    let mean_lon =
      Arrayx.fmean (Array.map (fun i -> Rr_geo.Coord.lon (coord i)) ids)
    in
    let angle i =
      atan2
        (Rr_geo.Coord.lat (coord ids.(i)) -. mean_lat)
        (Rr_geo.Coord.lon (coord ids.(i)) -. mean_lon)
    in
    let tour =
      List.sort (fun a b -> Float.compare (angle a) (angle b)) (Listx.range 0 m)
    in
    match tour with
    | [] | [ _ ] -> ()
    | first :: _ ->
      let rec link = function
        | a :: (b :: _ as rest) ->
          Rr_graph.Graph.add_edge graph ids.(a) ids.(b);
          link rest
        | [ last ] ->
          if last <> first then Rr_graph.Graph.add_edge graph ids.(last) ids.(first)
        | [] -> ()
      in
      link tour
  in
  Array.iteri
    (fun ci ids ->
      let m = Array.length ids in
      if m >= 2 then begin
        let ldist a b = dist ids.(a) ids.(b) in
        if m >= 4 && ci land 1 = 1 then ring_region ids
        else
          List.iter
            (fun (a, b) -> Rr_graph.Graph.add_edge graph ids.(a) ids.(b))
            (Rr_graph.Graph.edges (Rr_graph.Spanner.mst ~n:m ~dist:ldist));
        if m >= 3 then
          List.iter
            (fun (a, b) ->
              if Prng.float rng 1.0 < spec.mesh_fraction then
                Rr_graph.Graph.add_edge graph ids.(a) ids.(b))
            (Rr_graph.Graph.edges (Rr_graph.Spanner.knn ~n:m ~dist:ldist ~k:3))
      end)
    chunks;
  (* Stitch the regions: a spanning tree over region centroids plus
     sampled nearest-neighbour chords; each selected region pair gets
     its [interconnects] closest cross-region PoP pairs as links. *)
  let nregions = Array.length chunks in
  if nregions > 1 then begin
    let centroid ids =
      Rr_geo.Coord.make
        ~lat:(Arrayx.fmean (Array.map (fun i -> Rr_geo.Coord.lat (coord i)) ids))
        ~lon:(Arrayx.fmean (Array.map (fun i -> Rr_geo.Coord.lon (coord i)) ids))
    in
    let centroids = Array.map centroid chunks in
    let cdist a b = Rr_geo.Distance.miles centroids.(a) centroids.(b) in
    let connect_regions a b =
      let pairs = ref [] in
      Array.iter
        (fun u -> Array.iter (fun v -> pairs := (dist u v, u, v) :: !pairs) chunks.(b))
        chunks.(a);
      let ranked =
        List.sort
          (fun (da, ua, va) (db, ub, vb) ->
            if da = db then compare (ua, va) (ub, vb) else Float.compare da db)
          !pairs
      in
      List.iter
        (fun (_, u, v) -> Rr_graph.Graph.add_edge graph u v)
        (Listx.take spec.interconnects ranked)
    in
    List.iter
      (fun (a, b) -> connect_regions a b)
      (Rr_graph.Graph.edges (Rr_graph.Spanner.mst ~n:nregions ~dist:cdist));
    if nregions >= 3 then
      List.iter
        (fun (a, b) ->
          if Prng.float rng 1.0 < spec.mesh_fraction then connect_regions a b)
        (Rr_graph.Graph.edges (Rr_graph.Spanner.knn ~n:nregions ~dist:cdist ~k:2))
  end;
  (* Long-haul express links chaining the biggest distinct metros. *)
  if spec.hub_links > 0 && n > 3 then begin
    let seen = Hashtbl.create 64 in
    let metros = ref [] in
    Array.iter
      (fun (p : Pop.t) ->
        let key = (p.Pop.city, p.Pop.state) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          let w =
            match Rr_cities.Query.by_name ~state:p.Pop.state p.Pop.city with
            | Some c -> float_of_int c.Rr_cities.Data.population
            | None -> 0.0
          in
          metros := (w, p.Pop.id) :: !metros
        end)
      pops;
    let ranked =
      List.sort
        (fun (wa, ia) (wb, ib) ->
          if wa = wb then compare ia ib else Float.compare wb wa)
        !metros
    in
    let hubs =
      Array.of_list (List.map snd (Listx.take (spec.hub_links + 1) ranked))
    in
    for i = 0 to Array.length hubs - 2 do
      if hubs.(i) <> hubs.(i + 1) then
        Rr_graph.Graph.add_edge graph hubs.(i) hubs.(i + 1)
    done
  end;
  Net.make ~name:spec.name ~tier:Net.Tier1 pops graph
