type point = {
  tick : int;
  label : string;
  risk_reduction : float;
  distance_increase : float;
  pops_in_scope : int;
}

type series = {
  network : string;
  storm : string;
  scope_fraction : float;
  points : point list;
}

let net_of_merged merged regional =
  (Interdomain.peering merged).Rr_topology.Peering.nets.(regional)

let strided stride items =
  List.filteri (fun i _ -> i mod stride = 0) items

let series_of_ticks ~network ~storm_name ~scope_fraction points =
  { network; storm = storm_name; scope_fraction; points }

let tier1 ?params ?(pair_cap = 1500) ?(tick_stride = 1) ?base ?trees_for
    ~(storm : Rr_forecast.Track.storm) net =
  let advisories = Rr_forecast.Track.advisories storm in
  let base = match base with Some e -> e | None -> Env.of_net ?params net in
  let points =
    List.mapi
      (fun tick advisory ->
        let env = Env.with_advisory base (Some advisory) in
        let trees = Option.map (fun f -> f env) trees_for in
        let r = Ratios.intradomain ~pair_cap ?trees env in
        {
          tick;
          label = advisory.Rr_forecast.Advisory.issued;
          risk_reduction = r.Ratios.risk_reduction;
          distance_increase = r.Ratios.distance_increase;
          pops_in_scope = Rr_forecast.Riskfield.pops_in_scope advisory net;
        })
      (strided tick_stride advisories)
  in
  (* Re-number ticks to advisory indices when striding. *)
  let points = List.mapi (fun i p -> { p with tick = i * tick_stride }) points in
  series_of_ticks ~network:net.Rr_topology.Net.name
    ~storm_name:storm.Rr_forecast.Track.name
    ~scope_fraction:(Rr_forecast.Riskfield.scope_fraction advisories net)
    points

let regional ?params ?(pair_cap = 800) ?(tick_stride = 1) ?trees_for
    ~(storm : Rr_forecast.Track.storm) ~merged ~base_env regional =
  let advisories = Rr_forecast.Track.advisories storm in
  let net = net_of_merged merged regional in
  let base_env =
    match params with
    | None -> base_env
    | Some p -> Env.with_params base_env p
  in
  let sources = Interdomain.net_nodes merged regional in
  let dests = Interdomain.regional_nodes merged in
  let points =
    List.mapi
      (fun tick advisory ->
        let env = Env.with_advisory base_env (Some advisory) in
        let trees = Option.map (fun f -> f env) trees_for in
        let r = Ratios.between ~pair_cap ?trees env ~sources ~dests in
        {
          tick;
          label = advisory.Rr_forecast.Advisory.issued;
          risk_reduction = r.Ratios.risk_reduction;
          distance_increase = r.Ratios.distance_increase;
          pops_in_scope = Rr_forecast.Riskfield.pops_in_scope advisory net;
        })
      (strided tick_stride advisories)
  in
  let points = List.mapi (fun i p -> { p with tick = i * tick_stride }) points in
  series_of_ticks ~network:net.Rr_topology.Net.name
    ~storm_name:storm.Rr_forecast.Track.name
    ~scope_fraction:(Rr_forecast.Riskfield.scope_fraction advisories net)
    points

let in_scope_filter ~(storm : Rr_forecast.Track.storm) nets =
  let advisories = Rr_forecast.Track.advisories storm in
  List.filter_map
    (fun net ->
      let fraction = Rr_forecast.Riskfield.scope_fraction advisories net in
      if fraction > 0.2 then Some (net, fraction) else None)
    nets
