(* Storm replay: stream a whole hurricane season of advisories through
   the engine tick-by-tick and watch the advised routes move.

   The driver exists to exercise (and measure) the two advisory-stepping
   paths against each other: [Full] rebuilds the environment from
   scratch every tick exactly as the pre-delta engine did, [Incremental]
   steps via [Context.patched_env] (sparse field diff -> Env.patch ->
   tree keep/repair migration). The per-tick route output is required to
   be byte-identical between the two — CI diffs it — while the work
   totals (environments built, nodes settled) must favour the
   incremental path. Everything mode-dependent therefore lives in the
   summary, never in the rendered tick rows. *)

type mode = Full | Incremental

let mode_name = function Full -> "full" | Incremental -> "incremental"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "full" -> Some Full
  | "incremental" | "incr" -> Some Incremental
  | _ -> None

type row = {
  index : int;
  issued : string;
  in_scope : int;
  changed : int;
  churned : int;
  risk_cost : float;
  mean_detour : float;
}

type t = {
  net_name : string;
  storm_name : string;
  mode : mode;
  flows : (int * int) array;
  rows : row list;
  churn_total : int;
  changed_ticks : int;
  envs_built : int;
  envs_patched : int;
  settled_nodes : int;
  trees_kept : int;
  trees_repaired : int;
  trees_evicted : int;
  patched_arcs : int;
}

let default_pairs = 8

let pairs_from_env () =
  match Rr_obs.Envvar.(trimmed replay_pairs) with
  | None -> None
  | Some s -> (
    match int_of_string_opt s with Some p when p > 0 -> Some p | _ -> None)

let ticks_from_env () =
  match Rr_obs.Envvar.(trimmed replay_ticks) with
  | None -> None
  | Some s -> (
    match int_of_string_opt s with Some c when c > 0 -> Some c | _ -> None)

let flow_seed = 0x7265706c6179L (* "replay" *)

(* Deterministic flow sample: fixed seed, pairs drawn within one
   connected component so every tick can route them. *)
let draw_flows (net : Rr_topology.Net.t) ~pairs =
  let n = Rr_topology.Net.pop_count net in
  if n < 2 then invalid_arg "Replay: network too small for flows";
  let labels = Rr_graph.Component.components net.Rr_topology.Net.graph in
  let rng = Rr_util.Prng.create flow_seed in
  let attempts = ref 0 in
  Array.init pairs (fun _ ->
      let rec draw () =
        incr attempts;
        if !attempts > 10_000 then
          failwith "Replay: could not sample connected flow pairs";
        let src = Rr_util.Prng.int rng n and dst = Rr_util.Prng.int rng n in
        if src <> dst && labels.(src) = labels.(dst) then (src, dst)
        else draw ()
      in
      draw ())

let run ?(mode = Incremental) ?pairs ?ticks ctx ~(net : Rr_topology.Net.t)
    ~(storm : Rr_forecast.Track.storm) =
  Rr_obs.with_kernel "replay.run" (fun () ->
      let pairs =
        match pairs with
        | Some p ->
          if p <= 0 then invalid_arg "Replay.run: pairs must be positive";
          p
        | None -> Option.value (pairs_from_env ()) ~default:default_pairs
      in
      let advisories = Rr_forecast.Track.advisories storm in
      let advisories =
        let cap =
          match ticks with
          | Some c ->
            if c <= 0 then invalid_arg "Replay.run: ticks must be positive";
            Some c
          | None -> ticks_from_env ()
        in
        match cap with
        | None -> advisories
        | Some c -> List.filteri (fun i _ -> i < c) advisories
      in
      let coords =
        Array.map
          (fun (p : Rr_topology.Pop.t) -> p.Rr_topology.Pop.coord)
          net.Rr_topology.Net.pops
      in
      let flows = draw_flows net ~pairs in
      let s0 = Rr_engine.Context.stats ctx in
      let prev_paths : int list option array = Array.make pairs None in
      let prev_adv = ref None and parent = ref None in
      let rows = ref [] in
      List.iteri
        (fun index adv ->
          let env =
            match (mode, !parent) with
            | Incremental, Some p ->
              Rr_engine.Context.patched_env ~advisory:adv ctx net ~parent:p
            | Incremental, None | Full, _ ->
              Rr_engine.Context.env ~advisory:adv ctx net
          in
          parent := Some env;
          (* Mode-independent row ingredients: the field delta is
             recomputed from the advisory pair here (never taken from
             the engine) so both modes print identical numbers. *)
          let delta =
            Rr_forecast.Riskfield.diff ~prev:!prev_adv ~next:(Some adv) coords
          in
          prev_adv := Some adv;
          let risk_tree = Rr_engine.Context.risk_trees ctx env in
          let dist_tree = Rr_engine.Context.dist_trees ctx env in
          let churned = ref 0
          and risk_cost = ref 0.0
          and detour_sum = ref 0.0 in
          Array.iteri
            (fun i (src, dst) ->
              let rt = risk_tree src in
              let path =
                Rr_graph.Dijkstra.path_of_tree rt ~src ~dst
              in
              (match (path, prev_paths.(i)) with
              | Some p, Some q when p <> q -> incr churned
              | _, None | None, _ | Some _, Some _ -> ());
              prev_paths.(i) <- path;
              risk_cost := !risk_cost +. rt.Rr_graph.Dijkstra.dist.(dst);
              let shortest = (dist_tree src).Rr_graph.Dijkstra.dist.(dst) in
              let miles =
                match path with
                | Some p -> Riskroute.Metric.bit_miles env p
                | None -> shortest
              in
              detour_sum := !detour_sum +. (miles /. shortest))
            flows;
          rows :=
            {
              index;
              issued = adv.Rr_forecast.Advisory.issued;
              in_scope = Rr_forecast.Riskfield.pops_in_scope adv net;
              changed = Array.length delta.Rr_forecast.Riskfield.indices;
              churned = !churned;
              risk_cost = !risk_cost;
              mean_detour = !detour_sum /. float_of_int pairs;
            }
            :: !rows)
        advisories;
      let s1 = Rr_engine.Context.stats ctx in
      let rows = List.rev !rows in
      {
        net_name = net.Rr_topology.Net.name;
        storm_name = storm.Rr_forecast.Track.name;
        mode;
        flows;
        rows;
        churn_total = List.fold_left (fun acc r -> acc + r.churned) 0 rows;
        changed_ticks =
          List.fold_left
            (fun acc r -> if r.changed > 0 then acc + 1 else acc)
            0 rows;
        envs_built = s1.env_misses - s0.env_misses;
        envs_patched = s1.env_patched - s0.env_patched;
        settled_nodes = s1.settled_nodes - s0.settled_nodes;
        trees_kept = s1.delta_trees_kept - s0.delta_trees_kept;
        trees_repaired = s1.delta_trees_repaired - s0.delta_trees_repaired;
        trees_evicted = s1.delta_trees_evicted - s0.delta_trees_evicted;
        patched_arcs = s1.delta_patched_arcs - s0.delta_patched_arcs;
      })

(* The rendered report is the byte-identity surface: nothing in it may
   depend on the stepping mode, and floats print with full precision
   (%.17g round-trips every double) so a single-ulp divergence between
   the full and incremental paths fails the CI diff instead of hiding
   below a rounding. *)
let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "replay %s / %s: %d advisories, %d flows\n" t.net_name
       t.storm_name (List.length t.rows)
       (Array.length t.flows));
  Buffer.add_string buf
    (Printf.sprintf "flows: %s\n"
       (String.concat " "
          (Array.to_list
             (Array.map (fun (s, d) -> Printf.sprintf "%d->%d" s d) t.flows))));
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "tick %02d  %s  in-scope %d  changed %d  churn %d/%d  risk %.17g  \
            detour %.17g\n"
           r.index r.issued r.in_scope r.changed r.churned
           (Array.length t.flows) r.risk_cost r.mean_detour))
    t.rows;
  Buffer.add_string buf
    (Printf.sprintf "season: churn-total %d, changed-ticks %d/%d\n"
       t.churn_total t.changed_ticks (List.length t.rows));
  Buffer.contents buf

let summary_json t =
  Printf.sprintf
    "{\n\
    \  \"schema\": 1,\n\
    \  \"net\": %S,\n\
    \  \"storm\": %S,\n\
    \  \"mode\": %S,\n\
    \  \"ticks\": %d,\n\
    \  \"flows\": %d,\n\
    \  \"churn_total\": %d,\n\
    \  \"changed_ticks\": %d,\n\
    \  \"envs_built\": %d,\n\
    \  \"envs_patched\": %d,\n\
    \  \"settled_nodes\": %d,\n\
    \  \"trees_kept\": %d,\n\
    \  \"trees_repaired\": %d,\n\
    \  \"trees_evicted\": %d,\n\
    \  \"patched_arcs\": %d\n\
     }\n"
    t.net_name t.storm_name (mode_name t.mode) (List.length t.rows)
    (Array.length t.flows) t.churn_total t.changed_ticks t.envs_built
    t.envs_patched t.settled_nodes t.trees_kept t.trees_repaired
    t.trees_evicted t.patched_arcs
