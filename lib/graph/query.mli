(** Point-to-point shortest-path queries with goal direction.

    A query object wraps one CSR geometry (offsets, targets, per-arc
    bit-miles) and serves single-pair queries under any arc-weight
    function that {e dominates} bit-miles ([weight k >= arc_miles k],
    true of every RiskRoute objective: risk only adds non-negative
    weight). Three runners are available:

    - {e plain} — the {!Dijkstra.single_pair_flat} kernel;
    - {e bidir} — bidirectional Dijkstra, expanding whichever frontier
      has the smaller top key; the backward search weighs reverse arcs
      through the forward arc index via {!Graph.csr_mates};
    - {e alt} — A* with landmark lower bounds (ALT): ~16 landmarks
      chosen by farthest-point selection over bit-miles, their full
      distance trees reused across every weight function on the same
      geometry.

    All three return bit-identical (cost, path) answers: costs are the
    same left-fold of arc weights the plain kernel accumulates, and
    equal-cost tie-breaks follow the plain kernel's settle order.

    Queries reuse per-domain scratch (distance/parent/settled arrays,
    heaps) held in domain-local storage, so concurrent queries from a
    {!Rr_util.Parallel} pool are safe and allocation stays flat across
    repeated queries. *)

type t

type runner = Plain | Bidir | Alt

val create :
  ?landmark_count:int ->
  n:int ->
  off:int array ->
  tgt:int array ->
  miles:float array ->
  unit ->
  t
(** Wrap a CSR geometry (see {!Graph.to_csr}); builds the reverse-CSR
    mate table eagerly. [landmark_count] defaults to 16. The arrays are
    borrowed, not copied — treat them as frozen. *)

val node_count : t -> int
val arc_off : t -> int array
val arc_tgt : t -> int array
val arc_miles : t -> float array

val set_tree_provider : t -> (int -> Dijkstra.tree) -> unit
(** Route landmark distance-tree computation through an external cache
    (the engine's tree LRU): [prepare] will call the provider instead
    of running its own sweeps, so landmark trees are shared with every
    other consumer of the same geometry and survive in the LRU across
    advisory ticks. The provider must return pure bit-miles trees
    bit-identical to {!Dijkstra.single_source_flat} on this geometry. *)

val prepare : t -> unit
(** Select landmarks (farthest-point, deterministic) and compute their
    distance trees. Idempotent and thread-safe; implied by the first
    ALT query. *)

val prepared : t -> bool

val landmark_sources : t -> int array
(** Chosen landmark node ids ([[||]] before {!prepare}). *)

val potential : t -> dst:int -> (int -> float) option
(** Landmark lower bound on the bit-miles distance to [dst] —
    [max_L |d_L(v) - d_L(dst)|] — or [None] before {!prepare}. Valid
    (and consistent) for any weight function dominating bit-miles, so
    external goal-directed searches (e.g. the valley-free BGP lift) can
    use it as an A* heuristic. *)

val choose : t -> runner
(** Selection policy: plain for small graphs (n <= 1024), ALT once
    landmarks are prepared, bidirectional for mid-size unprepared
    graphs, ALT (preparing on demand) past n = 8192. *)

val run :
  ?runner:runner ->
  t ->
  weight:(int -> float) ->
  src:int ->
  dst:int ->
  (float * int list) option
(** Cost and node path, [None] when disconnected — bit-identical to
    {!Dijkstra.single_pair_flat} with the same arguments. [runner]
    overrides {!choose}. Raises [Invalid_argument] on out-of-range
    endpoints or a negative arc weight. *)

val run_stats :
  ?runner:runner ->
  t ->
  weight:(int -> float) ->
  src:int ->
  dst:int ->
  (float * int list) option * runner * int
(** Like {!run} but also reports which runner served the query and how
    many nodes it settled (both frontiers combined for bidir; 0 for the
    trivial [src = dst] query). Settled counts also feed the
    [query.<runner>.settled] {!Rr_obs} counters. *)

val runner_name : runner -> string
(** ["plain"] / ["bidir"] / ["alt"]. *)
