open Rr_util

type tree = { dist : float array; parent : int array }

(* Shared core over the adjacency-list graph: runs Dijkstra from [src];
   stops early once node [stop] (-1 for none) is settled. [stop] is a
   plain int so the settle test is an integer compare instead of an
   option allocation + polymorphic compare per pop. *)
let run g ~weight ~src ~stop =
  let n = Graph.node_count g in
  if src < 0 || src >= n then invalid_arg "Dijkstra: source out of range";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create ~capacity:(max 16 n) () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let finished = ref false in
  while (not !finished) && not (Heap.is_empty heap) do
    let d = Heap.min_key heap in
    let u = Heap.min_elt heap in
    Heap.drop_min heap;
    if not settled.(u) then begin
      settled.(u) <- true;
      if u = stop then finished := true
      else
        Graph.iter_neighbors g u (fun v ->
            if not settled.(v) then begin
              let w = weight u v in
              if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
              let nd = d +. w in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                parent.(v) <- u;
                Heap.push heap nd v
              end
            end)
    end
  done;
  { dist; parent }

(* Flat core over a CSR adjacency ([Graph.to_csr] layout): the edge
   relaxation loop walks an int array by index and weighs arcs through a
   single [int -> float] lookup — in the RiskRoute hot path that lookup
   is two float-array reads and a fused multiply-add, with no hashing,
   no list traversal and no great-circle trigonometry. *)
let run_flat ~n ~off ~tgt ~weight ~src ~stop =
  if src < 0 || src >= n then invalid_arg "Dijkstra: source out of range";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create ~capacity:(max 16 n) () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let finished = ref false in
  while (not !finished) && not (Heap.is_empty heap) do
    let d = Heap.min_key heap in
    let u = Heap.min_elt heap in
    Heap.drop_min heap;
    if not settled.(u) then begin
      settled.(u) <- true;
      if u = stop then finished := true
      else
        (* In-bounds by construction: [u < n] (heap only holds pushed
           nodes), so [off] reads are valid, and CSR targets satisfy
           [tgt.(k) < n]. Unsafe accesses keep the relaxation loop free
           of bounds checks — this is the innermost loop of every sweep. *)
        for k = Array.unsafe_get off u to Array.unsafe_get off (u + 1) - 1 do
          let v = Array.unsafe_get tgt k in
          if not (Array.unsafe_get settled v) then begin
            let w = weight k in
            if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
            let nd = d +. w in
            if nd < Array.unsafe_get dist v then begin
              Array.unsafe_set dist v nd;
              Array.unsafe_set parent v u;
              Heap.push heap nd v
            end
          end
        done
    end
  done;
  { dist; parent }

let single_source g ~weight ~src = run g ~weight ~src ~stop:(-1)

let single_source_flat ~n ~off ~tgt ~weight ~src =
  run_flat ~n ~off ~tgt ~weight ~src ~stop:(-1)

let path_of_tree tree ~src ~dst =
  if tree.dist.(dst) = infinity then None
  else begin
    let rec build acc v =
      if v = src then src :: acc
      else begin
        let p = tree.parent.(v) in
        assert (p >= 0);
        build (v :: acc) p
      end
    in
    Some (build [] dst)
  end

let pair_of_tree tree ~src ~dst =
  if tree.dist.(dst) = infinity then None
  else
    match path_of_tree tree ~src ~dst with
    | None -> None
    | Some path -> Some (tree.dist.(dst), path)

let single_pair g ~weight ~src ~dst =
  let n = Graph.node_count g in
  if dst < 0 || dst >= n then invalid_arg "Dijkstra: destination out of range";
  if src = dst then Some (0.0, [ src ])
  else pair_of_tree (run g ~weight ~src ~stop:dst) ~src ~dst

let single_pair_flat ~n ~off ~tgt ~weight ~src ~dst =
  if dst < 0 || dst >= n then invalid_arg "Dijkstra: destination out of range";
  if src = dst then Some (0.0, [ src ])
  else pair_of_tree (run_flat ~n ~off ~tgt ~weight ~src ~stop:dst) ~src ~dst

let path_cost ~weight path =
  let rec loop acc = function
    | a :: (b :: _ as rest) -> loop (acc +. weight a b) rest
    | [ _ ] | [] -> acc
  in
  loop 0.0 path
