(** BENCH_*.json files: the machine-readable benchmark format written
    by [bench/main.exe json] and read by [riskroute bench-compare].

    Schema 3 is statistics-aware: each kernel row carries mean/p50/p95
    over N repetitions plus per-run GC allocation deltas, and the meta
    block is self-describing (OCaml version, word size, resolved pool
    size) so baselines stay comparable across machines. Schema-2 files
    (single Bechamel OLS estimate per kernel) are still readable: the
    one estimate stands in for every statistic. *)

type meta = {
  schema : int;
  domains : int;  (** resolved pool size the run actually used *)
  git_rev : string;
  hostname : string;
  ocaml_version : string;
  word_size : int;
  riskroute_domains : string;  (** raw RISKROUTE_DOMAINS value, "" if unset *)
  reps : int;
  warmups : int;
}

type result = {
  name : string;
  reps : int;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  min_ns : float;
  max_ns : float;
  gc_minor_words : float;  (** mean minor words allocated per run *)
  gc_major_words : float;
}

type file = { meta : meta; results : result list }

val schema : int
(** The schema this module writes (3). *)

val to_json_string : file -> string

val of_json_string : string -> (file, string) Stdlib.result

val write : string -> file -> unit

val read : string -> (file, string) Stdlib.result
(** [read path] loads and parses; IO errors become [Error]. *)

val find : file -> string -> result option
