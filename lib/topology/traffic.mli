(** Gravity-model traffic matrices.

    The paper weighs outage impact by served population and notes
    (Sec. 5) that "the impact of an outage could also be influenced by
    traffic flows between two PoPs". This module supplies those flows: a
    standard gravity model where demand between PoPs i and j is
    proportional to [pop_i * pop_j / d(i,j)^alpha], normalised to a total
    offered load. *)

type t

val gravity :
  ?alpha:float -> ?total_gbps:float -> populations:float array ->
  Net.t -> t
(** [gravity ~populations net] builds the demand matrix from per-PoP
    served population (any non-negative weights; typically census service
    fractions). [alpha] (default 1.0) is the distance-decay exponent;
    [total_gbps] (default 1000) scales the matrix. Co-located pairs use a
    1-mile distance floor. *)

val demand : t -> int -> int -> float
(** Offered load from PoP [i] to PoP [j] in Gbps (0 on the diagonal). *)

val total : t -> float

val top_flows : t -> int -> (int * int * float) list
(** Largest [n] directed demands. *)

val pair_weights : t -> (int * int) array -> float array
(** Demands for an explicit pair list — the weighting vector for
    traffic-weighted ratios. *)
