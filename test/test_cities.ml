let test_count () =
  Alcotest.(check bool) "rich gazetteer" true (Rr_cities.Data.count > 200);
  Alcotest.(check int) "count consistent" Rr_cities.Data.count
    (Array.length Rr_cities.Data.all)

let test_all_in_conus () =
  Array.iter
    (fun (c : Rr_cities.Data.city) ->
      Alcotest.(check bool) (c.name ^ " in CONUS") true
        (Rr_geo.Bbox.contains Rr_geo.Bbox.conus c.coord))
    Rr_cities.Data.all

let test_populations_positive () =
  Array.iter
    (fun (c : Rr_cities.Data.city) ->
      Alcotest.(check bool) (c.name ^ " populated") true (c.population > 0))
    Rr_cities.Data.all;
  Alcotest.(check bool) "plausible national total" true
    (Rr_cities.Data.total_population > 50_000_000
    && Rr_cities.Data.total_population < 150_000_000)

let test_by_name () =
  (match Rr_cities.Query.by_name "Chicago" with
  | Some c ->
    Alcotest.(check string) "state" "IL" c.state;
    Alcotest.(check bool) "coords" true
      (Float.abs (Rr_geo.Coord.lat c.coord -. 41.88) < 0.01)
  | None -> Alcotest.fail "Chicago missing");
  Alcotest.(check bool) "unknown city" true (Rr_cities.Query.by_name "Gotham" = None)

let test_by_name_disambiguation () =
  (* two Wilmingtons: DE and NC *)
  (match Rr_cities.Query.by_name ~state:"NC" "Wilmington" with
  | Some c -> Alcotest.(check string) "NC one" "NC" c.state
  | None -> Alcotest.fail "Wilmington NC missing");
  match Rr_cities.Query.by_name ~state:"DE" "Wilmington" with
  | Some c -> Alcotest.(check string) "DE one" "DE" c.state
  | None -> Alcotest.fail "Wilmington DE missing"

let test_in_states () =
  let texan = Rr_cities.Query.in_states [ "TX" ] in
  Alcotest.(check bool) "many Texas cities" true (List.length texan >= 15);
  List.iter
    (fun (c : Rr_cities.Data.city) -> Alcotest.(check string) "all TX" "TX" c.state)
    texan

let test_in_bbox () =
  let florida =
    Rr_geo.Bbox.make ~min_lat:24.5 ~max_lat:31.0 ~min_lon:(-87.7) ~max_lon:(-80.0)
  in
  let cities = Rr_cities.Query.in_bbox florida in
  Alcotest.(check bool) "finds Florida cities" true (List.length cities >= 10)

let test_nearest () =
  (* a point in rural Illinois should resolve to an Illinois-ish city *)
  let c = Rr_cities.Query.nearest (Rr_geo.Coord.make ~lat:41.9 ~lon:(-87.7)) in
  Alcotest.(check string) "nearest to downtown Chicago" "Chicago" c.name

let test_top_by_population () =
  let top = Rr_cities.Query.top_by_population 5 in
  Alcotest.(check int) "five" 5 (List.length top);
  (match top with
  | first :: _ -> Alcotest.(check string) "NYC first" "New York" first.name
  | [] -> Alcotest.fail "empty");
  let pops = List.map (fun (c : Rr_cities.Data.city) -> c.population) top in
  Alcotest.(check (list int)) "descending" (List.sort (fun a b -> compare b a) pops) pops

let test_states_coverage () =
  let states = Rr_cities.Query.states () in
  (* 48 continental states + DC = 49 *)
  Alcotest.(check bool) "near-complete coverage" true (List.length states >= 45);
  Alcotest.(check bool) "sorted unique" true
    (List.sort_uniq String.compare states = states)

let () =
  Alcotest.run "rr_cities"
    [
      ( "data",
        [
          Alcotest.test_case "count" `Quick test_count;
          Alcotest.test_case "all in CONUS" `Quick test_all_in_conus;
          Alcotest.test_case "positive populations" `Quick test_populations_positive;
        ] );
      ( "query",
        [
          Alcotest.test_case "by_name" `Quick test_by_name;
          Alcotest.test_case "by_name disambiguation" `Quick test_by_name_disambiguation;
          Alcotest.test_case "in_states" `Quick test_in_states;
          Alcotest.test_case "in_bbox" `Quick test_in_bbox;
          Alcotest.test_case "nearest" `Quick test_nearest;
          Alcotest.test_case "top_by_population" `Quick test_top_by_population;
          Alcotest.test_case "state coverage" `Quick test_states_coverage;
        ] );
    ]
