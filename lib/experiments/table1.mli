(** Table 1: trained kernel density bandwidths for the five disaster
    catalogues (event counts + cross-validated optimal bandwidth). *)

type row = {
  kind : Rr_disaster.Event.kind;
  entries : int;
  bandwidth : float;        (** our cross-validated optimum, miles *)
  paper_bandwidth : float;  (** the value reported in the paper *)
}

val compute :
  ?catalog:Rr_disaster.Catalog.t -> ?max_events:int -> unit -> row list
(** Runs 5-fold CV per catalogue with the rasterised scorer.
    [max_events] (default 25,000) caps the events entering CV: the three
    smaller catalogues run at full size, and the subsampling of storm and
    wind compresses their bandwidth gap slightly (documented in
    EXPERIMENTS.md). *)

val run : Format.formatter -> unit
(** Print the table, paper values alongside. *)
