(** Kernel bandwidth selection by 5-way cross validation (Sec. 5.2).

    The paper selects the bandwidth minimising the KL divergence between
    the held-out 20% of events and the density fitted on the remaining
    80%. Minimising KL(holdout || model) over bandwidths equals
    minimising the negative mean held-out log-likelihood (the empirical
    entropy term does not depend on the model), which is what we score. *)

type selection = {
  best : float;                     (** selected bandwidth, miles *)
  scores : (float * float) array;   (** (candidate, mean CV score), lower is better *)
  events_used : int;                (** events after subsampling *)
}

type scorer =
  | Exact
      (** exact KDE evaluation — O(train x test) per fold, use with a few
          thousand events at most *)
  | Grid
      (** rasterised evaluation at a resolution adapted to each candidate
          bandwidth — scales to the full 143k-event wind catalogue, which
          is what lets the count effect behind Table 1 (more events ->
          smaller optimal bandwidth) show through *)

val default_candidates : float array
(** Log-spaced 1.5 .. 500 miles, bracketing every Table 1 value. *)

val select :
  ?rng:Rr_util.Prng.t ->
  ?candidates:float array ->
  ?folds:int ->
  ?max_events:int ->
  ?scorer:scorer ->
  Rr_geo.Coord.t array ->
  selection
(** [select events] runs [folds]-way (default 5) cross validation.
    [max_events] (default 4000) caps the events used; with
    [~scorer:Grid] a cap of tens of thousands stays fast. Raises
    [Invalid_argument] when fewer than [folds] events remain. *)
