(** Render an advisory back into NHC public-advisory prose.

    [Parse.advisory (Render.advisory adv)] recovers [adv] up to the
    integer rounding of wind radii (round-trip covered by tests). The
    experiments always go through this text path, so the NLP parser is on
    the critical path exactly as in the paper. *)

val advisory : Advisory.t -> string
