(* Interdomain tour: a regional ISP's view of the multi-provider world.

   For a regional network this walks the paper's Sec. 6.2 bounds plus
   the policy-routing reality in between:

   1. merged-graph routing to another regional, three ways: geographic
      shortest path (upper bound), valley-free BGP-policy RiskRoute
      (deployable), full-control RiskRoute (lower bound);
   2. interdomain ratios for the network (its Fig. 8 point);
   3. which new peering would help most (Fig. 11) and which candidate
      has the least-shared disaster exposure.

   Run with:  dune exec examples/interdomain_tour.exe [regional] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "Digex" in
  let merged, env = Riskroute.Interdomain.shared () in
  let peering = Riskroute.Interdomain.peering merged in
  let nets = peering.Rr_topology.Peering.nets in
  let index =
    match Rr_topology.Peering.index_of peering name with
    | Some i -> i
    | None -> failwith ("unknown network " ^ name)
  in
  Printf.printf "Interdomain tour for %s\n\n" name;

  (* 1. three routings to another regional network *)
  let other =
    let rec find i =
      if i = index || nets.(i).Rr_topology.Net.tier = Rr_topology.Net.Tier1 then
        find (i + 1)
      else i
    in
    find 7
  in
  let src = (Riskroute.Interdomain.net_nodes merged index).(0) in
  let dst = (Riskroute.Interdomain.net_nodes merged other).(0) in
  Printf.printf "Flow to %s:\n" nets.(other).Rr_topology.Net.name;
  let describe label = function
    | None -> Printf.printf "  %-28s unroutable\n" label
    | Some (r : Riskroute.Router.route) ->
      Printf.printf "  %-28s %6.0f bit-miles  %8.0f bit-risk-miles (%d hops)\n"
        label r.Riskroute.Router.bit_miles r.Riskroute.Router.bit_risk_miles
        (List.length r.Riskroute.Router.path - 1)
  in
  describe "shortest (upper bound)" (Riskroute.Router.shortest env ~src ~dst);
  describe "valley-free riskroute" (Riskroute.Bgp.route merged env ~src ~dst);
  describe "full-control riskroute" (Riskroute.Router.riskroute env ~src ~dst);

  (* 2. the network's Fig. 8 point *)
  let sources = Riskroute.Interdomain.net_nodes merged index in
  let dests = Riskroute.Interdomain.regional_nodes merged in
  let r = Riskroute.Ratios.between ~pair_cap:800 env ~sources ~dests in
  Printf.printf
    "\nInterdomain ratios (vs shortest path): risk reduction %.3f, distance increase %.3f\n"
    r.Riskroute.Ratios.risk_reduction r.Riskroute.Ratios.distance_increase;

  (* 3. peering advice, two ways *)
  (match Riskroute.Peer_advisor.recommend_for ~pair_cap:400 merged env ~regional:index with
  | Some rec_ ->
    Printf.printf "\nRiskRoute peer recommendation: %s (%.1f%% lower bit-risk)\n"
      rec_.Riskroute.Peer_advisor.peer
      (100.0 *. rec_.Riskroute.Peer_advisor.improvement)
  | None -> print_endline "\nno co-located non-peers to recommend");
  let riskmap = Rr_disaster.Riskmap.shared () in
  let candidates =
    List.map
      (fun i -> nets.(i))
      (Riskroute.Peer_advisor.candidates_for merged index)
  in
  match
    Riskroute.Shared_risk.least_shared_peer ~riskmap ~candidates nets.(index)
  with
  | Some pick ->
    Printf.printf "least shared disaster exposure among candidates: %s (corr %.3f)\n"
      pick.Rr_topology.Net.name
      (Riskroute.Shared_risk.exposure_correlation ~riskmap nets.(index) pick)
  | None -> print_endline "no candidates for shared-risk comparison"
