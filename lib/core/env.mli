(** A routing environment: a physical graph annotated with everything the
    bit-risk-miles metric needs — PoP coordinates, impact fractions
    [c_i], historical risk [o_h] and forecast risk [o_f] per node.

    Environments are cheap to re-derive for a new advisory tick
    ({!with_forecast}), which is how the disaster case studies step
    through a storm.

    An environment is immutable after construction: distances and risk
    terms are precomputed into flat arrays (no caches are filled behind
    the scenes), so any number of domains may route over one
    environment concurrently. *)

type t

val dense_threshold : int
(** Node count above which construction skips the dense n x n distance
    matrix (1024): per-arc miles are then computed per edge and
    {!link_miles} falls back to on-the-fly trigonometry, both
    bit-identical to the dense path. Continental-scale graphs only fit
    in memory this way. *)

val make :
  ?params:Params.t ->
  ?dense:bool ->
  graph:Rr_graph.Graph.t ->
  coords:Rr_geo.Coord.t array ->
  impact:float array ->
  historical:float array ->
  ?forecast:float array ->
  unit ->
  t
(** Fully explicit constructor (tests, custom data). Array lengths must
    match the graph's node count; [forecast] defaults to all zeros.
    [dense] overrides the {!dense_threshold} choice of representation
    (the derived arrays are bit-identical either way). *)

val of_net :
  ?params:Params.t ->
  ?riskmap:Rr_disaster.Riskmap.t ->
  ?impact:float array ->
  ?advisory:Rr_forecast.Advisory.t ->
  Rr_topology.Net.t ->
  t
(** Environment for one ISP: impact from the shared census
    (nearest-neighbour, restricted to the network's states for
    regionals) unless overridden by [impact] (synthetic continental
    nets pass {!Rr_topology.Net.population_fractions} to skip the
    census join), historical risk from [riskmap] (default
    {!Rr_disaster.Riskmap.shared}), forecast risk from the advisory when
    given. *)

val with_forecast : t -> float array -> t
(** Same environment with a new [o_f] vector (node risks recomputed). *)

val with_advisory : t -> Rr_forecast.Advisory.t option -> t
(** Convenience: derive [o_f] from an advisory (or clear it with
    [None]) using the environment's coordinates and rho parameters. *)

val with_params : t -> Params.t -> t

val with_graph : t -> Rr_graph.Graph.t -> t
(** Same annotations on a modified topology (provisioning what-ifs). The
    new graph must have the same node count. *)

(** {1 Sparse advisory-tick patching} *)

type patched = {
  env : t;
      (** bit-identical to a from-scratch build under the patched
          forecast; shares geometry (and the query facade, hence
          landmarks) with the parent *)
  changed_pops : int array;
      (** PoPs whose [node_risk] changed, increasing order *)
  patched_arcs : (int * int) array;
      (** [(arc index, arc source)] for every arc whose weight term
          changed — exactly the arcs incident {e into} a changed PoP,
          in changed-PoP order *)
}

val patch : t -> indices:int array -> values:float array -> patched
(** Apply a sparse forecast delta (new [o_f] at [indices], strictly
    increasing — the shape produced by
    [Rr_forecast.Riskfield.diff_field]) by recomputing only the risk
    vectors' changed entries: O(n) array copies plus O(degree) per
    changed PoP, no census join, no distance work, no full-risk
    recompute. When no value differs bitwise from the current field the
    parent environment itself is returned ([patched_arcs] empty).
    Raises [Invalid_argument] on malformed deltas. *)

(** {1 Accessors} *)

val graph : t -> Rr_graph.Graph.t
val coords : t -> Rr_geo.Coord.t array
val params : t -> Params.t
val impact : t -> float array
val historical : t -> float array
val forecast : t -> float array

val node_risk : t -> int -> float
(** Cached [lambda_h * scale * o_h(v) + lambda_f * o_f(v)]. *)

val node_count : t -> int

val dense : t -> bool
(** Whether this environment carries the dense distance matrix (see
    {!dense_threshold}). *)

val link_miles : t -> int -> int -> float
(** Great-circle miles between two nodes — a single read out of the
    dense distance matrix precomputed at construction, or (sparse
    environments) the same great-circle evaluation performed on the
    fly, bit-identical to the matrix entry. *)

(** {1 Flattened hot-path arrays}

    The graph in CSR form with per-arc weight terms, all built once at
    construction (see {!Rr_graph.Graph.to_csr} for the layout). The
    returned arrays are the environment's own — treat them as
    read-only. Routing weighs arc [k] as
    [arc_miles k +. kappa *. arc_risk k]. *)

val arc_count : t -> int
(** Number of directed arcs (twice the undirected edge count). *)

val arc_off : t -> int array
(** CSR row offsets, length [node_count + 1]. *)

val arc_tgt : t -> int array
(** Target node per arc. *)

val arc_mate : t -> int array
(** Reverse-arc pairing ({!Rr_graph.Graph.csr_mates}): [mate.(k)] is the
    opposite direction of arc [k]. Incremental tree repair traverses
    in-arcs through it. *)

val arc_miles : t -> float array
(** Great-circle miles per arc. *)

val arc_risk : t -> float array
(** [node_risk] of the arc's target node (refreshed by
    {!with_forecast} / {!with_params}). *)

val query : t -> Rr_graph.Query.t
(** The environment's point-to-point query facade, wrapping the CSR
    geometry above. Built once at construction; environments derived by
    {!with_forecast} / {!with_advisory} / {!with_params} share it (and
    hence share prepared landmarks), {!with_graph} rebuilds it. *)

val kappa : t -> int -> int -> float
(** Outage impact [kappa_ij = c_i + c_j]. *)

val mean_kappa : t -> float
(** Network-average impact [2/n], used by pair-independent analyses (see
    {!Augment}). *)

val edge_weight : t -> kappa:float -> int -> int -> float
(** [w(u, v) = d(u, v) + kappa * node_risk(v)] — the directed edge weight
    whose path sums realise Eq. 1. *)

val distance_weight : t -> int -> int -> float
(** Pure bit-miles weight [d(u, v)] (shortest-path baseline). *)
