let net_features (net : Net.t) =
  let pops =
    Array.to_list net.Net.pops
    |> List.map (fun (p : Pop.t) ->
           Rr_geo.Geojson.feature
             ~properties:
               [
                 ("name", p.Pop.name);
                 ("network", net.Net.name);
                 ("kind", "pop");
               ]
             (Rr_geo.Geojson.Point p.Pop.coord))
  in
  let links =
    Rr_graph.Graph.edges net.Net.graph
    |> List.map (fun (u, v) ->
           Rr_geo.Geojson.feature
             ~properties:
               [
                 ("network", net.Net.name);
                 ("kind", "link");
                 ("endpoints",
                  Printf.sprintf "%s -- %s" (Net.pop net u).Pop.name
                    (Net.pop net v).Pop.name);
               ]
             (Rr_geo.Geojson.Line_string
                [ (Net.pop net u).Pop.coord; (Net.pop net v).Pop.coord ]))
  in
  pops @ links

let route_feature ?(properties = []) net path =
  let coords = List.map (fun v -> (Net.pop net v).Pop.coord) path in
  Rr_geo.Geojson.feature
    ~properties:(("kind", "route") :: properties)
    (Rr_geo.Geojson.Line_string coords)

let to_file path net = Rr_geo.Geojson.to_file path (net_features net)
