let fractions (net : Rr_topology.Net.t) blocks =
  let relevant =
    match net.Rr_topology.Net.states with
    | [] -> blocks
    | states ->
      Array.of_list
        (List.filter
           (fun (b : Block.t) -> List.mem b.state states)
           (Array.to_list blocks))
  in
  let sites =
    Array.map (fun (p : Rr_topology.Pop.t) -> p.Rr_topology.Pop.coord)
      net.Rr_topology.Net.pops
  in
  Assignment.fractions ~sites relevant

let cache : (string, float array) Hashtbl.t = Hashtbl.create 32

let shared_fractions net =
  let key = net.Rr_topology.Net.name in
  match Hashtbl.find_opt cache key with
  | Some f -> f
  | None ->
    let f = fractions net (Synthetic.shared ()) in
    Hashtbl.add cache key f;
    f
