let earth_radius_miles = 3958.761

let miles_per_km = 0.621371

let miles a b =
  let lat1, lon1 = Coord.to_radians a in
  let lat2, lon2 = Coord.to_radians b in
  let dlat = lat2 -. lat1 and dlon = lon2 -. lon1 in
  let s1 = sin (dlat /. 2.0) and s2 = sin (dlon /. 2.0) in
  let h = (s1 *. s1) +. (cos lat1 *. cos lat2 *. s2 *. s2) in
  let h = Float.max 0.0 (Float.min 1.0 h) in
  2.0 *. earth_radius_miles *. asin (sqrt h)

let miles_to_km m = m /. miles_per_km

let km_to_miles k = k *. miles_per_km

let km a b = miles_to_km (miles a b)

let within p ~center ~radius_miles = miles p center <= radius_miles
