(** The study's network corpus: 7 Tier-1 and 16 regional US networks.

    PoP counts copy the paper exactly — Table 2 gives the Tier-1 counts
    (354 PoPs total) and Sec. 4.1 gives 455 regional PoPs; regional names
    are the 16 of Fig. 2. Regional state footprints are chosen so the
    disaster case studies line up with the paper's narrative (Telepak /
    Iris / USA Network / CoStreet on the Gulf for Katrina; ANS / Bandcon /
    Digex / Globalcenter / Gridnet / Hibernia / Goodnet on the Atlantic
    seaboard for Irene and Sandy). *)

type t = {
  tier1s : Net.t list;
  regionals : Net.t list;
  peering : Peering.t;
}

val default_seed : int64

val create : ?seed:int64 -> unit -> t
(** Deterministically generate the corpus. *)

val shared : unit -> t
(** The corpus at {!default_seed}, built once and memoised — what the
    experiments and CLI use. *)

val all_nets : t -> Net.t list
(** Tier-1s then regionals. *)

val find : t -> string -> Net.t option
(** Case-insensitive lookup by network name. *)

val tier1_pop_total : t -> int
val regional_pop_total : t -> int
