(* End-to-end tests over the shared full-size pipeline (Zoo topology,
   215,932-block census, 176k-event catalogue). These are slower than the
   unit suites — everything heavy is built once and memoised. *)

open Riskroute

let zoo () = Rr_topology.Zoo.shared ()

let net name = Option.get (Rr_topology.Zoo.find (zoo ()) name)

(* --- Env.of_net over the full pipeline --- *)

let test_of_net_shapes () =
  let env = Env.of_net (net "AT&T") in
  Alcotest.(check int) "25 nodes" 25 (Env.node_count env);
  Alcotest.(check (float 1e-6)) "impact sums to one" 1.0
    (Rr_util.Arrayx.fsum (Env.impact env));
  Array.iter
    (fun h -> Alcotest.(check bool) "historical risk positive" true (h > 0.0))
    (Env.historical env)

let test_of_net_regional_impact_restricted () =
  (* Epoch is confined to California: the impact of all its PoPs still
     sums to 1 (population restricted to CA). *)
  let env = Env.of_net (net "Epoch") in
  Alcotest.(check (float 1e-6)) "sums to one" 1.0 (Rr_util.Arrayx.fsum (Env.impact env))

let test_gulf_pops_riskier_than_mountain () =
  let riskmap = Rr_disaster.Riskmap.shared () in
  let gulf = Rr_disaster.Riskmap.risk_at riskmap (Rr_geo.Coord.make ~lat:29.95 ~lon:(-90.07)) in
  let mountain = Rr_disaster.Riskmap.risk_at riskmap (Rr_geo.Coord.make ~lat:46.6 ~lon:(-112.0)) in
  Alcotest.(check bool) "New Orleans much riskier than Helena" true
    (gulf > 5.0 *. mountain)

(* --- Table 2 behaviour --- *)

let test_ratios_grow_with_lambda () =
  let n = net "Sprint" in
  let at lambda_h =
    let params = Params.with_lambda_h lambda_h Params.default in
    Ratios.intradomain ~pair_cap:1500 (Env.of_net ~params n)
  in
  let r5 = at 1e5 and r6 = at 1e6 in
  Alcotest.(check bool) "risk reduction grows" true
    (r6.Ratios.risk_reduction > r5.Ratios.risk_reduction);
  Alcotest.(check bool) "distance increase grows" true
    (r6.Ratios.distance_increase > r5.Ratios.distance_increase)

let test_level3_low_ratio () =
  (* the paper's headline ordering: the big dense Level3 network has the
     smallest risk-reduction ratio of the Tier-1s *)
  let ratio name =
    (Ratios.intradomain ~pair_cap:1500 (Env.of_net (net name))).Ratios.risk_reduction
  in
  let level3 = ratio "Level3" in
  Alcotest.(check bool) "Level3 below DT" true (level3 < ratio "Deutsche Telekom");
  Alcotest.(check bool) "Level3 below NTT" true (level3 < ratio "NTT");
  Alcotest.(check bool) "Level3 below Teliasonera" true (level3 < ratio "Teliasonera")

(* --- Fig 7 behaviour --- *)

let test_fig7_risk_aversion_grows () =
  let comparisons =
    Rr_experiments.Fig7.compute
      (Rr_engine.Context.shared ())
      Rr_experiments.Fig7.default_spec
  in
  Alcotest.(check int) "two lambda values" 2 (List.length comparisons);
  List.iter
    (fun (c : Rr_experiments.Fig7.comparison) ->
      Alcotest.(check bool) "riskroute never riskier" true
        (c.Rr_experiments.Fig7.riskroute.Router.bit_risk_miles
        <= c.Rr_experiments.Fig7.shortest.Router.bit_risk_miles +. 1e-6);
      Alcotest.(check bool) "riskroute never shorter" true
        (c.Rr_experiments.Fig7.riskroute.Router.bit_miles
        >= c.Rr_experiments.Fig7.shortest.Router.bit_miles -. 1e-6))
    comparisons;
  match comparisons with
  | [ low; high ] ->
    Alcotest.(check bool) "more risk-averse at higher lambda" true
      (high.Rr_experiments.Fig7.riskroute.Router.bit_miles
      >= low.Rr_experiments.Fig7.riskroute.Router.bit_miles -. 1e-6)
  | _ -> Alcotest.fail "expected exactly two comparisons"

(* --- Fig 6 exposure counts --- *)

let test_fig6_exposure_ordering () =
  let count storm =
    Rr_experiments.Fig6.tier1_pops_in_hurricane_scope
      (Rr_engine.Context.shared ()) storm
  in
  let irene = count Rr_forecast.Track.irene in
  let katrina = count Rr_forecast.Track.katrina in
  let sandy = count Rr_forecast.Track.sandy in
  (* paper: Irene 86, Katrina 8, Sandy 115 — Katrina is by far the most
     localised, Sandy the widest *)
  Alcotest.(check bool) "Katrina most localised" true
    (katrina < irene && katrina < sandy);
  Alcotest.(check bool) "Katrina touches some PoPs" true (katrina > 0);
  Alcotest.(check bool) "Sandy widest" true (sandy >= irene)

(* --- Case studies --- *)

let test_casestudy_tier1_series () =
  let series =
    Casestudy.tier1 ~pair_cap:300 ~tick_stride:10 ~storm:Rr_forecast.Track.katrina
      (net "Deutsche Telekom")
  in
  Alcotest.(check string) "storm name" "KATRINA" series.Casestudy.storm;
  Alcotest.(check int) "strided points" 7 (List.length series.Casestudy.points);
  List.iter
    (fun (p : Casestudy.point) ->
      Alcotest.(check bool) "ratio sane" true
        (p.Casestudy.risk_reduction > -1.0 && p.Casestudy.risk_reduction < 1.0))
    series.Casestudy.points

let peak_ratio net_name storm =
  let n = net net_name in
  let advisories = Rr_forecast.Track.advisories storm in
  let base = Env.of_net n in
  let quiet = Ratios.intradomain ~pair_cap:800 base in
  let peak_advisory =
    Option.get
      (Rr_util.Listx.max_by
         (fun a -> float_of_int (Rr_forecast.Riskfield.pops_in_scope a n))
         advisories)
  in
  let stormy =
    Ratios.intradomain ~pair_cap:800 (Env.with_advisory base (Some peak_advisory))
  in
  (quiet.Ratios.risk_reduction, stormy.Ratios.risk_reduction)

let test_casestudy_forecast_raises_ratio () =
  (* a national Tier-1 with a minority of PoPs in the storm's scope can
     reroute around them: the achievable reduction grows *)
  let quiet, stormy = peak_ratio "AT&T" Rr_forecast.Track.sandy in
  Alcotest.(check bool) "partial exposure raises the ratio" true (stormy > quiet)

let test_casestudy_saturation_lowers_ratio () =
  (* the paper's Sec. 7.3.1 observation: when a majority of a network's
     infrastructure is inside the storm, there is nowhere safe to
     reroute and the reduction ratio falls *)
  let quiet, stormy = peak_ratio "Telepak" Rr_forecast.Track.katrina in
  Alcotest.(check bool) "saturated exposure lowers the ratio" true (stormy < quiet)

let test_in_scope_filter () =
  let selected =
    Casestudy.in_scope_filter ~storm:Rr_forecast.Track.katrina (zoo ()).Rr_topology.Zoo.regionals
  in
  let names = List.map (fun (n, _) -> n.Rr_topology.Net.name) selected in
  (* the Gulf regionals must pass the 20% filter for Katrina *)
  Alcotest.(check bool) "Telepak selected" true (List.mem "Telepak" names);
  (* the New-England network must not *)
  Alcotest.(check bool) "Hibernia not selected" false (List.mem "Hibernia" names);
  List.iter
    (fun (_, fraction) ->
      Alcotest.(check bool) "above filter" true (fraction > 0.2))
    selected

(* --- Interdomain shared pipeline --- *)

let test_interdomain_shared () =
  let merged, env = Interdomain.shared () in
  Alcotest.(check int) "809 nodes" 809 (Interdomain.node_count merged);
  Alcotest.(check int) "455 regional nodes" 455
    (Array.length (Interdomain.regional_nodes merged));
  Alcotest.(check bool) "has peering links" true
    (Interdomain.peering_link_count merged > 0);
  (* impact is per-network and halved: 23 members each summing to 1/2 *)
  Alcotest.(check (float 1e-4)) "merged impact sums to half the member count" 11.5
    (Rr_util.Arrayx.fsum (Env.impact env))

let test_interdomain_bounds () =
  let merged, env = Interdomain.shared () in
  let sources = Interdomain.net_nodes merged 7 (* first regional *) in
  let dests = Interdomain.regional_nodes merged in
  let r = Ratios.between ~pair_cap:150 env ~sources ~dests in
  Alcotest.(check bool) "pairs evaluated" true (r.Ratios.pairs > 0);
  Alcotest.(check bool) "reduction sane" true
    (r.Ratios.risk_reduction > -0.5 && r.Ratios.risk_reduction < 1.0)

let test_peer_advisor_improves () =
  let merged, env = Interdomain.shared () in
  match Peer_advisor.recommend_all ~pair_cap:120 merged env with
  | [] -> Alcotest.fail "expected recommendations"
  | recs ->
    List.iter
      (fun (r : Peer_advisor.recommendation) ->
        Alcotest.(check bool)
          (r.Peer_advisor.regional ^ " non-degrading")
          true
          (r.Peer_advisor.improvement >= -1e-9))
      recs

(* --- Augmentation on a real network --- *)

let test_augment_tier1 () =
  let env = Env.of_net (net "Teliasonera") in
  let picks = Augment.greedy ~k:3 env in
  Alcotest.(check bool) "found links" true (List.length picks >= 1);
  List.iter
    (fun (p : Augment.pick) ->
      Alcotest.(check bool) "strictly improves" true (p.Augment.fraction < 1.0))
    picks

(* --- Experiment registry --- *)

let test_report_registry () =
  (* 3 tables + 13 figures + 14 ablation/extension studies *)
  Alcotest.(check int) "30 experiments" 30 (List.length Rr_experiments.Report.all);
  Alcotest.(check bool) "find table2" true (Rr_experiments.Report.find "TABLE2" <> None);
  Alcotest.(check bool) "unknown" true (Rr_experiments.Report.find "fig99" = None);
  let ids = Rr_experiments.Report.ids () in
  Alcotest.(check bool) "fig13 present" true (List.mem "fig13" ids);
  Alcotest.(check bool) "ablations present" true (List.mem "abl-outage" ids)

let test_fig5_output () =
  let buffer = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buffer in
  Rr_experiments.Fig5.run (Rr_engine.Context.shared ()) ppf;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buffer in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mentions Irene" true
    (contains "IRENE" out || contains "Irene" out)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "of_net shapes" `Slow test_of_net_shapes;
          Alcotest.test_case "regional impact" `Slow test_of_net_regional_impact_restricted;
          Alcotest.test_case "gulf risk dominates" `Slow test_gulf_pops_riskier_than_mountain;
        ] );
      ( "table2",
        [
          Alcotest.test_case "ratios grow with lambda" `Slow test_ratios_grow_with_lambda;
          Alcotest.test_case "Level3 lowest" `Slow test_level3_low_ratio;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig7 risk aversion" `Slow test_fig7_risk_aversion_grows;
          Alcotest.test_case "fig6 exposure ordering" `Slow test_fig6_exposure_ordering;
          Alcotest.test_case "fig5 output" `Slow test_fig5_output;
        ] );
      ( "casestudy",
        [
          Alcotest.test_case "tier-1 series" `Slow test_casestudy_tier1_series;
          Alcotest.test_case "forecast raises ratio" `Slow test_casestudy_forecast_raises_ratio;
          Alcotest.test_case "saturation lowers ratio" `Slow test_casestudy_saturation_lowers_ratio;
          Alcotest.test_case "20% scope filter" `Slow test_in_scope_filter;
        ] );
      ( "interdomain",
        [
          Alcotest.test_case "shared pipeline" `Slow test_interdomain_shared;
          Alcotest.test_case "bounds" `Slow test_interdomain_bounds;
          Alcotest.test_case "peer advisor" `Slow test_peer_advisor_improves;
        ] );
      ( "augment",
        [ Alcotest.test_case "tier-1 greedy" `Slow test_augment_tier1 ] );
      ( "registry",
        [ Alcotest.test_case "report registry" `Quick test_report_registry ] );
    ]
