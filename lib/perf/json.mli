(** Minimal JSON reader for the performance tooling.

    The repo is zero-dependency by policy, so the bench baseline files
    and trace output are parsed with this small recursive-descent
    parser rather than an external library. It accepts everything the
    repo's own writers emit (and standard JSON generally); it does not
    aim to be a validator of exotic inputs. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; [Error msg] carries a byte offset. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_num : t -> float option

val to_int : t -> int option

val to_str : t -> string option

val to_arr : t -> t list option
