type verdict = Regressed | Improved | Within | Added | Removed

type row = {
  name : string;
  base_p50 : float;
  cur_p50 : float;
  ratio : float;
  tau : float;
  verdict : verdict;
}

(* A kernel's noise band: flat allowance plus the baseline's own
   measured spread (p95 over p50), capped so one pathological baseline
   repetition cannot disable the gate for that kernel. *)
let kernel_tau ~tau_base (base : Benchfile.result) =
  let spread =
    if base.Benchfile.p50_ns > 0.0 then
      Float.max 0.0 ((base.Benchfile.p95_ns /. base.Benchfile.p50_ns) -. 1.0)
    else 0.0
  in
  tau_base +. Float.min 0.5 spread

let run ?(tau_base = 0.25) (baseline : Benchfile.file)
    (current : Benchfile.file) =
  let names =
    List.sort_uniq compare
      (List.map (fun r -> r.Benchfile.name) baseline.Benchfile.results
      @ List.map (fun r -> r.Benchfile.name) current.Benchfile.results)
  in
  let rows =
    List.map
      (fun name ->
        match (Benchfile.find baseline name, Benchfile.find current name) with
        | Some b, Some c ->
          let tau = kernel_tau ~tau_base b in
          let base_p50 = b.Benchfile.p50_ns
          and cur_p50 = c.Benchfile.p50_ns in
          let ratio =
            if base_p50 > 0.0 then cur_p50 /. base_p50 else Float.nan
          in
          let verdict =
            if Float.is_nan ratio then Within
            else if ratio > 1.0 +. tau then Regressed
            else if ratio < 1.0 /. (1.0 +. tau) then Improved
            else Within
          in
          { name; base_p50; cur_p50; ratio; tau; verdict }
        | None, Some c ->
          {
            name;
            base_p50 = Float.nan;
            cur_p50 = c.Benchfile.p50_ns;
            ratio = Float.nan;
            tau = tau_base;
            verdict = Added;
          }
        | Some b, None ->
          {
            name;
            base_p50 = b.Benchfile.p50_ns;
            cur_p50 = Float.nan;
            ratio = Float.nan;
            tau = tau_base;
            verdict = Removed;
          }
        | None, None -> assert false)
      names
  in
  let weight r = match r.verdict with Regressed -> 0 | _ -> 1 in
  List.stable_sort (fun a b -> compare (weight a) (weight b)) rows

let any_regression rows = List.exists (fun r -> r.verdict = Regressed) rows

(* Meta comparability audit: one message per recorded environment fact
   that differs between the two files. Empty-valued sides (a field an
   older schema never recorded) never warn, so old baselines do not
   complain against every new run. Centralised here (rather than inline
   in the CLI) so the list of audited facts and the bench file format
   evolve together — cross-machine or cross-compiler comparisons are
   noise, and bench-compare should say so, not silently gate on them. *)
let meta_warnings (base : Benchfile.meta) (cur : Benchfile.meta) =
  let warnings = ref [] in
  let check what b c =
    if b <> c && b <> "" && c <> "" then
      warnings :=
        Printf.sprintf
          "%s differs (baseline %s, current %s); timings may not be comparable"
          what b c
        :: !warnings
  in
  check "pool size"
    (string_of_int base.Benchfile.domains)
    (string_of_int cur.Benchfile.domains);
  check "hostname" base.Benchfile.hostname cur.Benchfile.hostname;
  check "OCaml version" base.Benchfile.ocaml_version cur.Benchfile.ocaml_version;
  check "word size"
    (string_of_int base.Benchfile.word_size)
    (string_of_int cur.Benchfile.word_size);
  (* Schema-5 fields; older files read back as 0 / "" and the empty
     guard keeps them from warning against every new run. *)
  let cap m =
    match m.Benchfile.tree_cache_cap with 0 -> "" | c -> string_of_int c
  in
  check "tree cache capacity" (cap base) (cap cur);
  check "topology PoP counts" base.Benchfile.topology_pops
    cur.Benchfile.topology_pops;
  List.rev !warnings

let pp_ns ppf v =
  if Float.is_nan v then Format.fprintf ppf "%10s" "-"
  else if v >= 1e9 then Format.fprintf ppf "%8.2f s" (v /. 1e9)
  else if v >= 1e6 then Format.fprintf ppf "%7.2f ms" (v /. 1e6)
  else if v >= 1e3 then Format.fprintf ppf "%7.2f us" (v /. 1e3)
  else Format.fprintf ppf "%7.0f ns" v

let verdict_name = function
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Within -> "ok"
  | Added -> "added"
  | Removed -> "removed"

let pp_table ppf rows =
  Format.fprintf ppf "%-44s %10s %10s %7s %6s  %s@." "kernel" "baseline"
    "current" "ratio" "tau" "verdict";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-44s %a %a %7s %6.2f  %s@." r.name pp_ns r.base_p50
        pp_ns r.cur_p50
        (if Float.is_nan r.ratio then "-"
         else Printf.sprintf "%.2fx" r.ratio)
        r.tau (verdict_name r.verdict))
    rows;
  let n = List.length (List.filter (fun r -> r.verdict = Regressed) rows) in
  if n > 0 then Format.fprintf ppf "%d kernel(s) regressed@." n
  else Format.fprintf ppf "no regressions@."
