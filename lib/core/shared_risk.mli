(** Shared risk between ISPs (the paper's Sec. 8 future work: "assessing
    shared risk between multiple ISPs using RiskRoute").

    Two networks that both concentrate infrastructure in the same
    disaster-prone metros will fail together; a regional ISP multihoming
    for robustness should prefer transit providers whose exposure is
    anti-correlated with its own. *)

val exposure_correlation :
  riskmap:Rr_disaster.Riskmap.t -> Rr_topology.Net.t -> Rr_topology.Net.t ->
  float
(** Pearson correlation of the two networks' historical risk profiles
    over a common geographic raster: each network's per-cell exposure is
    the risk mass of its PoPs in that cell. 0 when either network has no
    spatially varying exposure. *)

type joint = {
  samples : int;
  a_hit : float;          (** P(network A loses a PoP to the strike) *)
  b_hit : float;
  both_hit : float;       (** P(both lose a PoP) *)
  independence_gap : float;
      (** [both_hit - a_hit * b_hit]: positive means correlated failure
          beyond chance — shared risk *)
}

val joint_outage :
  ?rng:Rr_util.Prng.t -> ?samples:int -> ?damage_radius_miles:float ->
  kind:Rr_disaster.Event.kind -> Rr_topology.Net.t -> Rr_topology.Net.t ->
  joint
(** Monte Carlo over synthetic disaster strikes of the given kind
    (default 2000 samples, 80-mile damage radius): how often each network,
    and both, lose at least one PoP. *)

val least_shared_peer :
  riskmap:Rr_disaster.Riskmap.t -> candidates:Rr_topology.Net.t list ->
  Rr_topology.Net.t -> Rr_topology.Net.t option
(** The candidate whose exposure correlates least with the given
    network's — the diversity-first peer pick. *)
