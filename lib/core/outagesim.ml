open Rr_util

type scenario = {
  center : Rr_geo.Coord.t;
  radius_miles : float;
  failed_pops : int list;
}

type result = {
  scenarios : int;
  pairs : int;
  shortest_survival : float;
  riskroute_survival : float;
  reactive_survival : float;
  endpoint_loss : float;
}

let sample_scenarios ?rng ?(radius_miles = 80.0) ?(probabilistic = false) ~kind
    ~count env =
  let rng = match rng with Some r -> r | None -> Prng.create 0x007A6EL in
  if count <= 0 then invalid_arg "Outagesim.sample_scenarios: count <= 0";
  let model = Rr_disaster.Model.for_kind kind in
  let sample = Rr_disaster.Model.sampler model ~seed:(Prng.int64 rng) in
  let coords = Env.coords env in
  let fails center v =
    let d = Rr_geo.Distance.miles center coords.(v) in
    if probabilistic then begin
      let z = d /. radius_miles in
      d <= 3.0 *. radius_miles && Prng.float rng 1.0 < exp (-.(z *. z))
    end
    else d <= radius_miles
  in
  List.init count (fun _ ->
      let center = sample rng in
      let failed_pops =
        List.filter (fun v -> fails center v) (Listx.range 0 (Array.length coords))
      in
      { center; radius_miles; failed_pops })

let banned_cost = 1e15

let c_scenarios = Rr_obs.Counter.make "outagesim.scenarios"

let c_reactive = Rr_obs.Counter.make "outagesim.reactive_checks"

let reactive_survives env ~failed ~src ~dst =
  Rr_obs.Counter.incr c_reactive;
  let weight u v =
    if Hashtbl.mem failed u || Hashtbl.mem failed v then banned_cost
    else Env.distance_weight env u v
  in
  match Rr_graph.Dijkstra.single_pair (Env.graph env) ~weight ~src ~dst with
  | Some (cost, _) -> cost < banned_cost
  | None -> false

let run ?rng ?(scenario_count = 200) ?(pair_cap = 200) ?(radius_miles = 80.0)
    ?(kind = Rr_disaster.Event.Fema_hurricane) env =
 Rr_obs.with_kernel "outagesim.run" @@ fun () ->
  Rr_obs.Counter.add c_scenarios scenario_count;
  let rng = match rng with Some r -> r | None -> Prng.create 0x0D15A57EL in
  let n = Env.node_count env in
  let pairs = Sampling.pair_indices (Prng.split rng) ~n ~cap:pair_cap in
  (* Static paths installed before any disaster — independent per pair,
     routed on the domain pool. *)
  let static =
    Parallel.map_array
      (fun (src, dst) ->
        let shortest = Router.shortest env ~src ~dst in
        let riskroute = Router.riskroute env ~src ~dst in
        (src, dst, shortest, riskroute))
      pairs
  in
  let scenarios =
    Array.of_list
      (sample_scenarios ~rng:(Prng.split rng) ~radius_miles ~kind
         ~count:scenario_count env)
  in
  (* Scenarios are evaluated independently (each builds its own failed
     set and reroutes against the shared immutable environment); their
     per-scenario survival fractions are summed in scenario order, so
     the result is bit-identical at any pool size. *)
  let contributions =
    Parallel.map_array
      (fun scenario ->
        let failed = Hashtbl.create 8 in
        List.iter (fun v -> Hashtbl.replace failed v ()) scenario.failed_pops;
        let path_alive path =
          List.for_all (fun v -> not (Hashtbl.mem failed v)) path
        in
        let live_pairs = ref 0
        and s_ok = ref 0
        and r_ok = ref 0
        and re_ok = ref 0
        and endpoint_dead = ref 0 in
        Array.iter
          (fun (src, dst, shortest, riskroute) ->
            if Hashtbl.mem failed src || Hashtbl.mem failed dst then
              incr endpoint_dead
            else begin
              incr live_pairs;
              (match shortest with
              | Some (route : Router.route) ->
                if path_alive route.Router.path then incr s_ok
              | None -> ());
              (match riskroute with
              | Some (route : Router.route) ->
                if path_alive route.Router.path then incr r_ok
              | None -> ());
              if
                Hashtbl.length failed = 0
                || reactive_survives env ~failed ~src ~dst
              then incr re_ok
            end)
          static;
        let total = Array.length static in
        if total = 0 then (0.0, 0.0, 0.0, 0.0)
        else begin
          let endpoint = float_of_int !endpoint_dead /. float_of_int total in
          if !live_pairs = 0 then (0.0, 0.0, 0.0, endpoint)
          else begin
            let live = float_of_int !live_pairs in
            ( float_of_int !s_ok /. live,
              float_of_int !r_ok /. live,
              float_of_int !re_ok /. live,
              endpoint )
          end
        end)
      scenarios
  in
  let sum_shortest = ref 0.0
  and sum_riskroute = ref 0.0
  and sum_reactive = ref 0.0
  and sum_endpoint = ref 0.0 in
  Array.iter
    (fun (s, r, re, endpoint) ->
      sum_shortest := !sum_shortest +. s;
      sum_riskroute := !sum_riskroute +. r;
      sum_reactive := !sum_reactive +. re;
      sum_endpoint := !sum_endpoint +. endpoint)
    contributions;
  let count = float_of_int (Array.length scenarios) in
  {
    scenarios = Array.length scenarios;
    pairs = Array.length pairs;
    shortest_survival = !sum_shortest /. count;
    riskroute_survival = !sum_riskroute /. count;
    reactive_survival = !sum_reactive /. count;
    endpoint_loss = !sum_endpoint /. count;
  }
