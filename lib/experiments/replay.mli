(** Storm replay: stream a hurricane season's advisories through the
    engine tick-by-tick, tracking how a fixed set of flows re-routes as
    the forecast moves.

    The driver runs in one of two stepping modes. [Full] rebuilds the
    (net, params, advisory) environment from scratch each tick; [
    Incremental] steps via {!Rr_engine.Context.patched_env} — sparse
    risk-field diff, environment patch, cached-tree keep/repair
    migration. The rendered per-tick report is byte-identical between
    the modes (CI diffs the two outputs), while the work accounting in
    the summary — environments built, nodes settled — shows the
    incremental path doing strictly less. *)

type mode = Full | Incremental

val mode_name : mode -> string
val mode_of_string : string -> mode option

type row = {
  index : int;  (** 0-based advisory tick *)
  issued : string;  (** advisory issuance timestamp *)
  in_scope : int;  (** PoPs inside the tropical-storm radius *)
  changed : int;  (** PoPs whose forecast risk changed since last tick *)
  churned : int;  (** flows whose advised route differs from last tick *)
  risk_cost : float;  (** total bit-risk-miles tree distance over flows *)
  mean_detour : float;
      (** mean ratio of advised-route miles to shortest-path miles *)
}

type t = {
  net_name : string;
  storm_name : string;
  mode : mode;
  flows : (int * int) array;  (** deterministic (src, dst) sample *)
  rows : row list;  (** one per advisory tick, in order *)
  churn_total : int;
  changed_ticks : int;  (** ticks whose field delta was non-empty *)
  envs_built : int;  (** full environment builds during the replay *)
  envs_patched : int;  (** environments derived by patching *)
  settled_nodes : int;  (** Dijkstra-settled nodes (fresh + repair) *)
  trees_kept : int;
  trees_repaired : int;
  trees_evicted : int;
  patched_arcs : int;
}

val default_pairs : int
(** 8 — overridable via [RISKROUTE_REPLAY_PAIRS]. *)

val run :
  ?mode:mode ->
  ?pairs:int ->
  ?ticks:int ->
  Rr_engine.Context.t ->
  net:Rr_topology.Net.t ->
  storm:Rr_forecast.Track.storm ->
  t
(** Replay [storm]'s advisory sequence over [net]. [mode] defaults to
    [Incremental]; [pairs] (flow count) defaults to
    [RISKROUTE_REPLAY_PAIRS] or {!default_pairs}; [ticks] caps the
    advisory count (default [RISKROUTE_REPLAY_TICKS] or the whole
    season). Flow endpoints are drawn from a fixed-seed PRNG within one
    connected component, so every run over the same net samples the
    same flows. Work totals are measured as {!Rr_engine.Context.stats}
    deltas — use a context that is not concurrently serving other
    work when the accounting matters. *)

val render : t -> string
(** The per-tick report. Deliberately mode-independent — running [Full]
    and [Incremental] over the same net and storm must render
    byte-identically (floats print via [%.17g], so even a 1-ulp
    divergence fails the comparison). *)

val summary_json : t -> string
(** Mode, per-season aggregates and the work accounting — the part that
    is {e meant} to differ between modes — as a small JSON document. *)
