(** Fig. 8: interdomain distance-increase versus risk-reduction scatter
    for the 16 regional networks (lambda_h = 1e5).

    Each regional's PoPs are path sources; destinations are the PoPs of
    all 16 regional networks; routing crosses the merged multi-ISP graph
    through Tier-1 transit. *)

type point = {
  network : string;
  result : Riskroute.Ratios.result;
}

val compute : ?pair_cap:int -> unit -> point list
(** [pair_cap] (default 1200) bounds sampled pairs per network. Results
    for the shared Zoo; memoised (Table 3 reuses them). *)

val run : Format.formatter -> unit
