(* The multicore execution engine: pool primitives, and end-to-end
   determinism of every parallelised sweep — results must be exactly
   equal (bit-identical floats) whether the pool runs 1 domain or
   several. *)

open Riskroute
module Parallel = Rr_util.Parallel

let coord lat lon = Rr_geo.Coord.make ~lat ~lon

let with_domains k f =
  let old = Parallel.domain_count () in
  Parallel.set_domain_count k;
  Fun.protect ~finally:(fun () -> Parallel.set_domain_count old) f

(* --- pool primitives --- *)

let map_matches_sequential =
  QCheck.Test.make ~name:"map_array agrees with Array.map at any pool size"
    ~count:50
    QCheck.(pair (int_range 1 5) (array_of_size (QCheck.Gen.int_range 0 200) small_int))
    (fun (domains, a) ->
      let f x = (x * 31) + (x mod 7) in
      with_domains domains (fun () -> Parallel.map_array f a = Array.map f a))

let fold_matches_sequential =
  QCheck.Test.make ~name:"fold reduces in index order at any pool size"
    ~count:50
    QCheck.(pair (int_range 1 5) (int_range 0 300))
    (fun (domains, n) ->
      let f i = float_of_int (i * i) /. 3.0 in
      let seq = ref 0.0 in
      for i = 0 to n - 1 do
        seq := !seq +. f i
      done;
      with_domains domains (fun () ->
          Parallel.fold n ~f ~init:0.0 ~combine:( +. ) = !seq))

let test_parallel_for_covers () =
  with_domains 4 (fun () ->
      let n = 1000 in
      let hits = Array.make n 0 in
      Parallel.parallel_for n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "each index exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_nested_no_deadlock () =
  (* Caller participation must keep nested parallel calls from starving
     the queue even when tasks outnumber workers. *)
  with_domains 2 (fun () ->
      let outer =
        Parallel.map_array
          (fun i ->
            Parallel.fold 50
              ~f:(fun j -> i + j)
              ~init:0
              ~combine:( + ))
          (Array.init 8 (fun i -> i))
      in
      let expected = Array.init 8 (fun i -> (50 * i) + (50 * 49 / 2)) in
      Alcotest.(check (array int)) "nested results" expected outer)

let test_exception_propagates () =
  with_domains 3 (fun () ->
      Alcotest.check_raises "worker exception reaches caller"
        (Failure "boom") (fun () ->
          Parallel.parallel_for 100 (fun i -> if i = 57 then failwith "boom")))

(* --- RISKROUTE_DOMAINS parsing --- *)

let env_var = "RISKROUTE_DOMAINS"

(* [Unix.putenv] cannot unset; "" is documented to behave as unset. *)
let with_env value f =
  let old = Option.value (Sys.getenv_opt env_var) ~default:"" in
  Unix.putenv env_var value;
  Fun.protect ~finally:(fun () -> Unix.putenv env_var old) f

let test_env_count_valid () =
  with_env " 4 " (fun () ->
      Alcotest.(check (option int)) "surrounding whitespace accepted"
        (Some 4) (Parallel.env_count ()))

let test_env_count_empty_silent () =
  Rr_obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Rr_obs.set_enabled false) @@ fun () ->
  let c = Rr_obs.Counter.make "parallel.env_invalid" in
  let before = Rr_obs.Counter.value c in
  with_env "" (fun () ->
      Alcotest.(check (option int)) "empty is unset" None (Parallel.env_count ()));
  with_env "   " (fun () ->
      Alcotest.(check (option int)) "blank is unset" None (Parallel.env_count ()));
  Alcotest.(check int) "no warning for unset" before (Rr_obs.Counter.value c)

let test_env_count_invalid () =
  Rr_obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Rr_obs.set_enabled false) @@ fun () ->
  let c = Rr_obs.Counter.make "parallel.env_invalid" in
  let before = Rr_obs.Counter.value c in
  List.iter
    (fun bad ->
      with_env bad (fun () ->
          Alcotest.(check (option int))
            (Printf.sprintf "%S rejected" bad)
            None (Parallel.env_count ())))
    [ "0"; "-3"; "garbage" ];
  Alcotest.(check int) "each rejection counted" (before + 3)
    (Rr_obs.Counter.value c)

(* --- sweep determinism across pool sizes --- *)

(* A 14-node topology with parallel risk/distance trade-offs: a coastal
   chain, an inland chain, and cross links, so riskroute/shortest differ
   and greedy augmentation has real candidates. *)
let scatter_env () =
  let coords =
    [|
      coord 29.76 (-95.37); coord 30.27 (-89.09); coord 29.95 (-90.07);
      coord 30.69 (-88.04); coord 30.33 (-81.66); coord 32.08 (-81.09);
      coord 33.75 (-84.39); coord 35.15 (-90.05); coord 36.16 (-86.78);
      coord 33.52 (-86.80); coord 32.30 (-90.18); coord 34.74 (-92.33);
      coord 35.47 (-97.52); coord 32.78 (-96.80);
    |]
  in
  let n = Array.length coords in
  let graph =
    Rr_graph.Graph.of_edges n
      [
        (0, 2); (2, 1); (1, 3); (3, 4); (4, 5);
        (0, 13); (13, 12); (12, 11); (11, 7); (7, 8); (8, 6); (6, 5);
        (2, 10); (10, 9); (9, 6); (3, 9); (11, 8); (13, 10);
      ]
  in
  let impact = Array.init n (fun i -> 0.01 +. (0.013 *. float_of_int i)) in
  let historical = Array.init n (fun i -> 1e-6 *. float_of_int ((i * 7 mod 11) + 1)) in
  let forecast = Array.init n (fun i -> 1e-4 *. float_of_int (i mod 3)) in
  Env.make ~graph ~coords ~impact ~historical ~forecast ()

let abilene_env () =
  let candidates =
    [ "data/abilene.gml"; "../data/abilene.gml"; "../../data/abilene.gml";
      "../../../data/abilene.gml"; "../../../../data/abilene.gml" ]
  in
  Option.map
    (fun path -> Env.of_net (Rr_topology.Gml_io.of_file path))
    (List.find_opt Sys.file_exists candidates)

let pool_sizes = [ 1; 4 ]

(* Run [compute] at each pool size and insist every result is exactly
   equal (structural equality covers float bit patterns) to the 1-domain
   run, which in turn is the plain sequential code path. *)
let check_pool_invariant name compute =
  let results = List.map (fun k -> with_domains k compute) pool_sizes in
  match results with
  | baseline :: rest ->
    List.iteri
      (fun i r ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: pool size %d exact" name (List.nth pool_sizes (i + 1)))
          true (r = baseline))
      rest
  | [] -> ()

let test_total_bit_risk_invariant () =
  let env = scatter_env () in
  check_pool_invariant "total_bit_risk" (fun () -> Augment.total_bit_risk env)

let test_greedy_invariant () =
  let env = scatter_env () in
  check_pool_invariant "greedy k=3" (fun () ->
      List.map
        (fun (p : Augment.pick) -> (p.Augment.u, p.Augment.v, p.Augment.total_after))
        (Augment.greedy ~k:3 env))

let test_ratios_invariant () =
  let env = scatter_env () in
  check_pool_invariant "intradomain ratios" (fun () ->
      let r = Ratios.intradomain ~pair_cap:120 env in
      (r.Ratios.risk_reduction, r.Ratios.distance_increase, r.Ratios.pairs))

let test_outagesim_invariant () =
  let env = scatter_env () in
  check_pool_invariant "outage simulation" (fun () ->
      let r = Outagesim.run ~scenario_count:40 ~pair_cap:40 env in
      ( r.Outagesim.shortest_survival,
        r.Outagesim.riskroute_survival,
        r.Outagesim.reactive_survival,
        r.Outagesim.endpoint_loss ))

let test_census_invariant () =
  let blocks = Rr_census.Synthetic.generate ~blocks:2_000 () in
  let sites = Array.map Env.coords [| scatter_env () |] in
  let sites = sites.(0) in
  check_pool_invariant "census fractions" (fun () ->
      Rr_census.Assignment.fractions ~sites blocks)

let test_abilene_invariant () =
  match abilene_env () with
  | None -> Alcotest.skip ()
  | Some env ->
    check_pool_invariant "abilene ratios" (fun () ->
        Ratios.intradomain ~pair_cap:100 env);
    check_pool_invariant "abilene greedy" (fun () ->
        List.map
          (fun (p : Augment.pick) -> (p.Augment.u, p.Augment.v, p.Augment.total_after))
          (Augment.greedy ~k:2 env))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          q map_matches_sequential; q fold_matches_sequential;
          Alcotest.test_case "parallel_for covers every index" `Quick
            test_parallel_for_covers;
          Alcotest.test_case "nested parallelism completes" `Quick
            test_nested_no_deadlock;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagates;
        ] );
      ( "env",
        [
          Alcotest.test_case "valid RISKROUTE_DOMAINS" `Quick
            test_env_count_valid;
          Alcotest.test_case "unset/blank is silent" `Quick
            test_env_count_empty_silent;
          Alcotest.test_case "invalid values warn and count" `Quick
            test_env_count_invalid;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "total bit-risk" `Quick test_total_bit_risk_invariant;
          Alcotest.test_case "greedy augmentation" `Quick test_greedy_invariant;
          Alcotest.test_case "intradomain ratios" `Quick test_ratios_invariant;
          Alcotest.test_case "outage simulation" `Quick test_outagesim_invariant;
          Alcotest.test_case "census fractions" `Quick test_census_invariant;
          Alcotest.test_case "abilene end-to-end" `Quick test_abilene_invariant;
        ] );
    ]
