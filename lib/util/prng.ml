type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 core: advance by the golden gamma, then mix. *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (int64 t)

(* 53-bit mantissa of the raw draw, mapped to [0, 1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound =
  assert (bound > 0.0);
  unit_float t *. bound

let int t bound =
  assert (bound > 0);
  (* Rejection-free modulo is fine here: bounds are tiny versus 2^64 so
     bias is immeasurable for simulation purposes. *)
  let v = Int64.rem (int64 t) (Int64.of_int bound) in
  Int64.to_int (Int64.abs v)

let bool t = Int64.logand (int64 t) 1L = 1L

let uniform t lo hi =
  assert (hi > lo);
  lo +. (unit_float t *. (hi -. lo))

let gaussian2 t =
  (* Box-Muller; guard against log 0. *)
  let rec draw_u () =
    let u = unit_float t in
    if u <= 1e-300 then draw_u () else u
  in
  let u1 = draw_u () in
  let u2 = unit_float t in
  let r = sqrt (-2.0 *. log u1) in
  let theta = 2.0 *. Float.pi *. u2 in
  (r *. cos theta, r *. sin theta)

let gaussian t = fst (gaussian2 t)

let exponential t rate =
  assert (rate > 0.0);
  let rec draw_u () =
    let u = unit_float t in
    if u <= 1e-300 then draw_u () else u
  in
  -.log (draw_u ()) /. rate

let pareto t ~alpha ~xmin =
  assert (alpha > 0.0 && xmin > 0.0);
  let rec draw_u () =
    let u = unit_float t in
    if u <= 1e-300 then draw_u () else u
  in
  xmin /. (draw_u () ** (1.0 /. alpha))

let categorical t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  assert (total > 0.0);
  let target = float t total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
