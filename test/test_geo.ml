open Rr_geo

let coord lat lon = Coord.make ~lat ~lon

let nyc = coord 40.71 (-74.01)
let la = coord 34.05 (-118.24)
let boston = coord 42.36 (-71.06)
let chicago = coord 41.88 (-87.63)

(* --- Coord --- *)

let test_coord_validation () =
  Alcotest.check_raises "lat too big" (Invalid_argument "Coord.make: latitude out of range")
    (fun () -> ignore (coord 91.0 0.0));
  Alcotest.check_raises "lon too big" (Invalid_argument "Coord.make: longitude out of range")
    (fun () -> ignore (coord 0.0 200.0));
  Alcotest.check_raises "nan lat" (Invalid_argument "Coord.make: latitude out of range")
    (fun () -> ignore (coord Float.nan 0.0))

let test_coord_accessors () =
  Alcotest.(check (float 1e-9)) "lat" 40.71 (Coord.lat nyc);
  Alcotest.(check (float 1e-9)) "lon" (-74.01) (Coord.lon nyc)

let test_coord_equal_compare () =
  Alcotest.(check bool) "equal" true (Coord.equal nyc (coord 40.71 (-74.01)));
  Alcotest.(check bool) "not equal" false (Coord.equal nyc la);
  Alcotest.(check int) "ordering" (-1) (compare (Coord.compare la nyc) 0)

let test_midpoint () =
  let m = Coord.midpoint nyc la in
  Alcotest.(check bool) "between lats" true
    (Coord.lat m > 34.0 && Coord.lat m < 41.0);
  Alcotest.(check bool) "between lons" true
    (Coord.lon m > -118.3 && Coord.lon m < -74.0);
  (* midpoint is equidistant *)
  let d1 = Distance.miles nyc m and d2 = Distance.miles m la in
  Alcotest.(check (float 1.0)) "equidistant" d1 d2

let test_interpolate_endpoints () =
  Alcotest.(check bool) "f=0" true (Coord.equal (Coord.interpolate nyc la 0.0) nyc);
  let at_one = Coord.interpolate nyc la 1.0 in
  Alcotest.(check bool) "f=1 close to target" true (Distance.miles at_one la < 0.5)

let test_interpolate_same_point () =
  let p = Coord.interpolate nyc nyc 0.5 in
  Alcotest.(check bool) "degenerate" true (Coord.equal p nyc)

let test_pp () =
  Alcotest.(check string) "format" "(40.71N, 74.01W)" (Coord.to_string nyc)

(* --- Distance --- *)

let test_known_distances () =
  (* published great-circle distances, within ~1% *)
  Alcotest.(check bool) "NYC-LA ~2445 mi" true
    (Float.abs (Distance.miles nyc la -. 2445.0) < 30.0);
  Alcotest.(check bool) "NYC-Boston ~190 mi" true
    (Float.abs (Distance.miles nyc boston -. 190.0) < 8.0);
  Alcotest.(check bool) "NYC-Chicago ~710 mi" true
    (Float.abs (Distance.miles nyc chicago -. 713.0) < 15.0)

let test_distance_zero_symmetric () =
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Distance.miles nyc nyc);
  Alcotest.(check (float 1e-6)) "symmetric" (Distance.miles nyc la)
    (Distance.miles la nyc)

let test_km_conversion () =
  Alcotest.(check (float 0.01)) "round trip" 100.0
    (Distance.km_to_miles (Distance.miles_to_km 100.0))

let test_within () =
  Alcotest.(check bool) "inside" true
    (Distance.within boston ~center:nyc ~radius_miles:250.0);
  Alcotest.(check bool) "outside" false
    (Distance.within la ~center:nyc ~radius_miles:250.0)

let coord_gen =
  QCheck.Gen.(
    map2
      (fun lat lon -> Coord.make ~lat ~lon)
      (float_range (-89.0) 89.0) (float_range (-179.0) 179.0))

let arb_coord = QCheck.make coord_gen ~print:Coord.to_string

let triangle_inequality =
  QCheck.Test.make ~name:"triangle inequality" ~count:300
    (QCheck.triple arb_coord arb_coord arb_coord)
    (fun (a, b, c) ->
      Distance.miles a c <= Distance.miles a b +. Distance.miles b c +. 1e-6)

let interpolation_on_segment =
  QCheck.Test.make ~name:"interpolated point splits the distance" ~count:200
    (QCheck.pair arb_coord arb_coord)
    (fun (a, b) ->
      QCheck.assume (Distance.miles a b > 1.0);
      let m = Coord.interpolate a b 0.5 in
      let direct = Distance.miles a b in
      let via = Distance.miles a m +. Distance.miles m b in
      Float.abs (via -. direct) < 0.01 *. direct +. 0.5)

(* --- Bbox --- *)

let test_bbox_contains () =
  Alcotest.(check bool) "NYC in CONUS" true (Bbox.contains Bbox.conus nyc);
  Alcotest.(check bool) "London not in CONUS" false
    (Bbox.contains Bbox.conus (coord 51.5 0.1))

let test_bbox_of_coords () =
  let box = Bbox.of_coords [ nyc; la; chicago ] in
  Alcotest.(check (float 1e-9)) "min lat" 34.05 box.Bbox.min_lat;
  Alcotest.(check (float 1e-9)) "max lon" (-74.01) box.Bbox.max_lon;
  Alcotest.check_raises "empty" (Invalid_argument "Bbox.of_coords: empty list")
    (fun () -> ignore (Bbox.of_coords []))

let test_bbox_invalid () =
  Alcotest.check_raises "inverted" (Invalid_argument "Bbox.make: inverted bounds")
    (fun () ->
      ignore (Bbox.make ~min_lat:10.0 ~max_lat:0.0 ~min_lon:0.0 ~max_lon:1.0))

let test_bbox_expand_clamp () =
  let box = Bbox.make ~min_lat:30.0 ~max_lat:40.0 ~min_lon:(-100.0) ~max_lon:(-90.0) in
  let big = Bbox.expand box ~degrees:5.0 in
  Alcotest.(check (float 1e-9)) "expanded" 25.0 big.Bbox.min_lat;
  let clamped = Bbox.clamp box (coord 50.0 (-120.0)) in
  Alcotest.(check (float 1e-9)) "clamped lat" 40.0 (Coord.lat clamped);
  Alcotest.(check (float 1e-9)) "clamped lon" (-100.0) (Coord.lon clamped);
  let inside = Bbox.clamp box (coord 35.0 (-95.0)) in
  Alcotest.(check bool) "inside unchanged" true (Coord.equal inside (coord 35.0 (-95.0)))

let test_bbox_center () =
  let box = Bbox.make ~min_lat:30.0 ~max_lat:40.0 ~min_lon:(-100.0) ~max_lon:(-90.0) in
  Alcotest.(check bool) "center" true (Coord.equal (Bbox.center box) (coord 35.0 (-95.0)))

(* --- Grid --- *)

let test_grid_cell_round_trip () =
  let grid = Grid.create Bbox.conus ~rows:50 ~cols:100 in
  match Grid.cell_of_coord grid chicago with
  | None -> Alcotest.fail "chicago should be on the grid"
  | Some (row, col) ->
    let back = Grid.coord_of_cell grid row col in
    Alcotest.(check bool) "cell centre near the point" true
      (Distance.miles chicago back < 60.0)

let test_grid_row_zero_is_north () =
  let grid = Grid.create Bbox.conus ~rows:50 ~cols:100 in
  let seattle = coord 47.61 (-122.33) in
  let miami = coord 25.76 (-80.19) in
  match (Grid.cell_of_coord grid seattle, Grid.cell_of_coord grid miami) with
  | Some (rs, _), Some (rm, _) ->
    Alcotest.(check bool) "north has smaller row" true (rs < rm)
  | _ -> Alcotest.fail "both cities must be on the grid"

let test_grid_deposit_total () =
  let grid = Grid.create Bbox.conus ~rows:10 ~cols:10 in
  Grid.deposit grid nyc 2.0;
  Grid.deposit grid la 3.0;
  Grid.deposit grid (coord 51.5 0.1) 100.0 (* dropped: outside *);
  Alcotest.(check (float 1e-9)) "total" 5.0 (Grid.total grid)

let test_grid_normalize () =
  let grid = Grid.create Bbox.conus ~rows:5 ~cols:5 in
  Grid.deposit grid nyc 2.0;
  Grid.deposit grid la 2.0;
  Grid.normalize grid;
  Alcotest.(check (float 1e-9)) "unit mass" 1.0 (Grid.total grid)

let test_grid_mass_in () =
  let grid = Grid.create Bbox.conus ~rows:50 ~cols:100 in
  Grid.deposit grid nyc 1.0;
  let east = Bbox.make ~min_lat:24.5 ~max_lat:49.5 ~min_lon:(-90.0) ~max_lon:(-66.5) in
  Alcotest.(check (float 1e-9)) "all mass in east" 1.0 (Grid.mass_in grid east)

let test_grid_render_dims () =
  let grid = Grid.create Bbox.conus ~rows:20 ~cols:40 in
  Grid.deposit grid nyc 1.0;
  let s = Grid.render_ascii ~width:30 ~height:8 grid in
  let lines = String.split_on_char '\n' s in
  let non_empty = List.filter (fun l -> String.length l > 0) lines in
  Alcotest.(check int) "height" 8 (List.length non_empty);
  List.iter (fun l -> Alcotest.(check int) "width" 30 (String.length l)) non_empty

let test_grid_out_of_range () =
  let grid = Grid.create Bbox.conus ~rows:5 ~cols:5 in
  Alcotest.(check (option (pair int int))) "outside" None
    (Grid.cell_of_coord grid (coord 51.5 0.1))

(* --- Polyline --- *)

let test_polyline_length () =
  let line = [| nyc; chicago; la |] in
  let expected = Distance.miles nyc chicago +. Distance.miles chicago la in
  Alcotest.(check (float 0.01)) "sum of legs" expected (Polyline.length_miles line);
  Alcotest.(check (float 1e-9)) "single point" 0.0 (Polyline.length_miles [| nyc |])

let test_polyline_point_at () =
  let line = [| nyc; la |] in
  let start = Polyline.point_at line ~fraction:0.0 in
  Alcotest.(check bool) "start" true (Distance.miles start nyc < 1.0);
  let finish = Polyline.point_at line ~fraction:1.0 in
  Alcotest.(check bool) "finish" true (Distance.miles finish la < 1.0);
  let mid = Polyline.point_at line ~fraction:0.5 in
  Alcotest.(check bool) "mid equidistant" true
    (Float.abs (Distance.miles nyc mid -. Distance.miles mid la) < 5.0)

let test_polyline_resample () =
  let line = [| nyc; la |] in
  let dense = Polyline.resample line ~every_miles:100.0 in
  Alcotest.(check bool) "about 25 points" true (Array.length dense >= 20);
  Alcotest.(check bool) "starts at nyc" true (Distance.miles dense.(0) nyc < 1.0);
  Alcotest.(check bool) "ends at la" true
    (Distance.miles dense.(Array.length dense - 1) la < 1.0)

let () =
  Alcotest.run "rr_geo"
    [
      ( "coord",
        [
          Alcotest.test_case "validation" `Quick test_coord_validation;
          Alcotest.test_case "accessors" `Quick test_coord_accessors;
          Alcotest.test_case "equal/compare" `Quick test_coord_equal_compare;
          Alcotest.test_case "midpoint" `Quick test_midpoint;
          Alcotest.test_case "interpolate endpoints" `Quick test_interpolate_endpoints;
          Alcotest.test_case "interpolate degenerate" `Quick test_interpolate_same_point;
          Alcotest.test_case "pretty print" `Quick test_pp;
        ] );
      ( "distance",
        [
          Alcotest.test_case "known city pairs" `Quick test_known_distances;
          Alcotest.test_case "zero and symmetric" `Quick test_distance_zero_symmetric;
          Alcotest.test_case "km conversion" `Quick test_km_conversion;
          Alcotest.test_case "within disc" `Quick test_within;
          QCheck_alcotest.to_alcotest triangle_inequality;
          QCheck_alcotest.to_alcotest interpolation_on_segment;
        ] );
      ( "bbox",
        [
          Alcotest.test_case "contains" `Quick test_bbox_contains;
          Alcotest.test_case "of_coords" `Quick test_bbox_of_coords;
          Alcotest.test_case "invalid" `Quick test_bbox_invalid;
          Alcotest.test_case "expand/clamp" `Quick test_bbox_expand_clamp;
          Alcotest.test_case "center" `Quick test_bbox_center;
        ] );
      ( "grid",
        [
          Alcotest.test_case "cell round trip" `Quick test_grid_cell_round_trip;
          Alcotest.test_case "row zero north" `Quick test_grid_row_zero_is_north;
          Alcotest.test_case "deposit/total" `Quick test_grid_deposit_total;
          Alcotest.test_case "normalize" `Quick test_grid_normalize;
          Alcotest.test_case "mass_in" `Quick test_grid_mass_in;
          Alcotest.test_case "render dimensions" `Quick test_grid_render_dims;
          Alcotest.test_case "out of range" `Quick test_grid_out_of_range;
        ] );
      ( "polyline",
        [
          Alcotest.test_case "length" `Quick test_polyline_length;
          Alcotest.test_case "point_at" `Quick test_polyline_point_at;
          Alcotest.test_case "resample" `Quick test_polyline_resample;
        ] );
    ]
