(** Ordinary least-squares simple linear regression.

    Table 3 of the paper reports the coefficient of determination (R^2) of
    six network characteristics against the risk-reduction and
    distance-increase ratios; this module provides exactly that fit. *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** in [[0, 1]]; 0 when x or y has no variance *)
  n : int;
}

val ols : x:float array -> y:float array -> fit
(** Least-squares line through equal-length arrays of at least two
    points. *)

val r_squared : x:float array -> y:float array -> float
(** Shorthand for [(ols ~x ~y).r_squared]. *)
