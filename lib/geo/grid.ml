type t = {
  bbox : Bbox.t;
  rows : int;
  cols : int;
  cells : float array; (* row-major, row 0 = northern edge *)
}

let create bbox ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Grid.create: non-positive size";
  { bbox; rows; cols; cells = Array.make (rows * cols) 0.0 }

let rows t = t.rows

let cols t = t.cols

let bbox t = t.bbox

let lat_span t = t.bbox.Bbox.max_lat -. t.bbox.Bbox.min_lat

let lon_span t = t.bbox.Bbox.max_lon -. t.bbox.Bbox.min_lon

let cell_of_coord t c =
  if not (Bbox.contains t.bbox c) then None
  else begin
    (* Row 0 is the northern edge: invert the latitude fraction. *)
    let frac_lat = (t.bbox.Bbox.max_lat -. Coord.lat c) /. lat_span t in
    let frac_lon = (Coord.lon c -. t.bbox.Bbox.min_lon) /. lon_span t in
    let row = min (t.rows - 1) (int_of_float (frac_lat *. float_of_int t.rows)) in
    let col = min (t.cols - 1) (int_of_float (frac_lon *. float_of_int t.cols)) in
    Some (row, col)
  end

let coord_of_cell t row col =
  let lat =
    t.bbox.Bbox.max_lat
    -. ((float_of_int row +. 0.5) /. float_of_int t.rows *. lat_span t)
  in
  let lon =
    t.bbox.Bbox.min_lon
    +. ((float_of_int col +. 0.5) /. float_of_int t.cols *. lon_span t)
  in
  Coord.make ~lat ~lon

let index t row col =
  assert (row >= 0 && row < t.rows && col >= 0 && col < t.cols);
  (row * t.cols) + col

let get t row col = t.cells.(index t row col)

let set t row col v = t.cells.(index t row col) <- v

let add t row col v = t.cells.(index t row col) <- t.cells.(index t row col) +. v

let deposit t c mass =
  match cell_of_coord t c with
  | None -> ()
  | Some (row, col) -> add t row col mass

let map_inplace t f =
  for i = 0 to Array.length t.cells - 1 do
    t.cells.(i) <- f t.cells.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for row = 0 to t.rows - 1 do
    for col = 0 to t.cols - 1 do
      acc := f !acc row col t.cells.((row * t.cols) + col)
    done
  done;
  !acc

let total t = Rr_util.Arrayx.fsum t.cells

let max_value t = Array.fold_left Float.max 0.0 t.cells

let normalize t =
  let sum = total t in
  if sum > 0.0 then map_inplace t (fun v -> v /. sum)

let mass_in t box =
  fold t ~init:0.0 ~f:(fun acc row col v ->
      if Bbox.contains box (coord_of_cell t row col) then acc +. v else acc)

let ramp = " .:-=+*#%@"

let render_ascii ?(width = 72) ?(height = 24) t =
  let buf = Buffer.create (width * height) in
  let vmax =
    (* Use a robust maximum so one hot cell does not wash out the map. *)
    let values =
      fold t ~init:[] ~f:(fun acc _ _ v -> if v > 0.0 then v :: acc else acc)
    in
    match List.sort Float.compare values with
    | [] -> 1.0
    | sorted ->
      let arr = Array.of_list sorted in
      arr.(min (Array.length arr - 1) (Array.length arr * 98 / 100))
  in
  for out_row = 0 to height - 1 do
    for out_col = 0 to width - 1 do
      (* Aggregate the source cells behind this output character. *)
      let r0 = out_row * t.rows / height and r1 = max 1 ((out_row + 1) * t.rows / height) in
      let c0 = out_col * t.cols / width and c1 = max 1 ((out_col + 1) * t.cols / width) in
      let acc = ref 0.0 and n = ref 0 in
      for r = r0 to min (t.rows - 1) (r1 - 1) do
        for c = c0 to min (t.cols - 1) (c1 - 1) do
          acc := !acc +. get t r c;
          incr n
        done
      done;
      let v = if !n = 0 then 0.0 else !acc /. float_of_int !n in
      let frac = Float.min 1.0 (v /. vmax) in
      let idx = int_of_float (frac *. float_of_int (String.length ramp - 1)) in
      Buffer.add_char buf ramp.[idx]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
