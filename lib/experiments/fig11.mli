(** Fig. 11: best additional peering relationship for each regional
    network (dotted red links in the paper's figure). *)

val compute : ?pair_cap:int -> unit -> Riskroute.Peer_advisor.recommendation list

val run : Format.formatter -> unit
