(* The telemetry subsystem: sharded-metric merge determinism across pool
   sizes, span nesting (including across the domain pool), the disabled
   mode being a true no-op, and golden exposition formats. *)

open Riskroute
module Parallel = Rr_util.Parallel

let with_domains k f =
  let old = Parallel.domain_count () in
  Parallel.set_domain_count k;
  Fun.protect ~finally:(fun () -> Parallel.set_domain_count old) f

(* Every test that records telemetry runs under this guard so a failure
   cannot leave recording enabled for later tests. *)
let with_telemetry f =
  Rr_obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Rr_obs.set_enabled false) f

let pool_sizes = [ 1; 2; 4 ]

(* --- merge determinism --- *)

let test_counter_merge_deterministic () =
  with_telemetry @@ fun () ->
  let c = Rr_obs.Counter.make "test.obs.counter_merge" in
  List.iter
    (fun k ->
      with_domains k (fun () ->
          Rr_obs.Counter.reset c;
          Parallel.parallel_for 1000 (fun _ -> Rr_obs.Counter.incr c);
          Alcotest.(check int)
            (Printf.sprintf "1000 increments at pool size %d" k)
            1000 (Rr_obs.Counter.value c)))
    pool_sizes

let test_histogram_merge_deterministic () =
  with_telemetry @@ fun () ->
  let h = Rr_obs.Histogram.make "test.obs.hist_merge" in
  let observe_all () =
    Rr_obs.Histogram.reset h;
    (* A fixed multiset of values; which domain observes which must not
       matter for count/min/max/buckets. *)
    Parallel.parallel_for 512 (fun i ->
        Rr_obs.Histogram.observe h (Float.ldexp 1.0 ((i mod 9) - 4)));
    Rr_obs.Histogram.snapshot h
  in
  let snaps = List.map (fun k -> with_domains k observe_all) pool_sizes in
  match snaps with
  | base :: rest ->
    List.iteri
      (fun i s ->
        let k = List.nth pool_sizes (i + 1) in
        Alcotest.(check int) (Printf.sprintf "count at %d domains" k)
          base.Rr_obs.Histogram.count s.Rr_obs.Histogram.count;
        Alcotest.(check (float 0.0)) (Printf.sprintf "min at %d domains" k)
          base.Rr_obs.Histogram.vmin s.Rr_obs.Histogram.vmin;
        Alcotest.(check (float 0.0)) (Printf.sprintf "max at %d domains" k)
          base.Rr_obs.Histogram.vmax s.Rr_obs.Histogram.vmax;
        Alcotest.(check (array int)) (Printf.sprintf "buckets at %d domains" k)
          base.Rr_obs.Histogram.buckets s.Rr_obs.Histogram.buckets)
      rest
  | [] -> ()

(* --- spans --- *)

let test_span_nesting () =
  with_telemetry @@ fun () ->
  let r = Rr_obs.Registry.create () in
  Rr_obs.with_span ~registry:r "outer" (fun () ->
      Rr_obs.with_span ~registry:r "inner" (fun () -> ()));
  match Rr_obs.spans ~registry:r () with
  | [ a; b ] ->
    let outer, inner =
      if a.Rr_obs.sp_name = "outer" then (a, b) else (b, a)
    in
    Alcotest.(check string) "outer name" "outer" outer.Rr_obs.sp_name;
    Alcotest.(check int) "outer is a root span" 0 outer.Rr_obs.sp_parent;
    Alcotest.(check int) "inner parents to outer" outer.Rr_obs.sp_id
      inner.Rr_obs.sp_parent
  | sps -> Alcotest.failf "expected 2 spans, got %d" (List.length sps)

(* Spans opened inside pool tasks chain to the submitting span through
   the pool's own "parallel.task" span (recorded in the default
   registry): task -> parallel.task -> submit. *)
let test_span_pool_attribution () =
  with_telemetry @@ fun () ->
  with_domains 4 @@ fun () ->
  Rr_obs.reset ();
  let r = Rr_obs.Registry.create () in
  Rr_obs.with_span ~registry:r "submit" (fun () ->
      Parallel.parallel_for 64 (fun _ ->
          Rr_obs.with_span ~registry:r "task" (fun () -> ())));
  let sps = Rr_obs.spans ~registry:r () in
  let submit = List.find (fun sp -> sp.Rr_obs.sp_name = "submit") sps in
  let tasks = List.filter (fun sp -> sp.Rr_obs.sp_name = "task") sps in
  let pool_spans =
    List.filter
      (fun sp -> sp.Rr_obs.sp_name = "parallel.task")
      (Rr_obs.spans ())
  in
  let pool_ids = List.map (fun sp -> sp.Rr_obs.sp_id) pool_spans in
  Alcotest.(check int) "one span per task body" 64 (List.length tasks);
  Alcotest.(check bool) "pool recorded its task spans" true
    (pool_spans <> []);
  List.iter
    (fun sp ->
      Alcotest.(check bool) "task span parents to a pool task span" true
        (List.mem sp.Rr_obs.sp_parent pool_ids))
    tasks;
  List.iter
    (fun sp ->
      Alcotest.(check int) "pool task span parents to submitting span"
        submit.Rr_obs.sp_id sp.Rr_obs.sp_parent)
    pool_spans

(* --- disabled mode --- *)

let test_disabled_is_noop () =
  Rr_obs.set_enabled false;
  let r = Rr_obs.Registry.create () in
  let c = Rr_obs.Counter.make ~registry:r "test.obs.off_counter" in
  let g = Rr_obs.Gauge.make ~registry:r "test.obs.off_gauge" in
  let h = Rr_obs.Histogram.make ~registry:r "test.obs.off_hist" in
  Rr_obs.Counter.add c 5;
  Rr_obs.Gauge.set g 9;
  Rr_obs.Histogram.observe h 1.5;
  let v = Rr_obs.with_span ~registry:r "off" (fun () -> 17) in
  Alcotest.(check int) "with_span passes the value through" 17 v;
  Alcotest.(check int) "counter untouched" 0 (Rr_obs.Counter.value c);
  Alcotest.(check int) "gauge untouched" 0 (Rr_obs.Gauge.value g);
  Alcotest.(check int) "histogram untouched" 0
    (Rr_obs.Histogram.snapshot h).Rr_obs.Histogram.count;
  Alcotest.(check int) "no spans recorded" 0
    (List.length (Rr_obs.spans ~registry:r ()))

(* --- golden exposition --- *)

(* A registry with a pinned clock and fixed contents, so both exposition
   formats can be compared byte for byte. *)
let golden_registry () =
  Rr_obs.Clock.set_source (fun () -> 42.0);
  let r = Rr_obs.Registry.create () in
  let c = Rr_obs.Counter.make ~registry:r "alpha.count" in
  let g = Rr_obs.Gauge.make ~registry:r "beta.gauge" in
  let h = Rr_obs.Histogram.make ~registry:r "gamma.seconds" in
  Rr_obs.Counter.add c 7;
  Rr_obs.Gauge.set g 4;
  List.iter (Rr_obs.Histogram.observe h) [ 0.25; 0.5; 2.0 ];
  Rr_obs.set_meta ~registry:r "host" "golden";
  Rr_obs.with_span ~registry:r "root.op" (fun () -> ());
  r

let with_golden f =
  with_telemetry @@ fun () ->
  Fun.protect ~finally:Rr_obs.Clock.reset_source (fun () ->
      f (golden_registry ()))

let golden_json =
  "{\n\
  \  \"schema\": 1,\n\
  \  \"meta\": {\n\
  \    \"host\": \"golden\"\n\
  \  },\n\
  \  \"counters\": {\n\
  \    \"alpha.count\": 7\n\
  \  },\n\
  \  \"gauges\": {\n\
  \    \"beta.gauge\": 4\n\
  \  },\n\
  \  \"histograms\": {\n\
  \    \"gamma.seconds\": {\"count\": 3, \"sum\": 2.75, \"min\": 0.25, \
   \"max\": 2.0, \"p50\": 0.5, \"p90\": 2.0, \"p99\": 2.0, \"buckets\": \
   [[0.25, 1], [0.5, 1], [2.0, 1]]}\n\
  \  },\n\
  \  \"spans\": [\n\
  \    {\"id\": 1, \"parent\": 0, \"name\": \"root.op\", \"start\": 0.0, \
   \"dur\": 0.0, \"domain\": 0}\n\
  \  ]\n\
   }\n"

let golden_prom =
  "# TYPE riskroute_alpha_count counter\n\
   riskroute_alpha_count 7\n\
   # TYPE riskroute_beta_gauge gauge\n\
   riskroute_beta_gauge 4\n\
   # TYPE riskroute_gamma_seconds histogram\n\
   riskroute_gamma_seconds_bucket{le=\"0.25\"} 1\n\
   riskroute_gamma_seconds_bucket{le=\"0.5\"} 2\n\
   riskroute_gamma_seconds_bucket{le=\"2\"} 3\n\
   riskroute_gamma_seconds_bucket{le=\"+Inf\"} 3\n\
   riskroute_gamma_seconds_sum 2.75\n\
   riskroute_gamma_seconds_count 3\n"

let test_golden_json () =
  with_golden (fun r ->
      Alcotest.(check string) "JSON exposition" golden_json
        (Rr_obs.to_json ~registry:r ()))

let test_golden_prometheus () =
  with_golden (fun r ->
      Alcotest.(check string) "Prometheus exposition" golden_prom
        (Rr_obs.to_prometheus ~registry:r ()))

(* --- quantiles --- *)

let test_quantile_empty () =
  with_telemetry @@ fun () ->
  let r = Rr_obs.Registry.create () in
  let h = Rr_obs.Histogram.make ~registry:r "test.obs.q_empty" in
  let s = Rr_obs.Histogram.snapshot h in
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f of an empty histogram is NaN" q)
        true
        (Float.is_nan (Rr_obs.Histogram.quantile s q)))
    [ 0.0; 0.5; 0.99 ]

(* A registered-but-never-observed histogram must still expose cleanly:
   the NaN quantiles (and infinite min/max) are clamped to 0, never
   leaking "nan"/"inf" tokens that would break JSON consumers. *)
let test_empty_histogram_exposition () =
  with_telemetry @@ fun () ->
  let r = Rr_obs.Registry.create () in
  ignore (Rr_obs.Histogram.make ~registry:r "test.obs.h_unobserved");
  let json = Rr_obs.to_json ~registry:r () in
  let contains needle hay =
    let n = String.length needle and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (match Rr_perf.Json.parse json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "empty-histogram dump is not JSON: %s\n%s" e json);
  List.iter
    (fun tok ->
      Alcotest.(check bool)
        (Printf.sprintf "no %S token in the JSON dump" tok)
        false
        (contains tok (String.lowercase_ascii json)))
    [ "nan"; "inf" ];
  Alcotest.(check bool) "quantiles clamp to zero" true
    (contains "\"p50\": 0.0, \"p90\": 0.0, \"p99\": 0.0" json);
  let prom = Rr_obs.to_prometheus ~registry:r () in
  Alcotest.(check bool) "no nan in the Prometheus exposition" false
    (contains "nan" (String.lowercase_ascii prom))

let test_quantile_single_sample () =
  with_telemetry @@ fun () ->
  let h = Rr_obs.Histogram.make "test.obs.q_single" in
  Rr_obs.Histogram.reset h;
  Rr_obs.Histogram.observe h 3.0;
  let s = Rr_obs.Histogram.snapshot h in
  (* The bucket bound above 3.0 is 4.0; clamping into [min, max] must
     bring every quantile back to the one observed value. *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q=%.2f of a single sample is that sample" q)
        3.0
        (Rr_obs.Histogram.quantile s q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

let test_quantile_pool_deterministic () =
  with_telemetry @@ fun () ->
  let h = Rr_obs.Histogram.make "test.obs.q_pool" in
  let observe_all () =
    Rr_obs.Histogram.reset h;
    Parallel.parallel_for 512 (fun i ->
        Rr_obs.Histogram.observe h (Float.ldexp 1.0 ((i mod 9) - 4)));
    let s = Rr_obs.Histogram.snapshot h in
    ( Rr_obs.Histogram.quantile s 0.5,
      Rr_obs.Histogram.quantile s 0.9,
      Rr_obs.Histogram.quantile s 0.99 )
  in
  let qs = List.map (fun k -> with_domains k observe_all) pool_sizes in
  match qs with
  | base :: rest ->
    List.iteri
      (fun i q ->
        let k = List.nth pool_sizes (i + 1) in
        Alcotest.(check bool)
          (Printf.sprintf "p50/p90/p99 at %d domains match 1 domain" k)
          true (q = base))
      rest
  | [] -> ()

let test_merge_with_empty_shard () =
  with_telemetry @@ fun () ->
  with_domains 4 @@ fun () ->
  let h = Rr_obs.Histogram.make "test.obs.q_empty_shard" in
  (* Touch the histogram from the pool, then reset: worker shards still
     exist but hold nothing. *)
  Parallel.parallel_for 64 (fun _ -> Rr_obs.Histogram.observe h 1.0);
  Rr_obs.Histogram.reset h;
  (* Record only on the submitting domain; the merge must ignore the
     empty shards (their min/max sentinels must not leak through). *)
  List.iter (Rr_obs.Histogram.observe h) [ 0.5; 1.0; 4.0 ];
  let s = Rr_obs.Histogram.snapshot h in
  Alcotest.(check int) "count" 3 s.Rr_obs.Histogram.count;
  Alcotest.(check (float 0.0)) "min" 0.5 s.Rr_obs.Histogram.vmin;
  Alcotest.(check (float 0.0)) "max" 4.0 s.Rr_obs.Histogram.vmax;
  Alcotest.(check (float 0.0)) "p50" 1.0 (Rr_obs.Histogram.quantile s 0.5)

(* --- kernel wrapper --- *)

let test_with_kernel_gc_counters () =
  with_telemetry @@ fun () ->
  let r = Rr_obs.Registry.create () in
  let sink = ref [||] in
  let v =
    Rr_obs.with_kernel ~registry:r "kern" (fun () ->
        (* Small arrays stay on the minor heap, so the delta is visible
           in kern.gc_minor_words. *)
        for _ = 1 to 100 do
          sink := Array.make 100 0.0
        done;
        11)
  in
  Alcotest.(check int) "with_kernel passes the value through" 11 v;
  ignore !sink;
  let minor =
    Rr_obs.Counter.value
      (Rr_obs.Counter.make ~registry:r "kern.gc_minor_words")
  in
  Alcotest.(check bool) "minor allocation recorded" true (minor > 0);
  Alcotest.(check bool) "heap gauge recorded" true
    (Rr_obs.Gauge.value (Rr_obs.Gauge.make ~registry:r "kern.gc_heap_words")
    > 0);
  match Rr_obs.spans ~registry:r () with
  | [ sp ] ->
    Alcotest.(check string) "kernel span recorded" "kern" sp.Rr_obs.sp_name
  | sps -> Alcotest.failf "expected 1 span, got %d" (List.length sps)

(* --- trace exposition --- *)

let golden_trace =
  "{\n\
  \  \"displayTimeUnit\": \"ms\",\n\
  \  \"traceEvents\": [\n\
  \    {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
   \"args\": {\"name\": \"riskroute\"}},\n\
  \    {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"thread_name\", \
   \"args\": {\"name\": \"main\"}},\n\
  \    {\"ph\": \"X\", \"pid\": 1, \"tid\": 0, \"ts\": 0.000, \"dur\": \
   0.000, \"name\": \"root.op\", \"cat\": \"riskroute\", \"args\": {\"id\": \
   1, \"parent\": 0}}\n\
  \  ]\n\
   }\n"

let test_golden_trace () =
  with_golden (fun r ->
      Alcotest.(check string) "trace exposition" golden_trace
        (Rr_obs.to_trace ~registry:r ()))

(* A span tree that crosses a real domain boundary: the trace must grow
   a second track and a flow-event pair for the hand-off. Parsed with
   the same reader bench-compare uses, so this also pins "the trace is
   valid JSON". *)
let test_trace_two_tracks () =
  with_telemetry @@ fun () ->
  let r = Rr_obs.Registry.create () in
  Rr_obs.with_span ~registry:r "submit" (fun () ->
      let parent = Rr_obs.Span.current () in
      Domain.join
        (Domain.spawn (fun () ->
             Rr_obs.Span.with_parent parent (fun () ->
                 Rr_obs.with_span ~registry:r "task" (fun () -> ())))));
  let trace = Rr_obs.to_trace ~registry:r () in
  match Rr_perf.Json.parse trace with
  | Error e -> Alcotest.failf "trace is not valid JSON: %s" e
  | Ok j ->
    let events =
      match
        Option.bind (Rr_perf.Json.member "traceEvents" j) Rr_perf.Json.to_arr
      with
      | Some evs -> evs
      | None -> Alcotest.fail "trace has no traceEvents array"
    in
    let ph e = Option.bind (Rr_perf.Json.member "ph" e) Rr_perf.Json.to_str in
    let tid e =
      Option.bind (Rr_perf.Json.member "tid" e) Rr_perf.Json.to_int
    in
    List.iter
      (fun e ->
        if ph e = None || tid e = None then
          Alcotest.fail "trace event missing ph/tid")
      events;
    let tracks =
      List.sort_uniq compare
        (List.filter_map tid (List.filter (fun e -> ph e = Some "X") events))
    in
    Alcotest.(check bool) "at least two domain tracks" true
      (List.length tracks >= 2);
    let count p = List.length (List.filter (fun e -> ph e = Some p) events) in
    Alcotest.(check int) "one flow start for the hand-off" 1 (count "s");
    Alcotest.(check int) "one flow finish for the hand-off" 1 (count "f")

(* --- dump path validation --- *)

let test_dump_path_validation () =
  with_telemetry @@ fun () ->
  Fun.protect ~finally:Rr_obs.disarm_dumps @@ fun () ->
  let c = Rr_obs.Counter.make "obs.dump_path_invalid" in
  let v0 = Rr_obs.Counter.value c in
  (* Missing directory: one warning, one counter bump, dump stays armed. *)
  Rr_obs.enable_dump "/nonexistent-riskroute-dir/metrics.json";
  Alcotest.(check int) "invalid telemetry path counted" (v0 + 1)
    (Rr_obs.Counter.value c);
  (* stderr specs are fine for the telemetry dump... *)
  Rr_obs.enable_dump "-";
  Alcotest.(check int) "stderr telemetry spec accepted" (v0 + 1)
    (Rr_obs.Counter.value c);
  (* ...but a trace needs an actual file. *)
  Rr_obs.enable_trace "-";
  Alcotest.(check int) "stderr trace spec rejected" (v0 + 2)
    (Rr_obs.Counter.value c);
  Rr_obs.enable_trace "/nonexistent-riskroute-dir/trace.json";
  Alcotest.(check int) "invalid trace path counted" (v0 + 3)
    (Rr_obs.Counter.value c)

(* --- flight recorder --- *)

(* Every flight test pins a capacity, empties the rings, and restores
   the default afterwards so rings refilled by later tests (span events
   record into them) start from known state. *)
let with_flight cap f =
  Rr_obs.Flight.set_capacity cap;
  Rr_obs.Flight.reset ();
  Fun.protect
    ~finally:(fun () ->
      Rr_obs.Flight.set_capacity Rr_obs.Flight.default_capacity;
      Rr_obs.Flight.reset ())
    f

let test_flight_always_on () =
  Rr_obs.set_enabled false;
  with_flight 64 @@ fun () ->
  (* Recording must not depend on the telemetry flag: warnings and GC
     events have to survive into post-mortem dumps regardless. *)
  Rr_obs.Flight.record ~kind:"warn" ~name:"log" ~detail:"boom" ();
  match Rr_obs.Flight.events () with
  | [ ev ] ->
    Alcotest.(check string) "kind" "warn" ev.Rr_obs.Flight.ev_kind;
    Alcotest.(check string) "detail" "boom" ev.Rr_obs.Flight.ev_detail
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_flight_wraparound () =
  with_flight 8 @@ fun () ->
  for i = 1 to 20 do
    Rr_obs.Flight.record ~kind:"tick" ~name:(string_of_int i) ()
  done;
  let evs = Rr_obs.Flight.events () in
  Alcotest.(check int) "ring retains exactly its capacity" 8
    (List.length evs);
  (* The retained events are the *last* 8 recorded, in record order. *)
  let names = List.map (fun e -> e.Rr_obs.Flight.ev_name) evs in
  Alcotest.(check (list string)) "oldest events evicted first"
    (List.map string_of_int [ 13; 14; 15; 16; 17; 18; 19; 20 ])
    names;
  let seqs = List.map (fun e -> e.Rr_obs.Flight.ev_seq) evs in
  Alcotest.(check (list int)) "merge sorted by sequence"
    (List.sort compare seqs) seqs

let test_flight_merge_deterministic () =
  with_flight 4096 @@ fun () ->
  List.iter
    (fun k ->
      with_domains k (fun () ->
          Rr_obs.Flight.reset ();
          Parallel.parallel_for 100 (fun i ->
              Rr_obs.Flight.record ~kind:"tick" ~name:(string_of_int i) ());
          let evs = Rr_obs.Flight.events () in
          Alcotest.(check int)
            (Printf.sprintf "100 events retained at pool size %d" k)
            100 (List.length evs);
          (* Which domain recorded which event varies with the pool, but
             the merged order is by global sequence number — strictly
             increasing however the shards are enumerated. *)
          let seqs = List.map (fun e -> e.Rr_obs.Flight.ev_seq) evs in
          Alcotest.(check bool)
            (Printf.sprintf "strictly increasing seq at pool size %d" k)
            true
            (List.for_all2 (fun a b -> a < b)
               (List.filteri (fun i _ -> i < 99) seqs)
               (List.tl seqs));
          let names =
            List.sort compare
              (List.map (fun e -> e.Rr_obs.Flight.ev_name) evs)
          in
          Alcotest.(check (list string))
            (Printf.sprintf "every event retained once at pool size %d" k)
            (List.sort compare (List.init 100 string_of_int))
            names))
    pool_sizes

let test_flight_json_parses () =
  with_flight 16 @@ fun () ->
  Rr_obs.Flight.record ~kind:"evict" ~name:"engine.tree_lru"
    ~detail:"evicted=3" ();
  Rr_obs.Flight.record ~kind:"warn" ~name:"log" ~detail:"say \"hi\"" ();
  match Rr_perf.Json.parse (Rr_obs.Flight.to_json ()) with
  | Error e -> Alcotest.failf "flight dump is not valid JSON: %s" e
  | Ok j ->
    let get k = Option.bind (Rr_perf.Json.member k j) Rr_perf.Json.to_int in
    Alcotest.(check (option int)) "schema" (Some 1) (get "schema");
    Alcotest.(check (option int)) "capacity" (Some 16) (get "capacity");
    Alcotest.(check (option int)) "retained" (Some 2) (get "retained");
    let events =
      match
        Option.bind (Rr_perf.Json.member "events" j) Rr_perf.Json.to_arr
      with
      | Some l -> l
      | None -> Alcotest.fail "no events array"
    in
    Alcotest.(check int) "both events dumped" 2 (List.length events)

let test_span_events_in_flight_ring () =
  with_telemetry @@ fun () ->
  with_flight 64 @@ fun () ->
  Rr_obs.with_span "flight.probe" (fun () -> ());
  let kinds_for name =
    List.filter_map
      (fun e ->
        if e.Rr_obs.Flight.ev_name = name then Some e.Rr_obs.Flight.ev_kind
        else None)
      (Rr_obs.Flight.events ())
  in
  Alcotest.(check (list string)) "span begin/end recorded"
    [ "span_begin"; "span_end" ]
    (kinds_for "flight.probe")

(* --- structured logging --- *)

(* Capture records through the sink; always restore stderr rendering
   and the unconfigured level. *)
let with_log_capture f =
  let records = ref [] in
  Rr_obs.Log.set_sink (Some (fun s -> records := s :: !records));
  Fun.protect
    ~finally:(fun () ->
      Rr_obs.Log.set_sink None;
      Rr_obs.Log.set_level None)
    (fun () -> f records)

let test_log_unconfigured_byte_compat () =
  with_log_capture @@ fun records ->
  Rr_obs.Log.set_level None;
  (* Warn and error render as the plain one-line message the eprintf
     they replaced produced; debug and info are dropped. *)
  Rr_obs.Log.warnf "riskroute: ignoring invalid %s=%S" "RISKROUTE_DOMAINS" "x";
  Rr_obs.Log.errorf "riskroute: %s" "boom";
  Rr_obs.Log.infof "not rendered";
  Rr_obs.Log.debugf "not rendered either";
  Alcotest.(check (list string)) "stderr bytes unchanged"
    [
      "riskroute: ignoring invalid RISKROUTE_DOMAINS=\"x\"\n";
      "riskroute: boom\n";
    ]
    (List.rev !records)

let test_log_configured_json () =
  with_telemetry @@ fun () ->
  with_log_capture @@ fun records ->
  Rr_obs.Log.set_level (Some Rr_obs.Log.Debug);
  Rr_obs.with_span "log.probe" (fun () ->
      Rr_obs.Log.infof "inside %s" "span");
  (match !records with
  | [ line ] -> (
    match Rr_perf.Json.parse line with
    | Error e -> Alcotest.failf "log record is not valid JSON: %s" e
    | Ok j ->
      let str k =
        Option.bind (Rr_perf.Json.member k j) Rr_perf.Json.to_str
      in
      Alcotest.(check (option string)) "level" (Some "info") (str "level");
      Alcotest.(check (option string)) "msg" (Some "inside span")
        (str "msg");
      Alcotest.(check (option string)) "domain label" (Some "main")
        (str "domain");
      Alcotest.(check bool) "span id stamped" true
        (match
           Option.bind (Rr_perf.Json.member "span" j) Rr_perf.Json.to_int
         with
        | Some id -> id > 0
        | None -> false))
  | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs));
  (* Below the configured level: dropped. *)
  Rr_obs.Log.set_level (Some Rr_obs.Log.Error);
  Rr_obs.Log.warnf "filtered";
  Alcotest.(check int) "warn below error level dropped" 1
    (List.length !records)

let test_log_levels_parse () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check bool) (Printf.sprintf "parse %S" s) true
        (Rr_obs.Log.level_of_string s = expect))
    [
      ("debug", Some Rr_obs.Log.Debug);
      ("INFO", Some Rr_obs.Log.Info);
      ("warn", Some Rr_obs.Log.Warn);
      ("warning", Some Rr_obs.Log.Warn);
      (" error ", Some Rr_obs.Log.Error);
      ("loud", None);
    ]

let test_log_warn_feeds_flight () =
  with_log_capture @@ fun _records ->
  with_flight 64 @@ fun () ->
  Rr_obs.Log.warnf "the sky is %s" "falling";
  Rr_obs.Log.infof "calm";
  let logged =
    List.filter
      (fun e -> e.Rr_obs.Flight.ev_name = "log")
      (Rr_obs.Flight.events ())
  in
  match logged with
  | [ ev ] ->
    Alcotest.(check string) "kind is the level" "warn"
      ev.Rr_obs.Flight.ev_kind;
    Alcotest.(check string) "detail is the message" "the sky is falling"
      ev.Rr_obs.Flight.ev_detail
  | evs ->
    Alcotest.failf "expected only the warning in the ring, got %d"
      (List.length evs)

(* --- engine integration --- *)

let coord lat lon = Rr_geo.Coord.make ~lat ~lon

let small_env () =
  let coords =
    [|
      coord 29.76 (-95.37); coord 30.27 (-89.09); coord 29.95 (-90.07);
      coord 30.69 (-88.04); coord 30.33 (-81.66); coord 32.08 (-81.09);
      coord 33.75 (-84.39); coord 35.15 (-90.05);
    |]
  in
  let n = Array.length coords in
  let graph =
    Rr_graph.Graph.of_edges n
      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 7); (0, 7); (2, 6) ]
  in
  let impact = Array.init n (fun i -> 0.01 +. (0.02 *. float_of_int i)) in
  let historical = Array.init n (fun i -> 1e-6 *. float_of_int (i + 1)) in
  let forecast = Array.make n 0.0 in
  Env.make ~graph ~coords ~impact ~historical ~forecast ()

let test_engine_counters_flow () =
  with_telemetry @@ fun () ->
  (* Pool size >= 2: at 1 domain the sweeps take the sequential path,
     which legitimately records no parallel.tasks. *)
  with_domains 2 @@ fun () ->
  let relax = Rr_obs.Counter.make "dijkstra.relaxations" in
  let scored = Rr_obs.Counter.make "augment.candidates_scored" in
  let tasks = Rr_obs.Counter.make "parallel.tasks" in
  let r0 = Rr_obs.Counter.value relax
  and s0 = Rr_obs.Counter.value scored
  and t0 = Rr_obs.Counter.value tasks in
  let env = small_env () in
  ignore (Augment.greedy ~k:1 env);
  Alcotest.(check bool) "dijkstra.relaxations advanced" true
    (Rr_obs.Counter.value relax > r0);
  Alcotest.(check bool) "augment.candidates_scored advanced" true
    (Rr_obs.Counter.value scored > s0);
  Alcotest.(check bool) "parallel.tasks advanced" true
    (Rr_obs.Counter.value tasks > t0)

(* --- quantile property: bucket quantiles vs exact reference ---

   Because [bucket_index] is monotone, the bucket-rank quantile is fully
   determined by the sorted sample multiset: it is the bound of the
   bucket holding the nearest-rank sample, clamped into [vmin, vmax].
   Check that against an exact sorted-sample reference for arbitrary
   values under arbitrary shard interleavings (pool sizes 1/2/4 —
   which domain observes which value must not matter). *)

let exact_quantile_reference values q =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank =
    let r = int_of_float (Float.ceil (q *. float_of_int n)) in
    if r < 1 then 1 else if r > n then n else r
  in
  let v = List.nth sorted (rank - 1) in
  let vmin = List.hd sorted and vmax = List.nth sorted (n - 1) in
  Float.max vmin
    (Float.min vmax (Rr_obs.bucket_bound (Rr_obs.bucket_index v)))

let arb_samples =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 200) (float_range 1e-7 1e6))
    ~print:(fun l ->
      Printf.sprintf "[%s]"
        (String.concat "; " (List.map string_of_float l)))

let histogram_quantiles_match_reference =
  QCheck.Test.make
    ~name:"histogram p50/p90/p99 match sorted-sample reference" ~count:100
    arb_samples
    (fun values ->
      with_telemetry @@ fun () ->
      let arr = Array.of_list values in
      let h = Rr_obs.Histogram.make "test.obs.q_property" in
      List.for_all
        (fun k ->
          with_domains k (fun () ->
              Rr_obs.Histogram.reset h;
              Parallel.parallel_for (Array.length arr) (fun i ->
                  Rr_obs.Histogram.observe h arr.(i));
              let s = Rr_obs.Histogram.snapshot h in
              List.for_all
                (fun q ->
                  Rr_obs.Histogram.quantile s q
                  = exact_quantile_reference values q)
                [ 0.5; 0.9; 0.99 ]))
        pool_sizes)

(* --- time-series sampler --- *)

(* Every series test pins a capacity, empties the ring and the delta
   baselines, and restores the default afterwards. *)
let with_series cap f =
  with_telemetry @@ fun () ->
  Rr_obs.Series.set_capacity cap;
  Rr_obs.Series.reset ();
  Fun.protect
    ~finally:(fun () ->
      Rr_obs.Series.set_stats_provider (fun () -> []);
      Rr_obs.Series.set_capacity Rr_obs.Series.default_capacity;
      Rr_obs.Series.reset ())
    f

let test_series_ring_wraparound () =
  with_series 4 @@ fun () ->
  for _ = 1 to 10 do
    Rr_obs.Series.sample_now ()
  done;
  Alcotest.(check int) "all samples counted" 10 (Rr_obs.Series.recorded ());
  let samples = Rr_obs.Series.samples () in
  Alcotest.(check int) "ring retains exactly its capacity" 4
    (List.length samples);
  Alcotest.(check (list int)) "oldest samples evicted first, in order"
    [ 7; 8; 9; 10 ]
    (List.map (fun s -> s.Rr_obs.Series.s_seq) samples);
  let times = List.map (fun s -> s.Rr_obs.Series.s_time) samples in
  Alcotest.(check bool) "timestamps non-decreasing" true
    (List.sort compare times = times)

let test_series_counter_deltas () =
  with_series 16 @@ fun () ->
  let c = Rr_obs.Counter.make "test.obs.series_delta" in
  Rr_obs.Counter.reset c;
  Rr_obs.Counter.add c 5;
  Rr_obs.Series.sample_now ();
  Rr_obs.Counter.add c 3;
  Rr_obs.Series.sample_now ();
  Rr_obs.Series.sample_now ();
  let window i =
    let s = List.nth (Rr_obs.Series.samples ()) i in
    List.assoc_opt "test.obs.series_delta" s.Rr_obs.Series.s_counters
  in
  Alcotest.(check (option int)) "first window is the full value" (Some 5)
    (window 0);
  Alcotest.(check (option int)) "second window is the increment" (Some 3)
    (window 1);
  Alcotest.(check (option int)) "idle window omits the counter" None
    (window 2)

let test_series_stats_provider () =
  with_series 8 @@ fun () ->
  Rr_obs.Series.set_stats_provider (fun () -> [ ("probe.level", 42) ]);
  Rr_obs.Series.sample_now ();
  (match Rr_obs.Series.samples () with
  | [ s ] ->
    Alcotest.(check (option int)) "provider fields recorded absolute"
      (Some 42)
      (List.assoc_opt "probe.level" s.Rr_obs.Series.s_stats)
  | l -> Alcotest.failf "expected 1 sample, got %d" (List.length l));
  (* A throwing provider must not poison sampling. *)
  Rr_obs.Series.set_stats_provider (fun () -> failwith "boom");
  Rr_obs.Series.sample_now ();
  Alcotest.(check int) "sampling survives a throwing provider" 2
    (Rr_obs.Series.recorded ())

(* A dump taken before the sampler ever ticks (the live endpoint can be
   curled the instant the process is up) must be a complete, valid
   document: zero recorded, an empty samples array — not a crash or a
   truncated object. *)
let test_series_json_before_first_tick () =
  with_series 8 @@ fun () ->
  Alcotest.(check int) "nothing recorded yet" 0 (Rr_obs.Series.recorded ());
  Alcotest.(check int) "no samples retained" 0
    (List.length (Rr_obs.Series.samples ()));
  match Rr_perf.Json.parse (Rr_obs.Series.to_json ()) with
  | Error e -> Alcotest.failf "pre-tick series dump is not valid JSON: %s" e
  | Ok j ->
    let get k = Option.bind (Rr_perf.Json.member k j) Rr_perf.Json.to_int in
    Alcotest.(check (option int)) "schema" (Some 1) (get "schema");
    Alcotest.(check (option int)) "recorded" (Some 0) (get "recorded");
    Alcotest.(check (option int)) "retained" (Some 0) (get "retained");
    Alcotest.(check (option (list string))) "samples array empty"
      (Some [])
      (Option.map
         (List.map (fun _ -> "sample"))
         (Option.bind (Rr_perf.Json.member "samples" j) Rr_perf.Json.to_arr))

let test_series_json_parses () =
  with_series 8 @@ fun () ->
  let c = Rr_obs.Counter.make "test.obs.series_json" in
  Rr_obs.Counter.reset c;
  Rr_obs.Counter.incr c;
  Rr_obs.Series.sample_now ();
  Rr_obs.Series.sample_now ();
  match Rr_perf.Json.parse (Rr_obs.Series.to_json ()) with
  | Error e -> Alcotest.failf "series dump is not valid JSON: %s" e
  | Ok j ->
    let get k = Option.bind (Rr_perf.Json.member k j) Rr_perf.Json.to_int in
    Alcotest.(check (option int)) "schema" (Some 1) (get "schema");
    Alcotest.(check (option int)) "capacity" (Some 8) (get "capacity");
    Alcotest.(check (option int)) "recorded" (Some 2) (get "recorded");
    Alcotest.(check (option int)) "retained" (Some 2) (get "retained");
    (match
       Option.bind (Rr_perf.Json.member "samples" j) Rr_perf.Json.to_arr
     with
    | Some [ s1; _ ] ->
      let counters = Rr_perf.Json.member "counters" s1 in
      Alcotest.(check (option int)) "counter delta in first sample" (Some 1)
        (Option.bind
           (Option.bind counters (Rr_perf.Json.member "test.obs.series_json"))
           Rr_perf.Json.to_int)
    | Some l -> Alcotest.failf "expected 2 samples, got %d" (List.length l)
    | None -> Alcotest.fail "no samples array")

(* --- Runtime_events GC pause consumer --- *)

let test_rte_gc_pause_histograms () =
  with_telemetry @@ fun () ->
  if not (Rr_obs.Rte.start ()) then
    Alcotest.skip () (* Runtime_events unavailable on this runtime *)
  else begin
    let major = Rr_obs.Histogram.make Rr_obs.Rte.major_name in
    let minor = Rr_obs.Histogram.make Rr_obs.Rte.minor_name in
    Rr_obs.Histogram.reset major;
    Rr_obs.Histogram.reset minor;
    (* Allocate enough to cycle the minor heap, then force full major
       collections; the pauses must land in the histograms once the
       cursor is drained. *)
    let sink = ref [] in
    for i = 1 to 50_000 do
      sink := Array.make 10 i :: !sink;
      if i mod 10_000 = 0 then sink := []
    done;
    Gc.full_major ();
    Gc.full_major ();
    ignore (Rr_obs.Rte.poll ());
    let sm = Rr_obs.Histogram.snapshot major in
    let sn = Rr_obs.Histogram.snapshot minor in
    Alcotest.(check bool) "gc.pause.major non-empty after forced major" true
      (sm.Rr_obs.Histogram.count > 0);
    Alcotest.(check bool) "gc.pause.minor non-empty after allocation" true
      (sn.Rr_obs.Histogram.count > 0);
    Alcotest.(check bool) "major pauses are sane (0 <= p < 10s)" true
      (sm.Rr_obs.Histogram.vmin >= 0.0 && sm.Rr_obs.Histogram.vmax < 10.0);
    (* Idempotent: a second start is a no-op that still reports running. *)
    Alcotest.(check bool) "start is idempotent" true (Rr_obs.Rte.start ())
  end

let test_results_unchanged_by_telemetry () =
  let env = small_env () in
  let compute () =
    let picks =
      List.map
        (fun (p : Augment.pick) -> (p.Augment.u, p.Augment.v, p.Augment.total_after))
        (Augment.greedy ~k:2 env)
    in
    let r = Ratios.intradomain ~pair_cap:40 env in
    (picks, r.Ratios.risk_reduction, r.Ratios.distance_increase)
  in
  Rr_obs.set_enabled false;
  let off = compute () in
  let on = with_telemetry compute in
  Alcotest.(check bool) "telemetry on/off results identical" true (off = on)

let () =
  Alcotest.run "obs"
    [
      ( "merge",
        [
          Alcotest.test_case "counter deterministic across pool sizes" `Quick
            test_counter_merge_deterministic;
          Alcotest.test_case "histogram deterministic across pool sizes" `Quick
            test_histogram_merge_deterministic;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "pool parent attribution" `Quick
            test_span_pool_attribution;
        ] );
      ( "disabled",
        [ Alcotest.test_case "recording is a no-op" `Quick test_disabled_is_noop ] );
      ( "golden",
        [
          Alcotest.test_case "json format" `Quick test_golden_json;
          Alcotest.test_case "prometheus format" `Quick test_golden_prometheus;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "empty histogram is NaN" `Quick
            test_quantile_empty;
          Alcotest.test_case "empty histogram exposes clamped" `Quick
            test_empty_histogram_exposition;
          Alcotest.test_case "single sample" `Quick
            test_quantile_single_sample;
          Alcotest.test_case "deterministic across pool sizes" `Quick
            test_quantile_pool_deterministic;
          Alcotest.test_case "merge ignores empty shards" `Quick
            test_merge_with_empty_shard;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "gc counters captured" `Quick
            test_with_kernel_gc_counters;
        ] );
      ( "trace",
        [
          Alcotest.test_case "golden format" `Quick test_golden_trace;
          Alcotest.test_case "two tracks and hand-off flows" `Quick
            test_trace_two_tracks;
        ] );
      ( "dump",
        [
          Alcotest.test_case "output path validation" `Quick
            test_dump_path_validation;
        ] );
      ( "flight",
        [
          Alcotest.test_case "records with telemetry off" `Quick
            test_flight_always_on;
          Alcotest.test_case "ring wraparound" `Quick test_flight_wraparound;
          Alcotest.test_case "merge deterministic across pool sizes" `Quick
            test_flight_merge_deterministic;
          Alcotest.test_case "dump is valid JSON" `Quick
            test_flight_json_parses;
          Alcotest.test_case "span begin/end events" `Quick
            test_span_events_in_flight_ring;
        ] );
      ( "log",
        [
          Alcotest.test_case "unconfigured stderr byte-compat" `Quick
            test_log_unconfigured_byte_compat;
          Alcotest.test_case "configured JSON lines" `Quick
            test_log_configured_json;
          Alcotest.test_case "level parsing" `Quick test_log_levels_parse;
          Alcotest.test_case "warnings feed the flight ring" `Quick
            test_log_warn_feeds_flight;
        ] );
      ( "series",
        [
          Alcotest.test_case "ring wraparound" `Quick
            test_series_ring_wraparound;
          Alcotest.test_case "counter window deltas" `Quick
            test_series_counter_deltas;
          Alcotest.test_case "stats provider fields" `Quick
            test_series_stats_provider;
          Alcotest.test_case "dump before first tick" `Quick
            test_series_json_before_first_tick;
          Alcotest.test_case "dump is valid JSON" `Quick
            test_series_json_parses;
        ] );
      ( "runtime-events",
        [
          Alcotest.test_case "gc pause histograms" `Quick
            test_rte_gc_pause_histograms;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest histogram_quantiles_match_reference ] );
      ( "integration",
        [
          Alcotest.test_case "engine counters flow" `Quick
            test_engine_counters_flow;
          Alcotest.test_case "results unchanged by telemetry" `Quick
            test_results_unchanged_by_telemetry;
        ] );
    ]
