(* SLA-constrained routing (LARAC) and the shipped real Abilene map. *)

open Riskroute

let coord lat lon = Rr_geo.Coord.make ~lat ~lon

(* Triangle with a long safe detour:
   0 -- 1 direct but 1..2 region hot; 0 -- 2 -- 3 -- 1 long but safe. *)
let corridor () =
  let coords =
    [|
      coord 30.0 (-95.0);  (* src *)
      coord 30.0 (-85.0);  (* dst, ~595 mi east *)
      coord 33.5 (-93.0);  (* northern detour 1 *)
      coord 33.5 (-87.0);  (* northern detour 2 *)
      coord 30.0 (-90.0);  (* hot midpoint on the direct path *)
    |]
  in
  let graph =
    Rr_graph.Graph.of_edges 5 [ (0, 4); (4, 1); (0, 2); (2, 3); (3, 1) ]
  in
  let impact = Array.make 5 0.2 in
  let historical = [| 1e-6; 1e-6; 1e-7; 1e-7; 5e-4 |] in
  Env.make ~graph ~coords ~impact ~historical ()

let test_latency_model () =
  let env = corridor () in
  let direct = Metric.bit_miles env [ 0; 4; 1 ] in
  Alcotest.(check (float 1e-9)) "latency proportional to distance"
    (Sla.propagation_ms_per_mile *. direct)
    (Sla.latency_ms env [ 0; 4; 1 ])

let test_constrained_loose_budget () =
  (* budget so generous the risk-optimal (northern) path fits *)
  let env = corridor () in
  match Sla.constrained_route env ~src:0 ~dst:1 ~max_latency_ms:100.0 with
  | Some c ->
    Alcotest.(check bool) "optimal flag" true c.Sla.optimal;
    Alcotest.(check (list int)) "risk-optimal path" [ 0; 2; 3; 1 ] c.Sla.route.Router.path
  | None -> Alcotest.fail "feasible"

let test_constrained_tight_budget () =
  (* budget that only the direct (hot) path can meet *)
  let env = corridor () in
  let direct_latency = Sla.latency_ms env [ 0; 4; 1 ] in
  match
    Sla.constrained_route env ~src:0 ~dst:1 ~max_latency_ms:(direct_latency +. 0.1)
  with
  | Some c ->
    Alcotest.(check (list int)) "forced onto the direct path" [ 0; 4; 1 ]
      c.Sla.route.Router.path;
    Alcotest.(check bool) "within budget" true (c.Sla.latency <= direct_latency +. 0.1)
  | None -> Alcotest.fail "direct path is feasible"

let test_constrained_infeasible () =
  let env = corridor () in
  Alcotest.(check bool) "impossible budget" true
    (Sla.constrained_route env ~src:0 ~dst:1 ~max_latency_ms:0.001 = None);
  Alcotest.check_raises "non-positive budget"
    (Invalid_argument "Sla.constrained_route: non-positive budget") (fun () ->
      ignore (Sla.constrained_route env ~src:0 ~dst:1 ~max_latency_ms:0.0))

let test_constrained_monotone_in_budget () =
  (* more budget can only reduce achievable risk *)
  let env = corridor () in
  let risk_at budget =
    match Sla.constrained_route env ~src:0 ~dst:1 ~max_latency_ms:budget with
    | Some c -> c.Sla.risk
    | None -> infinity
  in
  let direct = Sla.latency_ms env [ 0; 4; 1 ] in
  let tight = risk_at (direct +. 0.05) in
  let loose = risk_at (direct *. 2.0) in
  Alcotest.(check bool) "risk shrinks with budget" true (loose <= tight +. 1e-9)

(* --- Abilene GML fixture --- *)

let abilene_path =
  (* dune runs tests from the build context; fall back to the source tree *)
  let candidates =
    [ "data/abilene.gml"; "../data/abilene.gml"; "../../data/abilene.gml";
      "../../../data/abilene.gml"; "../../../../data/abilene.gml" ]
  in
  List.find_opt Sys.file_exists candidates

let with_abilene f =
  match abilene_path with
  | Some path -> f (Rr_topology.Gml_io.of_file path)
  | None -> Alcotest.skip ()

let test_abilene_loads () =
  with_abilene (fun net ->
      Alcotest.(check string) "name" "Abilene (Internet2)" net.Rr_topology.Net.name;
      Alcotest.(check int) "11 nodes" 11 (Rr_topology.Net.pop_count net);
      Alcotest.(check int) "14 links" 14 (Rr_topology.Net.link_count net);
      Alcotest.(check bool) "connected" true (Rr_topology.Net.is_connected net))

let test_abilene_routes () =
  with_abilene (fun net ->
      let env = Env.of_net net in
      let seattle = Option.get (Rr_topology.Net.find_pop net ~city:"Seattle") in
      let dc = Option.get (Rr_topology.Net.find_pop net ~city:"Washington") in
      match
        (Router.shortest env ~src:seattle ~dst:dc,
         Router.riskroute env ~src:seattle ~dst:dc)
      with
      | Some sp, Some rr ->
        Alcotest.(check bool) "riskroute no riskier" true
          (rr.Router.bit_risk_miles <= sp.Router.bit_risk_miles +. 1e-6);
        Alcotest.(check bool) "plausible distance" true
          (sp.Router.bit_miles > 2300.0 && sp.Router.bit_miles < 4500.0)
      | _ -> Alcotest.fail "Abilene is connected")

let test_abilene_sla () =
  with_abilene (fun net ->
      let env = Env.of_net net in
      let seattle = Option.get (Rr_topology.Net.find_pop net ~city:"Seattle") in
      let ny = Option.get (Rr_topology.Net.find_pop net ~city:"New York") in
      match Sla.constrained_route env ~src:seattle ~dst:ny ~max_latency_ms:40.0 with
      | Some c -> Alcotest.(check bool) "budget respected" true (c.Sla.latency <= 40.0)
      | None -> Alcotest.fail "40 ms one-way is ample for Seattle-NY")

let () =
  Alcotest.run "sla"
    [
      ( "larac",
        [
          Alcotest.test_case "latency model" `Quick test_latency_model;
          Alcotest.test_case "loose budget" `Quick test_constrained_loose_budget;
          Alcotest.test_case "tight budget" `Quick test_constrained_tight_budget;
          Alcotest.test_case "infeasible" `Quick test_constrained_infeasible;
          Alcotest.test_case "monotone in budget" `Quick test_constrained_monotone_in_budget;
        ] );
      ( "abilene",
        [
          Alcotest.test_case "loads" `Quick test_abilene_loads;
          Alcotest.test_case "routes" `Slow test_abilene_routes;
          Alcotest.test_case "sla" `Slow test_abilene_sla;
        ] );
    ]
