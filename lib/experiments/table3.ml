let paper =
  [
    ("Geographic Footprint", (0.618, 0.243));
    ("Average PoP Risk", (0.104, 0.064));
    ("Average Outdegree", (0.116, 0.106));
    ("Number of PoPs", (0.552, 0.405));
    ("Number of Links", (0.531, 0.361));
    ("Number of Peers", (0.155, 0.002));
  ]

let default_spec = Fig8.default_spec

let compute ctx spec =
  let zoo = Rr_engine.Context.zoo ctx in
  let points = Fig8.compute ctx spec in
  let results =
    List.filter_map
      (fun (p : Fig8.point) ->
        Option.map
          (fun net -> (net, p.Fig8.result))
          (Rr_topology.Zoo.find zoo p.Fig8.network))
      points
  in
  Riskroute.Characteristics.table ~results
    ~peering:zoo.Rr_topology.Zoo.peering
    ~riskmap:(Rr_engine.Context.riskmap ctx)

let run ctx ppf =
  Format.fprintf ppf
    "Table 3: regional R^2 of network characteristics vs interdomain ratios@.";
  Format.fprintf ppf "%-22s %22s %22s@." "Characteristic"
    "Risk R^2 (ours|paper)" "Dist R^2 (ours|paper)";
  List.iter
    (fun (row : Riskroute.Characteristics.row) ->
      let cname = Riskroute.Characteristics.name row.Riskroute.Characteristics.characteristic in
      let pr, pd =
        match List.assoc_opt cname paper with
        | Some v -> v
        | None -> (nan, nan)
      in
      Format.fprintf ppf "%-22s %10.3f | %8.3f %10.3f | %8.3f@." cname
        row.Riskroute.Characteristics.r2_risk pr
        row.Riskroute.Characteristics.r2_distance pd)
    (compute ctx default_spec)
