let edge_count () =
  let zoo = Rr_topology.Zoo.shared () in
  List.length zoo.Rr_topology.Zoo.peering.Rr_topology.Peering.edges

let run ppf =
  let zoo = Rr_topology.Zoo.shared () in
  let peering = zoo.Rr_topology.Zoo.peering in
  Format.fprintf ppf "Fig 2: AS connectivity between all %d networks (%d peerings)@."
    (Rr_topology.Peering.net_count peering)
    (edge_count ());
  Rr_topology.Peering.pp ppf peering
