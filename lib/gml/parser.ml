exception Error of string

(* Grammar:  doc   ::= pair* EOF
             pair  ::= KEY value
             value ::= INT | FLOAT | STRING | '[' pair* ']'      *)
let parse src =
  let toks = ref (Lexer.tokens src) in
  let peek () = match !toks with [] -> Lexer.Eof | t :: _ -> t in
  let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let rec parse_pairs acc =
    match peek () with
    | Lexer.Key key ->
      advance ();
      let value = parse_value () in
      parse_pairs ((key, value) :: acc)
    | Lexer.Eof | Lexer.Rbracket -> List.rev acc
    | Lexer.Lbracket -> raise (Error "unexpected '['; expected a key")
    | Lexer.Int_lit _ | Lexer.Float_lit _ | Lexer.String_lit _ ->
      raise (Error "unexpected literal; expected a key")
  and parse_value () =
    match peek () with
    | Lexer.Int_lit i ->
      advance ();
      Ast.Int i
    | Lexer.Float_lit f ->
      advance ();
      Ast.Float f
    | Lexer.String_lit s ->
      advance ();
      Ast.String s
    | Lexer.Lbracket ->
      advance ();
      let pairs = parse_pairs [] in
      (match peek () with
      | Lexer.Rbracket ->
        advance ();
        Ast.List pairs
      | Lexer.Eof | Lexer.Key _ | Lexer.Lbracket | Lexer.Int_lit _
      | Lexer.Float_lit _ | Lexer.String_lit _ ->
        raise (Error "expected ']'"))
    | Lexer.Eof -> raise (Error "unexpected end of input; expected a value")
    | Lexer.Rbracket -> raise (Error "unexpected ']'; expected a value")
    | Lexer.Key k -> raise (Error (Printf.sprintf "unexpected key %S; expected a value" k))
  in
  let doc = parse_pairs [] in
  match peek () with
  | Lexer.Eof -> doc
  | Lexer.Rbracket -> raise (Error "unbalanced ']'")
  | Lexer.Key _ | Lexer.Lbracket | Lexer.Int_lit _ | Lexer.Float_lit _
  | Lexer.String_lit _ -> raise (Error "trailing tokens after document")

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse content
