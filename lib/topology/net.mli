(** A single ISP: named PoPs plus link structure.

    Link lengths are line-of-sight great-circle miles, following the
    paper's Sec. 4.1 convention ("we use line-of-sight to place links"). *)

type tier = Tier1 | Regional

type t = {
  name : string;
  tier : tier;
  pops : Pop.t array;
  graph : Rr_graph.Graph.t;  (** node ids = PoP ids *)
  states : string list;
    (** for regional networks, the states the network is confined to
        (used to restrict the served population, Sec. 5.1); empty for
        Tier-1s *)
}

val make :
  name:string -> tier:tier -> ?states:string list -> Pop.t array ->
  Rr_graph.Graph.t -> t
(** Validates that graph size equals PoP count and ids are dense. *)

val pop_count : t -> int
val link_count : t -> int

val pop : t -> int -> Pop.t
(** Raises [Invalid_argument] on out-of-range ids. *)

val find_pop : t -> city:string -> int option
(** First PoP in the given city. *)

val link_miles : t -> int -> int -> float
(** Great-circle length of the (u, v) line-of-sight link (defined for any
    PoP pair, edge or not). *)

val footprint_miles : t -> float
(** Largest great-circle distance between any two PoPs — the paper's
    "geographic footprint" characteristic (Table 3). *)

val average_outdegree : t -> float
(** Mean PoP degree (Table 3 characteristic). *)

val is_connected : t -> bool

val population_fractions : t -> float array
(** Outage-impact proxy for graphs too large for the census
    nearest-neighbour assignment: each metro's gazetteer population is
    split evenly across the metro's PoPs and the result normalised to
    sum to 1. PoPs of metros absent from the gazetteer weigh 0 (uniform
    fallback when nothing resolves). *)

val with_extra_links : t -> (int * int) list -> t
(** Copy of the network with additional links installed (provisioning
    what-if analysis). *)

val pp_summary : Format.formatter -> t -> unit
