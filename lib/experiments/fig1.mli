(** Fig. 1: geographic placement of Tier-1 and regional infrastructure
    (PoP locations and links), rendered as ASCII density maps plus
    corpus summary statistics. *)

val run : Format.formatter -> unit

val tier1_pop_total : unit -> int
(** 354 in the paper. *)

val regional_pop_total : unit -> int
(** 455 in the paper. *)
