(** Fig. 13: regional interdomain risk-reduction time series during the
    three hurricanes, restricted (as in Sec. 7.3.1) to regional networks
    with more than 20% of their PoPs in the event's scope. *)

val compute :
  ?pair_cap:int -> ?tick_stride:int -> Rr_forecast.Track.storm ->
  Riskroute.Casestudy.series list
(** Defaults: pair_cap 300, stride 6 (the merged graph makes per-tick
    evaluation expensive; see EXPERIMENTS.md). *)

val run : Format.formatter -> unit
