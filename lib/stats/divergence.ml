open Rr_util

let floor_prob = 1e-12

let normalized a =
  let total = Arrayx.fsum a in
  if total <= 0.0 then invalid_arg "Divergence: non-positive total mass";
  Array.map (fun v -> Float.max 0.0 v /. total) a

let kl ~p ~q =
  if Array.length p <> Array.length q then invalid_arg "Divergence.kl: length mismatch";
  let p = normalized p and q = normalized q in
  let acc = ref 0.0 in
  Array.iteri
    (fun i pi -> if pi > 0.0 then acc := !acc +. (pi *. log (pi /. Float.max floor_prob q.(i))))
    p;
  !acc

let jensen_shannon ~p ~q =
  if Array.length p <> Array.length q then
    invalid_arg "Divergence.jensen_shannon: length mismatch";
  let p = normalized p and q = normalized q in
  let m = Array.init (Array.length p) (fun i -> (p.(i) +. q.(i)) /. 2.0) in
  (kl ~p ~q:m +. kl ~p:q ~q:m) /. 2.0

let holdout_score ~log_density ~n =
  assert (n > 0);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. log_density i
  done;
  -. (!acc /. float_of_int n)
