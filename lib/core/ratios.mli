(** The paper's evaluation metrics (Eqs. 5-6).

    Risk reduction ratio (Eq. 5): [rr = 1 - (1/N^2) sum_ij r(p_rr) / r(p_shortest)].
    Distance increase ratio (Eq. 6): [dr = (1/N^2) sum_ij d(p_rr) / d(p_shortest) - 1].
    Following the paper's formulas literally, the denominator is the FULL
    N^2 pair universe: the i = j diagonal contributes zero to each sum,
    which scales the off-diagonal mean by (1 - 1/N). Disconnected pairs
    are skipped.

    On large networks the all-pairs sweep can be capped: pairs are then
    sampled deterministically (fixed seed per call), so repeated runs are
    reproducible. *)

type result = {
  risk_reduction : float;
  distance_increase : float;
  pairs : int;  (** pairs actually evaluated *)
}

val intradomain :
  ?pair_cap:int -> ?seed:int64 -> ?trees:(int -> Rr_graph.Dijkstra.tree) ->
  Env.t -> result
(** Eqs. 5-6 over all ordered PoP pairs of one network (capped to
    [pair_cap], default 20,000). [trees], when given, supplies the
    geographic shortest-path tree per source in place of
    {!Router.shortest_tree} — callers with a cache (see
    [Rr_engine.Context.dist_trees]) avoid recomputing identical trees;
    supplied trees must be bitwise-identical to the defaults. *)

val between :
  ?pair_cap:int -> ?seed:int64 -> ?trees:(int -> Rr_graph.Dijkstra.tree) ->
  Env.t -> sources:int array -> dests:int array -> result
(** Same ratios restricted to given source and destination node sets —
    the interdomain evaluation of Sec. 7 (regional PoPs as sources, all
    regional PoPs as destinations). *)

val weighted :
  ?pair_cap:int -> ?seed:int64 -> ?trees:(int -> Rr_graph.Dijkstra.tree) ->
  weight:(int -> int -> float) -> Env.t -> result
(** Traffic-weighted variant (the Sec. 5 extension "impact ... influenced
    by traffic flows"): per-pair ratios are averaged with weight
    [weight i j] (e.g. a {!Rr_topology.Traffic} gravity demand) instead
    of uniformly; the paper's [1/N^2] diagonal convention does not apply
    (the diagonal carries no traffic). Pairs with non-positive weight are
    skipped. *)
