let fold_hops env path ~init ~f =
  let rec loop acc = function
    | a :: (b :: _ as rest) -> loop (f acc a b) rest
    | [ _ ] | [] -> acc
  in
  ignore env;
  loop init path

let bit_miles env path =
  fold_hops env path ~init:0.0 ~f:(fun acc a b -> acc +. Env.link_miles env a b)

let path_risk env path =
  fold_hops env path ~init:0.0 ~f:(fun acc _ b -> acc +. Env.node_risk env b)

let bit_risk_miles_kappa env ~kappa path =
  fold_hops env path ~init:0.0 ~f:(fun acc a b ->
      acc +. Env.edge_weight env ~kappa a b)

type term = {
  tail : int;
  head : int;
  miles : float;
  hist : float;
  fcst : float;
}

(* The two products replay Env.compute_node_risk's expression exactly
   ([lambda_h *. risk_scale *. o_h] is left-associated there too), so
   [hist +. fcst] is bitwise equal to the cached node risk and
   [term_weight] to [Env.edge_weight]. *)
let term env a b =
  let p = Env.params env in
  {
    tail = a;
    head = b;
    miles = Env.link_miles env a b;
    hist = p.Params.lambda_h *. p.Params.risk_scale *. (Env.historical env).(b);
    fcst = p.Params.lambda_f *. (Env.forecast env).(b);
  }

let terms env path =
  List.rev (fold_hops env path ~init:[] ~f:(fun acc a b -> term env a b :: acc))

let term_weight ~kappa t = t.miles +. (kappa *. (t.hist +. t.fcst))

let terms_total ~kappa ts =
  List.fold_left (fun acc t -> acc +. term_weight ~kappa t) 0.0 ts

let bit_risk_miles env path =
  match path with
  | [] | [ _ ] -> 0.0
  | first :: _ ->
    let rec last = function
      | [ x ] -> x
      | _ :: rest -> last rest
      | [] -> assert false
    in
    let kappa = Env.kappa env first (last path) in
    bit_risk_miles_kappa env ~kappa path
