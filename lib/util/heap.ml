type 'a t = {
  mutable keys : float array;
  mutable vals : 'a array;
  mutable size : int;
}

let create ?(capacity = 64) () =
  { keys = Array.make (max 1 capacity) 0.0; vals = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h v =
  let cap = Array.length h.keys in
  if h.size >= cap then begin
    let keys' = Array.make (2 * cap) 0.0 in
    Array.blit h.keys 0 keys' 0 h.size;
    h.keys <- keys';
    let vals' = Array.make (2 * cap) v in
    Array.blit h.vals 0 vals' 0 h.size;
    h.vals <- vals'
  end;
  (* First push: materialise the value array now that we have a witness. *)
  if Array.length h.vals = 0 then h.vals <- Array.make (Array.length h.keys) v

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(i) < h.keys.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < h.size && h.keys.(l) < h.keys.(i) then l else i in
  let smallest = if r < h.size && h.keys.(r) < h.keys.(smallest) then r else smallest in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let push h key v =
  grow h v;
  h.keys.(h.size) <- key;
  h.vals.(h.size) <- v;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop_min h =
  if h.size = 0 then None
  else begin
    let key = h.keys.(0) and v = h.vals.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.keys.(0) <- h.keys.(h.size);
      h.vals.(0) <- h.vals.(h.size);
      sift_down h 0
    end;
    Some (key, v)
  end

let clear h = h.size <- 0
