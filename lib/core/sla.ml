(* LARAC over (latency, risk): find min risk s.t. latency <= budget. *)

let propagation_ms_per_mile = 0.0082

let latency_ms env path =
  propagation_ms_per_mile *. Metric.bit_miles env path

type constrained = {
  route : Router.route;
  latency : float;
  risk : float;
  optimal : bool;
}

let path_risk_scaled env ~kappa path = kappa *. Metric.path_risk env path

let measure env ~kappa path =
  (latency_ms env path, path_risk_scaled env ~kappa path)

(* Dijkstra under the aggregated weight  risk + multiplier * latency
   (multiplier in risk-per-ms). *)
let aggregated_path env ~kappa ~multiplier ~src ~dst =
  let weight u v =
    (kappa *. Env.node_risk env v)
    +. (multiplier *. propagation_ms_per_mile *. Env.link_miles env u v)
  in
  match Rr_graph.Dijkstra.single_pair (Env.graph env) ~weight ~src ~dst with
  | Some (_, path) -> Some path
  | None -> None

let constrained_route ?(iterations = 32) env ~src ~dst ~max_latency_ms =
  if max_latency_ms <= 0.0 then invalid_arg "Sla.constrained_route: non-positive budget";
  let kappa = Env.kappa env src dst in
  let finish ~optimal path =
    let latency, risk = measure env ~kappa path in
    Some { route = Router.route_of_path env path; latency; risk; optimal }
  in
  (* Risk-optimal path: if it fits, done. *)
  match Router.riskroute env ~src ~dst with
  | None -> None
  | Some risk_opt ->
    let risk_path = risk_opt.Router.path in
    if latency_ms env risk_path <= max_latency_ms then finish ~optimal:true risk_path
    else begin
      (* Latency-optimal path: if even this violates, infeasible. *)
      match Router.shortest env ~src ~dst with
      | None -> None
      | Some lat_opt ->
        let lat_path = lat_opt.Router.path in
        if latency_ms env lat_path > max_latency_ms then None
        else begin
          (* LARAC binary search on the multiplier: small multiplier
             favours risk (infeasible side), large favours latency
             (feasible side). *)
          let best_feasible = ref lat_path in
          let lo = ref 0.0 and hi = ref 1.0 in
          (* grow hi until feasible *)
          let rec grow n =
            if n = 0 then ()
            else
              match aggregated_path env ~kappa ~multiplier:!hi ~src ~dst with
              | Some path when latency_ms env path <= max_latency_ms ->
                best_feasible := path
              | Some _ | None ->
                hi := !hi *. 8.0;
                grow (n - 1)
          in
          grow 24;
          let closed = ref false in
          for _ = 1 to iterations do
            if not !closed then begin
              let mid = (!lo +. !hi) /. 2.0 in
              match aggregated_path env ~kappa ~multiplier:mid ~src ~dst with
              | None -> closed := true
              | Some path ->
                let latency, risk = measure env ~kappa path in
                if latency <= max_latency_ms then begin
                  let _, best_risk = measure env ~kappa !best_feasible in
                  if risk < best_risk then best_feasible := path;
                  hi := mid;
                  (* relaxation closes when the feasible path is also the
                     aggregated optimum at a multiplier where the
                     infeasible side agrees *)
                  if path = !best_feasible && latency = max_latency_ms then
                    closed := true
                end
                else lo := mid
            end
          done;
          (* LARAC guarantee: best_feasible is optimal iff the lower bound
             from the infeasible side meets it; we report optimal only in
             the trivial closures above. *)
          finish ~optimal:false !best_feasible
        end
    end
