(** Rasterised kernel density estimate.

    Events are binned onto a CONUS grid, then the Gaussian kernel is
    applied as a truncated convolution in cell space. Fitting is
    O(events + cells * support^2) and evaluation is O(1) — the fast path
    for heat-map figures and for evaluating a density at hundreds of
    PoPs. Accuracy versus the exact {!Density} degrades only when the
    bandwidth is smaller than a cell. *)

type t

val fit :
  ?rows:int -> ?cols:int -> bandwidth:float -> Rr_geo.Coord.t array -> t
(** Default raster is 250 x 580 over {!Rr_geo.Bbox.conus} (about 6 x 6.4
    miles per cell). Events outside the box are dropped. *)

val bandwidth : t -> float

val eval : t -> Rr_geo.Coord.t -> float
(** Density (per square mile) of the cell containing the point; 0 outside
    the raster. *)

val grid : t -> Rr_geo.Grid.t
(** The underlying normalised-density raster (read for rendering). *)
