(** Fixed-width one-dimensional histograms. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Empty histogram over [[lo, hi)] with [bins] equal-width bins. *)

val add : t -> float -> unit
(** Count a sample; values outside [[lo, hi)] are clamped into the edge
    bins. *)

val counts : t -> int array
val total : t -> int

val densities : t -> float array
(** Per-bin empirical probability mass (sums to 1); all zeros when
    empty. *)

val bin_center : t -> int -> float
