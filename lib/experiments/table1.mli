(** Table 1: trained kernel density bandwidths for the five disaster
    catalogues (event counts + cross-validated optimal bandwidth). *)

type row = {
  kind : Rr_disaster.Event.kind;
  entries : int;
  bandwidth : float;        (** our cross-validated optimum, miles *)
  paper_bandwidth : float;  (** the value reported in the paper *)
}

val default_spec : Rr_engine.Spec.t
(** [max_events] = 25,000. *)

val compute :
  ?catalog:Rr_disaster.Catalog.t -> Rr_engine.Context.t -> Rr_engine.Spec.t ->
  row list
(** Runs 5-fold CV per catalogue with the rasterised scorer. [catalog]
    overrides the context's shared catalogue (tests use a small
    synthetic one). [Spec.max_events] (default 25,000) caps the events
    entering CV: the three smaller catalogues run at full size, and the
    subsampling of storm and wind compresses their bandwidth gap
    slightly (documented in EXPERIMENTS.md). *)

val run : Rr_engine.Context.t -> Format.formatter -> unit
(** Print the table, paper values alongside. *)
