open Rr_util

type t = {
  tier1s : Net.t list;
  regionals : Net.t list;
  peering : Peering.t;
}

let default_seed = 0x5EED_2013L

(* Tier-1 specs: PoP counts from Table 2. Mesh / hub parameters encode the
   paper's qualitative density story: Level3 is large and densely
   connected; Sprint and Teliasonera are sparse (they gain most from added
   links, Fig. 10). *)
let tier1_specs : Builder.spec list =
  [
    { name = "Level3"; tier = Net.Tier1; states = []; pop_count = 233; style = Builder.Mesh; mesh_fraction = 0.85; hub_links = 14 };
    { name = "AT&T"; tier = Net.Tier1; states = []; pop_count = 25; style = Builder.Ring; mesh_fraction = 0.45; hub_links = 4 };
    { name = "Deutsche Telekom"; tier = Net.Tier1; states = []; pop_count = 10; style = Builder.Ring; mesh_fraction = 0.20; hub_links = 2 };
    { name = "NTT"; tier = Net.Tier1; states = []; pop_count = 12; style = Builder.Ring; mesh_fraction = 0.35; hub_links = 2 };
    { name = "Sprint"; tier = Net.Tier1; states = []; pop_count = 24; style = Builder.Ring; mesh_fraction = 0.30; hub_links = 2 };
    { name = "Tinet"; tier = Net.Tier1; states = []; pop_count = 35; style = Builder.Mesh; mesh_fraction = 0.45; hub_links = 3 };
    { name = "Teliasonera"; tier = Net.Tier1; states = []; pop_count = 15; style = Builder.Ring; mesh_fraction = 0.30; hub_links = 1 };
  ]

(* Regional specs: 16 networks, 455 PoPs total. *)
let regional_specs : Builder.spec list =
  [
    { name = "ANS"; tier = Net.Regional; states = [ "NY"; "NJ"; "CT"; "PA" ]; pop_count = 20; style = Builder.Mesh; mesh_fraction = 0.30; hub_links = 2 };
    { name = "Digex"; tier = Net.Regional; states = [ "MD"; "VA"; "DC"; "DE" ]; pop_count = 18; style = Builder.Mesh; mesh_fraction = 0.30; hub_links = 2 };
    { name = "British Telecom"; tier = Net.Regional; states = [ "NY"; "MA"; "CT"; "NJ" ]; pop_count = 25; style = Builder.Mesh; mesh_fraction = 0.35; hub_links = 2 };
    { name = "Epoch"; tier = Net.Regional; states = [ "CA" ]; pop_count = 30; style = Builder.Mesh; mesh_fraction = 0.30; hub_links = 3 };
    { name = "Iris"; tier = Net.Regional; states = [ "TN"; "MS"; "AR" ]; pop_count = 28; style = Builder.Mesh; mesh_fraction = 0.30; hub_links = 2 };
    { name = "Bluebird"; tier = Net.Regional; states = [ "MO"; "IL"; "KS" ]; pop_count = 26; style = Builder.Mesh; mesh_fraction = 0.30; hub_links = 2 };
    { name = "Gridnet"; tier = Net.Regional; states = [ "NC"; "VA" ]; pop_count = 22; style = Builder.Mesh; mesh_fraction = 0.25; hub_links = 2 };
    { name = "Globalcenter"; tier = Net.Regional; states = [ "NJ"; "NY" ]; pop_count = 8; style = Builder.Mesh; mesh_fraction = 0.25; hub_links = 1 };
    { name = "Bandcon"; tier = Net.Regional; states = [ "NY"; "PA"; "NJ" ]; pop_count = 24; style = Builder.Mesh; mesh_fraction = 0.25; hub_links = 2 };
    { name = "Abilene"; tier = Net.Regional; states = [ "IL"; "IN"; "OH"; "MI"; "WI" ]; pop_count = 44; style = Builder.Mesh; mesh_fraction = 0.30; hub_links = 4 };
    { name = "USA Network"; tier = Net.Regional; states = [ "LA"; "TX" ]; pop_count = 36; style = Builder.Mesh; mesh_fraction = 0.30; hub_links = 3 };
    { name = "Telepak"; tier = Net.Regional; states = [ "MS"; "LA"; "AL" ]; pop_count = 30; style = Builder.Mesh; mesh_fraction = 0.30; hub_links = 2 };
    { name = "Goodnet"; tier = Net.Regional; states = [ "PA"; "NY"; "OH" ]; pop_count = 28; style = Builder.Mesh; mesh_fraction = 0.30; hub_links = 2 };
    { name = "NTS"; tier = Net.Regional; states = [ "TX" ]; pop_count = 40; style = Builder.Mesh; mesh_fraction = 0.30; hub_links = 3 };
    { name = "Hibernia"; tier = Net.Regional; states = [ "MA"; "NH"; "ME"; "RI"; "CT"; "VT" ]; pop_count = 38; style = Builder.Mesh; mesh_fraction = 0.25; hub_links = 3 };
    { name = "CoStreet"; tier = Net.Regional; states = [ "AL"; "GA"; "FL" ]; pop_count = 38; style = Builder.Mesh; mesh_fraction = 0.30; hub_links = 3 };
  ]

let create ?(seed = default_seed) () =
  let root = Prng.create seed in
  let topo_rng = Prng.split root in
  let peering_rng = Prng.split root in
  let tier1s = List.map (fun spec -> Builder.build ~rng:topo_rng spec) tier1_specs in
  let regionals = List.map (fun spec -> Builder.build ~rng:topo_rng spec) regional_specs in
  let peering = Peering.build ~rng:peering_rng ~tier1s ~regionals in
  { tier1s; regionals; peering }

let shared =
  let cache = lazy (create ()) in
  fun () -> Lazy.force cache

let all_nets t = t.tier1s @ t.regionals

let find t name =
  let lower = String.lowercase_ascii name in
  List.find_opt
    (fun net -> String.equal (String.lowercase_ascii net.Net.name) lower)
    (all_nets t)

let pop_total nets = List.fold_left (fun acc n -> acc + Net.pop_count n) 0 nets

let tier1_pop_total t = pop_total t.tier1s

let regional_pop_total t = pop_total t.regionals
