open Rr_util

type t = { by_kind : (Event.kind * Event.t array) list }

let generate ?(seed = 0xD15A_57E4L) ?(scale = 1.0) () =
  if scale <= 0.0 then invalid_arg "Catalog.generate: non-positive scale";
  let root = Prng.create seed in
  let by_kind =
    List.map
      (fun kind ->
        let model = Model.for_kind kind in
        let site_seed = Prng.int64 root in
        let event_rng = Prng.split root in
        let sample = Model.sampler model ~seed:site_seed in
        let n =
          max 10
            (int_of_float (Float.round (scale *. float_of_int (Event.paper_count kind))))
        in
        let events =
          Array.init n (fun _ ->
              let coord = sample event_rng in
              let year = 1970 + Prng.int event_rng 41 in
              let month = Model.sample_month event_rng kind in
              { Event.kind; coord; year; month })
        in
        (kind, events))
      Event.all_kinds
  in
  { by_kind }

let shared =
  let cache = lazy (generate ()) in
  fun () -> Lazy.force cache

let find t kind =
  match List.assoc_opt kind t.by_kind with
  | Some events -> events
  | None -> [||]

let coords t kind = Array.map (fun e -> e.Event.coord) (find t kind)

let count t kind = Array.length (find t kind)

let total t =
  List.fold_left (fun acc (_, events) -> acc + Array.length events) 0 t.by_kind

let events t = Array.concat (List.map snd t.by_kind)

let coords_in_months t kind ~months =
  find t kind
  |> Array.to_list
  |> List.filter_map (fun e ->
         if List.mem e.Event.month months then Some e.Event.coord else None)
  |> Array.of_list
