(** Deterministic synthetic ISP generator.

    Real Topology Zoo maps are unavailable in this sealed environment, so
    networks are grown over the real city gazetteer the way fibre maps
    look in the Zoo: a minimum spanning tree guarantees connectivity,
    a sampled subset of Gabriel-graph edges adds regional meshiness, and a
    few hub shortcuts connect the biggest metros. PoP sites are drawn
    weighted by city population; when a network needs more PoPs than its
    region has cities, extra metro PoPs are placed with a small jitter
    (as multiple PoPs per metro are common in real maps). *)

type style =
  | Mesh
      (** MST backbone + sampled Gabriel edges — large meshy backbones
          (Level3) and regional footprints *)
  | Ring
      (** a national ring (angular tour around the centroid) + sampled
          Gabriel chords — the shape of small Tier-1 US maps in the
          Topology Zoo *)

type spec = {
  name : string;
  tier : Net.tier;
  states : string list;
      (** restrict the city pool (and the served population) to these
          states; empty means the whole CONUS *)
  pop_count : int;
  style : style;
  mesh_fraction : float;
      (** probability of keeping each non-backbone Gabriel edge; controls
          link density *)
  hub_links : int;
      (** extra shortcut links among the most populous PoP metros *)
}

val build : rng:Rr_util.Prng.t -> spec -> Net.t
(** Grow one network. The result is connected and has exactly
    [spec.pop_count] PoPs. Raises [Invalid_argument] when the state list
    selects no cities or [pop_count < 1]. *)
