(* The exact advisory excerpt quoted in the paper (Sec. 4.4), with a
   header line added so the storm name can be identified. *)
let paper_excerpt =
  {|BULLETIN
HURRICANE IRENE ADVISORY NUMBER 28
NWS NATIONAL HURRICANE CENTER MIAMI FL
500 AM EDT SAT AUG 27 2011

...THE CENTER OF HURRICANE IRENE WAS LOCATED
NEAR LATITUDE 35.2 NORTH...LONGITUDE 76.4 WEST.
IRENE IS MOVING TOWARD THE NORTH-NORTHEAST
NEAR 15 MPH...HURRICANE-FORCE WINDS EXTEND
OUTWARD UP TO 90 MILES...150 KM...FROM THE CEN-
TER...AND TROPICAL-STORM-FORCE WINDS EXTEND
OUTWARD UP TO 260 MILES...415 KM...|}

(* --- Parse --- *)

let test_parse_paper_excerpt () =
  match Rr_forecast.Parse.advisory paper_excerpt with
  | Error e -> Alcotest.fail (Rr_forecast.Parse.error_to_string e)
  | Ok a ->
    Alcotest.(check string) "storm" "IRENE" a.Rr_forecast.Advisory.storm;
    Alcotest.(check int) "number" 28 a.Rr_forecast.Advisory.number;
    Alcotest.(check (float 1e-9)) "lat" 35.2
      (Rr_geo.Coord.lat a.Rr_forecast.Advisory.center);
    Alcotest.(check (float 1e-9)) "lon" (-76.4)
      (Rr_geo.Coord.lon a.Rr_forecast.Advisory.center);
    Alcotest.(check (float 1e-9)) "hurricane radius" 90.0
      a.Rr_forecast.Advisory.hurricane_radius_miles;
    Alcotest.(check (float 1e-9)) "tropical radius" 260.0
      a.Rr_forecast.Advisory.tropical_radius_miles;
    Alcotest.(check string) "issued" "500 AM EDT SAT AUG 27 2011"
      a.Rr_forecast.Advisory.issued

let test_parse_missing_center () =
  let text = "HURRICANE BOB ADVISORY NUMBER 3\nNO POSITION TODAY" in
  (match Rr_forecast.Parse.advisory text with
  | Error Rr_forecast.Parse.Missing_center -> ()
  | _ -> Alcotest.fail "expected Missing_center");
  match Rr_forecast.Parse.advisory "JUST SOME TEXT" with
  | Error Rr_forecast.Parse.Missing_storm_name -> ()
  | _ -> Alcotest.fail "expected Missing_storm_name"

let test_parse_tropical_storm_header () =
  let text =
    "TROPICAL STORM ZETA ADVISORY NUMBER 7\n\
     THE CENTER OF TROPICAL STORM ZETA WAS LOCATED NEAR LATITUDE 25.0 \
     NORTH...LONGITUDE 80.0 WEST.\n\
     TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 120 MILES...195 KM..."
  in
  match Rr_forecast.Parse.advisory text with
  | Ok a ->
    Alcotest.(check string) "storm" "ZETA" a.Rr_forecast.Advisory.storm;
    Alcotest.(check (float 1e-9)) "no hurricane winds" 0.0
      a.Rr_forecast.Advisory.hurricane_radius_miles;
    Alcotest.(check (float 1e-9)) "tropical radius" 120.0
      a.Rr_forecast.Advisory.tropical_radius_miles
  | Error e -> Alcotest.fail (Rr_forecast.Parse.error_to_string e)

let test_parse_lowercase_input () =
  let text = String.lowercase_ascii paper_excerpt in
  match Rr_forecast.Parse.advisory text with
  | Ok a -> Alcotest.(check string) "case-folded" "IRENE" a.Rr_forecast.Advisory.storm
  | Error e -> Alcotest.fail (Rr_forecast.Parse.error_to_string e)

(* --- Advisory validation --- *)

let test_advisory_validation () =
  let center = Rr_geo.Coord.make ~lat:30.0 ~lon:(-80.0) in
  Alcotest.check_raises "negative radius"
    (Invalid_argument "Advisory.make: negative wind radius") (fun () ->
      ignore
        (Rr_forecast.Advisory.make ~storm:"X" ~number:1 ~issued:"t" ~center
           ~hurricane_radius_miles:(-1.0) ~tropical_radius_miles:10.0));
  Alcotest.check_raises "inverted radii"
    (Invalid_argument "Advisory.make: hurricane radius exceeds tropical radius")
    (fun () ->
      ignore
        (Rr_forecast.Advisory.make ~storm:"X" ~number:1 ~issued:"t" ~center
           ~hurricane_radius_miles:200.0 ~tropical_radius_miles:100.0))

(* --- Render round trip --- *)

let test_render_round_trip () =
  let advisory =
    Rr_forecast.Advisory.make ~storm:"SANDY" ~number:25
      ~issued:"1100 PM EDT SUN OCT 28 2012"
      ~center:(Rr_geo.Coord.make ~lat:33.7 ~lon:(-75.2))
      ~hurricane_radius_miles:85.0 ~tropical_radius_miles:450.0
  in
  match Rr_forecast.Parse.advisory (Rr_forecast.Render.advisory advisory) with
  | Ok back ->
    Alcotest.(check string) "storm" "SANDY" back.Rr_forecast.Advisory.storm;
    Alcotest.(check int) "number" 25 back.Rr_forecast.Advisory.number;
    Alcotest.(check (float 0.051)) "lat" 33.7
      (Rr_geo.Coord.lat back.Rr_forecast.Advisory.center);
    Alcotest.(check (float 0.6)) "hurricane radius" 85.0
      back.Rr_forecast.Advisory.hurricane_radius_miles;
    Alcotest.(check (float 0.6)) "tropical radius" 450.0
      back.Rr_forecast.Advisory.tropical_radius_miles
  | Error e -> Alcotest.fail (Rr_forecast.Parse.error_to_string e)

let round_trip_property =
  let gen =
    QCheck.Gen.(
      map
        (fun (lat, lon, h, extra) ->
          let tropical = if h = 0.0 then 100.0 +. extra else h +. extra in
          Rr_forecast.Advisory.make ~storm:"TEST" ~number:1 ~issued:"500 PM EDT MON JUL 1 2013"
            ~center:(Rr_geo.Coord.make ~lat ~lon)
            ~hurricane_radius_miles:h ~tropical_radius_miles:tropical)
        (quad (float_range 10.0 48.0) (float_range (-120.0) (-60.0))
           (oneofl [ 0.0; 30.0; 60.0; 90.0; 120.0 ])
           (float_range 10.0 400.0)))
  in
  let arb =
    QCheck.make gen ~print:(fun a -> Format.asprintf "%a" Rr_forecast.Advisory.pp a)
  in
  QCheck.Test.make ~name:"render/parse round trip" ~count:200 arb (fun advisory ->
      match Rr_forecast.Parse.advisory (Rr_forecast.Render.advisory advisory) with
      | Error _ -> false
      | Ok back ->
        Float.abs
          (Rr_geo.Coord.lat back.Rr_forecast.Advisory.center
          -. Rr_geo.Coord.lat advisory.Rr_forecast.Advisory.center)
        < 0.051
        && Float.abs
             (back.Rr_forecast.Advisory.hurricane_radius_miles
             -. advisory.Rr_forecast.Advisory.hurricane_radius_miles)
           < 0.6
        && Float.abs
             (back.Rr_forecast.Advisory.tropical_radius_miles
             -. advisory.Rr_forecast.Advisory.tropical_radius_miles)
           < 0.6)

(* --- Track --- *)

let test_track_advisory_counts () =
  Alcotest.(check int) "Irene 70" 70
    (List.length (Rr_forecast.Track.advisories Rr_forecast.Track.irene));
  Alcotest.(check int) "Katrina 61" 61
    (List.length (Rr_forecast.Track.advisories Rr_forecast.Track.katrina));
  Alcotest.(check int) "Sandy 60" 60
    (List.length (Rr_forecast.Track.advisories Rr_forecast.Track.sandy))

let test_track_find () =
  Alcotest.(check bool) "case insensitive" true
    (Rr_forecast.Track.find "sandy" = Some Rr_forecast.Track.sandy);
  Alcotest.(check bool) "unknown" true (Rr_forecast.Track.find "bob" = None)

let test_track_position_interpolation () =
  let storm = Rr_forecast.Track.katrina in
  let before = Rr_forecast.Track.position_at storm (-5.0) in
  Alcotest.(check (float 1e-9)) "clamped to start" 23.2 before.Rr_forecast.Track.lat;
  let way = storm.Rr_forecast.Track.waypoints in
  let first = way.(0) and second = way.(1) in
  let mid_hour = (first.Rr_forecast.Track.hour +. second.Rr_forecast.Track.hour) /. 2.0 in
  let mid = Rr_forecast.Track.position_at storm mid_hour in
  Alcotest.(check (float 1e-6)) "lat midpoint"
    ((first.Rr_forecast.Track.lat +. second.Rr_forecast.Track.lat) /. 2.0)
    mid.Rr_forecast.Track.lat

let test_track_timestamps () =
  (* Oct 22 2012 was a Monday; 60 advisories at 3 h end Oct 29 (Monday). *)
  Alcotest.(check string) "first Sandy advisory" "1100 AM EDT MON OCT 22 2012"
    (Rr_forecast.Track.timestamp Rr_forecast.Track.sandy ~tick:0);
  Alcotest.(check string) "last Sandy advisory" "800 PM EDT MON OCT 29 2012"
    (Rr_forecast.Track.timestamp Rr_forecast.Track.sandy ~tick:59);
  (* month rollover: Katrina started Aug 23 2005 (Tuesday) *)
  Alcotest.(check string) "first Katrina advisory" "500 PM EDT TUE AUG 23 2005"
    (Rr_forecast.Track.timestamp Rr_forecast.Track.katrina ~tick:0)

let test_track_radii_round_trip_through_text () =
  (* advisories go through render+parse: radii must stay consistent *)
  List.iter
    (fun (a : Rr_forecast.Advisory.t) ->
      if a.Rr_forecast.Advisory.hurricane_radius_miles > 0.0 then
        Alcotest.(check bool) "hurricane <= tropical" true
          (a.Rr_forecast.Advisory.hurricane_radius_miles
          <= a.Rr_forecast.Advisory.tropical_radius_miles))
    (Rr_forecast.Track.advisories Rr_forecast.Track.sandy)

let test_track_katrina_gulf_landfall () =
  (* Katrina's centre must pass within 100 miles of New Orleans *)
  let advisories = Rr_forecast.Track.advisories Rr_forecast.Track.katrina in
  let nola = Rr_geo.Coord.make ~lat:29.95 ~lon:(-90.07) in
  let closest =
    List.fold_left
      (fun acc (a : Rr_forecast.Advisory.t) ->
        Float.min acc (Rr_geo.Distance.miles a.Rr_forecast.Advisory.center nola))
      infinity advisories
  in
  Alcotest.(check bool) "passes New Orleans" true (closest < 100.0)

(* --- Riskfield --- *)

let advisory_at lat lon hurricane tropical =
  Rr_forecast.Advisory.make ~storm:"T" ~number:1 ~issued:"t"
    ~center:(Rr_geo.Coord.make ~lat ~lon) ~hurricane_radius_miles:hurricane
    ~tropical_radius_miles:tropical

let test_riskfield_rings () =
  let a = advisory_at 30.0 (-90.0) 50.0 200.0 in
  let at miles = Rr_geo.Coord.make ~lat:(30.0 +. (miles /. 69.0)) ~lon:(-90.0) in
  Alcotest.(check (float 1e-9)) "inside hurricane ring" 100.0
    (Rr_forecast.Riskfield.risk_at a (at 20.0));
  Alcotest.(check (float 1e-9)) "inside tropical ring" 50.0
    (Rr_forecast.Riskfield.risk_at a (at 120.0));
  Alcotest.(check (float 1e-9)) "outside" 0.0
    (Rr_forecast.Riskfield.risk_at a (at 300.0))

let test_riskfield_custom_rho () =
  let a = advisory_at 30.0 (-90.0) 50.0 200.0 in
  let p = Rr_geo.Coord.make ~lat:30.1 ~lon:(-90.0) in
  Alcotest.(check (float 1e-9)) "custom rho" 7.0
    (Rr_forecast.Riskfield.risk_at ~rho_tropical:3.0 ~rho_hurricane:7.0 a p)

let test_riskfield_no_wind_radii () =
  let a = advisory_at 30.0 (-90.0) 0.0 0.0 in
  Alcotest.(check (float 1e-9)) "no risk without radii" 0.0
    (Rr_forecast.Riskfield.risk_at a (Rr_geo.Coord.make ~lat:30.0 ~lon:(-90.0)))

let test_scope_counting () =
  let zoo = Rr_topology.Zoo.shared () in
  let telepak = Option.get (Rr_topology.Zoo.find zoo "Telepak") in
  (* giant disc over the Gulf catches Telepak; nothing in a zero-radius one *)
  let big = advisory_at 31.0 (-89.5) 150.0 400.0 in
  Alcotest.(check bool) "PoPs in scope" true
    (Rr_forecast.Riskfield.pops_in_scope big telepak > 0);
  Alcotest.(check bool) "hurricane scope smaller" true
    (Rr_forecast.Riskfield.pops_in_hurricane_scope big telepak
    <= Rr_forecast.Riskfield.pops_in_scope big telepak);
  let empty = advisory_at 31.0 (-89.5) 0.0 0.0 in
  Alcotest.(check int) "zero scope" 0
    (Rr_forecast.Riskfield.pops_in_scope empty telepak)

let test_scope_fraction_bounds () =
  let zoo = Rr_topology.Zoo.shared () in
  let telepak = Option.get (Rr_topology.Zoo.find zoo "Telepak") in
  let advisories = Rr_forecast.Track.advisories Rr_forecast.Track.katrina in
  let fraction = Rr_forecast.Riskfield.scope_fraction advisories telepak in
  Alcotest.(check bool) "in [0, 1]" true (fraction >= 0.0 && fraction <= 1.0);
  (* Katrina crossed Mississippi: Telepak must be heavily in scope *)
  Alcotest.(check bool) "Telepak exposed to Katrina" true (fraction > 0.2)

let test_union_scope_max () =
  let a1 = advisory_at 30.0 (-90.0) 50.0 200.0 in
  let a2 = advisory_at 32.0 (-90.0) 50.0 200.0 in
  let p = Rr_geo.Coord.make ~lat:30.0 ~lon:(-90.0) in
  Alcotest.(check (float 1e-9)) "max across advisories" 100.0
    (Rr_forecast.Riskfield.union_scope [ a2; a1 ] p)

(* --- Riskfield.diff: sparse advisory-tick deltas --- *)

let level3_coords () =
  let net =
    Option.get (Rr_topology.Zoo.find (Rr_topology.Zoo.shared ()) "Level3")
  in
  Array.map
    (fun (p : Rr_topology.Pop.t) -> p.Rr_topology.Pop.coord)
    net.Rr_topology.Net.pops

let sandy_advisory i =
  List.nth (Rr_forecast.Track.advisories Rr_forecast.Track.sandy) i

let bits = Int64.bits_of_float

let test_diff_empty_cases () =
  let coords = level3_coords () in
  let module R = Rr_forecast.Riskfield in
  let check_empty label (d : R.delta) =
    Alcotest.(check int) (label ^ ": no indices") 0 (Array.length d.R.indices);
    Alcotest.(check int) (label ^ ": no values") 0 (Array.length d.R.values);
    Alcotest.(check bool) (label ^ ": no bbox") true (d.R.bbox = None)
  in
  check_empty "none -> none" (R.diff ~prev:None ~next:None coords);
  let a = sandy_advisory 40 in
  check_empty "same advisory" (R.diff ~prev:(Some a) ~next:(Some a) coords);
  (* Sandy's first advisories sit far offshore: the field over a CONUS
     net is all-zero on both sides, so the delta is empty even though
     the advisories differ. This is what lets the engine keep every
     cached tree across offshore ticks. *)
  check_empty "offshore tick"
    (R.diff ~prev:(Some (sandy_advisory 0)) ~next:(Some (sandy_advisory 1))
       coords)

let test_diff_roundtrip_bitwise () =
  let coords = level3_coords () in
  let module R = Rr_forecast.Riskfield in
  let prev = sandy_advisory 40 and next = sandy_advisory 41 in
  let old_field = Array.map (fun c -> R.risk_at prev c) coords in
  let new_field = Array.map (fun c -> R.risk_at next c) coords in
  let d = R.diff ~prev:(Some prev) ~next:(Some next) coords in
  Alcotest.(check bool) "landfall tick: delta non-empty" true
    (Array.length d.R.indices > 0);
  Alcotest.(check int) "one value per index" (Array.length d.R.indices)
    (Array.length d.R.values);
  (* Indices strictly increasing, each a genuine bitwise change. *)
  Array.iteri
    (fun j i ->
      if j > 0 && d.R.indices.(j - 1) >= i then
        Alcotest.failf "indices not strictly increasing at %d" j;
      if bits old_field.(i) = bits new_field.(i) then
        Alcotest.failf "index %d reported but unchanged" i;
      if bits d.R.values.(j) <> bits new_field.(i) then
        Alcotest.failf "value at %d is not the new field value" i)
    d.R.indices;
  (* Applying the delta to the old field reproduces the new one
     bit-for-bit — the property Env.patch relies on. *)
  let patched = Array.copy old_field in
  Array.iteri (fun j i -> patched.(i) <- d.R.values.(j)) d.R.indices;
  Array.iteri
    (fun i v ->
      if bits v <> bits new_field.(i) then
        Alcotest.failf "patched field diverges at %d" i)
    patched;
  (* The bbox is a tight cover of the changed points. *)
  match d.R.bbox with
  | None -> Alcotest.fail "non-empty delta must carry a bbox"
  | Some b ->
    Array.iter
      (fun i ->
        if not (Rr_geo.Bbox.contains b coords.(i)) then
          Alcotest.failf "changed point %d outside bbox" i)
      d.R.indices

let test_diff_field_matches_diff () =
  let coords = level3_coords () in
  let module R = Rr_forecast.Riskfield in
  let prev = sandy_advisory 41 and next = sandy_advisory 42 in
  let old_field = Array.map (fun c -> R.risk_at prev c) coords in
  let via_advisories = R.diff ~prev:(Some prev) ~next:(Some next) coords in
  let via_field = R.diff_field ~old_field ~next:(Some next) coords in
  Alcotest.(check (array int)) "same indices" via_advisories.R.indices
    via_field.R.indices;
  Array.iteri
    (fun j v ->
      if bits v <> bits via_field.R.values.(j) then
        Alcotest.failf "diff/diff_field values disagree at %d" j)
    via_advisories.R.values

let () =
  Alcotest.run "rr_forecast"
    [
      ( "parse",
        [
          Alcotest.test_case "paper excerpt" `Quick test_parse_paper_excerpt;
          Alcotest.test_case "missing pieces" `Quick test_parse_missing_center;
          Alcotest.test_case "tropical storm header" `Quick test_parse_tropical_storm_header;
          Alcotest.test_case "lower-case input" `Quick test_parse_lowercase_input;
        ] );
      ( "advisory",
        [ Alcotest.test_case "validation" `Quick test_advisory_validation ] );
      ( "render",
        [
          Alcotest.test_case "round trip" `Quick test_render_round_trip;
          QCheck_alcotest.to_alcotest round_trip_property;
        ] );
      ( "track",
        [
          Alcotest.test_case "advisory counts" `Quick test_track_advisory_counts;
          Alcotest.test_case "find" `Quick test_track_find;
          Alcotest.test_case "interpolation" `Quick test_track_position_interpolation;
          Alcotest.test_case "timestamps" `Quick test_track_timestamps;
          Alcotest.test_case "radii consistency" `Quick test_track_radii_round_trip_through_text;
          Alcotest.test_case "Katrina Gulf landfall" `Quick test_track_katrina_gulf_landfall;
        ] );
      ( "riskfield",
        [
          Alcotest.test_case "rings" `Quick test_riskfield_rings;
          Alcotest.test_case "custom rho" `Quick test_riskfield_custom_rho;
          Alcotest.test_case "no radii" `Quick test_riskfield_no_wind_radii;
          Alcotest.test_case "scope counting" `Quick test_scope_counting;
          Alcotest.test_case "scope fraction" `Quick test_scope_fraction_bounds;
          Alcotest.test_case "union scope" `Quick test_union_scope_max;
        ] );
      ( "diff",
        [
          Alcotest.test_case "empty cases" `Quick test_diff_empty_cases;
          Alcotest.test_case "roundtrip bitwise" `Quick
            test_diff_roundtrip_bitwise;
          Alcotest.test_case "diff_field consistency" `Quick
            test_diff_field_matches_diff;
        ] );
    ]
