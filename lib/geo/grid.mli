(** Raster grids over a bounding box.

    Used for population heat maps (Fig. 3), KDE likelihood maps (Fig. 4)
    and the ASCII renderings of every map figure. Cells are indexed
    [(row, col)] with row 0 at the {e northern} edge so that rendering
    top-to-bottom matches a map. *)

type t

val create : Bbox.t -> rows:int -> cols:int -> t
(** Zero-initialised grid. *)

val rows : t -> int
val cols : t -> int
val bbox : t -> Bbox.t

val cell_of_coord : t -> Coord.t -> (int * int) option
(** Cell containing a coordinate, or [None] outside the box. *)

val coord_of_cell : t -> int -> int -> Coord.t
(** Centre of cell [(row, col)]. *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val add : t -> int -> int -> float -> unit

val deposit : t -> Coord.t -> float -> unit
(** Add mass at a coordinate's cell; silently drops out-of-box points
    (matching how the paper restricts analysis to the CONUS box). *)

val map_inplace : t -> (float -> float) -> unit
val fold : t -> init:'a -> f:('a -> int -> int -> float -> 'a) -> 'a
val total : t -> float
val max_value : t -> float

val normalize : t -> unit
(** Scale all cells so they sum to 1; no-op on an all-zero grid. *)

val mass_in : t -> Bbox.t -> float
(** Fraction-style mass of cells whose centres lie inside the given box. *)

val render_ascii : ?width:int -> ?height:int -> t -> string
(** Down-sampled ASCII heat map using a density ramp [" .:-=+*#%@"].
    Suitable for terminal reproduction of the paper's map figures. *)
