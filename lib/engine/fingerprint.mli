(** Content-addressed keys for the engine's artifact caches.

    A fingerprint is the MD5 hex digest of a canonical byte encoding of
    the value: floats are serialised via their IEEE-754 bit patterns, so
    two values collide only when they would produce bitwise-identical
    derived artifacts. The encodings are length-prefixed throughout, so
    concatenated fields cannot alias each other. *)

type t = string
(** 32-char lowercase hex digest. *)

val params : Riskroute.Params.t -> t
(** All five parameter fields. *)

val advisory : Rr_forecast.Advisory.t option -> t
(** Storm name, advisory number, issue time, centre, both wind radii;
    [None] has its own distinguished digest. *)

val net : Rr_topology.Net.t -> t
(** Name, tier, state footprint, PoP coordinates, and edge list — the
    inputs that determine an {!Riskroute.Env} up to params/advisory. *)

val geometry :
  n:int -> off:int array -> tgt:int array -> miles:float array -> t
(** Raw-CSR form of {!env_geometry}: an {!Riskroute.Env} whose CSR
    equals these arrays digests identically, so tree-cache keys unify
    whether the geometry came from an environment or was built
    directly (continental nets bypass the dense distance matrix). *)

val env_geometry : Riskroute.Env.t -> t
(** Node count, CSR offsets/targets and per-arc miles — everything a
    pure-distance shortest-path tree depends on. Environments derived
    via [with_advisory] / [with_params] share this fingerprint. *)

val env_risk : Riskroute.Env.t -> t
(** {!env_geometry} plus per-arc risk terms and the mean-impact kappa —
    everything a risk-weighted shortest-path tree depends on. *)

val risk_delta : parent:t -> indices:int array -> values:float array -> t
(** Chained risk fingerprint for a patched environment
    ([Riskroute.Env.patch]): the parent's risk fingerprint plus the
    sparse forecast delta that produced the child. Injective on content
    (the parent fingerprint pins the base vectors, the delta pins every
    change) at O(changed) hashing cost instead of {!env_risk}'s
    O(arcs). *)

val combine : t list -> t
(** Digest of the (length-prefixed) concatenation — a composite key. *)
