(** Deterministic pseudo-random number generation.

    Every synthetic dataset in this repository (topologies, census blocks,
    disaster catalogues, storm jitter) is derived from this SplitMix64
    generator so that experiments are exactly reproducible from a seed.
    The standard-library [Random] module is deliberately not used: its
    sequence is not guaranteed stable across OCaml releases. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current
    state. *)

val split : t -> t
(** [split t] derives a new independent stream from [t], advancing [t].
    Used to give each synthetic subsystem its own stream so that adding
    draws in one subsystem does not perturb another. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [[0., bound)]. [bound] must be
    positive. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [[0, bound)]. [bound] must be
    positive. *)

val bool : t -> bool
(** Fair coin. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] draws uniformly from [[lo, hi)]. *)

val gaussian : t -> float
(** Standard normal draw (Box-Muller). *)

val gaussian2 : t -> float * float
(** Two independent standard normal draws (one Box-Muller evaluation). *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate). *)

val pareto : t -> alpha:float -> xmin:float -> float
(** Pareto draw with shape [alpha] and scale [xmin]; used for heavy-tailed
    suburb population scatter. *)

val categorical : t -> float array -> int
(** [categorical t weights] draws index [i] with probability proportional
    to [weights.(i)]. Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
