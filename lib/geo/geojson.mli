(** Minimal GeoJSON (RFC 7946) writer.

    Networks, routes and storm tracks exported here drop straight into
    geojson.io / QGIS / Leaflet for real map rendering — the ASCII maps
    in the bench output are only a terminal preview. *)

type geometry =
  | Point of Coord.t
  | Line_string of Coord.t list
  | Polygon of Coord.t list  (** single exterior ring; closed automatically *)

type feature = {
  geometry : geometry;
  properties : (string * string) list;  (** rendered as JSON strings *)
}

val feature : ?properties:(string * string) list -> geometry -> feature

val feature_collection : feature list -> string
(** Serialise as a [FeatureCollection] document. *)

val circle : center:Coord.t -> radius_miles:float -> ?segments:int -> unit ->
  geometry
(** Geodesic circle approximated by [segments] (default 48) points — wind
    radii as polygons. *)

val to_file : string -> feature list -> unit
