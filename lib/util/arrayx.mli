(** Array helpers shared across the code base. *)

val fsum : float array -> float
(** Kahan-compensated sum; keeps large event-catalogue aggregations
    accurate. *)

val fmean : float array -> float
(** Mean of a non-empty array. *)

val fmin : float array -> float
(** Minimum of a non-empty array. *)

val fmax : float array -> float
(** Maximum of a non-empty array. *)

val argmin : float array -> int
(** Index of the minimum of a non-empty array (first on ties). *)

val argmax : float array -> int
(** Index of the maximum of a non-empty array (first on ties). *)

val normalize : float array -> float array
(** Scale a non-negative array to sum to 1. The sum must be positive. *)

val init_matrix : int -> int -> (int -> int -> float) -> float array array
(** [init_matrix rows cols f] builds a dense matrix. *)

val take : int -> 'a array -> 'a array
(** First [n] elements (or the whole array if shorter). *)
