(** Repetition-based measurement for the bench harness.

    Unlike a throughput estimator, this records every repetition so the
    stored statistics are real order statistics (p50/p95 of actual
    runs), plus per-run GC deltas — an allocation regression shows up
    even when wall-clock hides it behind noise. *)

val measure :
  ?warmups:int ->
  ?reps:int ->
  (string * (unit -> unit)) list ->
  Benchfile.result list
(** [measure kernels] runs each named kernel [warmups] times unrecorded
    (default 3), then [reps] recorded times (default 10, floored at 1),
    timing each repetition with the telemetry wall clock and capturing
    [Gc.quick_stat] deltas. Results keep the input order. *)

val quantile : float array -> float -> float
(** Nearest-rank quantile of a sample array (sorted internally);
    [nan] on an empty array. Exposed for the tests. *)
