(** Fig. 9: the ten best additional links (greedy RiskRoute robustness
    suggestions) for the Level3, AT&T and Tinet networks. *)

type suggestion = {
  network : string;
  links : (string * string * float) list;
      (** (endpoint, endpoint, fraction of original bit-risk miles after
          adding this and all previous links) *)
}

val compute : ?k:int -> unit -> suggestion list
(** Default [k] = 10 links per network, as in the paper. *)

val run : Format.formatter -> unit
