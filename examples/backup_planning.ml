(* Backup planning: combine three extension features into one operator
   workflow for a Tier-1 flow:

   1. look at the distance/risk Pareto frontier for the flow and pick the
      knee route as the SLA primary,
   2. pre-compute fast-reroute repair paths for every single failure on
      the primary (Sec. 3.1 of the paper),
   3. stress-test the whole plan with the Monte Carlo outage simulator.

   Run with:  dune exec examples/backup_planning.exe [network] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "Tinet" in
  let zoo = Rr_topology.Zoo.shared () in
  let net =
    match Rr_topology.Zoo.find zoo name with
    | Some net -> net
    | None -> failwith ("unknown network " ^ name)
  in
  let env = Riskroute.Env.of_net net in
  (* pick the geographically farthest PoP pair as the flow *)
  let n = Rr_topology.Net.pop_count net in
  let src = ref 0 and dst = ref 1 and best = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = Rr_topology.Net.link_miles net i j in
      if d > !best then begin
        best := d;
        src := i;
        dst := j
      end
    done
  done;
  let src = !src and dst = !dst in
  let pop_name i = (Rr_topology.Net.pop net i).Rr_topology.Pop.name in
  Printf.printf "Backup planning on %s: %s -> %s\n\n" name (pop_name src) (pop_name dst);

  (* 1. Pareto frontier and knee *)
  let frontier = Riskroute.Pareto.frontier env ~src ~dst in
  Printf.printf "Distance/risk frontier (%d routes):\n" (List.length frontier);
  List.iter
    (fun (p : Riskroute.Pareto.point) ->
      Printf.printf "  %7.0f bit-miles   risk %9.0f\n" p.Riskroute.Pareto.bit_miles
        p.Riskroute.Pareto.risk)
    frontier;
  (match Riskroute.Pareto.knee frontier with
  | Some k ->
    Printf.printf "knee route chosen as primary: %.0f bit-miles, risk %.0f\n\n"
      k.Riskroute.Pareto.bit_miles k.Riskroute.Pareto.risk
  | None -> print_endline "frontier too small for a knee; using RiskRoute optimum\n");

  (* 2. repair paths *)
  (match Riskroute.Backup.plan env ~src ~dst with
  | None -> print_endline "flow is disconnected"
  | Some plan ->
    Printf.printf "fast-reroute plan: %d failure cases, coverage %.0f%%, worst stretch %.2fx\n\n"
      (List.length plan.Riskroute.Backup.repairs)
      (100.0 *. Riskroute.Backup.coverage plan)
      (Riskroute.Backup.worst_stretch plan));

  (* 3. outage stress test *)
  let r = Riskroute.Outagesim.run ~scenario_count:200 ~pair_cap:200 env in
  Printf.printf "network-wide outage simulation (200 hurricane strikes):\n";
  Printf.printf "  static shortest paths survive  %.1f%% of live pairs\n"
    (100.0 *. r.Riskroute.Outagesim.shortest_survival);
  Printf.printf "  static riskroute paths survive %.1f%% of live pairs\n"
    (100.0 *. r.Riskroute.Outagesim.riskroute_survival);
  Printf.printf "  reactive rerouting recovers    %.1f%%\n"
    (100.0 *. r.Riskroute.Outagesim.reactive_survival)
