(** Fig. 9: the ten best additional links (greedy RiskRoute robustness
    suggestions) for the Level3, AT&T and Tinet networks. *)

type suggestion = {
  network : string;
  links : (string * string * float) list;
      (** (endpoint, endpoint, fraction of original bit-risk miles after
          adding this and all previous links) *)
}

val default_spec : Rr_engine.Spec.t
(** Level3, AT&T and Tinet; [k] = 10 links per network, as in the
    paper. *)

val compute : Rr_engine.Context.t -> Rr_engine.Spec.t -> suggestion list
(** Environments and initial all-pairs trees come from the context
    cache. *)

val run : Rr_engine.Context.t -> Format.formatter -> unit
