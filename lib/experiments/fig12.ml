let default_spec storm =
  Rr_engine.Spec.make ~networks:Rr_engine.Spec.Tier1s ~pair_cap:1000
    ~tick_stride:4 ~storm ()

let compute ctx (spec : Rr_engine.Spec.t) =
  let storm = Rr_engine.Spec.storm_exn spec in
  let pair_cap = Rr_engine.Spec.pair_cap ~default:1000 spec in
  let tick_stride = Rr_engine.Spec.tick_stride ~default:4 spec in
  let trees_for env = Rr_engine.Context.dist_trees ctx env in
  List.map
    (fun net ->
      Riskroute.Casestudy.tier1 ~pair_cap ~tick_stride
        ~base:(Rr_engine.Context.env ctx net)
        ~trees_for ~storm net)
    (Rr_engine.Context.nets ctx spec.networks)

let pp_series ppf (series : Riskroute.Casestudy.series list) =
  match series with
  | [] -> ()
  | first :: _ ->
    (* header row of advisory labels, then one row per network *)
    Format.fprintf ppf "%-18s" "Network \\ advisory";
    List.iter
      (fun (p : Riskroute.Casestudy.point) ->
        Format.fprintf ppf " %6d" p.Riskroute.Casestudy.tick)
      first.Riskroute.Casestudy.points;
    Format.fprintf ppf "@.";
    List.iter
      (fun (s : Riskroute.Casestudy.series) ->
        Format.fprintf ppf "%-18s" s.Riskroute.Casestudy.network;
        List.iter
          (fun (p : Riskroute.Casestudy.point) ->
            Format.fprintf ppf " %6.3f" p.Riskroute.Casestudy.risk_reduction)
          s.Riskroute.Casestudy.points;
        Format.fprintf ppf "  (scope %.0f%%)@."
          (100.0 *. s.Riskroute.Casestudy.scope_fraction))
      series

let run ctx ppf =
  Format.fprintf ppf "Fig 12: Tier-1 case studies (risk-reduction ratio per advisory)@.";
  List.iter
    (fun storm ->
      Format.fprintf ppf "-- Hurricane %s --@." storm.Rr_forecast.Track.name;
      pp_series ppf (compute ctx (default_spec storm)))
    Rr_forecast.Track.all
