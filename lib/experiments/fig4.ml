type concentration = {
  kind : Rr_disaster.Event.kind;
  region : string;
  mass_share : float;
}

(* Regions the paper's Fig. 4 narrative names for each event type. *)
let region_of_kind = function
  | Rr_disaster.Event.Fema_hurricane ->
    ( "Gulf & Atlantic coast (lat < 37)",
      Rr_geo.Bbox.make ~min_lat:24.5 ~max_lat:37.0 ~min_lon:(-98.0) ~max_lon:(-66.5) )
  | Rr_disaster.Event.Fema_tornado ->
    ( "central plains & Dixie (lon -103..-85)",
      Rr_geo.Bbox.make ~min_lat:26.0 ~max_lat:45.0 ~min_lon:(-103.0) ~max_lon:(-85.0) )
  | Rr_disaster.Event.Fema_storm ->
    ( "central US (lon -103..-80)",
      Rr_geo.Bbox.make ~min_lat:28.0 ~max_lat:49.0 ~min_lon:(-103.0) ~max_lon:(-80.0) )
  | Rr_disaster.Event.Noaa_earthquake ->
    ( "West (lon < -104)",
      Rr_geo.Bbox.make ~min_lat:24.5 ~max_lat:49.5 ~min_lon:(-125.0) ~max_lon:(-104.0) )
  | Rr_disaster.Event.Noaa_wind ->
    ( "east of the Rockies (lon > -104)",
      Rr_geo.Bbox.make ~min_lat:24.5 ~max_lat:49.5 ~min_lon:(-104.0) ~max_lon:(-66.5) )

let concentrations ctx =
  let riskmap = Rr_engine.Context.riskmap ctx in
  List.map
    (fun kind ->
      let density = Rr_disaster.Riskmap.kind_density riskmap kind in
      let grid = Rr_kde.Grid_density.grid density in
      let region, box = region_of_kind kind in
      let total = Rr_geo.Grid.total grid in
      let share =
        if total > 0.0 then Rr_geo.Grid.mass_in grid box /. total else 0.0
      in
      { kind; region; mass_share = share })
    Rr_disaster.Event.all_kinds

let labels = [ "(A)"; "(B)"; "(C)"; "(D)"; "(E)" ]

let run ctx ppf =
  Format.fprintf ppf
    "Fig 4: bandwidth-optimised kernel density estimates, 1970-2010@.";
  let riskmap = Rr_engine.Context.riskmap ctx in
  List.iteri
    (fun i kind ->
      let density = Rr_disaster.Riskmap.kind_density riskmap kind in
      Format.fprintf ppf "%s %s likelihood (bandwidth %.2f mi):@."
        (List.nth labels i)
        (Rr_disaster.Event.kind_name kind)
        (Rr_kde.Grid_density.bandwidth density);
      Format.fprintf ppf "%s@,"
        (Rr_geo.Grid.render_ascii ~width:72 ~height:16
           (Rr_kde.Grid_density.grid density)))
    Rr_disaster.Event.all_kinds;
  Format.fprintf ppf "Mass concentration checks:@.";
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-18s %5.1f%% of mass in %s@."
        (Rr_disaster.Event.kind_name c.kind)
        (100.0 *. c.mass_share) c.region)
    (concentrations ctx)
