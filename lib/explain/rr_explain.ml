(* Rr_explain — route provenance and attribution (see DESIGN.md 3i).

   Everything here is re-derivation, not re-implementation: per-arc
   terms come from Riskroute.Metric.term (whose products replay
   Env.compute_node_risk bitwise), arc weights replay the exact closures
   Router/route_continental hand to Rr_graph.Query, and route totals are
   the query costs themselves. The headline invariant — the left fold of
   per-arc term weights equals the engine's bit-risk-mile total
   bit-for-bit — therefore holds by construction, and [side.exact]
   asserts it on every explained route rather than trusting the
   argument. *)

let c_requests = Rr_obs.Counter.make "explain.requests"

let c_errors = Rr_obs.Counter.make "explain.errors"

let h_seconds = Rr_obs.Histogram.make "explain.seconds"

let schema_version = 1

type arc = {
  tail : int;
  head : int;
  tail_name : string;
  head_name : string;
  miles : float;  (** [d(tail, head)] *)
  hist : float;  (** [lambda_h * risk_scale * o_h(head)] *)
  fcst : float;  (** [lambda_f * o_f(head)] *)
  weight : float;  (** [miles + kappa * (hist + fcst)] *)
}

type side = {
  label : string;
  path : int list;
  names : string list;
  arcs : arc list;
  bit_miles : float;
  bit_risk_miles : float;
  term_sum : float;
  exact : bool;
  hist_contribution : float;
  fcst_contribution : float;
  runner : string;
  settled : int;
}

type diff = {
  diverted : bool;
  extra_miles : float;
  extra_hops : int;
  risk_avoided : float;
  hist_avoided : float;
  fcst_avoided : float;
  bit_risk_delta : float;
}

type contributor = { node : int; name : string; risk : float }

type t = {
  net : string;
  nodes : int;
  src : int;
  dst : int;
  src_name : string;
  dst_name : string;
  params : Riskroute.Params.t;
  advisory : string option;
  impact_src : float;
  impact_dst : float;
  kappa : float;
  riskroute : side;
  shortest : side;
  diff : diff;
  top_pops : contributor list;
  top_arcs : arc list;
  fingerprints : (string * string) list;
  cache_before : (string * int) list;
  cache_after : (string * int) list;
  domains : int;
}

let bits = Int64.bits_of_float

(* --- side assembly ---

   [term_of a b] returns the decomposed weight of arc (a, b);
   [risk_total] is the engine's bit-risk-mile figure for the path (the
   query cost on the riskroute side, the Metric fold on the shortest
   side). [exact] re-checks the decomposition invariant at runtime. *)
let side_of ~label ~name_of ~kappa ~term_of ~risk_total ~runner ~settled path =
  let arcs =
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (term_of a b :: acc) rest
      | [ _ ] | [] -> List.rev acc
    in
    go [] path
  in
  let term_sum = List.fold_left (fun acc a -> acc +. a.weight) 0.0 arcs in
  {
    label;
    path;
    names = List.map name_of path;
    arcs;
    bit_miles = List.fold_left (fun acc a -> acc +. a.miles) 0.0 arcs;
    bit_risk_miles = risk_total;
    term_sum;
    exact = bits term_sum = bits risk_total;
    hist_contribution =
      List.fold_left (fun acc a -> acc +. (kappa *. a.hist)) 0.0 arcs;
    fcst_contribution =
      List.fold_left (fun acc a -> acc +. (kappa *. a.fcst)) 0.0 arcs;
    runner;
    settled;
  }

let diff_of ~riskroute ~shortest =
  {
    diverted = riskroute.path <> shortest.path;
    extra_miles = riskroute.bit_miles -. shortest.bit_miles;
    extra_hops = List.length riskroute.path - List.length shortest.path;
    risk_avoided =
      shortest.hist_contribution +. shortest.fcst_contribution
      -. (riskroute.hist_contribution +. riskroute.fcst_contribution);
    hist_avoided = shortest.hist_contribution -. riskroute.hist_contribution;
    fcst_avoided = shortest.fcst_contribution -. riskroute.fcst_contribution;
    bit_risk_delta = shortest.bit_risk_miles -. riskroute.bit_risk_miles;
  }

(* Top-k PoPs by summed risk contribution along the riskroute path (the
   source is never charged — Eq. 1 sums over arc heads), and top-k arcs
   by the same figure. Ties break on node/arc order for determinism. *)
let top_pops ~top_k ~kappa (side : side) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let r = kappa *. (a.hist +. a.fcst) in
      let prev =
        match Hashtbl.find_opt tbl a.head with
        | Some (_, r) -> r
        | None -> 0.0
      in
      Hashtbl.replace tbl a.head (a.head_name, prev +. r))
    side.arcs;
  let all =
    Hashtbl.fold (fun node (name, risk) acc -> { node; name; risk } :: acc) tbl []
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare b.risk a.risk with 0 -> compare a.node b.node | c -> c)
      all
  in
  List.filteri (fun i _ -> i < top_k) sorted

let top_arcs ~top_k ~kappa (side : side) =
  let risk a = kappa *. (a.hist +. a.fcst) in
  let sorted =
    List.sort
      (fun a b ->
        match compare (risk b) (risk a) with
        | 0 -> compare (a.tail, a.head) (b.tail, b.head)
        | c -> c)
      side.arcs
  in
  List.filteri (fun i _ -> i < top_k) sorted

let default_top_k = 5

let with_observed f =
  let tel = Rr_obs.enabled () in
  let t0 = if tel then Rr_obs.Clock.monotonic () else 0.0 in
  Rr_obs.Counter.incr c_requests;
  let r = Rr_obs.with_span "explain.route" f in
  if tel then Rr_obs.Histogram.observe h_seconds (Rr_obs.Clock.monotonic () -. t0);
  (match r with Error _ -> Rr_obs.Counter.incr c_errors | Ok _ -> ());
  r

(* --- corpus networks: the Env pipeline --- *)

let explain ?params ?advisory ?(top_k = default_top_k) ctx net ~src ~dst =
  with_observed @@ fun () ->
  let n = Rr_topology.Net.pop_count net in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    Error
      (Printf.sprintf "PoP id out of range for %s (want 0..%d)"
         net.Rr_topology.Net.name (n - 1))
  else begin
    let cache_before = Rr_engine.Context.stats_fields ctx in
    let env = Rr_engine.Context.env ?params ?advisory ctx net in
    let q = Rr_engine.Context.query ctx env in
    let kappa = Riskroute.Env.kappa env src dst in
    let miles = Riskroute.Env.arc_miles env in
    let risk = Riskroute.Env.arc_risk env in
    (* The exact weight closures Router.riskroute / Router.shortest use. *)
    let w_miles k = Array.unsafe_get miles k in
    let w_risk k =
      Array.unsafe_get miles k +. (kappa *. Array.unsafe_get risk k)
    in
    let name_of i = (Rr_topology.Net.pop net i).Rr_topology.Pop.name in
    let term_of a b =
      let t = Riskroute.Metric.term env a b in
      {
        tail = a;
        head = b;
        tail_name = name_of a;
        head_name = name_of b;
        miles = t.Riskroute.Metric.miles;
        hist = t.Riskroute.Metric.hist;
        fcst = t.Riskroute.Metric.fcst;
        weight = Riskroute.Metric.term_weight ~kappa t;
      }
    in
    match
      ( Rr_graph.Query.run_stats q ~weight:w_risk ~src ~dst,
        Rr_graph.Query.run_stats q ~weight:w_miles ~src ~dst )
    with
    | (None, _, _), _ | _, (None, _, _) ->
      Error
        (Printf.sprintf "%s and %s are disconnected in %s" (name_of src)
           (name_of dst) net.Rr_topology.Net.name)
    | ( (Some (rr_cost, rr_path), rr_runner, rr_settled),
        (Some (_sh_cost, sh_path), sh_runner, sh_settled) ) ->
      let riskroute =
        side_of ~label:"riskroute" ~name_of ~kappa ~term_of
          ~risk_total:rr_cost
          ~runner:(Rr_graph.Query.runner_name rr_runner)
          ~settled:rr_settled rr_path
      in
      let shortest =
        side_of ~label:"shortest" ~name_of ~kappa ~term_of
          ~risk_total:(Riskroute.Metric.bit_risk_miles_kappa env ~kappa sh_path)
          ~runner:(Rr_graph.Query.runner_name sh_runner)
          ~settled:sh_settled sh_path
      in
      let impact = Riskroute.Env.impact env in
      let params = Riskroute.Env.params env in
      Ok
        {
          net = net.Rr_topology.Net.name;
          nodes = n;
          src;
          dst;
          src_name = name_of src;
          dst_name = name_of dst;
          params;
          advisory =
            Option.map
              (fun (a : Rr_forecast.Advisory.t) ->
                Printf.sprintf "%s advisory %d" a.Rr_forecast.Advisory.storm
                  a.Rr_forecast.Advisory.number)
              advisory;
          impact_src = impact.(src);
          impact_dst = impact.(dst);
          kappa;
          riskroute;
          shortest;
          diff = diff_of ~riskroute ~shortest;
          top_pops = top_pops ~top_k ~kappa riskroute;
          top_arcs = top_arcs ~top_k ~kappa riskroute;
          fingerprints =
            [
              ("params", Rr_engine.Fingerprint.params params);
              ("advisory", Rr_engine.Fingerprint.advisory advisory);
              ("geometry", Rr_engine.Fingerprint.env_geometry env);
              ("risk", Rr_engine.Fingerprint.env_risk env);
            ];
          cache_before;
          cache_after = Rr_engine.Context.stats_fields ctx;
          domains = Rr_util.Parallel.domain_count ();
        }
  end

(* --- continental nets: the Env-free CSR pipeline ---

   Mirrors route_continental in the CLI: node risk is
   [lambda_h * risk_scale * pop_risk] (no forecast surface at this
   scale, so the fcst term is identically 0 and [hist +. 0.0] preserves
   the bit pattern — risks are non-negative), impact fractions come from
   the census assignment, and weights go through the shared net_query
   facade. *)
let explain_continental ?params ?(top_k = default_top_k) ctx ~pops ~src ~dst =
  with_observed @@ fun () ->
  let params = Option.value params ~default:Riskroute.Params.default in
  let cache_before = Rr_engine.Context.stats_fields ctx in
  let net = Rr_engine.Context.continental ctx ~pops in
  let n = Rr_topology.Net.pop_count net in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    Error
      (Printf.sprintf "PoP id out of range for continental-%d (want 0..%d)"
         pops (n - 1))
  else begin
    let q = Rr_engine.Context.net_query ctx net in
    let miles = Rr_graph.Query.arc_miles q in
    let tgt = Rr_graph.Query.arc_tgt q in
    let off = Rr_graph.Query.arc_off q in
    let node_risk =
      Array.map
        (fun r ->
          params.Riskroute.Params.lambda_h
          *. params.Riskroute.Params.risk_scale *. r)
        (Rr_disaster.Riskmap.pop_risks (Rr_engine.Context.riskmap ctx) net)
    in
    let impact = Rr_topology.Net.population_fractions net in
    let kappa = impact.(src) +. impact.(dst) in
    let w_miles k = Array.unsafe_get miles k in
    let w_risk k =
      Array.unsafe_get miles k
      +. (kappa *. Array.unsafe_get node_risk (Array.unsafe_get tgt k))
    in
    let name_of i = (Rr_topology.Net.pop net i).Rr_topology.Pop.name in
    let term_of a b =
      let rec scan k =
        if k >= off.(a + 1) then
          invalid_arg "Rr_explain: path arc missing from CSR"
        else if tgt.(k) = b then k
        else scan (k + 1)
      in
      let k = scan off.(a) in
      let hist = node_risk.(b) in
      {
        tail = a;
        head = b;
        tail_name = name_of a;
        head_name = name_of b;
        miles = miles.(k);
        hist;
        fcst = 0.0;
        weight = miles.(k) +. (kappa *. (hist +. 0.0));
      }
    in
    Rr_graph.Query.prepare q;
    match
      ( Rr_graph.Query.run_stats q ~weight:w_risk ~src ~dst,
        Rr_graph.Query.run_stats q ~weight:w_miles ~src ~dst )
    with
    | (None, _, _), _ | _, (None, _, _) ->
      Error
        (Printf.sprintf "%s and %s are disconnected in continental-%d"
           (name_of src) (name_of dst) pops)
    | ( (Some (rr_cost, rr_path), rr_runner, rr_settled),
        (Some (_, sh_path), sh_runner, sh_settled) ) ->
      let riskroute =
        side_of ~label:"riskroute" ~name_of ~kappa ~term_of
          ~risk_total:rr_cost
          ~runner:(Rr_graph.Query.runner_name rr_runner)
          ~settled:rr_settled rr_path
      in
      let shortest =
        (* No Env at this scale, so the shortest path's bit-risk miles
           *is* the term fold — the same left fold of the same w_risk
           values the query would have accumulated. *)
        let arcs_fold path =
          let rec go acc = function
            | a :: (b :: _ as rest) -> go (acc +. (term_of a b).weight) rest
            | [ _ ] | [] -> acc
          in
          go 0.0 path
        in
        side_of ~label:"shortest" ~name_of ~kappa ~term_of
          ~risk_total:(arcs_fold sh_path)
          ~runner:(Rr_graph.Query.runner_name sh_runner)
          ~settled:sh_settled sh_path
      in
      Ok
        {
          net = Printf.sprintf "continental-%d" pops;
          nodes = n;
          src;
          dst;
          src_name = name_of src;
          dst_name = name_of dst;
          params;
          advisory = None;
          impact_src = impact.(src);
          impact_dst = impact.(dst);
          kappa;
          riskroute;
          shortest;
          diff = diff_of ~riskroute ~shortest;
          top_pops = top_pops ~top_k ~kappa riskroute;
          top_arcs = top_arcs ~top_k ~kappa riskroute;
          fingerprints =
            [
              ("params", Rr_engine.Fingerprint.params params);
              ("advisory", Rr_engine.Fingerprint.advisory None);
              ( "geometry",
                Rr_engine.Fingerprint.geometry
                  ~n:(Rr_graph.Query.node_count q)
                  ~off ~tgt ~miles );
            ];
          cache_before;
          cache_after = Rr_engine.Context.stats_fields ctx;
          domains = Rr_util.Parallel.domain_count ();
        }
  end

(* --- name-based entry point (CLI, /explain) --- *)

let continental_pops name =
  let prefix = "continental-" in
  let plen = String.length prefix in
  if
    String.length name > plen
    && String.lowercase_ascii (String.sub name 0 plen) = prefix
  then
    match
      int_of_string_opt (String.sub name plen (String.length name - plen))
    with
    | Some pops when pops > 0 -> Some pops
    | Some _ | None -> None
  else None

let resolve_pop net ~what name =
  match Rr_topology.Net.find_pop net ~city:name with
  | Some i -> Ok i
  | None -> (
    (* Fall back to a numeric PoP id: continental names are synthetic
       enough that scripts prefer ids. *)
    match int_of_string_opt (String.trim name) with
    | Some i when i >= 0 && i < Rr_topology.Net.pop_count net -> Ok i
    | Some _ | None ->
      Error
        (Printf.sprintf "no %s PoP %S in %s" what name
           net.Rr_topology.Net.name))

let explain_named ?lambda_h ?storm ?(tick = 40) ?top_k ctx ~net ~src ~dst =
  let params =
    Option.map
      (fun l -> Riskroute.Params.with_lambda_h l Riskroute.Params.default)
      lambda_h
  in
  let resolve_advisory storm =
    match Rr_forecast.Track.find storm with
    | None ->
      Error (Printf.sprintf "unknown storm %S (irene|katrina|sandy)" storm)
    | Some s ->
      let advisories = Array.of_list (Rr_forecast.Track.advisories s) in
      if tick < 0 || tick >= Array.length advisories then
        Error
          (Printf.sprintf "advisory tick %d out of range for %s (0..%d)" tick
             storm
             (Array.length advisories - 1))
      else Ok advisories.(tick)
  in
  match continental_pops net with
  | Some pops ->
    if storm <> None then
      Error
        (Printf.sprintf
           "storm overlays are not supported on continental-%d (no forecast \
            surface at this scale)"
           pops)
    else begin
      let topology = Rr_engine.Context.continental ctx ~pops in
      match
        ( resolve_pop topology ~what:"source" src,
          resolve_pop topology ~what:"destination" dst )
      with
      | Ok src, Ok dst ->
        explain_continental ?params ?top_k ctx ~pops ~src ~dst
      | Error e, _ | _, Error e ->
        Rr_obs.Counter.incr c_errors;
        Error e
    end
  | None -> (
    match Rr_engine.Context.net ctx net with
    | None ->
      Rr_obs.Counter.incr c_errors;
      Error (Printf.sprintf "unknown network %S; try `riskroute networks`" net)
    | Some topology -> (
      let advisory =
        match storm with
        | None -> Ok None
        | Some s -> Result.map Option.some (resolve_advisory s)
      in
      match
        ( advisory,
          resolve_pop topology ~what:"source" src,
          resolve_pop topology ~what:"destination" dst )
      with
      | Ok advisory, Ok src, Ok dst ->
        explain ?params ?advisory ?top_k ctx topology ~src ~dst
      | Error e, _, _ | _, Error e, _ | _, _, Error e ->
        Rr_obs.Counter.incr c_errors;
        Error e))

(* --- /explain provider --- *)

let of_query ctx params =
  let find k = Option.map snd (List.find_opt (fun (k', _) -> k' = k) params) in
  let required k =
    match find k with
    | Some v when String.trim v <> "" -> Ok (String.trim v)
    | Some _ | None ->
      Error (Printf.sprintf "missing query parameter %S (want ?net=..&src=..&dst=..)" k)
  in
  let optional_float k =
    match find k with
    | None -> Ok None
    | Some v -> (
      match float_of_string_opt (String.trim v) with
      | Some f when Float.is_finite f -> Ok (Some f)
      | Some _ | None ->
        Error (Printf.sprintf "invalid query parameter %s=%S (want a number)" k v))
  in
  let optional_int k =
    match find k with
    | None -> Ok None
    | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some i -> Ok (Some i)
      | None ->
        Error
          (Printf.sprintf "invalid query parameter %s=%S (want an integer)" k v))
  in
  match
    (required "net", required "src", required "dst", optional_float "lambda_h",
     optional_int "tick")
  with
  | Ok net, Ok src, Ok dst, Ok lambda_h, Ok tick ->
    let tick = Option.value tick ~default:40 in
    explain_named ?lambda_h ?storm:(find "storm") ~tick ctx ~net ~src ~dst
  | Error e, _, _, _, _
  | _, Error e, _, _, _
  | _, _, Error e, _, _
  | _, _, _, Error e, _
  | _, _, _, _, Error e ->
    Rr_obs.Counter.incr c_errors;
    Error e

(* --- JSON rendering ---

   %.17g round-trips every finite double exactly, so a consumer summing
   the per-arc terms reproduces the OCaml fold bit-for-bit (CI does
   exactly that in python). *)

let fl f = if Float.is_finite f then Printf.sprintf "%.17g" f else "0.0"

let str b s =
  Buffer.add_char b '"';
  Rr_obs.json_escape b s;
  Buffer.add_char b '"'

let arc_json b a =
  Buffer.add_string b
    (Printf.sprintf "{\"tail\": %d, \"head\": %d, \"tail_name\": " a.tail
       a.head);
  str b a.tail_name;
  Buffer.add_string b ", \"head_name\": ";
  str b a.head_name;
  Buffer.add_string b
    (Printf.sprintf ", \"miles\": %s, \"hist\": %s, \"fcst\": %s, \"weight\": %s}"
       (fl a.miles) (fl a.hist) (fl a.fcst) (fl a.weight))

let side_json b s =
  Buffer.add_string b "{\n      \"path\": [";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (string_of_int v))
    s.path;
  Buffer.add_string b "],\n      \"pops\": [";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_string b ", ";
      str b name)
    s.names;
  Buffer.add_string b
    (Printf.sprintf
       "],\n\
       \      \"bit_miles\": %s,\n\
       \      \"bit_risk_miles\": %s,\n\
       \      \"term_sum\": %s,\n\
       \      \"decomposition_exact\": %b,\n\
       \      \"hist_contribution\": %s,\n\
       \      \"fcst_contribution\": %s,\n\
       \      \"runner\": \"%s\",\n\
       \      \"settled\": %d,\n\
       \      \"arcs\": [" (fl s.bit_miles) (fl s.bit_risk_miles)
       (fl s.term_sum) s.exact (fl s.hist_contribution)
       (fl s.fcst_contribution) s.runner s.settled);
  List.iteri
    (fun i a ->
      Buffer.add_string b (if i = 0 then "\n        " else ",\n        ");
      arc_json b a)
    s.arcs;
  Buffer.add_string b (if s.arcs = [] then "]\n    }" else "\n      ]\n    }")

let to_json t =
  let b = Buffer.create 4096 in
  let add = Buffer.add_string b in
  add (Printf.sprintf "{\n  \"schema\": %d,\n  \"net\": " schema_version);
  str b t.net;
  add (Printf.sprintf ",\n  \"nodes\": %d,\n  \"src\": {\"id\": %d, \"name\": "
         t.nodes t.src);
  str b t.src_name;
  add (Printf.sprintf ", \"impact\": %s},\n  \"dst\": {\"id\": %d, \"name\": "
         (fl t.impact_src) t.dst);
  str b t.dst_name;
  add (Printf.sprintf ", \"impact\": %s},\n  \"kappa\": %s,\n" (fl t.impact_dst)
         (fl t.kappa));
  let p = t.params in
  add
    (Printf.sprintf
       "  \"params\": {\"lambda_h\": %s, \"lambda_f\": %s, \"risk_scale\": \
        %s, \"rho_tropical\": %s, \"rho_hurricane\": %s},\n"
       (fl p.Riskroute.Params.lambda_h) (fl p.Riskroute.Params.lambda_f)
       (fl p.Riskroute.Params.risk_scale)
       (fl p.Riskroute.Params.rho_tropical)
       (fl p.Riskroute.Params.rho_hurricane));
  (match t.advisory with
  | None -> add "  \"advisory\": null,\n"
  | Some a ->
    add "  \"advisory\": ";
    str b a;
    add ",\n");
  add "  \"riskroute\": ";
  side_json b t.riskroute;
  add ",\n  \"shortest\": ";
  side_json b t.shortest;
  add
    (Printf.sprintf
       ",\n\
       \  \"diff\": {\"diverted\": %b, \"extra_miles\": %s, \"extra_hops\": \
        %d, \"risk_avoided\": %s, \"hist_avoided\": %s, \"fcst_avoided\": \
        %s, \"bit_risk_delta\": %s},\n"
       t.diff.diverted (fl t.diff.extra_miles) t.diff.extra_hops
       (fl t.diff.risk_avoided) (fl t.diff.hist_avoided)
       (fl t.diff.fcst_avoided) (fl t.diff.bit_risk_delta));
  add "  \"top_pops\": [";
  List.iteri
    (fun i c ->
      if i > 0 then add ", ";
      add (Printf.sprintf "{\"id\": %d, \"name\": " c.node);
      str b c.name;
      add (Printf.sprintf ", \"risk\": %s}" (fl c.risk)))
    t.top_pops;
  add "],\n  \"top_arcs\": [";
  List.iteri
    (fun i a ->
      if i > 0 then add ", ";
      arc_json b a)
    t.top_arcs;
  add "],\n  \"provenance\": {\n    \"fingerprints\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then add ", ";
      str b k;
      add ": ";
      str b v)
    t.fingerprints;
  add "},\n    \"cache_before\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then add ", ";
      str b k;
      add (Printf.sprintf ": %d" v))
    t.cache_before;
  add "},\n    \"cache_after\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then add ", ";
      str b k;
      add (Printf.sprintf ": %d" v))
    t.cache_after;
  add (Printf.sprintf "},\n    \"domains\": %d\n  }\n}\n" t.domains);
  Buffer.contents b

let of_query ctx params = Result.map to_json (of_query ctx params)

(* --- human-readable rendering --- *)

let cache_delta t name =
  let get l = Option.value (List.assoc_opt name l) ~default:0 in
  get t.cache_after - get t.cache_before

let pp ppf t =
  let open Format in
  fprintf ppf "route provenance: %s  %s (%d) -> %s (%d)@." t.net t.src_name
    t.src t.dst_name t.dst;
  fprintf ppf
    "params: lambda_h=%g lambda_f=%g risk_scale=%g; advisory: %s@."
    t.params.Riskroute.Params.lambda_h t.params.Riskroute.Params.lambda_f
    t.params.Riskroute.Params.risk_scale
    (Option.value t.advisory ~default:"none");
  fprintf ppf "kappa = c_i + c_j = %.6f + %.6f = %.6f@.@." t.impact_src
    t.impact_dst t.kappa;
  let side s =
    fprintf ppf
      "%s: %.0f bit-miles, %.0f bit-risk-miles [%s, %d settled; \
       decomposition %s]@."
      s.label s.bit_miles s.bit_risk_miles s.runner s.settled
      (if s.exact then "exact" else "INEXACT");
    fprintf ppf "  %-44s %10s %12s %12s %12s@." "arc" "miles" "k*hist"
      "k*fcst" "weight";
    List.iter
      (fun a ->
        fprintf ppf "  %-44s %10.1f %12.1f %12.1f %12.1f@."
          (a.tail_name ^ " -> " ^ a.head_name)
          a.miles (t.kappa *. a.hist) (t.kappa *. a.fcst) a.weight)
      s.arcs;
    fprintf ppf "  %-44s %10.1f %12.1f %12.1f %12.1f@.@." "total" s.bit_miles
      s.hist_contribution s.fcst_contribution s.term_sum
  in
  side t.riskroute;
  side t.shortest;
  if t.diff.diverted then
    fprintf ppf
      "risk detour: +%.1f bit-miles (%+d hops) buys %.1f lower risk \
       (historical %.1f, forecast %.1f) => bit-risk miles down %.1f@."
      t.diff.extra_miles t.diff.extra_hops t.diff.risk_avoided
      t.diff.hist_avoided t.diff.fcst_avoided t.diff.bit_risk_delta
  else fprintf ppf "no divergence: riskroute follows the shortest path@.";
  if t.top_pops <> [] then begin
    fprintf ppf "top risk PoPs on the riskroute path:@.";
    List.iteri
      (fun i c ->
        fprintf ppf "  %d. %-40s k*risk %12.1f@." (i + 1) c.name c.risk)
      t.top_pops
  end;
  if t.top_arcs <> [] then begin
    fprintf ppf "top risk arcs on the riskroute path:@.";
    List.iteri
      (fun i a ->
        fprintf ppf "  %d. %-40s k*risk %12.1f@." (i + 1)
          (a.tail_name ^ " -> " ^ a.head_name)
          (t.kappa *. (a.hist +. a.fcst)))
      t.top_arcs
  end;
  fprintf ppf "provenance:@.";
  List.iter (fun (k, v) -> fprintf ppf "  %-10s %s@." k v) t.fingerprints;
  fprintf ppf
    "  caches     env %s, trees %s (+%d hit / +%d miss), occupancy %d/%d@."
    (if cache_delta t "env.misses" > 0 then "miss" else "hit")
    (if cache_delta t "tree.misses" > 0 then "miss" else "hit")
    (cache_delta t "tree.hits")
    (cache_delta t "tree.misses")
    (Option.value (List.assoc_opt "tree.cache_length" t.cache_after) ~default:0)
    (Option.value
       (List.assoc_opt "tree.cache_capacity" t.cache_after)
       ~default:0);
  fprintf ppf "  domains    %d@." t.domains
