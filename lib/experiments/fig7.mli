(** Fig. 7: RiskRoute versus shortest path between the Houston, TX and
    Boston, MA PoPs of the Level3 network, at lambda_h = 1e4 and 1e5. *)

type comparison = {
  lambda_h : float;
  shortest : Riskroute.Router.route;
  riskroute : Riskroute.Router.route;
}

val default_spec : Rr_engine.Spec.t
(** The Level3 network. *)

val compute : Rr_engine.Context.t -> Rr_engine.Spec.t -> comparison list
(** Raises [Failure] if the selected map lacks Houston or Boston PoPs or
    they are disconnected. Environments come from the context cache. *)

val run : Rr_engine.Context.t -> Format.formatter -> unit
