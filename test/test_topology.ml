open Rr_topology

let rng () = Rr_util.Prng.create 2024L

let mesh_spec =
  {
    Builder.name = "TestMesh";
    tier = Net.Tier1;
    states = [];
    pop_count = 30;
    style = Builder.Mesh;
    mesh_fraction = 0.4;
    hub_links = 3;
  }

let ring_spec =
  { mesh_spec with Builder.name = "TestRing"; style = Builder.Ring; pop_count = 12 }

(* --- Builder --- *)

let test_builder_pop_count () =
  let net = Builder.build ~rng:(rng ()) mesh_spec in
  Alcotest.(check int) "exact pop count" 30 (Net.pop_count net)

let test_builder_connected () =
  let net = Builder.build ~rng:(rng ()) mesh_spec in
  Alcotest.(check bool) "mesh connected" true (Net.is_connected net);
  let ring = Builder.build ~rng:(rng ()) ring_spec in
  Alcotest.(check bool) "ring connected" true (Net.is_connected ring)

let test_builder_ring_degree () =
  let ring =
    Builder.build ~rng:(rng ())
      { ring_spec with Builder.mesh_fraction = 0.0; hub_links = 0 }
  in
  (* a pure ring: every node has degree exactly 2 *)
  for v = 0 to Net.pop_count ring - 1 do
    Alcotest.(check int) "ring degree" 2 (Rr_graph.Graph.degree ring.Net.graph v)
  done

let test_builder_dense_ids () =
  let net = Builder.build ~rng:(rng ()) mesh_spec in
  Array.iteri
    (fun i (p : Pop.t) -> Alcotest.(check int) "dense" i p.Pop.id)
    net.Net.pops

let test_builder_state_restriction () =
  let net =
    Builder.build ~rng:(rng ())
      { mesh_spec with Builder.states = [ "CA" ]; pop_count = 10 }
  in
  Array.iter
    (fun (p : Pop.t) -> Alcotest.(check string) "in CA" "CA" p.Pop.state)
    net.Net.pops

let test_builder_metro_overflow () =
  (* more PoPs than cities in the pool: metro duplicates appear *)
  let net =
    Builder.build ~rng:(rng ())
      { mesh_spec with Builder.states = [ "RI" ]; pop_count = 4 }
  in
  Alcotest.(check int) "all four built" 4 (Net.pop_count net);
  let metro2 =
    Array.exists
      (fun (p : Pop.t) ->
        String.length p.Pop.name > 3
        && String.sub p.Pop.name (String.length p.Pop.name - 3) 3 = "(2)")
      net.Net.pops
  in
  Alcotest.(check bool) "secondary metro PoP present" true metro2

let test_builder_deterministic () =
  let a = Builder.build ~rng:(rng ()) mesh_spec in
  let b = Builder.build ~rng:(rng ()) mesh_spec in
  Alcotest.(check int) "same links" (Net.link_count a) (Net.link_count b);
  Alcotest.(check bool) "same pops" true
    (Array.for_all2
       (fun (p : Pop.t) (q : Pop.t) -> String.equal p.Pop.name q.Pop.name)
       a.Net.pops b.Net.pops)

let test_builder_validation () =
  Alcotest.check_raises "pop_count < 1"
    (Invalid_argument "Builder.build: pop_count < 1") (fun () ->
      ignore (Builder.build ~rng:(rng ()) { mesh_spec with Builder.pop_count = 0 }));
  Alcotest.check_raises "empty pool"
    (Invalid_argument "Builder.build: empty city pool") (fun () ->
      ignore
        (Builder.build ~rng:(rng ()) { mesh_spec with Builder.states = [ "ZZ" ] }))

(* --- continental builder --- *)

let continental_spec =
  {
    (Builder.continental_defaults ~name:"TestContinental" ~pop_count:1200) with
    Builder.region_size = 150;
  }

let test_continental_pop_count_and_connected () =
  let net = Builder.continental ~rng:(rng ()) continental_spec in
  Alcotest.(check int) "exact pop count" 1200 (Net.pop_count net);
  Alcotest.(check bool) "connected" true (Net.is_connected net)

let test_continental_deterministic () =
  let a = Builder.continental ~rng:(rng ()) continental_spec in
  let b = Builder.continental ~rng:(rng ()) continental_spec in
  Alcotest.(check int) "same links" (Net.link_count a) (Net.link_count b);
  Alcotest.(check bool) "same pops" true
    (Array.for_all2
       (fun (p : Pop.t) (q : Pop.t) ->
         String.equal p.Pop.name q.Pop.name
         && p.Pop.coord.Rr_geo.Coord.lat = q.Pop.coord.Rr_geo.Coord.lat)
       a.Net.pops b.Net.pops)

let test_continental_population_weighted () =
  (* The PoP budget is allocated population-proportionally over grid
     cells, so California must end up with far more PoPs than Wyoming. *)
  let net = Builder.continental ~rng:(rng ()) continental_spec in
  let count state =
    Array.fold_left
      (fun acc (p : Pop.t) -> if p.Pop.state = state then acc + 1 else acc)
      0 net.Net.pops
  in
  Alcotest.(check bool) "CA dwarfs WY" true (count "CA" > 10 * max 1 (count "WY"))

let test_continental_validation () =
  Alcotest.check_raises "pop_count < 1"
    (Invalid_argument "Builder.continental: pop_count < 1") (fun () ->
      ignore
        (Builder.continental ~rng:(rng ())
           { continental_spec with Builder.pop_count = 0 }))

let test_population_fractions () =
  let net = Builder.continental ~rng:(rng ()) continental_spec in
  let f = Net.population_fractions net in
  Alcotest.(check int) "one per pop" (Net.pop_count net) (Array.length f);
  Alcotest.(check bool) "non-negative" true (Array.for_all (fun x -> x >= 0.0) f);
  let sum = Array.fold_left ( +. ) 0.0 f in
  Alcotest.(check bool) "normalised" true (Float.abs (sum -. 1.0) < 1e-9)

(* --- Net --- *)

let test_net_accessors () =
  let net = Builder.build ~rng:(rng ()) mesh_spec in
  Alcotest.(check bool) "footprint positive" true (Net.footprint_miles net > 100.0);
  Alcotest.(check bool) "avg outdegree sane" true
    (Net.average_outdegree net >= 2.0 && Net.average_outdegree net < 10.0);
  Alcotest.check_raises "pop out of range" (Invalid_argument "Net.pop: out of range")
    (fun () -> ignore (Net.pop net 999))

let test_net_find_pop () =
  let net = Builder.build ~rng:(rng ()) mesh_spec in
  let p = Net.pop net 0 in
  (match Net.find_pop net ~city:p.Pop.city with
  | Some i -> Alcotest.(check string) "found same city" p.Pop.city (Net.pop net i).Pop.city
  | None -> Alcotest.fail "must find existing city");
  Alcotest.(check bool) "missing city" true (Net.find_pop net ~city:"Gotham" = None)

let test_net_with_extra_links () =
  let net = Builder.build ~rng:(rng ()) ring_spec in
  let non_edge =
    let rec find u v =
      if Rr_graph.Graph.has_edge net.Net.graph u v then
        if v + 1 < Net.pop_count net then find u (v + 1) else find (u + 1) (u + 2)
      else (u, v)
    in
    find 0 1
  in
  let upgraded = Net.with_extra_links net [ non_edge ] in
  Alcotest.(check int) "one more link" (Net.link_count net + 1) (Net.link_count upgraded);
  Alcotest.(check int) "original untouched"
    (Net.link_count net)
    (Rr_graph.Graph.edge_count net.Net.graph)

let test_net_link_miles () =
  let net = Builder.build ~rng:(rng ()) mesh_spec in
  Alcotest.(check (float 1e-9)) "self distance" 0.0 (Net.link_miles net 3 3);
  Alcotest.(check bool) "symmetric" true
    (Float.abs (Net.link_miles net 0 1 -. Net.link_miles net 1 0) < 1e-9)

(* --- Zoo --- *)

let test_zoo_totals () =
  let zoo = Zoo.shared () in
  Alcotest.(check int) "354 Tier-1 PoPs" 354 (Zoo.tier1_pop_total zoo);
  Alcotest.(check int) "455 regional PoPs" 455 (Zoo.regional_pop_total zoo);
  Alcotest.(check int) "7 Tier-1s" 7 (List.length zoo.Zoo.tier1s);
  Alcotest.(check int) "16 regionals" 16 (List.length zoo.Zoo.regionals)

let test_zoo_all_connected () =
  let zoo = Zoo.shared () in
  List.iter
    (fun net ->
      Alcotest.(check bool) (net.Net.name ^ " connected") true (Net.is_connected net))
    (Zoo.all_nets zoo)

let test_zoo_level3_largest () =
  let zoo = Zoo.shared () in
  match Zoo.find zoo "Level3" with
  | Some net -> Alcotest.(check int) "233 PoPs" 233 (Net.pop_count net)
  | None -> Alcotest.fail "Level3 missing"

let test_zoo_find_case_insensitive () =
  let zoo = Zoo.shared () in
  Alcotest.(check bool) "lower case" true (Zoo.find zoo "level3" <> None);
  Alcotest.(check bool) "unknown" true (Zoo.find zoo "Comcast" = None)

let test_zoo_deterministic () =
  let a = Zoo.create ~seed:7L () in
  let b = Zoo.create ~seed:7L () in
  List.iter2
    (fun x y -> Alcotest.(check int) "links equal" (Net.link_count x) (Net.link_count y))
    (Zoo.all_nets a) (Zoo.all_nets b);
  let c = Zoo.create ~seed:8L () in
  let links zoo = List.map Net.link_count (Zoo.all_nets zoo) in
  Alcotest.(check bool) "different seed differs" true (links a <> links c)

let test_zoo_regional_states () =
  let zoo = Zoo.shared () in
  List.iter
    (fun net ->
      Alcotest.(check bool)
        (net.Net.name ^ " stays in its states")
        true
        (Array.for_all
           (fun (p : Pop.t) -> List.mem p.Pop.state net.Net.states)
           net.Net.pops))
    zoo.Zoo.regionals

(* --- Colocation & Peering --- *)

let test_colocation () =
  let zoo = Zoo.shared () in
  let level3 = Option.get (Zoo.find zoo "Level3") in
  let att = Option.get (Zoo.find zoo "AT&T") in
  Alcotest.(check bool) "two national nets co-locate" true
    (Colocation.co_located level3 att);
  let pairs = Colocation.pairs level3 att in
  List.iter
    (fun (i, j) ->
      let d =
        Rr_geo.Distance.miles (Net.pop level3 i).Pop.coord (Net.pop att j).Pop.coord
      in
      Alcotest.(check bool) "within threshold" true
        (d <= Colocation.default_threshold_miles))
    pairs

let test_shared_cities () =
  let zoo = Zoo.shared () in
  let level3 = Option.get (Zoo.find zoo "Level3") in
  let att = Option.get (Zoo.find zoo "AT&T") in
  Alcotest.(check bool) "share big metros" true
    (List.length (Colocation.shared_cities level3 att) > 5)

let test_peering_structure () =
  let zoo = Zoo.shared () in
  let peering = zoo.Zoo.peering in
  Alcotest.(check int) "23 networks" 23 (Peering.net_count peering);
  (* tier-1 full mesh: 7 choose 2 = 21 edges among indices 0..6 *)
  let tier1_edges =
    List.filter (fun (a, b) -> a < 7 && b < 7) peering.Peering.edges
  in
  Alcotest.(check int) "tier-1 clique" 21 (List.length tier1_edges);
  (* every regional peers with at least one tier-1 *)
  for r = 7 to 22 do
    let peers = Peering.peers peering r in
    Alcotest.(check bool) "regional multihomed" true
      (List.exists (fun p -> p < 7) peers)
  done

let test_peering_lookup () =
  let zoo = Zoo.shared () in
  let peering = zoo.Zoo.peering in
  (match Peering.index_of peering "Level3" with
  | Some 0 -> ()
  | Some i -> Alcotest.failf "Level3 at unexpected index %d" i
  | None -> Alcotest.fail "Level3 missing");
  Alcotest.(check bool) "are_peers symmetric" true
    (Peering.are_peers peering 0 1 = Peering.are_peers peering 1 0);
  Alcotest.(check int) "degree matches peers" (List.length (Peering.peers peering 0))
    (Peering.degree peering 0)

let () =
  Alcotest.run "rr_topology"
    [
      ( "builder",
        [
          Alcotest.test_case "pop count" `Quick test_builder_pop_count;
          Alcotest.test_case "connected" `Quick test_builder_connected;
          Alcotest.test_case "pure ring degree" `Quick test_builder_ring_degree;
          Alcotest.test_case "dense ids" `Quick test_builder_dense_ids;
          Alcotest.test_case "state restriction" `Quick test_builder_state_restriction;
          Alcotest.test_case "metro overflow" `Quick test_builder_metro_overflow;
          Alcotest.test_case "deterministic" `Quick test_builder_deterministic;
          Alcotest.test_case "validation" `Quick test_builder_validation;
        ] );
      ( "continental",
        [
          Alcotest.test_case "pop count and connected" `Quick
            test_continental_pop_count_and_connected;
          Alcotest.test_case "deterministic" `Quick
            test_continental_deterministic;
          Alcotest.test_case "population weighted" `Quick
            test_continental_population_weighted;
          Alcotest.test_case "validation" `Quick test_continental_validation;
          Alcotest.test_case "population fractions" `Quick
            test_population_fractions;
        ] );
      ( "net",
        [
          Alcotest.test_case "accessors" `Quick test_net_accessors;
          Alcotest.test_case "find_pop" `Quick test_net_find_pop;
          Alcotest.test_case "with_extra_links" `Quick test_net_with_extra_links;
          Alcotest.test_case "link_miles" `Quick test_net_link_miles;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "paper totals" `Quick test_zoo_totals;
          Alcotest.test_case "all connected" `Quick test_zoo_all_connected;
          Alcotest.test_case "Level3 size" `Quick test_zoo_level3_largest;
          Alcotest.test_case "find" `Quick test_zoo_find_case_insensitive;
          Alcotest.test_case "deterministic" `Quick test_zoo_deterministic;
          Alcotest.test_case "regional state confinement" `Quick test_zoo_regional_states;
        ] );
      ( "peering",
        [
          Alcotest.test_case "colocation" `Quick test_colocation;
          Alcotest.test_case "shared cities" `Quick test_shared_cities;
          Alcotest.test_case "structure" `Quick test_peering_structure;
          Alcotest.test_case "lookup" `Quick test_peering_lookup;
        ] );
    ]
