(** Fig. 8: interdomain distance-increase versus risk-reduction scatter
    for the 16 regional networks (lambda_h = 1e5).

    Each regional's PoPs are path sources; destinations are the PoPs of
    all 16 regional networks; routing crosses the merged multi-ISP graph
    through Tier-1 transit. *)

type point = {
  network : string;
  result : Riskroute.Ratios.result;
}

val default_spec : Rr_engine.Spec.t
(** Interdomain selection, pair_cap 1200 (per network). *)

val compute : Rr_engine.Context.t -> Rr_engine.Spec.t -> point list
(** Memoised per (context, pair_cap) — Table 3 reuses the points.
    Shortest-path trees come from the context cache. *)

val run : Rr_engine.Context.t -> Format.formatter -> unit
