(** Fig. 5: geo-spatial disaster forecast for Hurricane Irene at three
    advisory times (parsed centre + tropical / hurricane wind radii). *)

val run : Rr_engine.Context.t -> Format.formatter -> unit
