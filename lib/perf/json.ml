type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

(* Recursive descent over the raw string with a cursor; no lexer pass.
   The grammar is small enough that the cursor-based form stays direct. *)
let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail !pos (Printf.sprintf "expected %c, got %c" c got)
    | None -> fail !pos (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub text !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail !pos "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail !pos "truncated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            (* Code point to UTF-8; surrogate pairs are not recombined
               (the repo's writers never emit them). *)
            let cp = try hex4 () with _ -> fail !pos "bad \\u escape" in
            if cp < 0x80 then Buffer.add_char b (Char.chr cp)
            else if cp < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
            end
          | c -> fail !pos (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match float_of_string_opt s with
    | Some v -> Num v
    | None -> fail start (Printf.sprintf "bad number %S" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail !pos "expected , or } in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail !pos "expected , or ] in array"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected %c" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail !pos "trailing content after document";
    Ok v
  with Fail (p, msg) -> Error (Printf.sprintf "json: %s at byte %d" msg p)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Num v -> Some v | _ -> None

let to_int = function Num v -> Some (int_of_float v) | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_arr = function Arr l -> Some l | _ -> None
