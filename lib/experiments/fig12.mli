(** Fig. 12: Tier-1 intradomain risk-reduction time series during
    Hurricanes Irene, Katrina and Sandy. *)

val compute :
  ?pair_cap:int -> ?tick_stride:int -> Rr_forecast.Track.storm ->
  Riskroute.Casestudy.series list
(** One series per Tier-1 network (defaults: pair_cap 1000, stride 4). *)

val pp_series : Format.formatter -> Riskroute.Casestudy.series list -> unit
(** Tabular rendering shared with {!Fig13}. *)

val run : Format.formatter -> unit
