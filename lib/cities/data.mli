(** Embedded gazetteer of continental-US cities.

    Roughly 230 cities with real coordinates and approximate 2010-census
    populations. This is the only "real" dataset shipped in the
    repository; topologies, census blocks and every other synthetic input
    are anchored to it so that the geography of the reproduction matches
    the geography of the paper (dense Northeast corridor, Gulf-coast
    hurricane exposure, sparse Mountain West, ...). *)

type city = {
  name : string;
  state : string;  (** two-letter USPS code *)
  coord : Rr_geo.Coord.t;
  population : int;
}

val all : city array
(** Every city, unspecified order. All coordinates lie inside
    {!Rr_geo.Bbox.conus}. *)

val count : int

val total_population : int
