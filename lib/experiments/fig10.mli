(** Fig. 10: estimated risk reduction as links are added — fraction of
    the original aggregate bit-risk miles after adding 1..8 greedy links,
    for every Tier-1 network. *)

type curve = {
  network : string;
  fractions : float array;  (** index k-1 = after k added links *)
}

val compute : ?max_links:int -> unit -> curve list

val run : Format.formatter -> unit
