let run ctx ppf =
  let blocks = Rr_engine.Context.census_blocks ctx in
  Format.fprintf ppf
    "Fig 3 (left): population density of the continental United States@.";
  Format.fprintf ppf "census blocks: %d (paper: 215,932), total population %.0f@."
    (Array.length blocks)
    (Rr_census.Block.total_population blocks);
  let grid = Rr_census.Synthetic.heat_grid blocks ~rows:100 ~cols:240 in
  Format.fprintf ppf "%s@," (Rr_geo.Grid.render_ascii ~width:72 ~height:20 grid);
  match Rr_engine.Context.net ctx "Teliasonera" with
  | None -> Format.fprintf ppf "Teliasonera network missing@."
  | Some net ->
    Format.fprintf ppf
      "Fig 3 (right): nearest-neighbour assignment for Teliasonera PoPs@.";
    let fractions = Rr_census.Service.shared_fractions net in
    let ranked =
      List.sort
        (fun (_, a) (_, b) -> Float.compare b a)
        (List.mapi
           (fun i f -> ((Rr_topology.Net.pop net i).Rr_topology.Pop.name, f))
           (Array.to_list fractions))
    in
    List.iter
      (fun (name, f) ->
        Format.fprintf ppf "  %-24s %6.2f%% of served population@." name (100.0 *. f))
      ranked
