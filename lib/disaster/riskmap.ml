type t = { surfaces : (Event.kind * Rr_kde.Grid_density.t) list }

let build ?(bandwidth = Event.paper_bandwidth) catalog =
  let surfaces =
    List.map
      (fun kind ->
        let events = Catalog.coords catalog kind in
        (kind, Rr_kde.Grid_density.fit ~bandwidth:(bandwidth kind) events))
      Event.all_kinds
  in
  { surfaces }

let risk_at t coord =
  List.fold_left
    (fun acc (_, surface) -> acc +. Rr_kde.Grid_density.eval surface coord)
    0.0 t.surfaces

let kind_density t kind =
  match List.assoc_opt kind t.surfaces with
  | Some s -> s
  | None -> invalid_arg "Riskmap.kind_density: unknown kind"

let pop_risks t (net : Rr_topology.Net.t) =
  Array.map
    (fun (p : Rr_topology.Pop.t) -> risk_at t p.Rr_topology.Pop.coord)
    net.Rr_topology.Net.pops

let average_pop_risk t net = Rr_util.Arrayx.fmean (pop_risks t net)

let shared =
  let cache = lazy (build (Catalog.shared ())) in
  fun () -> Lazy.force cache

let build_seasonal ?(bandwidth = Event.paper_bandwidth) ~months catalog =
  let surfaces =
    List.filter_map
      (fun kind ->
        let events = Catalog.coords_in_months catalog kind ~months in
        if Array.length events = 0 then None
        else Some (kind, Rr_kde.Grid_density.fit ~bandwidth:(bandwidth kind) events))
      Event.all_kinds
  in
  { surfaces }
