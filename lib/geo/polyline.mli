(** Sequences of coordinates — storm tracks and routing paths on a map. *)

type t = Coord.t array

val length_miles : t -> float
(** Sum of great-circle leg lengths. *)

val resample : t -> every_miles:float -> t
(** Points spaced roughly [every_miles] apart along the polyline
    (endpoints always included). Used to densify storm tracks before
    rendering advisory ticks. *)

val point_at : t -> fraction:float -> Coord.t
(** Point a fraction [f] in [[0, 1]] of the total length along the
    polyline. *)
