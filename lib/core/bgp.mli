(** Policy-compliant interdomain routing (valley-free / Gao-Rexford).

    Sec. 6.2 of the paper brackets interdomain bit-risk miles between the
    geographic shortest path (upper bound) and the full-control RiskRoute
    path (lower bound), explicitly noting that real traffic "may not have
    control over the routing of traffic in other networks". This module
    adds the realistic middle point: the minimum bit-risk-miles path
    whose AS-level sequence is {e valley-free} under the customer /
    provider / peer relationships of {!Rr_topology.Peering} — a customer
    route climbs providers, crosses at most one peering, then descends to
    customers, the export behaviour BGP policies actually produce.

    Implementation: Dijkstra on the merged graph lifted to three phases
    (climbing, peered, descending); crossing an interconnect consults the
    AS relationship to decide which phase transitions are legal. *)

val route :
  Interdomain.t -> Env.t -> src:int -> dst:int -> Router.route option
(** Minimum bit-risk-miles valley-free route between two merged-graph
    nodes; [None] when no policy-compliant path exists (which can happen
    even on a connected merged graph, e.g. regional-to-regional traffic
    whose only physical corridor would transit a customer). *)

val shortest :
  Interdomain.t -> Env.t -> src:int -> dst:int -> Router.route option
(** Valley-free geographic shortest path (policy-compliant bit-miles
    baseline). *)

type bounds = {
  upper : float;      (** unconstrained shortest path's bit-risk miles *)
  policy : float;     (** valley-free RiskRoute (this module) *)
  lower : float;      (** full-control RiskRoute (Sec. 6.2's lower bound) *)
}

val bounds :
  Interdomain.t -> Env.t -> src:int -> dst:int -> bounds option
(** The paper's two bounds plus the policy point between them; [None]
    when any of the three is unroutable. Invariant (tested):
    [lower <= policy] and [lower <= upper]. *)
