(* The live observability plane (see DESIGN.md 3g).

   One background POSIX thread owns a listening socket and serves
   single-shot HTTP/1.1 GETs. Every handler is a read-only snapshot of
   Rr_obs / engine state behind the same merge-on-read locks the exit
   dumps use, so serving concurrently with the computation changes no
   results: the worst a request can do is briefly take a metric's shard
   mutex. A thread (not a domain) keeps the server off the domain
   pool's accounting and inherits the main domain's DLS-free paths; it
   blocks in [accept] inside a release-the-runtime-lock section, so it
   costs nothing while idle. *)

(* --- request metrics (recorded only while Rr_obs is enabled, which
   [start] guarantees) --- *)

let c_requests = Rr_obs.Counter.make "live.requests"

let c_errors = Rr_obs.Counter.make "live.errors"

let g_port = Rr_obs.Gauge.make "live.port"

(* --- /stats provider ---

   Rr_live sits below the engine in the dependency order, so the engine
   cache snapshot is injected: the CLI and bench register
   [Rr_engine.Context.stats_json] over their shared context. *)

let default_stats () =
  "{\"error\": \"no stats provider registered; run via the riskroute CLI \
   or bench harness\"}\n"

let stats_provider = ref default_stats

let set_stats_provider f = stats_provider := f

(* --- /explain provider ---

   Same inversion as /stats: route explanation needs the engine and the
   explain layer, both above Rr_live in the dependency order, so the
   CLI/bench register a closure over their shared context. The provider
   gets the decoded query parameters and returns the JSON body, or a
   client-error message (400). *)

let default_explain _params =
  Error
    "no explain provider registered; run via the riskroute CLI or bench \
     harness"

let explain_provider = ref default_explain

let set_explain_provider f = explain_provider := f

let default_stall_deadline = 60.0

let stall_deadline_cell = ref default_stall_deadline

let set_stall_deadline d =
  if not (Float.is_finite d && d > 0.0) then
    invalid_arg "Rr_live.set_stall_deadline: need a positive deadline";
  stall_deadline_cell := d

let stall_deadline () = !stall_deadline_cell

let () =
  match Rr_obs.Envvar.(raw stall_deadline) with
  | None -> ()
  | Some v -> (
    match float_of_string_opt (String.trim v) with
    | Some d when Float.is_finite d && d > 0.0 -> stall_deadline_cell := d
    | Some _ | None ->
      Rr_obs.Log.warnf
        "riskroute: ignoring invalid RISKROUTE_STALL_DEADLINE=%S (want \
         positive seconds)"
        v)

let healthz () =
  let now = Rr_obs.Clock.monotonic () in
  let deadline = stall_deadline () in
  let open_spans = Rr_obs.open_spans () in
  let stalled =
    List.filter
      (fun (sp : Rr_obs.open_span) -> now -. sp.Rr_obs.op_start > deadline)
      open_spans
  in
  let healthy = stalled = [] in
  let b = Buffer.create 256 in
  let add = Buffer.add_string b in
  add "{\n";
  add
    (Printf.sprintf "  \"status\": \"%s\",\n"
       (if healthy then "ok" else "degraded"));
  add (Printf.sprintf "  \"pid\": %d,\n" (Unix.getpid ()));
  add "  \"git_rev\": \"";
  Rr_obs.json_escape b (Rr_obs.git_rev ());
  add "\",\n";
  add "  \"schemas\": {";
  List.iteri
    (fun i (name, version) ->
      if i > 0 then add ", ";
      add "\"";
      Rr_obs.json_escape b name;
      add (Printf.sprintf "\": %d" version))
    (Rr_obs.Schema.all ());
  add "},\n";
  add
    (Printf.sprintf "  \"uptime_seconds\": %s,\n"
       (Rr_obs.fnum (now -. Rr_obs.process_epoch)));
  add
    (Printf.sprintf "  \"stall_deadline_seconds\": %s,\n"
       (Rr_obs.fnum deadline));
  add (Printf.sprintf "  \"open_spans\": %d,\n" (List.length open_spans));
  add "  \"stalled\": [";
  List.iteri
    (fun i (sp : Rr_obs.open_span) ->
      add (if i = 0 then "\n" else ",\n");
      add
        (Printf.sprintf "    {\"domain\": \"%s\", \"span\": %d, \"name\": \""
           (Rr_obs.domain_label sp.Rr_obs.op_domain)
           sp.Rr_obs.op_id);
      Rr_obs.json_escape b sp.Rr_obs.op_name;
      add
        (Printf.sprintf "\", \"age_seconds\": %s}"
           (Rr_obs.fnum (now -. sp.Rr_obs.op_start))))
    stalled;
  add (if stalled = [] then "]\n}\n" else "\n  ]\n}\n");
  (healthy, Buffer.contents b)

(* --- routing --- *)

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
  body : string;
}

let json_ct = "application/json"

let text_ct = "text/plain; charset=utf-8"

let prom_ct = "text/plain; version=0.0.4; charset=utf-8"

let index_body =
  "riskroute live observability\n\
   /metrics  Prometheus exposition of the live registry\n\
   /healthz  liveness + span-stall watchdog (503 when degraded)\n\
   /stats    engine cache snapshot (hits, misses, evictions, occupancy)\n\
   /flight   recent-event flight recorder, merged across domains\n\
   /series   time-series sampler ring (timestamped metric deltas)\n\
   /explain  route provenance: /explain?net=..&src=..&dst=..\n"

(* --- query-string decoding (application/x-www-form-urlencoded) ---

   PoP names carry spaces ("New York"), so /explain values arrive
   percent-encoded or '+'-separated. A malformed escape is kept
   verbatim: the provider's name resolution reports it more usefully
   than a blanket 400 here could. *)

let percent_decode s =
  let hex = function
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | _ -> -1
  in
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '+' ->
        Buffer.add_char b ' ';
        go (i + 1)
      | '%' when i + 2 < n && hex s.[i + 1] >= 0 && hex s.[i + 2] >= 0 ->
        Buffer.add_char b (Char.chr ((hex s.[i + 1] * 16) + hex s.[i + 2]));
        go (i + 3)
      | c ->
        Buffer.add_char b c;
        go (i + 1))
    end
  in
  go 0;
  Buffer.contents b

let parse_query q =
  List.filter_map
    (fun kv ->
      if kv = "" then None
      else
        match String.index_opt kv '=' with
        | Some i ->
          Some
            ( percent_decode (String.sub kv 0 i),
              percent_decode (String.sub kv (i + 1) (String.length kv - i - 1))
            )
        | None -> Some (percent_decode kv, ""))
    (String.split_on_char '&' q)

let handle path =
  Rr_obs.Counter.incr c_requests;
  (* Split off the query string; only /explain consumes it, the other
     endpoints take no parameters. *)
  let path, query =
    match String.index_opt path '?' with
    | Some i ->
      ( String.sub path 0 i,
        String.sub path (i + 1) (String.length path - i - 1) )
    | None -> (path, "")
  in
  match path with
  | "/" | "" ->
    { status = 200; content_type = text_ct; headers = []; body = index_body }
  | "/metrics" ->
    {
      status = 200;
      content_type = prom_ct;
      headers = [];
      body = Rr_obs.to_prometheus ();
    }
  | "/healthz" ->
    let healthy, body = healthz () in
    {
      status = (if healthy then 200 else 503);
      content_type = json_ct;
      headers = [];
      body;
    }
  | "/stats" -> (
    match !stats_provider () with
    | body -> { status = 200; content_type = json_ct; headers = []; body }
    | exception e ->
      Rr_obs.Counter.incr c_errors;
      let b = Buffer.create 64 in
      Buffer.add_string b "{\"error\": \"stats provider failed: ";
      Rr_obs.json_escape b (Printexc.to_string e);
      Buffer.add_string b "\"}\n";
      {
        status = 500;
        content_type = json_ct;
        headers = [];
        body = Buffer.contents b;
      })
  | "/flight" ->
    {
      status = 200;
      content_type = json_ct;
      headers = [];
      body = Rr_obs.Flight.to_json ();
    }
  | "/series" ->
    {
      status = 200;
      content_type = json_ct;
      headers = [];
      body = Rr_obs.Series.to_json ();
    }
  | "/explain" -> (
    match !explain_provider (parse_query query) with
    | Ok body -> { status = 200; content_type = json_ct; headers = []; body }
    | Error msg ->
      Rr_obs.Counter.incr c_errors;
      let b = Buffer.create 64 in
      Buffer.add_string b "{\"error\": \"";
      Rr_obs.json_escape b msg;
      Buffer.add_string b "\"}\n";
      {
        status = 400;
        content_type = json_ct;
        headers = [];
        body = Buffer.contents b;
      }
    | exception e ->
      Rr_obs.Counter.incr c_errors;
      let b = Buffer.create 64 in
      Buffer.add_string b "{\"error\": \"explain provider failed: ";
      Rr_obs.json_escape b (Printexc.to_string e);
      Buffer.add_string b "\"}\n";
      {
        status = 500;
        content_type = json_ct;
        headers = [];
        body = Buffer.contents b;
      })
  | _ ->
    Rr_obs.Counter.incr c_errors;
    { status = 404; content_type = text_ct; headers = []; body = "not found\n" }

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let render r =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) r.headers)
  in
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n%sContent-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    r.status (status_text r.status) r.content_type extra
    (String.length r.body) r.body

(* --- the server --- *)

type server = {
  sock : Unix.file_descr;
  bound_port : int;
  mutable thread : Thread.t option;
  mutable stopping : bool;
}

let state_lock = Mutex.create ()

let state : server option ref = ref None

let running () = Mutex.protect state_lock (fun () -> !state <> None)

let port () =
  Mutex.protect state_lock (fun () ->
      Option.map (fun s -> s.bound_port) !state)

(* Read the request head (line + headers) with a short receive timeout
   so a stuck client cannot wedge the single server thread; the
   endpoints need nothing past the request line. *)
let read_request_line fd =
  let buf = Bytes.create 2048 in
  let b = Buffer.create 256 in
  let rec go () =
    if Buffer.length b > 8192 then None
    else
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> if Buffer.length b > 0 then Some (Buffer.contents b) else None
      | n ->
        Buffer.add_subbytes b buf 0 n;
        let s = Buffer.contents b in
        if String.length s >= 2 && String.index_opt s '\n' <> None then Some s
        else go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        None
  in
  go ()

let parse_request head =
  let line =
    match String.index_opt head '\n' with
    | Some i -> String.trim (String.sub head 0 i)
    | None -> String.trim head
  in
  match String.split_on_char ' ' line with
  | [ "GET"; path; _version ] -> Ok path
  | "GET" :: path :: _ -> Ok path
  | meth :: _ when meth <> "GET" && meth <> "" ->
    Error
      {
        status = 405;
        content_type = text_ct;
        headers = [ ("Allow", "GET") ];
        body = "GET only\n";
      }
  | _ ->
    Error
      {
        status = 400;
        content_type = text_ct;
        headers = [];
        body = "bad request\n";
      }

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let serve_client fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let response =
    match read_request_line fd with
    | None ->
      Rr_obs.Counter.incr c_errors;
      {
        status = 400;
        content_type = text_ct;
        headers = [];
        body = "bad request\n";
      }
    | Some head -> (
      match parse_request head with
      | Ok path -> handle path
      | Error r ->
        Rr_obs.Counter.incr c_errors;
        r)
  in
  try write_all fd (render response)
  with Unix.Unix_error _ -> () (* client went away; nothing to salvage *)

let rec server_loop srv =
  match Unix.accept srv.sock with
  | fd, _addr ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try serve_client fd with _ -> Rr_obs.Counter.incr c_errors);
    server_loop srv
  | exception Unix.Unix_error (EINTR, _, _) -> server_loop srv
  | exception Unix.Unix_error _ ->
    (* [stop] closed the listening socket (or something fatal happened
       to it); either way the serving thread is done. *)
    ()

let start ?(addr = "127.0.0.1") ~port:requested_port () =
  Mutex.protect state_lock (fun () ->
      match !state with
      | Some s ->
        Error
          (Printf.sprintf "live endpoint already running on port %d"
             s.bound_port)
      | None -> (
        match
          let inet = Unix.inet_addr_of_string addr in
          let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try
             Unix.setsockopt sock Unix.SO_REUSEADDR true;
             Unix.bind sock (Unix.ADDR_INET (inet, requested_port));
             Unix.listen sock 16
           with e ->
             (try Unix.close sock with Unix.Unix_error _ -> ());
             raise e);
          let bound_port =
            match Unix.getsockname sock with
            | Unix.ADDR_INET (_, p) -> p
            | Unix.ADDR_UNIX _ -> requested_port
          in
          (sock, bound_port)
        with
        | sock, bound_port ->
          (* Live metrics over a disabled registry would serve zeros;
             the endpoint implies recording. *)
          Rr_obs.set_enabled true;
          Rr_obs.Gauge.set g_port bound_port;
          let srv = { sock; bound_port; thread = None; stopping = false } in
          srv.thread <- Some (Thread.create server_loop srv);
          state := Some srv;
          Ok bound_port
        | exception e ->
          Error
            (Printf.sprintf "live endpoint failed to bind %s:%d: %s" addr
               requested_port (Printexc.to_string e))))

let stop () =
  let srv =
    Mutex.protect state_lock (fun () ->
        let s = !state in
        state := None;
        s)
  in
  match srv with
  | None -> ()
  | Some srv ->
    srv.stopping <- true;
    (* Closing the listener makes the blocked [accept] fail, which ends
       the serving thread's loop. *)
    (try Unix.shutdown srv.sock Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close srv.sock with Unix.Unix_error _ -> ());
    (match srv.thread with Some t -> Thread.join t | None -> ());
    Rr_obs.Gauge.set g_port 0

let () = at_exit stop

let autostart_from_env () =
  match Rr_obs.Envvar.(raw live) with
  | None -> ()
  | Some v when String.trim v = "" -> ()
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some p when p >= 0 && p < 65536 -> (
      if not (running ()) then
        match start ~port:p () with
        | Ok bound ->
          Rr_obs.Log.infof
            "riskroute: live introspection listening on http://127.0.0.1:%d/"
            bound
        | Error msg -> Rr_obs.Log.warnf "riskroute: %s" msg)
    | Some _ | None ->
      Rr_obs.Log.warnf
        "riskroute: ignoring invalid RISKROUTE_LIVE=%S (want a port number)"
        v)
