let net ctx name =
  match Rr_engine.Context.net ctx name with
  | Some net -> net
  | None -> failwith ("Ablation: unknown network " ^ name)

let run_scale ctx ppf =
  Format.fprintf ppf
    "Ablation: risk_scale sensitivity (lambda_h = 1e5, intradomain ratios)@.";
  Format.fprintf ppf "%-12s %10s %10s %10s@." "Network" "scale" "risk rr" "dist dr";
  List.iter
    (fun name ->
      List.iter
        (fun scale ->
          let params = { Riskroute.Params.default with Riskroute.Params.risk_scale = scale } in
          let env = Rr_engine.Context.env ~params ctx (net ctx name) in
          let r =
            Riskroute.Ratios.intradomain ~pair_cap:2000
              ~trees:(Rr_engine.Context.dist_trees ctx env)
              env
          in
          Format.fprintf ppf "%-12s %10.0f %10.3f %10.3f@." name scale
            r.Riskroute.Ratios.risk_reduction r.Riskroute.Ratios.distance_increase)
        [ 1000.0; 3000.0; 10000.0 ])
    [ "AT&T"; "Level3" ]

let run_impact ctx ppf =
  Format.fprintf ppf
    "Ablation: outage-impact factor (census kappa_ij vs uniform impact)@.";
  List.iter
    (fun name ->
      let n = net ctx name in
      let census = Rr_engine.Context.env ctx n in
      let size = Riskroute.Env.node_count census in
      let uniform =
        Riskroute.Env.make
          ~graph:n.Rr_topology.Net.graph
          ~coords:(Riskroute.Env.coords census)
          ~impact:(Array.make size (1.0 /. float_of_int size))
          ~historical:(Riskroute.Env.historical census)
          ()
      in
      let rc =
        Riskroute.Ratios.intradomain ~pair_cap:2000
          ~trees:(Rr_engine.Context.dist_trees ctx census)
          census
      in
      let ru =
        Riskroute.Ratios.intradomain ~pair_cap:2000
          ~trees:(Rr_engine.Context.dist_trees ctx uniform)
          uniform
      in
      Format.fprintf ppf
        "%-12s census kappa: rr=%.3f dr=%.3f | uniform: rr=%.3f dr=%.3f@." name
        rc.Riskroute.Ratios.risk_reduction rc.Riskroute.Ratios.distance_increase
        ru.Riskroute.Ratios.risk_reduction ru.Riskroute.Ratios.distance_increase)
    [ "AT&T"; "Sprint" ]

let run_candidates ctx ppf =
  Format.fprintf ppf
    "Ablation: candidate-link pruning threshold (Sec. 6.3 footnote)@.";
  Format.fprintf ppf "%-12s %10s %12s %22s@." "Network" "threshold" "candidates"
    "bit-risk after 5 links";
  List.iter
    (fun name ->
      let env = Rr_engine.Context.env ctx (net ctx name) in
      let dist_trees = Rr_engine.Context.dist_trees ctx env in
      let risk_trees = Rr_engine.Context.risk_trees ctx env in
      List.iter
        (fun threshold ->
          let candidates =
            Riskroute.Augment.candidates ~reduction_threshold:threshold
              ~dist_trees env
          in
          let picks =
            Riskroute.Augment.greedy ~k:5 ~reduction_threshold:threshold
              ~dist_trees ~risk_trees env
          in
          let final =
            match List.rev picks with
            | last :: _ -> last.Riskroute.Augment.fraction
            | [] -> 1.0
          in
          Format.fprintf ppf "%-12s %10.2f %12d %22.3f@." name threshold
            (List.length candidates) final)
        [ 0.3; 0.5; 0.7 ])
    [ "Sprint"; "Teliasonera" ]

let run_kde _ctx ppf =
  Format.fprintf ppf "Ablation: rasterised vs exact KDE (storm catalogue)@.";
  let catalog = Rr_disaster.Catalog.generate ~scale:0.05 () in
  let events = Rr_disaster.Catalog.coords catalog Rr_disaster.Event.Fema_storm in
  List.iter
    (fun bandwidth ->
      let exact = Rr_kde.Density.fit ~bandwidth events in
      let grid = Rr_kde.Grid_density.fit ~bandwidth events in
      let probes = Rr_cities.Query.top_by_population 60 in
      let rel_errors =
        List.filter_map
          (fun (c : Rr_cities.Data.city) ->
            let e = Rr_kde.Density.eval exact c.Rr_cities.Data.coord in
            let g = Rr_kde.Grid_density.eval grid c.Rr_cities.Data.coord in
            if e > 1e-12 then Some (Float.abs (g -. e) /. e) else None)
          probes
      in
      Format.fprintf ppf
        "  bandwidth %6.1f mi: mean relative error %.3f, max %.3f (%d probes)@."
        bandwidth
        (Rr_util.Arrayx.fmean (Array.of_list rel_errors))
        (Rr_util.Arrayx.fmax (Array.of_list rel_errors))
        (List.length rel_errors))
    [ 24.38; 71.56; 298.82 ]

let run_outage ctx ppf =
  Format.fprintf ppf
    "Extension: Monte Carlo outage simulation (static routes under strikes)@.";
  Format.fprintf ppf "%-12s %-14s %10s %10s %10s %10s@." "Network" "Strike kind"
    "shortest" "riskroute" "reactive" "endpoints";
  List.iter
    (fun name ->
      let env = Rr_engine.Context.env ctx (net ctx name) in
      List.iter
        (fun kind ->
          let r = Riskroute.Outagesim.run ~scenario_count:150 ~pair_cap:150 ~kind env in
          Format.fprintf ppf "%-12s %-14s %10.3f %10.3f %10.3f %10.3f@." name
            (Rr_disaster.Event.kind_name kind)
            r.Riskroute.Outagesim.shortest_survival
            r.Riskroute.Outagesim.riskroute_survival
            r.Riskroute.Outagesim.reactive_survival
            r.Riskroute.Outagesim.endpoint_loss)
        [ Rr_disaster.Event.Fema_hurricane; Rr_disaster.Event.Fema_tornado ])
    [ "AT&T"; "Sprint"; "Level3" ]

let run_seasonal ctx ppf =
  Format.fprintf ppf "Extension: seasonal risk surfaces (annual vs season)@.";
  let catalog = Rr_engine.Context.catalog ctx in
  let annual = Rr_engine.Context.riskmap ctx in
  let hurricane_season = Rr_disaster.Riskmap.build_seasonal ~months:[ 8; 9; 10 ] catalog in
  let winter = Rr_disaster.Riskmap.build_seasonal ~months:[ 12; 1; 2 ] catalog in
  let probe name =
    match Rr_cities.Query.by_name name with
    | Some c -> c.Rr_cities.Data.coord
    | None -> failwith ("probe city missing: " ^ name)
  in
  Format.fprintf ppf "%-16s %12s %14s %10s@." "City" "annual" "Aug-Oct" "Dec-Feb";
  List.iter
    (fun name ->
      let coord = probe name in
      Format.fprintf ppf "%-16s %12.2e %14.2e %10.2e@." name
        (Rr_disaster.Riskmap.risk_at annual coord)
        (Rr_disaster.Riskmap.risk_at hurricane_season coord)
        (Rr_disaster.Riskmap.risk_at winter coord))
    [ "New Orleans"; "Oklahoma City"; "Los Angeles"; "Chicago" ]

let run_ospf ctx ppf =
  Format.fprintf ppf
    "Extension: OSPF link-weight export fidelity (Sec. 3.1 deployment path)@.";
  Format.fprintf ppf "%-18s %12s %12s@." "Network" "exact match" "risk gap";
  List.iter
    (fun n ->
      let env = Rr_engine.Context.env ctx n in
      let f = Riskroute.Ospf.fidelity ~pair_cap:1000 env in
      Format.fprintf ppf "%-18s %11.1f%% %12.4f@." n.Rr_topology.Net.name
        (100.0 *. f.Riskroute.Ospf.exact_match)
        f.Riskroute.Ospf.risk_gap)
    (Rr_engine.Context.zoo ctx).Rr_topology.Zoo.tier1s

let run_backup ctx ppf =
  Format.fprintf ppf
    "Extension: backup-path plans (IP fast reroute, Sec. 3.1)@.";
  let n = net ctx "AT&T" in
  let env = Rr_engine.Context.env ctx n in
  let size = Riskroute.Env.node_count env in
  let coverage_sum = ref 0.0 and stretch_sum = ref 0.0 and count = ref 0 in
  for src = 0 to size - 1 do
    let dst = (src + (size / 2)) mod size in
    if src <> dst then
      match Riskroute.Backup.plan env ~src ~dst with
      | Some plan ->
        coverage_sum := !coverage_sum +. Riskroute.Backup.coverage plan;
        stretch_sum := !stretch_sum +. Riskroute.Backup.worst_stretch plan;
        incr count
      | None -> ()
  done;
  Format.fprintf ppf
    "AT&T, %d src/dst plans: mean single-failure coverage %.1f%%, mean worst stretch %.2fx@."
    !count
    (100.0 *. !coverage_sum /. float_of_int !count)
    (!stretch_sum /. float_of_int !count)

let run_bgp ctx ppf =
  Format.fprintf ppf
    "Extension: valley-free BGP policy routing vs the Sec. 6.2 bounds@.";
  let merged, env = Rr_engine.Context.interdomain ctx in
  let peering = Riskroute.Interdomain.peering merged in
  let nets = peering.Rr_topology.Peering.nets in
  let rng = Rr_util.Prng.create 0xB9_9BL in
  let regionals =
    List.filter
      (fun i -> nets.(i).Rr_topology.Net.tier = Rr_topology.Net.Regional)
      (Rr_util.Listx.range 0 (Array.length nets))
  in
  let samples = 120 in
  let upper_sum = ref 0.0 and policy_sum = ref 0.0 and lower_sum = ref 0.0 in
  let routable = ref 0 and policy_blocked = ref 0 in
  let regional_array = Array.of_list regionals in
  for _ = 1 to samples do
    let a = regional_array.(Rr_util.Prng.int rng (Array.length regional_array)) in
    let b = regional_array.(Rr_util.Prng.int rng (Array.length regional_array)) in
    if a <> b then begin
      let sa = Riskroute.Interdomain.net_nodes merged a in
      let sb = Riskroute.Interdomain.net_nodes merged b in
      let src = sa.(Rr_util.Prng.int rng (Array.length sa)) in
      let dst = sb.(Rr_util.Prng.int rng (Array.length sb)) in
      match Riskroute.Bgp.bounds merged env ~src ~dst with
      | Some bounds ->
        incr routable;
        upper_sum := !upper_sum +. bounds.Riskroute.Bgp.upper;
        policy_sum := !policy_sum +. bounds.Riskroute.Bgp.policy;
        lower_sum := !lower_sum +. bounds.Riskroute.Bgp.lower
      | None -> incr policy_blocked
    end
  done;
  let f sum = sum /. float_of_int (max 1 !routable) in
  Format.fprintf ppf
    "  %d sampled regional-to-regional flows (%d with no valley-free path)@."
    !routable !policy_blocked;
  Format.fprintf ppf "  mean bit-risk miles: upper (shortest) %.0f@." (f !upper_sum);
  Format.fprintf ppf "                       policy (valley-free RiskRoute) %.0f@."
    (f !policy_sum);
  Format.fprintf ppf "                       lower (full control, Sec. 6.2) %.0f@."
    (f !lower_sum);
  Format.fprintf ppf
    "  policy routing captures %.0f%% of the full-control risk savings@."
    (100.0 *. (f !upper_sum -. f !policy_sum)
    /. Float.max 1e-9 (f !upper_sum -. f !lower_sum))

let run_availability ctx ppf =
  Format.fprintf ppf
    "Extension: achieved availability under the catalogue strike rate@.";
  Format.fprintf ppf "%-12s %-12s %22s %22s %12s@." "Network" "Posture"
    "availability" "downtime (min/yr)" "nines";
  List.iter
    (fun name ->
      let env = Rr_engine.Context.env ctx (net ctx name) in
      let a = Riskroute.Availability.run env in
      List.iter
        (fun (posture, value) ->
          Format.fprintf ppf "%-12s %-12s %22.6f %22.0f %12.2f@." name posture
            value
            (Riskroute.Availability.downtime_minutes_per_year value)
            (Riskroute.Availability.nines value))
        [
          ("shortest", a.Riskroute.Availability.shortest);
          ("riskroute", a.Riskroute.Availability.riskroute);
          ("reactive", a.Riskroute.Availability.reactive);
        ])
    [ "AT&T"; "Sprint" ]

let run_traffic ctx ppf =
  Format.fprintf ppf "Extension: gravity traffic matrix and weighted ratios@.";
  List.iter
    (fun name ->
      let n = net ctx name in
      let populations = Rr_census.Service.shared_fractions n in
      let tm = Rr_topology.Traffic.gravity ~populations n in
      let env = Rr_engine.Context.env ctx n in
      Format.fprintf ppf "%s (%.0f Gbps offered):@." name
        (Rr_topology.Traffic.total tm);
      List.iter
        (fun (i, j, v) ->
          Format.fprintf ppf "  top flow %-22s -> %-22s %6.1f Gbps@."
            (Rr_topology.Net.pop n i).Rr_topology.Pop.name
            (Rr_topology.Net.pop n j).Rr_topology.Pop.name v)
        (Rr_topology.Traffic.top_flows tm 3);
      let trees = Rr_engine.Context.dist_trees ctx env in
      let uniform = Riskroute.Ratios.intradomain ~pair_cap:2000 ~trees env in
      let weighted =
        Riskroute.Ratios.weighted ~pair_cap:2000 ~trees
          ~weight:(fun i j -> Rr_topology.Traffic.demand tm i j)
          env
      in
      Format.fprintf ppf
        "  uniform rr=%.3f dr=%.3f | traffic-weighted rr=%.3f dr=%.3f@."
        uniform.Riskroute.Ratios.risk_reduction
        uniform.Riskroute.Ratios.distance_increase
        weighted.Riskroute.Ratios.risk_reduction
        weighted.Riskroute.Ratios.distance_increase)
    [ "Sprint"; "Tinet" ]

let run_mrc ctx ppf =
  Format.fprintf ppf
    "Extension: multiple routing configurations (Kvalbein et al. via Sec. 3.1)@.";
  List.iter
    (fun name ->
      let env = Rr_engine.Context.env ctx (net ctx name) in
      let mrc = Riskroute.Mrc.build env in
      let n = Riskroute.Env.node_count env in
      (* how many single-node failures are recoverable for a probe flow set *)
      let recovered = ref 0 and total = ref 0 in
      for failed = 0 to n - 1 do
        let src = if failed = 0 then 1 else 0 in
        let dst = if failed = n - 1 then n - 2 else n - 1 in
        if failed <> src && failed <> dst then begin
          incr total;
          match Riskroute.Mrc.recovery_route mrc ~failed ~src ~dst with
          | Some _ -> incr recovered
          | None -> ()
        end
      done;
      Format.fprintf ppf
        "%-12s %d configurations, node coverage %.0f%%, recovery success %d/%d@."
        name
        (Riskroute.Mrc.config_count mrc)
        (100.0 *. Riskroute.Mrc.coverage mrc)
        !recovered !total)
    [ "AT&T"; "Sprint"; "Teliasonera" ]

let run_sla ctx ppf =
  Format.fprintf ppf
    "Extension: SLA-constrained RiskRoute (LARAC, Sec. 6.4)@.";
  let n = net ctx "Level3" in
  let env = Rr_engine.Context.env ctx n in
  match
    (Rr_topology.Net.find_pop n ~city:"Houston", Rr_topology.Net.find_pop n ~city:"Boston")
  with
  | Some src, Some dst ->
    let shortest = Option.get (Riskroute.Router.shortest env ~src ~dst) in
    let floor_ms = Riskroute.Sla.latency_ms env shortest.Riskroute.Router.path in
    Format.fprintf ppf
      "Houston -> Boston on Level3 (latency floor %.2f ms one-way):@." floor_ms;
    Format.fprintf ppf "%12s %12s %14s %10s@." "budget (ms)" "latency" "path risk" "miles";
    List.iter
      (fun slack ->
        let budget = floor_ms *. slack in
        match Riskroute.Sla.constrained_route env ~src ~dst ~max_latency_ms:budget with
        | Some c ->
          Format.fprintf ppf "%12.2f %12.2f %14.0f %10.0f@." budget c.Riskroute.Sla.latency
            c.Riskroute.Sla.risk c.Riskroute.Sla.route.Riskroute.Router.bit_miles
        | None -> Format.fprintf ppf "%12.2f   (infeasible)@." budget)
      [ 1.0; 1.05; 1.1; 1.2; 1.5; 2.0 ]
  | _ -> Format.fprintf ppf "Level3 lacks the probe PoPs in this synthesis@."

let run_pareto ctx ppf =
  Format.fprintf ppf
    "Extension: distance/risk Pareto frontier (SLA trade-off, Sec. 8)@.";
  let n = net ctx "Level3" in
  let env = Rr_engine.Context.env ctx n in
  let pairs = [ ("Houston", "Boston"); ("Miami", "Seattle"); ("New Orleans", "Chicago") ] in
  List.iter
    (fun (a, b) ->
      match (Rr_topology.Net.find_pop n ~city:a, Rr_topology.Net.find_pop n ~city:b) with
      | Some src, Some dst ->
        let frontier = Riskroute.Pareto.frontier env ~src ~dst in
        Format.fprintf ppf "%s -> %s: %d non-dominated routes@." a b
          (List.length frontier);
        List.iter
          (fun (p : Riskroute.Pareto.point) ->
            Format.fprintf ppf "    %7.0f bit-miles, risk %8.0f (%d hops)@."
              p.Riskroute.Pareto.bit_miles p.Riskroute.Pareto.risk
              (List.length p.Riskroute.Pareto.path - 1))
          frontier;
        (match Riskroute.Pareto.knee frontier with
        | Some k ->
          Format.fprintf ppf "    knee: %.0f bit-miles at risk %.0f@."
            k.Riskroute.Pareto.bit_miles k.Riskroute.Pareto.risk
        | None -> ())
      | _ -> Format.fprintf ppf "%s -> %s: PoPs not present in this synthesis@." a b)
    pairs
