(* Stdlib-only domain pool shared by every fan-out sweep in the repo.

   One global pool of [domain_count () - 1] worker domains pulls closures
   off a mutex/condvar work queue; the submitting domain participates in
   draining the queue, so nested parallel regions cannot deadlock (the
   submitter of the deepest pending batch is always making progress).
   With a pool size of 1 every entry point degrades to the plain
   sequential loop — no domains, no locks — which keeps single-domain
   runs bit-identical to pre-pool code. *)

type pool = {
  mutex : Mutex.t;
  nonempty : Condition.t;  (* work arrived, or shutdown *)
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

(* Telemetry series (recorded only while Rr_obs is enabled). *)
let c_tasks = Rr_obs.Counter.make "parallel.tasks"

let c_batches = Rr_obs.Counter.make "parallel.batches"

let c_pool_spawns = Rr_obs.Counter.make "parallel.pool_spawns"

let c_env_invalid = Rr_obs.Counter.make "parallel.env_invalid"

let g_pool_size = Rr_obs.Gauge.make "parallel.pool_size"

let h_batch = Rr_obs.Histogram.make "parallel.batch_seconds"

let env_var = Rr_obs.Envvar.(domains.name)

let env_warned = ref false

(* An unset or empty variable is silently ignored; anything else that
   does not parse as a positive integer bumps the warning counter and
   states (once) which pool size is actually used. *)
let env_count () =
  match Rr_obs.Envvar.(raw domains) with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some k when k >= 1 -> Some k
    | Some _ | None ->
      Rr_obs.Counter.incr c_env_invalid;
      if not !env_warned then begin
        env_warned := true;
        Rr_obs.Log.warnf
          "riskroute: ignoring invalid %s=%S (want a positive integer); using %d domains"
          env_var s
          (max 1 (Domain.recommended_domain_count ()))
      end;
      None)

(* [requested] overrides the environment (tests switch pool sizes at
   runtime); resolution order: set_domain_count > RISKROUTE_DOMAINS >
   Domain.recommended_domain_count. *)
let requested = ref None

let current : pool option ref = ref None

let current_size = ref 0

let domain_count () =
  match !requested with
  | Some k -> k
  | None -> (
    match env_count () with
    | Some k -> k
    | None -> max 1 (Domain.recommended_domain_count ()))

let rec worker pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.tasks && not pool.stop do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.tasks then Mutex.unlock pool.mutex
  else begin
    let task = Queue.pop pool.tasks in
    Mutex.unlock pool.mutex;
    task ();
    worker pool
  end

let shutdown () =
  match !current with
  | None -> ()
  | Some pool ->
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    current := None;
    current_size := 0

let () = at_exit shutdown

let set_domain_count k =
  if k < 1 then invalid_arg "Parallel.set_domain_count: need k >= 1";
  requested := Some k;
  shutdown ()

let ensure_pool size =
  match !current with
  | Some pool when !current_size = size -> pool
  | _ ->
    shutdown ();
    let pool =
      {
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        tasks = Queue.create ();
        stop = false;
        workers = [||];
      }
    in
    pool.workers <-
      Array.init (size - 1) (fun i ->
          Domain.spawn (fun () ->
              (* Label the worker's trace track before it takes work. *)
              Rr_obs.set_domain_label (Printf.sprintf "pool-worker-%d" (i + 1));
              worker pool));
    current := Some pool;
    current_size := size;
    Rr_obs.Counter.incr c_pool_spawns;
    Rr_obs.Gauge.set g_pool_size size;
    Rr_obs.set_meta "domains" (string_of_int size);
    pool

(* Push a batch, then help drain the queue until every batch task has
   finished. Helping may execute tasks of other (nested) batches; that is
   deliberate. The first exception of the batch is re-raised here. *)
let run_batch pool (bodies : (unit -> unit) array) =
  let tel = Rr_obs.enabled () in
  let t0 = if tel then Rr_obs.Clock.monotonic () else 0.0 in
  (* Tasks executed on worker domains inherit the submitting span as
     parent, so span trees survive the queue hand-off. *)
  let parent = Rr_obs.Span.current () in
  let remaining = ref (Array.length bodies) in
  let batch_done = Condition.create () in
  let error = ref None in
  (* Each task body runs under a "parallel.task" span so trace export
     shows where wall-clock goes on every pool domain; the span parents
     to the submitting span, so the tree (and the trace's hand-off
     arrows) survive the queue. A no-op when telemetry is off. *)
  let wrap f () =
    (try
       Rr_obs.Span.with_parent parent (fun () ->
           Rr_obs.with_span "parallel.task" f)
     with e ->
       Mutex.lock pool.mutex;
       if !error = None then error := Some e;
       Mutex.unlock pool.mutex);
    Rr_obs.Counter.incr c_tasks;
    Mutex.lock pool.mutex;
    decr remaining;
    if !remaining = 0 then Condition.broadcast batch_done;
    Mutex.unlock pool.mutex
  in
  Mutex.lock pool.mutex;
  Array.iter (fun f -> Queue.push (wrap f) pool.tasks) bodies;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    if !remaining = 0 then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else
      match Queue.take_opt pool.tasks with
      | Some task ->
        Mutex.unlock pool.mutex;
        task ()
      | None ->
        while !remaining > 0 && Queue.is_empty pool.tasks do
          Condition.wait batch_done pool.mutex
        done;
        Mutex.unlock pool.mutex
  done;
  if tel then begin
    Rr_obs.Counter.incr c_batches;
    Rr_obs.Histogram.observe h_batch (Rr_obs.Clock.monotonic () -. t0)
  end;
  match !error with Some e -> raise e | None -> ()

let default_chunks size n = min n (4 * size)

let parallel_for ?chunks n f =
  if n > 0 then begin
    let size = domain_count () in
    if size <= 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let pool = ensure_pool size in
      let nchunks =
        match chunks with
        | Some c -> max 1 (min c n)
        | None -> default_chunks size n
      in
      let step = (n + nchunks - 1) / nchunks in
      let bodies =
        Array.init nchunks (fun c ->
            let lo = c * step in
            let hi = min n (lo + step) in
            fun () ->
              for i = lo to hi - 1 do
                f i
              done)
      in
      run_batch pool bodies
    end
  end

let map_array f a =
  let n = Array.length a in
  if n = 0 then [||]
  else if domain_count () <= 1 then Array.map f a
  else begin
    (* First element on the calling domain: it both surfaces immediate
       errors and gives [Array.make] its witness value. *)
    let r0 = f a.(0) in
    let out = Array.make n r0 in
    parallel_for (n - 1) (fun i -> out.(i + 1) <- f a.(i + 1));
    out
  end

let fold ?chunks n ~f ~init ~combine =
  if n <= 0 then init
  else if domain_count () <= 1 then begin
    let acc = ref init in
    for i = 0 to n - 1 do
      acc := combine !acc (f i)
    done;
    !acc
  end
  else begin
    let v0 = f 0 in
    let values = Array.make n v0 in
    parallel_for ?chunks (n - 1) (fun i -> values.(i + 1) <- f (i + 1));
    Array.fold_left combine init values
  end
