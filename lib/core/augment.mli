(** Robustness analysis: which links to add (Sec. 6.3, Eq. 4).

    Finds the candidate link minimising the total aggregated bit-risk
    miles over all network pairs, then greedily repeats for the k-th
    link. Candidate links are non-edges whose direct distance shortens
    the current bit-miles between their endpoints by more than 50%
    (the paper's rule for pruning impractical cross-country links).

    To keep each greedy round O(candidates * n^2) the objective is
    evaluated with the network-mean impact [kappa = 2/n] rather than the
    per-pair [kappa_ij] (the single-edge-insertion identity needs a
    pair-independent edge weight); tests validate the approximation
    against brute force on small graphs.

    Candidate scoring fans out on the {!Rr_util.Parallel} domain pool,
    and rounds after the first rescore incrementally: only candidates
    whose endpoint rows/columns were touched by the last insertion are
    rescored in full, the rest receive an O(|changed cells|) delta.
    Results are bit-identical at any pool size. *)

type pick = {
  u : int;
  v : int;
  total_after : float;   (** total aggregated bit-risk miles once added *)
  fraction : float;      (** [total_after / original total], <= 1 *)
}

val total_bit_risk :
  ?risk_trees:(int -> Rr_graph.Dijkstra.tree) -> Env.t -> float
(** Sum over ordered connected pairs of the minimum (mean-kappa) bit-risk
    miles — Eq. 4's objective for the current topology. *)

val candidates :
  ?max_candidates:int -> ?reduction_threshold:float ->
  ?dist_trees:(int -> Rr_graph.Dijkstra.tree) -> Env.t -> (int * int) list
(** The pruned candidate set [E_C], ranked by the bit-miles reduction of
    the endpoints (largest first) and truncated to [max_candidates]
    (default 400). [reduction_threshold] (default 0.5, the paper's value)
    keeps a non-edge only when the direct link is shorter than
    [threshold x] the current bit-miles between its endpoints. *)

val greedy :
  ?k:int -> ?max_candidates:int -> ?reduction_threshold:float ->
  ?dist_trees:(int -> Rr_graph.Dijkstra.tree) ->
  ?risk_trees:(int -> Rr_graph.Dijkstra.tree) -> Env.t ->
  pick list
(** The best [k] (default 1) additional links, greedily: the i-th pick is
    evaluated on the topology including picks 1..i-1. Returns fewer than
    [k] picks when candidates run out.

    The [*_trees] providers (see [Rr_engine.Context.dist_trees] /
    [risk_trees]) replace the initial all-pairs Dijkstra sweeps with
    cached trees; they must be bitwise-identical to fresh runs under the
    pure-miles and {!risk_arc_weight} arc weights respectively. Cached
    rows are never mutated — the greedy relaxation copies rows before
    improving them. *)
