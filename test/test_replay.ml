(* Storm replay: the full and incremental stepping modes must render
   byte-identical per-tick reports while the incremental path does
   strictly less work — the property CI gates on at continental scale,
   exercised here on a corpus net at every pool size. *)

module Context = Rr_engine.Context
module Replay = Rr_experiments.Replay

let with_domains k f =
  let old = Rr_util.Parallel.domain_count () in
  Rr_util.Parallel.set_domain_count k;
  Fun.protect ~finally:(fun () -> Rr_util.Parallel.set_domain_count old) f

let run mode =
  let ctx = Context.create () in
  let net = Context.require_net ctx "Level3" in
  Replay.run ~mode ~pairs:4 ~ticks:45 ctx ~net ~storm:Rr_forecast.Track.sandy

let test_mode_names () =
  Alcotest.(check string) "full" "full" (Replay.mode_name Replay.Full);
  Alcotest.(check string) "incremental" "incremental"
    (Replay.mode_name Replay.Incremental);
  Alcotest.(check bool) "parse full" true
    (Replay.mode_of_string "Full" = Some Replay.Full);
  Alcotest.(check bool) "parse incr alias" true
    (Replay.mode_of_string "incr" = Some Replay.Incremental);
  Alcotest.(check bool) "reject junk" true (Replay.mode_of_string "x" = None)

let test_modes_render_identically_across_domains () =
  List.iter
    (fun domains ->
      with_domains domains (fun () ->
          let full = run Replay.Full in
          let incr = run Replay.Incremental in
          Alcotest.(check string)
            (Printf.sprintf "byte-identical report at %d domains" domains)
            (Replay.render full) (Replay.render incr);
          (* The whole point: same answers, strictly less work. *)
          Alcotest.(check bool)
            (Printf.sprintf "fewer nodes settled at %d domains" domains)
            true
            (incr.Replay.settled_nodes < full.Replay.settled_nodes);
          Alcotest.(check bool)
            (Printf.sprintf "fewer envs built at %d domains" domains)
            true
            (incr.Replay.envs_built < full.Replay.envs_built);
          Alcotest.(check int)
            (Printf.sprintf "one full build seeds the season at %d domains"
               domains)
            1 incr.Replay.envs_built;
          Alcotest.(check int)
            (Printf.sprintf "every other tick is patched at %d domains" domains)
            (List.length incr.Replay.rows - 1)
            incr.Replay.envs_patched;
          Alcotest.(check int)
            (Printf.sprintf "full mode never patches at %d domains" domains)
            0 full.Replay.envs_patched;
          Alcotest.(check bool)
            (Printf.sprintf "offshore ticks keep trees at %d domains" domains)
            true
            (incr.Replay.trees_kept > 0);
          Alcotest.(check bool)
            (Printf.sprintf "landfall ticks repair trees at %d domains" domains)
            true
            (incr.Replay.trees_repaired + incr.Replay.trees_evicted > 0)))
    [ 1; 2; 4 ]

let test_season_shape () =
  let r = run Replay.Incremental in
  Alcotest.(check int) "capped tick count" 45 (List.length r.Replay.rows);
  Alcotest.(check int) "flow count" 4 (Array.length r.Replay.flows);
  Alcotest.(check int) "churn total is the row sum"
    (List.fold_left (fun acc (row : Replay.row) -> acc + row.Replay.churned) 0
       r.Replay.rows)
    r.Replay.churn_total;
  (* Sandy reaches the Level3 footprint inside the first 45 advisories. *)
  Alcotest.(check bool) "some ticks move the field" true
    (r.Replay.changed_ticks > 0);
  Alcotest.(check bool) "some ticks are offshore" true
    (r.Replay.changed_ticks < List.length r.Replay.rows);
  List.iteri
    (fun i (row : Replay.row) ->
      Alcotest.(check int) (Printf.sprintf "row %d indexed in order" i) i
        row.Replay.index)
    r.Replay.rows

let test_summary_json_parses () =
  let r = run Replay.Incremental in
  match Rr_perf.Json.parse (Replay.summary_json r) with
  | Error e -> Alcotest.failf "summary is not valid JSON: %s" e
  | Ok j ->
    let get_i k = Option.bind (Rr_perf.Json.member k j) Rr_perf.Json.to_int in
    let get_s k =
      Option.bind (Rr_perf.Json.member k j) Rr_perf.Json.to_str
    in
    Alcotest.(check (option int)) "schema" (Some 1) (get_i "schema");
    Alcotest.(check (option string)) "mode" (Some "incremental") (get_s "mode");
    Alcotest.(check (option string)) "net" (Some r.Replay.net_name)
      (get_s "net");
    Alcotest.(check (option int)) "ticks" (Some 45) (get_i "ticks");
    Alcotest.(check (option int)) "settled_nodes" (Some r.Replay.settled_nodes)
      (get_i "settled_nodes");
    Alcotest.(check (option int)) "envs_patched" (Some r.Replay.envs_patched)
      (get_i "envs_patched")

let test_flows_deterministic () =
  let a = run Replay.Incremental and b = run Replay.Full in
  Alcotest.(check bool) "same flow sample every run" true
    (a.Replay.flows = b.Replay.flows)

let () =
  Alcotest.run "rr_replay"
    [
      ( "replay",
        [
          Alcotest.test_case "mode names" `Quick test_mode_names;
          Alcotest.test_case "season shape" `Quick test_season_shape;
          Alcotest.test_case "summary json" `Quick test_summary_json_parses;
          Alcotest.test_case "deterministic flows" `Quick
            test_flows_deterministic;
          Alcotest.test_case "full = incremental, domains 1/2/4" `Slow
            test_modes_render_identically_across_domains;
        ] );
    ]
