open Rr_util

type tree = { dist : float array; parent : int array }

(* Kernel counters. The CSR core picks one of two loop bodies per run —
   a plain one with no telemetry code and a counted one tallying into
   stack-local refs, flushed to the sharded counters once at the end —
   so routing with telemetry off pays exactly one flag read per run.
   Relaxations count the full arc range of each expanded node. *)
let c_runs = Rr_obs.Counter.make "dijkstra.runs"

let c_relaxations = Rr_obs.Counter.make "dijkstra.relaxations"

let c_heap_pushes = Rr_obs.Counter.make "dijkstra.heap_pushes"

let c_heap_pops = Rr_obs.Counter.make "dijkstra.heap_pops"

let c_early_stops = Rr_obs.Counter.make "dijkstra.early_stops"

let c_gc_minor_words = Rr_obs.Counter.make "dijkstra.gc_minor_words"

let flush_counters ~relaxations ~pushes ~pops ~early =
  Rr_obs.Counter.incr c_runs;
  Rr_obs.Counter.add c_relaxations relaxations;
  Rr_obs.Counter.add c_heap_pushes pushes;
  Rr_obs.Counter.add c_heap_pops pops;
  if early then Rr_obs.Counter.incr c_early_stops

(* Shared core over the adjacency-list graph: runs Dijkstra from [src];
   stops early once node [stop] (-1 for none) is settled. [stop] is a
   plain int so the settle test is an integer compare instead of an
   option allocation + polymorphic compare per pop. *)
let run g ~weight ~src ~stop =
  let n = Graph.node_count g in
  if src < 0 || src >= n then invalid_arg "Dijkstra: source out of range";
  let tel = Rr_obs.enabled () in
  let relaxations = ref 0 and pushes = ref 1 and pops = ref 0 in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create ~capacity:(max 16 n) () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let finished = ref false in
  while (not !finished) && not (Heap.is_empty heap) do
    let d = Heap.min_key heap in
    let u = Heap.min_elt heap in
    Heap.drop_min heap;
    if tel then incr pops;
    if not settled.(u) then begin
      settled.(u) <- true;
      if u = stop then finished := true
      else begin
        if tel then relaxations := !relaxations + Graph.degree g u;
        Graph.iter_neighbors g u (fun v ->
            if not settled.(v) then begin
              let w = weight u v in
              if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
              let nd = d +. w in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                parent.(v) <- u;
                Heap.push heap nd v;
                if tel then incr pushes
              end
            end)
      end
    end
  done;
  if tel then
    flush_counters ~relaxations:!relaxations ~pushes:!pushes ~pops:!pops
      ~early:!finished;
  { dist; parent }

(* Flat core over a CSR adjacency ([Graph.to_csr] layout): the edge
   relaxation loop walks an int array by index and weighs arcs through a
   single [int -> float] lookup — in the RiskRoute hot path that lookup
   is two float-array reads and a fused multiply-add, with no hashing,
   no list traversal and no great-circle trigonometry. *)
(* The disabled-mode loop: no telemetry code at all, so routing with
   telemetry off pays nothing inside the kernel. *)
let flat_loop ~off ~tgt ~weight ~stop ~dist ~parent ~settled ~heap ~finished =
  while (not !finished) && not (Heap.is_empty heap) do
    let d = Heap.min_key heap in
    let u = Heap.min_elt heap in
    Heap.drop_min heap;
    if not settled.(u) then begin
      settled.(u) <- true;
      if u = stop then finished := true
      else
        (* In-bounds by construction: [u < n] (heap only holds pushed
           nodes), so [off] reads are valid, and CSR targets satisfy
           [tgt.(k) < n]. Unsafe accesses keep the relaxation loop free
           of bounds checks — this is the innermost loop of every sweep. *)
        for k = Array.unsafe_get off u to Array.unsafe_get off (u + 1) - 1 do
          let v = Array.unsafe_get tgt k in
          if not (Array.unsafe_get settled v) then begin
            let w = weight k in
            if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
            let nd = d +. w in
            if nd < Array.unsafe_get dist v then begin
              Array.unsafe_set dist v nd;
              Array.unsafe_set parent v u;
              Heap.push heap nd v
            end
          end
        done
    end
  done

(* Same loop with kernel counters tallied into stack-local refs; chosen
   once per run when telemetry is enabled, flushed once at the end. *)
let flat_loop_counted ~off ~tgt ~weight ~stop ~dist ~parent ~settled ~heap
    ~finished =
  let relaxations = ref 0 and pushes = ref 1 and pops = ref 0 in
  while (not !finished) && not (Heap.is_empty heap) do
    let d = Heap.min_key heap in
    let u = Heap.min_elt heap in
    Heap.drop_min heap;
    incr pops;
    if not settled.(u) then begin
      settled.(u) <- true;
      if u = stop then finished := true
      else begin
        let lo = Array.unsafe_get off u and hi = Array.unsafe_get off (u + 1) in
        relaxations := !relaxations + (hi - lo);
        for k = lo to hi - 1 do
          let v = Array.unsafe_get tgt k in
          if not (Array.unsafe_get settled v) then begin
            let w = weight k in
            if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
            let nd = d +. w in
            if nd < Array.unsafe_get dist v then begin
              Array.unsafe_set dist v nd;
              Array.unsafe_set parent v u;
              Heap.push heap nd v;
              incr pushes
            end
          end
        done
      end
    end
  done;
  flush_counters ~relaxations:!relaxations ~pushes:!pushes ~pops:!pops
    ~early:!finished

let run_flat ~n ~off ~tgt ~weight ~src ~stop =
  if src < 0 || src >= n then invalid_arg "Dijkstra: source out of range";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create ~capacity:(max 16 n) () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let finished = ref false in
  if Rr_obs.enabled () then begin
    (* [Gc.minor_words] is domain-local and allocation-free, so the
       counted path can afford a per-run allocation delta: a run that
       starts boxing floats again shows up here before it shows up as
       wall-clock. *)
    let gc0 = Gc.minor_words () in
    flat_loop_counted ~off ~tgt ~weight ~stop ~dist ~parent ~settled ~heap
      ~finished;
    Rr_obs.Counter.add c_gc_minor_words (int_of_float (Gc.minor_words () -. gc0))
  end
  else flat_loop ~off ~tgt ~weight ~stop ~dist ~parent ~settled ~heap ~finished;
  { dist; parent }

let single_source g ~weight ~src = run g ~weight ~src ~stop:(-1)

let single_source_flat ~n ~off ~tgt ~weight ~src =
  run_flat ~n ~off ~tgt ~weight ~src ~stop:(-1)

(* --- Incremental repair (Ramalingam–Reps-style) ---------------------

   [repair] patches an existing tree after a sparse set of arc-weight
   changes instead of re-running Dijkstra from scratch. The contract is
   strict: the result must be bit-identical (dist AND parent) to a fresh
   [run_flat] under the new weights, because the engine's caches treat
   trees as content-addressed artifacts.

   Invalidation: the subtree hanging under every tree arc whose weight
   increased is "dirty" — those are exactly the nodes whose old dist can
   be stale-optimistic. Dirty nodes are reset to infinity and re-seeded
   from their intact in-neighbours; decreased arcs (tree or non-tree)
   seed improvements directly. The main loop is then ordinary Dijkstra
   over the dirty frontier.

   Bit-identity of [parent] needs one more guard: a fresh run breaks
   equal-cost ties by heap order, which the repair does not replay. So
   whenever a relaxation produces a candidate exactly equal to the
   resident dist through a different parent, the repair declares the
   tie ambiguous and falls back to a full recompute — by construction
   the repaired result is only returned when the new optimum is unique
   along every touched arc. Ties strictly inside the untouched region
   were already resolved by the fresh run that produced the input tree
   and are inherited verbatim. *)

type repair_stats = { settled : int; full : bool }

let c_repairs = Rr_obs.Counter.make "dijkstra.repairs"

let c_repair_full = Rr_obs.Counter.make "dijkstra.repair_full_fallbacks"

let c_repair_settled = Rr_obs.Counter.make "dijkstra.repair_settled"

exception Fallback

let count_reachable dist =
  Array.fold_left (fun acc d -> if d < infinity then acc + 1 else acc) 0 dist

let repair ~n ~off ~tgt ~mate ~weight ~old_weight ~changed
    ?(frontier_limit = max_int) tree ~src =
  let tel = Rr_obs.enabled () in
  if tel then Rr_obs.Counter.incr c_repairs;
  let full () =
    if tel then Rr_obs.Counter.incr c_repair_full;
    let t = run_flat ~n ~off ~tgt ~weight ~src ~stop:(-1) in
    let settled = count_reachable t.dist in
    if tel then Rr_obs.Counter.add c_repair_settled settled;
    (t, { settled; full = true })
  in
  try
    (* Child lists from the parent array (reverse iteration keeps each
       list in increasing node order; the order is irrelevant to the
       result, dirty marking visits whole subtrees either way). *)
    let child_head = Array.make n (-1) and child_next = Array.make n (-1) in
    for v = n - 1 downto 0 do
      let p = tree.parent.(v) in
      if p >= 0 then begin
        child_next.(v) <- child_head.(p);
        child_head.(p) <- v
      end
    done;
    let dirty = Array.make n false in
    let dirty_count = ref 0 in
    let rec mark v =
      if not dirty.(v) then begin
        dirty.(v) <- true;
        incr dirty_count;
        if !dirty_count > frontier_limit then raise Fallback;
        let c = ref child_head.(v) in
        while !c >= 0 do
          mark !c;
          c := child_next.(!c)
        done
      end
    in
    Array.iter
      (fun (k, u) ->
        let v = tgt.(k) in
        if tree.parent.(v) = u && weight k > old_weight k then mark v)
      changed;
    let dist = Array.copy tree.dist and parent = Array.copy tree.parent in
    let settled = Array.make n false in
    let heap = Heap.create ~capacity:(max 16 n) () in
    for v = 0 to n - 1 do
      if dirty.(v) then begin
        dist.(v) <- infinity;
        parent.(v) <- -1
      end
    done;
    (* Seed every dirty node from its intact in-neighbours, weighing the
       in-arc through the CSR mate (weights are per-arc and asymmetric). *)
    for v = 0 to n - 1 do
      if dirty.(v) then
        for k = off.(v) to off.(v + 1) - 1 do
          let u = tgt.(k) in
          if (not dirty.(u)) && dist.(u) < infinity then begin
            let w = weight mate.(k) in
            if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
            let nd = dist.(u) +. w in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              parent.(v) <- u;
              Heap.push heap nd v
            end
            else if nd = dist.(v) && parent.(v) <> u then raise Fallback
          end
        done
    done;
    (* Decreased arcs between intact nodes seed improvements directly
       (covers decreased tree arcs too: there the candidate is strictly
       below the resident dist). *)
    Array.iter
      (fun (k, u) ->
        let v = tgt.(k) in
        if (not dirty.(v)) && (not dirty.(u)) && dist.(u) < infinity then begin
          let w = weight k in
          if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
          let nd = dist.(u) +. w in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            parent.(v) <- u;
            Heap.push heap nd v
          end
          else if nd = dist.(v) && parent.(v) <> u then raise Fallback
        end)
      changed;
    let settled_count = ref 0 in
    while not (Heap.is_empty heap) do
      let d = Heap.min_key heap in
      let u = Heap.min_elt heap in
      Heap.drop_min heap;
      if not settled.(u) then begin
        settled.(u) <- true;
        incr settled_count;
        for k = off.(u) to off.(u + 1) - 1 do
          let v = tgt.(k) in
          let w = weight k in
          if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
          let nd = d +. w in
          if nd < dist.(v) then begin
            (* A strict improvement into an already-settled node would
               mean the repair settled it too early — cannot happen in a
               consistent run, but fall back rather than trust it. *)
            if settled.(v) then raise Fallback;
            dist.(v) <- nd;
            parent.(v) <- u;
            Heap.push heap nd v
          end
          else if nd = dist.(v) && parent.(v) <> u then raise Fallback
        done
      end
    done;
    if tel then Rr_obs.Counter.add c_repair_settled !settled_count;
    ({ dist; parent }, { settled = !settled_count; full = false })
  with Fallback -> full ()

let path_of_tree tree ~src ~dst =
  if tree.dist.(dst) = infinity then None
  else begin
    let rec build acc v =
      if v = src then src :: acc
      else begin
        let p = tree.parent.(v) in
        assert (p >= 0);
        build (v :: acc) p
      end
    in
    Some (build [] dst)
  end

let pair_of_tree tree ~src ~dst =
  if tree.dist.(dst) = infinity then None
  else
    match path_of_tree tree ~src ~dst with
    | None -> None
    | Some path -> Some (tree.dist.(dst), path)

let single_pair g ~weight ~src ~dst =
  let n = Graph.node_count g in
  if dst < 0 || dst >= n then invalid_arg "Dijkstra: destination out of range";
  if src = dst then Some (0.0, [ src ])
  else pair_of_tree (run g ~weight ~src ~stop:dst) ~src ~dst

let single_pair_flat ~n ~off ~tgt ~weight ~src ~dst =
  if dst < 0 || dst >= n then invalid_arg "Dijkstra: destination out of range";
  if src = dst then Some (0.0, [ src ])
  else pair_of_tree (run_flat ~n ~off ~tgt ~weight ~src ~stop:dst) ~src ~dst

let path_cost ~weight path =
  let rec loop acc = function
    | a :: (b :: _ as rest) -> loop (acc +. weight a b) rest
    | [ _ ] | [] -> acc
  in
  loop 0.0 path
