open Rr_gml

let to_gml (net : Net.t) =
  let nodes =
    Array.to_list net.Net.pops
    |> List.map (fun (p : Pop.t) ->
           ( "node",
             Ast.List
               [
                 ("id", Ast.Int p.Pop.id);
                 ("label", Ast.String p.Pop.name);
                 ("Latitude", Ast.Float (Rr_geo.Coord.lat p.Pop.coord));
                 ("Longitude", Ast.Float (Rr_geo.Coord.lon p.Pop.coord));
               ] ))
  in
  let edges =
    Rr_graph.Graph.edges net.Net.graph
    |> List.map (fun (u, v) ->
           ("edge", Ast.List [ ("source", Ast.Int u); ("target", Ast.Int v) ]))
  in
  [
    ( "graph",
      Ast.List
        ( [
            ("label", Ast.String net.Net.name);
            ("directed", Ast.Int 0);
            ( "tier",
              Ast.String
                (match net.Net.tier with Net.Tier1 -> "tier1" | Net.Regional -> "regional") );
          ]
        @ nodes @ edges ) );
  ]

let fail fmt = Printf.ksprintf failwith fmt

let of_gml doc =
  let graph_pairs =
    match Ast.find doc "graph" with
    | Some (Ast.List pairs) -> pairs
    | Some _ -> fail "Gml_io.of_gml: 'graph' is not a list"
    | None -> fail "Gml_io.of_gml: no 'graph' entry"
  in
  let name =
    match Ast.find graph_pairs "label" with
    | Some (Ast.String s) -> s
    | _ -> "unnamed"
  in
  let tier =
    match Ast.find graph_pairs "tier" with
    | Some (Ast.String "regional") -> Net.Regional
    | _ -> Net.Tier1
  in
  let node_lists =
    Ast.find_all graph_pairs "node"
    |> List.map (fun v ->
           match Ast.as_list v with
           | Some l -> l
           | None -> fail "Gml_io.of_gml: 'node' is not a list")
  in
  let raw_nodes =
    List.map
      (fun node ->
        let get key =
          match Ast.find node key with
          | Some v -> v
          | None -> fail "Gml_io.of_gml: node missing %S" key
        in
        let id =
          match Ast.as_int (get "id") with
          | Some i -> i
          | None -> fail "Gml_io.of_gml: node id is not an integer"
        in
        let label =
          match Ast.find node "label" with
          | Some (Ast.String s) -> s
          | _ -> Printf.sprintf "node-%d" id
        in
        let coord_part key =
          match Ast.as_float (get key) with
          | Some f -> f
          | None -> fail "Gml_io.of_gml: node %d has non-numeric %s" id key
        in
        (id, label, coord_part "Latitude", coord_part "Longitude"))
      node_lists
  in
  (* Re-index sparse ids densely, preserving document order. *)
  let index = Hashtbl.create (List.length raw_nodes) in
  List.iteri
    (fun dense (id, _, _, _) ->
      if Hashtbl.mem index id then fail "Gml_io.of_gml: duplicate node id %d" id;
      Hashtbl.add index id dense)
    raw_nodes;
  let pops =
    Array.of_list
      (List.mapi
         (fun dense (_, label, lat, lon) ->
           (* Zoo labels are free-form; split a trailing ", ST" when present. *)
           let city, state =
             match String.rindex_opt label ',' with
             | Some i when String.length label - i = 4 ->
               (String.sub label 0 i, String.sub label (i + 2) 2)
             | Some _ | None -> (label, "")
           in
           Pop.make ~id:dense ~city ~state (Rr_geo.Coord.make ~lat ~lon))
         raw_nodes)
  in
  let graph = Rr_graph.Graph.create (Array.length pops) in
  Ast.find_all graph_pairs "edge"
  |> List.iter (fun v ->
         let edge =
           match Ast.as_list v with
           | Some l -> l
           | None -> fail "Gml_io.of_gml: 'edge' is not a list"
         in
         let endpoint key =
           match Ast.find edge key with
           | Some v -> (
             match Ast.as_int v with
             | Some raw -> (
               match Hashtbl.find_opt index raw with
               | Some dense -> dense
               | None -> fail "Gml_io.of_gml: edge references unknown node %d" raw)
             | None -> fail "Gml_io.of_gml: edge %s is not an integer" key)
           | None -> fail "Gml_io.of_gml: edge missing %S" key
         in
         let u = endpoint "source" and v' = endpoint "target" in
         if u <> v' then Rr_graph.Graph.add_edge graph u v');
  Net.make ~name ~tier pops graph

let to_file path net = Printer.to_file path (to_gml net)

let of_file path = of_gml (Parser.parse_file path)
