open Rr_util

type recommendation = {
  regional : string;
  peer : string;
  baseline : float;
  with_peer : float;
  improvement : float;
}

let candidates_for merged i =
  let peering = Interdomain.peering merged in
  let nets = peering.Rr_topology.Peering.nets in
  List.filter
    (fun j ->
      j <> i
      && (not (Rr_topology.Peering.are_peers peering i j))
      && Rr_topology.Colocation.co_located nets.(i) nets.(j))
    (Listx.range 0 (Array.length nets))

let sample_pairs ~seed ~sources ~dests ~cap =
  let rng = Prng.create seed in
  let ns = Array.length sources and nd = Array.length dests in
  let total = ns * nd in
  if total <= cap then begin
    let out = ref [] in
    Array.iter
      (fun s -> Array.iter (fun d -> if s <> d then out := (s, d) :: !out) dests)
      sources;
    Array.of_list !out
  end
  else
    Array.init cap (fun _ ->
        (sources.(Prng.int rng ns), dests.(Prng.int rng nd)))

(* Mean lower-bound bit-risk miles over the sampled pairs; unreachable or
   degenerate pairs are skipped. *)
let mean_lower_bound env pairs =
  let acc = ref 0.0 and count = ref 0 in
  Array.iter
    (fun (src, dst) ->
      if src <> dst then
        match Router.riskroute env ~src ~dst with
        | Some route ->
          acc := !acc +. route.Router.bit_risk_miles;
          incr count
        | None -> ())
    pairs;
  if !count = 0 then infinity else !acc /. float_of_int !count

let recommend_for ?(pair_cap = 600) merged base_env ~regional =
  match candidates_for merged regional with
  | [] -> None
  | candidates ->
    let peering = Interdomain.peering merged in
    let nets = peering.Rr_topology.Peering.nets in
    let sources = Interdomain.net_nodes merged regional in
    let dests = Interdomain.regional_nodes merged in
    let pairs = sample_pairs ~seed:0xBEE4L ~sources ~dests ~cap:pair_cap in
    let baseline = mean_lower_bound base_env pairs in
    let evaluate j =
      let merged' = Interdomain.with_extra_peering merged ~net_a:regional ~net_b:j in
      let env' = Env.with_graph base_env (Interdomain.graph merged') in
      (j, mean_lower_bound env' pairs)
    in
    let scored = List.map evaluate candidates in
    (match Listx.min_by snd scored with
    | None -> None
    | Some (j, with_peer) ->
      Some
        {
          regional = nets.(regional).Rr_topology.Net.name;
          peer = nets.(j).Rr_topology.Net.name;
          baseline;
          with_peer;
          improvement =
            (if baseline > 0.0 && baseline < infinity then
               1.0 -. (with_peer /. baseline)
             else 0.0);
        })

let recommend_all ?pair_cap merged base_env =
  let peering = Interdomain.peering merged in
  let nets = peering.Rr_topology.Peering.nets in
  List.filter_map
    (fun i ->
      match nets.(i).Rr_topology.Net.tier with
      | Rr_topology.Net.Regional -> recommend_for ?pair_cap merged base_env ~regional:i
      | Rr_topology.Net.Tier1 -> None)
    (Listx.range 0 (Array.length nets))
