type characteristic =
  | Geographic_footprint
  | Average_pop_risk
  | Average_outdegree
  | Number_of_pops
  | Number_of_links
  | Number_of_peers

let all =
  [
    Geographic_footprint;
    Average_pop_risk;
    Average_outdegree;
    Number_of_pops;
    Number_of_links;
    Number_of_peers;
  ]

let name = function
  | Geographic_footprint -> "Geographic Footprint"
  | Average_pop_risk -> "Average PoP Risk"
  | Average_outdegree -> "Average Outdegree"
  | Number_of_pops -> "Number of PoPs"
  | Number_of_links -> "Number of Links"
  | Number_of_peers -> "Number of Peers"

let value characteristic ~net ~peering ~riskmap =
  match characteristic with
  | Geographic_footprint -> Rr_topology.Net.footprint_miles net
  | Average_pop_risk -> Rr_disaster.Riskmap.average_pop_risk riskmap net
  | Average_outdegree -> Rr_topology.Net.average_outdegree net
  | Number_of_pops -> float_of_int (Rr_topology.Net.pop_count net)
  | Number_of_links -> float_of_int (Rr_topology.Net.link_count net)
  | Number_of_peers -> (
    match Rr_topology.Peering.index_of peering net.Rr_topology.Net.name with
    | Some i -> float_of_int (Rr_topology.Peering.degree peering i)
    | None -> 0.0)

type row = {
  characteristic : characteristic;
  r2_risk : float;
  r2_distance : float;
}

let table ~results ~peering ~riskmap =
  if List.length results < 2 then
    invalid_arg "Characteristics.table: need at least two networks";
  let risk = Array.of_list (List.map (fun (_, r) -> r.Ratios.risk_reduction) results) in
  let dist =
    Array.of_list (List.map (fun (_, r) -> r.Ratios.distance_increase) results)
  in
  List.map
    (fun characteristic ->
      let x =
        Array.of_list
          (List.map (fun (net, _) -> value characteristic ~net ~peering ~riskmap) results)
      in
      {
        characteristic;
        r2_risk = Rr_stats.Regression.r_squared ~x ~y:risk;
        r2_distance = Rr_stats.Regression.r_squared ~x ~y:dist;
      })
    all
