(** Interdomain RiskRoute (Sec. 6.2): routing across several ISPs.

    All member networks are merged into one graph; every AS-level peering
    is realised as physical links between co-located PoP pairs. On this
    merged graph, the geographic shortest path is the paper's {e upper
    bound} on reasonable bit-risk miles, and the RiskRoute path (full
    control of every domain) is the {e lower bound}. *)

type t

val merge : ?threshold_miles:float -> Rr_topology.Peering.t -> t
(** Build the merged multi-ISP graph. Peering links are added between
    every co-located PoP pair (default threshold
    {!Rr_topology.Colocation.default_threshold_miles}) of every AS edge. *)

val peering : t -> Rr_topology.Peering.t
val graph : t -> Rr_graph.Graph.t
val node_count : t -> int

val node_id : t -> net:int -> pop:int -> int
(** Merged node id of PoP [pop] of network index [net]. *)

val owner : t -> int -> int
(** Network index owning a merged node. *)

val net_nodes : t -> int -> int array
(** All merged node ids of one network. *)

val regional_nodes : t -> int array
(** Merged node ids of every regional network's PoPs (the paper's
    interdomain destination set). *)

val peering_link_count : t -> int
(** Physical interconnects added on top of the member topologies. *)

val with_extra_peering :
  t -> net_a:int -> net_b:int -> t
(** Copy of the merged graph with a new peering between two member
    networks (links at all their co-located PoP pairs) — the candidate
    evaluation step of {!Peer_advisor}. *)

val env :
  ?params:Params.t ->
  ?riskmap:Rr_disaster.Riskmap.t ->
  ?advisory:Rr_forecast.Advisory.t ->
  t ->
  Env.t
(** Routing environment over the merged graph. Impact fractions are
    per-network service fractions halved, so [kappa_ij = c_i + c_j] is
    the endpoints' share of the two networks' combined customer base —
    the intradomain scale carried across domains. *)

val shared : unit -> t * Env.t
(** Merged graph + environment for {!Rr_topology.Zoo.shared} at default
    parameters, built once and memoised. *)
