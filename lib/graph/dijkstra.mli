(** Dijkstra shortest paths with a caller-supplied edge-weight function.

    This is the optimiser behind both shortest-path (bit-miles) routing and
    RiskRoute (bit-risk-miles, Eq. 3 of the paper): the two differ only in
    the weight function. Weights must be non-negative. *)

type tree = {
  dist : float array;  (** [infinity] for unreachable nodes *)
  parent : int array;  (** [-1] for the source and unreachable nodes *)
}
(** Trees are write-once: no function in this library mutates a
    returned tree, so callers may share them freely — the engine's
    tree cache ([Rr_engine.Context]) hands the same physical tree to
    every consumer, and [Augment] aliases [dist] arrays as all-pairs
    matrix rows. Anyone relaxing a cached row must copy it first. *)

val single_source : Graph.t -> weight:(int -> int -> float) -> src:int -> tree
(** Full shortest-path tree from [src]. *)

val single_source_flat :
  n:int ->
  off:int array ->
  tgt:int array ->
  weight:(int -> float) ->
  src:int ->
  tree
(** {!single_source} over a flattened CSR adjacency (see
    {!Graph.to_csr}); [weight] maps an {e arc index} to its weight. This
    is the hot path used by the risk sweeps: arc targets and weights are
    contiguous arrays, so relaxation does no list traversal and no
    per-edge recomputation. Arc order matches {!Graph.iter_neighbors},
    so results (including equal-cost tie-breaks) are identical to the
    closure-weight runner. *)

val single_pair :
  Graph.t -> weight:(int -> int -> float) -> src:int -> dst:int ->
  (float * int list) option
(** Cost and node path (source first) from [src] to [dst]; [None] when
    disconnected. Terminates early once [dst] is settled. *)

val single_pair_flat :
  n:int ->
  off:int array ->
  tgt:int array ->
  weight:(int -> float) ->
  src:int ->
  dst:int ->
  (float * int list) option
(** {!single_pair} over a flattened CSR adjacency. *)

type repair_stats = {
  settled : int;  (** nodes settled while repairing (or by the fallback run) *)
  full : bool;  (** [true] when the repair fell back to a fresh run *)
}

val repair :
  n:int ->
  off:int array ->
  tgt:int array ->
  mate:int array ->
  weight:(int -> float) ->
  old_weight:(int -> float) ->
  changed:(int * int) array ->
  ?frontier_limit:int ->
  tree ->
  src:int ->
  tree * repair_stats
(** Ramalingam–Reps-style incremental SSSP repair: given a tree that was
    computed from [src] under [old_weight] and a sparse set of changed
    arcs [(arc index, arc source)], produce the tree for [weight] —
    bit-identical ([dist] and [parent]) to a fresh
    {!single_source_flat} run under [weight]. [mate] is the reverse-CSR
    pairing from {!Graph.csr_mates} (repairs traverse in-arcs).

    Only the subtrees hanging under increased tree arcs are invalidated
    and re-settled, so a storm-local weight change settles a storm-local
    node count. The repair falls back to a full recompute (reported via
    [full = true]) when the invalidated region exceeds [frontier_limit]
    nodes (default: never) or when an equal-cost tie is encountered
    whose winner would depend on heap order — the bit-identity guarantee
    is unconditional either way. The input tree is not mutated. *)

val path_of_tree : tree -> src:int -> dst:int -> int list option
(** Recover the node path from a tree; [None] when [dst] unreachable. *)

val path_cost : weight:(int -> int -> float) -> int list -> float
(** Total weight of a node path (0 for paths of length < 2). *)
