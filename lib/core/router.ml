type route = {
  path : int list;
  bit_miles : float;
  bit_risk_miles : float;
}

let route_of_path env path =
  {
    path;
    bit_miles = Metric.bit_miles env path;
    bit_risk_miles = Metric.bit_risk_miles env path;
  }

(* Single-pair queries go through the environment's query facade, which
   picks plain / bidirectional / ALT per graph size while returning
   answers bit-identical to [Dijkstra.single_pair_flat]. *)
let riskroute env ~src ~dst =
  let kappa = Env.kappa env src dst in
  let miles = Env.arc_miles env and risk = Env.arc_risk env in
  let weight k = Array.unsafe_get miles k +. (kappa *. Array.unsafe_get risk k) in
  match Rr_graph.Query.run (Env.query env) ~weight ~src ~dst with
  | None -> None
  | Some (cost, path) ->
    Some { path; bit_miles = Metric.bit_miles env path; bit_risk_miles = cost }

let shortest_tree env ~src =
  let miles = Env.arc_miles env in
  Rr_graph.Dijkstra.single_source_flat ~n:(Env.node_count env)
    ~off:(Env.arc_off env) ~tgt:(Env.arc_tgt env)
    ~weight:(fun k -> Array.unsafe_get miles k)
    ~src

let shortest_of_tree env tree ~src ~dst =
  if src = dst then
    Some { path = [ src ]; bit_miles = 0.0; bit_risk_miles = 0.0 }
  else
    match Rr_graph.Dijkstra.path_of_tree tree ~src ~dst with
    | None -> None
    | Some path ->
      Some
        {
          path;
          bit_miles = tree.Rr_graph.Dijkstra.dist.(dst);
          bit_risk_miles = Metric.bit_risk_miles env path;
        }

let shortest env ~src ~dst =
  let miles = Env.arc_miles env in
  match
    Rr_graph.Query.run (Env.query env)
      ~weight:(fun k -> Array.unsafe_get miles k)
      ~src ~dst
  with
  | None -> None
  | Some (cost, path) ->
    Some { path; bit_miles = cost; bit_risk_miles = Metric.bit_risk_miles env path }
