let compute ?(pair_cap = 1000) ?(tick_stride = 4) storm =
  let zoo = Rr_topology.Zoo.shared () in
  List.map
    (fun net -> Riskroute.Casestudy.tier1 ~pair_cap ~tick_stride ~storm net)
    zoo.Rr_topology.Zoo.tier1s

let pp_series ppf (series : Riskroute.Casestudy.series list) =
  match series with
  | [] -> ()
  | first :: _ ->
    (* header row of advisory labels, then one row per network *)
    Format.fprintf ppf "%-18s" "Network \\ advisory";
    List.iter
      (fun (p : Riskroute.Casestudy.point) ->
        Format.fprintf ppf " %6d" p.Riskroute.Casestudy.tick)
      first.Riskroute.Casestudy.points;
    Format.fprintf ppf "@.";
    List.iter
      (fun (s : Riskroute.Casestudy.series) ->
        Format.fprintf ppf "%-18s" s.Riskroute.Casestudy.network;
        List.iter
          (fun (p : Riskroute.Casestudy.point) ->
            Format.fprintf ppf " %6.3f" p.Riskroute.Casestudy.risk_reduction)
          s.Riskroute.Casestudy.points;
        Format.fprintf ppf "  (scope %.0f%%)@."
          (100.0 *. s.Riskroute.Casestudy.scope_fraction))
      series

let run ppf =
  Format.fprintf ppf "Fig 12: Tier-1 case studies (risk-reduction ratio per advisory)@.";
  List.iter
    (fun storm ->
      Format.fprintf ppf "-- Hurricane %s --@." storm.Rr_forecast.Track.name;
      pp_series ppf (compute storm))
    Rr_forecast.Track.all
