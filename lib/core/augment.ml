type pick = {
  u : int;
  v : int;
  total_after : float;
  fraction : float;
}

(* All-pairs matrix of minimum path cost under a directed weight:
   [m.(i).(j)] is the best cost i -> j, infinity when disconnected. *)
let all_pairs graph ~weight =
  let n = Rr_graph.Graph.node_count graph in
  Array.init n (fun src ->
      (Rr_graph.Dijkstra.single_source graph ~weight ~src).Rr_graph.Dijkstra.dist)

let matrix_total m =
  let n = Array.length m in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && m.(i).(j) < infinity then acc := !acc +. m.(i).(j)
    done
  done;
  !acc

let risk_weight env =
  let kappa = Env.mean_kappa env in
  fun u v -> Env.edge_weight env ~kappa u v

let total_bit_risk env =
  matrix_total (all_pairs (Env.graph env) ~weight:(risk_weight env))

(* Relax the whole matrix through one new undirected edge (u, v): the only
   new paths pass through the edge in one of its two directions. *)
let relax_through m ~u ~v ~wuv ~wvu =
  let n = Array.length m in
  let out = Array.map Array.copy m in
  for i = 0 to n - 1 do
    let diu = m.(i).(u) and div_ = m.(i).(v) in
    if diu < infinity || div_ < infinity then
      for j = 0 to n - 1 do
        let best = ref out.(i).(j) in
        if diu < infinity && m.(v).(j) < infinity then begin
          let c = diu +. wuv +. m.(v).(j) in
          if c < !best then best := c
        end;
        if div_ < infinity && m.(u).(j) < infinity then begin
          let c = div_ +. wvu +. m.(u).(j) in
          if c < !best then best := c
        end;
        out.(i).(j) <- !best
      done
  done;
  out

let candidates ?(max_candidates = 400) ?(reduction_threshold = 0.5) env =
  let graph = Env.graph env in
  let n = Rr_graph.Graph.node_count graph in
  let dist_matrix = all_pairs graph ~weight:(fun u v -> Env.link_miles env u v) in
  let scored = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (Rr_graph.Graph.has_edge graph u v) then begin
        let direct = Env.link_miles env u v in
        let current = dist_matrix.(u).(v) in
        (* The paper keeps links yielding > 50% bit-miles reduction. *)
        if current < infinity && direct < reduction_threshold *. current then
          scored := (current -. direct, (u, v)) :: !scored
      end
    done
  done;
  List.sort (fun (a, _) (b, _) -> Float.compare b a) !scored
  |> Rr_util.Listx.take max_candidates
  |> List.map snd

let greedy ?(k = 1) ?max_candidates ?reduction_threshold env =
  let weight = risk_weight env in
  let graph = Rr_graph.Graph.copy (Env.graph env) in
  let m = ref (all_pairs graph ~weight) in
  let original = matrix_total !m in
  let pool = ref (candidates ?max_candidates ?reduction_threshold env) in
  let picks = ref [] in
  (try
     for _ = 1 to k do
       match !pool with
       | [] -> raise Exit
       | pool_now ->
         let best = ref None in
         List.iter
           (fun (u, v) ->
             let wuv = weight u v and wvu = weight v u in
             (* Total after adding (u, v), via the insertion identity —
                computed without materialising the relaxed matrix. *)
             let n = Array.length !m in
             let total = ref 0.0 in
             for i = 0 to n - 1 do
               let diu = !m.(i).(u) and div_ = !m.(i).(v) in
               for j = 0 to n - 1 do
                 if i <> j then begin
                   let cur = !m.(i).(j) in
                   let c1 =
                     if diu < infinity && !m.(v).(j) < infinity then
                       diu +. wuv +. !m.(v).(j)
                     else infinity
                   in
                   let c2 =
                     if div_ < infinity && !m.(u).(j) < infinity then
                       div_ +. wvu +. !m.(u).(j)
                     else infinity
                   in
                   let best_ij = Float.min cur (Float.min c1 c2) in
                   if best_ij < infinity then total := !total +. best_ij
                 end
               done
             done;
             match !best with
             | Some (_, _, t) when t <= !total -> ()
             | _ -> best := Some (u, v, !total))
           pool_now;
         (match !best with
         | None -> raise Exit
         | Some (u, v, total_after) ->
           Rr_graph.Graph.add_edge graph u v;
           m := relax_through !m ~u ~v ~wuv:(weight u v) ~wvu:(weight v u);
           pool := List.filter (fun e -> e <> (u, v)) !pool;
           picks :=
             { u; v; total_after; fraction = total_after /. original } :: !picks)
     done
   with Exit -> ());
  List.rev !picks
