(* The paper shows 11 AM 8/25, 5 PM 8/26 and 8 AM 8/28; with 3-hour ticks
   from 7 PM 8/20 those are advisory indices 38, 48 and 61. *)
let paper_ticks = [ 38; 48; 61 ]

let run _ctx ppf =
  let storm = Rr_forecast.Track.irene in
  let advisories = Array.of_list (Rr_forecast.Track.advisories storm) in
  Format.fprintf ppf
    "Fig 5: geo-spatial disaster forecast for Hurricane Irene@.";
  List.iter
    (fun tick ->
      if tick < Array.length advisories then begin
        let a = advisories.(tick) in
        Format.fprintf ppf "  advisory %2d  %s@." (tick + 1)
          a.Rr_forecast.Advisory.issued;
        Format.fprintf ppf
          "    center %a, hurricane-force %3.0f mi, tropical-storm-force %3.0f mi@."
          Rr_geo.Coord.pp a.Rr_forecast.Advisory.center
          a.Rr_forecast.Advisory.hurricane_radius_miles
          a.Rr_forecast.Advisory.tropical_radius_miles
      end)
    paper_ticks;
  (* also show the raw advisory text round-trip for one tick *)
  let sample = List.nth (Rr_forecast.Track.advisory_texts storm) 48 in
  Format.fprintf ppf "Sample rendered advisory text (tick 48):@.%s@." sample
