(** Great-circle distances in statute miles.

    The paper's bit-miles ("air miles", Level 3 traffic-exchange policy)
    and all kernel bandwidths (Table 1) are in miles, so miles are the
    native unit throughout this code base. *)

val earth_radius_miles : float
(** Mean Earth radius, 3958.761 miles. *)

val miles : Coord.t -> Coord.t -> float
(** Haversine great-circle distance. *)

val km : Coord.t -> Coord.t -> float
(** Same distance in kilometres (for display only). *)

val miles_to_km : float -> float
val km_to_miles : float -> float

val within : Coord.t -> center:Coord.t -> radius_miles:float -> bool
(** [within p ~center ~radius_miles] tests disc membership — the wind-radius
    test of the forecast risk field. *)
