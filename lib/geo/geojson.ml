type geometry =
  | Point of Coord.t
  | Line_string of Coord.t list
  | Polygon of Coord.t list

type feature = {
  geometry : geometry;
  properties : (string * string) list;
}

let feature ?(properties = []) geometry = { geometry; properties }

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* GeoJSON positions are [longitude, latitude]. *)
let position c = Printf.sprintf "[%.5f,%.5f]" (Coord.lon c) (Coord.lat c)

let positions coords = "[" ^ String.concat "," (List.map position coords) ^ "]"

let geometry_json = function
  | Point c -> Printf.sprintf {|{"type":"Point","coordinates":%s}|} (position c)
  | Line_string coords ->
    Printf.sprintf {|{"type":"LineString","coordinates":%s}|} (positions coords)
  | Polygon ring ->
    let closed =
      match ring with
      | [] -> []
      | first :: _ ->
        let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> first in
        if Coord.equal (last ring) first then ring else ring @ [ first ]
    in
    Printf.sprintf {|{"type":"Polygon","coordinates":[%s]}|} (positions closed)

let feature_json f =
  let props =
    List.map
      (fun (k, v) -> Printf.sprintf {|"%s":"%s"|} (escape k) (escape v))
      f.properties
  in
  Printf.sprintf {|{"type":"Feature","geometry":%s,"properties":{%s}}|}
    (geometry_json f.geometry)
    (String.concat "," props)

let feature_collection features =
  Printf.sprintf {|{"type":"FeatureCollection","features":[%s]}|}
    (String.concat "," (List.map feature_json features))

let circle ~center ~radius_miles ?(segments = 48) () =
  if segments < 3 then invalid_arg "Geojson.circle: segments < 3";
  let lat0 = Coord.lat center in
  let miles_per_lon = 69.0 *. Float.max 0.2 (cos (lat0 *. Float.pi /. 180.0)) in
  let ring =
    List.init segments (fun i ->
        let theta = 2.0 *. Float.pi *. float_of_int i /. float_of_int segments in
        let lat =
          Float.max (-89.9)
            (Float.min 89.9 (lat0 +. (radius_miles *. sin theta /. 69.0)))
        in
        let lon =
          Float.max (-179.9)
            (Float.min 179.9
               (Coord.lon center +. (radius_miles *. cos theta /. miles_per_lon)))
        in
        Coord.make ~lat ~lon)
  in
  Polygon ring

let to_file path features =
  let oc = open_out_bin path in
  output_string oc (feature_collection features);
  output_char oc '\n';
  close_out oc
