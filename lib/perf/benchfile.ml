type meta = {
  schema : int;
  domains : int;
  git_rev : string;
  hostname : string;
  ocaml_version : string;
  word_size : int;
  riskroute_domains : string;
  reps : int;
  warmups : int;
  cache_hits : int;   (* engine.cache.* hits observed during the run *)
  cache_misses : int;
  tree_cache_cap : int;   (* effective RISKROUTE_TREE_CACHE after validation *)
  topology_pops : string; (* PoP counts of the large-topology kernels, comma-joined *)
  (* GC pause quantiles (ns) over the whole recorded run, from the
     Runtime_events consumer; 0 when the consumer was off (pre-6 files,
     or a run without --series). *)
  gc_minor_pause_p50_ns : float;
  gc_minor_pause_p99_ns : float;
  gc_major_pause_p50_ns : float;
  gc_major_pause_p99_ns : float;
}

type result = {
  name : string;
  reps : int;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  min_ns : float;
  max_ns : float;
  gc_minor_words : float;
  gc_major_words : float;
}

type file = { meta : meta; results : result list }

let schema = 6

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json_string f =
  let b = Buffer.create 2048 in
  let m = f.meta in
  Printf.bprintf b
    "{\n\
    \  \"meta\": {\"schema\": %d, \"domains\": %d, \"git_rev\": \"%s\", \
     \"hostname\": \"%s\", \"ocaml_version\": \"%s\", \"word_size\": %d, \
     \"riskroute_domains\": \"%s\", \"reps\": %d, \"warmups\": %d, \
     \"cache_hits\": %d, \"cache_misses\": %d, \"tree_cache_cap\": %d, \
     \"topology_pops\": \"%s\", \"gc_minor_pause_p50_ns\": %.1f, \
     \"gc_minor_pause_p99_ns\": %.1f, \"gc_major_pause_p50_ns\": %.1f, \
     \"gc_major_pause_p99_ns\": %.1f},\n\
    \  \"results\": [\n"
    m.schema m.domains (escape m.git_rev) (escape m.hostname)
    (escape m.ocaml_version) m.word_size (escape m.riskroute_domains) m.reps
    m.warmups m.cache_hits m.cache_misses m.tree_cache_cap
    (escape m.topology_pops) m.gc_minor_pause_p50_ns m.gc_minor_pause_p99_ns
    m.gc_major_pause_p50_ns m.gc_major_pause_p99_ns;
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"name\": \"%s\", \"reps\": %d, \"mean_ns\": %.2f, \"p50_ns\": \
         %.2f, \"p95_ns\": %.2f, \"min_ns\": %.2f, \"max_ns\": %.2f, \
         \"gc_minor_words\": %.1f, \"gc_major_words\": %.1f}%s\n"
        (escape r.name) r.reps r.mean_ns r.p50_ns r.p95_ns r.min_ns r.max_ns
        r.gc_minor_words r.gc_major_words
        (if i < List.length f.results - 1 then "," else ""))
    f.results;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let num ?default j key =
  match Option.bind (Json.member key j) Json.to_num with
  | Some v -> Ok v
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing numeric field %S" key))

let str ?default j key =
  match Option.bind (Json.member key j) Json.to_str with
  | Some v -> Ok v
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing string field %S" key))

let ( let* ) = Result.bind

let result_of_json j =
  let* name = str j "name" in
  match Option.bind (Json.member "ns_per_run" j) Json.to_num with
  | Some est ->
    (* Schema 2: a single OLS estimate stands in for every statistic. *)
    Ok
      {
        name;
        reps = 1;
        mean_ns = est;
        p50_ns = est;
        p95_ns = est;
        min_ns = est;
        max_ns = est;
        gc_minor_words = 0.0;
        gc_major_words = 0.0;
      }
  | None ->
    let* reps = num j "reps" in
    let* mean_ns = num j "mean_ns" in
    let* p50_ns = num j "p50_ns" in
    let* p95_ns = num j "p95_ns" in
    let* min_ns = num ~default:p50_ns j "min_ns" in
    let* max_ns = num ~default:p95_ns j "max_ns" in
    let* gc_minor_words = num ~default:0.0 j "gc_minor_words" in
    let* gc_major_words = num ~default:0.0 j "gc_major_words" in
    Ok
      {
        name;
        reps = int_of_float reps;
        mean_ns;
        p50_ns;
        p95_ns;
        min_ns;
        max_ns;
        gc_minor_words;
        gc_major_words;
      }

let of_json_string text =
  let* j = Json.parse text in
  let meta_j =
    match Json.member "meta" j with Some m -> m | None -> Json.Obj []
  in
  let* schema_v = num ~default:0.0 meta_j "schema" in
  let* domains = num ~default:1.0 meta_j "domains" in
  let* git_rev = str ~default:"unknown" meta_j "git_rev" in
  let* hostname = str ~default:"unknown" meta_j "hostname" in
  let* ocaml_version = str ~default:"" meta_j "ocaml_version" in
  let* word_size = num ~default:0.0 meta_j "word_size" in
  let* riskroute_domains = str ~default:"" meta_j "riskroute_domains" in
  let* reps = num ~default:1.0 meta_j "reps" in
  let* warmups = num ~default:0.0 meta_j "warmups" in
  let* cache_hits = num ~default:0.0 meta_j "cache_hits" in
  let* cache_misses = num ~default:0.0 meta_j "cache_misses" in
  let* tree_cache_cap = num ~default:0.0 meta_j "tree_cache_cap" in
  let* topology_pops = str ~default:"" meta_j "topology_pops" in
  let* gc_minor_pause_p50_ns = num ~default:0.0 meta_j "gc_minor_pause_p50_ns" in
  let* gc_minor_pause_p99_ns = num ~default:0.0 meta_j "gc_minor_pause_p99_ns" in
  let* gc_major_pause_p50_ns = num ~default:0.0 meta_j "gc_major_pause_p50_ns" in
  let* gc_major_pause_p99_ns = num ~default:0.0 meta_j "gc_major_pause_p99_ns" in
  let* rows =
    match Option.bind (Json.member "results" j) Json.to_arr with
    | Some l -> Ok l
    | None -> Error "missing \"results\" array"
  in
  let* results =
    List.fold_left
      (fun acc row ->
        let* acc = acc in
        let* r = result_of_json row in
        Ok (r :: acc))
      (Ok []) rows
  in
  Ok
    {
      meta =
        {
          schema = int_of_float schema_v;
          domains = int_of_float domains;
          git_rev;
          hostname;
          ocaml_version;
          word_size = int_of_float word_size;
          riskroute_domains;
          reps = int_of_float reps;
          warmups = int_of_float warmups;
          cache_hits = int_of_float cache_hits;
          cache_misses = int_of_float cache_misses;
          tree_cache_cap = int_of_float tree_cache_cap;
          topology_pops;
          gc_minor_pause_p50_ns;
          gc_minor_pause_p99_ns;
          gc_major_pause_p50_ns;
          gc_major_pause_p99_ns;
        };
      results = List.rev results;
    }

let write path f =
  let oc = open_out path in
  output_string oc (to_json_string f);
  close_out oc

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": truncated read")
  | text -> (
    match of_json_string text with
    | Ok f -> Ok f
    | Error e -> Error (path ^ ": " ^ e))

let find f name = List.find_opt (fun r -> r.name = name) f.results
