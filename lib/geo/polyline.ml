type t = Coord.t array

let length_miles t =
  let acc = ref 0.0 in
  for i = 1 to Array.length t - 1 do
    acc := !acc +. Distance.miles t.(i - 1) t.(i)
  done;
  !acc

let point_at t ~fraction =
  if Array.length t = 0 then invalid_arg "Polyline.point_at: empty polyline";
  if Array.length t = 1 then t.(0)
  else begin
    let fraction = Float.max 0.0 (Float.min 1.0 fraction) in
    let target = fraction *. length_miles t in
    let rec walk i travelled =
      if i >= Array.length t - 1 then t.(Array.length t - 1)
      else begin
        let leg = Distance.miles t.(i) t.(i + 1) in
        if travelled +. leg >= target && leg > 0.0 then
          Coord.interpolate t.(i) t.(i + 1) ((target -. travelled) /. leg)
        else walk (i + 1) (travelled +. leg)
      end
    in
    walk 0 0.0
  end

let resample t ~every_miles =
  if every_miles <= 0.0 then invalid_arg "Polyline.resample: non-positive step";
  match Array.length t with
  | 0 -> [||]
  | 1 -> Array.copy t
  | _ ->
    let total = length_miles t in
    let n = max 1 (int_of_float (Float.round (total /. every_miles))) in
    Array.init (n + 1) (fun i ->
        point_at t ~fraction:(float_of_int i /. float_of_int n))
