let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Print floats so that they re-lex as floats: always include a dot or an
   exponent. *)
let float_literal f =
  let s = Printf.sprintf "%.17g" f in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
  else s ^ ".0"

let rec print_pairs buf indent pairs =
  List.iter
    (fun (key, value) ->
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_string buf key;
      Buffer.add_char buf ' ';
      print_value buf indent value;
      Buffer.add_char buf '\n')
    pairs

and print_value buf indent = function
  | Ast.Int i -> Buffer.add_string buf (string_of_int i)
  | Ast.Float f -> Buffer.add_string buf (float_literal f)
  | Ast.String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Ast.List pairs ->
    Buffer.add_string buf "[\n";
    print_pairs buf (indent + 2) pairs;
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'

let to_string doc =
  let buf = Buffer.create 1024 in
  print_pairs buf 0 doc;
  Buffer.contents buf

let to_file path doc =
  let oc = open_out_bin path in
  output_string oc (to_string doc);
  close_out oc
