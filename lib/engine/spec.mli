(** A declarative description of one experiment run.

    Experiment modules expose [compute : Context.t -> Spec.t -> result]
    and read everything configurable — which networks, routing params,
    sampling caps, provisioning budget, storm forecast — from the spec,
    so the fig*/table* pipeline is data-driven rather than hand-rolled
    per module. Fields an experiment does not use are simply ignored. *)

type networks =
  | Tier1s
  | Regionals
  | All_networks
  | Named of string list  (** case-insensitive {!Rr_topology.Zoo.find} names *)
  | Interdomain

type t = {
  networks : networks;
  params : Riskroute.Params.t;
  pair_cap : int option;      (** sampled source/destination pairs *)
  k : int option;             (** provisioning budget (links to add) *)
  tick_stride : int option;   (** advisory subsampling for case studies *)
  max_events : int option;    (** historical event cap (Table 1) *)
  advisory : Rr_forecast.Advisory.t option;
  storm : Rr_forecast.Track.storm option;
}

val default : t
(** All networks, default params, every option unset. *)

val make :
  ?networks:networks ->
  ?params:Riskroute.Params.t ->
  ?pair_cap:int ->
  ?k:int ->
  ?tick_stride:int ->
  ?max_events:int ->
  ?advisory:Rr_forecast.Advisory.t ->
  ?storm:Rr_forecast.Track.storm ->
  unit ->
  t

val pair_cap : default:int -> t -> int
val k : default:int -> t -> int
val tick_stride : default:int -> t -> int
val max_events : default:int -> t -> int

val storm_exn : t -> Rr_forecast.Track.storm
(** Raises [Invalid_argument] when the spec carries no storm. *)
