type point = {
  path : int list;
  bit_miles : float;
  risk : float;
}

let point_of_path env ~kappa path =
  {
    path;
    bit_miles = Metric.bit_miles env path;
    risk = kappa *. Metric.path_risk env path;
  }

let dominates a b =
  a.bit_miles <= b.bit_miles && a.risk <= b.risk
  && (a.bit_miles < b.bit_miles || a.risk < b.risk)

let non_dominated points =
  List.filter
    (fun p -> not (List.exists (fun q -> dominates q p) points))
    points

let dedup_paths points =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      if Hashtbl.mem seen p.path then false
      else begin
        Hashtbl.add seen p.path ();
        true
      end)
    points

let frontier ?(k = 24) env ~src ~dst =
  let kappa = Env.kappa env src dst in
  let graph = Env.graph env in
  let candidates_under weight =
    List.map snd (Rr_graph.Kpaths.yen graph ~weight ~src ~dst ~k)
  in
  let by_distance = candidates_under (fun u v -> Env.distance_weight env u v) in
  let by_risk =
    (* pure risk, with a tiny distance tiebreak to keep paths short *)
    candidates_under (fun u v ->
        (kappa *. Env.node_risk env v) +. (1e-6 *. Env.link_miles env u v))
  in
  let by_combined = candidates_under (fun u v -> Env.edge_weight env ~kappa u v) in
  let points =
    dedup_paths
      (List.map (point_of_path env ~kappa) (by_distance @ by_risk @ by_combined))
  in
  non_dominated points
  |> List.sort (fun a b -> Float.compare a.bit_miles b.bit_miles)

let sweep env ~src ~dst ~lambdas =
  Array.to_list lambdas
  |> List.filter_map (fun lambda_h ->
         let params = Params.with_lambda_h lambda_h (Env.params env) in
         let env' = Env.with_params env params in
         Option.map
           (fun route -> (lambda_h, route))
           (Router.riskroute env' ~src ~dst))

let knee points =
  match points with
  | [] | [ _ ] | [ _; _ ] -> None
  | first :: _ ->
    let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> assert false in
    let last_point = last points in
    let dx = last_point.bit_miles -. first.bit_miles in
    let dy = last_point.risk -. first.risk in
    let norm = sqrt ((dx *. dx) +. (dy *. dy)) in
    if norm = 0.0 then None
    else begin
      let distance_to_chord p =
        Float.abs
          ((dx *. (first.risk -. p.risk)) -. ((first.bit_miles -. p.bit_miles) *. dy))
        /. norm
      in
      Rr_util.Listx.max_by distance_to_chord points
    end
