let default_threshold_miles = 15.0

let pairs ?(threshold_miles = default_threshold_miles) a b =
  let acc = ref [] in
  for i = Net.pop_count a - 1 downto 0 do
    for j = Net.pop_count b - 1 downto 0 do
      let d =
        Rr_geo.Distance.miles (Net.pop a i).Pop.coord (Net.pop b j).Pop.coord
      in
      if d <= threshold_miles then acc := (i, j) :: !acc
    done
  done;
  !acc

let co_located ?threshold_miles a b =
  match pairs ?threshold_miles a b with [] -> false | _ :: _ -> true

let shared_cities a b =
  let cities_of net =
    Array.to_list net.Net.pops
    |> List.map (fun (p : Pop.t) -> p.Pop.city)
    |> List.sort_uniq String.compare
  in
  let cb = cities_of b in
  List.filter (fun c -> List.mem c cb) (cities_of a)
