type experiment = {
  id : string;
  title : string;
  run : Rr_engine.Context.t -> Format.formatter -> unit;
}

let all =
  [
    { id = "table1"; title = "Trained kernel density bandwidths"; run = Table1.run };
    { id = "table2"; title = "Tier-1 bit-risk to bit-miles trade-off"; run = Table2.run };
    { id = "table3"; title = "Regional characteristics R^2"; run = Table3.run };
    { id = "fig1"; title = "Network data sets"; run = Fig1.run };
    { id = "fig2"; title = "AS connectivity"; run = Fig2.run };
    { id = "fig3"; title = "Population density and assignment"; run = Fig3.run };
    { id = "fig4"; title = "Disaster kernel density estimates"; run = Fig4.run };
    { id = "fig5"; title = "Hurricane Irene forecast geometry"; run = Fig5.run };
    { id = "fig6"; title = "Final geographic scope of the hurricanes"; run = Fig6.run };
    { id = "fig7"; title = "Level3 Houston-Boston routes"; run = Fig7.run };
    { id = "fig8"; title = "Interdomain regional scatter"; run = Fig8.run };
    { id = "fig9"; title = "Ten best additional links"; run = Fig9.run };
    { id = "fig10"; title = "Risk decay with added links"; run = Fig10.run };
    { id = "fig11"; title = "Best additional peering"; run = Fig11.run };
    { id = "fig12"; title = "Tier-1 hurricane case studies"; run = Fig12.run };
    { id = "fig13"; title = "Regional hurricane case studies"; run = Fig13.run };
    { id = "abl-scale"; title = "Ablation: risk_scale sensitivity"; run = Ablation.run_scale };
    { id = "abl-impact"; title = "Ablation: impact factor"; run = Ablation.run_impact };
    { id = "abl-candidates"; title = "Ablation: candidate pruning threshold"; run = Ablation.run_candidates };
    { id = "abl-kde"; title = "Ablation: grid vs exact KDE"; run = Ablation.run_kde };
    { id = "abl-outage"; title = "Extension: outage Monte Carlo"; run = Ablation.run_outage };
    { id = "abl-seasonal"; title = "Extension: seasonal risk"; run = Ablation.run_seasonal };
    { id = "abl-ospf"; title = "Extension: OSPF weight export"; run = Ablation.run_ospf };
    { id = "abl-backup"; title = "Extension: backup-path plans"; run = Ablation.run_backup };
    { id = "abl-pareto"; title = "Extension: Pareto frontiers"; run = Ablation.run_pareto };
    { id = "abl-bgp"; title = "Extension: valley-free policy routing"; run = Ablation.run_bgp };
    { id = "abl-availability"; title = "Extension: availability accounting"; run = Ablation.run_availability };
    { id = "abl-traffic"; title = "Extension: gravity traffic weighting"; run = Ablation.run_traffic };
    { id = "abl-mrc"; title = "Extension: multiple routing configurations"; run = Ablation.run_mrc };
    { id = "abl-sla"; title = "Extension: SLA-constrained routing (LARAC)"; run = Ablation.run_sla };
  ]

let find id =
  let lower = String.lowercase_ascii id in
  List.find_opt (fun e -> String.equal e.id lower) all

let ids () = List.map (fun e -> e.id) all

(* Every experiment runs under a "report.<id>" span, so a telemetry dump
   attributes engine counters and nested spans (env builds, sweeps) to
   the experiment that caused them. *)
let run_timed e ctx ppf =
  Rr_obs.with_span ("report." ^ e.id) (fun () -> e.run ctx ppf)

let run_all ctx ppf =
  List.iter
    (fun e ->
      Format.fprintf ppf "@.=== %s: %s ===@." (String.uppercase_ascii e.id) e.title;
      (* Wall time, not [Sys.time]: CPU seconds overstate multicore runs
         by roughly the pool size. *)
      let t0 = Rr_obs.Clock.monotonic () in
      run_timed e ctx ppf;
      Format.fprintf ppf "[%s completed in %.1fs]@." e.id
        (Rr_obs.Clock.monotonic () -. t0))
    all
