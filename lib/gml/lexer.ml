type token =
  | Key of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Lbracket
  | Rbracket
  | Eof

exception Error of string * int

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let is_digit c = c >= '0' && c <= '9'

let tokens src =
  let n = String.length src in
  let pos = ref 0 in
  let acc = ref [] in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let emit tok = acc := tok :: !acc in
  let rec skip_ws () =
    match peek () with
    | Some c when is_space c ->
      incr pos;
      skip_ws ()
    | Some '#' ->
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done;
      skip_ws ()
    | Some _ | None -> ()
  in
  let lex_string () =
    let start = !pos in
    incr pos;
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then raise (Error ("unterminated string", start))
      else
        match src.[!pos] with
        | '"' -> incr pos
        | '\\' when !pos + 1 < n ->
          (* GML escapes are rare; pass the escaped char through. *)
          Buffer.add_char buf src.[!pos + 1];
          pos := !pos + 2;
          loop ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          loop ()
    in
    loop ();
    emit (String_lit (Buffer.contents buf))
  in
  let lex_number () =
    let start = !pos in
    if src.[!pos] = '-' || src.[!pos] = '+' then incr pos;
    let is_float = ref false in
    while
      !pos < n
      && (is_digit src.[!pos] || src.[!pos] = '.' || src.[!pos] = 'e'
         || src.[!pos] = 'E'
         || ((src.[!pos] = '-' || src.[!pos] = '+')
            && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E')))
    do
      if src.[!pos] = '.' || src.[!pos] = 'e' || src.[!pos] = 'E' then is_float := true;
      incr pos
    done;
    let text = String.sub src start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> emit (Float_lit f)
      | None -> raise (Error (Printf.sprintf "bad float %S" text, start))
    else begin
      match int_of_string_opt text with
      | Some i -> emit (Int_lit i)
      | None -> raise (Error (Printf.sprintf "bad integer %S" text, start))
    end
  in
  let lex_ident () =
    let start = !pos in
    while !pos < n && is_ident src.[!pos] do
      incr pos
    done;
    emit (Key (String.sub src start (!pos - start)))
  in
  let rec loop () =
    skip_ws ();
    match peek () with
    | None -> emit Eof
    | Some '[' ->
      incr pos;
      emit Lbracket;
      loop ()
    | Some ']' ->
      incr pos;
      emit Rbracket;
      loop ()
    | Some '"' ->
      lex_string ();
      loop ()
    | Some c when is_digit c || c = '-' || c = '+' ->
      lex_number ();
      loop ()
    | Some c when is_ident_start c ->
      lex_ident ();
      loop ()
    | Some c -> raise (Error (Printf.sprintf "unexpected character %C" c, !pos))
  in
  loop ();
  List.rev !acc
