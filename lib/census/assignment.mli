(** Nearest-neighbour population assignment (Sec. 5.1).

    Each census block's population is assigned to the geographically
    closest PoP; the per-PoP totals, normalised, are the service
    fractions [c_i] that enter the outage-impact factor
    [kappa_ij = c_i + c_j]. *)

val nearest_index : Rr_geo.Coord.t array -> Rr_geo.Coord.t -> int
(** Index of the closest site to a point (non-empty site array).
    Distances use a fast equirectangular approximation; on distant
    near-ties it can pick a site a fraction of a percent farther than the
    true nearest, which is immaterial for population assignment. *)

val populations : sites:Rr_geo.Coord.t array -> Block.t array -> float array
(** Total population assigned to each site. *)

val fractions : sites:Rr_geo.Coord.t array -> Block.t array -> float array
(** Per-site share of total population (sums to 1 when any block has
    positive population). *)
