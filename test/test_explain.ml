(* The risk provenance layer: the per-arc decomposition must reproduce
   the engine's bit-risk-mile totals *bit-for-bit* — on corpus and
   continental topologies, with and without a storm overlay, at any
   pool size — and every surfaced artifact (JSON document, counters,
   query front door) must stay faithful to the record. *)

module Parallel = Rr_util.Parallel
module Context = Rr_engine.Context
module Explain = Rr_explain
module Json = Rr_perf.Json

let with_domains k f =
  let old = Parallel.domain_count () in
  Parallel.set_domain_count k;
  Fun.protect ~finally:(fun () -> Parallel.set_domain_count old) f

let pool_sizes = [ 1; 2; 4 ]

let bits = Int64.bits_of_float

let check_bits label a b = Alcotest.(check int64) label (bits a) (bits b)

let explain_exn ?lambda_h ?storm ?tick ctx ~net ~src ~dst =
  match Explain.explain_named ?lambda_h ?storm ?tick ctx ~net ~src ~dst with
  | Ok t -> t
  | Error e -> Alcotest.failf "explain %s %s -> %s failed: %s" net src dst e

(* The decomposition invariants one [side] must satisfy: each arc
   weight replays [miles + kappa * (hist + fcst)] exactly, their left
   fold is [term_sum], and [term_sum] is the engine's own total. *)
let check_side label kappa (s : Explain.side) =
  Alcotest.(check bool) (label ^ ": decomposition flagged exact") true
    s.Explain.exact;
  check_bits
    (label ^ ": term sum reproduces the engine total")
    s.Explain.bit_risk_miles s.Explain.term_sum;
  let fold =
    List.fold_left
      (fun acc (a : Explain.arc) ->
        check_bits
          (Printf.sprintf "%s: arc %d->%d weight replays Eq. 1" label
             a.Explain.tail a.Explain.head)
          (a.Explain.miles +. (kappa *. (a.Explain.hist +. a.Explain.fcst)))
          a.Explain.weight;
        acc +. a.Explain.weight)
      0.0 s.Explain.arcs
  in
  check_bits (label ^ ": arc fold is the term sum") s.Explain.term_sum fold;
  Alcotest.(check int)
    (label ^ ": one arc per hop")
    (max 0 (List.length s.Explain.path - 1))
    (List.length s.Explain.arcs)

(* --- corpus networks, across pool sizes --- *)

let test_corpus_exact_all_pools () =
  let ctx = Context.create () in
  let runs =
    List.map
      (fun k ->
        with_domains k (fun () ->
            (k, explain_exn ctx ~net:"Level3" ~src:"Houston" ~dst:"Boston")))
      pool_sizes
  in
  List.iter
    (fun (k, t) ->
      let label side = Printf.sprintf "%d domains, %s" k side in
      check_side (label "riskroute") t.Explain.kappa t.Explain.riskroute;
      check_side (label "shortest") t.Explain.kappa t.Explain.shortest)
    runs;
  (* Routing is deterministic: every pool size explains the identical
     route with the identical floats. *)
  match runs with
  | (_, base) :: rest ->
    List.iter
      (fun (k, t) ->
        Alcotest.(check (list int))
          (Printf.sprintf "path at %d domains matches 1 domain" k)
          base.Explain.riskroute.Explain.path t.Explain.riskroute.Explain.path;
        check_bits
          (Printf.sprintf "bit-risk miles at %d domains match 1 domain" k)
          base.Explain.riskroute.Explain.bit_risk_miles
          t.Explain.riskroute.Explain.bit_risk_miles)
      rest
  | [] -> ()

(* The explained sides are the engine's own answers, not a parallel
   reimplementation: path and totals must coincide with [Router]. *)
let test_sides_match_router () =
  let ctx = Context.create () in
  let net = Context.require_net ctx "Level3" in
  let env = Context.env ctx net in
  let pop city =
    match Rr_topology.Net.find_pop net ~city with
    | Some i -> i
    | None -> Alcotest.failf "no %s on Level3" city
  in
  let src = pop "Houston" and dst = pop "Boston" in
  let t =
    match Explain.explain ctx net ~src ~dst with
    | Ok t -> t
    | Error e -> Alcotest.failf "explain failed: %s" e
  in
  (match Riskroute.Router.riskroute env ~src ~dst with
  | None -> Alcotest.fail "router found no riskroute path"
  | Some r ->
    Alcotest.(check (list int)) "riskroute path matches Router"
      r.Riskroute.Router.path t.Explain.riskroute.Explain.path;
    check_bits "riskroute total matches Router"
      r.Riskroute.Router.bit_risk_miles
      t.Explain.riskroute.Explain.bit_risk_miles;
    check_bits "riskroute miles match Router" r.Riskroute.Router.bit_miles
      t.Explain.riskroute.Explain.bit_miles);
  match Riskroute.Router.shortest env ~src ~dst with
  | None -> Alcotest.fail "router found no shortest path"
  | Some r ->
    Alcotest.(check (list int)) "shortest path matches Router"
      r.Riskroute.Router.path t.Explain.shortest.Explain.path;
    check_bits "shortest total matches Router"
      r.Riskroute.Router.bit_risk_miles
      t.Explain.shortest.Explain.bit_risk_miles

(* A storm overlay routes the forecast term through the same
   invariants. *)
let test_storm_overlay_exact () =
  let ctx = Context.create () in
  let t =
    explain_exn ctx ~net:"Level3" ~src:"Houston" ~dst:"Boston" ~storm:"sandy"
      ~tick:40
  in
  Alcotest.(check bool) "advisory recorded" true (t.Explain.advisory <> None);
  check_side "storm riskroute" t.Explain.kappa t.Explain.riskroute;
  check_side "storm shortest" t.Explain.kappa t.Explain.shortest;
  match
    Explain.explain_named ctx ~net:"Level3" ~src:"Houston" ~dst:"Boston"
      ~storm:"nope"
  with
  | Ok _ -> Alcotest.fail "unknown storm accepted"
  | Error e -> Alcotest.(check bool) "unknown storm named" true (e <> "")

(* --- the continental pipeline, across pool sizes --- *)

let test_continental_exact_all_pools () =
  let ctx = Context.create () in
  let runs =
    List.map
      (fun k ->
        with_domains k (fun () ->
            ( k,
              explain_exn ctx ~net:"continental-2000" ~src:"Chicago"
                ~dst:"Miami" )))
      pool_sizes
  in
  List.iter
    (fun (k, t) ->
      let label side = Printf.sprintf "continental, %d domains, %s" k side in
      check_side (label "riskroute") t.Explain.kappa t.Explain.riskroute;
      check_side (label "shortest") t.Explain.kappa t.Explain.shortest;
      (* No Env at this scale, so no forecast term and no risk
         fingerprint. *)
      check_bits (label "no forecast term") 0.0
        t.Explain.riskroute.Explain.fcst_contribution;
      Alcotest.(check bool) (label "risk fingerprint omitted") false
        (List.mem_assoc "risk" t.Explain.fingerprints))
    runs;
  match runs with
  | (_, base) :: rest ->
    List.iter
      (fun (k, t) ->
        check_bits
          (Printf.sprintf "continental totals at %d domains match 1 domain" k)
          base.Explain.riskroute.Explain.bit_risk_miles
          t.Explain.riskroute.Explain.bit_risk_miles)
      rest
  | [] -> ()

(* --- the JSON document --- *)

let test_json_roundtrip () =
  let ctx = Context.create () in
  let t = explain_exn ctx ~net:"Level3" ~src:"Houston" ~dst:"Boston" in
  let j =
    match Json.parse (Explain.to_json t) with
    | Ok j -> j
    | Error e -> Alcotest.failf "explain JSON does not parse: %s" e
  in
  let get path j =
    List.fold_left (fun j k -> Option.bind j (Json.member k)) (Some j) path
  in
  Alcotest.(check (option int)) "schema" (Some Explain.schema_version)
    (Option.bind (get [ "schema" ] j) Json.to_int);
  Alcotest.(check (option string)) "network name" (Some "Level3")
    (Option.bind (get [ "net" ] j) Json.to_str);
  Alcotest.(check bool) "exactness flag serialized" true
    (Option.bind (get [ "riskroute"; "decomposition_exact" ] j) (function
      | Json.Bool b -> Some b
      | _ -> None)
    = Some true);
  (* %.17g round-trips doubles: the parsed total is the record's total,
     bit for bit — external verifiers can re-fold the arcs. *)
  (match
     Option.bind (get [ "riskroute"; "bit_risk_miles" ] j) Json.to_num
   with
  | Some v ->
    check_bits "serialized total round-trips"
      t.Explain.riskroute.Explain.bit_risk_miles v
  | None -> Alcotest.fail "no riskroute.bit_risk_miles in JSON");
  (match Option.bind (get [ "riskroute"; "arcs" ] j) Json.to_arr with
  | Some arcs ->
    Alcotest.(check int) "every arc serialized"
      (List.length t.Explain.riskroute.Explain.arcs)
      (List.length arcs)
  | None -> Alcotest.fail "no riskroute.arcs in JSON");
  match Option.bind (get [ "top_pops" ] j) Json.to_arr with
  | Some pops ->
    Alcotest.(check bool) "top_pops bounded by top_k" true
      (List.length pops <= 5)
  | None -> Alcotest.fail "no top_pops in JSON"

(* --- the query front door (the /explain provider body) --- *)

let test_of_query () =
  let ctx = Context.create () in
  (match
     Explain.of_query ctx
       [ ("net", "Level3"); ("src", "Houston"); ("dst", "Boston") ]
   with
  | Error e -> Alcotest.failf "of_query failed: %s" e
  | Ok body -> (
    match Json.parse body with
    | Error e -> Alcotest.failf "of_query body does not parse: %s" e
    | Ok j ->
      Alcotest.(check (option string)) "query body names the net"
        (Some "Level3")
        (Option.bind (Json.member "net" j) Json.to_str)));
  (match Explain.of_query ctx [ ("net", "Level3"); ("src", "Houston") ] with
  | Ok _ -> Alcotest.fail "missing dst accepted"
  | Error e ->
    Alcotest.(check bool) "missing parameter named" true
      (let needle = "dst" in
       let n = String.length needle and m = String.length e in
       let rec go i =
         i + n <= m && (String.sub e i n = needle || go (i + 1))
       in
       go 0));
  match Explain.of_query ctx [ ("net", "nope"); ("src", "a"); ("dst", "b") ] with
  | Ok _ -> Alcotest.fail "unknown network accepted"
  | Error e -> Alcotest.(check bool) "unknown network is an error" true (e <> "")

(* --- telemetry --- *)

let test_counters_bump () =
  Rr_obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Rr_obs.set_enabled false) @@ fun () ->
  let requests = Rr_obs.Counter.make "explain.requests" in
  let errors = Rr_obs.Counter.make "explain.errors" in
  let seconds = Rr_obs.Histogram.make "explain.seconds" in
  let r0 = Rr_obs.Counter.value requests in
  let e0 = Rr_obs.Counter.value errors in
  let h0 = (Rr_obs.Histogram.snapshot seconds).Rr_obs.Histogram.count in
  let ctx = Context.create () in
  ignore (explain_exn ctx ~net:"Level3" ~src:"Houston" ~dst:"Boston");
  Alcotest.(check int) "a request is counted" (r0 + 1)
    (Rr_obs.Counter.value requests);
  Alcotest.(check int) "a success is not an error" e0
    (Rr_obs.Counter.value errors);
  Alcotest.(check int) "latency observed" (h0 + 1)
    (Rr_obs.Histogram.snapshot seconds).Rr_obs.Histogram.count;
  (match Explain.explain_named ctx ~net:"Level3" ~src:"Houston" ~dst:"Nope" with
  | Ok _ -> Alcotest.fail "unknown pop accepted"
  | Error _ -> ());
  Alcotest.(check int) "a failure is counted as an error" (e0 + 1)
    (Rr_obs.Counter.value errors)

let () =
  Alcotest.run "explain"
    [
      ( "decomposition",
        [
          Alcotest.test_case "corpus exact at pool sizes 1/2/4" `Quick
            test_corpus_exact_all_pools;
          Alcotest.test_case "sides are the router's answers" `Quick
            test_sides_match_router;
          Alcotest.test_case "storm overlay exact" `Quick
            test_storm_overlay_exact;
          Alcotest.test_case "continental exact at pool sizes 1/2/4" `Quick
            test_continental_exact_all_pools;
        ] );
      ( "surfaces",
        [
          Alcotest.test_case "json round-trips bit-for-bit" `Quick
            test_json_roundtrip;
          Alcotest.test_case "query front door" `Quick test_of_query;
          Alcotest.test_case "explain counters bump" `Quick test_counters_bump;
        ] );
    ]
