(* Valley-free Dijkstra over a 3-phase lifted graph.

   Phase 0 (climbing): may traverse customer->provider interconnects and
   stay climbing, cross one peering (-> phase 1), or start descending via
   provider->customer (-> phase 2).
   Phase 1 (peered):   may only descend (-> phase 2).
   Phase 2 (descend):  may only keep descending.
   Intra-network links never change phase. *)

let phases = 3

let transitions relationship phase =
  match (relationship, phase) with
  | Rr_topology.Peering.Customer_to_provider, 0 -> Some 0
  | Rr_topology.Peering.Peer_to_peer, 0 -> Some 1
  | Rr_topology.Peering.Provider_to_customer, (0 | 1 | 2) -> Some 2
  | Rr_topology.Peering.Customer_to_provider, _
  | Rr_topology.Peering.Peer_to_peer, _ ->
    None
  | _, _ -> None

let lifted_dijkstra merged env ~weight ~src ~dst =
  let peering = Interdomain.peering merged in
  let graph = Env.graph env in
  let n = Env.node_count env in
  let size = n * phases in
  let dist = Array.make size infinity in
  let parent = Array.make size (-1) in
  let settled = Array.make size false in
  let heap = Rr_util.Heap.create ~capacity:(4 * n) () in
  let state node phase = (node * phases) + phase in
  (* Goal direction rides along when the environment's query facade has
     landmarks prepared: heap keys carry the landmark lower bound on the
     remaining bit-miles (valid here too — valley-free constraints only
     shrink the path set, and lifted weights dominate bit-miles), while
     relaxations keep using the raw labels, so distances are unchanged. *)
  let pot =
    match Rr_graph.Query.potential (Env.query env) ~dst with
    | Some f -> f
    | None -> fun _ -> 0.0
  in
  dist.(state src 0) <- 0.0;
  Rr_util.Heap.push heap (pot src) (state src 0);
  let best_dst = ref None in
  let continue = ref true in
  while !continue do
    match Rr_util.Heap.pop_min heap with
    | None -> continue := false
    | Some (_, s) ->
      if not settled.(s) then begin
        settled.(s) <- true;
        let d = dist.(s) in
        let node = s / phases and phase = s mod phases in
        if node = dst then begin
          best_dst := Some s;
          continue := false
        end
        else
          Rr_graph.Graph.iter_neighbors graph node (fun next ->
              let next_phase =
                let owner_here = Interdomain.owner merged node in
                let owner_next = Interdomain.owner merged next in
                if owner_here = owner_next then Some phase
                else
                  match
                    Rr_topology.Peering.relationship peering owner_here owner_next
                  with
                  | Some relationship -> transitions relationship phase
                  | None -> None
              in
              match next_phase with
              | None -> ()
              | Some next_phase ->
                let s' = state next next_phase in
                if not settled.(s') then begin
                  let nd = d +. weight node next in
                  if nd < dist.(s') then begin
                    dist.(s') <- nd;
                    parent.(s') <- s;
                    Rr_util.Heap.push heap (nd +. pot next) s'
                  end
                end)
      end
  done;
  match !best_dst with
  | None -> None
  | Some s ->
    let rec build acc s =
      let node = s / phases in
      if parent.(s) = -1 then node :: acc else build (node :: acc) parent.(s)
    in
    Some (dist.(s), build [] s)

let route merged env ~src ~dst =
  if src = dst then Some (Router.route_of_path env [ src ])
  else begin
    let kappa = Env.kappa env src dst in
    let weight u v = Env.edge_weight env ~kappa u v in
    match lifted_dijkstra merged env ~weight ~src ~dst with
    | Some (_, path) -> Some (Router.route_of_path env path)
    | None -> None
  end

let shortest merged env ~src ~dst =
  if src = dst then Some (Router.route_of_path env [ src ])
  else
    match
      lifted_dijkstra merged env ~weight:(fun u v -> Env.distance_weight env u v)
        ~src ~dst
    with
    | Some (_, path) -> Some (Router.route_of_path env path)
    | None -> None

type bounds = {
  upper : float;
  policy : float;
  lower : float;
}

let bounds merged env ~src ~dst =
  match
    ( Router.shortest env ~src ~dst,
      route merged env ~src ~dst,
      Router.riskroute env ~src ~dst )
  with
  | Some upper, Some policy, Some lower ->
    Some
      {
        upper = upper.Router.bit_risk_miles;
        policy = policy.Router.bit_risk_miles;
        lower = lower.Router.bit_risk_miles;
      }
  | _ -> None
