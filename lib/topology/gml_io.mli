(** GML import/export for networks — the Internet Topology Zoo format.

    Exported documents use the Zoo's conventions ([graph [ node [ id,
    label, Latitude, Longitude ] edge [ source, target ] ]]) so that real
    Zoo maps parse with {!of_gml} and synthetic maps can be inspected with
    standard tools. *)

val to_gml : Net.t -> Rr_gml.Ast.t

val of_gml : Rr_gml.Ast.t -> Net.t
(** Raises [Failure] with a descriptive message on documents missing
    required fields (id, Latitude, Longitude) or with dangling edge
    endpoints. Node ids may be sparse in the input; they are re-indexed
    densely. *)

val to_file : string -> Net.t -> unit

val of_file : string -> Net.t
