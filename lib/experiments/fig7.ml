type comparison = {
  lambda_h : float;
  shortest : Riskroute.Router.route;
  riskroute : Riskroute.Router.route;
}

let level3 () =
  match Rr_topology.Zoo.find (Rr_topology.Zoo.shared ()) "Level3" with
  | Some net -> net
  | None -> failwith "Fig7: Level3 missing from the Zoo"

let endpoints net =
  match
    (Rr_topology.Net.find_pop net ~city:"Houston",
     Rr_topology.Net.find_pop net ~city:"Boston")
  with
  | Some h, Some b -> (h, b)
  | _ -> failwith "Fig7: Level3 map lacks a Houston or Boston PoP"

let compute () =
  let net = level3 () in
  let src, dst = endpoints net in
  List.map
    (fun lambda_h ->
      let params = Riskroute.Params.with_lambda_h lambda_h Riskroute.Params.default in
      let env = Riskroute.Env.of_net ~params net in
      let get = function
        | Some route -> route
        | None -> failwith "Fig7: Houston and Boston are disconnected"
      in
      {
        lambda_h;
        shortest = get (Riskroute.Router.shortest env ~src ~dst);
        riskroute = get (Riskroute.Router.riskroute env ~src ~dst);
      })
    [ 1e4; 1e5 ]

let pp_route ppf net (route : Riskroute.Router.route) =
  let names =
    List.map
      (fun i -> (Rr_topology.Net.pop net i).Rr_topology.Pop.name)
      route.Riskroute.Router.path
  in
  Format.fprintf ppf "%s (%.0f bit-miles, %.0f bit-risk-miles)"
    (String.concat " -> " names)
    route.Riskroute.Router.bit_miles route.Riskroute.Router.bit_risk_miles

let run ppf =
  let net = level3 () in
  Format.fprintf ppf
    "Fig 7: Level3 routing between Houston, TX and Boston, MA@.";
  List.iter
    (fun c ->
      Format.fprintf ppf "lambda_h = %.0e@." c.lambda_h;
      Format.fprintf ppf "  shortest : %a@." (fun ppf -> pp_route ppf net) c.shortest;
      Format.fprintf ppf "  riskroute: %a@." (fun ppf -> pp_route ppf net) c.riskroute)
    (compute ())
