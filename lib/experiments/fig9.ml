type suggestion = {
  network : string;
  links : (string * string * float) list;
}

let networks = [ "Level3"; "AT&T"; "Tinet" ]

let compute ?(k = 10) () =
  let zoo = Rr_topology.Zoo.shared () in
  List.filter_map
    (fun name ->
      match Rr_topology.Zoo.find zoo name with
      | None -> None
      | Some net ->
        let env = Riskroute.Env.of_net net in
        let picks = Riskroute.Augment.greedy ~k env in
        let links =
          List.map
            (fun (p : Riskroute.Augment.pick) ->
              ( (Rr_topology.Net.pop net p.Riskroute.Augment.u).Rr_topology.Pop.name,
                (Rr_topology.Net.pop net p.Riskroute.Augment.v).Rr_topology.Pop.name,
                p.Riskroute.Augment.fraction ))
            picks
        in
        Some { network = name; links })
    networks

let run ppf =
  Format.fprintf ppf
    "Fig 9: ten best additional links per network (greedy RiskRoute)@.";
  List.iter
    (fun s ->
      Format.fprintf ppf "%s:@." s.network;
      List.iteri
        (fun i (a, b, fraction) ->
          Format.fprintf ppf
            "  %2d. %-22s -- %-22s (bit-risk at %.3f of original)@." (i + 1) a b
            fraction)
        s.links)
    (compute ())
