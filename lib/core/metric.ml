let fold_hops env path ~init ~f =
  let rec loop acc = function
    | a :: (b :: _ as rest) -> loop (f acc a b) rest
    | [ _ ] | [] -> acc
  in
  ignore env;
  loop init path

let bit_miles env path =
  fold_hops env path ~init:0.0 ~f:(fun acc a b -> acc +. Env.link_miles env a b)

let path_risk env path =
  fold_hops env path ~init:0.0 ~f:(fun acc _ b -> acc +. Env.node_risk env b)

let bit_risk_miles_kappa env ~kappa path =
  fold_hops env path ~init:0.0 ~f:(fun acc a b ->
      acc +. Env.edge_weight env ~kappa a b)

let bit_risk_miles env path =
  match path with
  | [] | [ _ ] -> 0.0
  | first :: _ ->
    let rec last = function
      | [ x ] -> x
      | _ :: rest -> last rest
      | [] -> assert false
    in
    let kappa = Env.kappa env first (last path) in
    bit_risk_miles_kappa env ~kappa path
