(** The engine context: shared corpus plus content-addressed caches for
    the expensive derived artifacts.

    A context owns one network zoo, one historical riskmap, one disaster
    catalogue and one census, and memoises

    - {!Riskroute.Env} builds, keyed by (network, params, advisory)
      fingerprints — every experiment asking for the same environment
      gets the same physically-shared value;
    - Dijkstra shortest-path trees, keyed by (environment fingerprint,
      source, weight mode) in a bounded LRU — lambda sweeps and advisory
      ticks share pure-distance trees because those depend only on the
      network geometry.

    All cache operations are thread-safe: lookups and insertions happen
    under a context-private lock while artifact construction runs
    outside it, so concurrent misses at worst compute the same
    deterministic value twice. Cache traffic is visible as
    [engine.cache.*] counters in the {!Rr_obs} registry and, always, via
    {!stats}. *)

type t

type stats = {
  env_hits : int;
  env_misses : int;
  env_patched : int;  (** environments derived via {!patched_env} *)
  tree_hits : int;
  tree_misses : int;
  tree_evictions : int;  (** LRU capacity evictions *)
  settled_nodes : int;
      (** total nodes settled computing or repairing cached trees — the
          work metric the incremental path is meant to shrink *)
  delta_patched_arcs : int;  (** arcs re-weighted across all patches *)
  delta_trees_kept : int;
      (** cached trees migrated across an advisory tick untouched *)
  delta_trees_repaired : int;
      (** cached trees incrementally repaired ({!Rr_graph.Dijkstra.repair}) *)
  delta_trees_evicted : int;
      (** cached trees whose repair fell back to a full recompute *)
}

val default_tree_cache_cap : int
(** 4096 trees, overridable per-context or via the
    [RISKROUTE_TREE_CACHE] environment variable. *)

val create : ?zoo:Rr_topology.Zoo.t -> ?tree_cache_cap:int -> unit -> t
(** A fresh context (empty caches). [zoo] defaults to
    {!Rr_topology.Zoo.shared}; riskmap, catalogue and census are the
    shared singletons, forced lazily. *)

val shared : unit -> t
(** The process-wide context over the shared corpus, built once — what
    the CLI, report runner and benchmarks use. *)

(** {1 Corpus} *)

val zoo : t -> Rr_topology.Zoo.t
val riskmap : t -> Rr_disaster.Riskmap.t
val catalog : t -> Rr_disaster.Catalog.t
val census_blocks : t -> Rr_census.Block.t array

val net : t -> string -> Rr_topology.Net.t option
(** Case-insensitive {!Rr_topology.Zoo.find}. *)

val require_net : t -> string -> Rr_topology.Net.t
(** Raises [Failure] with the known names when absent. *)

val nets : t -> Spec.networks -> Rr_topology.Net.t list
(** Resolve a spec's network selection; raises [Invalid_argument] for
    {!Spec.Interdomain} (use {!interdomain}) and [Failure] for unknown
    {!Spec.Named} entries. *)

val interdomain : t -> Riskroute.Interdomain.t * Riskroute.Env.t
(** Merged multi-ISP graph and its default-parameter environment,
    memoised per context (and shared with
    {!Riskroute.Interdomain.shared} when the context uses the shared
    corpus). *)

(** {1 Cached artifacts} *)

val env :
  ?params:Riskroute.Params.t ->
  ?advisory:Rr_forecast.Advisory.t ->
  t ->
  Rr_topology.Net.t ->
  Riskroute.Env.t
(** The environment for (net, params, advisory), built on first use and
    content-addressed thereafter. *)

val patched_env :
  ?advisory:Rr_forecast.Advisory.t ->
  t ->
  Rr_topology.Net.t ->
  parent:Riskroute.Env.t ->
  Riskroute.Env.t
(** Incremental twin of {!env} for advisory streams: the environment for
    (net, [parent]'s params, [advisory]), derived by diffing the new
    advisory's risk field against [parent]'s
    ({!Rr_forecast.Riskfield.diff_field}) and patching
    ({!Riskroute.Env.patch}) instead of rebuilding — bit-identical to
    what {!env} would return, registered under the same
    content-addressed cache key, at O(n + changed) cost.

    The parent's cached risk trees migrate to the child's namespace in
    the same step: trees no changed arc can reach into are kept
    verbatim, the rest are repaired in place via
    {!Rr_graph.Dijkstra.repair} (falling back to a full recompute when
    the dirty frontier exceeds the [RISKROUTE_REPAIR_FRONTIER] fraction
    of the node count). The child's risk fingerprint chains from the
    parent's ({!Fingerprint.risk_delta}), so provenance stays exact
    without rehashing the arc arrays. Totals land in {!stats} and the
    [engine.delta.*] counters. [parent] must be an environment over the
    same network (typically the previous tick's). *)

val dist_trees : t -> Riskroute.Env.t -> int -> Rr_graph.Dijkstra.tree
(** [dist_trees ctx env src] is the pure bit-miles shortest-path tree
    from [src], bitwise-identical to {!Riskroute.Router.shortest_tree}.
    Keyed by the environment's {e geometry} fingerprint, so environments
    differing only in params or advisory share entries. Partially apply
    ([let trees = dist_trees ctx env in ...]) to pay the fingerprint
    once per sweep. *)

val risk_trees : t -> Riskroute.Env.t -> int -> Rr_graph.Dijkstra.tree
(** Mean-kappa risk-weighted tree from [src], bitwise-identical to a
    {!Rr_graph.Dijkstra.single_source_flat} run under
    {!Riskroute.Augment.risk_arc_weight}. Keyed by the environment's
    risk fingerprint. *)

val query : t -> Riskroute.Env.t -> Rr_graph.Query.t
(** The environment's point-to-point query facade
    ({!Riskroute.Env.query}) with its landmark distance-tree computation
    routed through this context's tree LRU (same keys as
    {!dist_trees}): ALT landmarks are cached per geometry fingerprint,
    so advisory ticks that only perturb risk reuse them. *)

val net_query : t -> Rr_topology.Net.t -> Rr_graph.Query.t
(** A query facade straight over a network's CSR — no {!Riskroute.Env}
    and no dense distance matrix, which is what makes 10k-50k-PoP
    continental graphs routable (the dense matrix alone would be
    gigabytes). Per-arc miles match an Env over the same net bitwise,
    and the geometry fingerprint (hence the tree-cache namespace) is
    shared. Memoised per context by physical identity. *)

val continental :
  ?spec:Rr_topology.Builder.continental_spec -> t -> pops:int ->
  Rr_topology.Net.t
(** The continental-scale merged net with [pops] PoPs
    ({!Rr_topology.Builder.continental} at the zoo's default seed),
    built once per context and memoised by size. *)

(** {1 Introspection} *)

val stats : t -> stats
(** Plain-integer cache totals, maintained whether or not telemetry is
    enabled (the [engine.cache.*] counters only record when it is). *)

val stats_fields : t -> (string * int) list
(** {!stats} plus cache occupancy as flat [(name, value)] pairs from
    one locked read, in a fixed order (["env.hits"], ["env.misses"],
    ["env.patched"], ["env.cache_length"], ["tree.hits"],
    ["tree.misses"], ["tree.evictions"], ["tree.cache_length"],
    ["tree.cache_capacity"], ["tree.settled_nodes"],
    ["delta.patched_arcs"], ["delta.trees_kept"],
    ["delta.trees_repaired"], ["delta.trees_evicted"]) — the shape the
    time-series sampler records per tick via
    [Rr_obs.Series.set_stats_provider]. *)

val stats_json : t -> string
(** {!stats_fields} as a JSON document — the body the live plane's
    [/stats] endpoint serves once the CLI or bench harness registers
    [fun () -> stats_json (shared ())] with
    [Rr_live.set_stats_provider]. *)

val tree_cache_length : t -> int
val tree_cache_capacity : t -> int
val env_cache_length : t -> int
