(** Table 3: coefficient of determination (R^2) of regional network
    characteristics against the interdomain ratios of Fig. 8. *)

val paper : (string * (float * float)) list
(** Paper's (risk-ratio R^2, distance-ratio R^2) per characteristic. *)

val compute : ?pair_cap:int -> unit -> Riskroute.Characteristics.row list

val run : Format.formatter -> unit
