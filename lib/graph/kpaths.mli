(** K shortest loopless paths (Yen's algorithm).

    Substrate for the multi-objective extensions: enumerating near-optimal
    paths under one weight exposes the distance/risk trade-off curve
    between two PoPs. *)

val yen :
  Graph.t -> weight:(int -> int -> float) -> src:int -> dst:int -> k:int ->
  (float * int list) list
(** Up to [k] loopless paths in non-decreasing cost order (source first in
    each path). Fewer are returned when the graph does not admit [k]
    distinct paths. Empty when [src] and [dst] are disconnected. *)
