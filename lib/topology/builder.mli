(** Deterministic synthetic ISP generator.

    Real Topology Zoo maps are unavailable in this sealed environment, so
    networks are grown over the real city gazetteer the way fibre maps
    look in the Zoo: a minimum spanning tree guarantees connectivity,
    a sampled subset of Gabriel-graph edges adds regional meshiness, and a
    few hub shortcuts connect the biggest metros. PoP sites are drawn
    weighted by city population; when a network needs more PoPs than its
    region has cities, extra metro PoPs are placed with a small jitter
    (as multiple PoPs per metro are common in real maps). *)

type style =
  | Mesh
      (** MST backbone + sampled Gabriel edges — large meshy backbones
          (Level3) and regional footprints *)
  | Ring
      (** a national ring (angular tour around the centroid) + sampled
          Gabriel chords — the shape of small Tier-1 US maps in the
          Topology Zoo *)

type spec = {
  name : string;
  tier : Net.tier;
  states : string list;
      (** restrict the city pool (and the served population) to these
          states; empty means the whole CONUS *)
  pop_count : int;
  style : style;
  mesh_fraction : float;
      (** probability of keeping each non-backbone Gabriel edge; controls
          link density *)
  hub_links : int;
      (** extra shortcut links among the most populous PoP metros *)
}

val build : rng:Rr_util.Prng.t -> spec -> Net.t
(** Grow one network. The result is connected and has exactly
    [spec.pop_count] PoPs. Raises [Invalid_argument] when the state list
    selects no cities or [pop_count < 1]. *)

type continental_spec = {
  name : string;
  pop_count : int;  (** total PoPs across the merged graph *)
  region_size : int;
      (** maximum PoPs per stitched regional network; the O(n^2)-ish
          regional wiring runs per region, which is what keeps 10k-50k
          PoP builds tractable *)
  cell_degrees : float;
      (** geographic grid granularity for allocating the PoP budget
          (population-proportional, largest remainder) *)
  mesh_fraction : float;
      (** probability of keeping each non-backbone chord, regional and
          inter-regional alike *)
  interconnects : int;
      (** closest cross-region PoP pairs linked per stitched region
          pair *)
  hub_links : int;  (** long-haul express links among the top metros *)
}

val continental_defaults : name:string -> pop_count:int -> continental_spec
(** [region_size = 250], [cell_degrees = 5.0], [mesh_fraction = 0.35],
    [interconnects = 2], [hub_links = 12]. *)

val continental : rng:Rr_util.Prng.t -> continental_spec -> Net.t
(** Grow a merged CONUS graph of [pop_count] PoPs: regional Mesh/Ring
    networks of at most [region_size] PoPs each, stitched along a
    spanning tree of region centroids (plus sampled chords), with hub
    express links. Connected by construction, population-weighted site
    selection, deterministic under the seed. Raises [Invalid_argument]
    on non-positive [pop_count], [region_size] or [interconnects]. *)
