type value =
  | Int of int
  | Float of float
  | String of string
  | List of (string * value) list

type t = (string * value) list

let find doc key =
  match List.assoc_opt key doc with
  | Some v -> Some v
  | None -> None

let find_all doc key =
  List.filter_map (fun (k, v) -> if String.equal k key then Some v else None) doc

let as_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | Float _ | String _ | List _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | String _ | List _ -> None

let as_string = function
  | String s -> Some s
  | Int _ | Float _ | List _ -> None

let as_list = function
  | List l -> Some l
  | Int _ | Float _ | String _ -> None

let rec equal_value a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y -> equal x y
  | (Int _ | Float _ | String _ | List _), _ -> false

and equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ka, va) (kb, vb) -> String.equal ka kb && equal_value va vb)
       a b
