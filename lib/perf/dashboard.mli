(** The offline HTML dashboard behind [riskroute dashboard].

    Renders a single self-contained page — inline CSS, inline SVG,
    a few lines of inline script, no external assets — from either of
    the two JSON artifacts the toolchain produces:

    - a time-series dump written by [Rr_obs.Series] ([--series] /
      [RISKROUTE_SERIES]): stat tiles plus one sparkline per recorded
      metric (counter deltas, gauge levels, histogram p50 per window,
      GC activity, engine cache stats);
    - a [BENCH_*.json] benchmark file ({!Benchfile}): run metadata
      tiles plus a horizontal p50 bar chart over the kernels.

    Both flavours carry hover tooltips, a collapsible table view of
    the underlying numbers, and light/dark themes selected by
    [prefers-color-scheme] (overridable with [data-theme] on [body]).
    The input kind is detected from the document shape ([samples] vs
    [results]); anything else is an [Error]. *)

val render : source:string -> string -> (string, string) result
(** [render ~source json] is the HTML page for [json], or a parse /
    shape diagnostic. [source] is a display name (typically the input
    file's basename) used in the page title. *)
