(** Best new peering for a regional network (Sec. 6.3, interdomain case).

    In the multi-domain setting the operator cannot add internal links to
    other ISPs; instead RiskRoute evaluates candidate peers — networks
    co-located with the regional's PoPs but not currently peered — and
    recommends the one minimising the lower-bound bit-risk miles of the
    regional's interdomain traffic. *)

type recommendation = {
  regional : string;
  peer : string;              (** recommended new peer *)
  baseline : float;           (** mean lower-bound bit-risk miles today *)
  with_peer : float;          (** same after adding the peering *)
  improvement : float;        (** [1 - with_peer / baseline] *)
}

val candidates_for : Interdomain.t -> int -> int list
(** Network indices co-located with the given network but not peered with
    it. *)

val recommend_for :
  ?pair_cap:int -> Interdomain.t -> Env.t -> regional:int ->
  recommendation option
(** Best candidate for one regional network index; [None] when there are
    no candidates. [pair_cap] (default 600) bounds the sampled
    source/destination pairs per evaluation. *)

val recommend_all :
  ?pair_cap:int -> Interdomain.t -> Env.t -> recommendation list
(** One recommendation per regional network that has candidates (Fig. 11). *)
