open Rr_util

let mean = Arrayx.fmean

let variance a =
  let m = mean a in
  let devs = Array.map (fun x -> (x -. m) *. (x -. m)) a in
  Arrayx.fmean devs

let stddev a = sqrt (variance a)

let sorted_copy a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let percentile a p =
  assert (Array.length a > 0);
  if p < 0.0 || p > 100.0 then invalid_arg "Descriptive.percentile: p out of range";
  let b = sorted_copy a in
  let n = Array.length b in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = min (n - 1) (lo + 1) in
  let frac = rank -. float_of_int lo in
  (b.(lo) *. (1.0 -. frac)) +. (b.(hi) *. frac)

let median a = percentile a 50.0

let covariance a b =
  assert (Array.length a = Array.length b && Array.length a > 0);
  let ma = mean a and mb = mean b in
  let prods = Array.init (Array.length a) (fun i -> (a.(i) -. ma) *. (b.(i) -. mb)) in
  Arrayx.fmean prods

let correlation a b =
  let sa = stddev a and sb = stddev b in
  if sa = 0.0 || sb = 0.0 then 0.0 else covariance a b /. (sa *. sb)
