(** GeoJSON views of networks and routes. *)

val net_features : Net.t -> Rr_geo.Geojson.feature list
(** One [Point] per PoP (with name/state properties) and one
    [LineString] per link. *)

val route_feature :
  ?properties:(string * string) list -> Net.t -> int list ->
  Rr_geo.Geojson.feature
(** A node path as a [LineString]. Raises [Invalid_argument] on node ids
    outside the network. *)

val to_file : string -> Net.t -> unit
(** Write the whole network as a FeatureCollection. *)
