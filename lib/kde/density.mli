(** Exact kernel density estimate over geographic event locations
    (Eq. 2 of the paper).

    Evaluation is O(number of events); use {!Grid_density} when many
    evaluations over a fixed surface are needed. *)

type t

val fit : bandwidth:float -> Rr_geo.Coord.t array -> t
(** Fit to a non-empty event set. Raises [Invalid_argument] on an empty
    array or non-positive bandwidth. *)

val bandwidth : t -> float
val event_count : t -> int

val eval : t -> Rr_geo.Coord.t -> float
(** Estimated density (events per square mile, integrating to 1). *)

val log_eval : t -> Rr_geo.Coord.t -> float
(** Log-density, floored to avoid [-inf] far from all events (the floor
    corresponds to one part in 1e12 of the peak kernel height). *)
