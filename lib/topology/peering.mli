(** The AS-level view: which of the 23 networks peer with which (Fig. 2).

    Peering edges are only created between networks that actually
    co-locate somewhere, so every AS edge is realisable as at least one
    physical PoP-to-PoP interconnect. *)

type t = {
  nets : Net.t array;        (** Tier-1s first, then regionals *)
  edges : (int * int) list;  (** AS adjacency, [(i, j)] with [i < j] *)
}

val build :
  rng:Rr_util.Prng.t -> tier1s:Net.t list -> regionals:Net.t list -> t
(** Tier-1s form a full mesh (they co-locate everywhere); each regional
    network multihomes to one to three co-located Tier-1s, preferring
    those with more shared metros. *)

val net_count : t -> int
val net : t -> int -> Net.t
val index_of : t -> string -> int option
val peers : t -> int -> int list
val are_peers : t -> int -> int -> bool

val degree : t -> int -> int
(** Number of peers of a network — the paper's "number of peers"
    characteristic (Table 3). *)

type relationship =
  | Customer_to_provider  (** first network buys transit from the second *)
  | Provider_to_customer
  | Peer_to_peer

val relationship : t -> int -> int -> relationship option
(** Directed business relationship along an AS edge, in the CAIDA
    AS-relationship sense (Sec. 4.1 of the paper): Tier-1 pairs and
    regional-regional pairs settle as peers; a regional buying from a
    Tier-1 is its customer. [None] when the networks do not peer. *)

val pp : Format.formatter -> t -> unit
(** One line per AS edge. *)
