(** Intradomain RiskRoute (Eq. 3): the path minimising bit-risk miles.

    Because [kappa_ij] is constant along a path once its endpoints are
    fixed, Eq. 3 reduces to one Dijkstra run per (source, destination)
    pair over edge weights [d(u,v) + kappa_ij * node_risk(v)] — exactly
    the "constructed risk graph" of Sec. 6.4. *)

type route = {
  path : int list;           (** node path, source first *)
  bit_miles : float;
  bit_risk_miles : float;
}

val riskroute : Env.t -> src:int -> dst:int -> route option
(** Minimum bit-risk-miles route; [None] when disconnected. *)

val shortest : Env.t -> src:int -> dst:int -> route option
(** Geographic shortest path (the paper's stand-in for production
    routing), with its bit-risk miles evaluated under the same
    environment for comparison. *)

val route_of_path : Env.t -> int list -> route
(** Evaluate both metrics on an externally chosen path. *)

val shortest_tree : Env.t -> src:int -> Rr_graph.Dijkstra.tree
(** Full geographic shortest-path tree from one source. One tree serves
    every destination: the pair sweeps in {!Ratios} group sampled pairs
    by source so a single Dijkstra run replaces hundreds of
    {!shortest} calls. *)

val shortest_of_tree :
  Env.t -> Rr_graph.Dijkstra.tree -> src:int -> dst:int -> route option
(** Extract one destination's route from a {!shortest_tree}. Produces
    exactly the route {!shortest} would return for the pair (the
    early-stopped and full runs settle the path identically). *)
