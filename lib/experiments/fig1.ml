let tier1_pop_total ctx =
  Rr_topology.Zoo.tier1_pop_total (Rr_engine.Context.zoo ctx)

let regional_pop_total ctx =
  Rr_topology.Zoo.regional_pop_total (Rr_engine.Context.zoo ctx)

let pop_map nets =
  let grid = Rr_geo.Grid.create Rr_geo.Bbox.conus ~rows:60 ~cols:144 in
  List.iter
    (fun net ->
      Array.iter
        (fun (p : Rr_topology.Pop.t) ->
          Rr_geo.Grid.deposit grid p.Rr_topology.Pop.coord 1.0)
        net.Rr_topology.Net.pops)
    nets;
  Rr_geo.Grid.render_ascii ~width:72 ~height:20 grid

let run ctx ppf =
  let zoo = Rr_engine.Context.zoo ctx in
  Format.fprintf ppf "Fig 1: network data sets@.";
  Format.fprintf ppf
    "Tier-1 infrastructure: %d networks, %d PoPs (paper: 7 networks, 354 PoPs)@."
    (List.length zoo.Rr_topology.Zoo.tier1s)
    (tier1_pop_total ctx);
  List.iter
    (fun net -> Format.fprintf ppf "  %a@." Rr_topology.Net.pp_summary net)
    zoo.Rr_topology.Zoo.tier1s;
  Format.fprintf ppf "Tier-1 PoP density map:@.%s@," (pop_map zoo.Rr_topology.Zoo.tier1s);
  Format.fprintf ppf
    "Regional infrastructure: %d networks, %d PoPs (paper: 16 networks, 455 PoPs)@."
    (List.length zoo.Rr_topology.Zoo.regionals)
    (regional_pop_total ctx);
  List.iter
    (fun net -> Format.fprintf ppf "  %a@." Rr_topology.Net.pp_summary net)
    zoo.Rr_topology.Zoo.regionals;
  Format.fprintf ppf "Regional PoP density map:@.%s@,"
    (pop_map zoo.Rr_topology.Zoo.regionals)
