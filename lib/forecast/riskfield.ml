let default_rho_tropical = 50.0

let default_rho_hurricane = 100.0

let risk_at ?(rho_tropical = default_rho_tropical)
    ?(rho_hurricane = default_rho_hurricane) (a : Advisory.t) point =
  let d = Rr_geo.Distance.miles a.Advisory.center point in
  if a.Advisory.hurricane_radius_miles > 0.0 && d <= a.Advisory.hurricane_radius_miles
  then rho_hurricane
  else if
    a.Advisory.tropical_radius_miles > 0.0 && d <= a.Advisory.tropical_radius_miles
  then rho_tropical
  else 0.0

let pop_risks ?rho_tropical ?rho_hurricane advisory (net : Rr_topology.Net.t) =
  Array.map
    (fun (p : Rr_topology.Pop.t) ->
      risk_at ?rho_tropical ?rho_hurricane advisory p.Rr_topology.Pop.coord)
    net.Rr_topology.Net.pops

let count_pops advisory net ~pred =
  Array.fold_left
    (fun acc (p : Rr_topology.Pop.t) ->
      if pred (Rr_geo.Distance.miles advisory.Advisory.center p.Rr_topology.Pop.coord)
      then acc + 1
      else acc)
    0 net.Rr_topology.Net.pops

let pops_in_scope (a : Advisory.t) net =
  if a.Advisory.tropical_radius_miles <= 0.0 then 0
  else count_pops a net ~pred:(fun d -> d <= a.Advisory.tropical_radius_miles)

let pops_in_hurricane_scope (a : Advisory.t) net =
  if a.Advisory.hurricane_radius_miles <= 0.0 then 0
  else count_pops a net ~pred:(fun d -> d <= a.Advisory.hurricane_radius_miles)

let scope_fraction advisories (net : Rr_topology.Net.t) =
  let n = Rr_topology.Net.pop_count net in
  if n = 0 then 0.0
  else begin
    let hit = Array.make n false in
    List.iter
      (fun (a : Advisory.t) ->
        if a.Advisory.tropical_radius_miles > 0.0 then
          Array.iteri
            (fun i (p : Rr_topology.Pop.t) ->
              if
                Rr_geo.Distance.miles a.Advisory.center p.Rr_topology.Pop.coord
                <= a.Advisory.tropical_radius_miles
              then hit.(i) <- true)
            net.Rr_topology.Net.pops)
      advisories;
    let hits = Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 hit in
    float_of_int hits /. float_of_int n
  end

type delta = {
  indices : int array;
  values : float array;
  bbox : Rr_geo.Bbox.t option;
}

let empty_delta = { indices = [||]; values = [||]; bbox = None }

(* A changed entry is a bitwise difference: the engine's caches key on
   IEEE-754 bit patterns, so "changed" must mean exactly what would
   invalidate them — numeric comparison would miss -0.0 vs 0.0 and any
   future non-step field model could produce ulp-level moves. *)
let diff_field ?rho_tropical ?rho_hurricane ~old_field ~next coords =
  let n = Array.length coords in
  if Array.length old_field <> n then
    invalid_arg "Riskfield.diff_field: field/coords length mismatch";
  let idx = ref [] and vals = ref [] and pts = ref [] and count = ref 0 in
  for i = n - 1 downto 0 do
    let v =
      match next with
      | None -> 0.0
      | Some a -> risk_at ?rho_tropical ?rho_hurricane a coords.(i)
    in
    if Int64.bits_of_float v <> Int64.bits_of_float old_field.(i) then begin
      idx := i :: !idx;
      vals := v :: !vals;
      pts := coords.(i) :: !pts;
      incr count
    end
  done;
  if !count = 0 then empty_delta
  else
    {
      indices = Array.of_list !idx;
      values = Array.of_list !vals;
      bbox = Some (Rr_geo.Bbox.of_coords !pts);
    }

let diff ?rho_tropical ?rho_hurricane ~prev ~next coords =
  let old_field =
    match prev with
    | None -> Array.make (Array.length coords) 0.0
    | Some a ->
      Array.map (fun c -> risk_at ?rho_tropical ?rho_hurricane a c) coords
  in
  diff_field ?rho_tropical ?rho_hurricane ~old_field ~next coords

let union_scope advisories point =
  List.fold_left
    (fun acc advisory -> Float.max acc (risk_at advisory point))
    0.0 advisories
