(* Point-to-point query facade: every runner must return bit-identical
   (cost, path) answers to the plain single-pair kernel, on any graph,
   under any RiskRoute weight function, at any pool size. *)

open Rr_graph
module Parallel = Rr_util.Parallel

let with_domains k f =
  let old = Parallel.domain_count () in
  Parallel.set_domain_count k;
  Fun.protect ~finally:(fun () -> Parallel.set_domain_count old) f

let builder_net ~seed ~pops =
  let rng = Rr_util.Prng.create seed in
  Rr_topology.Builder.build ~rng
    {
      (* The census service memoises impact vectors by network name, so
         every (seed, size) needs its own. *)
      Rr_topology.Builder.name = Printf.sprintf "QueryTest-%Ld-%d" seed pops;
      tier = Rr_topology.Net.Regional;
      states = [];
      pop_count = pops;
      style = Rr_topology.Builder.Mesh;
      mesh_fraction = 0.3;
      hub_links = 2;
    }

let query_of_env env =
  let q = Riskroute.Env.query env in
  (q, Query.arc_off q, Query.arc_tgt q, Query.arc_miles q)

(* Both RiskRoute weight shapes: pure bit-miles, and bit-miles plus a
   non-negative per-target term (what bit-risk-miles adds). *)
let weights_of env tgt miles =
  let n = Rr_graph.Graph.node_count (Riskroute.Env.graph env) in
  let risk = Array.init n (fun i -> Riskroute.Env.node_risk env i) in
  [
    ("miles", fun k -> Array.unsafe_get miles k);
    ( "risk",
      fun k ->
        Array.unsafe_get miles k
        +. (0.5 *. Array.unsafe_get risk (Array.unsafe_get tgt k)) );
  ]

let same_answer a b =
  match (a, b) with
  | Some (ca, pa), Some (cb, pb) ->
    Int64.equal (Int64.bits_of_float ca) (Int64.bits_of_float cb) && pa = pb
  | None, None -> true
  | _ -> false

let check_pair ~what q ~off:_ ~tgt:_ ~weight ~reference ~src ~dst =
  let expect = reference ~weight ~src ~dst in
  List.iter
    (fun runner ->
      let got = Query.run ~runner q ~weight ~src ~dst in
      if not (same_answer expect got) then
        Alcotest.failf "%s: %s differs from plain kernel on (%d, %d)" what
          (Query.runner_name runner) src dst)
    [ Query.Plain; Query.Bidir; Query.Alt ]

let test_plain_matches_flat () =
  let net = builder_net ~seed:11L ~pops:40 in
  let env = Riskroute.Env.of_net net in
  let q, off, tgt, miles = query_of_env env in
  let n = Query.node_count q in
  let weight k = miles.(k) in
  for src = 0 to min 9 (n - 1) do
    let dst = n - 1 - src in
    let expect = Dijkstra.single_pair_flat ~n ~off ~tgt ~weight ~src ~dst in
    let got = Query.run ~runner:Query.Plain q ~weight ~src ~dst in
    Alcotest.(check bool)
      (Printf.sprintf "plain = flat on (%d, %d)" src dst)
      true (same_answer expect got)
  done

let runners_agree =
  QCheck.Test.make ~name:"bidir and alt agree with plain bitwise" ~count:12
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, c) ->
      (* Clamp in the body: shrinkers may step outside generator
         ranges, and Builder rejects pop_count < 1. *)
      let seed = 1 + (a mod 1000)
      and pops = 20 + (b mod 51)
      and pool = 1 + (c mod 3) in
      let net = builder_net ~seed:(Int64.of_int seed) ~pops in
      let env = Riskroute.Env.of_net net in
      let q, off, tgt, miles = query_of_env env in
      let n = Query.node_count q in
      Query.prepare q;
      let reference ~weight ~src ~dst =
        Dijkstra.single_pair_flat ~n ~off ~tgt ~weight ~src ~dst
      in
      let rng = Rr_util.Prng.create (Int64.of_int (seed * 7919)) in
      let pairs =
        Array.init 12 (fun _ ->
            (Rr_util.Prng.int rng n, Rr_util.Prng.int rng n))
      in
      with_domains pool (fun () ->
          List.iter
            (fun (wname, weight) ->
              ignore
                (Parallel.map_array
                   (fun (src, dst) ->
                     check_pair ~what:wname q ~off ~tgt ~weight ~reference
                       ~src ~dst)
                   pairs))
            (weights_of env tgt miles));
      true)

let runners_agree_under_advisory =
  QCheck.Test.make ~name:"agreement holds under a storm advisory env"
    ~count:4 QCheck.small_nat
    (fun s ->
      let seed = 1 + (s mod 100) in
      let net = builder_net ~seed:(Int64.of_int seed) ~pops:30 in
      let advisory =
        List.nth
          (Rr_forecast.Track.advisories
             (Option.get (Rr_forecast.Track.find "sandy")))
          20
      in
      let env = Riskroute.Env.of_net ~advisory net in
      let q, off, tgt, miles = query_of_env env in
      let n = Query.node_count q in
      Query.prepare q;
      let reference ~weight ~src ~dst =
        Dijkstra.single_pair_flat ~n ~off ~tgt ~weight ~src ~dst
      in
      List.iter
        (fun (wname, weight) ->
          for src = 0 to 4 do
            check_pair ~what:("advisory " ^ wname) q ~off ~tgt ~weight
              ~reference ~src ~dst:(n - 1 - src)
          done)
        (weights_of env tgt miles);
      true)

let test_disconnected () =
  (* Two components: 0-1 and 2-3. *)
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let off, tgt = Graph.to_csr g in
  let miles = Array.make (Array.length tgt) 1.0 in
  let q = Query.create ~n:4 ~off ~tgt ~miles () in
  Query.prepare q;
  List.iter
    (fun runner ->
      Alcotest.(check bool)
        (Query.runner_name runner ^ " disconnected")
        true
        (Query.run ~runner q ~weight:(fun k -> miles.(k)) ~src:0 ~dst:3
        = None))
    [ Query.Plain; Query.Bidir; Query.Alt ]

let test_src_eq_dst_and_ranges () =
  let net = builder_net ~seed:5L ~pops:20 in
  let env = Riskroute.Env.of_net net in
  let q, _, _, miles = query_of_env env in
  let weight k = miles.(k) in
  Alcotest.(check bool)
    "src = dst" true
    (Query.run q ~weight ~src:3 ~dst:3 = Some (0.0, [ 3 ]));
  Alcotest.check_raises "bad src"
    (Invalid_argument "Dijkstra: source out of range") (fun () ->
      ignore (Query.run q ~weight ~src:(-1) ~dst:3));
  Alcotest.check_raises "bad dst"
    (Invalid_argument "Dijkstra: destination out of range") (fun () ->
      ignore (Query.run q ~weight ~src:0 ~dst:99))

let test_prepare_idempotent () =
  let net = builder_net ~seed:7L ~pops:30 in
  let env = Riskroute.Env.of_net net in
  let q, _, _, _ = query_of_env env in
  Alcotest.(check bool) "not prepared" false (Query.prepared q);
  Alcotest.(check bool) "no potential yet" true
    (Query.potential q ~dst:0 = None);
  Alcotest.(check int) "no landmarks yet" 0
    (Array.length (Query.landmark_sources q));
  Query.prepare q;
  let l1 = Query.landmark_sources q in
  Query.prepare q;
  let l2 = Query.landmark_sources q in
  Alcotest.(check bool) "prepared" true (Query.prepared q);
  Alcotest.(check bool) "landmarks stable" true (l1 = l2);
  Alcotest.(check bool) "landmarks nonempty" true (Array.length l1 > 0)

let test_potential_is_lower_bound () =
  let net = builder_net ~seed:13L ~pops:40 in
  let env = Riskroute.Env.of_net net in
  let q, off, tgt, miles = query_of_env env in
  let n = Query.node_count q in
  Query.prepare q;
  let dst = n - 1 in
  let pot = Option.get (Query.potential q ~dst) in
  (* d(v, dst) in the symmetric bit-miles metric via a sweep from dst. *)
  let tree =
    Dijkstra.single_source_flat ~n ~off ~tgt
      ~weight:(fun k -> miles.(k))
      ~src:dst
  in
  for v = 0 to n - 1 do
    let d = tree.Dijkstra.dist.(v) in
    if Float.is_finite d && pot v > d +. 1e-9 then
      Alcotest.failf "potential %g exceeds true distance %g at node %d"
        (pot v) d v
  done;
  Alcotest.(check (float 1e-12)) "zero at dst" 0.0 (pot dst)

let test_choose_policy () =
  let small = Query.create ~n:4 ~off:[| 0; 0; 0; 0; 0 |] ~tgt:[||]
      ~miles:[||] () in
  Alcotest.(check string) "small -> plain" "plain"
    (Query.runner_name (Query.choose small));
  let net = builder_net ~seed:3L ~pops:25 in
  let env = Riskroute.Env.of_net net in
  let q, _, _, _ = query_of_env env in
  Query.prepare q;
  Alcotest.(check string) "prepared small -> plain still" "plain"
    (Query.runner_name (Query.choose q))

let coord lat lon = Rr_geo.Coord.make ~lat ~lon

let mini_peering () =
  let mk name cities =
    let pops =
      Array.of_list
        (List.mapi
           (fun id (city, state, lat, lon) ->
             Rr_topology.Pop.make ~id ~city ~state (coord lat lon))
           cities)
    in
    let graph = Graph.of_edges (Array.length pops) [ (0, 1) ] in
    Rr_topology.Net.make ~name ~tier:Rr_topology.Net.Regional pops graph
  in
  let a =
    mk "NetA"
      [ ("Houston", "TX", 29.76, -95.37); ("Dallas", "TX", 32.78, -96.80) ]
  in
  let b =
    mk "NetB"
      [ ("Dallas", "TX", 32.78, -96.80); ("Austin", "TX", 30.27, -97.74) ]
  in
  { Rr_topology.Peering.nets = [| a; b |]; edges = [ (0, 1) ] }

let test_bgp_unchanged_by_prepare () =
  (* The valley-free lift uses the landmark potential as an A* heuristic
     when available; routes must be identical with and without it. *)
  let merged = Riskroute.Interdomain.merge (mini_peering ()) in
  let env =
    Riskroute.Env.make
      ~graph:(Riskroute.Interdomain.graph merged)
      ~coords:
        [|
          coord 29.76 (-95.37);
          coord 32.78 (-96.8);
          coord 32.78 (-96.8);
          coord 30.27 (-97.74);
        |]
      ~impact:(Array.make 4 0.25)
      ~historical:(Array.make 4 1e-5) ()
  in
  let before = Riskroute.Bgp.shortest merged env ~src:0 ~dst:3 in
  Query.prepare (Riskroute.Env.query env);
  let after = Riskroute.Bgp.shortest merged env ~src:0 ~dst:3 in
  match (before, after) with
  | Some a, Some b ->
    Alcotest.(check (list int)) "same path" a.Riskroute.Router.path
      b.Riskroute.Router.path;
    Alcotest.(check bool) "same cost" true
      (Int64.equal
         (Int64.bits_of_float a.Riskroute.Router.bit_miles)
         (Int64.bits_of_float b.Riskroute.Router.bit_miles))
  | _ -> Alcotest.fail "expected a route both times"

let () =
  Alcotest.run "query"
    [
      ( "runners",
        [
          Alcotest.test_case "plain = single_pair_flat" `Quick
            test_plain_matches_flat;
          QCheck_alcotest.to_alcotest runners_agree;
          QCheck_alcotest.to_alcotest runners_agree_under_advisory;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "src = dst and ranges" `Quick
            test_src_eq_dst_and_ranges;
        ] );
      ( "landmarks",
        [
          Alcotest.test_case "prepare idempotent" `Quick
            test_prepare_idempotent;
          Alcotest.test_case "potential lower-bounds distance" `Quick
            test_potential_is_lower_bound;
          Alcotest.test_case "choose policy" `Quick test_choose_policy;
          Alcotest.test_case "bgp unchanged by prepare" `Quick
            test_bgp_unchanged_by_prepare;
        ] );
    ]
