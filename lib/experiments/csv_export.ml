let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* Quote a CSV field only when needed (commas appear in PoP names). *)
let field s =
  if String.exists (fun c -> c = ',' || c = '"') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let row oc cells = output_string oc (String.concat "," (List.map field cells) ^ "\n")

let write_table2 ctx path =
  with_out path (fun oc ->
      row oc [ "network"; "pops"; "rr_1e5"; "dr_1e5"; "rr_1e6"; "dr_1e6" ];
      List.iter
        (fun (r : Table2.row) ->
          row oc
            [
              r.Table2.network; string_of_int r.Table2.pops;
              Printf.sprintf "%.4f" r.Table2.rr_1e5;
              Printf.sprintf "%.4f" r.Table2.dr_1e5;
              Printf.sprintf "%.4f" r.Table2.rr_1e6;
              Printf.sprintf "%.4f" r.Table2.dr_1e6;
            ])
        (Table2.compute ctx Table2.default_spec))

let write_fig8 ctx path =
  with_out path (fun oc ->
      row oc [ "network"; "distance_ratio"; "risk_ratio"; "pairs" ];
      List.iter
        (fun (p : Fig8.point) ->
          row oc
            [
              p.Fig8.network;
              Printf.sprintf "%.4f" p.Fig8.result.Riskroute.Ratios.distance_increase;
              Printf.sprintf "%.4f" p.Fig8.result.Riskroute.Ratios.risk_reduction;
              string_of_int p.Fig8.result.Riskroute.Ratios.pairs;
            ])
        (Fig8.compute ctx Fig8.default_spec))

let write_fig10 ctx path =
  with_out path (fun oc ->
      row oc [ "network"; "links_added"; "fraction_of_original_bit_risk" ];
      List.iter
        (fun (c : Fig10.curve) ->
          Array.iteri
            (fun i fraction ->
              row oc
                [ c.Fig10.network; string_of_int (i + 1); Printf.sprintf "%.4f" fraction ])
            c.Fig10.fractions)
        (Fig10.compute ctx Fig10.default_spec))

let write_series path series =
  with_out path (fun oc ->
      row oc
        [ "network"; "tick"; "issued"; "risk_reduction"; "distance_increase";
          "pops_in_scope" ];
      List.iter
        (fun (s : Riskroute.Casestudy.series) ->
          List.iter
            (fun (p : Riskroute.Casestudy.point) ->
              row oc
                [
                  s.Riskroute.Casestudy.network;
                  string_of_int p.Riskroute.Casestudy.tick;
                  p.Riskroute.Casestudy.label;
                  Printf.sprintf "%.4f" p.Riskroute.Casestudy.risk_reduction;
                  Printf.sprintf "%.4f" p.Riskroute.Casestudy.distance_increase;
                  string_of_int p.Riskroute.Casestudy.pops_in_scope;
                ])
            s.Riskroute.Casestudy.points)
        series)

let write_fig12 ctx path storm =
  write_series path (Fig12.compute ctx (Fig12.default_spec storm))

let write_fig13 ctx path storm =
  write_series path (Fig13.compute ctx (Fig13.default_spec storm))

let write_all ctx dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let out name = Filename.concat dir name in
  let written = ref [] in
  let emit name write =
    let path = out name in
    write path;
    written := path :: !written
  in
  emit "table2.csv" (write_table2 ctx);
  emit "fig8.csv" (write_fig8 ctx);
  emit "fig10.csv" (write_fig10 ctx);
  List.iter
    (fun storm ->
      let slug = String.lowercase_ascii storm.Rr_forecast.Track.name in
      emit (Printf.sprintf "fig12_%s.csv" slug) (fun p -> write_fig12 ctx p storm);
      emit (Printf.sprintf "fig13_%s.csv" slug) (fun p -> write_fig13 ctx p storm))
    Rr_forecast.Track.all;
  List.rev !written
