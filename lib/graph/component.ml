let components g =
  let n = Graph.node_count g in
  let label = Array.make n (-1) in
  let next = ref 0 in
  let stack = Stack.create () in
  for start = 0 to n - 1 do
    if label.(start) = -1 then begin
      let c = !next in
      incr next;
      Stack.push start stack;
      label.(start) <- c;
      while not (Stack.is_empty stack) do
        let u = Stack.pop stack in
        Graph.iter_neighbors g u (fun v ->
            if label.(v) = -1 then begin
              label.(v) <- c;
              Stack.push v stack
            end)
      done
    end
  done;
  label

let component_count g =
  let label = components g in
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 label

let is_connected g = component_count g <= 1

let largest_component g =
  let label = components g in
  let n = Graph.node_count g in
  if n = 0 then []
  else begin
    let k = Array.fold_left (fun acc c -> max acc (c + 1)) 0 label in
    let sizes = Array.make k 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) label;
    let best = Rr_util.Arrayx.argmax (Array.map float_of_int sizes) in
    List.filter (fun v -> label.(v) = best) (Rr_util.Listx.range 0 n)
  end
