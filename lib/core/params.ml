type t = {
  lambda_h : float;
  lambda_f : float;
  risk_scale : float;
  rho_tropical : float;
  rho_hurricane : float;
}

let default =
  {
    lambda_h = 1e5;
    lambda_f = 1e3;
    risk_scale = 3000.0;
    rho_tropical = 50.0;
    rho_hurricane = 100.0;
  }

let with_lambda_h lambda_h t = { t with lambda_h }

let with_lambda_f lambda_f t = { t with lambda_f }

let validate t =
  if t.lambda_h <= 0.0 then invalid_arg "Params: lambda_h must be positive";
  if t.lambda_f <= 0.0 then invalid_arg "Params: lambda_f must be positive";
  if t.risk_scale <= 0.0 then invalid_arg "Params: risk_scale must be positive";
  if t.rho_tropical < 0.0 || t.rho_hurricane < t.rho_tropical then
    invalid_arg "Params: need 0 <= rho_tropical <= rho_hurricane"
