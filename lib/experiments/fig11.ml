let default_spec = Rr_engine.Spec.make ~networks:Rr_engine.Spec.Interdomain ()

let compute ctx (spec : Rr_engine.Spec.t) =
  let merged, env = Rr_engine.Context.interdomain ctx in
  Riskroute.Peer_advisor.recommend_all ?pair_cap:spec.pair_cap merged env

let run ctx ppf =
  Format.fprintf ppf
    "Fig 11: best additional peering relationship per regional network@.";
  Format.fprintf ppf "%-18s %-18s %14s@." "Regional" "Recommended peer"
    "Improvement";
  List.iter
    (fun (r : Riskroute.Peer_advisor.recommendation) ->
      Format.fprintf ppf "%-18s %-18s %13.1f%%@."
        r.Riskroute.Peer_advisor.regional r.Riskroute.Peer_advisor.peer
        (100.0 *. r.Riskroute.Peer_advisor.improvement))
    (compute ctx default_spec)
