let two_pi = 2.0 *. Float.pi

let log_density ~bandwidth ~dist_miles =
  assert (bandwidth > 0.0);
  let z = dist_miles /. bandwidth in
  -.log (two_pi *. bandwidth *. bandwidth) -. (0.5 *. z *. z)

let density ~bandwidth ~dist_miles = exp (log_density ~bandwidth ~dist_miles)

let support_miles ~bandwidth = 4.0 *. bandwidth
