let compute ?pair_cap () =
  let merged, env = Riskroute.Interdomain.shared () in
  Riskroute.Peer_advisor.recommend_all ?pair_cap merged env

let run ppf =
  Format.fprintf ppf
    "Fig 11: best additional peering relationship per regional network@.";
  Format.fprintf ppf "%-18s %-18s %14s@." "Regional" "Recommended peer"
    "Improvement";
  List.iter
    (fun (r : Riskroute.Peer_advisor.recommendation) ->
      Format.fprintf ppf "%-18s %-18s %13.1f%%@."
        r.Riskroute.Peer_advisor.regional r.Riskroute.Peer_advisor.peer
        (100.0 *. r.Riskroute.Peer_advisor.improvement))
    (compute ())
