type row = {
  kind : Rr_disaster.Event.kind;
  entries : int;
  bandwidth : float;
  paper_bandwidth : float;
}

let default_spec = Rr_engine.Spec.make ~max_events:25_000 ()

let compute ?catalog ctx (spec : Rr_engine.Spec.t) =
  let catalog =
    match catalog with Some c -> c | None -> Rr_engine.Context.catalog ctx
  in
  let max_events = Rr_engine.Spec.max_events ~default:25_000 spec in
  List.map
    (fun kind ->
      let events = Rr_disaster.Catalog.coords catalog kind in
      let selection =
        Rr_kde.Bandwidth.select ~max_events ~scorer:Rr_kde.Bandwidth.Grid events
      in
      {
        kind;
        entries = Array.length events;
        bandwidth = selection.Rr_kde.Bandwidth.best;
        paper_bandwidth = Rr_disaster.Event.paper_bandwidth kind;
      })
    Rr_disaster.Event.all_kinds

let run ctx ppf =
  Format.fprintf ppf
    "Table 1: trained kernel density bandwidths (FEMA and NOAA data)@.";
  Format.fprintf ppf "%-18s %10s %18s %18s@." "Event Type" "Entries"
    "Bandwidth (ours)" "Bandwidth (paper)";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-18s %10d %18.2f %18.2f@."
        (Rr_disaster.Event.kind_name row.kind)
        row.entries row.bandwidth row.paper_bandwidth)
    (compute ctx default_spec)
