type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if bins <= 0 then invalid_arg "Histogram.create: non-positive bins";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bin_index t v =
  let bins = Array.length t.counts in
  let frac = (v -. t.lo) /. (t.hi -. t.lo) in
  let i = int_of_float (frac *. float_of_int bins) in
  max 0 (min (bins - 1) i)

let add t v =
  t.counts.(bin_index t v) <- t.counts.(bin_index t v) + 1;
  t.total <- t.total + 1

let counts t = Array.copy t.counts

let total t = t.total

let densities t =
  if t.total = 0 then Array.make (Array.length t.counts) 0.0
  else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts

let bin_center t i =
  let bins = float_of_int (Array.length t.counts) in
  t.lo +. ((float_of_int i +. 0.5) /. bins *. (t.hi -. t.lo))
