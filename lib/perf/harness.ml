let quantile samples q =
  let n = Array.length samples in
  if n = 0 then Float.nan
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    sorted.(rank - 1)
  end

let mean samples =
  let n = Array.length samples in
  if n = 0 then Float.nan
  else Array.fold_left ( +. ) 0.0 samples /. float_of_int n

let measure ?(warmups = 3) ?(reps = 10) kernels =
  let reps = max 1 reps in
  List.map
    (fun (name, f) ->
      for _ = 1 to warmups do
        f ()
      done;
      let ns = Array.make reps 0.0 in
      let minor = Array.make reps 0.0 in
      let major = Array.make reps 0.0 in
      for i = 0 to reps - 1 do
        let g0 = Gc.quick_stat () in
        let t0 = Rr_obs.Clock.monotonic () in
        f ();
        let t1 = Rr_obs.Clock.monotonic () in
        let g1 = Gc.quick_stat () in
        ns.(i) <- (t1 -. t0) *. 1e9;
        minor.(i) <- g1.Gc.minor_words -. g0.Gc.minor_words;
        major.(i) <- g1.Gc.major_words -. g0.Gc.major_words
      done;
      {
        Benchfile.name;
        reps;
        mean_ns = mean ns;
        p50_ns = quantile ns 0.50;
        p95_ns = quantile ns 0.95;
        min_ns = quantile ns 0.0;
        max_ns = quantile ns 1.0;
        gc_minor_words = mean minor;
        gc_major_words = mean major;
      })
    kernels
