(** Fig. 13: regional interdomain risk-reduction time series during the
    three hurricanes, restricted (as in Sec. 7.3.1) to regional networks
    with more than 20% of their PoPs in the event's scope. *)

val default_spec : Rr_forecast.Track.storm -> Rr_engine.Spec.t
(** Interdomain, pair_cap 300, stride 6 (the merged graph makes per-tick
    evaluation expensive; see EXPERIMENTS.md). *)

val compute :
  Rr_engine.Context.t -> Rr_engine.Spec.t -> Riskroute.Casestudy.series list
(** Raises [Invalid_argument] when the spec carries no storm. *)

val run : Rr_engine.Context.t -> Format.formatter -> unit
