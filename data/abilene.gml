# The Abilene (Internet2) backbone, the classic 11-node research network
# (public topology, as distributed by the Internet Topology Zoo).
graph [
  label "Abilene (Internet2)"
  directed 0
  tier "tier1"
  node [
    id 0
    label "Seattle, WA"
    Latitude 47.61
    Longitude -122.33
  ]
  node [
    id 1
    label "Sunnyvale, CA"
    Latitude 37.37
    Longitude -122.04
  ]
  node [
    id 2
    label "Los Angeles, CA"
    Latitude 34.05
    Longitude -118.24
  ]
  node [
    id 3
    label "Denver, CO"
    Latitude 39.74
    Longitude -104.99
  ]
  node [
    id 4
    label "Kansas City, MO"
    Latitude 39.10
    Longitude -94.58
  ]
  node [
    id 5
    label "Houston, TX"
    Latitude 29.76
    Longitude -95.37
  ]
  node [
    id 6
    label "Chicago, IL"
    Latitude 41.88
    Longitude -87.63
  ]
  node [
    id 7
    label "Indianapolis, IN"
    Latitude 39.77
    Longitude -86.16
  ]
  node [
    id 8
    label "Atlanta, GA"
    Latitude 33.75
    Longitude -84.39
  ]
  node [
    id 9
    label "Washington, DC"
    Latitude 38.91
    Longitude -77.04
  ]
  node [
    id 10
    label "New York, NY"
    Latitude 40.71
    Longitude -74.01
  ]
  edge [ source 0 target 1 ]
  edge [ source 0 target 3 ]
  edge [ source 1 target 2 ]
  edge [ source 1 target 3 ]
  edge [ source 2 target 5 ]
  edge [ source 3 target 4 ]
  edge [ source 4 target 5 ]
  edge [ source 4 target 7 ]
  edge [ source 5 target 8 ]
  edge [ source 6 target 7 ]
  edge [ source 6 target 10 ]
  edge [ source 7 target 8 ]
  edge [ source 8 target 9 ]
  edge [ source 9 target 10 ]
]
