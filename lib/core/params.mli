(** Tuning parameters of the bit-risk-miles metric (Eq. 1).

    [lambda_h] and [lambda_f] are the paper's risk-averseness knobs
    (Sec. 7 uses 1e5 and 1e3). [risk_scale] converts our kernel densities
    (per square mile) into the dimensionless outage-likelihood scale the
    paper's lambda values were tuned against; it multiplies [o_h] only
    (forecast risk [o_f] is already dimensionless: 0 / rho_t / rho_h). *)

type t = {
  lambda_h : float;      (** historical-risk weight, > 0 *)
  lambda_f : float;      (** forecast-risk weight, > 0 *)
  risk_scale : float;    (** per-mi^2 density -> likelihood conversion *)
  rho_tropical : float;  (** forecast risk under tropical-storm winds *)
  rho_hurricane : float; (** forecast risk under hurricane-force winds *)
}

val default : t
(** lambda_h = 1e5, lambda_f = 1e3, rho_t = 50, rho_h = 100 (the paper's
    Section 7 values); risk_scale = 3000 (calibrated so Tier-1 ratios land
    in the paper's Table 2 regime — see EXPERIMENTS.md). *)

val make :
  ?lambda_h:float ->
  ?lambda_f:float ->
  ?risk_scale:float ->
  ?rho_tropical:float ->
  ?rho_hurricane:float ->
  unit ->
  t
(** {!default} with the given overrides, validated eagerly. *)

val with_lambda_h : float -> t -> t
val with_lambda_f : float -> t -> t
(** Setters validate eagerly: an invalid weight raises
    [Invalid_argument] here rather than at {!Env} construction. *)

val validate : t -> unit
(** Raises [Invalid_argument] on non-positive weights. *)
