open Riskroute

let coord lat lon = Rr_geo.Coord.make ~lat ~lon

(* A 4-node diamond on the Gulf coast:

      1 (New Orleans-ish, hot)
     / \
    0   3        0 = Houston-ish, 3 = Jacksonville-ish
     \ /
      2 (Nashville-ish, cold)

   Node 1 carries historical risk, node 2 does not: RiskRoute should
   prefer 0-2-3 once lambda_h is large enough. *)
let diamond ?(params = Params.default) ?forecast () =
  let coords =
    [| coord 29.76 (-95.37); coord 29.95 (-90.07); coord 36.16 (-86.78); coord 30.33 (-81.66) |]
  in
  let graph = Rr_graph.Graph.of_edges 4 [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let impact = [| 0.4; 0.3; 0.1; 0.2 |] in
  let historical = [| 1e-5; 3e-4; 1e-7; 2e-5 |] in
  Env.make ~params ~graph ~coords ~impact ~historical ?forecast ()

(* --- Params --- *)

let test_params_default () =
  Alcotest.(check (float 1e-9)) "lambda_h" 1e5 Params.default.Params.lambda_h;
  Alcotest.(check (float 1e-9)) "lambda_f" 1e3 Params.default.Params.lambda_f;
  Alcotest.(check (float 1e-9)) "rho_t" 50.0 Params.default.Params.rho_tropical;
  Alcotest.(check (float 1e-9)) "rho_h" 100.0 Params.default.Params.rho_hurricane

let test_params_validate () =
  Alcotest.check_raises "bad lambda_h"
    (Invalid_argument "Params: lambda_h must be positive") (fun () ->
      Params.validate { Params.default with Params.lambda_h = 0.0 });
  Alcotest.check_raises "bad rho order"
    (Invalid_argument "Params: need 0 <= rho_tropical <= rho_hurricane") (fun () ->
      Params.validate { Params.default with Params.rho_tropical = 200.0 })

let test_params_with () =
  let p = Params.with_lambda_h 7.0 Params.default in
  Alcotest.(check (float 1e-9)) "set" 7.0 p.Params.lambda_h;
  let p = Params.with_lambda_f 9.0 p in
  Alcotest.(check (float 1e-9)) "set f" 9.0 p.Params.lambda_f;
  Alcotest.(check (float 1e-9)) "h preserved" 7.0 p.Params.lambda_h

let test_params_eager_validation () =
  (* Setters and [make] reject bad values at construction, not at first
     use downstream. *)
  Alcotest.check_raises "with_lambda_h rejects zero"
    (Invalid_argument "Params: lambda_h must be positive") (fun () ->
      ignore (Params.with_lambda_h 0.0 Params.default));
  Alcotest.check_raises "with_lambda_f rejects negatives"
    (Invalid_argument "Params: lambda_f must be positive") (fun () ->
      ignore (Params.with_lambda_f (-1.0) Params.default));
  Alcotest.check_raises "make rejects bad rho order"
    (Invalid_argument "Params: need 0 <= rho_tropical <= rho_hurricane")
    (fun () -> ignore (Params.make ~rho_tropical:500.0 ()))

let test_params_make () =
  let p = Params.make ~lambda_h:2.0 ~lambda_f:3.0 () in
  Alcotest.(check (float 1e-9)) "lambda_h" 2.0 p.Params.lambda_h;
  Alcotest.(check (float 1e-9)) "lambda_f" 3.0 p.Params.lambda_f;
  Alcotest.(check (float 1e-9)) "risk_scale defaulted"
    Params.default.Params.risk_scale p.Params.risk_scale;
  Alcotest.(check bool) "no-arg make is default" true
    (Params.make () = Params.default)

(* --- Env --- *)

let test_env_length_validation () =
  let graph = Rr_graph.Graph.create 2 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Env.make: array lengths must match the node count")
    (fun () ->
      ignore
        (Env.make ~graph
           ~coords:[| coord 0.0 0.0 |]
           ~impact:[| 1.0 |] ~historical:[| 0.0 |] ()))

let test_env_kappa () =
  let env = diamond () in
  Alcotest.(check (float 1e-9)) "kappa_03" 0.6 (Env.kappa env 0 3);
  Alcotest.(check (float 1e-9)) "mean kappa" 0.5 (Env.mean_kappa env)

let test_env_node_risk () =
  let env = diamond () in
  let p = Env.params env in
  let expected = p.Params.lambda_h *. p.Params.risk_scale *. 3e-4 in
  Alcotest.(check (float 1e-6)) "node 1 risk" expected (Env.node_risk env 1)

let test_env_link_miles_cached () =
  let env = diamond () in
  let d1 = Env.link_miles env 0 1 in
  let d2 = Env.link_miles env 1 0 in
  Alcotest.(check (float 1e-9)) "symmetric via cache" d1 d2;
  Alcotest.(check bool) "Houston-NOLA ~ 320 mi" true (Float.abs (d1 -. 320.0) < 30.0)

let test_env_with_forecast () =
  let env = diamond () in
  let base_risk = Env.node_risk env 2 in
  let env' = Env.with_forecast env [| 0.0; 0.0; 100.0; 0.0 |] in
  let p = Env.params env' in
  Alcotest.(check (float 1e-6)) "forecast adds lambda_f * o_f"
    (base_risk +. (p.Params.lambda_f *. 100.0))
    (Env.node_risk env' 2);
  (* original untouched *)
  Alcotest.(check (float 1e-9)) "original unchanged" base_risk (Env.node_risk env 2)

let test_env_with_advisory () =
  let env = diamond () in
  (* disc over node 1 only *)
  let advisory =
    Rr_forecast.Advisory.make ~storm:"T" ~number:1 ~issued:"t"
      ~center:(coord 29.95 (-90.07)) ~hurricane_radius_miles:50.0
      ~tropical_radius_miles:100.0
  in
  let env' = Env.with_advisory env (Some advisory) in
  Alcotest.(check (float 1e-9)) "node 1 under hurricane winds" 100.0
    (Env.forecast env').(1);
  Alcotest.(check (float 1e-9)) "node 2 clear" 0.0 (Env.forecast env').(2);
  let cleared = Env.with_advisory env' None in
  Alcotest.(check (float 1e-9)) "cleared" 0.0 (Env.forecast cleared).(1)

let test_env_with_graph () =
  let env = diamond () in
  let g = Rr_graph.Graph.copy (Env.graph env) in
  Rr_graph.Graph.add_edge g 0 3;
  let env' = Env.with_graph env g in
  Alcotest.(check bool) "new edge" true (Rr_graph.Graph.has_edge (Env.graph env') 0 3);
  Alcotest.(check bool) "old env untouched" false
    (Rr_graph.Graph.has_edge (Env.graph env) 0 3);
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Env.with_graph: node-count mismatch") (fun () ->
      ignore (Env.with_graph env (Rr_graph.Graph.create 7)))

(* --- Metric --- *)

let test_metric_eq1_by_hand () =
  let env = diamond () in
  let path = [ 0; 1; 3 ] in
  let kappa = Env.kappa env 0 3 in
  let expected =
    Env.link_miles env 0 1 +. (kappa *. Env.node_risk env 1)
    +. Env.link_miles env 1 3
    +. (kappa *. Env.node_risk env 3)
  in
  Alcotest.(check (float 1e-6)) "Eq. 1" expected (Metric.bit_risk_miles env path)

let test_metric_bit_miles () =
  let env = diamond () in
  let expected = Env.link_miles env 0 1 +. Env.link_miles env 1 3 in
  Alcotest.(check (float 1e-9)) "distance only" expected (Metric.bit_miles env [ 0; 1; 3 ])

let test_metric_degenerate_paths () =
  let env = diamond () in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Metric.bit_risk_miles env []);
  Alcotest.(check (float 1e-9)) "single" 0.0 (Metric.bit_risk_miles env [ 2 ])

let test_metric_source_risk_not_counted () =
  let env = diamond () in
  (* Eq. 1 sums from x = 2: the source node's own risk never appears *)
  let r13 = Metric.bit_risk_miles_kappa env ~kappa:1.0 [ 1; 3 ] in
  let expected = Env.link_miles env 1 3 +. Env.node_risk env 3 in
  Alcotest.(check (float 1e-6)) "only destination risk" expected r13

let test_metric_path_risk () =
  let env = diamond () in
  Alcotest.(check (float 1e-6)) "sum of node risks"
    (Env.node_risk env 1 +. Env.node_risk env 3)
    (Metric.path_risk env [ 0; 1; 3 ])

(* --- Router --- *)

let test_router_avoids_hot_node () =
  let env = diamond () in
  (match Router.riskroute env ~src:0 ~dst:3 with
  | Some route -> Alcotest.(check (list int)) "via cold node" [ 0; 2; 3 ] route.Router.path
  | None -> Alcotest.fail "connected");
  match Router.shortest env ~src:0 ~dst:3 with
  | Some route -> Alcotest.(check (list int)) "shortest via hot node" [ 0; 1; 3 ] route.Router.path
  | None -> Alcotest.fail "connected"

let test_router_riskroute_dominates () =
  let env = diamond () in
  let rr = Option.get (Router.riskroute env ~src:0 ~dst:3) in
  let sp = Option.get (Router.shortest env ~src:0 ~dst:3) in
  Alcotest.(check bool) "bit-risk lower" true
    (rr.Router.bit_risk_miles <= sp.Router.bit_risk_miles +. 1e-9);
  Alcotest.(check bool) "bit-miles higher" true
    (rr.Router.bit_miles >= sp.Router.bit_miles -. 1e-9)

let test_router_no_risk_equals_shortest () =
  let graph = Rr_graph.Graph.of_edges 4 [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let env =
    Env.make ~graph
      ~coords:[| coord 29.76 (-95.37); coord 29.95 (-90.07); coord 36.16 (-86.78); coord 30.33 (-81.66) |]
      ~impact:[| 0.25; 0.25; 0.25; 0.25 |]
      ~historical:[| 0.0; 0.0; 0.0; 0.0 |] ()
  in
  let rr = Option.get (Router.riskroute env ~src:0 ~dst:3) in
  let sp = Option.get (Router.shortest env ~src:0 ~dst:3) in
  Alcotest.(check (list int)) "same path" sp.Router.path rr.Router.path

let test_router_disconnected () =
  let graph = Rr_graph.Graph.of_edges 3 [ (0, 1) ] in
  let env =
    Env.make ~graph
      ~coords:[| coord 30.0 (-90.0); coord 31.0 (-90.0); coord 32.0 (-90.0) |]
      ~impact:[| 0.5; 0.3; 0.2 |] ~historical:[| 0.0; 0.0; 0.0 |] ()
  in
  Alcotest.(check bool) "riskroute none" true (Router.riskroute env ~src:0 ~dst:2 = None);
  Alcotest.(check bool) "shortest none" true (Router.shortest env ~src:0 ~dst:2 = None)

let test_route_of_path () =
  let env = diamond () in
  let route = Router.route_of_path env [ 0; 1; 3 ] in
  Alcotest.(check (float 1e-9)) "bit miles" (Metric.bit_miles env [ 0; 1; 3 ])
    route.Router.bit_miles;
  Alcotest.(check (float 1e-9)) "bit risk" (Metric.bit_risk_miles env [ 0; 1; 3 ])
    route.Router.bit_risk_miles

(* random connected env generator for properties *)
let random_env_gen =
  QCheck.Gen.(
    int_range 3 10 >>= fun n ->
    list_size (int_range 0 15) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    >>= fun extra ->
    array_size (return n) (float_range 0.0 3e-4) >>= fun historical ->
    return (n, extra, historical))

let arb_random_env =
  QCheck.make random_env_gen ~print:(fun (n, extra, _) ->
      Printf.sprintf "n=%d extra=%d" n (List.length extra))

let build_random_env (n, extra, historical) =
  let graph = Rr_graph.Graph.create n in
  for i = 0 to n - 2 do
    Rr_graph.Graph.add_edge graph i (i + 1) (* chain keeps it connected *)
  done;
  List.iter
    (fun (u, v) -> if u <> v then Rr_graph.Graph.add_edge graph u v)
    extra;
  let coords =
    Array.init n (fun i ->
        coord (28.0 +. float_of_int (i * 2)) (-120.0 +. float_of_int (i * 5)))
  in
  let impact = Array.make n (1.0 /. float_of_int n) in
  Env.make ~graph ~coords ~impact ~historical ()

let riskroute_never_riskier =
  QCheck.Test.make ~name:"riskroute bit-risk <= shortest bit-risk" ~count:200
    arb_random_env
    (fun spec ->
      let env = build_random_env spec in
      let n = Env.node_count env in
      match (Router.riskroute env ~src:0 ~dst:(n - 1), Router.shortest env ~src:0 ~dst:(n - 1)) with
      | Some rr, Some sp -> rr.Router.bit_risk_miles <= sp.Router.bit_risk_miles +. 1e-6
      | _ -> false)

let riskroute_cost_is_metric =
  QCheck.Test.make ~name:"riskroute cost equals Eq. 1 on its own path" ~count:200
    arb_random_env
    (fun spec ->
      let env = build_random_env spec in
      let n = Env.node_count env in
      match Router.riskroute env ~src:0 ~dst:(n - 1) with
      | Some rr ->
        Float.abs (rr.Router.bit_risk_miles -. Metric.bit_risk_miles env rr.Router.path)
        < 1e-6
      | None -> false)

(* --- Ratios --- *)

let test_ratios_no_risk_convention () =
  (* with zero risk, every pair ratio is exactly 1; the paper's 1/N^2
     denominator then gives rr = 1/N and dr = -1/N *)
  let graph = Rr_graph.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let env =
    Env.make ~graph
      ~coords:[| coord 30.0 (-90.0); coord 32.0 (-95.0); coord 34.0 (-90.0); coord 32.0 (-85.0) |]
      ~impact:(Array.make 4 0.25)
      ~historical:(Array.make 4 0.0) ()
  in
  let r = Ratios.intradomain env in
  Alcotest.(check (float 1e-9)) "rr = 1/N" 0.25 r.Ratios.risk_reduction;
  Alcotest.(check (float 1e-9)) "dr = -1/N" (-0.25) r.Ratios.distance_increase;
  Alcotest.(check int) "all ordered pairs" 12 r.Ratios.pairs

let test_ratios_diamond () =
  let env = diamond () in
  let r = Ratios.intradomain env in
  Alcotest.(check bool) "positive reduction beyond 1/N" true
    (r.Ratios.risk_reduction > 0.25);
  Alcotest.(check int) "12 ordered pairs" 12 r.Ratios.pairs

let test_ratios_deterministic_sampling () =
  let env = diamond () in
  let a = Ratios.intradomain ~pair_cap:6 ~seed:1L env in
  let b = Ratios.intradomain ~pair_cap:6 ~seed:1L env in
  Alcotest.(check (float 1e-12)) "same seed same result" a.Ratios.risk_reduction
    b.Ratios.risk_reduction

let test_ratios_between () =
  let env = diamond () in
  let r = Ratios.between env ~sources:[| 0 |] ~dests:[| 1; 2; 3 |] in
  Alcotest.(check int) "three pairs" 3 r.Ratios.pairs;
  let empty = Ratios.between env ~sources:[||] ~dests:[| 1 |] in
  Alcotest.(check int) "no sources" 0 empty.Ratios.pairs

(* --- Augment --- *)

let test_augment_candidates_rule () =
  let env = diamond () in
  (* 0-3 direct is much shorter than 0-1-3; 1-2 may also qualify *)
  let candidates = Augment.candidates env in
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "not an existing edge" false
        (Rr_graph.Graph.has_edge (Env.graph env) u v);
      let direct = Env.link_miles env u v in
      let tree =
        Rr_graph.Dijkstra.single_pair (Env.graph env)
          ~weight:(fun a b -> Env.link_miles env a b)
          ~src:u ~dst:v
      in
      match tree with
      | Some (current, _) ->
        Alcotest.(check bool) "more than 50% shorter" true (direct < 0.5 *. current)
      | None -> Alcotest.fail "connected")
    candidates

let test_augment_greedy_improves () =
  let env = diamond () in
  match Augment.greedy ~k:1 env with
  | [] -> Alcotest.fail "diamond has candidates"
  | pick :: _ ->
    Alcotest.(check bool) "fraction <= 1" true (pick.Augment.fraction <= 1.0 +. 1e-9);
    (* insertion-formula total must equal recomputing from scratch *)
    let g = Rr_graph.Graph.copy (Env.graph env) in
    Rr_graph.Graph.add_edge g pick.Augment.u pick.Augment.v;
    let recomputed = Augment.total_bit_risk (Env.with_graph env g) in
    Alcotest.(check bool) "matches brute force" true
      (Float.abs (recomputed -. pick.Augment.total_after) /. recomputed < 1e-9)

let test_augment_greedy_monotone () =
  let env = diamond () in
  let picks = Augment.greedy ~k:3 env in
  let fractions = List.map (fun p -> p.Augment.fraction) picks in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone improvement" true (decreasing fractions)

let augment_insertion_matches_bruteforce =
  QCheck.Test.make ~name:"greedy insertion totals match recomputation" ~count:60
    arb_random_env
    (fun spec ->
      let env = build_random_env spec in
      match Augment.greedy ~k:1 ~max_candidates:50 env with
      | [] -> true
      | pick :: _ ->
        let g = Rr_graph.Graph.copy (Env.graph env) in
        Rr_graph.Graph.add_edge g pick.Augment.u pick.Augment.v;
        let recomputed = Augment.total_bit_risk (Env.with_graph env g) in
        Float.abs (recomputed -. pick.Augment.total_after)
        <= 1e-6 *. Float.max 1.0 recomputed)

(* --- Interdomain --- *)

let mini_peering () =
  (* two 2-PoP networks sharing one metro *)
  let mk name cities =
    let pops =
      Array.of_list
        (List.mapi
           (fun id (city, state, lat, lon) ->
             Rr_topology.Pop.make ~id ~city ~state (coord lat lon))
           cities)
    in
    let graph = Rr_graph.Graph.of_edges (Array.length pops) [ (0, 1) ] in
    Rr_topology.Net.make ~name ~tier:Rr_topology.Net.Regional pops graph
  in
  let a = mk "NetA" [ ("Houston", "TX", 29.76, -95.37); ("Dallas", "TX", 32.78, -96.80) ] in
  let b = mk "NetB" [ ("Dallas", "TX", 32.78, -96.80); ("Austin", "TX", 30.27, -97.74) ] in
  { Rr_topology.Peering.nets = [| a; b |]; edges = [ (0, 1) ] }

let test_interdomain_merge () =
  let merged = Interdomain.merge (mini_peering ()) in
  Alcotest.(check int) "four nodes" 4 (Interdomain.node_count merged);
  Alcotest.(check int) "node id offsets" 2 (Interdomain.node_id merged ~net:1 ~pop:0);
  Alcotest.(check int) "owner" 1 (Interdomain.owner merged 3);
  (* peering link between the co-located Dallas PoPs *)
  Alcotest.(check bool) "peering link added" true
    (Rr_graph.Graph.has_edge (Interdomain.graph merged) 1 2);
  Alcotest.(check int) "one peering link" 1 (Interdomain.peering_link_count merged);
  Alcotest.(check (array int)) "regional nodes" [| 0; 1; 2; 3 |]
    (Interdomain.regional_nodes merged)

let test_interdomain_cross_net_route () =
  let merged = Interdomain.merge (mini_peering ()) in
  let env =
    Env.make ~graph:(Interdomain.graph merged)
      ~coords:
        [| coord 29.76 (-95.37); coord 32.78 (-96.8); coord 32.78 (-96.8); coord 30.27 (-97.74) |]
      ~impact:(Array.make 4 0.25)
      ~historical:(Array.make 4 1e-5) ()
  in
  (* Houston (NetA) to Austin (NetB) must cross the Dallas peering *)
  match Router.shortest env ~src:0 ~dst:3 with
  | Some route -> Alcotest.(check (list int)) "through peering" [ 0; 1; 2; 3 ] route.Router.path
  | None -> Alcotest.fail "should route across the peering"

let test_interdomain_with_extra_peering () =
  let peering = mini_peering () in
  let merged = Interdomain.merge { peering with Rr_topology.Peering.edges = [] } in
  Alcotest.(check int) "no peering links" 0 (Interdomain.peering_link_count merged);
  let merged' = Interdomain.with_extra_peering merged ~net_a:0 ~net_b:1 in
  Alcotest.(check int) "peering added" 1 (Interdomain.peering_link_count merged');
  (* original untouched *)
  Alcotest.(check int) "original unchanged" 0 (Interdomain.peering_link_count merged)

(* --- Characteristics --- *)

let test_characteristics_table () =
  let zoo = Rr_topology.Zoo.shared () in
  let riskmap = Rr_disaster.Riskmap.build (Rr_disaster.Catalog.generate ~scale:0.01 ()) in
  let results =
    List.map
      (fun net ->
        ( net,
          {
            Ratios.risk_reduction = 0.01 *. float_of_int (Rr_topology.Net.pop_count net);
            distance_increase = 0.1;
            pairs = 10;
          } ))
      zoo.Rr_topology.Zoo.regionals
  in
  let table =
    Characteristics.table ~results ~peering:zoo.Rr_topology.Zoo.peering ~riskmap
  in
  Alcotest.(check int) "six rows" 6 (List.length table);
  List.iter
    (fun (row : Characteristics.row) ->
      Alcotest.(check bool) "r2 in bounds" true
        (row.Characteristics.r2_risk >= 0.0 && row.Characteristics.r2_risk <= 1.0 +. 1e-9))
    table;
  (* the fabricated ratios are a perfect linear function of #PoPs *)
  let pops_row =
    List.find
      (fun (r : Characteristics.row) ->
        r.Characteristics.characteristic = Characteristics.Number_of_pops)
      table
  in
  Alcotest.(check bool) "perfect fit detected" true (pops_row.Characteristics.r2_risk > 0.999)

let test_characteristics_values () =
  let zoo = Rr_topology.Zoo.shared () in
  let net = Option.get (Rr_topology.Zoo.find zoo "Globalcenter") in
  let riskmap = Rr_disaster.Riskmap.build (Rr_disaster.Catalog.generate ~scale:0.01 ()) in
  let v c = Characteristics.value c ~net ~peering:zoo.Rr_topology.Zoo.peering ~riskmap in
  Alcotest.(check (float 1e-9)) "#pops" 8.0 (v Characteristics.Number_of_pops);
  Alcotest.(check bool) "footprint > 0" true (v Characteristics.Geographic_footprint > 0.0);
  Alcotest.(check bool) "peers >= 1" true (v Characteristics.Number_of_peers >= 1.0)

let test_characteristics_requires_two () =
  let zoo = Rr_topology.Zoo.shared () in
  let riskmap = Rr_disaster.Riskmap.build (Rr_disaster.Catalog.generate ~scale:0.01 ()) in
  Alcotest.check_raises "one network"
    (Invalid_argument "Characteristics.table: need at least two networks") (fun () ->
      ignore
        (Characteristics.table
           ~results:
             [ (List.hd zoo.Rr_topology.Zoo.regionals,
                { Ratios.risk_reduction = 0.1; distance_increase = 0.1; pairs = 1 }) ]
           ~peering:zoo.Rr_topology.Zoo.peering ~riskmap))

let () =
  Alcotest.run "riskroute-core"
    [
      ( "params",
        [
          Alcotest.test_case "defaults" `Quick test_params_default;
          Alcotest.test_case "validate" `Quick test_params_validate;
          Alcotest.test_case "with_*" `Quick test_params_with;
          Alcotest.test_case "eager validation" `Quick test_params_eager_validation;
          Alcotest.test_case "make" `Quick test_params_make;
        ] );
      ( "env",
        [
          Alcotest.test_case "length validation" `Quick test_env_length_validation;
          Alcotest.test_case "kappa" `Quick test_env_kappa;
          Alcotest.test_case "node risk" `Quick test_env_node_risk;
          Alcotest.test_case "link miles cache" `Quick test_env_link_miles_cached;
          Alcotest.test_case "with_forecast" `Quick test_env_with_forecast;
          Alcotest.test_case "with_advisory" `Quick test_env_with_advisory;
          Alcotest.test_case "with_graph" `Quick test_env_with_graph;
        ] );
      ( "metric",
        [
          Alcotest.test_case "Eq. 1 by hand" `Quick test_metric_eq1_by_hand;
          Alcotest.test_case "bit miles" `Quick test_metric_bit_miles;
          Alcotest.test_case "degenerate paths" `Quick test_metric_degenerate_paths;
          Alcotest.test_case "source risk excluded" `Quick test_metric_source_risk_not_counted;
          Alcotest.test_case "path risk" `Quick test_metric_path_risk;
        ] );
      ( "router",
        [
          Alcotest.test_case "avoids hot node" `Quick test_router_avoids_hot_node;
          Alcotest.test_case "domination" `Quick test_router_riskroute_dominates;
          Alcotest.test_case "no risk = shortest" `Quick test_router_no_risk_equals_shortest;
          Alcotest.test_case "disconnected" `Quick test_router_disconnected;
          Alcotest.test_case "route_of_path" `Quick test_route_of_path;
          QCheck_alcotest.to_alcotest riskroute_never_riskier;
          QCheck_alcotest.to_alcotest riskroute_cost_is_metric;
        ] );
      ( "ratios",
        [
          Alcotest.test_case "zero-risk convention" `Quick test_ratios_no_risk_convention;
          Alcotest.test_case "diamond" `Quick test_ratios_diamond;
          Alcotest.test_case "deterministic sampling" `Quick test_ratios_deterministic_sampling;
          Alcotest.test_case "between sets" `Quick test_ratios_between;
        ] );
      ( "augment",
        [
          Alcotest.test_case "candidate rule" `Quick test_augment_candidates_rule;
          Alcotest.test_case "greedy improves" `Quick test_augment_greedy_improves;
          Alcotest.test_case "greedy monotone" `Quick test_augment_greedy_monotone;
          QCheck_alcotest.to_alcotest augment_insertion_matches_bruteforce;
        ] );
      ( "interdomain",
        [
          Alcotest.test_case "merge" `Quick test_interdomain_merge;
          Alcotest.test_case "cross-net route" `Quick test_interdomain_cross_net_route;
          Alcotest.test_case "extra peering" `Quick test_interdomain_with_extra_peering;
        ] );
      ( "characteristics",
        [
          Alcotest.test_case "table" `Quick test_characteristics_table;
          Alcotest.test_case "values" `Quick test_characteristics_values;
          Alcotest.test_case "needs two networks" `Quick test_characteristics_requires_two;
        ] );
    ]
