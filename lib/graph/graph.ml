type t = {
  n : int;
  adj : int list array;
  mutable edge_count : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.make n []; edge_count = 0 }

let node_count t = t.n

let edge_count t = t.edge_count

let check_node t v =
  if v < 0 || v >= t.n then invalid_arg "Graph: node out of range"

let has_edge t u v =
  check_node t u;
  check_node t v;
  List.mem v t.adj.(u)

let add_edge t u v =
  check_node t u;
  check_node t v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if not (List.mem v t.adj.(u)) then begin
    t.adj.(u) <- v :: t.adj.(u);
    t.adj.(v) <- u :: t.adj.(v);
    t.edge_count <- t.edge_count + 1
  end

let remove_edge t u v =
  check_node t u;
  check_node t v;
  if List.mem v t.adj.(u) then begin
    t.adj.(u) <- List.filter (fun x -> x <> v) t.adj.(u);
    t.adj.(v) <- List.filter (fun x -> x <> u) t.adj.(v);
    t.edge_count <- t.edge_count - 1
  end

let neighbors t v =
  check_node t v;
  t.adj.(v)

let iter_neighbors t v f =
  check_node t v;
  List.iter f t.adj.(v)

let degree t v =
  check_node t v;
  List.length t.adj.(v)

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    List.iter (fun v -> if u < v then acc := (u, v) :: !acc) t.adj.(u)
  done;
  !acc

let to_csr t =
  let off = Array.make (t.n + 1) 0 in
  for u = 0 to t.n - 1 do
    off.(u + 1) <- off.(u) + List.length t.adj.(u)
  done;
  let tgt = Array.make off.(t.n) 0 in
  for u = 0 to t.n - 1 do
    let k = ref off.(u) in
    List.iter
      (fun v ->
        tgt.(!k) <- v;
        incr k)
      t.adj.(u)
  done;
  (off, tgt)

(* Reverse-CSR view: for an undirected CSR snapshot every arc (u, v) has
   a unique mate (v, u); pairing them lets a backward traversal weigh the
   reverse arc through the forward arc's index (asymmetric weights such
   as target-node risk need this). Simple graphs guarantee the mate is
   unique, so a linear probe of v's row finds it. *)
let csr_mates ~off ~tgt =
  let n = Array.length off - 1 in
  let arcs = Array.length tgt in
  let mate = Array.make arcs (-1) in
  for u = 0 to n - 1 do
    for k = off.(u) to off.(u + 1) - 1 do
      if mate.(k) < 0 then begin
        let v = tgt.(k) in
        let j = ref off.(v) in
        let hi = off.(v + 1) in
        while !j < hi && (tgt.(!j) <> u || mate.(!j) >= 0) do incr j done;
        if !j >= hi then invalid_arg "Graph.csr_mates: arc without mate";
        mate.(k) <- !j;
        mate.(!j) <- k
      end
    done
  done;
  mate

let copy t = { t with adj = Array.copy t.adj }

let of_edges n edge_list =
  let t = create n in
  List.iter (fun (u, v) -> add_edge t u v) edge_list;
  t
