(** Fig. 4: bandwidth-optimised kernel density estimates of the five
    disaster catalogues (A: hurricane, B: tornado, C: storm,
    D: earthquake, E: damaging wind), as ASCII heat maps plus regional
    mass-concentration checks. *)

type concentration = {
  kind : Rr_disaster.Event.kind;
  region : string;       (** the region the paper says dominates *)
  mass_share : float;    (** fraction of density mass inside that region *)
}

val concentrations : Rr_engine.Context.t -> concentration list
(** Quantitative check of the geography: hurricanes on the Gulf/Atlantic
    coast, tornadoes/storms in the central plains, earthquakes in the
    West. *)

val run : Rr_engine.Context.t -> Format.formatter -> unit
