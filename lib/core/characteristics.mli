(** Network-characteristic study (Sec. 7.1.1 / Table 3).

    Regresses six characteristics of the regional networks against the
    observed risk-reduction and distance-increase ratios and reports
    the coefficient of determination of each linear fit. *)

type characteristic =
  | Geographic_footprint
  | Average_pop_risk
  | Average_outdegree
  | Number_of_pops
  | Number_of_links
  | Number_of_peers

val all : characteristic list
(** Table 3 order. *)

val name : characteristic -> string

val value :
  characteristic ->
  net:Rr_topology.Net.t ->
  peering:Rr_topology.Peering.t ->
  riskmap:Rr_disaster.Riskmap.t ->
  float
(** Evaluate one characteristic for one network. *)

type row = {
  characteristic : characteristic;
  r2_risk : float;      (** R^2 against risk-reduction ratios *)
  r2_distance : float;  (** R^2 against distance-increase ratios *)
}

val table :
  results:(Rr_topology.Net.t * Ratios.result) list ->
  peering:Rr_topology.Peering.t ->
  riskmap:Rr_disaster.Riskmap.t ->
  row list
(** Full Table 3 from per-network ratio results (at least two
    networks). *)
