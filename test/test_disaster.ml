let small_catalog () = Rr_disaster.Catalog.generate ~seed:21L ~scale:0.02 ()

(* --- Event --- *)

let test_paper_counts () =
  Alcotest.(check int) "hurricane" 2_805
    (Rr_disaster.Event.paper_count Rr_disaster.Event.Fema_hurricane);
  Alcotest.(check int) "wind" 143_847
    (Rr_disaster.Event.paper_count Rr_disaster.Event.Noaa_wind);
  let total =
    List.fold_left
      (fun acc k -> acc + Rr_disaster.Event.paper_count k)
      0 Rr_disaster.Event.all_kinds
  in
  (* 29,865 FEMA declarations + 146,114 NOAA records *)
  Alcotest.(check int) "grand total" 175_979 total

let test_fema_total_matches_paper () =
  let fema =
    Rr_disaster.Event.paper_count Rr_disaster.Event.Fema_hurricane
    + Rr_disaster.Event.paper_count Rr_disaster.Event.Fema_tornado
    + Rr_disaster.Event.paper_count Rr_disaster.Event.Fema_storm
  in
  Alcotest.(check int) "29,865 FEMA declarations" 29_865 fema

let test_kind_names_distinct () =
  let names = List.map Rr_disaster.Event.kind_name Rr_disaster.Event.all_kinds in
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare names))

(* --- Model --- *)

let test_model_sampler_in_conus () =
  List.iter
    (fun kind ->
      let model = Rr_disaster.Model.for_kind kind in
      let sample = Rr_disaster.Model.sampler model ~seed:9L in
      let rng = Rr_util.Prng.create 10L in
      for _ = 1 to 200 do
        let c = sample rng in
        Alcotest.(check bool) "in CONUS" true
          (Rr_geo.Bbox.contains Rr_geo.Bbox.conus c)
      done)
    Rr_disaster.Event.all_kinds

let test_model_macro_density_positive () =
  let model = Rr_disaster.Model.for_kind Rr_disaster.Event.Fema_hurricane in
  let at_gulf =
    Rr_disaster.Model.macro_density model (Rr_geo.Coord.make ~lat:29.95 ~lon:(-90.07))
  in
  let at_plains =
    Rr_disaster.Model.macro_density model (Rr_geo.Coord.make ~lat:41.0 ~lon:(-100.0))
  in
  Alcotest.(check bool) "positive" true (at_gulf > 0.0);
  Alcotest.(check bool) "gulf >> plains for hurricanes" true (at_gulf > 10.0 *. at_plains)

let test_model_geography () =
  (* earthquake mass should sit in the west; tornado mass in the plains *)
  let check kind hot cold =
    let model = Rr_disaster.Model.for_kind kind in
    let sample = Rr_disaster.Model.sampler model ~seed:3L in
    let rng = Rr_util.Prng.create 4L in
    let hot_count = ref 0 and cold_count = ref 0 in
    for _ = 1 to 1000 do
      let c = sample rng in
      if Rr_geo.Distance.miles c hot < 500.0 then incr hot_count;
      if Rr_geo.Distance.miles c cold < 500.0 then incr cold_count
    done;
    Alcotest.(check bool)
      (Rr_disaster.Event.kind_name kind ^ " geography")
      true (!hot_count > 2 * !cold_count)
  in
  check Rr_disaster.Event.Noaa_earthquake
    (Rr_geo.Coord.make ~lat:36.0 ~lon:(-119.0)) (* California *)
    (Rr_geo.Coord.make ~lat:33.0 ~lon:(-84.0));  (* Georgia *)
  check Rr_disaster.Event.Fema_tornado
    (Rr_geo.Coord.make ~lat:36.0 ~lon:(-97.0))  (* Oklahoma *)
    (Rr_geo.Coord.make ~lat:44.0 ~lon:(-71.0))   (* New Hampshire *)

(* --- Catalog --- *)

let test_catalog_scaled_counts () =
  let catalog = small_catalog () in
  List.iter
    (fun kind ->
      let expected =
        max 10
          (int_of_float (Float.round (0.02 *. float_of_int (Rr_disaster.Event.paper_count kind))))
      in
      Alcotest.(check int)
        (Rr_disaster.Event.kind_name kind)
        expected
        (Rr_disaster.Catalog.count catalog kind))
    Rr_disaster.Event.all_kinds

let test_catalog_total () =
  let catalog = small_catalog () in
  let sum =
    List.fold_left
      (fun acc k -> acc + Rr_disaster.Catalog.count catalog k)
      0 Rr_disaster.Event.all_kinds
  in
  Alcotest.(check int) "total is sum" sum (Rr_disaster.Catalog.total catalog)

let test_catalog_years () =
  let catalog = small_catalog () in
  Array.iter
    (fun (e : Rr_disaster.Event.t) ->
      Alcotest.(check bool) "1970-2010" true
        (e.Rr_disaster.Event.year >= 1970 && e.Rr_disaster.Event.year <= 2010))
    (Rr_disaster.Catalog.events catalog)

let test_catalog_deterministic () =
  let a = Rr_disaster.Catalog.generate ~seed:33L ~scale:0.01 () in
  let b = Rr_disaster.Catalog.generate ~seed:33L ~scale:0.01 () in
  let coords c = Rr_disaster.Catalog.coords c Rr_disaster.Event.Fema_storm in
  Alcotest.(check bool) "same storm coords" true
    (Array.for_all2 Rr_geo.Coord.equal (coords a) (coords b))

let test_catalog_validation () =
  Alcotest.check_raises "bad scale"
    (Invalid_argument "Catalog.generate: non-positive scale") (fun () ->
      ignore (Rr_disaster.Catalog.generate ~scale:0.0 ()))

(* --- Riskmap --- *)

let test_riskmap_positive_and_geographic () =
  let riskmap = Rr_disaster.Riskmap.build (small_catalog ()) in
  let new_orleans = Rr_geo.Coord.make ~lat:29.95 ~lon:(-90.07) in
  let montana = Rr_geo.Coord.make ~lat:47.0 ~lon:(-109.0) in
  let risk_no = Rr_disaster.Riskmap.risk_at riskmap new_orleans in
  let risk_mt = Rr_disaster.Riskmap.risk_at riskmap montana in
  Alcotest.(check bool) "positive at New Orleans" true (risk_no > 0.0);
  Alcotest.(check bool) "Gulf riskier than Montana" true (risk_no > 3.0 *. risk_mt)

let test_riskmap_kind_density () =
  let riskmap = Rr_disaster.Riskmap.build (small_catalog ()) in
  List.iter
    (fun kind ->
      let density = Rr_disaster.Riskmap.kind_density riskmap kind in
      Alcotest.(check (float 1e-9))
        (Rr_disaster.Event.kind_name kind ^ " bandwidth")
        (Rr_disaster.Event.paper_bandwidth kind)
        (Rr_kde.Grid_density.bandwidth density))
    Rr_disaster.Event.all_kinds

let test_riskmap_custom_bandwidth () =
  let riskmap =
    Rr_disaster.Riskmap.build ~bandwidth:(fun _ -> 50.0) (small_catalog ())
  in
  let density = Rr_disaster.Riskmap.kind_density riskmap Rr_disaster.Event.Noaa_wind in
  Alcotest.(check (float 1e-9)) "override" 50.0 (Rr_kde.Grid_density.bandwidth density)

let test_riskmap_pop_risks () =
  let zoo = Rr_topology.Zoo.shared () in
  let net = Option.get (Rr_topology.Zoo.find zoo "Globalcenter") in
  let riskmap = Rr_disaster.Riskmap.build (small_catalog ()) in
  let risks = Rr_disaster.Riskmap.pop_risks riskmap net in
  Alcotest.(check int) "one per PoP" (Rr_topology.Net.pop_count net) (Array.length risks);
  Array.iter (fun r -> Alcotest.(check bool) "non-negative" true (r >= 0.0)) risks;
  Alcotest.(check (float 1e-12)) "average matches"
    (Rr_util.Arrayx.fmean risks)
    (Rr_disaster.Riskmap.average_pop_risk riskmap net)

let () =
  Alcotest.run "rr_disaster"
    [
      ( "event",
        [
          Alcotest.test_case "paper counts" `Quick test_paper_counts;
          Alcotest.test_case "FEMA total" `Quick test_fema_total_matches_paper;
          Alcotest.test_case "kind names" `Quick test_kind_names_distinct;
        ] );
      ( "model",
        [
          Alcotest.test_case "samples in CONUS" `Quick test_model_sampler_in_conus;
          Alcotest.test_case "macro density" `Quick test_model_macro_density_positive;
          Alcotest.test_case "geography" `Quick test_model_geography;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "scaled counts" `Quick test_catalog_scaled_counts;
          Alcotest.test_case "total" `Quick test_catalog_total;
          Alcotest.test_case "years" `Quick test_catalog_years;
          Alcotest.test_case "deterministic" `Quick test_catalog_deterministic;
          Alcotest.test_case "validation" `Quick test_catalog_validation;
        ] );
      ( "riskmap",
        [
          Alcotest.test_case "geographic risk" `Quick test_riskmap_positive_and_geographic;
          Alcotest.test_case "kind densities" `Quick test_riskmap_kind_density;
          Alcotest.test_case "custom bandwidth" `Quick test_riskmap_custom_bandwidth;
          Alcotest.test_case "pop risks" `Quick test_riskmap_pop_risks;
        ] );
    ]
