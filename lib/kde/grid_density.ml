type t = {
  bandwidth : float;
  grid : Rr_geo.Grid.t;
}

let default_rows = 250

let default_cols = 580

let c_fits = Rr_obs.Counter.make "kde.grid_fits"

let c_events = Rr_obs.Counter.make "kde.events_deposited"

let h_sweep = Rr_obs.Histogram.make "kde.sweep_seconds"

let fit ?(rows = default_rows) ?(cols = default_cols) ~bandwidth events =
 Rr_obs.with_kernel "kde.grid_fit" @@ fun () ->
  let tel = Rr_obs.enabled () in
  if tel then begin
    Rr_obs.Counter.incr c_fits;
    Rr_obs.Counter.add c_events (Array.length events)
  end;
  if bandwidth <= 0.0 then invalid_arg "Grid_density.fit: non-positive bandwidth";
  if Array.length events = 0 then invalid_arg "Grid_density.fit: no events";
  let box = Rr_geo.Bbox.conus in
  let counts = Rr_geo.Grid.create box ~rows ~cols in
  Array.iter (fun c -> Rr_geo.Grid.deposit counts c 1.0) events;
  (* Cell geometry (miles). Longitude scale varies by row. *)
  let lat_span = box.Rr_geo.Bbox.max_lat -. box.Rr_geo.Bbox.min_lat in
  let lon_span = box.Rr_geo.Bbox.max_lon -. box.Rr_geo.Bbox.min_lon in
  let cell_lat_miles = lat_span /. float_of_int rows *. 69.0 in
  let out = Rr_geo.Grid.create box ~rows ~cols in
  let support = Kernel.support_miles ~bandwidth in
  let rad_rows = max 1 (int_of_float (Float.ceil (support /. cell_lat_miles))) in
  let inv_2h2 = 0.5 /. (bandwidth *. bandwidth) in
  let norm = 1.0 /. (2.0 *. Float.pi *. bandwidth *. bandwidth) in
  let total_events = float_of_int (Array.length events) in
  (* Scatter each non-empty source cell onto its neighbourhood. This runs
     over occupied cells only, which is far cheaper than gathering into
     every output cell when events cluster. *)
  let scatter dst lo hi =
    for src_row = lo to hi do
      let src_lat =
        box.Rr_geo.Bbox.max_lat
        -. ((float_of_int src_row +. 0.5) /. float_of_int rows *. lat_span)
      in
      let cell_lon_miles =
        lon_span /. float_of_int cols *. 69.0
        *. Float.max 0.2 (cos (src_lat *. Float.pi /. 180.0))
      in
      let rad_cols = max 1 (int_of_float (Float.ceil (support /. cell_lon_miles))) in
      for src_col = 0 to cols - 1 do
        let mass = Rr_geo.Grid.get counts src_row src_col in
        if mass > 0.0 then
          for dr = -rad_rows to rad_rows do
            let row = src_row + dr in
            if row >= 0 && row < rows then
              for dc = -rad_cols to rad_cols do
                let col = src_col + dc in
                if col >= 0 && col < cols then begin
                  let dy = float_of_int dr *. cell_lat_miles in
                  let dx = float_of_int dc *. cell_lon_miles in
                  let d2 = (dy *. dy) +. (dx *. dx) in
                  let k = norm *. exp (-.d2 *. inv_2h2) in
                  Rr_geo.Grid.add dst row col (mass *. k /. total_events)
                end
              done
          done
      done
    done
  in
  (* Per-sweep timing: one observation per contiguous source-row sweep
     (the whole grid sequentially, or each chunk on the pool). *)
  let timed_scatter dst lo hi =
    if tel then begin
      let t0 = Rr_obs.Clock.monotonic () in
      scatter dst lo hi;
      Rr_obs.Histogram.observe h_sweep (Rr_obs.Clock.monotonic () -. t0)
    end
    else scatter dst lo hi
  in
  let domains = Rr_util.Parallel.domain_count () in
  if domains <= 1 then timed_scatter out 0 (rows - 1)
  else begin
    (* Source-row chunks scatter into private grids (their output
       neighbourhoods overlap by the kernel radius), merged in chunk
       order. Summation order differs from the sequential pass, so
       densities agree only to rounding when more than one domain runs;
       a single-domain pool reproduces the sequential result exactly. *)
    let chunks = min rows (2 * domains) in
    let partials =
      Rr_util.Parallel.map_array
        (fun c ->
          let lo = c * rows / chunks and hi = ((c + 1) * rows / chunks) - 1 in
          let dst = Rr_geo.Grid.create box ~rows ~cols in
          timed_scatter dst lo hi;
          dst)
        (Array.init chunks (fun c -> c))
    in
    Array.iter
      (fun partial ->
        Rr_geo.Grid.fold partial ~init:() ~f:(fun () row col v ->
            if v <> 0.0 then Rr_geo.Grid.add out row col v))
      partials
  end;
  { bandwidth; grid = out }

let bandwidth t = t.bandwidth

let eval t point =
  match Rr_geo.Grid.cell_of_coord t.grid point with
  | None -> 0.0
  | Some (row, col) -> Rr_geo.Grid.get t.grid row col

let grid t = t.grid
