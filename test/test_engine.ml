(* Engine context: fingerprints, bounded LRU, and cache correctness.

   The load-bearing property is that cached artifacts are *bitwise*
   indistinguishable from freshly-computed ones: a warm context must
   produce byte-identical results to a cold one, and to the plain
   uncached code path, at any pool size. *)

module Context = Rr_engine.Context
module Spec = Rr_engine.Spec
module Fingerprint = Rr_engine.Fingerprint
module Lru = Rr_engine.Lru
open Riskroute

let with_domains k f =
  let old = Rr_util.Parallel.domain_count () in
  Rr_util.Parallel.set_domain_count k;
  Fun.protect ~finally:(fun () -> Rr_util.Parallel.set_domain_count old) f

(* --- bounded LRU --- *)

let test_lru_bound_and_eviction () =
  let l = Lru.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (Lru.capacity l);
  let evicted = ref 0 in
  for i = 1 to 10 do
    evicted := !evicted + Lru.add l (string_of_int i) i
  done;
  Alcotest.(check int) "bounded" 3 (Lru.length l);
  Alcotest.(check int) "evictions counted" 7 !evicted;
  (* Most-recent three survive. *)
  Alcotest.(check bool) "10 kept" true (Lru.find l "10" = Some 10);
  Alcotest.(check bool) "9 kept" true (Lru.find l "9" = Some 9);
  Alcotest.(check bool) "8 kept" true (Lru.find l "8" = Some 8);
  Alcotest.(check bool) "7 evicted" true (Lru.find l "7" = None)

let test_lru_find_promotes () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l "a" 1);
  ignore (Lru.add l "b" 2);
  ignore (Lru.find l "a");
  (* "a" is now most recent, so inserting "c" evicts "b". *)
  ignore (Lru.add l "c" 3);
  Alcotest.(check bool) "a survives" true (Lru.find l "a" = Some 1);
  Alcotest.(check bool) "b evicted" true (Lru.find l "b" = None)

let test_lru_bad_capacity () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: negative capacity") (fun () ->
      ignore (Lru.create ~capacity:(-1)))

(* --- fingerprints --- *)

let test_params_fingerprints_distinct () =
  let base = Fingerprint.params Params.default in
  Alcotest.(check bool) "structurally equal params share a fingerprint" true
    (String.equal base (Fingerprint.params (Params.make ())));
  Alcotest.(check bool) "lambda_h distinguishes" false
    (String.equal base
       (Fingerprint.params (Params.with_lambda_h 7.0 Params.default)));
  Alcotest.(check bool) "lambda_f distinguishes" false
    (String.equal base
       (Fingerprint.params (Params.with_lambda_f 7.0 Params.default)))

let test_advisory_fingerprints_distinct () =
  let advisories = Rr_forecast.Track.advisories Rr_forecast.Track.sandy in
  let a0 = List.nth advisories 0 and a1 = List.nth advisories 1 in
  let none = Fingerprint.advisory None in
  Alcotest.(check bool) "None vs Some" false
    (String.equal none (Fingerprint.advisory (Some a0)));
  Alcotest.(check bool) "different advisories differ" false
    (String.equal (Fingerprint.advisory (Some a0))
       (Fingerprint.advisory (Some a1)));
  Alcotest.(check bool) "same advisory repeats" true
    (String.equal (Fingerprint.advisory (Some a0))
       (Fingerprint.advisory (Some a0)))

(* --- env cache --- *)

let test_env_cache_identity () =
  let ctx = Context.create () in
  let net = Context.require_net ctx "Sprint" in
  let e1 = Context.env ctx net in
  let e2 = Context.env ctx net in
  Alcotest.(check bool) "same env physically shared" true (e1 == e2);
  let stats = Context.stats ctx in
  Alcotest.(check int) "one miss" 1 stats.Context.env_misses;
  Alcotest.(check int) "one hit" 1 stats.Context.env_hits;
  (* A structurally-equal params value still hits: keys are contents,
     not physical identity. *)
  let e3 = Context.env ~params:(Params.make ()) ctx net in
  Alcotest.(check bool) "structural params hit" true (e1 == e3);
  let e4 = Context.env ~params:(Params.with_lambda_h 7.0 Params.default) ctx net in
  Alcotest.(check bool) "distinct params distinct env" true (e1 != e4)

let test_tree_cache_eviction_bound () =
  let ctx = Context.create ~tree_cache_cap:4 () in
  let net = Context.require_net ctx "Sprint" in
  let env = Context.env ctx net in
  let trees = Context.dist_trees ctx env in
  for src = 0 to 9 do
    ignore (trees src)
  done;
  Alcotest.(check int) "length bounded" 4 (Context.tree_cache_length ctx);
  Alcotest.(check int) "capacity recorded" 4 (Context.tree_cache_capacity ctx);
  let stats = Context.stats ctx in
  Alcotest.(check int) "ten misses" 10 stats.Context.tree_misses;
  Alcotest.(check int) "six evictions" 6 stats.Context.tree_evictions;
  (* Re-requesting the most recent source hits; the oldest misses again. *)
  ignore (trees 9);
  ignore (trees 0);
  let stats = Context.stats ctx in
  Alcotest.(check int) "recent hit" 1 stats.Context.tree_hits;
  Alcotest.(check int) "evicted source recomputed" 11 stats.Context.tree_misses

(* --- cache correctness: warm = cold = uncached, at any pool size --- *)

(* Render every float with %h (hex, exact) so the comparison is bitwise,
   not print-rounded. *)
let render_result (r : Ratios.result) =
  Printf.sprintf "rr=%h dr=%h pairs=%d" r.Ratios.risk_reduction
    r.Ratios.distance_increase r.Ratios.pairs

let render_picks picks =
  String.concat ";"
    (List.map
       (fun (p : Augment.pick) ->
         Printf.sprintf "%d-%d:%h:%h" p.Augment.u p.Augment.v
           p.Augment.total_after p.Augment.fraction)
       picks)

let cached_snapshot ctx =
  let net = Context.require_net ctx "Sprint" in
  let env = Context.env ctx net in
  let dist = Context.dist_trees ctx env in
  let risk = Context.risk_trees ctx env in
  let r = Ratios.intradomain ~pair_cap:300 ~trees:dist env in
  let picks = Augment.greedy ~k:2 ~dist_trees:dist ~risk_trees:risk env in
  render_result r ^ " | " ^ render_picks picks

let uncached_snapshot zoo =
  let net = Option.get (Rr_topology.Zoo.find zoo "Sprint") in
  let env = Env.of_net net in
  let r = Ratios.intradomain ~pair_cap:300 env in
  let picks = Augment.greedy ~k:2 env in
  render_result r ^ " | " ^ render_picks picks

let test_warm_equals_cold_across_domains () =
  List.iter
    (fun domains ->
      with_domains domains (fun () ->
          let ctx = Context.create () in
          let cold = cached_snapshot ctx in
          let warm = cached_snapshot ctx in
          Alcotest.(check string)
            (Printf.sprintf "warm = cold at %d domains" domains)
            cold warm;
          let stats = Context.stats ctx in
          Alcotest.(check bool)
            (Printf.sprintf "warm pass hit env cache at %d domains" domains)
            true
            (stats.Context.env_hits > 0);
          Alcotest.(check bool)
            (Printf.sprintf "warm pass hit tree cache at %d domains" domains)
            true
            (stats.Context.tree_hits > 0);
          let fresh = uncached_snapshot (Context.zoo ctx) in
          Alcotest.(check string)
            (Printf.sprintf "cached = uncached at %d domains" domains)
            fresh cold))
    [ 1; 2; 4 ]

(* Distance trees depend only on geometry: environments differing in
   params or advisory share tree-cache entries. *)
let test_trees_shared_across_params () =
  let ctx = Context.create () in
  let net = Context.require_net ctx "Sprint" in
  let e1 = Context.env ctx net in
  ignore (Context.dist_trees ctx e1 0);
  let misses = (Context.stats ctx).Context.tree_misses in
  let e2 = Context.env ~params:(Params.with_lambda_h 7.0 Params.default) ctx net in
  ignore (Context.dist_trees ctx e2 0);
  let stats = Context.stats ctx in
  Alcotest.(check int) "no new tree miss under different params" misses
    stats.Context.tree_misses;
  Alcotest.(check bool) "tree hit instead" true (stats.Context.tree_hits > 0)

(* --- query facades --- *)

let test_net_query_memoised () =
  let ctx = Context.create () in
  let net = Context.require_net ctx "Sprint" in
  let q1 = Context.net_query ctx net in
  let q2 = Context.net_query ctx net in
  Alcotest.(check bool) "same facade physically shared" true (q1 == q2);
  Alcotest.(check int) "node count matches" (Rr_topology.Net.pop_count net)
    (Rr_graph.Query.node_count q1)

let test_landmark_trees_land_in_lru () =
  let ctx = Context.create () in
  let net = Context.require_net ctx "Sprint" in
  let q = Context.net_query ctx net in
  let before = (Context.stats ctx).Context.tree_misses in
  Rr_graph.Query.prepare q;
  let landmarks = Array.length (Rr_graph.Query.landmark_sources q) in
  let stats = Context.stats ctx in
  Alcotest.(check bool) "landmarks chosen" true (landmarks > 0);
  Alcotest.(check int) "one LRU miss per landmark" (before + landmarks)
    stats.Context.tree_misses;
  Alcotest.(check bool) "trees live in the LRU" true
    (Context.tree_cache_length ctx >= landmarks)

let test_query_fingerprint_unified () =
  (* The env-based and net-based facades share the tree-cache namespace:
     a landmark tree prepared through one is a hit for the other. *)
  let ctx = Context.create () in
  let net = Context.require_net ctx "Sprint" in
  let env = Context.env ctx net in
  ignore (Context.query ctx env);
  Rr_graph.Query.prepare (Riskroute.Env.query env);
  let misses = (Context.stats ctx).Context.tree_misses in
  let hits = (Context.stats ctx).Context.tree_hits in
  let q = Context.net_query ctx net in
  Rr_graph.Query.prepare q;
  let stats = Context.stats ctx in
  Alcotest.(check int) "no new misses through the net facade" misses
    stats.Context.tree_misses;
  Alcotest.(check bool) "hits instead" true (stats.Context.tree_hits > hits);
  Alcotest.(check (array int)) "same landmark choice"
    (Rr_graph.Query.landmark_sources (Riskroute.Env.query env))
    (Rr_graph.Query.landmark_sources q)

(* --- advisory-tick patching: Env.patch / Context.patched_env --- *)

let bits = Int64.bits_of_float

let sandy_adv i =
  List.nth (Rr_forecast.Track.advisories Rr_forecast.Track.sandy) i

let check_float_array label a b =
  Alcotest.(check int) (label ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if bits x <> bits b.(i) then
        Alcotest.failf "%s: bitwise mismatch at %d (%h vs %h)" label i x b.(i))
    a

(* Hex-render a tree so string equality is bitwise equality. *)
let render_tree (tr : Rr_graph.Dijkstra.tree) =
  String.concat ","
    (Array.to_list
       (Array.mapi
          (fun v d ->
            Printf.sprintf "%d:%h:%d" v d tr.Rr_graph.Dijkstra.parent.(v))
          tr.Rr_graph.Dijkstra.dist))

let check_envs_bitwise label fresh derived =
  check_float_array (label ^ " forecast") (Env.forecast fresh)
    (Env.forecast derived);
  check_float_array (label ^ " arc risk") (Env.arc_risk fresh)
    (Env.arc_risk derived);
  check_float_array (label ^ " arc miles") (Env.arc_miles fresh)
    (Env.arc_miles derived);
  for i = 0 to Env.node_count fresh - 1 do
    if bits (Env.node_risk fresh i) <> bits (Env.node_risk derived i) then
      Alcotest.failf "%s node_risk mismatch at %d" label i
  done

let test_env_patch_matches_rebuild () =
  List.iter
    (fun domains ->
      with_domains domains (fun () ->
          let ctx = Context.create () in
          let net = Context.require_net ctx "Level3" in
          let e0 = Context.env ~advisory:(sandy_adv 40) ctx net in
          let d =
            Rr_forecast.Riskfield.diff_field ~old_field:(Env.forecast e0)
              ~next:(Some (sandy_adv 41))
              (Env.coords e0)
          in
          Alcotest.(check bool) "tick moved the field" true
            (Array.length d.Rr_forecast.Riskfield.indices > 0);
          let p =
            Env.patch e0 ~indices:d.Rr_forecast.Riskfield.indices
              ~values:d.Rr_forecast.Riskfield.values
          in
          Alcotest.(check bool) "changed pops recorded" true
            (Array.length p.Env.changed_pops > 0);
          Alcotest.(check bool) "patched arcs recorded" true
            (Array.length p.Env.patched_arcs > 0);
          (* Geometry is shared with the parent, not copied. *)
          Alcotest.(check bool) "arc miles shared" true
            (Env.arc_miles p.Env.env == Env.arc_miles e0);
          let fresh =
            Context.env ~advisory:(sandy_adv 41) (Context.create ()) net
          in
          check_envs_bitwise
            (Printf.sprintf "patched env at %d domains" domains)
            fresh p.Env.env;
          (* An empty delta hands the parent back physically. *)
          let unchanged = Env.patch e0 ~indices:[||] ~values:[||] in
          Alcotest.(check bool) "empty delta reuses parent" true
            (unchanged.Env.env == e0)))
    [ 1; 2; 4 ]

let test_patched_env_matches_fresh () =
  List.iter
    (fun domains ->
      with_domains domains (fun () ->
          let ctx = Context.create () in
          let net = Context.require_net ctx "Level3" in
          let e0 = Context.env ~advisory:(sandy_adv 40) ctx net in
          let risk0 = Context.risk_trees ctx e0 in
          List.iter (fun s -> ignore (risk0 s)) [ 0; 1; 2 ];
          let e1 = Context.patched_env ~advisory:(sandy_adv 41) ctx net ~parent:e0 in
          let fresh_ctx = Context.create () in
          let f1 = Context.env ~advisory:(sandy_adv 41) fresh_ctx net in
          check_envs_bitwise
            (Printf.sprintf "patched_env at %d domains" domains)
            f1 e1;
          (* Migrated cached trees and freshly-computed ones both match a
             cold context bitwise (sources 0-2 were cached and migrated;
             source 5 is computed from the patched env). *)
          List.iter
            (fun s ->
              Alcotest.(check string)
                (Printf.sprintf "risk tree %d at %d domains" s domains)
                (render_tree (Context.risk_trees fresh_ctx f1 s))
                (render_tree (Context.risk_trees ctx e1 s)))
            [ 0; 1; 2; 5 ];
          (* The patched env landed under the content-addressed key a
             from-scratch build would use. *)
          Alcotest.(check bool) "env cache unified" true
            (Context.env ~advisory:(sandy_adv 41) ctx net == e1);
          let st = Context.stats ctx in
          Alcotest.(check int) "one env patched" 1 st.Context.env_patched;
          Alcotest.(check bool) "arcs re-weighted" true
            (st.Context.delta_patched_arcs > 0);
          Alcotest.(check int) "all three cached trees migrated" 3
            (st.Context.delta_trees_kept + st.Context.delta_trees_repaired
           + st.Context.delta_trees_evicted)))
    [ 1; 2; 4 ]

let test_patched_env_offshore_keeps_trees () =
  let ctx = Context.create () in
  let net = Context.require_net ctx "Level3" in
  (* Sandy's first two advisories are far offshore: the risk field over
     a CONUS net is all-zero on both ticks. *)
  let e0 = Context.env ~advisory:(sandy_adv 0) ctx net in
  let risk0 = Context.risk_trees ctx e0 in
  let t0 = risk0 0 and t1 = risk0 1 in
  let e1 = Context.patched_env ~advisory:(sandy_adv 1) ctx net ~parent:e0 in
  Alcotest.(check bool) "parent env reused physically" true (e0 == e1);
  Alcotest.(check bool) "future lookups hit the new key" true
    (Context.env ~advisory:(sandy_adv 1) ctx net == e1);
  let st = Context.stats ctx in
  Alcotest.(check int) "no arcs patched" 0 st.Context.delta_patched_arcs;
  Alcotest.(check int) "both cached trees kept" 2 st.Context.delta_trees_kept;
  Alcotest.(check int) "no repairs or evictions" 0
    (st.Context.delta_trees_repaired + st.Context.delta_trees_evicted);
  (* Kept means kept: the same physical trees serve the new tick. *)
  let risk1 = Context.risk_trees ctx e1 in
  Alcotest.(check bool) "tree 0 physically shared" true (risk1 0 == t0);
  Alcotest.(check bool) "tree 1 physically shared" true (risk1 1 == t1)

let test_env_sparse_dense_equivalence () =
  let zoo = Rr_topology.Zoo.shared () in
  let net = Option.get (Rr_topology.Zoo.find zoo "Level3") in
  let coords =
    Array.map
      (fun (p : Rr_topology.Pop.t) -> p.Rr_topology.Pop.coord)
      net.Rr_topology.Net.pops
  in
  let dense_env = Env.of_net ~advisory:(sandy_adv 40) net in
  Alcotest.(check bool) "corpus net is dense" true (Env.dense dense_env);
  let sparse_env =
    Env.make ~dense:false ~graph:net.Rr_topology.Net.graph ~coords
      ~impact:(Env.impact dense_env)
      ~historical:(Env.historical dense_env)
      ~forecast:(Env.forecast dense_env) ()
  in
  Alcotest.(check bool) "forced sparse" false (Env.dense sparse_env);
  check_envs_bitwise "sparse vs dense" dense_env sparse_env;
  (* link_miles answers from trig instead of the matrix — bit-identical
     in both argument orders. *)
  let n = Env.node_count dense_env in
  for u = 0 to min 24 (n - 1) do
    for v = 0 to min 24 (n - 1) do
      if u <> v then begin
        if
          bits (Env.link_miles dense_env u v)
          <> bits (Env.link_miles sparse_env u v)
        then Alcotest.failf "link_miles mismatch at (%d, %d)" u v
      end
    done
  done

let continental_net =
  lazy
    (let ctx = Context.create () in
     Context.continental ctx ~pops:2000)

let test_patched_env_continental () =
  let net = Lazy.force continental_net in
  List.iter
    (fun domains ->
      with_domains domains (fun () ->
          let ctx = Context.create () in
          let e0 = Context.env ~advisory:(sandy_adv 40) ctx net in
          Alcotest.(check bool) "continental env is sparse" false
            (Env.dense e0);
          let risk0 = Context.risk_trees ctx e0 in
          List.iter (fun s -> ignore (risk0 s)) [ 0; 7 ];
          let e1 =
            Context.patched_env ~advisory:(sandy_adv 41) ctx net ~parent:e0
          in
          let fresh_ctx = Context.create () in
          let f1 = Context.env ~advisory:(sandy_adv 41) fresh_ctx net in
          check_envs_bitwise
            (Printf.sprintf "continental patch at %d domains" domains)
            f1 e1;
          List.iter
            (fun s ->
              Alcotest.(check string)
                (Printf.sprintf "continental risk tree %d at %d domains" s
                   domains)
                (render_tree (Context.risk_trees fresh_ctx f1 s))
                (render_tree (Context.risk_trees ctx e1 s)))
            [ 0; 7 ]))
    [ 1; 2; 4 ]

let test_lru_fold_and_remove () =
  let l = Lru.create ~capacity:4 in
  ignore (Lru.add l "a" 1);
  ignore (Lru.add l "b" 2);
  ignore (Lru.add l "c" 3);
  let keys = Lru.fold l ~init:[] ~f:(fun acc k _ -> k :: acc) in
  (* fold walks most-recent first and must not disturb recency. *)
  Alcotest.(check (list string)) "MRU-first walk" [ "a"; "b"; "c" ] keys;
  Alcotest.(check bool) "remove present" true (Lru.remove l "b");
  Alcotest.(check bool) "remove absent" false (Lru.remove l "b");
  Alcotest.(check int) "length after remove" 2 (Lru.length l);
  Alcotest.(check bool) "removed key gone" true (Lru.find l "b" = None);
  Alcotest.(check bool) "others survive" true
    (Lru.find l "a" = Some 1 && Lru.find l "c" = Some 3)

let test_stats_fields_shape () =
  let ctx = Context.create () in
  Alcotest.(check (list string))
    "fixed field order"
    [
      "env.hits"; "env.misses"; "env.patched"; "env.cache_length";
      "tree.hits"; "tree.misses"; "tree.evictions"; "tree.cache_length";
      "tree.cache_capacity"; "tree.settled_nodes"; "delta.patched_arcs";
      "delta.trees_kept"; "delta.trees_repaired"; "delta.trees_evicted";
    ]
    (List.map fst (Context.stats_fields ctx))

let test_spec_accessors () =
  let s = Spec.make ~pair_cap:7 () in
  Alcotest.(check int) "explicit" 7 (Spec.pair_cap ~default:99 s);
  Alcotest.(check int) "defaulted" 99 (Spec.pair_cap ~default:99 Spec.default);
  Alcotest.(check int) "k defaulted" 4 (Spec.k ~default:4 Spec.default)

let () =
  Alcotest.run "rr_engine"
    [
      ( "lru",
        [
          Alcotest.test_case "bound and eviction" `Quick test_lru_bound_and_eviction;
          Alcotest.test_case "find promotes" `Quick test_lru_find_promotes;
          Alcotest.test_case "bad capacity" `Quick test_lru_bad_capacity;
          Alcotest.test_case "fold and remove" `Quick test_lru_fold_and_remove;
        ] );
      ( "fingerprints",
        [
          Alcotest.test_case "params" `Quick test_params_fingerprints_distinct;
          Alcotest.test_case "advisories" `Quick test_advisory_fingerprints_distinct;
        ] );
      ( "caches",
        [
          Alcotest.test_case "env identity" `Quick test_env_cache_identity;
          Alcotest.test_case "tree eviction bound" `Quick test_tree_cache_eviction_bound;
          Alcotest.test_case "trees shared across params" `Quick
            test_trees_shared_across_params;
          Alcotest.test_case "spec accessors" `Quick test_spec_accessors;
          Alcotest.test_case "net query memoised" `Quick test_net_query_memoised;
          Alcotest.test_case "landmark trees in LRU" `Quick
            test_landmark_trees_land_in_lru;
          Alcotest.test_case "query fingerprint unified" `Quick
            test_query_fingerprint_unified;
        ] );
      ( "delta",
        [
          Alcotest.test_case "stats fields shape" `Quick
            test_stats_fields_shape;
          Alcotest.test_case "env patch = rebuild, domains 1/2/4" `Slow
            test_env_patch_matches_rebuild;
          Alcotest.test_case "patched_env = fresh, domains 1/2/4" `Slow
            test_patched_env_matches_fresh;
          Alcotest.test_case "offshore tick keeps trees" `Quick
            test_patched_env_offshore_keeps_trees;
          Alcotest.test_case "sparse = dense env" `Quick
            test_env_sparse_dense_equivalence;
          Alcotest.test_case "continental patch, domains 1/2/4" `Slow
            test_patched_env_continental;
        ] );
      ( "correctness",
        [
          Alcotest.test_case "warm = cold = uncached, domains 1/2/4" `Slow
            test_warm_equals_cold_across_domains;
        ] );
    ]
