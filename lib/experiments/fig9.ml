type suggestion = {
  network : string;
  links : (string * string * float) list;
}

let networks = [ "Level3"; "AT&T"; "Tinet" ]

let default_spec =
  Rr_engine.Spec.make ~networks:(Rr_engine.Spec.Named networks) ~k:10 ()

let compute ctx (spec : Rr_engine.Spec.t) =
  let k = Rr_engine.Spec.k ~default:10 spec in
  List.map
    (fun net ->
      let env = Rr_engine.Context.env ctx net in
      let picks =
        Riskroute.Augment.greedy ~k
          ~dist_trees:(Rr_engine.Context.dist_trees ctx env)
          ~risk_trees:(Rr_engine.Context.risk_trees ctx env)
          env
      in
      let links =
        List.map
          (fun (p : Riskroute.Augment.pick) ->
            ( (Rr_topology.Net.pop net p.Riskroute.Augment.u).Rr_topology.Pop.name,
              (Rr_topology.Net.pop net p.Riskroute.Augment.v).Rr_topology.Pop.name,
              p.Riskroute.Augment.fraction ))
          picks
      in
      { network = net.Rr_topology.Net.name; links })
    (Rr_engine.Context.nets ctx spec.networks)

let run ctx ppf =
  Format.fprintf ppf
    "Fig 9: ten best additional links per network (greedy RiskRoute)@.";
  List.iter
    (fun s ->
      Format.fprintf ppf "%s:@." s.network;
      List.iteri
        (fun i (a, b, fraction) ->
          Format.fprintf ppf
            "  %2d. %-22s -- %-22s (bit-risk at %.3f of original)@." (i + 1) a b
            fraction)
        s.links)
    (compute ctx default_spec)
