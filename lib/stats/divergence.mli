(** Divergences and likelihood scores for density-estimate selection.

    The paper selects kernel bandwidths by 5-way cross validation under the
    KL divergence (Sec. 5.2). For a held-out empirical sample, minimising
    KL(empirical || model) is equivalent (up to a model-independent
    constant, the empirical entropy) to minimising the negative mean
    log-likelihood of the held-out points under the model — which is what
    {!holdout_score} computes. *)

val kl : p:float array -> q:float array -> float
(** Discrete KL divergence [sum p_i log (p_i / q_i)] between two
    distributions of equal length. Both sides are normalised first; a
    small floor is applied to [q] so the result is finite. *)

val jensen_shannon : p:float array -> q:float array -> float
(** Symmetrised, bounded divergence; handy for comparing heat maps in
    tests. *)

val holdout_score : log_density:(int -> float) -> n:int -> float
(** [holdout_score ~log_density ~n] is the negative mean log-likelihood of
    [n] held-out points, where [log_density i] evaluates the fitted model
    at held-out point [i]. Lower is better. *)
