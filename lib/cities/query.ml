let by_name ?state name =
  Array.find_opt
    (fun (c : Data.city) ->
      String.equal c.name name
      && match state with None -> true | Some s -> String.equal c.state s)
    Data.all

let in_states states =
  Array.to_list Data.all
  |> List.filter (fun (c : Data.city) -> List.mem c.state states)

let in_bbox box =
  Array.to_list Data.all
  |> List.filter (fun (c : Data.city) -> Rr_geo.Bbox.contains box c.coord)

let nearest coord =
  match
    Rr_util.Listx.min_by
      (fun (c : Data.city) -> Rr_geo.Distance.miles coord c.coord)
      (Array.to_list Data.all)
  with
  | Some c -> c
  | None -> assert false (* gazetteer is never empty *)

let top_by_population n =
  Array.to_list Data.all
  |> List.sort (fun (a : Data.city) (b : Data.city) ->
         compare b.population a.population)
  |> Rr_util.Listx.take n

let states () =
  Array.to_list Data.all
  |> List.map (fun (c : Data.city) -> c.state)
  |> List.sort_uniq String.compare
