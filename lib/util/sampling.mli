(** Deterministic sampling utilities used to bound experiment cost.

    The case-study time series (Figs. 12-13 of the paper) evaluate
    all-pairs routing at every advisory tick; on a 233-PoP network that is
    too expensive to run at every tick, so experiments sample
    source-destination pairs with a fixed seed and record the cap used. *)

val pair_indices : Prng.t -> n:int -> cap:int -> (int * int) array
(** [pair_indices rng ~n ~cap] returns ordered pairs [(i, j)], [i <> j],
    drawn from [[0, n)]. When [n * (n - 1)] is at most [cap] every ordered
    pair is returned (deterministically, no RNG draws); otherwise [cap]
    pairs are sampled without replacement. *)

val reservoir : Prng.t -> k:int -> 'a array -> 'a array
(** Uniform sample of [k] elements without replacement (whole array if
    shorter), preserving no particular order. *)
