(* Tests for the extension modules: k-shortest paths, Pareto frontiers,
   backup planning, OSPF export, shared risk, outage simulation,
   seasonality and GeoJSON. *)

open Riskroute

let coord lat lon = Rr_geo.Coord.make ~lat ~lon

(* the diamond from test_core: node 1 hot, node 2 cold *)
let diamond ?(extra = []) () =
  let coords =
    [| coord 29.76 (-95.37); coord 29.95 (-90.07); coord 36.16 (-86.78); coord 30.33 (-81.66) |]
  in
  let graph = Rr_graph.Graph.of_edges 4 ([ (0, 1); (1, 3); (0, 2); (2, 3) ] @ extra) in
  let impact = [| 0.4; 0.3; 0.1; 0.2 |] in
  let historical = [| 1e-5; 3e-4; 1e-7; 2e-5 |] in
  Env.make ~graph ~coords ~impact ~historical ()

(* --- Kpaths (Yen) --- *)

let grid_graph () =
  (* 3x3 grid, nodes row-major *)
  let g = Rr_graph.Graph.create 9 in
  for r = 0 to 2 do
    for c = 0 to 2 do
      let v = (3 * r) + c in
      if c < 2 then Rr_graph.Graph.add_edge g v (v + 1);
      if r < 2 then Rr_graph.Graph.add_edge g v (v + 3)
    done
  done;
  g

let test_yen_first_is_shortest () =
  let g = grid_graph () in
  let weight _ _ = 1.0 in
  match Rr_graph.Kpaths.yen g ~weight ~src:0 ~dst:8 ~k:5 with
  | (cost, path) :: _ ->
    Alcotest.(check (float 1e-9)) "4 hops" 4.0 cost;
    Alcotest.(check int) "5 nodes" 5 (List.length path)
  | [] -> Alcotest.fail "connected"

let test_yen_sorted_and_distinct () =
  let g = grid_graph () in
  let weight u v = 1.0 +. (0.01 *. float_of_int (u + v)) in
  let paths = Rr_graph.Kpaths.yen g ~weight ~src:0 ~dst:8 ~k:6 in
  Alcotest.(check int) "six paths" 6 (List.length paths);
  let costs = List.map fst paths in
  Alcotest.(check bool) "non-decreasing" true
    (List.sort Float.compare costs = costs);
  let distinct = List.sort_uniq compare (List.map snd paths) in
  Alcotest.(check int) "distinct" 6 (List.length distinct)

let test_yen_costs_match_paths () =
  let g = grid_graph () in
  let weight u v = float_of_int (1 + ((u * v) mod 3)) in
  List.iter
    (fun (cost, path) ->
      Alcotest.(check (float 1e-9)) "cost consistent" cost
        (Rr_graph.Dijkstra.path_cost ~weight path))
    (Rr_graph.Kpaths.yen g ~weight ~src:0 ~dst:8 ~k:8)

let test_yen_loopless () =
  let g = grid_graph () in
  List.iter
    (fun (_, path) ->
      Alcotest.(check int) "no repeats" (List.length path)
        (List.length (List.sort_uniq compare path)))
    (Rr_graph.Kpaths.yen g ~weight:(fun _ _ -> 1.0) ~src:0 ~dst:8 ~k:10)

let test_yen_exhausts () =
  (* a path graph has exactly one loopless route *)
  let g = Rr_graph.Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  Alcotest.(check int) "single path" 1
    (List.length (Rr_graph.Kpaths.yen g ~weight:(fun _ _ -> 1.0) ~src:0 ~dst:2 ~k:5));
  Alcotest.(check int) "disconnected" 0
    (List.length
       (Rr_graph.Kpaths.yen (Rr_graph.Graph.create 2) ~weight:(fun _ _ -> 1.0)
          ~src:0 ~dst:1 ~k:3))

(* --- Pareto --- *)

let test_pareto_frontier_diamond () =
  let env = diamond () in
  let frontier = Pareto.frontier env ~src:0 ~dst:3 in
  Alcotest.(check bool) "at least two options" true (List.length frontier >= 2);
  (* sorted by distance, risk must strictly decrease *)
  let rec check_order = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "distance increasing" true
        (a.Pareto.bit_miles <= b.Pareto.bit_miles +. 1e-9);
      Alcotest.(check bool) "risk decreasing" true (a.Pareto.risk >= b.Pareto.risk -. 1e-9);
      check_order rest
    | _ -> ()
  in
  check_order frontier

let test_pareto_no_dominated_points () =
  let env = diamond () in
  let frontier = Pareto.frontier env ~src:0 ~dst:3 in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if p != q then
            Alcotest.(check bool) "no domination" false
              (q.Pareto.bit_miles <= p.Pareto.bit_miles
              && q.Pareto.risk <= p.Pareto.risk
              && (q.Pareto.bit_miles < p.Pareto.bit_miles || q.Pareto.risk < p.Pareto.risk)))
        frontier)
    frontier

let test_pareto_contains_extremes () =
  let env = diamond () in
  let frontier = Pareto.frontier env ~src:0 ~dst:3 in
  let shortest = Option.get (Router.shortest env ~src:0 ~dst:3) in
  (match frontier with
  | first :: _ ->
    Alcotest.(check (float 1e-6)) "starts at the shortest distance"
      shortest.Router.bit_miles first.Pareto.bit_miles
  | [] -> Alcotest.fail "non-empty");
  Alcotest.(check bool) "ends at the min-risk route" true
    (match List.rev frontier with
    | last :: _ -> last.Pareto.path = [ 0; 2; 3 ]
    | [] -> false)

let test_pareto_sweep_monotone () =
  let env = diamond () in
  let sweep = Pareto.sweep env ~src:0 ~dst:3 ~lambdas:[| 1.0; 1e5; 1e7 |] in
  Alcotest.(check int) "three entries" 3 (List.length sweep);
  let miles = List.map (fun (_, r) -> r.Router.bit_miles) sweep in
  Alcotest.(check bool) "bit-miles non-decreasing in lambda" true
    (List.sort Float.compare miles = miles)

let test_pareto_knee () =
  Alcotest.(check bool) "needs three points" true
    (Pareto.knee [] = None
    && Pareto.knee
         [ { Pareto.path = []; bit_miles = 1.0; risk = 2.0 };
           { Pareto.path = []; bit_miles = 2.0; risk = 1.0 } ]
       = None);
  let points =
    [
      { Pareto.path = [ 0 ]; bit_miles = 0.0; risk = 10.0 };
      { Pareto.path = [ 1 ]; bit_miles = 1.0; risk = 2.0 };
      { Pareto.path = [ 2 ]; bit_miles = 10.0; risk = 0.0 };
    ]
  in
  match Pareto.knee points with
  | Some k -> Alcotest.(check (float 1e-9)) "picks the elbow" 1.0 k.Pareto.bit_miles
  | None -> Alcotest.fail "knee exists"

(* --- Backup --- *)

let test_backup_plan_diamond () =
  let env = diamond () in
  match Backup.plan env ~src:0 ~dst:3 with
  | None -> Alcotest.fail "connected"
  | Some plan ->
    (* primary is 0-2-3: repairs for 2 links + 1 intermediate node *)
    Alcotest.(check (list int)) "primary" [ 0; 2; 3 ] plan.Backup.primary.Router.path;
    Alcotest.(check int) "three failure cases" 3 (List.length plan.Backup.repairs);
    Alcotest.(check (float 1e-9)) "full coverage" 1.0 (Backup.coverage plan);
    List.iter
      (fun (r : Backup.repair) ->
        match r.Backup.route with
        | Some route ->
          (* every repair avoids the failed element *)
          (match r.Backup.failed_node with
          | Some v ->
            Alcotest.(check bool) "avoids failed node" false
              (List.mem v route.Router.path)
          | None -> ());
          (match r.Backup.failed_link with
          | Some (u, v) ->
            let rec uses = function
              | a :: (b :: _ as rest) ->
                ((a = u && b = v) || (a = v && b = u)) || uses rest
              | _ -> false
            in
            Alcotest.(check bool) "avoids failed link" false (uses route.Router.path)
          | None -> ())
        | None -> Alcotest.fail "diamond always has a repair")
      plan.Backup.repairs

let test_backup_partition () =
  (* a path graph: failing the middle node partitions the flow *)
  let coords = [| coord 30.0 (-90.0); coord 32.0 (-95.0); coord 34.0 (-100.0) |] in
  let graph = Rr_graph.Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let env =
    Env.make ~graph ~coords ~impact:(Array.make 3 (1.0 /. 3.0))
      ~historical:(Array.make 3 1e-6) ()
  in
  match Backup.plan env ~src:0 ~dst:2 with
  | None -> Alcotest.fail "connected"
  | Some plan ->
    Alcotest.(check bool) "partial coverage" true (Backup.coverage plan < 1.0);
    let node_repair =
      List.find (fun r -> r.Backup.failed_node = Some 1) plan.Backup.repairs
    in
    Alcotest.(check bool) "no repair for the cut node" true
      (node_repair.Backup.route = None)

let test_backup_route_avoiding () =
  let env = diamond () in
  match
    Backup.route_avoiding env ~src:0 ~dst:3 ~banned_links:[] ~banned_nodes:[ 2 ]
  with
  | Some route -> Alcotest.(check (list int)) "forced through 1" [ 0; 1; 3 ] route.Router.path
  | None -> Alcotest.fail "alternate exists"

(* --- Ospf --- *)

let test_ospf_weights_shape () =
  let env = diamond () in
  let weights = Ospf.link_weights env in
  Alcotest.(check int) "two entries per link" 8 (List.length weights);
  List.iter
    (fun (_, w) ->
      Alcotest.(check bool) "in [1, 65535]" true (w >= 1 && w <= Ospf.max_ospf_weight))
    weights;
  let largest = List.fold_left (fun acc (_, w) -> max acc w) 0 weights in
  Alcotest.(check int) "scale saturates" Ospf.max_ospf_weight largest

let test_ospf_spf_route () =
  let env = diamond () in
  let weights = Ospf.link_weights env in
  match Ospf.spf_route env ~weights ~src:0 ~dst:3 with
  | Some route ->
    (* with mean kappa the flattened weights still avoid hot node 1 *)
    Alcotest.(check (list int)) "avoids hot node" [ 0; 2; 3 ] route.Router.path
  | None -> Alcotest.fail "connected"

let test_ospf_fidelity_bounds () =
  let env = diamond () in
  let f = Ospf.fidelity ~pair_cap:12 env in
  Alcotest.(check bool) "share in [0,1]" true
    (f.Ospf.exact_match >= 0.0 && f.Ospf.exact_match <= 1.0);
  Alcotest.(check bool) "gap non-negative" true (f.Ospf.risk_gap >= -1e-9)

(* --- Shared_risk --- *)

let mini_net name cities =
  let pops =
    Array.of_list
      (List.mapi
         (fun id (city, lat, lon) -> Rr_topology.Pop.make ~id ~city ~state:"XX" (coord lat lon))
         cities)
  in
  let graph = Rr_graph.Graph.create (Array.length pops) in
  for i = 0 to Array.length pops - 2 do
    Rr_graph.Graph.add_edge graph i (i + 1)
  done;
  Rr_topology.Net.make ~name ~tier:Rr_topology.Net.Regional pops graph

let test_shared_risk_correlation () =
  let riskmap = Rr_disaster.Riskmap.build (Rr_disaster.Catalog.generate ~scale:0.02 ()) in
  let gulf_a = mini_net "GulfA" [ ("NOLA", 29.95, -90.07); ("Mobile", 30.69, -88.04) ] in
  let gulf_b = mini_net "GulfB" [ ("NOLA2", 29.9, -90.1); ("Biloxi", 30.4, -88.89) ] in
  let west = mini_net "West" [ ("Seattle", 47.61, -122.33); ("Portland", 45.52, -122.68) ] in
  let same_region = Shared_risk.exposure_correlation ~riskmap gulf_a gulf_b in
  let cross_region = Shared_risk.exposure_correlation ~riskmap gulf_a west in
  Alcotest.(check bool) "co-located networks correlate more" true
    (same_region > cross_region);
  Alcotest.(check bool) "positive for overlapping" true (same_region > 0.5)

let test_shared_risk_joint_outage () =
  let gulf_a = mini_net "GulfA" [ ("NOLA", 29.95, -90.07) ] in
  let gulf_b = mini_net "GulfB" [ ("NOLA2", 29.9, -90.1) ] in
  let west = mini_net "West" [ ("Seattle", 47.61, -122.33) ] in
  let j =
    Shared_risk.joint_outage ~samples:1000 ~kind:Rr_disaster.Event.Fema_hurricane
      gulf_a gulf_b
  in
  Alcotest.(check bool) "both sides struck sometimes" true (j.Shared_risk.both_hit > 0.0);
  Alcotest.(check bool) "co-located strike correlation" true
    (j.Shared_risk.independence_gap > 0.0);
  let j2 =
    Shared_risk.joint_outage ~samples:1000 ~kind:Rr_disaster.Event.Fema_hurricane
      gulf_a west
  in
  Alcotest.(check bool) "west rarely hit by hurricanes" true
    (j2.Shared_risk.b_hit < 0.05)

let test_least_shared_peer () =
  let riskmap = Rr_disaster.Riskmap.build (Rr_disaster.Catalog.generate ~scale:0.02 ()) in
  let me = mini_net "Me" [ ("NOLA", 29.95, -90.07); ("Mobile", 30.69, -88.04) ] in
  let twin = mini_net "Twin" [ ("NOLA2", 29.9, -90.1); ("Gulfport", 30.37, -89.09) ] in
  let diverse = mini_net "Diverse" [ ("Seattle", 47.61, -122.33); ("Boise", 43.62, -116.2) ] in
  match Shared_risk.least_shared_peer ~riskmap ~candidates:[ twin; diverse ] me with
  | Some pick -> Alcotest.(check string) "prefers diversity" "Diverse" pick.Rr_topology.Net.name
  | None -> Alcotest.fail "candidates exist"

(* --- Outagesim --- *)

let test_outage_scenarios () =
  let env = diamond () in
  let scenarios =
    Outagesim.sample_scenarios ~kind:Rr_disaster.Event.Fema_hurricane ~count:50 env
  in
  Alcotest.(check int) "fifty scenarios" 50 (List.length scenarios);
  List.iter
    (fun (s : Outagesim.scenario) ->
      List.iter
        (fun v ->
          Alcotest.(check bool) "failed PoP inside radius" true
            (Rr_geo.Distance.miles s.Outagesim.center (Env.coords env).(v)
            <= s.Outagesim.radius_miles +. 1e-6))
        s.Outagesim.failed_pops)
    scenarios

let test_outage_run_bounds () =
  let env = diamond ~extra:[ (0, 3) ] () in
  let r = Outagesim.run ~scenario_count:60 ~pair_cap:12 env in
  Alcotest.(check int) "scenarios" 60 r.Outagesim.scenarios;
  List.iter
    (fun v -> Alcotest.(check bool) "fraction" true (v >= 0.0 && v <= 1.0))
    [
      r.Outagesim.shortest_survival; r.Outagesim.riskroute_survival;
      r.Outagesim.reactive_survival; r.Outagesim.endpoint_loss;
    ];
  Alcotest.(check bool) "reactive at least as good as static" true
    (r.Outagesim.reactive_survival >= r.Outagesim.shortest_survival -. 1e-9)

let test_outage_deterministic () =
  let env = diamond () in
  let rng () = Rr_util.Prng.create 5L in
  let a = Outagesim.run ~rng:(rng ()) ~scenario_count:40 ~pair_cap:12 env in
  let b = Outagesim.run ~rng:(rng ()) ~scenario_count:40 ~pair_cap:12 env in
  Alcotest.(check (float 1e-12)) "same seed same result" a.Outagesim.shortest_survival
    b.Outagesim.shortest_survival

(* --- seasonality --- *)

let test_event_months () =
  let catalog = Rr_disaster.Catalog.generate ~seed:7L ~scale:0.02 () in
  Array.iter
    (fun (e : Rr_disaster.Event.t) ->
      Alcotest.(check bool) "month in range" true
        (e.Rr_disaster.Event.month >= 1 && e.Rr_disaster.Event.month <= 12))
    (Rr_disaster.Catalog.events catalog)

let test_hurricanes_seasonal () =
  let catalog = Rr_disaster.Catalog.generate ~seed:7L ~scale:0.1 () in
  let in_season =
    Rr_disaster.Catalog.coords_in_months catalog Rr_disaster.Event.Fema_hurricane
      ~months:[ 8; 9; 10 ]
  in
  let off_season =
    Rr_disaster.Catalog.coords_in_months catalog Rr_disaster.Event.Fema_hurricane
      ~months:[ 1; 2; 3 ]
  in
  Alcotest.(check bool) "season dominates" true
    (Array.length in_season > 10 * max 1 (Array.length off_season))

let test_seasonal_riskmap () =
  let catalog = Rr_disaster.Catalog.generate ~seed:7L ~scale:0.1 () in
  let nola = coord 29.95 (-90.07) in
  let season = Rr_disaster.Riskmap.build_seasonal ~months:[ 8; 9 ] catalog in
  let winter = Rr_disaster.Riskmap.build_seasonal ~months:[ 1; 2 ] catalog in
  Alcotest.(check bool) "Gulf riskier in hurricane season" true
    (Rr_disaster.Riskmap.risk_at season nola > Rr_disaster.Riskmap.risk_at winter nola)

let test_month_weights_normalised () =
  List.iter
    (fun kind ->
      let w = Rr_disaster.Model.month_weights kind in
      Alcotest.(check int) "twelve months" 12 (Array.length w);
      Alcotest.(check (float 1e-6)) "sums to one" 1.0 (Rr_util.Arrayx.fsum w))
    Rr_disaster.Event.all_kinds

(* --- GeoJSON --- *)

let test_geojson_point () =
  let f =
    Rr_geo.Geojson.feature ~properties:[ ("name", "NOLA") ]
      (Rr_geo.Geojson.Point (coord 29.95 (-90.07)))
  in
  let s = Rr_geo.Geojson.feature_collection [ f ] in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec scan i = i + nl <= hl && (String.sub s i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "collection" true (contains {|"FeatureCollection"|});
  Alcotest.(check bool) "lon first" true (contains "[-90.07000,29.95000]");
  Alcotest.(check bool) "property" true (contains {|"name":"NOLA"|})

let test_geojson_polygon_closed () =
  let ring = [ coord 30.0 (-90.0); coord 31.0 (-90.0); coord 31.0 (-89.0) ] in
  let s =
    Rr_geo.Geojson.feature_collection
      [ Rr_geo.Geojson.feature (Rr_geo.Geojson.Polygon ring) ]
  in
  (* first position must re-appear as the last one *)
  let first = "[-90.00000,30.00000]" in
  let count needle =
    let nl = String.length needle in
    let rec scan i acc =
      if i + nl > String.length s then acc
      else if String.sub s i nl = needle then scan (i + 1) (acc + 1)
      else scan (i + 1) acc
    in
    scan 0 0
  in
  Alcotest.(check int) "ring closed" 2 (count first)

let test_geojson_circle () =
  match Rr_geo.Geojson.circle ~center:(coord 30.0 (-90.0)) ~radius_miles:100.0 () with
  | Rr_geo.Geojson.Polygon ring ->
    Alcotest.(check int) "48 segments" 48 (List.length ring);
    List.iter
      (fun p ->
        let d = Rr_geo.Distance.miles p (coord 30.0 (-90.0)) in
        Alcotest.(check bool) "on the circle" true (Float.abs (d -. 100.0) < 5.0))
      ring
  | _ -> Alcotest.fail "expected polygon"

let test_geo_export_net () =
  let net = mini_net "Mini" [ ("A", 30.0, -90.0); ("B", 31.0, -91.0) ] in
  let features = Rr_topology.Geo_export.net_features net in
  (* 2 PoPs + 1 link *)
  Alcotest.(check int) "three features" 3 (List.length features);
  let path = Filename.temp_file "riskroute" ".geojson" in
  Rr_topology.Geo_export.to_file path net;
  let size = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (size > 100)

let () =
  Alcotest.run "extensions"
    [
      ( "kpaths",
        [
          Alcotest.test_case "first is shortest" `Quick test_yen_first_is_shortest;
          Alcotest.test_case "sorted and distinct" `Quick test_yen_sorted_and_distinct;
          Alcotest.test_case "costs match" `Quick test_yen_costs_match_paths;
          Alcotest.test_case "loopless" `Quick test_yen_loopless;
          Alcotest.test_case "exhausts" `Quick test_yen_exhausts;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "diamond frontier" `Quick test_pareto_frontier_diamond;
          Alcotest.test_case "no dominated points" `Quick test_pareto_no_dominated_points;
          Alcotest.test_case "contains extremes" `Quick test_pareto_contains_extremes;
          Alcotest.test_case "sweep monotone" `Quick test_pareto_sweep_monotone;
          Alcotest.test_case "knee" `Quick test_pareto_knee;
        ] );
      ( "backup",
        [
          Alcotest.test_case "diamond plan" `Quick test_backup_plan_diamond;
          Alcotest.test_case "partition" `Quick test_backup_partition;
          Alcotest.test_case "route avoiding" `Quick test_backup_route_avoiding;
        ] );
      ( "ospf",
        [
          Alcotest.test_case "weight shape" `Quick test_ospf_weights_shape;
          Alcotest.test_case "spf route" `Quick test_ospf_spf_route;
          Alcotest.test_case "fidelity bounds" `Quick test_ospf_fidelity_bounds;
        ] );
      ( "shared-risk",
        [
          Alcotest.test_case "exposure correlation" `Quick test_shared_risk_correlation;
          Alcotest.test_case "joint outage" `Quick test_shared_risk_joint_outage;
          Alcotest.test_case "least shared peer" `Quick test_least_shared_peer;
        ] );
      ( "outagesim",
        [
          Alcotest.test_case "scenarios" `Quick test_outage_scenarios;
          Alcotest.test_case "run bounds" `Quick test_outage_run_bounds;
          Alcotest.test_case "deterministic" `Quick test_outage_deterministic;
        ] );
      ( "seasonality",
        [
          Alcotest.test_case "event months" `Quick test_event_months;
          Alcotest.test_case "hurricanes seasonal" `Quick test_hurricanes_seasonal;
          Alcotest.test_case "seasonal riskmap" `Quick test_seasonal_riskmap;
          Alcotest.test_case "month weights" `Quick test_month_weights_normalised;
        ] );
      ( "geojson",
        [
          Alcotest.test_case "point feature" `Quick test_geojson_point;
          Alcotest.test_case "polygon closed" `Quick test_geojson_polygon_closed;
          Alcotest.test_case "circle" `Quick test_geojson_circle;
          Alcotest.test_case "network export" `Quick test_geo_export_net;
        ] );
    ]
