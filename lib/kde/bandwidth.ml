open Rr_util

type selection = {
  best : float;
  scores : (float * float) array;
  events_used : int;
}

type scorer = Exact | Grid

(* Raster resolution adapted to the candidate bandwidth: cells of about a
   third of the bandwidth resolve the density without wasting memory. *)
let grid_dims bandwidth =
  let cell_miles = Float.max 2.0 (Float.min 60.0 (bandwidth /. 3.0)) in
  let rows = max 30 (int_of_float (25.0 *. 69.0 /. cell_miles)) in
  let cols = max 60 (int_of_float (58.5 *. 54.0 /. cell_miles)) in
  (rows, cols)

let default_candidates =
  (* 16 log-spaced candidates covering 1.5 - 500 miles. *)
  let lo = log 1.5 and hi = log 500.0 in
  Array.init 16 (fun i ->
      exp (lo +. (float_of_int i /. 15.0 *. (hi -. lo))))

let select ?rng ?(candidates = default_candidates) ?(folds = 5) ?(max_events = 4000)
    ?(scorer = Exact) events =
  if Array.length candidates = 0 then invalid_arg "Bandwidth.select: no candidates";
  if folds < 2 then invalid_arg "Bandwidth.select: need at least two folds";
  let rng = match rng with Some r -> r | None -> Prng.create 0xBA_4DL in
  let sample = Sampling.reservoir rng ~k:max_events events in
  let n = Array.length sample in
  if n < folds then invalid_arg "Bandwidth.select: fewer events than folds";
  Prng.shuffle rng sample;
  (* Fold f holds out indices congruent to f mod folds. *)
  let score_candidate h =
    let fold_scores =
      Array.init folds (fun f ->
          let train =
            Array.of_seq
              (Seq.filter_map
                 (fun i -> if i mod folds <> f then Some sample.(i) else None)
                 (Seq.init n Fun.id))
          in
          let test =
            Array.of_seq
              (Seq.filter_map
                 (fun i -> if i mod folds = f then Some sample.(i) else None)
                 (Seq.init n Fun.id))
          in
          if Array.length train = 0 || Array.length test = 0 then 0.0
          else begin
            match scorer with
            | Exact ->
              let density = Density.fit ~bandwidth:h train in
              Rr_stats.Divergence.holdout_score
                ~log_density:(fun i -> Density.log_eval density test.(i))
                ~n:(Array.length test)
            | Grid ->
              let rows, cols = grid_dims h in
              let density = Grid_density.fit ~rows ~cols ~bandwidth:h train in
              let floor_density = 1e-12 /. (2.0 *. Float.pi *. h *. h) in
              Rr_stats.Divergence.holdout_score
                ~log_density:(fun i ->
                  log (Float.max floor_density (Grid_density.eval density test.(i))))
                ~n:(Array.length test)
          end)
    in
    Arrayx.fmean fold_scores
  in
  let scores = Array.map (fun h -> (h, score_candidate h)) candidates in
  let best_idx = Arrayx.argmin (Array.map snd scores) in
  { best = fst scores.(best_idx); scores; events_used = n }
