(* Benchmark and reproduction harness.

   Usage:
     main.exe                 run every table/figure, then the Bechamel suite
     main.exe <id> [<id>...]  run selected experiments (table1..fig13)
     main.exe bechamel        run only the Bechamel microbenchmark suite
     main.exe json [file] [--label L] [--reps N] [--warmups N]
                              run the statistics suite (N warmed repetitions
                              per kernel, mean/p50/p95 + GC deltas) and write
                              it as JSON (default BENCH.json, or
                              BENCH_<label>.json with --label)
     main.exe report-twice    run the full report twice in one process and
                              verify the warm pass is byte-identical and
                              actually served from the engine caches
     main.exe list            list experiment ids

   [--telemetry <file|->] anywhere on the command line enables the
   Rr_obs engine telemetry dump; [--trace <file>] writes a Chrome
   trace-event JSON of the span tree on exit; [--live <port>] serves the
   live observability plane for the duration of the run; [--series
   <file|->] starts the background time-series sampler and the
   Runtime_events GC-pause consumer and dumps the ring at exit (same
   semantics as the CLI flags and RISKROUTE_TELEMETRY / RISKROUTE_TRACE /
   RISKROUTE_LIVE / RISKROUTE_SERIES). *)

open Bechamel
open Toolkit

(* --- kernels: one named thunk per table/figure hot path ---

   The same list backs both harnesses: the Bechamel suite (OLS
   throughput estimates for humans) and the statistics suite (recorded
   repetitions for BENCH_*.json baselines and `riskroute
   bench-compare`). *)

let ctx () = Rr_engine.Context.shared ()

let net_env name =
  let ctx = ctx () in
  Rr_engine.Context.env ctx (Rr_engine.Context.require_net ctx name)

let dijkstra_kernels () =
  let env = net_env "Level3" in
  let n = Riskroute.Env.node_count env in
  [
    ( "table2/riskroute-pair-level3",
      fun () -> ignore (Riskroute.Router.riskroute env ~src:0 ~dst:(n - 1)) );
    ( "table2/shortest-pair-level3",
      fun () -> ignore (Riskroute.Router.shortest env ~src:0 ~dst:(n - 1)) );
  ]

let kde_kernels () =
  let catalog = Rr_disaster.Catalog.generate ~scale:0.02 () in
  let events = Rr_disaster.Catalog.coords catalog Rr_disaster.Event.Fema_storm in
  let density = Rr_kde.Density.fit ~bandwidth:24.38 events in
  let point = Rr_geo.Coord.make ~lat:39.0 ~lon:(-95.0) in
  [
    ("table1/kde-exact-eval", fun () -> ignore (Rr_kde.Density.eval density point));
    ( "fig4/kde-grid-fit",
      fun () ->
        ignore
          (Rr_kde.Grid_density.fit ~rows:60 ~cols:140 ~bandwidth:24.38 events) );
    ( "table1/cv-bandwidth-select",
      fun () ->
        ignore
          (Rr_kde.Bandwidth.select ~max_events:150
             ~candidates:[| 10.0; 30.0; 90.0 |] events) );
  ]

let forecast_kernels () =
  let text = List.nth (Rr_forecast.Track.advisory_texts Rr_forecast.Track.sandy) 40 in
  [ ("fig5/advisory-parse", fun () -> ignore (Rr_forecast.Parse.advisory text)) ]

let census_kernels () =
  let blocks = Rr_census.Synthetic.generate ~blocks:5_000 () in
  let att = Rr_engine.Context.require_net (ctx ()) "AT&T" in
  let sites =
    Array.map (fun (p : Rr_topology.Pop.t) -> p.Rr_topology.Pop.coord)
      att.Rr_topology.Net.pops
  in
  [
    ( "fig3/nn-assignment-5k-blocks",
      fun () -> ignore (Rr_census.Assignment.fractions ~sites blocks) );
  ]

let augment_kernels () =
  let env = net_env "AT&T" in
  [
    ("fig9/greedy-one-link-att", fun () -> ignore (Riskroute.Augment.greedy ~k:1 env));
    ( "fig10/total-bit-risk-att",
      fun () -> ignore (Riskroute.Augment.total_bit_risk env) );
  ]

let ratio_kernels () =
  let env = net_env "AT&T" in
  let advisory = List.nth (Rr_forecast.Track.advisories Rr_forecast.Track.sandy) 50 in
  [
    ( "table2/intradomain-ratios-att",
      fun () -> ignore (Riskroute.Ratios.intradomain ~pair_cap:200 env) );
    ( "fig12/advisory-env-refresh",
      fun () -> ignore (Riskroute.Env.with_advisory env (Some advisory)) );
  ]

let gml_kernels () =
  let att = Rr_engine.Context.require_net (ctx ()) "AT&T" in
  let text = Rr_gml.Printer.to_string (Rr_topology.Gml_io.to_gml att) in
  [ ("fig1/gml-parse-att", fun () -> ignore (Rr_gml.Parser.parse text)) ]

let extension_kernels () =
  let att = Rr_engine.Context.require_net (ctx ()) "AT&T" in
  let env = Rr_engine.Context.env (ctx ()) att in
  let n = Riskroute.Env.node_count env in
  [
    ( "abl-pareto/frontier-att",
      fun () -> ignore (Riskroute.Pareto.frontier ~k:8 env ~src:0 ~dst:(n - 1)) );
    ( "abl-backup/plan-att",
      fun () -> ignore (Riskroute.Backup.plan env ~src:0 ~dst:(n - 1)) );
    ("abl-ospf/weights-att", fun () -> ignore (Riskroute.Ospf.link_weights env));
    ( "abl-outage/50-scenarios-att",
      fun () ->
        ignore (Riskroute.Outagesim.run ~scenario_count:50 ~pair_cap:50 env) );
    ( "fig1/geojson-export-att",
      fun () ->
        ignore
          (Rr_geo.Geojson.feature_collection
             (Rr_topology.Geo_export.net_features att)) );
  ]

(* Goal-directed query kernels over continental-scale merged graphs.
   Landmark preparation happens at setup so the timed region is the
   query alone; each kernel routes the same deterministic pair set
   through one runner. *)
let query_pop_sizes = [ 1_000; 10_000; 50_000 ]

let query_pairs = 4

let query_pair_set ~n ~seed =
  let rng = Rr_util.Prng.create seed in
  Array.init query_pairs (fun _ ->
      let src = Rr_util.Prng.int rng n in
      let rec draw () =
        let dst = Rr_util.Prng.int rng n in
        if dst = src then draw () else dst
      in
      (src, draw ()))

let query_kernels () =
  let ctx = ctx () in
  List.concat_map
    (fun pops ->
      let net = Rr_engine.Context.continental ctx ~pops in
      let q = Rr_engine.Context.net_query ctx net in
      Rr_graph.Query.prepare q;
      let n = Rr_graph.Query.node_count q in
      let miles = Rr_graph.Query.arc_miles q in
      let weight k = Array.unsafe_get miles k in
      let pairs = query_pair_set ~n ~seed:0xBE5C_0DEL in
      let kernel runner =
        fun () ->
          Array.iter
            (fun (src, dst) ->
              ignore (Rr_graph.Query.run ~runner q ~weight ~src ~dst))
            pairs
      in
      let label r = Printf.sprintf "query/%s-%dk" r (pops / 1000) in
      [
        (label "plain", kernel Rr_graph.Query.Plain);
        (label "bidir", kernel Rr_graph.Query.Bidir);
        (label "alt", kernel Rr_graph.Query.Alt);
      ])
    query_pop_sizes

(* Full-season-prefix storm replay, full rebuild vs incremental
   delta/patch/repair — the macro benchmark the delta engine exists
   for. Each invocation gets a fresh context (the replay's work
   accounting and caching behaviour must not leak across runs); the
   shared corpus singletons are reused underneath. *)
let replay_kernels () =
  let net = Rr_engine.Context.require_net (ctx ()) "Level3" in
  let storm = Rr_forecast.Track.sandy in
  let kernel mode () =
    let c = Rr_engine.Context.create () in
    ignore (Rr_experiments.Replay.run ~mode ~pairs:4 ~ticks:40 c ~net ~storm)
  in
  [
    ("replay-full/sandy-level3", kernel Rr_experiments.Replay.Full);
    ("replay-incremental/sandy-level3", kernel Rr_experiments.Replay.Incremental);
  ]

let kernels () =
  dijkstra_kernels () @ kde_kernels () @ forecast_kernels () @ census_kernels ()
  @ augment_kernels () @ ratio_kernels () @ gml_kernels ()
  @ extension_kernels () @ query_kernels () @ replay_kernels ()

(* --- Bechamel microbenchmark suite --- *)

let bechamel_suite () =
  List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) (kernels ())

let bechamel_estimates () =
  let tests = Test.make_grouped ~name:"riskroute" ~fmt:"%s/%s" (bechamel_suite ()) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        match Analyze.OLS.estimates v with
        | Some [ est ] -> (name, est) :: acc
        | Some _ | None -> acc)
      results []
  in
  List.sort compare rows

let run_bechamel () =
  print_endline "\n=== Bechamel microbenchmark suite ===";
  List.iter
    (fun (name, est) ->
      if est >= 1e9 then Printf.printf "%-48s %10.2f s/run\n" name (est /. 1e9)
      else if est >= 1e6 then Printf.printf "%-48s %10.2f ms/run\n" name (est /. 1e6)
      else if est >= 1e3 then Printf.printf "%-48s %10.2f us/run\n" name (est /. 1e3)
      else Printf.printf "%-48s %10.0f ns/run\n" name est)
    (bechamel_estimates ())

(* The current git revision — shared with /healthz via Rr_obs (read
   straight off .git, dependency- and subprocess-free). *)
let git_rev () = Rr_obs.git_rev ()

(* --- statistics suite: BENCH_*.json for the regression sentinel ---

   Each kernel runs [warmups] unrecorded then [reps] recorded times;
   mean/p50/p95/min/max and per-run GC deltas are stored per kernel (see
   Rr_perf.Harness). The meta block is self-describing — OCaml version,
   word size, the RISKROUTE_DOMAINS value and the pool size actually
   resolved — so baselines recorded on different machines stay
   comparable (and comparably *incomparable*: bench-compare can say why
   two files should not be trusted against each other). *)

let cache_totals (s : Rr_engine.Context.stats) =
  (s.env_hits + s.tree_hits, s.env_misses + s.tree_misses)

(* GC pause quantiles (ns) from the Runtime_events consumer; all-zero
   when the consumer never ran (no --series) or recorded nothing. *)
let gc_pause_quantiles name =
  ignore (Rr_obs.Rte.poll ());
  let s = Rr_obs.Histogram.snapshot (Rr_obs.Histogram.make name) in
  let q p =
    let v = Rr_obs.Histogram.quantile s p *. 1e9 in
    if Float.is_nan v then 0.0 else v
  in
  (q 0.5, q 0.99)

let run_json ~reps ~warmups file =
  let ctx = ctx () in
  let h0, m0 = cache_totals (Rr_engine.Context.stats ctx) in
  let results = Rr_perf.Harness.measure ~warmups ~reps (kernels ()) in
  let h1, m1 = cache_totals (Rr_engine.Context.stats ctx) in
  let minor_p50, minor_p99 = gc_pause_quantiles Rr_obs.Rte.minor_name in
  let major_p50, major_p99 = gc_pause_quantiles Rr_obs.Rte.major_name in
  let meta =
    {
      Rr_perf.Benchfile.schema = Rr_perf.Benchfile.schema;
      domains = Rr_util.Parallel.domain_count ();
      git_rev = git_rev ();
      hostname = Unix.gethostname ();
      ocaml_version = Sys.ocaml_version;
      word_size = Sys.word_size;
      riskroute_domains =
        Option.value (Sys.getenv_opt "RISKROUTE_DOMAINS") ~default:"";
      reps;
      warmups;
      cache_hits = h1 - h0;
      cache_misses = m1 - m0;
      tree_cache_cap = Rr_engine.Context.tree_cache_capacity ctx;
      topology_pops =
        String.concat "," (List.map string_of_int query_pop_sizes);
      gc_minor_pause_p50_ns = minor_p50;
      gc_minor_pause_p99_ns = minor_p99;
      gc_major_pause_p50_ns = major_p50;
      gc_major_pause_p99_ns = major_p99;
    }
  in
  Rr_perf.Benchfile.write file { Rr_perf.Benchfile.meta; results };
  Printf.printf "wrote %s (%d kernels, %d reps each)\n" file
    (List.length results) reps

(* json subcommand arguments: positional FILE plus --label/--reps/--warmups
   in any order. --label L names the file BENCH_<L>.json unless an
   explicit FILE was also given. *)
let parse_json_args rest =
  let file = ref None
  and label = ref None
  and reps = ref 10
  and warmups = ref 3 in
  let int_arg name v =
    match int_of_string_opt v with
    | Some k when k >= 0 -> k
    | Some _ | None ->
      Rr_obs.Log.errorf "bench: %s wants a non-negative integer, got %S" name v;
      exit 2
  in
  let rec go = function
    | [] -> ()
    | "--label" :: v :: rest ->
      label := Some v;
      go rest
    | "--reps" :: v :: rest ->
      reps := max 1 (int_arg "--reps" v);
      go rest
    | "--warmups" :: v :: rest ->
      warmups := int_arg "--warmups" v;
      go rest
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      Rr_obs.Log.errorf "bench: unknown json option %s" arg;
      exit 2
    | arg :: rest ->
      file := Some arg;
      go rest
  in
  go rest;
  let file =
    match (!file, !label) with
    | Some f, _ -> f
    | None, Some l -> Printf.sprintf "BENCH_%s.json" l
    | None, None -> "BENCH.json"
  in
  (file, !reps, !warmups)

(* --- continental-smoke: the large-topology correctness gate CI runs ---

   Builds a continental merged net, routes a deterministic pair set
   through all three query runners under both weight functions
   (bit-miles, and bit-risk-miles with the population-proportional
   impact proxy), and verifies that every runner returns bit-identical
   (cost, path) while ALT settles strictly fewer nodes than plain on
   every pair — and at least [min_ratio] times fewer in aggregate on
   the bit-miles set, where the landmark bound is exact. The
   settled-node counters are written as a JSON artifact. *)

let run_continental_smoke ~pops ~pairs ~out =
  let ctx = ctx () in
  let net = Rr_engine.Context.continental ctx ~pops in
  let q = Rr_engine.Context.net_query ctx net in
  Rr_graph.Query.prepare q;
  let n = Rr_graph.Query.node_count q in
  let miles = Rr_graph.Query.arc_miles q in
  let tgt = Rr_graph.Query.arc_tgt q in
  let params = Riskroute.Params.default in
  let node_risk =
    Array.map
      (fun r -> params.Riskroute.Params.lambda_h *. params.Riskroute.Params.risk_scale *. r)
      (Rr_disaster.Riskmap.pop_risks (Rr_engine.Context.riskmap ctx) net)
  in
  let impact = Rr_topology.Net.population_fractions net in
  let pair_set =
    let rng = Rr_util.Prng.create 0x5040_CE55L in
    Array.init pairs (fun _ ->
        let src = Rr_util.Prng.int rng n in
        let rec draw () =
          let dst = Rr_util.Prng.int rng n in
          if dst = src then draw () else dst
        in
        (src, draw ()))
  in
  let totals = Hashtbl.create 8 in
  let bump key v =
    Hashtbl.replace totals key (v + Option.value (Hashtbl.find_opt totals key) ~default:0)
  in
  let failures = ref 0 in
  let same_answer a b =
    match (a, b) with
    | Some (ca, pa), Some (cb, pb) ->
      Int64.equal (Int64.bits_of_float ca) (Int64.bits_of_float cb) && pa = pb
    | None, None -> true
    | _ -> false
  in
  Array.iter
    (fun (src, dst) ->
      let kappa = impact.(src) +. impact.(dst) in
      let weights =
        [
          ("miles", fun k -> Array.unsafe_get miles k);
          ( "risk",
            fun k ->
              Array.unsafe_get miles k
              +. (kappa *. Array.unsafe_get node_risk (Array.unsafe_get tgt k)) );
        ]
      in
      List.iter
        (fun (wname, weight) ->
          let plain, _, s_plain =
            Rr_graph.Query.run_stats ~runner:Rr_graph.Query.Plain q ~weight ~src ~dst
          in
          let bidir, _, s_bidir =
            Rr_graph.Query.run_stats ~runner:Rr_graph.Query.Bidir q ~weight ~src ~dst
          in
          let alt, _, s_alt =
            Rr_graph.Query.run_stats ~runner:Rr_graph.Query.Alt q ~weight ~src ~dst
          in
          bump ("plain." ^ wname) s_plain;
          bump ("bidir." ^ wname) s_bidir;
          bump ("alt." ^ wname) s_alt;
          if plain = None then begin
            incr failures;
            Rr_obs.Log.errorf "smoke: pair (%d, %d) disconnected under %s" src
              dst wname
          end;
          if not (same_answer plain bidir) then begin
            incr failures;
            Rr_obs.Log.errorf "smoke: bidir differs from plain on (%d, %d) %s"
              src dst wname
          end;
          if not (same_answer plain alt) then begin
            incr failures;
            Rr_obs.Log.errorf "smoke: alt differs from plain on (%d, %d) %s" src
              dst wname
          end;
          if s_alt >= s_plain then begin
            incr failures;
            Rr_obs.Log.errorf
              "smoke: alt settled %d >= plain %d on (%d, %d) %s" s_alt
              s_plain src dst wname
          end)
        weights)
    pair_set;
  let total key = Option.value (Hashtbl.find_opt totals key) ~default:0 in
  let plain_total = total "plain.miles" + total "plain.risk" in
  let alt_total = total "alt.miles" + total "alt.risk" in
  let bidir_total = total "bidir.miles" + total "bidir.risk" in
  let ratio_of p a = if a > 0 then float_of_int p /. float_of_int a else infinity in
  (* The >= 5x aggregate gate applies to the bit-miles pair set — the
     same weight the query/* bench kernels time. The landmark lower
     bound is exact in that metric; under bit-risk-miles the kappa*risk
     term loosens it, so the risk-set ratio is reported but only gated
     per-pair (strictly fewer, above). *)
  let miles_ratio = ratio_of (total "plain.miles") (total "alt.miles") in
  let risk_ratio = ratio_of (total "plain.risk") (total "alt.risk") in
  let min_ratio = 5.0 in
  Printf.printf
    "continental-smoke: %d PoPs, %d pairs x 2 weights x 3 runners\n\
     settled totals: plain %d, bidir %d, alt %d\n\
     plain/alt ratio: %.1fx on bit-miles (gate >= %.1fx), %.1fx on \
     bit-risk-miles\n"
    pops pairs plain_total bidir_total alt_total miles_ratio min_ratio
    risk_ratio;
  if miles_ratio < min_ratio then begin
    incr failures;
    Rr_obs.Log.errorf "smoke: plain/alt miles ratio %.2f below %.1fx"
      miles_ratio min_ratio
  end;
  (match out with
  | None -> ()
  | Some path ->
    let b = Buffer.create 1024 in
    Printf.bprintf b
      "{\n  \"pops\": %d,\n  \"pairs\": %d,\n  \"landmarks\": %d,\n" pops pairs
      (Array.length (Rr_graph.Query.landmark_sources q));
    Printf.bprintf b "  \"miles_plain_alt_ratio\": %.3f,\n" miles_ratio;
    Printf.bprintf b "  \"risk_plain_alt_ratio\": %.3f,\n  \"settled\": {\n"
      risk_ratio;
    let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) totals []) in
    List.iteri
      (fun i k ->
        Printf.bprintf b "    \"query.%s.settled\": %d%s\n" k (total k)
          (if i < List.length keys - 1 then "," else ""))
      keys;
    Printf.bprintf b "  },\n  \"failures\": %d\n}\n" !failures;
    let oc = open_out path in
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote %s\n" path);
  if !failures > 0 then begin
    Rr_obs.Log.errorf "continental-smoke: %d failure(s)" !failures;
    exit 1
  end;
  print_endline "continental-smoke: OK"

let parse_smoke_args rest =
  let pops = ref 10_000 and pairs = ref 100 and out = ref None in
  let int_arg name v =
    match int_of_string_opt v with
    | Some k when k > 0 -> k
    | Some _ | None ->
      Rr_obs.Log.errorf "bench: %s wants a positive integer, got %S" name v;
      exit 2
  in
  let rec go = function
    | [] -> ()
    | "--pops" :: v :: rest ->
      pops := int_arg "--pops" v;
      go rest
    | "--pairs" :: v :: rest ->
      pairs := int_arg "--pairs" v;
      go rest
    | "--out" :: v :: rest ->
      out := Some v;
      go rest
    | arg :: _ ->
      Rr_obs.Log.errorf "bench: unknown continental-smoke option %s" arg;
      exit 2
  in
  go rest;
  (!pops, !pairs, !out)

let ppf = Format.std_formatter

(* --- report-twice: the cache-correctness gate CI runs ---

   Two full report passes in one process over the same shared context.
   The warm pass must (a) be byte-identical to the cold pass once the
   wall-clock timing lines are stripped, and (b) actually hit the engine
   caches — otherwise the context is not memoising and the exercise is
   vacuous. Exits non-zero on either failure. *)

let contains_completed_in line =
  let needle = " completed in " in
  let nl = String.length needle and ll = String.length line in
  let rec go i = i + nl <= ll && (String.sub line i nl = needle || go (i + 1)) in
  String.length line > 0 && line.[0] = '[' && go 0

let strip_timing text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> not (contains_completed_in l))
  |> String.concat "\n"

let run_report_twice () =
  let ctx = ctx () in
  let capture () =
    let b = Buffer.create 65536 in
    let bppf = Format.formatter_of_buffer b in
    Rr_experiments.Report.run_all ctx bppf;
    Format.pp_print_flush bppf ();
    Buffer.contents b
  in
  let cold = capture () in
  let s0 = Rr_engine.Context.stats ctx in
  let warm = capture () in
  let s1 = Rr_engine.Context.stats ctx in
  let env_hits = s1.env_hits - s0.env_hits
  and tree_hits = s1.tree_hits - s0.tree_hits
  and env_misses = s1.env_misses - s0.env_misses in
  Printf.printf
    "report-twice: cold %d bytes, warm %d bytes\n\
     warm pass: env cache %d hits / %d misses, tree cache %d hits\n"
    (String.length cold) (String.length warm) env_hits env_misses tree_hits;
  let identical = String.equal (strip_timing cold) (strip_timing warm) in
  Printf.printf "outputs (timing lines stripped): %s\n"
    (if identical then "byte-identical" else "DIFFER");
  if not identical then exit 1;
  if env_hits = 0 || tree_hits = 0 then begin
    Rr_obs.Log.errorf
      "report-twice: warm pass missed the engine caches (env hits %d, tree \
       hits %d)"
      env_hits tree_hits;
    exit 1
  end;
  print_endline "report-twice: OK"

(* Pull "--telemetry <spec>", "--trace <path>" and "--live <port>" (or
   the "=" forms) out of argv before experiment-id dispatch; the harness
   has no cmdliner front end. *)
let start_live port_spec =
  match int_of_string_opt (String.trim port_spec) with
  | Some port when port >= 0 && port < 65536 -> (
    match Rr_live.start ~port () with
    | Ok bound ->
      Rr_obs.Log.infof
        "bench: live introspection listening on http://127.0.0.1:%d/" bound
    | Error msg ->
      Rr_obs.Log.errorf "bench: %s" msg;
      exit 2)
  | Some _ | None ->
    Rr_obs.Log.errorf "bench: --live wants a port number, got %S" port_spec;
    exit 2

let extract_obs_flags argv =
  let prefixed prefix arg =
    let l = String.length prefix in
    if String.length arg > l && String.sub arg 0 l = prefix then
      Some (String.sub arg l (String.length arg - l))
    else None
  in
  let rec go acc = function
    | [] -> List.rev acc
    | "--telemetry" :: spec :: rest ->
      Rr_obs.enable_dump spec;
      go acc rest
    | "--trace" :: path :: rest ->
      Rr_obs.enable_trace path;
      go acc rest
    | "--live" :: port :: rest ->
      start_live port;
      go acc rest
    | "--series" :: spec :: rest ->
      Rr_obs.Series.enable spec;
      go acc rest
    | arg :: rest -> (
      match
        ( prefixed "--telemetry=" arg,
          prefixed "--trace=" arg,
          prefixed "--live=" arg,
          prefixed "--series=" arg )
      with
      | Some spec, _, _, _ ->
        Rr_obs.enable_dump spec;
        go acc rest
      | None, Some path, _, _ ->
        Rr_obs.enable_trace path;
        go acc rest
      | None, None, Some port, _ ->
        start_live port;
        go acc rest
      | None, None, None, Some spec ->
        Rr_obs.Series.enable spec;
        go acc rest
      | None, None, None, None -> go (arg :: acc) rest)
  in
  go [] argv

let () =
  Rr_live.set_stats_provider (fun () ->
      Rr_engine.Context.stats_json (Rr_engine.Context.shared ()));
  Rr_live.set_explain_provider (fun q ->
      Rr_explain.of_query (Rr_engine.Context.shared ()) q);
  Rr_obs.Series.set_stats_provider (fun () ->
      Rr_engine.Context.stats_fields (Rr_engine.Context.shared ()));
  Rr_obs.Schema.register "stats" 1;
  Rr_obs.Schema.register "explain" Rr_explain.schema_version;
  Rr_obs.Schema.register "bench" Rr_perf.Benchfile.schema;
  Rr_live.autostart_from_env ();
  match extract_obs_flags (Array.to_list Sys.argv) with
  | [] | _ :: [] ->
    Rr_experiments.Report.run_all (ctx ()) ppf;
    Format.pp_print_flush ppf ();
    run_bechamel ()
  | _ :: [ "bechamel" ] -> run_bechamel ()
  | _ :: "json" :: rest ->
    let file, reps, warmups = parse_json_args rest in
    run_json ~reps ~warmups file
  | _ :: [ "report-twice" ] -> run_report_twice ()
  | _ :: "continental-smoke" :: rest ->
    let pops, pairs, out = parse_smoke_args rest in
    run_continental_smoke ~pops ~pairs ~out
  | _ :: [ "list" ] ->
    List.iter print_endline (Rr_experiments.Report.ids ())
  | _ :: "csv" :: rest ->
    let dir = match rest with [ d ] -> d | _ -> "plots" in
    let files = Rr_experiments.Csv_export.write_all (ctx ()) dir in
    List.iter (fun f -> Printf.printf "wrote %s\n" f) files
  | _ :: ids ->
    let ok = ref true in
    List.iter
      (fun id ->
        match Rr_experiments.Report.find id with
        | Some e ->
          Format.fprintf ppf "@.=== %s: %s ===@." (String.uppercase_ascii e.Rr_experiments.Report.id)
            e.Rr_experiments.Report.title;
          (* run_timed, not e.run: selected experiments get the same
             "report.<id>" span as run_all, so traces and telemetry
             attribute their work either way. *)
          Rr_experiments.Report.run_timed e (ctx ()) ppf
        | None ->
          ok := false;
          Rr_obs.Log.errorf "unknown experiment %S (try: %s)" id
            (String.concat " " (Rr_experiments.Report.ids ())))
      ids;
    Format.pp_print_flush ppf ();
    if not !ok then exit 1
