(** Fig. 2: AS-level connectivity between the 23 networks. *)

val run : Rr_engine.Context.t -> Format.formatter -> unit

val edge_count : Rr_engine.Context.t -> int
