let mst ~n ~dist =
  if n < 1 then invalid_arg "Spanner.mst: need at least one node";
  let g = Graph.create n in
  let in_tree = Array.make n false in
  let best_dist = Array.make n infinity in
  let best_edge = Array.make n (-1) in
  in_tree.(0) <- true;
  for v = 1 to n - 1 do
    best_dist.(v) <- dist 0 v;
    best_edge.(v) <- 0
  done;
  for _ = 1 to n - 1 do
    (* Pick the closest out-of-tree node. *)
    let u = ref (-1) in
    for v = 0 to n - 1 do
      if (not in_tree.(v)) && (!u = -1 || best_dist.(v) < best_dist.(!u)) then u := v
    done;
    let u = !u in
    in_tree.(u) <- true;
    Graph.add_edge g u best_edge.(u);
    for v = 0 to n - 1 do
      if not in_tree.(v) then begin
        let d = dist u v in
        if d < best_dist.(v) then begin
          best_dist.(v) <- d;
          best_edge.(v) <- u
        end
      end
    done
  done;
  g

let gabriel ~n ~dist =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let duv2 = dist u v ** 2.0 in
      let blocked = ref false in
      let w = ref 0 in
      while (not !blocked) && !w < n do
        if !w <> u && !w <> v then begin
          let d2 = (dist u !w ** 2.0) +. (dist v !w ** 2.0) in
          if d2 <= duv2 then blocked := true
        end;
        incr w
      done;
      if not !blocked then Graph.add_edge g u v
    done
  done;
  g

let knn ~n ~dist ~k =
  if k < 0 then invalid_arg "Spanner.knn: negative k";
  let g = Graph.create n in
  for u = 0 to n - 1 do
    let others =
      List.filter (fun v -> v <> u) (Rr_util.Listx.range 0 n)
      |> List.map (fun v -> (dist u v, v))
      |> List.sort compare
    in
    List.iteri (fun i (_, v) -> if i < k then Graph.add_edge g u v) others
  done;
  g

let union a b =
  if Graph.node_count a <> Graph.node_count b then
    invalid_arg "Spanner.union: node-count mismatch";
  let g = Graph.copy a in
  List.iter (fun (u, v) -> Graph.add_edge g u v) (Graph.edges b);
  g
