type t = {
  storm : string;
  number : int;
  issued : string;
  center : Rr_geo.Coord.t;
  hurricane_radius_miles : float;
  tropical_radius_miles : float;
}

let make ~storm ~number ~issued ~center ~hurricane_radius_miles
    ~tropical_radius_miles =
  if hurricane_radius_miles < 0.0 || tropical_radius_miles < 0.0 then
    invalid_arg "Advisory.make: negative wind radius";
  if
    hurricane_radius_miles > 0.0 && tropical_radius_miles > 0.0
    && hurricane_radius_miles > tropical_radius_miles
  then invalid_arg "Advisory.make: hurricane radius exceeds tropical radius";
  { storm; number; issued; center; hurricane_radius_miles; tropical_radius_miles }

let pp ppf t =
  Format.fprintf ppf "%s #%d %s center=%a hurr=%.0fmi trop=%.0fmi" t.storm
    t.number t.issued Rr_geo.Coord.pp t.center t.hurricane_radius_miles
    t.tropical_radius_miles
