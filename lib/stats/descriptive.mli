(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** Mean of a non-empty array. *)

val variance : float array -> float
(** Population variance of a non-empty array. *)

val stddev : float array -> float

val median : float array -> float
(** Median of a non-empty array (average of middle two when even). *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [[0, 100]], nearest-rank with linear
    interpolation. *)

val covariance : float array -> float array -> float
(** Population covariance of equal-length non-empty arrays. *)

val correlation : float array -> float array -> float
(** Pearson correlation; 0 when either side has zero variance. *)
