let tier1_pops_in_hurricane_scope ctx storm =
  let zoo = Rr_engine.Context.zoo ctx in
  let advisories = Rr_forecast.Track.advisories storm in
  List.fold_left
    (fun acc net ->
      let count = ref 0 in
      Array.iter
        (fun (p : Rr_topology.Pop.t) ->
          let hit =
            List.exists
              (fun (a : Rr_forecast.Advisory.t) ->
                a.Rr_forecast.Advisory.hurricane_radius_miles > 0.0
                && Rr_geo.Distance.miles a.Rr_forecast.Advisory.center
                     p.Rr_topology.Pop.coord
                   <= a.Rr_forecast.Advisory.hurricane_radius_miles)
              advisories
          in
          if hit then incr count)
        net.Rr_topology.Net.pops;
      acc + !count)
    0 zoo.Rr_topology.Zoo.tier1s

let scope_map storm =
  let advisories = Rr_forecast.Track.advisories storm in
  let grid = Rr_geo.Grid.create Rr_geo.Bbox.conus ~rows:60 ~cols:144 in
  for row = 0 to Rr_geo.Grid.rows grid - 1 do
    for col = 0 to Rr_geo.Grid.cols grid - 1 do
      let coord = Rr_geo.Grid.coord_of_cell grid row col in
      Rr_geo.Grid.set grid row col
        (Rr_forecast.Riskfield.union_scope advisories coord)
    done
  done;
  Rr_geo.Grid.render_ascii ~width:72 ~height:20 grid

let paper_counts = [ ("IRENE", 86); ("KATRINA", 8); ("SANDY", 115) ]

let run ctx ppf =
  Format.fprintf ppf "Fig 6: final geo-spatial scope of the three hurricanes@.";
  List.iter
    (fun storm ->
      let name = storm.Rr_forecast.Track.name in
      Format.fprintf ppf "Hurricane %s (%d advisories):@.%s@," name
        storm.Rr_forecast.Track.advisory_count (scope_map storm);
      let count = tier1_pops_in_hurricane_scope ctx storm in
      let paper =
        match List.assoc_opt name paper_counts with Some c -> c | None -> 0
      in
      Format.fprintf ppf
        "  Tier-1 PoPs under hurricane-force winds: %d (paper: %d)@." count paper)
    Rr_forecast.Track.all
