type t = {
  id : int;
  name : string;
  city : string;
  state : string;
  coord : Rr_geo.Coord.t;
}

let make ~id ~city ~state ?(metro_index = 1) coord =
  let name =
    if metro_index <= 1 then Printf.sprintf "%s, %s" city state
    else Printf.sprintf "%s, %s (%d)" city state metro_index
  in
  { id; name; city; state; coord }

let pp ppf t = Format.fprintf ppf "%s %a" t.name Rr_geo.Coord.pp t.coord
