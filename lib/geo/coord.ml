type t = { lat : float; lon : float }

let make ~lat ~lon =
  if not (Float.is_finite lat && lat >= -90.0 && lat <= 90.0) then
    invalid_arg "Coord.make: latitude out of range";
  if not (Float.is_finite lon && lon >= -180.0 && lon <= 180.0) then
    invalid_arg "Coord.make: longitude out of range";
  { lat; lon }

let lat t = t.lat

let lon t = t.lon

let equal a b = Float.equal a.lat b.lat && Float.equal a.lon b.lon

let compare a b =
  let c = Float.compare a.lat b.lat in
  if c <> 0 then c else Float.compare a.lon b.lon

let deg = Float.pi /. 180.0

let to_radians t = (t.lat *. deg, t.lon *. deg)

(* Convert to a 3D unit vector, blend, convert back: exact great-circle
   interpolation via spherical linear interpolation. *)
let to_vec t =
  let lat, lon = to_radians t in
  (cos lat *. cos lon, cos lat *. sin lon, sin lat)

let of_vec (x, y, z) =
  let norm = sqrt ((x *. x) +. (y *. y) +. (z *. z)) in
  let x = x /. norm and y = y /. norm and z = z /. norm in
  let lat = asin (Float.max (-1.0) (Float.min 1.0 z)) /. deg in
  let lon = atan2 y x /. deg in
  make ~lat ~lon

let interpolate a b f =
  if f <= 0.0 then a
  else if f >= 1.0 then b
  else
  let ax, ay, az = to_vec a and bx, by, bz = to_vec b in
  let dot = Float.max (-1.0) (Float.min 1.0 ((ax *. bx) +. (ay *. by) +. (az *. bz))) in
  let omega = acos dot in
  if omega < 1e-12 then a
  else begin
    let sin_omega = sin omega in
    let wa = sin ((1.0 -. f) *. omega) /. sin_omega in
    let wb = sin (f *. omega) /. sin_omega in
    of_vec ((wa *. ax) +. (wb *. bx), (wa *. ay) +. (wb *. by), (wa *. az) +. (wb *. bz))
  end

let midpoint a b = interpolate a b 0.5

let pp ppf t =
  let ns = if t.lat >= 0.0 then 'N' else 'S' in
  let ew = if t.lon >= 0.0 then 'E' else 'W' in
  Format.fprintf ppf "(%.2f%c, %.2f%c)" (Float.abs t.lat) ns (Float.abs t.lon) ew

let to_string t = Format.asprintf "%a" pp t
