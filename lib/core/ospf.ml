open Rr_util

let max_ospf_weight = 65_535

let raw_weight env ~kappa u v = Env.edge_weight env ~kappa u v

let link_weights ?(max_weight = max_ospf_weight) env =
  if max_weight < 1 then invalid_arg "Ospf.link_weights: max_weight < 1";
  let kappa = Env.mean_kappa env in
  let graph = Env.graph env in
  let directed =
    List.concat_map
      (fun (u, v) -> [ (u, v); (v, u) ])
      (Rr_graph.Graph.edges graph)
  in
  let raw = List.map (fun (u, v) -> ((u, v), raw_weight env ~kappa u v)) directed in
  let largest = List.fold_left (fun acc (_, w) -> Float.max acc w) 0.0 raw in
  let scale = if largest > 0.0 then float_of_int max_weight /. largest else 1.0 in
  List.map
    (fun (link, w) ->
      (link, max 1 (min max_weight (int_of_float (Float.round (w *. scale))))))
    raw

let spf_route env ~weights ~src ~dst =
  let table = Hashtbl.create (List.length weights) in
  List.iter (fun (link, w) -> Hashtbl.replace table link w) weights;
  let weight u v =
    match Hashtbl.find_opt table (u, v) with
    | Some w -> float_of_int w
    | None -> infinity
  in
  match Rr_graph.Dijkstra.single_pair (Env.graph env) ~weight ~src ~dst with
  | Some (_, path) -> Some (Router.route_of_path env path)
  | None -> None

type fidelity = {
  pairs : int;
  exact_match : float;
  risk_gap : float;
}

let fidelity ?(pair_cap = 2000) ?(seed = 0x05_9FL) env =
  let weights = link_weights env in
  let n = Env.node_count env in
  let rng = Prng.create seed in
  let pairs = Sampling.pair_indices rng ~n ~cap:pair_cap in
  let matches = ref 0 and gap = ref 0.0 and count = ref 0 in
  Array.iter
    (fun (src, dst) ->
      match (Router.riskroute env ~src ~dst, spf_route env ~weights ~src ~dst) with
      | Some exact, Some spf ->
        incr count;
        if exact.Router.path = spf.Router.path then incr matches;
        if exact.Router.bit_risk_miles > 0.0 then
          gap :=
            !gap
            +. ((spf.Router.bit_risk_miles -. exact.Router.bit_risk_miles)
               /. exact.Router.bit_risk_miles)
      | _ -> ())
    pairs;
  if !count = 0 then { pairs = 0; exact_match = 0.0; risk_gap = 0.0 }
  else
    {
      pairs = !count;
      exact_match = float_of_int !matches /. float_of_int !count;
      risk_gap = !gap /. float_of_int !count;
    }
