let small_blocks () = Rr_census.Synthetic.generate ~seed:11L ~blocks:4_000 ()

(* --- Synthetic --- *)

let test_block_count () =
  Alcotest.(check int) "exact block count" 4_000 (Array.length (small_blocks ()))

let test_population_conserved () =
  let blocks = small_blocks () in
  let total = Rr_census.Block.total_population blocks in
  let expected = float_of_int Rr_cities.Data.total_population in
  Alcotest.(check bool) "within 1% of gazetteer total" true
    (Float.abs (total -. expected) /. expected < 0.01)

let test_blocks_in_conus () =
  Array.iter
    (fun (b : Rr_census.Block.t) ->
      Alcotest.(check bool) "in CONUS" true
        (Rr_geo.Bbox.contains Rr_geo.Bbox.conus b.Rr_census.Block.coord))
    (small_blocks ())

let test_blocks_deterministic () =
  let a = Rr_census.Synthetic.generate ~seed:5L ~blocks:500 () in
  let b = Rr_census.Synthetic.generate ~seed:5L ~blocks:500 () in
  Alcotest.(check bool) "same blocks" true
    (Array.for_all2
       (fun (x : Rr_census.Block.t) (y : Rr_census.Block.t) ->
         Rr_geo.Coord.equal x.Rr_census.Block.coord y.Rr_census.Block.coord)
       a b)

let test_blocks_cluster_at_cities () =
  (* most of the population should sit within 50 miles of some gazetteer city *)
  let blocks = small_blocks () in
  let near = ref 0.0 and total = ref 0.0 in
  Array.iter
    (fun (b : Rr_census.Block.t) ->
      let city = Rr_cities.Query.nearest b.Rr_census.Block.coord in
      total := !total +. b.Rr_census.Block.population;
      if Rr_geo.Distance.miles city.Rr_cities.Data.coord b.Rr_census.Block.coord < 50.0
      then near := !near +. b.Rr_census.Block.population)
    blocks;
  Alcotest.(check bool) "85%+ near cities" true (!near /. !total > 0.85)

let test_heat_grid () =
  let grid = Rr_census.Synthetic.heat_grid (small_blocks ()) ~rows:40 ~cols:80 in
  Alcotest.(check (float 1e-6)) "normalised" 1.0 (Rr_geo.Grid.total grid)

(* --- Assignment --- *)

let test_nearest_index_matches_haversine () =
  (* The equirectangular shortcut may disagree with haversine on distant
     near-ties; the guarantee is that the chosen site is within 2% (or
     five miles) of the true nearest distance. *)
  let sites =
    [|
      Rr_geo.Coord.make ~lat:40.71 ~lon:(-74.01);
      Rr_geo.Coord.make ~lat:34.05 ~lon:(-118.24);
      Rr_geo.Coord.make ~lat:41.88 ~lon:(-87.63);
    |]
  in
  let rng = Rr_util.Prng.create 3L in
  for _ = 1 to 500 do
    let p =
      Rr_geo.Coord.make
        ~lat:(Rr_util.Prng.uniform rng 25.0 49.0)
        ~lon:(Rr_util.Prng.uniform rng (-124.0) (-67.0))
    in
    let fast = Rr_census.Assignment.nearest_index sites p in
    let chosen = Rr_geo.Distance.miles sites.(fast) p in
    let best = ref infinity in
    Array.iter (fun s -> best := Float.min !best (Rr_geo.Distance.miles s p)) sites;
    Alcotest.(check bool) "near-optimal assignment" true
      (chosen <= (1.02 *. !best) +. 5.0)
  done

let test_assignment_fractions_sum () =
  let blocks = small_blocks () in
  let sites =
    [|
      Rr_geo.Coord.make ~lat:40.0 ~lon:(-100.0);
      Rr_geo.Coord.make ~lat:35.0 ~lon:(-90.0);
    |]
  in
  let fractions = Rr_census.Assignment.fractions ~sites blocks in
  Alcotest.(check (float 1e-9)) "sums to one" 1.0 (Rr_util.Arrayx.fsum fractions)

let test_assignment_single_site () =
  let blocks = small_blocks () in
  let sites = [| Rr_geo.Coord.make ~lat:40.0 ~lon:(-100.0) |] in
  let fractions = Rr_census.Assignment.fractions ~sites blocks in
  Alcotest.(check (float 1e-9)) "everything to the only site" 1.0 fractions.(0)

let test_assignment_no_sites () =
  Alcotest.check_raises "no sites"
    (Invalid_argument "Assignment.nearest_index: no sites") (fun () ->
      ignore
        (Rr_census.Assignment.nearest_index [||] (Rr_geo.Coord.make ~lat:40.0 ~lon:(-100.0))))

(* --- Service --- *)

let test_service_tier1_uses_everything () =
  let zoo = Rr_topology.Zoo.shared () in
  let net = Option.get (Rr_topology.Zoo.find zoo "AT&T") in
  let blocks = small_blocks () in
  let fractions = Rr_census.Service.fractions net blocks in
  Alcotest.(check int) "per PoP" (Rr_topology.Net.pop_count net) (Array.length fractions);
  Alcotest.(check (float 1e-9)) "sums to one" 1.0 (Rr_util.Arrayx.fsum fractions)

let test_service_regional_restricted () =
  let zoo = Rr_topology.Zoo.shared () in
  let net = Option.get (Rr_topology.Zoo.find zoo "Epoch") in
  (* Epoch is CA-only: a PoP-wise assignment restricted to CA blocks *)
  let blocks = small_blocks () in
  let ca_blocks =
    Array.of_list
      (List.filter
         (fun (b : Rr_census.Block.t) -> String.equal b.Rr_census.Block.state "CA")
         (Array.to_list blocks))
  in
  Alcotest.(check bool) "some CA blocks" true (Array.length ca_blocks > 0);
  let fractions = Rr_census.Service.fractions net blocks in
  Alcotest.(check (float 1e-6)) "sums to one over CA only" 1.0
    (Rr_util.Arrayx.fsum fractions)

let test_service_memoised () =
  let zoo = Rr_topology.Zoo.shared () in
  let net = Option.get (Rr_topology.Zoo.find zoo "Globalcenter") in
  let a = Rr_census.Service.shared_fractions net in
  let b = Rr_census.Service.shared_fractions net in
  Alcotest.(check bool) "same array back" true (a == b)

let () =
  Alcotest.run "rr_census"
    [
      ( "synthetic",
        [
          Alcotest.test_case "block count" `Quick test_block_count;
          Alcotest.test_case "population conserved" `Quick test_population_conserved;
          Alcotest.test_case "blocks in CONUS" `Quick test_blocks_in_conus;
          Alcotest.test_case "deterministic" `Quick test_blocks_deterministic;
          Alcotest.test_case "clusters at cities" `Quick test_blocks_cluster_at_cities;
          Alcotest.test_case "heat grid" `Quick test_heat_grid;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "nearest matches haversine" `Quick
            test_nearest_index_matches_haversine;
          Alcotest.test_case "fractions sum" `Quick test_assignment_fractions_sum;
          Alcotest.test_case "single site" `Quick test_assignment_single_site;
          Alcotest.test_case "no sites" `Quick test_assignment_no_sites;
        ] );
      ( "service",
        [
          Alcotest.test_case "tier-1 national" `Quick test_service_tier1_uses_everything;
          Alcotest.test_case "regional restricted" `Quick test_service_regional_restricted;
          Alcotest.test_case "memoised" `Quick test_service_memoised;
        ] );
    ]
