open Rr_util

let paper_block_count = 215_932

let rural_fraction = 0.08 (* share of blocks scattered uniformly *)

let rural_population_share = 0.03

(* Blocks per city proportional to population, summing exactly to the
   requested total (largest-remainder apportionment, >= 1 per city). *)
let city_block_counts total_city_blocks =
  let cities = Rr_cities.Data.all in
  let n = Array.length cities in
  let total_pop = float_of_int Rr_cities.Data.total_population in
  let ideal =
    Array.map
      (fun (c : Rr_cities.Data.city) ->
        float_of_int c.population /. total_pop *. float_of_int total_city_blocks)
      cities
  in
  let counts = Array.map (fun x -> max 1 (int_of_float (Float.floor x))) ideal in
  let assigned = Array.fold_left ( + ) 0 counts in
  let remainder = total_city_blocks - assigned in
  if remainder > 0 then begin
    (* hand the leftover blocks to the largest fractional remainders *)
    let order =
      List.sort
        (fun i j ->
          Float.compare
            (ideal.(j) -. Float.floor ideal.(j))
            (ideal.(i) -. Float.floor ideal.(i)))
        (Rr_util.Listx.range 0 n)
    in
    List.iteri
      (fun rank i -> if rank < remainder then counts.(i) <- counts.(i) + 1)
      (List.concat (List.init ((remainder / n) + 1) (fun _ -> order)))
  end
  else
    (* the >= 1 floor can overshoot on tiny totals: trim the biggest *)
    for _ = 1 to -remainder do
      let biggest = Rr_util.Arrayx.argmax (Array.map float_of_int counts) in
      if counts.(biggest) > 1 then counts.(biggest) <- counts.(biggest) - 1
    done;
  counts

let place_city_block rng (city : Rr_cities.Data.city) =
  (* Core sigma grows with the metro's size: ~4 miles for a small town,
     ~15 miles for the largest metros. A fifth of blocks sit in a
     heavy-tailed suburban ring. *)
  let size_factor = sqrt (float_of_int city.population /. 100_000.0) in
  let sigma_miles = Float.min 15.0 (Float.max 3.0 (3.0 *. size_factor)) in
  let radial_miles =
    if Prng.float rng 1.0 < 0.2 then
      Float.min 120.0 (Prng.pareto rng ~alpha:1.6 ~xmin:sigma_miles)
    else Float.abs (Prng.gaussian rng) *. sigma_miles
  in
  let theta = Prng.float rng (2.0 *. Float.pi) in
  let dlat = radial_miles *. cos theta /. 69.0 in
  let lat0 = Rr_geo.Coord.lat city.coord in
  let miles_per_lon_degree = 69.0 *. Float.max 0.2 (cos (lat0 *. Float.pi /. 180.0)) in
  let dlon = radial_miles *. sin theta /. miles_per_lon_degree in
  let lat = Float.max (-89.0) (Float.min 89.0 (lat0 +. dlat)) in
  let lon = Float.max (-179.0) (Float.min 179.0 (Rr_geo.Coord.lon city.coord +. dlon)) in
  Rr_geo.Bbox.clamp Rr_geo.Bbox.conus (Rr_geo.Coord.make ~lat ~lon)

let generate ?(seed = 0xCE_05_05L) ?(blocks = paper_block_count) () =
  if blocks < Rr_cities.Data.count then
    invalid_arg "Synthetic.generate: need at least one block per city";
  let rng = Prng.create seed in
  let rural_blocks = int_of_float (rural_fraction *. float_of_int blocks) in
  let city_blocks = blocks - rural_blocks in
  let counts = city_block_counts city_blocks in
  let out = ref [] in
  let total_pop = float_of_int Rr_cities.Data.total_population in
  let city_pop_share = 1.0 -. rural_population_share in
  Array.iteri
    (fun i (city : Rr_cities.Data.city) ->
      let k = counts.(i) in
      let block_pop =
        float_of_int city.population *. city_pop_share /. float_of_int k
      in
      for _ = 1 to k do
        let coord = place_city_block rng city in
        out :=
          { Block.coord; state = city.state; population = block_pop } :: !out
      done)
    Rr_cities.Data.all;
  (* Rural background: uniform over the CONUS box, tagged with the nearest
     city's state so regional population restriction still works. *)
  let rural_pop = total_pop *. rural_population_share /. float_of_int (max 1 rural_blocks) in
  for _ = 1 to rural_blocks do
    let lat = Prng.uniform rng 25.0 49.0 in
    let lon = Prng.uniform rng (-124.5) (-67.0) in
    let coord = Rr_geo.Coord.make ~lat ~lon in
    let state = (Rr_cities.Query.nearest coord).Rr_cities.Data.state in
    out := { Block.coord; state; population = rural_pop } :: !out
  done;
  Array.of_list !out

let shared =
  let cache = lazy (generate ()) in
  fun () -> Lazy.force cache

let heat_grid blocks ~rows ~cols =
  let grid = Rr_geo.Grid.create Rr_geo.Bbox.conus ~rows ~cols in
  Array.iter (fun (b : Block.t) -> Rr_geo.Grid.deposit grid b.coord b.population) blocks;
  Rr_geo.Grid.normalize grid;
  grid
