(** Fig. 6: final geographic scope of Irene, Katrina and Sandy (union of
    per-advisory wind discs), with the Sec. 7.3 PoP exposure counts. *)

val tier1_pops_in_hurricane_scope : Rr_engine.Context.t -> Rr_forecast.Track.storm -> int
(** Tier-1 PoPs ever inside hurricane-force winds (paper: Irene 86,
    Katrina 8, Sandy 115). *)

val run : Rr_engine.Context.t -> Format.formatter -> unit
