(** Lookups over the gazetteer. *)

val by_name : ?state:string -> string -> Data.city option
(** Exact name match; [state] disambiguates duplicates (e.g. the two
    Wilmingtons). *)

val in_states : string list -> Data.city list
(** Cities in any of the given states, in gazetteer order. *)

val in_bbox : Rr_geo.Bbox.t -> Data.city list

val nearest : Rr_geo.Coord.t -> Data.city
(** City closest to a coordinate. *)

val top_by_population : int -> Data.city list
(** The [n] most populous cities, descending. *)

val states : unit -> string list
(** Distinct state codes present in the gazetteer, sorted. *)
