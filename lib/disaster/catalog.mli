(** The assembled 1970-2010 disaster catalogue (paper counts by
    default: 176k events across the five kinds). *)

type t

val generate : ?seed:int64 -> ?scale:float -> unit -> t
(** [scale] multiplies every kind's paper count (e.g. 0.01 for fast
    tests); at least 10 events are kept per kind. Deterministic in
    [seed]. *)

val shared : unit -> t
(** Full-size default-seed catalogue, built once and memoised. *)

val coords : t -> Event.kind -> Rr_geo.Coord.t array
(** Event locations of a kind (shared array — do not mutate). *)

val count : t -> Event.kind -> int

val total : t -> int

val events : t -> Event.t array
(** Every event with kind and synthetic year/month. *)

val coords_in_months : t -> Event.kind -> months:int list -> Rr_geo.Coord.t array
(** Event locations of a kind restricted to the given months (1-12) —
    the input for seasonal risk surfaces. *)
