open Rr_gml

let sample =
  {|# Topology Zoo style document
graph [
  label "Tiny"
  directed 0
  node [
    id 0
    label "Chicago, IL"
    Latitude 41.88
    Longitude -87.63
  ]
  node [
    id 5
    label "Boston, MA"
    Latitude 42.36
    Longitude -71.06
  ]
  edge [
    source 0
    target 5
  ]
]
|}

(* --- Lexer --- *)

let test_lexer_tokens () =
  let toks = Lexer.tokens {|graph [ id 3 x 2.5 s "hi" ]|} in
  Alcotest.(check int) "token count" 10 (List.length toks);
  match toks with
  | [ Lexer.Key "graph"; Lexer.Lbracket; Lexer.Key "id"; Lexer.Int_lit 3;
      Lexer.Key "x"; Lexer.Float_lit 2.5; Lexer.Key "s"; Lexer.String_lit "hi";
      Lexer.Rbracket; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_negative_numbers () =
  match Lexer.tokens "x -87.63 y -3" with
  | [ Lexer.Key "x"; Lexer.Float_lit f; Lexer.Key "y"; Lexer.Int_lit (-3); Lexer.Eof ] ->
    Alcotest.(check (float 1e-9)) "negative float" (-87.63) f
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_comments () =
  match Lexer.tokens "# comment line\nid 1" with
  | [ Lexer.Key "id"; Lexer.Int_lit 1; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "comment not skipped"

let test_lexer_escaped_string () =
  match Lexer.tokens {|label "a \"quoted\" name"|} with
  | [ Lexer.Key "label"; Lexer.String_lit s; Lexer.Eof ] ->
    Alcotest.(check string) "unescaped" {|a "quoted" name|} s
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_unterminated () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Lexer.tokens {|label "oops|});
       false
     with Lexer.Error _ -> true)

let test_lexer_exponent () =
  match Lexer.tokens "v 1.5e3" with
  | [ Lexer.Key "v"; Lexer.Float_lit f; Lexer.Eof ] ->
    Alcotest.(check (float 1e-9)) "exponent" 1500.0 f
  | _ -> Alcotest.fail "unexpected tokens"

(* --- Parser --- *)

let test_parse_sample () =
  let doc = Parser.parse sample in
  match Ast.find doc "graph" with
  | Some (Ast.List pairs) ->
    Alcotest.(check int) "two nodes" 2 (List.length (Ast.find_all pairs "node"));
    Alcotest.(check int) "one edge" 1 (List.length (Ast.find_all pairs "edge"));
    (match Ast.find pairs "label" with
    | Some (Ast.String "Tiny") -> ()
    | _ -> Alcotest.fail "label")
  | _ -> Alcotest.fail "no graph"

let test_parse_errors () =
  let fails s =
    try
      ignore (Parser.parse s);
      false
    with Parser.Error _ -> true
  in
  Alcotest.(check bool) "missing value" true (fails "graph [ id ]");
  Alcotest.(check bool) "unbalanced" true (fails "graph [ id 1");
  Alcotest.(check bool) "stray bracket" true (fails "id 1 ]")

let test_ast_accessors () =
  Alcotest.(check (option int)) "int" (Some 3) (Ast.as_int (Ast.Int 3));
  Alcotest.(check (option int)) "integral float" (Some 3) (Ast.as_int (Ast.Float 3.0));
  Alcotest.(check (option int)) "fractional float" None (Ast.as_int (Ast.Float 3.5));
  Alcotest.(check (option (float 0.0))) "int as float" (Some 3.0) (Ast.as_float (Ast.Int 3));
  Alcotest.(check (option string)) "string" (Some "x") (Ast.as_string (Ast.String "x"));
  Alcotest.(check bool) "list" true (Ast.as_list (Ast.List []) = Some [])

(* --- Printer round trip --- *)

let test_print_parse_round_trip () =
  let doc = Parser.parse sample in
  let doc' = Parser.parse (Printer.to_string doc) in
  Alcotest.(check bool) "round trip equal" true (Ast.equal doc doc')

let ident_gen =
  QCheck.Gen.(
    map
      (fun (c, rest) -> String.make 1 c ^ String.concat "" (List.map (String.make 1) rest))
      (pair (char_range 'a' 'z') (list_size (int_bound 6) (char_range 'a' 'z'))))

let rec value_gen depth =
  QCheck.Gen.(
    if depth = 0 then
      oneof
        [
          map (fun i -> Ast.Int i) (int_range (-1000) 1000);
          map (fun f -> Ast.Float f) (float_range (-1000.0) 1000.0);
          map (fun s -> Ast.String s) ident_gen;
        ]
    else
      frequency
        [
          (3, value_gen 0);
          (1, map (fun pairs -> Ast.List pairs) (doc_gen (depth - 1)));
        ])

and doc_gen depth =
  QCheck.Gen.(list_size (int_bound 5) (pair ident_gen (value_gen depth)))

let arb_doc =
  QCheck.make (doc_gen 2) ~print:(fun doc -> Printer.to_string doc)

let printer_round_trip =
  QCheck.Test.make ~name:"print/parse round trip on random documents" ~count:200
    arb_doc
    (fun doc -> Ast.equal doc (Parser.parse (Printer.to_string doc)))

(* --- Gml_io --- *)

let test_gml_io_round_trip () =
  let doc = Parser.parse sample in
  let net = Rr_topology.Gml_io.of_gml doc in
  Alcotest.(check int) "pops" 2 (Rr_topology.Net.pop_count net);
  Alcotest.(check int) "links" 1 (Rr_topology.Net.link_count net);
  Alcotest.(check string) "city split" "Chicago"
    (Rr_topology.Net.pop net 0).Rr_topology.Pop.city;
  Alcotest.(check string) "state split" "IL"
    (Rr_topology.Net.pop net 0).Rr_topology.Pop.state;
  (* back out and in again *)
  let net' = Rr_topology.Gml_io.of_gml (Rr_topology.Gml_io.to_gml net) in
  Alcotest.(check int) "pops preserved" 2 (Rr_topology.Net.pop_count net');
  Alcotest.(check int) "links preserved" 1 (Rr_topology.Net.link_count net')

let test_gml_io_sparse_ids () =
  (* ids 0 and 5 in the sample: must be reindexed densely *)
  let net = Rr_topology.Gml_io.of_gml (Parser.parse sample) in
  Alcotest.(check int) "dense id 0" 0 (Rr_topology.Net.pop net 0).Rr_topology.Pop.id;
  Alcotest.(check int) "dense id 1" 1 (Rr_topology.Net.pop net 1).Rr_topology.Pop.id

let test_gml_io_missing_fields () =
  let bad = "graph [ node [ id 0 label \"x\" ] ]" in
  Alcotest.(check bool) "fails on missing Latitude" true
    (try
       ignore (Rr_topology.Gml_io.of_gml (Parser.parse bad));
       false
     with Failure _ -> true)

let test_gml_io_file_round_trip () =
  let net = Rr_topology.Gml_io.of_gml (Parser.parse sample) in
  let path = Filename.temp_file "riskroute" ".gml" in
  Rr_topology.Gml_io.to_file path net;
  let net' = Rr_topology.Gml_io.of_file path in
  Sys.remove path;
  Alcotest.(check int) "file round trip" 2 (Rr_topology.Net.pop_count net')

let () =
  Alcotest.run "rr_gml"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "negative numbers" `Quick test_lexer_negative_numbers;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "escaped string" `Quick test_lexer_escaped_string;
          Alcotest.test_case "unterminated string" `Quick test_lexer_unterminated;
          Alcotest.test_case "exponent" `Quick test_lexer_exponent;
        ] );
      ( "parser",
        [
          Alcotest.test_case "sample document" `Quick test_parse_sample;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "ast accessors" `Quick test_ast_accessors;
        ] );
      ( "printer",
        [
          Alcotest.test_case "round trip" `Quick test_print_parse_round_trip;
          QCheck_alcotest.to_alcotest printer_round_trip;
        ] );
      ( "gml_io",
        [
          Alcotest.test_case "round trip" `Quick test_gml_io_round_trip;
          Alcotest.test_case "sparse ids" `Quick test_gml_io_sparse_ids;
          Alcotest.test_case "missing fields" `Quick test_gml_io_missing_fields;
          Alcotest.test_case "file round trip" `Quick test_gml_io_file_round_trip;
        ] );
    ]
