open Rr_util

type result = {
  pairs : int;
  events_per_year : float;
  mttr_hours : float;
  shortest : float;
  riskroute : float;
  reactive : float;
}

let nines a =
  if a >= 1.0 then infinity
  else if a <= 0.0 then 0.0
  else -.Float.log10 (1.0 -. a)

let downtime_minutes_per_year a = (1.0 -. a) *. 365.25 *. 24.0 *. 60.0

let catalogue_years = 41.0 (* 1970-2010 inclusive *)

let hours_per_year = 365.25 *. 24.0

let run ?rng ?(samples = 400) ?(pair_cap = 150) ?(mttr_hours = 12.0)
    ?(radius_miles = 80.0) ?(kind = Rr_disaster.Event.Fema_hurricane) env =
  if mttr_hours <= 0.0 then invalid_arg "Availability.run: non-positive MTTR";
  let rng = match rng with Some r -> r | None -> Prng.create 0xA7A1_AB1EL in
  let n = Env.node_count env in
  let pairs = Sampling.pair_indices (Prng.split rng) ~n ~cap:pair_cap in
  let static =
    Array.map
      (fun (src, dst) ->
        (src, dst, Router.shortest env ~src ~dst, Router.riskroute env ~src ~dst))
      pairs
  in
  let scenarios =
    Outagesim.sample_scenarios ~rng:(Prng.split rng) ~radius_miles ~kind
      ~count:samples env
  in
  (* Per pair, count strikes that take each posture down. *)
  let np = Array.length static in
  let down_shortest = Array.make np 0
  and down_riskroute = Array.make np 0
  and down_reactive = Array.make np 0 in
  List.iter
    (fun (s : Outagesim.scenario) ->
      if s.Outagesim.failed_pops <> [] then begin
        let failed = Hashtbl.create 8 in
        List.iter (fun v -> Hashtbl.replace failed v ()) s.Outagesim.failed_pops;
        let path_alive path = List.for_all (fun v -> not (Hashtbl.mem failed v)) path in
        Array.iteri
          (fun i (src, dst, shortest, riskroute) ->
            let endpoint_dead = Hashtbl.mem failed src || Hashtbl.mem failed dst in
            let static_down route =
              endpoint_dead
              ||
              match route with
              | Some (r : Router.route) -> not (path_alive r.Router.path)
              | None -> true
            in
            if static_down shortest then down_shortest.(i) <- down_shortest.(i) + 1;
            if static_down riskroute then down_riskroute.(i) <- down_riskroute.(i) + 1;
            let reactive_down =
              endpoint_dead
              || not
                   (let weight u v =
                      if Hashtbl.mem failed u || Hashtbl.mem failed v then 1e15
                      else Env.distance_weight env u v
                    in
                    match
                      Rr_graph.Dijkstra.single_pair (Env.graph env) ~weight ~src ~dst
                    with
                    | Some (cost, _) -> cost < 1e15
                    | None -> false)
            in
            if reactive_down then down_reactive.(i) <- down_reactive.(i) + 1)
          static
      end)
    scenarios;
  let events_per_year =
    float_of_int (Rr_disaster.Event.paper_count kind) /. catalogue_years
  in
  let availability down =
    (* Expected downtime per pair-year: strike rate x P(down | strike) x MTTR. *)
    let mean_p =
      Arrayx.fmean (Array.map (fun d -> float_of_int d /. float_of_int samples) down)
    in
    let downtime_hours = events_per_year *. mean_p *. mttr_hours in
    Float.max 0.0 (1.0 -. (downtime_hours /. hours_per_year))
  in
  {
    pairs = np;
    events_per_year;
    mttr_hours;
    shortest = availability down_shortest;
    riskroute = availability down_riskroute;
    reactive = availability down_reactive;
  }
