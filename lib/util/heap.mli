(** Imperative binary min-heap keyed by floats.

    This is the priority queue behind {!Rr_graph.Dijkstra}. Stale entries
    are handled by lazy deletion: pushing a better key for an element is
    allowed, and consumers skip pops they have already settled. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int
(** Number of (possibly stale) entries currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val pop_min : 'a t -> (float * 'a) option
(** Removes and returns the entry with the smallest key, or [None] when
    empty. Ties are broken arbitrarily. *)

val min_key : 'a t -> float
(** Smallest key without removing it; raises [Invalid_argument] on an
    empty heap. With {!min_elt} and {!drop_min} this gives consumers an
    allocation-free alternative to {!pop_min} (no option, no tuple). *)

val min_elt : 'a t -> 'a
(** Value paired with the smallest key; raises on an empty heap. *)

val drop_min : 'a t -> unit
(** Remove the minimum entry; raises on an empty heap. *)

val clear : 'a t -> unit
(** Drop all entries, retaining allocated capacity. *)

val ensure_capacity : 'a t -> int -> unit
(** Grow the backing arrays to hold at least [cap] entries without
    further reallocation. With {!clear} this lets a long-lived heap be
    reused across queries allocation-free: size it to the graph once,
    then pushes never trigger {e grow}. Never shrinks. *)
