let default_spec storm =
  Rr_engine.Spec.make ~networks:Rr_engine.Spec.Interdomain ~pair_cap:300
    ~tick_stride:6 ~storm ()

let compute ctx (spec : Rr_engine.Spec.t) =
  let storm = Rr_engine.Spec.storm_exn spec in
  let pair_cap = Rr_engine.Spec.pair_cap ~default:300 spec in
  let tick_stride = Rr_engine.Spec.tick_stride ~default:6 spec in
  let merged, base_env = Rr_engine.Context.interdomain ctx in
  let trees_for env = Rr_engine.Context.dist_trees ctx env in
  let peering = Riskroute.Interdomain.peering merged in
  let nets = peering.Rr_topology.Peering.nets in
  let advisories = Rr_forecast.Track.advisories storm in
  List.filter_map
    (fun i ->
      match nets.(i).Rr_topology.Net.tier with
      | Rr_topology.Net.Tier1 -> None
      | Rr_topology.Net.Regional ->
        let fraction = Rr_forecast.Riskfield.scope_fraction advisories nets.(i) in
        if fraction > 0.2 then
          Some
            (Riskroute.Casestudy.regional ~pair_cap ~tick_stride ~trees_for
               ~storm ~merged ~base_env i)
        else None)
    (Rr_util.Listx.range 0 (Array.length nets))

let run ctx ppf =
  Format.fprintf ppf
    "Fig 13: regional interdomain case studies (>20%% of PoPs in scope)@.";
  List.iter
    (fun storm ->
      Format.fprintf ppf "-- Hurricane %s --@." storm.Rr_forecast.Track.name;
      match compute ctx (default_spec storm) with
      | [] -> Format.fprintf ppf "  (no regional network above the 20%% scope filter)@."
      | series -> Fig12.pp_series ppf series)
    Rr_forecast.Track.all
