open Rr_util

type result = {
  risk_reduction : float;
  distance_increase : float;
  pairs : int;
}

let default_cap = 20_000

let c_pairs = Rr_obs.Counter.make "ratios.pairs_routed"

let h_sweep = Rr_obs.Histogram.make "ratios.sweep_seconds"

(* Route every sampled pair, grouping pairs by source so one geographic
   shortest-path tree serves all destinations sharing that source
   (RiskRoute paths still need one run per pair, since [kappa] depends
   on both endpoints). Per-pair results are computed independently on
   the domain pool and consumed in pair order, so downstream
   accumulation is bit-identical at any pool size. *)
let pair_routes ?trees env pairs =
 Rr_obs.with_span "ratios.pair_routes" @@ fun () ->
  let tel = Rr_obs.enabled () in
  let t0 = if tel then Rr_obs.Clock.monotonic () else 0.0 in
  let slot = Hashtbl.create 64 in
  let sources = ref [] in
  Array.iter
    (fun (src, dst) ->
      if src <> dst && not (Hashtbl.mem slot src) then begin
        Hashtbl.add slot src (Hashtbl.length slot);
        sources := src :: !sources
      end)
    pairs;
  let sources = Array.of_list (List.rev !sources) in
  let tree_for =
    match trees with
    | Some f -> f
    | None -> fun src -> Router.shortest_tree env ~src
  in
  let trees = Parallel.map_array tree_for sources in
  let routed =
    Parallel.map_array
      (fun (src, dst) ->
        if src = dst then (None, None)
        else
          ( Router.riskroute env ~src ~dst,
            Router.shortest_of_tree env trees.(Hashtbl.find slot src) ~src ~dst ))
      pairs
  in
  if tel then begin
    Rr_obs.Counter.add c_pairs (Array.length pairs);
    Rr_obs.Histogram.observe h_sweep (Rr_obs.Clock.monotonic () -. t0)
  end;
  routed

(* Eqs. 5-6 average over 1/N^2 of ALL ordered pairs including the i = j
   diagonal, whose ratio terms are zero. [diagonal_share] is the fraction
   of the full pair universe that lies on that diagonal: the mean ratio
   over evaluated off-diagonal pairs is scaled by [1 - diagonal_share]
   before entering the paper's formulas. *)
let accumulate routed ~diagonal_share =
  let risk_sum = ref 0.0 and dist_sum = ref 0.0 and count = ref 0 in
  Array.iter
    (fun routes ->
      match routes with
      | Some rr, Some sp
        when sp.Router.bit_risk_miles > 0.0 && sp.Router.bit_miles > 0.0 ->
        risk_sum := !risk_sum +. (rr.Router.bit_risk_miles /. sp.Router.bit_risk_miles);
        dist_sum := !dist_sum +. (rr.Router.bit_miles /. sp.Router.bit_miles);
        incr count
      | _ -> ())
    routed;
  if !count = 0 then { risk_reduction = 0.0; distance_increase = 0.0; pairs = 0 }
  else begin
    let n = float_of_int !count in
    let off_diagonal = 1.0 -. diagonal_share in
    {
      risk_reduction = 1.0 -. (!risk_sum /. n *. off_diagonal);
      distance_increase = (!dist_sum /. n *. off_diagonal) -. 1.0;
      pairs = !count;
    }
  end

let intradomain ?(pair_cap = default_cap) ?(seed = 0x4A71_05L) ?trees env =
 Rr_obs.with_kernel "ratios.intradomain" @@ fun () ->
  let n = Env.node_count env in
  let rng = Prng.create seed in
  let pairs = Sampling.pair_indices rng ~n ~cap:pair_cap in
  let diagonal_share = if n = 0 then 0.0 else 1.0 /. float_of_int n in
  accumulate (pair_routes ?trees env pairs) ~diagonal_share

let weighted ?(pair_cap = default_cap) ?(seed = 0x4A71_05L) ?trees ~weight env =
  let n = Env.node_count env in
  let rng = Prng.create seed in
  let pairs = Sampling.pair_indices rng ~n ~cap:pair_cap in
  let routed = pair_routes ?trees env pairs in
  let risk_sum = ref 0.0 and dist_sum = ref 0.0 in
  let weight_sum = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun i (src, dst) ->
      let w = weight src dst in
      if src <> dst && w > 0.0 then
        match routed.(i) with
        | Some rr, Some sp
          when sp.Router.bit_risk_miles > 0.0 && sp.Router.bit_miles > 0.0 ->
          risk_sum := !risk_sum +. (w *. rr.Router.bit_risk_miles /. sp.Router.bit_risk_miles);
          dist_sum := !dist_sum +. (w *. rr.Router.bit_miles /. sp.Router.bit_miles);
          weight_sum := !weight_sum +. w;
          incr count
        | _ -> ())
    pairs;
  if !weight_sum <= 0.0 then
    { risk_reduction = 0.0; distance_increase = 0.0; pairs = 0 }
  else
    {
      risk_reduction = 1.0 -. (!risk_sum /. !weight_sum);
      distance_increase = (!dist_sum /. !weight_sum) -. 1.0;
      pairs = !count;
    }

let between ?(pair_cap = default_cap) ?(seed = 0x4A71_05L) ?trees env ~sources
    ~dests =
  let ns = Array.length sources and nd = Array.length dests in
  if ns = 0 || nd = 0 then
    { risk_reduction = 0.0; distance_increase = 0.0; pairs = 0 }
  else begin
    let total = ns * nd in
    let pairs =
      if total <= pair_cap then begin
        let out = ref [] in
        Array.iter
          (fun s -> Array.iter (fun d -> if s <> d then out := (s, d) :: !out) dests)
          sources;
        Array.of_list !out
      end
      else begin
        let rng = Prng.create seed in
        let seen = Hashtbl.create (2 * pair_cap) in
        let out = ref [] and k = ref 0 and attempts = ref 0 in
        while !k < pair_cap && !attempts < 50 * pair_cap do
          incr attempts;
          let s = sources.(Prng.int rng ns) in
          let d = dests.(Prng.int rng nd) in
          if s <> d && not (Hashtbl.mem seen (s, d)) then begin
            Hashtbl.add seen (s, d) ();
            out := (s, d) :: !out;
            incr k
          end
        done;
        Array.of_list !out
      end
    in
    (* Diagonal share of the S x D pair universe: |S inter D| / (|S| |D|). *)
    let dest_set = Hashtbl.create nd in
    Array.iter (fun d -> Hashtbl.replace dest_set d ()) dests;
    let overlap =
      Array.fold_left
        (fun acc s -> if Hashtbl.mem dest_set s then acc + 1 else acc)
        0 sources
    in
    let diagonal_share = float_of_int overlap /. float_of_int total in
    accumulate (pair_routes ?trees env pairs) ~diagonal_share
  end
