(** Co-location of PoPs across networks.

    Two PoPs of different ISPs are co-located when they sit within a small
    great-circle distance of each other (same metro / same carrier
    hotel). Co-location is where peering links can physically exist and
    where the paper's "candidate peers" (Sec. 6.3) live. *)

val default_threshold_miles : float
(** 15 miles — same-metro scale. *)

val pairs :
  ?threshold_miles:float -> Net.t -> Net.t -> (int * int) list
(** [(i, j)] with PoP [i] of the first network co-located with PoP [j] of
    the second. *)

val co_located : ?threshold_miles:float -> Net.t -> Net.t -> bool

val shared_cities : Net.t -> Net.t -> string list
(** Distinct city names hosting PoPs of both networks. *)
