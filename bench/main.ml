(* Benchmark and reproduction harness.

   Usage:
     main.exe                 run every table/figure, then the Bechamel suite
     main.exe <id> [<id>...]  run selected experiments (table1..fig13)
     main.exe bechamel        run only the Bechamel microbenchmark suite
     main.exe json [file]     write Bechamel timings as JSON (default BENCH.json)
     main.exe list            list experiment ids

   [--telemetry <file|->] anywhere on the command line enables the
   Rr_obs engine telemetry dump (same semantics as the CLI flag and
   RISKROUTE_TELEMETRY). *)

open Bechamel
open Toolkit

(* --- Bechamel microbenchmarks: one per table/figure kernel --- *)

let dijkstra_tests () =
  let zoo = Rr_topology.Zoo.shared () in
  let level3 = Option.get (Rr_topology.Zoo.find zoo "Level3") in
  let env = Riskroute.Env.of_net level3 in
  let n = Riskroute.Env.node_count env in
  [
    Test.make ~name:"table2/riskroute-pair-level3"
      (Staged.stage (fun () ->
           ignore (Riskroute.Router.riskroute env ~src:0 ~dst:(n - 1))));
    Test.make ~name:"table2/shortest-pair-level3"
      (Staged.stage (fun () ->
           ignore (Riskroute.Router.shortest env ~src:0 ~dst:(n - 1))));
  ]

let kde_tests () =
  let catalog = Rr_disaster.Catalog.generate ~scale:0.02 () in
  let events = Rr_disaster.Catalog.coords catalog Rr_disaster.Event.Fema_storm in
  let density = Rr_kde.Density.fit ~bandwidth:24.38 events in
  let point = Rr_geo.Coord.make ~lat:39.0 ~lon:(-95.0) in
  [
    Test.make ~name:"table1/kde-exact-eval"
      (Staged.stage (fun () -> ignore (Rr_kde.Density.eval density point)));
    Test.make ~name:"fig4/kde-grid-fit"
      (Staged.stage (fun () ->
           ignore (Rr_kde.Grid_density.fit ~rows:60 ~cols:140 ~bandwidth:24.38 events)));
    Test.make ~name:"table1/cv-bandwidth-select"
      (Staged.stage (fun () ->
           ignore
             (Rr_kde.Bandwidth.select ~max_events:150
                ~candidates:[| 10.0; 30.0; 90.0 |] events)));
  ]

let forecast_tests () =
  let text = List.nth (Rr_forecast.Track.advisory_texts Rr_forecast.Track.sandy) 40 in
  [
    Test.make ~name:"fig5/advisory-parse"
      (Staged.stage (fun () -> ignore (Rr_forecast.Parse.advisory text)));
  ]

let census_tests () =
  let blocks = Rr_census.Synthetic.generate ~blocks:5_000 () in
  let zoo = Rr_topology.Zoo.shared () in
  let att = Option.get (Rr_topology.Zoo.find zoo "AT&T") in
  let sites =
    Array.map (fun (p : Rr_topology.Pop.t) -> p.Rr_topology.Pop.coord)
      att.Rr_topology.Net.pops
  in
  [
    Test.make ~name:"fig3/nn-assignment-5k-blocks"
      (Staged.stage (fun () ->
           ignore (Rr_census.Assignment.fractions ~sites blocks)));
  ]

let augment_tests () =
  let zoo = Rr_topology.Zoo.shared () in
  let att = Option.get (Rr_topology.Zoo.find zoo "AT&T") in
  let env = Riskroute.Env.of_net att in
  [
    Test.make ~name:"fig9/greedy-one-link-att"
      (Staged.stage (fun () -> ignore (Riskroute.Augment.greedy ~k:1 env)));
    Test.make ~name:"fig10/total-bit-risk-att"
      (Staged.stage (fun () -> ignore (Riskroute.Augment.total_bit_risk env)));
  ]

let ratio_tests () =
  let zoo = Rr_topology.Zoo.shared () in
  let att = Option.get (Rr_topology.Zoo.find zoo "AT&T") in
  let env = Riskroute.Env.of_net att in
  let advisory = List.nth (Rr_forecast.Track.advisories Rr_forecast.Track.sandy) 50 in
  [
    Test.make ~name:"table2/intradomain-ratios-att"
      (Staged.stage (fun () ->
           ignore (Riskroute.Ratios.intradomain ~pair_cap:200 env)));
    Test.make ~name:"fig12/advisory-env-refresh"
      (Staged.stage (fun () ->
           ignore (Riskroute.Env.with_advisory env (Some advisory))));
  ]

let gml_tests () =
  let zoo = Rr_topology.Zoo.shared () in
  let att = Option.get (Rr_topology.Zoo.find zoo "AT&T") in
  let text = Rr_gml.Printer.to_string (Rr_topology.Gml_io.to_gml att) in
  [
    Test.make ~name:"fig1/gml-parse-att"
      (Staged.stage (fun () -> ignore (Rr_gml.Parser.parse text)));
  ]

let extension_tests () =
  let zoo = Rr_topology.Zoo.shared () in
  let att = Option.get (Rr_topology.Zoo.find zoo "AT&T") in
  let env = Riskroute.Env.of_net att in
  let n = Riskroute.Env.node_count env in
  [
    Test.make ~name:"abl-pareto/frontier-att"
      (Staged.stage (fun () ->
           ignore (Riskroute.Pareto.frontier ~k:8 env ~src:0 ~dst:(n - 1))));
    Test.make ~name:"abl-backup/plan-att"
      (Staged.stage (fun () ->
           ignore (Riskroute.Backup.plan env ~src:0 ~dst:(n - 1))));
    Test.make ~name:"abl-ospf/weights-att"
      (Staged.stage (fun () -> ignore (Riskroute.Ospf.link_weights env)));
    Test.make ~name:"abl-outage/50-scenarios-att"
      (Staged.stage (fun () ->
           ignore (Riskroute.Outagesim.run ~scenario_count:50 ~pair_cap:50 env)));
    Test.make ~name:"fig1/geojson-export-att"
      (Staged.stage (fun () ->
           ignore
             (Rr_geo.Geojson.feature_collection
                (Rr_topology.Geo_export.net_features att))));
  ]

let bechamel_suite () =
  dijkstra_tests () @ kde_tests () @ forecast_tests () @ census_tests ()
  @ augment_tests () @ ratio_tests () @ gml_tests () @ extension_tests ()

let bechamel_estimates () =
  let tests = Test.make_grouped ~name:"riskroute" ~fmt:"%s/%s" (bechamel_suite ()) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        match Analyze.OLS.estimates v with
        | Some [ est ] -> (name, est) :: acc
        | Some _ | None -> acc)
      results []
  in
  List.sort compare rows

let run_bechamel () =
  print_endline "\n=== Bechamel microbenchmark suite ===";
  List.iter
    (fun (name, est) ->
      if est >= 1e9 then Printf.printf "%-48s %10.2f s/run\n" name (est /. 1e9)
      else if est >= 1e6 then Printf.printf "%-48s %10.2f ms/run\n" name (est /. 1e6)
      else if est >= 1e3 then Printf.printf "%-48s %10.2f us/run\n" name (est /. 1e3)
      else Printf.printf "%-48s %10.0f ns/run\n" name est)
    (bechamel_estimates ())

(* The current git revision, read straight off .git so the harness stays
   dependency- and subprocess-free; "unknown" outside a checkout. *)
let git_rev () =
  let read_line path =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic)
  in
  try
    let head = String.trim (read_line ".git/HEAD") in
    let prefix = "ref: " in
    if String.length head > String.length prefix
       && String.sub head 0 (String.length prefix) = prefix
    then begin
      let r = String.sub head 5 (String.length head - 5) in
      try String.trim (read_line (Filename.concat ".git" r))
      with _ ->
        (* Ref not unpacked: scan .git/packed-refs for it. *)
        let ic = open_in ".git/packed-refs" in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
            let rev = ref "unknown" in
            (try
               while true do
                 let line = input_line ic in
                 match String.index_opt line ' ' with
                 | Some i when String.sub line (i + 1) (String.length line - i - 1) = r ->
                   rev := String.sub line 0 i;
                   raise Exit
                 | _ -> ()
               done
             with End_of_file | Exit -> ());
            !rev)
    end
    else head
  with _ -> "unknown"

(* Machine-readable timings for CI trend tracking and cross-machine
   comparison (perf dashboards read this, humans read [run_bechamel]).
   The [meta] block (schema 2) carries everything needed to compare
   BENCH_*.json files across PRs and machines. *)
let bench_schema = 2

let run_json file =
  let rows = bechamel_estimates () in
  let oc = open_out file in
  Printf.fprintf oc
    "{\n  \"meta\": {\"schema\": %d, \"domains\": %d, \"git_rev\": %S, \"hostname\": %S},\n  \"results\": [\n"
    bench_schema
    (Rr_util.Parallel.domain_count ())
    (git_rev ())
    (Unix.gethostname ());
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "    {\"name\": %S, \"ns_per_run\": %.2f}%s\n" name est
        (if i < List.length rows - 1 then "," else ""))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d results)\n" file (List.length rows)

let ppf = Format.std_formatter

(* Pull "--telemetry <spec>" (or "--telemetry=<spec>") out of argv before
   experiment-id dispatch; the harness has no cmdliner front end. *)
let extract_telemetry argv =
  let rec go acc = function
    | [] -> List.rev acc
    | "--telemetry" :: spec :: rest ->
      Rr_obs.enable_dump spec;
      go acc rest
    | arg :: rest when String.length arg > 12 && String.sub arg 0 12 = "--telemetry=" ->
      Rr_obs.enable_dump (String.sub arg 12 (String.length arg - 12));
      go acc rest
    | arg :: rest -> go (arg :: acc) rest
  in
  go [] argv

let () =
  match extract_telemetry (Array.to_list Sys.argv) with
  | [] | _ :: [] ->
    Rr_experiments.Report.run_all ppf;
    Format.pp_print_flush ppf ();
    run_bechamel ()
  | _ :: [ "bechamel" ] -> run_bechamel ()
  | _ :: "json" :: rest ->
    let file = match rest with [ f ] -> f | _ -> "BENCH.json" in
    run_json file
  | _ :: [ "list" ] ->
    List.iter print_endline (Rr_experiments.Report.ids ())
  | _ :: "csv" :: rest ->
    let dir = match rest with [ d ] -> d | _ -> "plots" in
    let files = Rr_experiments.Csv_export.write_all dir in
    List.iter (fun f -> Printf.printf "wrote %s\n" f) files
  | _ :: ids ->
    List.iter
      (fun id ->
        match Rr_experiments.Report.find id with
        | Some e ->
          Format.fprintf ppf "@.=== %s: %s ===@." (String.uppercase_ascii e.Rr_experiments.Report.id)
            e.Rr_experiments.Report.title;
          e.Rr_experiments.Report.run ppf
        | None ->
          Format.fprintf ppf "unknown experiment %S (try: %s)@." id
            (String.concat " " (Rr_experiments.Report.ids ())))
      ids;
    Format.pp_print_flush ppf ()
