open Rr_util

type style = Mesh | Ring

type spec = {
  name : string;
  tier : Net.tier;
  states : string list;
  pop_count : int;
  style : style;
  mesh_fraction : float;
  hub_links : int;
}

(* Weighted sample of [k] site assignments over the city pool. Cities can
   repeat once the pool is exhausted (or when a metro is drawn again after
   every city has been used), yielding secondary metro PoPs. *)
let choose_sites rng pool k =
  let n = Array.length pool in
  let weights = Array.map (fun (c : Rr_cities.Data.city) -> float_of_int c.population) pool in
  let live = Array.copy weights in
  let uses = Array.make n 0 in
  let order = ref [] in
  for _ = 1 to k do
    let total = Arrayx.fsum live in
    let idx =
      if total > 0.0 then Prng.categorical rng live
      else Prng.categorical rng weights (* pool exhausted: re-draw by population *)
    in
    live.(idx) <- 0.0;
    uses.(idx) <- uses.(idx) + 1;
    order := (idx, uses.(idx)) :: !order
  done;
  List.rev !order

let jitter rng coord =
  (* About 0.03 degrees sigma: secondary metro PoPs stay within a couple
     of miles of the city centre (carrier hotels cluster downtown), so
     they share the metro's risk surface. *)
  let dlat = 0.03 *. Prng.gaussian rng in
  let dlon = 0.03 *. Prng.gaussian rng in
  let moved =
    Rr_geo.Coord.make
      ~lat:(Float.max (-89.0) (Float.min 89.0 (Rr_geo.Coord.lat coord +. dlat)))
      ~lon:(Float.max (-179.0) (Float.min 179.0 (Rr_geo.Coord.lon coord +. dlon)))
  in
  Rr_geo.Bbox.clamp Rr_geo.Bbox.conus moved

let build ~rng spec =
  if spec.pop_count < 1 then invalid_arg "Builder.build: pop_count < 1";
  let pool =
    match spec.states with
    | [] -> Rr_cities.Data.all
    | states ->
      Array.of_list (Rr_cities.Query.in_states states)
  in
  if Array.length pool = 0 then invalid_arg "Builder.build: empty city pool";
  let sites = choose_sites rng pool spec.pop_count in
  let pops =
    Array.of_list
      (List.mapi
         (fun id (city_idx, metro_index) ->
           let city = pool.(city_idx) in
           let coord =
             if metro_index = 1 then city.Rr_cities.Data.coord
             else jitter rng city.Rr_cities.Data.coord
           in
           Pop.make ~id ~city:city.Rr_cities.Data.name
             ~state:city.Rr_cities.Data.state ~metro_index coord)
         sites)
  in
  let n = Array.length pops in
  let dist u v = Rr_geo.Distance.miles pops.(u).Pop.coord pops.(v).Pop.coord in
  (* Ring backbone: tour the PoPs by angle around the footprint centroid,
     the shape of small national backbones in the Topology Zoo. *)
  let ring_backbone () =
    let mean_lat = Arrayx.fmean (Array.map (fun p -> Rr_geo.Coord.lat p.Pop.coord) pops) in
    let mean_lon = Arrayx.fmean (Array.map (fun p -> Rr_geo.Coord.lon p.Pop.coord) pops) in
    let angle i =
      atan2
        (Rr_geo.Coord.lat pops.(i).Pop.coord -. mean_lat)
        (Rr_geo.Coord.lon pops.(i).Pop.coord -. mean_lon)
    in
    let order =
      List.sort
        (fun a b -> Float.compare (angle a) (angle b))
        (Listx.range 0 n)
    in
    let g = Rr_graph.Graph.create n in
    (match order with
    | [] | [ _ ] -> ()
    | first :: _ ->
      let rec link = function
        | a :: (b :: _ as rest) ->
          Rr_graph.Graph.add_edge g a b;
          link rest
        | [ last ] -> if last <> first then Rr_graph.Graph.add_edge g last first
        | [] -> ()
      in
      link order);
    g
  in
  let backbone =
    match spec.style with
    | Mesh -> Rr_graph.Spanner.mst ~n ~dist
    | Ring -> if n >= 3 then ring_backbone () else Rr_graph.Spanner.mst ~n ~dist
  in
  let graph =
    if n <= 2 then backbone
    else begin
      let gabriel = Rr_graph.Spanner.gabriel ~n ~dist in
      let g = backbone in
      List.iter
        (fun (u, v) ->
          if Prng.float rng 1.0 < spec.mesh_fraction then
            Rr_graph.Graph.add_edge g u v)
        (Rr_graph.Graph.edges gabriel);
      g
    end
  in
  (* Hub shortcuts: ring the biggest metros together so large networks get
     the long-haul express links real backbones have. *)
  if spec.hub_links > 0 && n > 3 then begin
    let pop_weight i =
      match Rr_cities.Query.by_name ~state:pops.(i).Pop.state pops.(i).Pop.city with
      | Some c -> float_of_int c.Rr_cities.Data.population
      | None -> 0.0
    in
    let ranked =
      List.sort
        (fun a b -> Float.compare (pop_weight b) (pop_weight a))
        (Listx.range 0 n)
    in
    let hubs = Array.of_list (Listx.take (min n (spec.hub_links + 1)) ranked) in
    for i = 0 to Array.length hubs - 2 do
      if hubs.(i) <> hubs.(i + 1) then Rr_graph.Graph.add_edge graph hubs.(i) hubs.(i + 1)
    done
  end;
  Net.make ~name:spec.name ~tier:spec.tier ~states:spec.states pops graph
