(** BENCH_*.json files: the machine-readable benchmark format written
    by [bench/main.exe json] and read by [riskroute bench-compare].

    Schema 6 is statistics-aware: each kernel row carries mean/p50/p95
    over N repetitions plus per-run GC allocation deltas, and the meta
    block is self-describing (OCaml version, word size, resolved pool
    size, engine cache hit/miss totals, effective tree-LRU capacity,
    the PoP counts of the large-topology query kernels, and — when the
    Runtime_events consumer ran — GC pause p50/p99 in ns for minor and
    major collections) so baselines stay comparable across machines.
    Older files remain readable: schema-5 metas default the GC-pause
    quantiles to 0, schema-4 metas default the tree-cache/topology
    fields, schema-3 metas default the cache totals to 0, and schema-2
    files (single Bechamel OLS estimate per kernel) reuse the one
    estimate for every statistic. *)

type meta = {
  schema : int;
  domains : int;  (** resolved pool size the run actually used *)
  git_rev : string;
  hostname : string;
  ocaml_version : string;
  word_size : int;
  riskroute_domains : string;  (** raw RISKROUTE_DOMAINS value, "" if unset *)
  reps : int;
  warmups : int;
  cache_hits : int;
      (** total engine artifact-cache hits ([engine.cache.env_hit] +
          [engine.cache.tree_hit]) observed over the recorded run *)
  cache_misses : int;  (** same, for [engine.cache.*_miss] *)
  tree_cache_cap : int;
      (** effective tree-LRU capacity ([RISKROUTE_TREE_CACHE] after
          validation) the run used; 0 in pre-5 files *)
  topology_pops : string;
      (** PoP counts of the large-topology query kernels, comma-joined
          (e.g. ["1000,10000,50000"]); [""] in pre-5 files *)
  gc_minor_pause_p50_ns : float;
      (** minor-GC pause p50 (ns) over the recorded run, from the
          Runtime_events consumer; [0.] when it was off or pre-6 *)
  gc_minor_pause_p99_ns : float;
  gc_major_pause_p50_ns : float;
  gc_major_pause_p99_ns : float;
}

type result = {
  name : string;
  reps : int;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  min_ns : float;
  max_ns : float;
  gc_minor_words : float;  (** mean minor words allocated per run *)
  gc_major_words : float;
}

type file = { meta : meta; results : result list }

val schema : int
(** The schema this module writes (6). *)

val to_json_string : file -> string

val of_json_string : string -> (file, string) Stdlib.result

val write : string -> file -> unit

val read : string -> (file, string) Stdlib.result
(** [read path] loads and parses; IO errors become [Error]. *)

val find : file -> string -> result option
