(** Fig. 3: population density heat map of the CONUS and the
    nearest-neighbour population assignment for the Teliasonera
    network. *)

val run : Rr_engine.Context.t -> Format.formatter -> unit
