(** Fig. 12: Tier-1 intradomain risk-reduction time series during
    Hurricanes Irene, Katrina and Sandy. *)

val default_spec : Rr_forecast.Track.storm -> Rr_engine.Spec.t
(** Tier-1s, pair_cap 1000, stride 4. *)

val compute :
  Rr_engine.Context.t -> Rr_engine.Spec.t -> Riskroute.Casestudy.series list
(** One series per selected network; raises [Invalid_argument] when the
    spec carries no storm. Per-tick geographic trees come from the
    context cache (distance trees are advisory-independent, so every
    tick hits after the first). *)

val pp_series : Format.formatter -> Riskroute.Casestudy.series list -> unit
(** Tabular rendering shared with {!Fig13}. *)

val run : Rr_engine.Context.t -> Format.formatter -> unit
