type stats = {
  env_hits : int;
  env_misses : int;
  tree_hits : int;
  tree_misses : int;
  tree_evictions : int;
}

type t = {
  zoo : Rr_topology.Zoo.t;
  uses_shared_zoo : bool;
  riskmap : Rr_disaster.Riskmap.t Lazy.t;
  catalog : Rr_disaster.Catalog.t Lazy.t;
  blocks : Rr_census.Block.t array Lazy.t;
  lock : Mutex.t;
  envs : (string, Riskroute.Env.t) Hashtbl.t;
  trees : Rr_graph.Dijkstra.tree Lru.t;
  (* Fingerprint memos, keyed by physical identity: zoo networks and the
     geometry arrays shared by [Env.with_advisory] / [with_params]
     derivatives are long-lived, so a short bounded assoc list suffices. *)
  mutable net_memo : (Rr_topology.Net.t * string) list;
  mutable geo_memo : (float array * string) list;
  mutable risk_memo : (Riskroute.Env.t * string) list;
  mutable query_memo : (Rr_topology.Net.t * Rr_graph.Query.t) list;
  mutable continentals : (int * Rr_topology.Net.t) list;
  mutable interdomain : (Riskroute.Interdomain.t * Riskroute.Env.t) option;
  mutable env_hits : int;
  mutable env_misses : int;
  mutable tree_hits : int;
  mutable tree_misses : int;
  mutable tree_evictions : int;
}

let c_env_hit = Rr_obs.Counter.make "engine.cache.env_hit"
let c_env_miss = Rr_obs.Counter.make "engine.cache.env_miss"
let c_tree_hit = Rr_obs.Counter.make "engine.cache.tree_hit"
let c_tree_miss = Rr_obs.Counter.make "engine.cache.tree_miss"
let c_tree_evict = Rr_obs.Counter.make "engine.cache.tree_evictions"

let default_tree_cache_cap = 4096

let tree_cache_cap_from_env () =
  match Rr_obs.Envvar.(raw tree_cache) with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> Some n
    | _ -> None)

let create ?zoo ?tree_cache_cap () =
  let uses_shared_zoo = Option.is_none zoo in
  let zoo = match zoo with Some z -> z | None -> Rr_topology.Zoo.shared () in
  let cap =
    match tree_cache_cap with
    | Some c ->
      if c < 0 then invalid_arg "Context.create: negative tree_cache_cap";
      c
    | None -> Option.value (tree_cache_cap_from_env ()) ~default:default_tree_cache_cap
  in
  {
    zoo;
    uses_shared_zoo;
    riskmap = lazy (Rr_disaster.Riskmap.shared ());
    catalog = lazy (Rr_disaster.Catalog.shared ());
    blocks = lazy (Rr_census.Synthetic.shared ());
    lock = Mutex.create ();
    envs = Hashtbl.create 64;
    trees = Lru.create ~capacity:cap;
    net_memo = [];
    geo_memo = [];
    risk_memo = [];
    query_memo = [];
    continentals = [];
    interdomain = None;
    env_hits = 0;
    env_misses = 0;
    tree_hits = 0;
    tree_misses = 0;
    tree_evictions = 0;
  }

let shared_ctx = lazy (create ())
let shared () = Lazy.force shared_ctx

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let zoo t = t.zoo
let riskmap t = Lazy.force t.riskmap
let catalog t = Lazy.force t.catalog
let census_blocks t = Lazy.force t.blocks

let net t name = Rr_topology.Zoo.find t.zoo name

let require_net t name =
  match net t name with
  | Some n -> n
  | None ->
    let known =
      List.map
        (fun (n : Rr_topology.Net.t) -> n.name)
        (Rr_topology.Zoo.all_nets t.zoo)
    in
    failwith
      (Printf.sprintf "unknown network %S (try: %s)" name
         (String.concat ", " known))

let nets t (selection : Spec.networks) =
  match selection with
  | Spec.Tier1s -> t.zoo.tier1s
  | Spec.Regionals -> t.zoo.regionals
  | Spec.All_networks -> Rr_topology.Zoo.all_nets t.zoo
  | Spec.Named names -> List.map (require_net t) names
  | Spec.Interdomain ->
    invalid_arg "Context.nets: Interdomain selects the merged graph"

let memo_cap = 64

let bounded_memo_add memo entry =
  let memo = entry :: memo in
  if List.length memo > memo_cap then List.filteri (fun i _ -> i < memo_cap) memo
  else memo

let net_fp t n =
  match with_lock t (fun () -> List.find_opt (fun (m, _) -> m == n) t.net_memo) with
  | Some (_, fp) -> fp
  | None ->
    let fp = Fingerprint.net n in
    with_lock t (fun () -> t.net_memo <- bounded_memo_add t.net_memo (n, fp));
    fp

let geometry_fp t env_ =
  let miles = Riskroute.Env.arc_miles env_ in
  match
    with_lock t (fun () -> List.find_opt (fun (m, _) -> m == miles) t.geo_memo)
  with
  | Some (_, fp) -> fp
  | None ->
    let fp = Fingerprint.env_geometry env_ in
    with_lock t (fun () -> t.geo_memo <- bounded_memo_add t.geo_memo (miles, fp));
    fp

let risk_fp t env_ =
  match
    with_lock t (fun () -> List.find_opt (fun (e, _) -> e == env_) t.risk_memo)
  with
  | Some (_, fp) -> fp
  | None ->
    let fp = Fingerprint.env_risk env_ in
    with_lock t (fun () -> t.risk_memo <- bounded_memo_add t.risk_memo (env_, fp));
    fp

let env ?(params = Riskroute.Params.default) ?advisory t n =
  let key =
    Fingerprint.combine
      [ net_fp t n; Fingerprint.params params; Fingerprint.advisory advisory ]
  in
  match
    with_lock t (fun () ->
        match Hashtbl.find_opt t.envs key with
        | Some e ->
          t.env_hits <- t.env_hits + 1;
          Some e
        | None -> None)
  with
  | Some e ->
    Rr_obs.Counter.incr c_env_hit;
    e
  | None ->
    let built =
      Riskroute.Env.of_net ~params ~riskmap:(riskmap t) ?advisory n
    in
    Rr_obs.Counter.incr c_env_miss;
    with_lock t (fun () ->
        t.env_misses <- t.env_misses + 1;
        match Hashtbl.find_opt t.envs key with
        | Some e -> e (* concurrent build of the same key; results identical *)
        | None ->
          Hashtbl.replace t.envs key built;
          built)

let interdomain t =
  match with_lock t (fun () -> t.interdomain) with
  | Some v -> v
  | None ->
    let v =
      if t.uses_shared_zoo then Riskroute.Interdomain.shared ()
      else
        let merged = Riskroute.Interdomain.merge t.zoo.peering in
        (merged, Riskroute.Interdomain.env ~riskmap:(riskmap t) merged)
    in
    with_lock t (fun () ->
        match t.interdomain with
        | Some v -> v
        | None ->
          t.interdomain <- Some v;
          v)

let cached_tree t ~key ~compute =
  match
    with_lock t (fun () ->
        match Lru.find t.trees key with
        | Some tr ->
          t.tree_hits <- t.tree_hits + 1;
          Some tr
        | None -> None)
  with
  | Some tr ->
    Rr_obs.Counter.incr c_tree_hit;
    tr
  | None ->
    let tr = compute () in
    Rr_obs.Counter.incr c_tree_miss;
    let evicted = ref 0 in
    let result =
      with_lock t (fun () ->
          t.tree_misses <- t.tree_misses + 1;
          match Lru.find t.trees key with
          | Some existing -> existing
          | None ->
            let ev = Lru.add t.trees key tr in
            t.tree_evictions <- t.tree_evictions + ev;
            evicted := ev;
            tr)
    in
    if !evicted > 0 then begin
      Rr_obs.Counter.add c_tree_evict !evicted;
      Rr_obs.Flight.record ~kind:"evict" ~name:"engine.tree_lru"
        ~detail:(Printf.sprintf "evicted=%d" !evicted) ()
    end;
    result

let dist_trees t env_ =
  let fp = geometry_fp t env_ in
  let n = Riskroute.Env.node_count env_ in
  let off = Riskroute.Env.arc_off env_
  and tgt = Riskroute.Env.arc_tgt env_
  and miles = Riskroute.Env.arc_miles env_ in
  fun src ->
    cached_tree t
      ~key:(fp ^ ":d:" ^ string_of_int src)
      ~compute:(fun () ->
        Rr_graph.Dijkstra.single_source_flat ~n ~off ~tgt
          ~weight:(fun k -> Array.unsafe_get miles k)
          ~src)

let risk_trees t env_ =
  let fp = risk_fp t env_ in
  let n = Riskroute.Env.node_count env_ in
  let off = Riskroute.Env.arc_off env_
  and tgt = Riskroute.Env.arc_tgt env_
  and miles = Riskroute.Env.arc_miles env_
  and risk = Riskroute.Env.arc_risk env_ in
  let kappa = Riskroute.Env.mean_kappa env_ in
  fun src ->
    cached_tree t
      ~key:(fp ^ ":r:" ^ string_of_int src)
      ~compute:(fun () ->
        Rr_graph.Dijkstra.single_source_flat ~n ~off ~tgt
          ~weight:(fun k ->
            Array.unsafe_get miles k +. (kappa *. Array.unsafe_get risk k))
          ~src)

(* Wire an environment's query facade to the tree LRU: landmark
   distance trees then live alongside every other cached tree for the
   same geometry, so advisory ticks (which share the parent env's
   geometry and facade) reuse them for free. *)
let query t env_ =
  let q = Riskroute.Env.query env_ in
  Rr_graph.Query.set_tree_provider q (dist_trees t env_);
  q

(* Env-free facade for a network: continental graphs skip the dense
   O(n^2) distance matrix entirely — per-arc miles are computed once per
   undirected edge (mirrored through the reverse-CSR mate, matching the
   dense path bitwise), so the same geometry fingerprint and tree-cache
   namespace unify with any Env built over the same net. *)
let build_net_query t (net : Rr_topology.Net.t) =
  let n = Rr_topology.Net.pop_count net in
  let off, tgt = Rr_graph.Graph.to_csr net.Rr_topology.Net.graph in
  let mate = Rr_graph.Graph.csr_mates ~off ~tgt in
  let miles = Array.make (Array.length tgt) 0.0 in
  for u = 0 to n - 1 do
    for k = off.(u) to off.(u + 1) - 1 do
      let v = tgt.(k) in
      if u < v then begin
        let d =
          Rr_geo.Distance.miles
            (Rr_topology.Net.pop net u).Rr_topology.Pop.coord
            (Rr_topology.Net.pop net v).Rr_topology.Pop.coord
        in
        miles.(k) <- d;
        miles.(mate.(k)) <- d
      end
    done
  done;
  let q = Rr_graph.Query.create ~n ~off ~tgt ~miles () in
  let fp = Fingerprint.geometry ~n ~off ~tgt ~miles in
  Rr_graph.Query.set_tree_provider q (fun src ->
      cached_tree t
        ~key:(fp ^ ":d:" ^ string_of_int src)
        ~compute:(fun () ->
          Rr_graph.Dijkstra.single_source_flat ~n ~off ~tgt
            ~weight:(fun k -> Array.unsafe_get miles k)
            ~src));
  q

let net_query t net =
  match
    with_lock t (fun () ->
        List.find_opt (fun (m, _) -> m == net) t.query_memo)
  with
  | Some (_, q) -> q
  | None ->
    let q = build_net_query t net in
    with_lock t (fun () ->
        match List.find_opt (fun (m, _) -> m == net) t.query_memo with
        | Some (_, existing) -> existing
        | None ->
          t.query_memo <- bounded_memo_add t.query_memo (net, q);
          q)

let continental ?spec t ~pops =
  match with_lock t (fun () -> List.assoc_opt pops t.continentals) with
  | Some net -> net
  | None ->
    let spec =
      match spec with
      | Some s -> s
      | None ->
        Rr_topology.Builder.continental_defaults
          ~name:(Printf.sprintf "continental-%d" pops)
          ~pop_count:pops
    in
    let net =
      Rr_topology.Builder.continental
        ~rng:(Rr_util.Prng.create Rr_topology.Zoo.default_seed)
        spec
    in
    with_lock t (fun () ->
        match List.assoc_opt pops t.continentals with
        | Some existing -> existing
        | None ->
          t.continentals <- (pops, net) :: t.continentals;
          net)

let stats t =
  with_lock t (fun () ->
      {
        env_hits = t.env_hits;
        env_misses = t.env_misses;
        tree_hits = t.tree_hits;
        tree_misses = t.tree_misses;
        tree_evictions = t.tree_evictions;
      })

(* One locked read feeds both the JSON body below and the time-series
   sampler's stats section (Rr_obs.Series.set_stats_provider): flat
   (name, value) pairs in a fixed order. *)
let stats_fields t =
  let s, env_len, tree_len =
    with_lock t (fun () ->
        ( {
            env_hits = t.env_hits;
            env_misses = t.env_misses;
            tree_hits = t.tree_hits;
            tree_misses = t.tree_misses;
            tree_evictions = t.tree_evictions;
          },
          Hashtbl.length t.envs,
          Lru.length t.trees ))
  in
  [
    ("env.hits", s.env_hits);
    ("env.misses", s.env_misses);
    ("env.cache_length", env_len);
    ("tree.hits", s.tree_hits);
    ("tree.misses", s.tree_misses);
    ("tree.evictions", s.tree_evictions);
    ("tree.cache_length", tree_len);
    ("tree.cache_capacity", Lru.capacity t.trees);
  ]

let stats_json t =
  let f = stats_fields t in
  let g k = List.assoc k f in
  Printf.sprintf
    "{\n\
    \  \"schema\": 1,\n\
    \  \"env\": {\"hits\": %d, \"misses\": %d, \"cache_length\": %d},\n\
    \  \"tree\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d, \
     \"cache_length\": %d, \"cache_capacity\": %d}\n\
     }\n"
    (g "env.hits") (g "env.misses") (g "env.cache_length") (g "tree.hits")
    (g "tree.misses") (g "tree.evictions") (g "tree.cache_length")
    (g "tree.cache_capacity")

let tree_cache_length t = with_lock t (fun () -> Lru.length t.trees)
let tree_cache_capacity t = Lru.capacity t.trees
let env_cache_length t = with_lock t (fun () -> Hashtbl.length t.envs)
