(** The benchmark regression sentinel behind [riskroute bench-compare].

    Threshold model, per kernel [k]:

      tau_k = tau_base + min(0.5, p95/p50 - 1 of the baseline)

    i.e. a flat noise allowance everyone gets, widened by the spread the
    baseline itself measured — a jittery kernel earns a wider band, a
    stable microkernel gets a tight one. A kernel regresses when
    [current.p50 > baseline.p50 * (1 + tau_k)] and improves when
    [current.p50 < baseline.p50 / (1 + tau_k)]. Kernels present on only
    one side are reported but never fail the gate. *)

type verdict = Regressed | Improved | Within | Added | Removed

type row = {
  name : string;
  base_p50 : float;  (** ns; nan when [Added] *)
  cur_p50 : float;  (** ns; nan when [Removed] *)
  ratio : float;  (** cur/base; nan when either side is missing *)
  tau : float;  (** the threshold this kernel was judged against *)
  verdict : verdict;
}

val run : ?tau_base:float -> Benchfile.file -> Benchfile.file -> row list
(** [run baseline current] compares two bench files kernel by kernel;
    [tau_base] defaults to 0.25. Rows come back sorted by name,
    regressions first. *)

val any_regression : row list -> bool

val meta_warnings : Benchfile.meta -> Benchfile.meta -> string list
(** [meta_warnings baseline current] audits the recorded environments
    for comparability: one human-readable message per differing fact
    (pool size, hostname, OCaml version, word size, tree-cache
    capacity, topology PoP counts). Fields an older schema never
    recorded (empty / zero on either side) never warn. The CLI prints
    each with a ["riskroute: warning: "] prefix; none of them fail the
    gate. *)

val pp_table : Format.formatter -> row list -> unit
(** Render the regression table (one row per kernel). *)
