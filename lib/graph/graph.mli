(** Undirected simple graphs over integer nodes [0 .. n-1].

    Edge weights are deliberately {e not} stored: every RiskRoute query
    weighs the same physical topology differently (distance-only for
    shortest path, distance-plus-scaled-risk for bit-risk miles, with a
    per-source/destination impact factor), so traversals take a weight
    function instead. *)

type t

val create : int -> t
(** [create n] is an edgeless graph on [n] nodes. *)

val node_count : t -> int

val edge_count : t -> int

val add_edge : t -> int -> int -> unit
(** Add an undirected edge; self-loops are rejected with
    [Invalid_argument]; re-adding an existing edge is a no-op. *)

val remove_edge : t -> int -> int -> unit
(** Remove the edge if present. *)

val has_edge : t -> int -> int -> bool

val neighbors : t -> int -> int list
(** Neighbour list of a node (unspecified order, no duplicates). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Allocation-free neighbour iteration — the Dijkstra hot path. *)

val degree : t -> int -> int

val edges : t -> (int * int) list
(** Every edge once, as [(u, v)] with [u < v]. *)

val to_csr : t -> int array * int array
(** [(off, tgt)] in compressed-sparse-row form: the out-arcs of node [u]
    are [tgt.(off.(u)) .. tgt.(off.(u + 1) - 1)] (every undirected edge
    appears as two arcs). Arc order per node matches {!iter_neighbors},
    so traversals that switch between the two representations settle
    equal-cost ties identically. The arrays are fresh snapshots: later
    mutations of the graph are not reflected. *)

val csr_mates : off:int array -> tgt:int array -> int array
(** Reverse-CSR view of a {!to_csr} snapshot: [mate.(k)] is the index of
    the opposite arc [(v, u)] for arc [k = (u, v)]. Pairing is an
    involution ([mate.(mate.(k)) = k]). Lets backward traversals weigh
    the reverse graph through forward arc indices — needed because arc
    weights are asymmetric (target-node risk). Raises
    [Invalid_argument] if the arrays are not a simple undirected CSR. *)

val copy : t -> t
(** Independent deep copy. *)

val of_edges : int -> (int * int) list -> t
(** Graph on [n] nodes with the given edges. *)
