open Rr_util

type component = {
  center : Rr_geo.Coord.t;
  sigma_miles : float;
  weight : float;
}

type t = {
  kind : Event.kind;
  macro : component array;
  background : float;
  cluster_sites : int option;
  site_jitter_miles : float;
  city_anchor : float;
}

let c ~lat ~lon ~sigma ~w =
  { center = Rr_geo.Coord.make ~lat ~lon; sigma_miles = sigma; weight = w }

let hurricane_macro =
  [|
    c ~lat:29.3 ~lon:(-94.8) ~sigma:70.0 ~w:2.0;   (* Galveston / upper TX coast *)
    c ~lat:29.95 ~lon:(-90.07) ~sigma:60.0 ~w:2.2; (* New Orleans *)
    c ~lat:30.5 ~lon:(-87.6) ~sigma:55.0 ~w:1.6;    (* Mobile / Pensacola *)
    c ~lat:27.9 ~lon:(-82.5) ~sigma:65.0 ~w:1.8;   (* Tampa *)
    c ~lat:25.9 ~lon:(-80.3) ~sigma:60.0 ~w:1.8;    (* Miami *)
    c ~lat:32.3 ~lon:(-80.7) ~sigma:60.0 ~w:1.2;   (* Savannah / Charleston *)
    c ~lat:35.3 ~lon:(-75.8) ~sigma:70.0 ~w:1.2;   (* Outer Banks *)
    c ~lat:36.9 ~lon:(-76.2) ~sigma:55.0 ~w:0.9;    (* Norfolk *)
    c ~lat:40.8 ~lon:(-72.9) ~sigma:60.0 ~w:0.7;    (* Long Island / NE coast *)
  |]

let tornado_macro =
  [|
    c ~lat:35.47 ~lon:(-97.52) ~sigma:100.0 ~w:3.0; (* Oklahoma City *)
    c ~lat:37.69 ~lon:(-97.34) ~sigma:90.0 ~w:2.5; (* Wichita *)
    c ~lat:33.2 ~lon:(-97.1) ~sigma:90.0 ~w:2.0;   (* North Texas *)
    c ~lat:40.0 ~lon:(-98.0) ~sigma:100.0 ~w:2.0;   (* KS / NE line *)
    c ~lat:37.5 ~lon:(-93.0) ~sigma:90.0 ~w:1.5;   (* Missouri *)
    c ~lat:33.52 ~lon:(-86.8) ~sigma:80.0 ~w:1.5;  (* Dixie Alley: Birmingham *)
    c ~lat:32.3 ~lon:(-90.2) ~sigma:70.0 ~w:1.2;   (* Jackson MS *)
    c ~lat:34.3 ~lon:(-88.7) ~sigma:65.0 ~w:1.0;    (* Tupelo *)
    c ~lat:36.16 ~lon:(-86.78) ~sigma:75.0 ~w:0.8; (* Nashville *)
  |]

let storm_macro =
  [|
    c ~lat:41.59 ~lon:(-93.62) ~sigma:140.0 ~w:2.0; (* Des Moines *)
    c ~lat:39.1 ~lon:(-94.58) ~sigma:130.0 ~w:2.0;  (* Kansas City *)
    c ~lat:38.63 ~lon:(-90.2) ~sigma:130.0 ~w:2.0;  (* St. Louis *)
    c ~lat:41.88 ~lon:(-87.63) ~sigma:130.0 ~w:1.5; (* Chicago *)
    c ~lat:35.47 ~lon:(-97.52) ~sigma:110.0 ~w:1.5; (* Oklahoma City *)
    c ~lat:32.78 ~lon:(-96.8) ~sigma:110.0 ~w:1.2;  (* Dallas *)
    c ~lat:44.98 ~lon:(-93.27) ~sigma:130.0 ~w:1.5; (* Minneapolis *)
    c ~lat:36.16 ~lon:(-86.78) ~sigma:110.0 ~w:1.2; (* Nashville *)
    c ~lat:39.96 ~lon:(-83.0) ~sigma:110.0 ~w:1.2;  (* Columbus OH *)
    c ~lat:33.75 ~lon:(-84.39) ~sigma:105.0 ~w:1.0; (* Atlanta *)
    c ~lat:42.65 ~lon:(-73.75) ~sigma:100.0 ~w:0.8; (* Albany NY *)
  |]

let earthquake_macro =
  [|
    c ~lat:34.05 ~lon:(-118.24) ~sigma:280.0 ~w:3.0; (* Los Angeles *)
    c ~lat:37.77 ~lon:(-122.42) ~sigma:260.0 ~w:3.0; (* San Francisco *)
    c ~lat:47.61 ~lon:(-122.33) ~sigma:280.0 ~w:1.5; (* Seattle *)
    c ~lat:36.6 ~lon:(-89.5) ~sigma:260.0 ~w:1.5;    (* New Madrid *)
    c ~lat:40.76 ~lon:(-111.89) ~sigma:220.0 ~w:0.8; (* Wasatch front *)
    c ~lat:39.53 ~lon:(-119.81) ~sigma:200.0 ~w:0.8; (* Reno / Nevada *)
    c ~lat:32.78 ~lon:(-79.93) ~sigma:150.0 ~w:0.3;  (* Charleston SC *)
    c ~lat:44.5 ~lon:(-110.6) ~sigma:220.0 ~w:0.5;   (* Yellowstone *)
  |]

let wind_macro =
  [|
    c ~lat:41.88 ~lon:(-87.63) ~sigma:350.0 ~w:2.0;  (* upper Midwest *)
    c ~lat:32.78 ~lon:(-96.8) ~sigma:350.0 ~w:1.8;   (* southern plains *)
    c ~lat:33.75 ~lon:(-84.39) ~sigma:300.0 ~w:1.6;  (* Southeast *)
    c ~lat:40.71 ~lon:(-74.01) ~sigma:250.0 ~w:1.2;  (* Northeast *)
    c ~lat:39.1 ~lon:(-94.58) ~sigma:300.0 ~w:1.6;   (* central plains *)
    c ~lat:44.98 ~lon:(-93.27) ~sigma:300.0 ~w:1.2;  (* Minnesota *)
    c ~lat:39.74 ~lon:(-104.99) ~sigma:200.0 ~w:0.6; (* Front Range *)
  |]

let for_kind = function
  | Event.Fema_hurricane ->
    { kind = Event.Fema_hurricane; macro = hurricane_macro; background = 0.02;
      cluster_sites = Some 450; site_jitter_miles = 45.0; city_anchor = 0.5 }
  | Event.Fema_tornado ->
    { kind = Event.Fema_tornado; macro = tornado_macro; background = 0.03;
      cluster_sites = Some 800; site_jitter_miles = 32.0; city_anchor = 0.35 }
  | Event.Fema_storm ->
    { kind = Event.Fema_storm; macro = storm_macro; background = 0.05;
      cluster_sites = Some 1600; site_jitter_miles = 14.0; city_anchor = 0.5 }
  | Event.Noaa_earthquake ->
    { kind = Event.Noaa_earthquake; macro = earthquake_macro; background = 0.08;
      cluster_sites = None; site_jitter_miles = 0.0; city_anchor = 0.0 }
  | Event.Noaa_wind ->
    { kind = Event.Noaa_wind; macro = wind_macro; background = 0.08;
      cluster_sites = Some 3000; site_jitter_miles = 3.0; city_anchor = 0.7 }

(* Seasonal month weights (January first). *)
let month_weights = function
  | Event.Fema_hurricane ->
    (* Atlantic season June-November, peaking in September *)
    [| 0.0; 0.0; 0.0; 0.0; 0.01; 0.05; 0.09; 0.22; 0.34; 0.20; 0.08; 0.01 |]
  | Event.Fema_tornado ->
    (* spring peak *)
    [| 0.02; 0.03; 0.08; 0.18; 0.24; 0.17; 0.08; 0.05; 0.04; 0.04; 0.04; 0.03 |]
  | Event.Fema_storm ->
    (* warm-season convection *)
    [| 0.03; 0.04; 0.07; 0.11; 0.15; 0.17; 0.14; 0.11; 0.07; 0.05; 0.03; 0.03 |]
  | Event.Noaa_earthquake ->
    Array.make 12 (1.0 /. 12.0)
  | Event.Noaa_wind ->
    [| 0.04; 0.04; 0.07; 0.10; 0.13; 0.15; 0.14; 0.11; 0.08; 0.06; 0.04; 0.04 |]

let sample_month rng kind = 1 + Prng.categorical rng (month_weights kind)

(* Mixture density (per square mile) of the regional macro model at a
   point, used to weight which cities anchor event sites. *)
let macro_density t coord =
  let box_area = 3_100_000.0 (* approx CONUS square miles *) in
  let total_w = Arrayx.fsum (Array.map (fun comp -> comp.weight) t.macro) in
  let from_components =
    Array.fold_left
      (fun acc comp ->
        let d = Rr_geo.Distance.miles comp.center coord in
        let s2 = comp.sigma_miles *. comp.sigma_miles in
        acc +. (comp.weight /. total_w /. (2.0 *. Float.pi *. s2) *. exp (-0.5 *. d *. d /. s2)))
      0.0 t.macro
  in
  (t.background /. box_area) +. ((1.0 -. t.background) *. from_components)

let offset_by_miles rng coord sigma_miles =
  let dy, dx = Prng.gaussian2 rng in
  let dlat = sigma_miles *. dy /. 69.0 in
  let lat0 = Rr_geo.Coord.lat coord in
  let miles_per_lon = 69.0 *. Float.max 0.2 (cos (lat0 *. Float.pi /. 180.0)) in
  let dlon = sigma_miles *. dx /. miles_per_lon in
  let lat = Float.max (-89.0) (Float.min 89.0 (lat0 +. dlat)) in
  let lon =
    Float.max (-179.0) (Float.min 179.0 (Rr_geo.Coord.lon coord +. dlon))
  in
  Rr_geo.Bbox.clamp Rr_geo.Bbox.conus (Rr_geo.Coord.make ~lat ~lon)

let draw_from_macro rng t =
  if Prng.float rng 1.0 < t.background then begin
    let lat = Prng.uniform rng 25.0 49.0 in
    let lon = Prng.uniform rng (-124.5) (-67.0) in
    Rr_geo.Coord.make ~lat ~lon
  end
  else begin
    let weights = Array.map (fun comp -> comp.weight) t.macro in
    let comp = t.macro.(Prng.categorical rng weights) in
    offset_by_miles rng comp.center comp.sigma_miles
  end

let sampler t ~seed =
  match t.cluster_sites with
  | None -> fun rng -> draw_from_macro rng t
  | Some k ->
    (* Fixed site set drawn once: county centroids / report towns. A
       [city_anchor] share of sites sit at gazetteer cities (event records
       concentrate where people are), drawn with probability proportional
       to population x regional macro density. *)
    let site_rng = Prng.create seed in
    let city_weights =
      (* sqrt damping: report counts grow sub-linearly with population
         (one weather office covers a metro of any size). *)
      Array.map
        (fun (city : Rr_cities.Data.city) ->
          sqrt (float_of_int city.Rr_cities.Data.population)
          *. macro_density t city.Rr_cities.Data.coord)
        Rr_cities.Data.all
    in
    let total_city_weight = Arrayx.fsum city_weights in
    let draw_site rng =
      if total_city_weight > 0.0 && Prng.float rng 1.0 < t.city_anchor then
        Rr_cities.Data.all.(Prng.categorical rng city_weights).Rr_cities.Data.coord
      else draw_from_macro rng t
    in
    let sites = Array.init k (fun _ -> draw_site site_rng) in
    fun rng ->
      let site = sites.(Prng.int rng k) in
      if t.site_jitter_miles > 0.0 then offset_by_miles rng site t.site_jitter_miles
      else site
