(** CSV emission of the figure data series.

    The bench harness prints paper-shaped text; plotting tools want the
    underlying series. [write_all ctx dir] regenerates one CSV per plotted
    figure/table (table2.csv, fig8.csv, fig10.csv,
    fig12_<storm>.csv, fig13_<storm>.csv) with stable headers, ready for
    gnuplot / matplotlib. *)

val write_table2 : Rr_engine.Context.t -> string -> unit
(** [write_table2 ctx path] — columns: network, pops, rr_1e5, dr_1e5,
    rr_1e6, dr_1e6. *)

val write_fig8 : Rr_engine.Context.t -> string -> unit
(** Columns: network, distance_ratio, risk_ratio, pairs. *)

val write_fig10 : Rr_engine.Context.t -> string -> unit
(** Long format: network, links_added, fraction. *)

val write_fig12 : Rr_engine.Context.t -> string -> Rr_forecast.Track.storm -> unit
(** Long format: network, tick, issued, risk_reduction,
    distance_increase, pops_in_scope. *)

val write_fig13 : Rr_engine.Context.t -> string -> Rr_forecast.Track.storm -> unit
(** Same columns as {!write_fig12}, interdomain. *)

val write_all : Rr_engine.Context.t -> string -> string list
(** Write every series into the directory (created if missing); returns
    the file paths written. *)
