(** Tokeniser for GML text. *)

type token =
  | Key of string       (** bare identifier, e.g. [Latitude] *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Lbracket
  | Rbracket
  | Eof

exception Error of string * int
(** Message and byte offset of a lexical error. *)

val tokens : string -> token list
(** Tokenise a whole document. GML line comments (["#" to end of line])
    are skipped. Raises {!Error} on malformed input. *)
