(** Connectivity queries. *)

val components : Graph.t -> int array
(** Component label per node; labels are dense from 0. *)

val component_count : Graph.t -> int

val is_connected : Graph.t -> bool
(** True for the empty graph and any graph with one component. *)

val largest_component : Graph.t -> int list
(** Nodes of a largest connected component. *)
