type curve = {
  network : string;
  fractions : float array;
}

let default_spec = Rr_engine.Spec.make ~networks:Rr_engine.Spec.Tier1s ~k:8 ()

let compute ctx (spec : Rr_engine.Spec.t) =
  let max_links = Rr_engine.Spec.k ~default:8 spec in
  List.map
    (fun net ->
      let env = Rr_engine.Context.env ctx net in
      let picks =
        Riskroute.Augment.greedy ~k:max_links
          ~dist_trees:(Rr_engine.Context.dist_trees ctx env)
          ~risk_trees:(Rr_engine.Context.risk_trees ctx env)
          env
      in
      {
        network = net.Rr_topology.Net.name;
        fractions =
          Array.of_list
            (List.map (fun (p : Riskroute.Augment.pick) -> p.Riskroute.Augment.fraction) picks);
      })
    (Rr_engine.Context.nets ctx spec.networks)

let run ctx ppf =
  Format.fprintf ppf "Fig 10: fraction of original bit-risk miles vs links added@.";
  let curves = compute ctx default_spec in
  Format.fprintf ppf "%-18s" "Network";
  for k = 1 to 8 do
    Format.fprintf ppf " %6s" (Printf.sprintf "+%d" k)
  done;
  Format.fprintf ppf "@.";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-18s" c.network;
      Array.iter (fun f -> Format.fprintf ppf " %6.3f" f) c.fractions;
      Format.fprintf ppf "@.")
    curves
