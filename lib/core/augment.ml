open Rr_util

type pick = {
  u : int;
  v : int;
  total_after : float;
  fraction : float;
}

let c_scored = Rr_obs.Counter.make "augment.candidates_scored"

let c_rescore_full = Rr_obs.Counter.make "augment.rescore_full"

let c_rescore_incremental = Rr_obs.Counter.make "augment.rescore_incremental"

let c_pruned = Rr_obs.Counter.make "augment.pool_pruned"

let c_rounds = Rr_obs.Counter.make "augment.rounds"

let g_pool = Rr_obs.Gauge.make "augment.candidate_pool"

let node_ids n = Array.init n (fun i -> i)

(* All-pairs matrix of minimum path cost under a per-arc weight:
   [m.(i).(j)] is the best cost i -> j, infinity when disconnected. One
   single-source Dijkstra per row, swept by the domain pool. *)
let all_pairs_arcs env ~arc_weight =
  let n = Env.node_count env in
  let off = Env.arc_off env and tgt = Env.arc_tgt env in
  Parallel.map_array
    (fun src ->
      (Rr_graph.Dijkstra.single_source_flat ~n ~off ~tgt ~weight:arc_weight ~src)
        .Rr_graph.Dijkstra.dist)
    (node_ids n)

let matrix_total m =
  let n = Array.length m in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let mi = m.(i) in
    for j = 0 to n - 1 do
      let v = Array.unsafe_get mi j in
      if i <> j && v < infinity then acc := !acc +. v
    done
  done;
  !acc

let risk_arc_weight env =
  let kappa = Env.mean_kappa env in
  let miles = Env.arc_miles env and risk = Env.arc_risk env in
  fun k -> Array.unsafe_get miles k +. (kappa *. Array.unsafe_get risk k)

(* All-pairs rows from a caller-supplied tree provider (an engine cache)
   when given, else computed fresh. Cached [dist] arrays may be aliased
   as matrix rows: the greedy relaxation copies rows before mutating
   them, and everything else only reads. *)
let all_pairs_rows ?trees env ~arc_weight =
  match trees with
  | None -> all_pairs_arcs env ~arc_weight
  | Some f ->
    let n = Env.node_count env in
    Parallel.map_array (fun src -> (f src).Rr_graph.Dijkstra.dist) (node_ids n)

(* Pair-indexed mean-kappa weight, for arcs that are not in the graph
   yet (candidate links). *)
let risk_weight env =
  let kappa = Env.mean_kappa env in
  fun u v -> Env.edge_weight env ~kappa u v

let total_bit_risk ?risk_trees env =
  matrix_total
    (all_pairs_rows ?trees:risk_trees env ~arc_weight:(risk_arc_weight env))

(* Total after adding (u, v), via the single-edge insertion identity —
   computed without materialising the relaxed matrix. Accumulation runs
   in row-major order so the result is independent of how candidates are
   scheduled across domains. *)
let insertion_total ?(all_finite = false) m ~u ~v ~wuv ~wvu =
  let n = Array.length m in
  let mu = m.(u) and mv = m.(v) in
  let total = ref 0.0 in
  (* Candidate scoring is the greedy loop's dominant kernel: O(n^2) per
     candidate per round. Rows all have length n, so the unchecked reads
     are in bounds. Infinity propagates through [+.] exactly like the
     explicit finiteness guards it replaces. *)
  if all_finite then
    (* Connected-graph fast path: no finiteness tests, and the diagonal
       needs no exclusion — [m.(i).(i) = 0] and weights are
       non-negative, so its term is exactly [0.0] and adding it leaves
       the (non-negative) total bit-identical to the guarded loop. *)
    for i = 0 to n - 1 do
      let mi = m.(i) in
      let a = mi.(u) +. wuv and b = mi.(v) +. wvu in
      for j = 0 to n - 1 do
        let c1 = a +. Array.unsafe_get mv j in
        let c2 = b +. Array.unsafe_get mu j in
        total :=
          !total +. Float.min (Array.unsafe_get mi j) (Float.min c1 c2)
      done
    done
  else
  for i = 0 to n - 1 do
    let mi = m.(i) in
    let diu = mi.(u) and div_ = mi.(v) in
    if diu < infinity || div_ < infinity then begin
      let a = diu +. wuv and b = div_ +. wvu in
      for j = 0 to n - 1 do
        if i <> j then begin
          let c1 = a +. Array.unsafe_get mv j in
          let c2 = b +. Array.unsafe_get mu j in
          let best_ij = Float.min (Array.unsafe_get mi j) (Float.min c1 c2) in
          if best_ij < infinity then total := !total +. best_ij
        end
      done
    end
    else
      for j = 0 to n - 1 do
        if i <> j then begin
          let c = Array.unsafe_get mi j in
          if c < infinity then total := !total +. c
        end
      done
  done;
  !total

(* Relax the whole matrix through one new undirected edge (u, v): the
   only new paths pass through the edge in one of its two directions.
   Returns the new matrix plus, per row, the sorted columns that
   improved — the change set drives incremental candidate rescoring.
   Rows are independent, so the sweep runs on the pool; untouched rows
   are shared (rows are never mutated in place afterwards). *)
let relax_through_tracked m ~u ~v ~wuv ~wvu =
  let n = Array.length m in
  let mu = m.(u) and mv = m.(v) in
  let relaxed =
    Parallel.map_array
      (fun i ->
        let mi = m.(i) in
        let diu = mi.(u) and div_ = mi.(v) in
        if diu = infinity && div_ = infinity then (mi, [||])
        else begin
          let a = diu +. wuv and b = div_ +. wvu in
          let out = ref mi in
          let changed = ref [] in
          for j = n - 1 downto 0 do
            let c =
              Float.min (a +. Array.unsafe_get mv j) (b +. Array.unsafe_get mu j)
            in
            if c < Array.unsafe_get mi j then begin
              if !out == mi then out := Array.copy mi;
              Array.unsafe_set !out j c;
              changed := j :: !changed
            end
          done;
          (!out, Array.of_list !changed)
        end)
      (node_ids n)
  in
  (Array.map fst relaxed, Array.map snd relaxed)

let candidates ?(max_candidates = 400) ?(reduction_threshold = 0.5) ?dist_trees
    env =
 Rr_obs.with_span "augment.candidates" @@ fun () ->
  let graph = Env.graph env in
  let n = Rr_graph.Graph.node_count graph in
  let miles = Env.arc_miles env in
  let dist_matrix =
    all_pairs_rows ?trees:dist_trees env ~arc_weight:(fun k -> miles.(k))
  in
  let scored = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (Rr_graph.Graph.has_edge graph u v) then begin
        let direct = Env.link_miles env u v in
        let current = dist_matrix.(u).(v) in
        (* The paper keeps links yielding > 50% bit-miles reduction. *)
        if current < infinity && direct < reduction_threshold *. current then
          scored := (current -. direct, (u, v)) :: !scored
      end
    done
  done;
  List.sort (fun (a, _) (b, _) -> Float.compare b a) !scored
  |> Rr_util.Listx.take max_candidates
  |> List.map snd

let greedy ?(k = 1) ?max_candidates ?reduction_threshold ?dist_trees ?risk_trees
    env =
 Rr_obs.with_kernel "augment.greedy" @@ fun () ->
  let weight = risk_weight env in
  let graph = Rr_graph.Graph.copy (Env.graph env) in
  let m =
    ref (all_pairs_rows ?trees:risk_trees env ~arc_weight:(risk_arc_weight env))
  in
  let n = Array.length !m in
  let original = matrix_total !m in
  let pool =
    Array.of_list (candidates ?max_candidates ?reduction_threshold ?dist_trees env)
  in
  Rr_obs.Gauge.set g_pool (Array.length pool);
  (* Relaxation only lowers finite entries, so connectivity observed on
     the initial matrix licenses the fast scoring path for every round. *)
  let all_finite =
    Array.for_all (Array.for_all (fun x -> x < infinity)) !m
  in
  let alive = Array.make (Array.length pool) true in
  let score = Array.make (Array.length pool) infinity in
  let rescore_all () =
    Parallel.parallel_for (Array.length pool) (fun c ->
        if alive.(c) then begin
          let u, v = pool.(c) in
          score.(c) <-
            insertion_total ~all_finite !m ~u ~v ~wuv:(weight u v)
              ~wvu:(weight v u);
          Rr_obs.Counter.incr c_scored;
          Rr_obs.Counter.incr c_rescore_full
        end)
  in
  (* After inserting an edge, candidates whose endpoint rows/columns were
     untouched see the same via-terms as before: their total moves only
     on the cells the relaxation actually improved, so an O(|changes|)
     delta replaces the O(n^2) rescore. Candidates touching a changed
     row/column are rescored in full. *)
  let rescore_incremental m_old changed =
    let total_changed = Array.fold_left (fun a c -> a + Array.length c) 0 changed in
    if total_changed = 0 then ()
    else if total_changed * 8 > n * n then rescore_all ()
    else begin
      let row_changed = Array.map (fun c -> Array.length c > 0) changed in
      let col_changed = Array.make n false in
      Array.iter (Array.iter (fun j -> col_changed.(j) <- true)) changed;
      Parallel.parallel_for (Array.length pool) (fun c ->
          if alive.(c) then begin
            let a, b = pool.(c) in
            if row_changed.(a) || row_changed.(b) || col_changed.(a) || col_changed.(b)
            then begin
              score.(c) <-
                insertion_total ~all_finite !m ~u:a ~v:b ~wuv:(weight a b)
                  ~wvu:(weight b a);
              Rr_obs.Counter.incr c_scored;
              Rr_obs.Counter.incr c_rescore_full
            end
            else begin
              let wab = weight a b and wba = weight b a in
              let ma = !m.(a) and mb = !m.(b) in
              let delta = ref 0.0 in
              Array.iteri
                (fun i cols ->
                  if Array.length cols > 0 then begin
                    let mi_new = !m.(i) and mi_old = m_old.(i) in
                    let dia = mi_new.(a) and dib = mi_new.(b) in
                    Array.iter
                      (fun j ->
                        if i <> j then begin
                          let via =
                            Float.min (dia +. wab +. mb.(j)) (dib +. wba +. ma.(j))
                          in
                          let t_old = Float.min mi_old.(j) via in
                          let t_new = Float.min mi_new.(j) via in
                          let c_old = if t_old < infinity then t_old else 0.0 in
                          let c_new = if t_new < infinity then t_new else 0.0 in
                          delta := !delta +. (c_new -. c_old)
                        end)
                      cols
                  end)
                changed;
              score.(c) <- score.(c) +. !delta;
              Rr_obs.Counter.incr c_scored;
              Rr_obs.Counter.incr c_rescore_incremental
            end
          end)
    end
  in
  let picks = ref [] in
  (try
     rescore_all ();
     for round = 1 to k do
       (* Deterministic first-minimum over the pool order, matching the
          sequential scan this replaces. *)
       let best = ref (-1) in
       for c = 0 to Array.length pool - 1 do
         if alive.(c) && (!best < 0 || score.(c) < score.(!best)) then best := c
       done;
       if !best < 0 then raise Exit;
       Rr_obs.Counter.incr c_rounds;
       let u, v = pool.(!best) in
       let total_after = score.(!best) in
       Rr_graph.Graph.add_edge graph u v;
       alive.(!best) <- false;
       (* Prune candidates that are now actual edges — the chosen link
          plus any duplicate the pool may carry. *)
       Array.iteri
         (fun c (a, b) ->
           if alive.(c) && Rr_graph.Graph.has_edge graph a b then begin
             alive.(c) <- false;
             Rr_obs.Counter.incr c_pruned
           end)
         pool;
       picks :=
         { u; v; total_after; fraction = total_after /. original } :: !picks;
       if round < k then begin
         let m_old = !m in
         let relaxed, changed =
           relax_through_tracked m_old ~u ~v ~wuv:(weight u v) ~wvu:(weight v u)
         in
         m := relaxed;
         rescore_incremental m_old changed
       end
     done
   with Exit -> ());
  List.rev !picks
