type fit = { slope : float; intercept : float; r_squared : float; n : int }

let ols ~x ~y =
  let n = Array.length x in
  if n <> Array.length y then invalid_arg "Regression.ols: length mismatch";
  if n < 2 then invalid_arg "Regression.ols: need at least two points";
  let var_x = Descriptive.variance x in
  let mean_x = Descriptive.mean x and mean_y = Descriptive.mean y in
  if var_x = 0.0 then { slope = 0.0; intercept = mean_y; r_squared = 0.0; n }
  else begin
    let cov = Descriptive.covariance x y in
    let slope = cov /. var_x in
    let intercept = mean_y -. (slope *. mean_x) in
    let var_y = Descriptive.variance y in
    let r_squared =
      if var_y = 0.0 then 0.0
      else begin
        let r = Descriptive.correlation x y in
        r *. r
      end
    in
    { slope; intercept; r_squared; n }
  end

let r_squared ~x ~y = (ols ~x ~y).r_squared
