open Rr_stats

let check_float = Alcotest.(check (float 1e-9))

(* --- Descriptive --- *)

let test_mean_variance () =
  let a = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Descriptive.mean a);
  check_float "variance" 4.0 (Descriptive.variance a);
  check_float "stddev" 2.0 (Descriptive.stddev a)

let test_median_percentile () =
  check_float "odd median" 3.0 (Descriptive.median [| 1.0; 3.0; 9.0 |]);
  check_float "even median" 2.5 (Descriptive.median [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "p0" 1.0 (Descriptive.percentile [| 1.0; 2.0; 3.0 |] 0.0);
  check_float "p100" 3.0 (Descriptive.percentile [| 1.0; 2.0; 3.0 |] 100.0);
  check_float "p25 interpolates" 1.5 (Descriptive.percentile [| 1.0; 2.0; 3.0 |] 25.0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Descriptive.percentile: p out of range") (fun () ->
      ignore (Descriptive.percentile [| 1.0 |] 101.0))

let test_correlation () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  let y = Array.map (fun v -> (2.0 *. v) +. 1.0) x in
  check_float "perfect positive" 1.0 (Descriptive.correlation x y);
  let neg = Array.map (fun v -> -.v) x in
  check_float "perfect negative" (-1.0) (Descriptive.correlation x neg);
  check_float "constant side" 0.0 (Descriptive.correlation x [| 1.0; 1.0; 1.0; 1.0 |])

let test_covariance () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 2.0; 4.0; 6.0 |] in
  check_float "cov" (4.0 /. 3.0) (Descriptive.covariance x y)

(* --- Regression --- *)

let test_ols_exact_line () =
  let x = [| 0.0; 1.0; 2.0; 3.0 |] in
  let y = Array.map (fun v -> (3.0 *. v) -. 2.0) x in
  let fit = Regression.ols ~x ~y in
  check_float "slope" 3.0 fit.Regression.slope;
  check_float "intercept" (-2.0) fit.Regression.intercept;
  check_float "r2" 1.0 fit.Regression.r_squared

let test_ols_noisy () =
  let x = Array.init 50 float_of_int in
  let y = Array.mapi (fun i v -> v +. (if i mod 2 = 0 then 1.0 else -1.0)) x in
  let fit = Regression.ols ~x ~y in
  Alcotest.(check bool) "slope near 1" true (Float.abs (fit.Regression.slope -. 1.0) < 0.01);
  Alcotest.(check bool) "r2 high but < 1" true
    (fit.Regression.r_squared > 0.99 && fit.Regression.r_squared < 1.0)

let test_ols_degenerate () =
  let fit = Regression.ols ~x:[| 2.0; 2.0; 2.0 |] ~y:[| 1.0; 2.0; 3.0 |] in
  check_float "no x variance -> r2 0" 0.0 fit.Regression.r_squared;
  check_float "intercept is mean" 2.0 fit.Regression.intercept;
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Regression.ols: length mismatch") (fun () ->
      ignore (Regression.ols ~x:[| 1.0 |] ~y:[| 1.0; 2.0 |]));
  Alcotest.check_raises "too few"
    (Invalid_argument "Regression.ols: need at least two points") (fun () ->
      ignore (Regression.ols ~x:[| 1.0 |] ~y:[| 1.0 |]))

let r2_bounds =
  QCheck.Test.make ~name:"r_squared within [0, 1]" ~count:200
    QCheck.(pair (array_of_size (QCheck.Gen.int_range 2 20) (float_bound_exclusive 100.0))
              (array_of_size (QCheck.Gen.int_range 2 20) (float_bound_exclusive 100.0)))
    (fun (x, y) ->
      QCheck.assume (Array.length x = Array.length y);
      let r2 = Regression.r_squared ~x ~y in
      r2 >= 0.0 && r2 <= 1.0 +. 1e-9)

(* --- Divergence --- *)

let test_kl_identical () =
  let p = [| 0.2; 0.3; 0.5 |] in
  check_float "zero for identical" 0.0 (Divergence.kl ~p ~q:p)

let test_kl_positive () =
  let p = [| 0.9; 0.1 |] and q = [| 0.5; 0.5 |] in
  Alcotest.(check bool) "positive" true (Divergence.kl ~p ~q > 0.0)

let test_kl_normalises () =
  let p = [| 2.0; 3.0; 5.0 |] and q = [| 0.2; 0.3; 0.5 |] in
  check_float "scale invariant" 0.0 (Divergence.kl ~p ~q)

let test_kl_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Divergence.kl: length mismatch") (fun () ->
      ignore (Divergence.kl ~p:[| 1.0 |] ~q:[| 0.5; 0.5 |]))

let test_jensen_shannon () =
  let p = [| 1.0; 0.0 |] and q = [| 0.0; 1.0 |] in
  let js = Divergence.jensen_shannon ~p ~q in
  Alcotest.(check bool) "bounded by ln 2" true (js <= log 2.0 +. 1e-9 && js > 0.0);
  check_float "symmetric" js (Divergence.jensen_shannon ~p:q ~q:p)

let test_holdout_score () =
  let logs = [| -1.0; -2.0; -3.0 |] in
  check_float "negative mean log likelihood" 2.0
    (Divergence.holdout_score ~log_density:(fun i -> logs.(i)) ~n:3)

let kl_nonneg =
  QCheck.Test.make ~name:"KL non-negative" ~count:200
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.return 5) (float_range 0.01 10.0))
        (array_of_size (QCheck.Gen.return 5) (float_range 0.01 10.0)))
    (fun (p, q) -> Divergence.kl ~p ~q >= -1e-9)

(* --- Histogram --- *)

let test_histogram_counts () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 2.5; 2.6; 9.9 ];
  Alcotest.(check (array int)) "counts" [| 2; 2; 0; 0; 1 |] (Histogram.counts h);
  Alcotest.(check int) "total" 5 (Histogram.total h)

let test_histogram_clamping () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  Histogram.add h (-5.0);
  Histogram.add h 5.0;
  Alcotest.(check (array int)) "edge bins" [| 1; 1 |] (Histogram.counts h)

let test_histogram_densities () =
  let h = Histogram.create ~lo:0.0 ~hi:4.0 ~bins:4 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 3.5 ];
  let d = Histogram.densities h in
  check_float "sums to one" 1.0 (Rr_util.Arrayx.fsum d);
  check_float "bin 1" 0.5 d.(1)

let test_histogram_centers () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  check_float "first centre" 1.0 (Histogram.bin_center h 0);
  check_float "last centre" 9.0 (Histogram.bin_center h 4)

let () =
  Alcotest.run "rr_stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "median/percentile" `Quick test_median_percentile;
          Alcotest.test_case "correlation" `Quick test_correlation;
          Alcotest.test_case "covariance" `Quick test_covariance;
        ] );
      ( "regression",
        [
          Alcotest.test_case "exact line" `Quick test_ols_exact_line;
          Alcotest.test_case "noisy line" `Quick test_ols_noisy;
          Alcotest.test_case "degenerate inputs" `Quick test_ols_degenerate;
          QCheck_alcotest.to_alcotest r2_bounds;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "kl identical" `Quick test_kl_identical;
          Alcotest.test_case "kl positive" `Quick test_kl_positive;
          Alcotest.test_case "kl normalises" `Quick test_kl_normalises;
          Alcotest.test_case "kl mismatch" `Quick test_kl_mismatch;
          Alcotest.test_case "jensen-shannon" `Quick test_jensen_shannon;
          Alcotest.test_case "holdout score" `Quick test_holdout_score;
          QCheck_alcotest.to_alcotest kl_nonneg;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "clamping" `Quick test_histogram_clamping;
          Alcotest.test_case "densities" `Quick test_histogram_densities;
          Alcotest.test_case "centers" `Quick test_histogram_centers;
        ] );
    ]
