(** Abstract syntax of GML (Graph Modelling Language).

    GML is the interchange format of the Internet Topology Zoo, the
    paper's source of ISP maps. A document is a list of key/value pairs;
    values are integers, floats, quoted strings or nested lists. *)

type value =
  | Int of int
  | Float of float
  | String of string
  | List of (string * value) list

type t = (string * value) list
(** A whole document (normally a single ["graph"] entry). *)

val find : t -> string -> value option
(** First value bound to a key (GML allows repeated keys). *)

val find_all : t -> string -> value list
(** Every value bound to a key, in order. *)

val as_int : value -> int option
(** Ints, and floats with integral value. *)

val as_float : value -> float option
(** Floats and ints. *)

val as_string : value -> string option
val as_list : value -> (string * value) list option

val equal : t -> t -> bool
(** Structural equality (used by round-trip tests). *)
