(** Live observability plane: an in-process HTTP introspection endpoint.

    A tiny stdlib-only (Unix + threads) HTTP/1.1 server on a background
    thread, serving the {!Rr_obs} state of the {e running} process —
    everything the exit dumps produce, but while the work is still in
    flight:

    - [GET /metrics] — Prometheus exposition of the default registry
      (live domain-sharded counters, merged on read);
    - [GET /healthz] — process liveness plus a span-stall watchdog: any
      span open longer than the configured deadline flips the verdict to
      ["degraded"] (HTTP 503) and names the stalled spans;
    - [GET /stats] — the engine-context cache snapshot (env/tree LRU
      hits, misses, evictions, occupancy) as JSON, via the provider
      registered with {!set_stats_provider};
    - [GET /flight] — the {!Rr_obs.Flight} ring: the most recent engine
      events, merged across domains in deterministic order;
    - [GET /series] — the {!Rr_obs.Series} sampler ring: timestamped
      metric deltas over the run so far (empty unless [--series] /
      [RISKROUTE_SERIES] armed the sampler);
    - [GET /explain?net=..&src=..&dst=..] — a route-provenance record
      (per-arc Eq. 1 decomposition, baseline diff, cache provenance) via
      the provider registered with {!set_explain_provider}.

    Enabled with [--live PORT] on the CLI and bench harness, or
    [RISKROUTE_LIVE=PORT] in the environment (see
    {!autostart_from_env}). Starting the server turns {!Rr_obs}
    recording on — live metrics over a disabled registry would serve
    zeros. All handlers are read-only snapshots; program output and
    results are unchanged by serving. *)

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;  (** extra headers, e.g. [Allow] on 405 *)
  body : string;
}

val handle : string -> response
(** Route a request path to its response — the pure core of the server,
    exposed so tests can hit endpoints without a socket. Unknown paths
    get a 404; [/] returns a plain-text endpoint index. *)

val render : response -> string
(** The full HTTP/1.1 response bytes for a {!response}. *)

val set_stats_provider : (unit -> string) -> unit
(** Register the JSON body served on [/stats]. The CLI and bench wire
    this to [Rr_engine.Context.stats_json] of the shared context; the
    default body is a JSON error note. *)

val set_explain_provider :
  ((string * string) list -> (string, string) result) -> unit
(** Register the [/explain] handler. The provider receives the decoded
    query parameters (percent- and ['+']-decoding already applied, in
    request order) and returns the JSON body, or a client-error message
    rendered as a 400 JSON object. Exceptions become 500s. The CLI and
    bench wire this to [Rr_explain] over their shared context; the
    default provider returns an error note. *)

val parse_query : string -> (string * string) list
(** Decode an [application/x-www-form-urlencoded] query string (the part
    after ['?']). Exposed for tests. *)

val set_stall_deadline : float -> unit
(** Seconds an open span may run before [/healthz] reports the process
    degraded. Default 60; [RISKROUTE_STALL_DEADLINE] overrides it.
    Raises [Invalid_argument] unless positive. *)

val stall_deadline : unit -> float

val healthz : unit -> bool * string
(** The watchdog verdict right now: [(healthy, json_body)]. Uses
    {!Rr_obs.Clock.monotonic}, so tests drive transitions with the
    swappable clock. *)

val start : ?addr:string -> port:int -> unit -> (int, string) result
(** Start the listener on [addr] (default ["127.0.0.1"]) and [port]
    ([0] picks an ephemeral port) and serve on a background thread.
    Returns the actually-bound port. Fails if already running or the
    port is taken. Enables {!Rr_obs} recording. *)

val port : unit -> int option
(** The bound port while running. *)

val running : unit -> bool

val stop : unit -> unit
(** Shut the listener down and join the server thread. Idempotent. *)

val autostart_from_env : unit -> unit
(** Start the server when [RISKROUTE_LIVE] is set to a port number; an
    invalid value or a failed bind warns through {!Rr_obs.Log} and the
    process carries on un-served. *)
