type row = {
  network : string;
  pops : int;
  rr_1e5 : float;
  dr_1e5 : float;
  rr_1e6 : float;
  dr_1e6 : float;
}

let paper =
  [
    ("Level3", (0.075, 0.015, 0.258, 0.136));
    ("AT&T", (0.207, 0.045, 0.340, 0.168));
    ("Deutsche Telekom", (0.245, 0.130, 0.384, 0.446));
    ("NTT", (0.187, 0.040, 0.295, 0.127));
    ("Sprint", (0.222, 0.079, 0.352, 0.191));
    ("Tinet", (0.177, 0.045, 0.347, 0.195));
    ("Teliasonera", (0.223, 0.068, 0.336, 0.226));
  ]

let default_spec =
  Rr_engine.Spec.make ~networks:Rr_engine.Spec.Tier1s ~pair_cap:6000 ()

let compute ctx (spec : Rr_engine.Spec.t) =
  let pair_cap = Rr_engine.Spec.pair_cap ~default:6000 spec in
  List.map
    (fun net ->
      let ratios lambda_h =
        let params =
          Riskroute.Params.with_lambda_h lambda_h Riskroute.Params.default
        in
        let env = Rr_engine.Context.env ~params ctx net in
        Riskroute.Ratios.intradomain ~pair_cap
          ~trees:(Rr_engine.Context.dist_trees ctx env)
          env
      in
      let r5 = ratios 1e5 and r6 = ratios 1e6 in
      {
        network = net.Rr_topology.Net.name;
        pops = Rr_topology.Net.pop_count net;
        rr_1e5 = r5.Riskroute.Ratios.risk_reduction;
        dr_1e5 = r5.Riskroute.Ratios.distance_increase;
        rr_1e6 = r6.Riskroute.Ratios.risk_reduction;
        dr_1e6 = r6.Riskroute.Ratios.distance_increase;
      })
    (Rr_engine.Context.nets ctx spec.networks)

let run ctx ppf =
  Format.fprintf ppf
    "Table 2: Tier-1 bit-risk to bit-miles trade-off (ours | paper)@.";
  Format.fprintf ppf "%-18s %6s | %-27s | %-27s@." "Network" "#PoPs"
    "lambda_h = 1e5 (rr, dr)" "lambda_h = 1e6 (rr, dr)";
  List.iter
    (fun row ->
      let prr5, pdr5, prr6, pdr6 =
        match List.assoc_opt row.network paper with
        | Some v -> v
        | None -> (nan, nan, nan, nan)
      in
      Format.fprintf ppf
        "%-18s %6d | %.3f %.3f (paper %.3f %.3f) | %.3f %.3f (paper %.3f %.3f)@."
        row.network row.pops row.rr_1e5 row.dr_1e5 prr5 pdr5 row.rr_1e6
        row.dr_1e6 prr6 pdr6)
    (compute ctx default_spec)
