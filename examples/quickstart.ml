(* Quickstart: build a small custom ISP from scratch, attach risk data,
   and compare shortest-path routing with RiskRoute.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe a small ISP: five PoPs on the Gulf/East coast corridor. *)
  let cities =
    [ "New Orleans"; "Houston"; "Atlanta"; "Nashville"; "Charlotte" ]
  in
  let coords =
    List.map
      (fun name ->
        match Rr_cities.Query.by_name name with
        | Some city -> city.Rr_cities.Data.coord
        | None -> failwith ("unknown city " ^ name))
      cities
    |> Array.of_list
  in
  (* Links: a coastal chain plus an inland bypass through Nashville. *)
  let graph =
    Rr_graph.Graph.of_edges 5
      [ (0, 1); (0, 2); (2, 4); (2, 3); (3, 4); (1, 3) ]
  in
  (* 2. Attach impact and risk. Impact c_i: share of customers behind each
     PoP; historical risk o_h: from the shared 1970-2010 disaster surface. *)
  let riskmap = Rr_disaster.Riskmap.shared () in
  let historical = Array.map (Rr_disaster.Riskmap.risk_at riskmap) coords in
  let impact = [| 0.3; 0.25; 0.25; 0.1; 0.1 |] in
  let env = Riskroute.Env.make ~graph ~coords ~impact ~historical () in
  (* 3. Route Houston (1) -> Charlotte (4) both ways. *)
  let name i = List.nth cities i in
  let describe label = function
    | None -> Printf.printf "%s: disconnected\n" label
    | Some (route : Riskroute.Router.route) ->
      Printf.printf "%s: %-40s  %6.0f bit-miles  %8.0f bit-risk-miles\n" label
        (String.concat " -> " (List.map name route.Riskroute.Router.path))
        route.Riskroute.Router.bit_miles route.Riskroute.Router.bit_risk_miles
  in
  print_endline "Quickstart: Houston -> Charlotte on a 5-PoP Gulf-coast ISP";
  describe "shortest " (Riskroute.Router.shortest env ~src:1 ~dst:4);
  describe "riskroute" (Riskroute.Router.riskroute env ~src:1 ~dst:4);
  (* 4. Network-wide ratios (Eqs. 5-6). *)
  let r = Riskroute.Ratios.intradomain env in
  Printf.printf
    "network-wide: risk reduction %.1f%%, distance increase %.1f%% (%d pairs)\n"
    (100.0 *. r.Riskroute.Ratios.risk_reduction)
    (100.0 *. r.Riskroute.Ratios.distance_increase)
    r.Riskroute.Ratios.pairs;
  (* 5. Ask RiskRoute which single link would most cut aggregate risk. *)
  match Riskroute.Augment.greedy ~k:1 env with
  | [] -> print_endline "no candidate link clears the 50% bit-miles-reduction rule"
  | pick :: _ ->
    Printf.printf "best new link: %s -- %s (aggregate bit-risk drops to %.2f)\n"
      (name pick.Riskroute.Augment.u) (name pick.Riskroute.Augment.v)
      pick.Riskroute.Augment.fraction
