(* Hashtbl over an intrusive doubly-linked recency list: O(1) find,
   promote, insert and evict. The list head is most-recently used. *)

type 'a node = {
  key : string;
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  { capacity; table = Hashtbl.create (max 16 capacity); head = None; tail = None }

let capacity t = t.capacity

let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.value

let mem t key = Hashtbl.mem t.table key

(* Recency-ordered (most-recent first) and read-only with respect to
   recency: migration sweeps ([Context.patched_env]) must be able to
   enumerate entries without reshuffling the eviction order. *)
let fold t ~init ~f =
  let rec loop acc = function
    | None -> acc
    | Some node -> loop (f acc node.key node.value) node.next
  in
  loop init t.head

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table key;
    true

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some old ->
    unlink t old;
    Hashtbl.remove t.table key
  | None -> ());
  let node = { key; value; prev = None; next = None } in
  Hashtbl.replace t.table key node;
  push_front t node;
  let evicted = ref 0 in
  while Hashtbl.length t.table > t.capacity do
    evict_tail t;
    incr evicted
  done;
  !evicted
