let coord lat lon = Rr_geo.Coord.make ~lat ~lon

(* a tight cluster near Kansas plus one outlier on the west coast *)
let cluster_events =
  Array.append
    (Array.init 50 (fun i ->
         coord (38.0 +. (0.01 *. float_of_int (i mod 7))) (-97.0 +. (0.01 *. float_of_int (i mod 5)))))
    [| coord 37.77 (-122.42) |]

(* --- Kernel --- *)

let test_kernel_peak () =
  let at0 = Rr_kde.Kernel.density ~bandwidth:10.0 ~dist_miles:0.0 in
  Alcotest.(check (float 1e-12)) "peak value" (1.0 /. (2.0 *. Float.pi *. 100.0)) at0

let test_kernel_monotone () =
  let d1 = Rr_kde.Kernel.density ~bandwidth:10.0 ~dist_miles:5.0 in
  let d2 = Rr_kde.Kernel.density ~bandwidth:10.0 ~dist_miles:15.0 in
  Alcotest.(check bool) "decreasing in distance" true (d1 > d2)

let test_kernel_log_consistent () =
  let d = Rr_kde.Kernel.density ~bandwidth:25.0 ~dist_miles:40.0 in
  let ld = Rr_kde.Kernel.log_density ~bandwidth:25.0 ~dist_miles:40.0 in
  Alcotest.(check (float 1e-9)) "log matches" (log d) ld

let test_kernel_support () =
  Alcotest.(check (float 1e-9)) "4 bandwidths" 40.0 (Rr_kde.Kernel.support_miles ~bandwidth:10.0)

(* --- Density --- *)

let test_density_validation () =
  Alcotest.check_raises "no events" (Invalid_argument "Density.fit: no events")
    (fun () -> ignore (Rr_kde.Density.fit ~bandwidth:10.0 [||]));
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Density.fit: non-positive bandwidth") (fun () ->
      ignore (Rr_kde.Density.fit ~bandwidth:0.0 cluster_events))

let test_density_higher_at_cluster () =
  let density = Rr_kde.Density.fit ~bandwidth:20.0 cluster_events in
  let at_cluster = Rr_kde.Density.eval density (coord 38.0 (-97.0)) in
  let far = Rr_kde.Density.eval density (coord 45.0 (-70.0)) in
  Alcotest.(check bool) "cluster hotter" true (at_cluster > 100.0 *. far)

let test_density_event_count () =
  let density = Rr_kde.Density.fit ~bandwidth:20.0 cluster_events in
  Alcotest.(check int) "count" 51 (Rr_kde.Density.event_count density);
  Alcotest.(check (float 1e-9)) "bandwidth" 20.0 (Rr_kde.Density.bandwidth density)

let test_density_integrates_to_one () =
  (* numerically integrate over a fine grid around the cluster *)
  let density = Rr_kde.Density.fit ~bandwidth:5.0 (Array.sub cluster_events 0 50) in
  let step_deg = 0.05 in
  let acc = ref 0.0 in
  let lat0 = 36.0 and lat1 = 40.0 and lon0 = -99.5 and lon1 = -94.5 in
  let lat = ref lat0 in
  while !lat < lat1 do
    let lon = ref lon0 in
    let cell_h = step_deg *. 69.0 in
    let cell_w = step_deg *. 69.0 *. cos (!lat *. Float.pi /. 180.0) in
    while !lon < lon1 do
      acc := !acc +. (Rr_kde.Density.eval density (coord !lat !lon) *. cell_h *. cell_w);
      lon := !lon +. step_deg
    done;
    lat := !lat +. step_deg
  done;
  Alcotest.(check bool) "mass ~ 1" true (Float.abs (!acc -. 1.0) < 0.05)

let test_log_eval_floored () =
  let density = Rr_kde.Density.fit ~bandwidth:5.0 (Array.sub cluster_events 0 50) in
  let far = Rr_kde.Density.log_eval density (coord 48.0 (-70.0)) in
  Alcotest.(check bool) "finite even far away" true (Float.is_finite far)

(* --- Grid_density --- *)

let test_grid_density_matches_exact () =
  let bandwidth = 60.0 in
  let events = Array.sub cluster_events 0 50 in
  let exact = Rr_kde.Density.fit ~bandwidth events in
  let grid = Rr_kde.Grid_density.fit ~bandwidth events in
  let probe = coord 38.5 (-96.5) in
  let e = Rr_kde.Density.eval exact probe in
  let g = Rr_kde.Grid_density.eval grid probe in
  Alcotest.(check bool) "within 25%" true (Float.abs (g -. e) /. e < 0.25)

let test_grid_density_mass () =
  let grid = Rr_kde.Grid_density.fit ~bandwidth:30.0 (Array.sub cluster_events 0 50) in
  (* sum over cells x cell area should be ~1; cells are ~0.1 x 0.1 deg *)
  let g = Rr_kde.Grid_density.grid grid in
  let rows = Rr_geo.Grid.rows g and cols = Rr_geo.Grid.cols g in
  let box = Rr_geo.Grid.bbox g in
  let lat_span = box.Rr_geo.Bbox.max_lat -. box.Rr_geo.Bbox.min_lat in
  let lon_span = box.Rr_geo.Bbox.max_lon -. box.Rr_geo.Bbox.min_lon in
  let cell_h = lat_span /. float_of_int rows *. 69.0 in
  let mass =
    Rr_geo.Grid.fold g ~init:0.0 ~f:(fun acc row col v ->
        let lat = Rr_geo.Coord.lat (Rr_geo.Grid.coord_of_cell g row col) in
        let cell_w =
          lon_span /. float_of_int cols *. 69.0 *. cos (lat *. Float.pi /. 180.0)
        in
        acc +. (v *. cell_h *. cell_w))
  in
  Alcotest.(check bool) "unit mass" true (Float.abs (mass -. 1.0) < 0.1)

let test_grid_density_outside () =
  let grid = Rr_kde.Grid_density.fit ~bandwidth:30.0 (Array.sub cluster_events 0 50) in
  Alcotest.(check (float 1e-12)) "zero outside raster" 0.0
    (Rr_kde.Grid_density.eval grid (coord 55.0 (-100.0)))

(* --- Bandwidth selection --- *)

let synthetic_cloud sigma n =
  let rng = Rr_util.Prng.create 77L in
  Array.init n (fun _ ->
      let dy, dx = Rr_util.Prng.gaussian2 rng in
      coord (38.0 +. (sigma *. dy /. 69.0)) (-97.0 +. (sigma *. dx /. 54.0)))

let test_bandwidth_reasonable () =
  let events = synthetic_cloud 40.0 600 in
  let selection =
    Rr_kde.Bandwidth.select ~candidates:[| 2.0; 8.0; 25.0; 70.0; 200.0 |]
      ~max_events:600 events
  in
  (* for a 40-mile Gaussian cloud the CV optimum should be an interior
     candidate, not a degenerate extreme *)
  Alcotest.(check bool) "interior optimum" true
    (selection.Rr_kde.Bandwidth.best >= 8.0 && selection.Rr_kde.Bandwidth.best <= 70.0)

let test_bandwidth_scores_shape () =
  let events = synthetic_cloud 40.0 300 in
  let selection =
    Rr_kde.Bandwidth.select ~candidates:[| 5.0; 30.0; 120.0 |] ~max_events:300 events
  in
  Alcotest.(check int) "one score per candidate" 3
    (Array.length selection.Rr_kde.Bandwidth.scores);
  let best_score =
    Array.fold_left (fun acc (_, s) -> Float.min acc s) infinity
      selection.Rr_kde.Bandwidth.scores
  in
  let chosen_score =
    snd
      (Array.get selection.Rr_kde.Bandwidth.scores
         (let rec find i =
            if fst selection.Rr_kde.Bandwidth.scores.(i) = selection.Rr_kde.Bandwidth.best
            then i
            else find (i + 1)
          in
          find 0))
  in
  Alcotest.(check (float 1e-9)) "best has lowest score" best_score chosen_score

let test_bandwidth_subsampling () =
  let events = synthetic_cloud 40.0 2000 in
  let selection =
    Rr_kde.Bandwidth.select ~candidates:[| 10.0; 40.0 |] ~max_events:200 events
  in
  Alcotest.(check int) "capped" 200 selection.Rr_kde.Bandwidth.events_used

let test_bandwidth_validation () =
  let events = synthetic_cloud 40.0 10 in
  Alcotest.check_raises "too few folds"
    (Invalid_argument "Bandwidth.select: need at least two folds") (fun () ->
      ignore (Rr_kde.Bandwidth.select ~folds:1 events));
  Alcotest.check_raises "no candidates"
    (Invalid_argument "Bandwidth.select: no candidates") (fun () ->
      ignore (Rr_kde.Bandwidth.select ~candidates:[||] events))

let test_default_candidates_cover_table1 () =
  let lo = Rr_util.Arrayx.fmin Rr_kde.Bandwidth.default_candidates in
  let hi = Rr_util.Arrayx.fmax Rr_kde.Bandwidth.default_candidates in
  List.iter
    (fun kind ->
      let b = Rr_disaster.Event.paper_bandwidth kind in
      Alcotest.(check bool) "covered" true (b >= lo && b <= hi))
    Rr_disaster.Event.all_kinds

let () =
  Alcotest.run "rr_kde"
    [
      ( "kernel",
        [
          Alcotest.test_case "peak" `Quick test_kernel_peak;
          Alcotest.test_case "monotone" `Quick test_kernel_monotone;
          Alcotest.test_case "log consistent" `Quick test_kernel_log_consistent;
          Alcotest.test_case "support" `Quick test_kernel_support;
        ] );
      ( "density",
        [
          Alcotest.test_case "validation" `Quick test_density_validation;
          Alcotest.test_case "higher at cluster" `Quick test_density_higher_at_cluster;
          Alcotest.test_case "metadata" `Quick test_density_event_count;
          Alcotest.test_case "integrates to one" `Slow test_density_integrates_to_one;
          Alcotest.test_case "log floor" `Quick test_log_eval_floored;
        ] );
      ( "grid_density",
        [
          Alcotest.test_case "matches exact" `Quick test_grid_density_matches_exact;
          Alcotest.test_case "unit mass" `Quick test_grid_density_mass;
          Alcotest.test_case "outside raster" `Quick test_grid_density_outside;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "reasonable optimum" `Slow test_bandwidth_reasonable;
          Alcotest.test_case "scores shape" `Quick test_bandwidth_scores_shape;
          Alcotest.test_case "subsampling" `Quick test_bandwidth_subsampling;
          Alcotest.test_case "validation" `Quick test_bandwidth_validation;
          Alcotest.test_case "candidates cover Table 1" `Quick
            test_default_candidates_cover_table1;
        ] );
    ]
