(** Pretty-printer for GML documents.

    [parse (to_string doc)] is structurally equal to [doc] (round-trip
    property, covered by qcheck tests). *)

val to_string : Ast.t -> string

val to_file : string -> Ast.t -> unit
