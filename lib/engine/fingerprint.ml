type t = string

(* Canonical encodings: every field is written with an unambiguous,
   length-prefixed binary form so that distinct structures can never
   serialise to the same byte string. Floats go through their IEEE-754
   bit patterns — the caches must treat 1e5 and 1e5 +. ulp as different
   keys, because the derived artifacts differ bitwise. *)

let add_int buf i =
  Buffer.add_int64_le buf (Int64.of_int i)

let add_float buf f =
  Buffer.add_int64_le buf (Int64.bits_of_float f)

let add_string buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_float_array buf a =
  add_int buf (Array.length a);
  Array.iter (add_float buf) a

let add_int_array buf a =
  add_int buf (Array.length a);
  Array.iter (add_int buf) a

let digest buf = Digest.to_hex (Digest.string (Buffer.contents buf))

let params (p : Riskroute.Params.t) =
  let buf = Buffer.create 64 in
  add_string buf "params";
  add_float buf p.lambda_h;
  add_float buf p.lambda_f;
  add_float buf p.risk_scale;
  add_float buf p.rho_tropical;
  add_float buf p.rho_hurricane;
  digest buf

let advisory (a : Rr_forecast.Advisory.t option) =
  let buf = Buffer.create 128 in
  (match a with
  | None -> add_string buf "advisory:none"
  | Some a ->
    add_string buf "advisory";
    add_string buf a.storm;
    add_int buf a.number;
    add_string buf a.issued;
    add_float buf (Rr_geo.Coord.lat a.center);
    add_float buf (Rr_geo.Coord.lon a.center);
    add_float buf a.hurricane_radius_miles;
    add_float buf a.tropical_radius_miles);
  digest buf

let net (n : Rr_topology.Net.t) =
  let buf = Buffer.create 4096 in
  add_string buf "net";
  add_string buf n.name;
  add_int buf (match n.tier with Rr_topology.Net.Tier1 -> 0 | Regional -> 1);
  add_int buf (List.length n.states);
  List.iter (add_string buf) n.states;
  add_int buf (Array.length n.pops);
  Array.iter
    (fun (p : Rr_topology.Pop.t) ->
      add_float buf (Rr_geo.Coord.lat p.coord);
      add_float buf (Rr_geo.Coord.lon p.coord))
    n.pops;
  let edges = Rr_graph.Graph.edges n.graph in
  add_int buf (List.length edges);
  List.iter
    (fun (u, v) ->
      add_int buf u;
      add_int buf v)
    edges;
  digest buf

let geometry ~n ~off ~tgt ~miles =
  let buf = Buffer.create 65536 in
  add_string buf "env-geometry";
  add_int buf n;
  add_int_array buf off;
  add_int_array buf tgt;
  add_float_array buf miles;
  digest buf

let env_geometry env =
  geometry ~n:(Riskroute.Env.node_count env)
    ~off:(Riskroute.Env.arc_off env) ~tgt:(Riskroute.Env.arc_tgt env)
    ~miles:(Riskroute.Env.arc_miles env)

let env_risk env =
  let buf = Buffer.create 65536 in
  add_string buf "env-risk";
  add_string buf (env_geometry env);
  add_float_array buf (Riskroute.Env.arc_risk env);
  add_float buf (Riskroute.Env.mean_kappa env);
  digest buf

(* A patched environment's risk identity chains instead of rehashing:
   parent fingerprint plus the exact sparse delta determines the child
   risk vectors, so hashing (parent, delta) is injective on content
   while costing O(changed) rather than O(arcs) per advisory tick. *)
let risk_delta ~parent ~indices ~values =
  let buf = Buffer.create 256 in
  add_string buf "risk-delta";
  add_string buf parent;
  add_int_array buf indices;
  add_float_array buf values;
  digest buf

let combine parts =
  let buf = Buffer.create 256 in
  add_string buf "combine";
  add_int buf (List.length parts);
  List.iter (add_string buf) parts;
  digest buf
