(** Backup-route computation (Sec. 3.1: "RiskRoute fits very nicely into
    the IP Fast Reroute framework by offering an algorithm for
    backup/repair path calculation").

    For a primary RiskRoute path, pre-compute a repair path for every
    single-link and single-node failure along it, each repair again
    minimising bit-risk miles on the surviving topology. *)

type repair = {
  failed_link : (int * int) option;  (** the failed primary link, or *)
  failed_node : int option;          (** the failed intermediate node *)
  route : Router.route option;       (** [None] when the failure partitions src/dst *)
}

type plan = {
  primary : Router.route;
  repairs : repair list;  (** one per primary link, then one per intermediate node *)
}

val plan : Env.t -> src:int -> dst:int -> plan option
(** [None] when src and dst are disconnected to begin with. *)

val coverage : plan -> float
(** Fraction of single failures for which a repair path exists. *)

val worst_stretch : plan -> float
(** Largest [repair bit-miles / primary bit-miles] over covered failures
    (1.0 when there are none). *)

val route_avoiding :
  Env.t -> src:int -> dst:int -> banned_links:(int * int) list ->
  banned_nodes:int list -> Router.route option
(** The underlying primitive: minimum bit-risk route that avoids the
    given links (either direction) and nodes. *)
