type 'a t = {
  mutable keys : float array;
  mutable vals : 'a array;
  mutable size : int;
}

let create ?(capacity = 64) () =
  { keys = Array.make (max 1 capacity) 0.0; vals = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h v =
  let cap = Array.length h.keys in
  if h.size >= cap then begin
    let keys' = Array.make (2 * cap) 0.0 in
    Array.blit h.keys 0 keys' 0 h.size;
    h.keys <- keys';
    let vals' = Array.make (2 * cap) v in
    Array.blit h.vals 0 vals' 0 h.size;
    h.vals <- vals'
  end;
  (* First push: materialise the value array now that we have a witness. *)
  if Array.length h.vals = 0 then h.vals <- Array.make (Array.length h.keys) v

(* Sift indices stay within [0, size), and [size <= capacity] is the
   structure's core invariant, so the unchecked accesses below are in
   bounds; they keep the decrease-key-free Dijkstra inner loop lean. *)
let swap h i j =
  let keys = h.keys and vals = h.vals in
  let k = Array.unsafe_get keys i in
  Array.unsafe_set keys i (Array.unsafe_get keys j);
  Array.unsafe_set keys j k;
  let v = Array.unsafe_get vals i in
  Array.unsafe_set vals i (Array.unsafe_get vals j);
  Array.unsafe_set vals j v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if Array.unsafe_get h.keys i < Array.unsafe_get h.keys parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let keys = h.keys in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest =
    if l < h.size && Array.unsafe_get keys l < Array.unsafe_get keys i then l
    else i
  in
  let smallest =
    if r < h.size && Array.unsafe_get keys r < Array.unsafe_get keys smallest
    then r
    else smallest
  in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let push h key v =
  grow h v;
  h.keys.(h.size) <- key;
  h.vals.(h.size) <- v;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let min_key h =
  if h.size = 0 then invalid_arg "Heap.min_key: empty heap";
  h.keys.(0)

let min_elt h =
  if h.size = 0 then invalid_arg "Heap.min_elt: empty heap";
  h.vals.(0)

let drop_min h =
  if h.size = 0 then invalid_arg "Heap.drop_min: empty heap";
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.keys.(0) <- h.keys.(h.size);
    h.vals.(0) <- h.vals.(h.size);
    sift_down h 0
  end

let pop_min h =
  if h.size = 0 then None
  else begin
    let key = h.keys.(0) and v = h.vals.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.keys.(0) <- h.keys.(h.size);
      h.vals.(0) <- h.vals.(h.size);
      sift_down h 0
    end;
    Some (key, v)
  end

let clear h = h.size <- 0

let ensure_capacity h cap =
  let cur = Array.length h.keys in
  if cap > cur then begin
    let keys' = Array.make cap 0.0 in
    Array.blit h.keys 0 keys' 0 h.size;
    h.keys <- keys';
    if Array.length h.vals > 0 then begin
      let vals' = Array.make cap h.vals.(0) in
      Array.blit h.vals 0 vals' 0 h.size;
      h.vals <- vals'
    end
  end
