type repair = {
  failed_link : (int * int) option;
  failed_node : int option;
  route : Router.route option;
}

type plan = {
  primary : Router.route;
  repairs : repair list;
}

let banned_cost = 1e15

let route_avoiding env ~src ~dst ~banned_links ~banned_nodes =
  let kappa = Env.kappa env src dst in
  let node_banned = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace node_banned v ()) banned_nodes;
  let link_banned = Hashtbl.create 8 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace link_banned (u, v) ();
      Hashtbl.replace link_banned (v, u) ())
    banned_links;
  let weight u v =
    if Hashtbl.mem node_banned u || Hashtbl.mem node_banned v then banned_cost
    else if Hashtbl.mem link_banned (u, v) then banned_cost
    else Env.edge_weight env ~kappa u v
  in
  match Rr_graph.Dijkstra.single_pair (Env.graph env) ~weight ~src ~dst with
  | Some (cost, path) when cost < banned_cost ->
    Some (Router.route_of_path env path)
  | Some _ | None -> None

let plan env ~src ~dst =
  match Router.riskroute env ~src ~dst with
  | None -> None
  | Some primary ->
    let path = Array.of_list primary.Router.path in
    let link_repairs =
      List.init
        (Array.length path - 1)
        (fun i ->
          let link = (path.(i), path.(i + 1)) in
          {
            failed_link = Some link;
            failed_node = None;
            route = route_avoiding env ~src ~dst ~banned_links:[ link ] ~banned_nodes:[];
          })
    in
    let node_repairs =
      List.init
        (max 0 (Array.length path - 2))
        (fun i ->
          let node = path.(i + 1) in
          {
            failed_link = None;
            failed_node = Some node;
            route = route_avoiding env ~src ~dst ~banned_links:[] ~banned_nodes:[ node ];
          })
    in
    Some { primary; repairs = link_repairs @ node_repairs }

let coverage plan =
  match plan.repairs with
  | [] -> 1.0
  | repairs ->
    let covered =
      List.length (List.filter (fun r -> r.route <> None) repairs)
    in
    float_of_int covered /. float_of_int (List.length repairs)

let worst_stretch plan =
  List.fold_left
    (fun acc r ->
      match r.route with
      | Some route when plan.primary.Router.bit_miles > 0.0 ->
        Float.max acc (route.Router.bit_miles /. plan.primary.Router.bit_miles)
      | Some _ | None -> acc)
    1.0 plan.repairs
