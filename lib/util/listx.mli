(** List helpers shared across the code base. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (or the whole list if shorter). *)

val range : int -> int -> int list
(** [range lo hi] is [[lo; lo+1; ...; hi-1]]; empty when [hi <= lo]. *)

val pairs : 'a list -> ('a * 'a) list
(** All unordered pairs of distinct elements, in order of appearance. *)

val group_by : ('a -> 'b) -> 'a list -> ('b * 'a list) list
(** Stable grouping by key; keys appear in first-occurrence order, each
    group preserves input order. *)

val min_by : ('a -> float) -> 'a list -> 'a option
(** Element minimising the score (first on ties); [None] on empty. *)

val max_by : ('a -> float) -> 'a list -> 'a option
(** Element maximising the score (first on ties); [None] on empty. *)

val sum_by : ('a -> float) -> 'a list -> float
(** Sum of scores. *)
