open Rr_util

(* Exposure raster: coarse cells so that metro-level co-location shows up
   as shared exposure. *)
let raster_rows = 25

let raster_cols = 58

let exposure_vector ~riskmap net =
  let grid = Rr_geo.Grid.create Rr_geo.Bbox.conus ~rows:raster_rows ~cols:raster_cols in
  Array.iter
    (fun (p : Rr_topology.Pop.t) ->
      let risk = Rr_disaster.Riskmap.risk_at riskmap p.Rr_topology.Pop.coord in
      match Rr_geo.Grid.cell_of_coord grid p.Rr_topology.Pop.coord with
      | None -> ()
      | Some (row, col) ->
        (* 3x3 splat so that PoPs on either side of a cell boundary still
           register as shared exposure *)
        for dr = -1 to 1 do
          for dc = -1 to 1 do
            let r = row + dr and c = col + dc in
            if r >= 0 && r < raster_rows && c >= 0 && c < raster_cols then begin
              let w = if dr = 0 && dc = 0 then 0.5 else 0.0625 in
              Rr_geo.Grid.add grid r c (risk *. w)
            end
          done
        done)
    net.Rr_topology.Net.pops;
  Rr_geo.Grid.fold grid ~init:[] ~f:(fun acc _ _ v -> v :: acc)
  |> Array.of_list

let exposure_correlation ~riskmap a b =
  let va = exposure_vector ~riskmap a and vb = exposure_vector ~riskmap b in
  Rr_stats.Descriptive.correlation va vb

type joint = {
  samples : int;
  a_hit : float;
  b_hit : float;
  both_hit : float;
  independence_gap : float;
}

let joint_outage ?rng ?(samples = 2000) ?(damage_radius_miles = 80.0) ~kind a b =
  let rng = match rng with Some r -> r | None -> Prng.create 0x5A4EDL in
  if samples <= 0 then invalid_arg "Shared_risk.joint_outage: samples <= 0";
  let model = Rr_disaster.Model.for_kind kind in
  let sample = Rr_disaster.Model.sampler model ~seed:(Prng.int64 rng) in
  let hits net center =
    Array.exists
      (fun (p : Rr_topology.Pop.t) ->
        Rr_geo.Distance.miles center p.Rr_topology.Pop.coord <= damage_radius_miles)
      net.Rr_topology.Net.pops
  in
  let na = ref 0 and nb = ref 0 and nboth = ref 0 in
  for _ = 1 to samples do
    let center = sample rng in
    let ha = hits a center and hb = hits b center in
    if ha then incr na;
    if hb then incr nb;
    if ha && hb then incr nboth
  done;
  let f n = float_of_int n /. float_of_int samples in
  {
    samples;
    a_hit = f !na;
    b_hit = f !nb;
    both_hit = f !nboth;
    independence_gap = f !nboth -. (f !na *. f !nb);
  }

let least_shared_peer ~riskmap ~candidates net =
  Listx.min_by (fun candidate -> exposure_correlation ~riskmap net candidate) candidates
