(** Fig. 10: estimated risk reduction as links are added — fraction of
    the original aggregate bit-risk miles after adding 1..8 greedy links,
    for every Tier-1 network. *)

type curve = {
  network : string;
  fractions : float array;  (** index k-1 = after k added links *)
}

val default_spec : Rr_engine.Spec.t
(** Tier-1 networks, [k] = 8 links. *)

val compute : Rr_engine.Context.t -> Rr_engine.Spec.t -> curve list

val run : Rr_engine.Context.t -> Format.formatter -> unit
