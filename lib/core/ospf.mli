(** OSPF/IS-IS link-weight export (Sec. 3.1: "create link weights that
    are a composite metric based on operational objectives and
    RiskRoute").

    Shortest-path-first protocols route on per-link integer costs, so the
    RiskRoute metric has to be flattened: the per-pair impact factor
    [kappa_ij] is replaced by the network mean, each directed node-risk
    term is split onto the link, and the result is quantised to the
    16-bit cost space. {!fidelity} measures how much of RiskRoute's
    behaviour survives the flattening. *)

val max_ospf_weight : int
(** 65535, the RFC 2328 cost ceiling. *)

val link_weights : ?max_weight:int -> Env.t -> ((int * int) * int) list
(** One entry per directed link [(u, v)] (both directions present),
    quantised so the largest weight hits [max_weight] (default
    {!max_ospf_weight}) and every weight is at least 1. *)

val spf_route : Env.t -> weights:((int * int) * int) list -> src:int ->
  dst:int -> Router.route option
(** Route computed by a standard SPF over the exported integer weights,
    evaluated under the environment's true metrics. *)

type fidelity = {
  pairs : int;
  exact_match : float;    (** share of pairs whose SPF path IS the RiskRoute path *)
  risk_gap : float;       (** mean bit-risk-miles excess of SPF vs RiskRoute *)
}

val fidelity : ?pair_cap:int -> ?seed:int64 -> Env.t -> fidelity
(** Sampled comparison of OSPF-exported routing against exact per-pair
    RiskRoute. *)
