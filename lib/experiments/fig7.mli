(** Fig. 7: RiskRoute versus shortest path between the Houston, TX and
    Boston, MA PoPs of the Level3 network, at lambda_h = 1e4 and 1e5. *)

type comparison = {
  lambda_h : float;
  shortest : Riskroute.Router.route;
  riskroute : Riskroute.Router.route;
}

val compute : unit -> comparison list
(** Raises [Failure] if the shared Level3 map lacks Houston or Boston
    PoPs or they are disconnected. *)

val run : Format.formatter -> unit
