(** Geographic coordinates (WGS84 latitude / longitude, degrees).

    Latitude grows northwards in [[-90, 90]]; longitude grows eastwards in
    [[-180, 180]] (continental-US longitudes are negative). *)

type t = { lat : float; lon : float }

val make : lat:float -> lon:float -> t
(** Build a coordinate; raises [Invalid_argument] outside the valid
    ranges. *)

val lat : t -> float
val lon : t -> float

val equal : t -> t -> bool
(** Exact float equality — adequate because all coordinates in this code
    base come from a fixed gazetteer or deterministic generators. *)

val compare : t -> t -> int
(** Lexicographic (lat, lon) order. *)

val midpoint : t -> t -> t
(** Great-circle midpoint. *)

val interpolate : t -> t -> float -> t
(** [interpolate a b f] is the point a fraction [f] in [[0, 1]] along the
    great circle from [a] to [b]. *)

val to_radians : t -> float * float
(** (lat, lon) in radians. *)

val pp : Format.formatter -> t -> unit
(** Prints as ["(41.88N, 87.63W)"]. *)

val to_string : t -> string
