type t = {
  min_lat : float;
  max_lat : float;
  min_lon : float;
  max_lon : float;
}

let make ~min_lat ~max_lat ~min_lon ~max_lon =
  if min_lat > max_lat || min_lon > max_lon then
    invalid_arg "Bbox.make: inverted bounds";
  { min_lat; max_lat; min_lon; max_lon }

let conus = make ~min_lat:24.5 ~max_lat:49.5 ~min_lon:(-125.0) ~max_lon:(-66.5)

let contains t c =
  let lat = Coord.lat c and lon = Coord.lon c in
  lat >= t.min_lat && lat <= t.max_lat && lon >= t.min_lon && lon <= t.max_lon

let of_coords = function
  | [] -> invalid_arg "Bbox.of_coords: empty list"
  | c :: rest ->
    let init = (Coord.lat c, Coord.lat c, Coord.lon c, Coord.lon c) in
    let min_lat, max_lat, min_lon, max_lon =
      List.fold_left
        (fun (a, b, c', d) p ->
          ( Float.min a (Coord.lat p),
            Float.max b (Coord.lat p),
            Float.min c' (Coord.lon p),
            Float.max d (Coord.lon p) ))
        init rest
    in
    make ~min_lat ~max_lat ~min_lon ~max_lon

let expand t ~degrees =
  make
    ~min_lat:(Float.max (-90.0) (t.min_lat -. degrees))
    ~max_lat:(Float.min 90.0 (t.max_lat +. degrees))
    ~min_lon:(Float.max (-180.0) (t.min_lon -. degrees))
    ~max_lon:(Float.min 180.0 (t.max_lon +. degrees))

let center t =
  Coord.make
    ~lat:((t.min_lat +. t.max_lat) /. 2.0)
    ~lon:((t.min_lon +. t.max_lon) /. 2.0)

let clamp t c =
  Coord.make
    ~lat:(Float.max t.min_lat (Float.min t.max_lat (Coord.lat c)))
    ~lon:(Float.max t.min_lon (Float.min t.max_lon (Coord.lon c)))
