(** Multiple Routing Configurations with RiskRoute link weights.

    Sec. 3.1 of the paper: "backup configurations that use a composite
    link metric that includes RiskRoute can be computed off line
    following the method described in [Kvalbein et al., Fast IP Network
    Recovery using Multiple Routing Configurations]".

    This is a simplified MRC: nodes are partitioned into [k] groups, and
    configuration [c] {e isolates} group [c] — no transit traffic may
    pass through an isolated node (it can still source or sink). When a
    node fails, traffic switches to the configuration isolating it, whose
    routes provably avoid the failure. Each configuration's non-isolated
    subgraph is kept connected during construction, so intra-survivor
    routing always succeeds. *)

type t

val build : ?k:int -> Env.t -> t
(** Partition into [k] (default 4) configurations. Nodes whose isolation
    would disconnect the survivors in every group are left uncovered
    (articulation points of sparse graphs — see {!coverage}). *)

val config_count : t -> int

val config_of_node : t -> int -> int option
(** The configuration isolating a node, [None] when uncovered. *)

val coverage : t -> float
(** Fraction of nodes isolated by some configuration. *)

val route : t -> config:int -> src:int -> dst:int -> Router.route option
(** Minimum bit-risk route in one configuration: isolated nodes of that
    configuration cannot be transited (endpoints exempt). *)

val recovery_route : t -> failed:int -> src:int -> dst:int -> Router.route option
(** Pre-computed recovery: route in the configuration that isolates
    [failed]. [None] when [failed] is uncovered, an endpoint, or the
    survivors are partitioned. Guaranteed (and tested) not to transit
    [failed]. *)
