type stats = {
  env_hits : int;
  env_misses : int;
  env_patched : int;
  tree_hits : int;
  tree_misses : int;
  tree_evictions : int;
  settled_nodes : int;
  delta_patched_arcs : int;
  delta_trees_kept : int;
  delta_trees_repaired : int;
  delta_trees_evicted : int;
}

type t = {
  zoo : Rr_topology.Zoo.t;
  uses_shared_zoo : bool;
  riskmap : Rr_disaster.Riskmap.t Lazy.t;
  catalog : Rr_disaster.Catalog.t Lazy.t;
  blocks : Rr_census.Block.t array Lazy.t;
  lock : Mutex.t;
  envs : (string, Riskroute.Env.t) Hashtbl.t;
  trees : Rr_graph.Dijkstra.tree Lru.t;
  (* Fingerprint memos, keyed by physical identity: zoo networks and the
     geometry arrays shared by [Env.with_advisory] / [with_params]
     derivatives are long-lived, so a short bounded assoc list suffices. *)
  mutable net_memo : (Rr_topology.Net.t * string) list;
  mutable geo_memo : (float array * string) list;
  mutable risk_memo : (Riskroute.Env.t * string) list;
  mutable query_memo : (Rr_topology.Net.t * Rr_graph.Query.t) list;
  mutable continentals : (int * Rr_topology.Net.t) list;
  mutable interdomain : (Riskroute.Interdomain.t * Riskroute.Env.t) option;
  mutable env_hits : int;
  mutable env_misses : int;
  mutable env_patched : int;
  mutable tree_hits : int;
  mutable tree_misses : int;
  mutable tree_evictions : int;
  mutable settled_nodes : int;
  mutable delta_patched_arcs : int;
  mutable delta_trees_kept : int;
  mutable delta_trees_repaired : int;
  mutable delta_trees_evicted : int;
}

let c_env_hit = Rr_obs.Counter.make "engine.cache.env_hit"
let c_env_miss = Rr_obs.Counter.make "engine.cache.env_miss"
let c_tree_hit = Rr_obs.Counter.make "engine.cache.tree_hit"
let c_tree_miss = Rr_obs.Counter.make "engine.cache.tree_miss"
let c_tree_evict = Rr_obs.Counter.make "engine.cache.tree_evictions"
let c_settled = Rr_obs.Counter.make "engine.tree_settled_nodes"
let c_delta_envs = Rr_obs.Counter.make "engine.delta.patched_envs"
let c_delta_arcs = Rr_obs.Counter.make "engine.delta.patched_arcs"
let c_delta_kept = Rr_obs.Counter.make "engine.delta.trees_kept"
let c_delta_repaired = Rr_obs.Counter.make "engine.delta.trees_repaired"
let c_delta_evicted = Rr_obs.Counter.make "engine.delta.trees_evicted"

let default_tree_cache_cap = 4096

let tree_cache_cap_from_env () =
  match Rr_obs.Envvar.(raw tree_cache) with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> Some n
    | _ -> None)

let default_repair_frontier = 0.25

(* Fraction of the node count above which an incremental tree repair is
   not worth attempting (the fresh run would settle about as much);
   silently keeps the default on malformed values, like the cache knob. *)
let repair_frontier_fraction =
  lazy
    (match Rr_obs.Envvar.(trimmed repair_frontier) with
    | None -> default_repair_frontier
    | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 && f <= 1.0 -> f
      | _ -> default_repair_frontier))

let create ?zoo ?tree_cache_cap () =
  let uses_shared_zoo = Option.is_none zoo in
  let zoo = match zoo with Some z -> z | None -> Rr_topology.Zoo.shared () in
  let cap =
    match tree_cache_cap with
    | Some c ->
      if c < 0 then invalid_arg "Context.create: negative tree_cache_cap";
      c
    | None -> Option.value (tree_cache_cap_from_env ()) ~default:default_tree_cache_cap
  in
  {
    zoo;
    uses_shared_zoo;
    riskmap = lazy (Rr_disaster.Riskmap.shared ());
    catalog = lazy (Rr_disaster.Catalog.shared ());
    blocks = lazy (Rr_census.Synthetic.shared ());
    lock = Mutex.create ();
    envs = Hashtbl.create 64;
    trees = Lru.create ~capacity:cap;
    net_memo = [];
    geo_memo = [];
    risk_memo = [];
    query_memo = [];
    continentals = [];
    interdomain = None;
    env_hits = 0;
    env_misses = 0;
    env_patched = 0;
    tree_hits = 0;
    tree_misses = 0;
    tree_evictions = 0;
    settled_nodes = 0;
    delta_patched_arcs = 0;
    delta_trees_kept = 0;
    delta_trees_repaired = 0;
    delta_trees_evicted = 0;
  }

let shared_ctx = lazy (create ())
let shared () = Lazy.force shared_ctx

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let zoo t = t.zoo
let riskmap t = Lazy.force t.riskmap
let catalog t = Lazy.force t.catalog
let census_blocks t = Lazy.force t.blocks

let net t name = Rr_topology.Zoo.find t.zoo name

let require_net t name =
  match net t name with
  | Some n -> n
  | None ->
    let known =
      List.map
        (fun (n : Rr_topology.Net.t) -> n.name)
        (Rr_topology.Zoo.all_nets t.zoo)
    in
    failwith
      (Printf.sprintf "unknown network %S (try: %s)" name
         (String.concat ", " known))

let nets t (selection : Spec.networks) =
  match selection with
  | Spec.Tier1s -> t.zoo.tier1s
  | Spec.Regionals -> t.zoo.regionals
  | Spec.All_networks -> Rr_topology.Zoo.all_nets t.zoo
  | Spec.Named names -> List.map (require_net t) names
  | Spec.Interdomain ->
    invalid_arg "Context.nets: Interdomain selects the merged graph"

let memo_cap = 64

let bounded_memo_add memo entry =
  let memo = entry :: memo in
  if List.length memo > memo_cap then List.filteri (fun i _ -> i < memo_cap) memo
  else memo

let net_fp t n =
  match with_lock t (fun () -> List.find_opt (fun (m, _) -> m == n) t.net_memo) with
  | Some (_, fp) -> fp
  | None ->
    let fp = Fingerprint.net n in
    with_lock t (fun () -> t.net_memo <- bounded_memo_add t.net_memo (n, fp));
    fp

let geometry_fp t env_ =
  let miles = Riskroute.Env.arc_miles env_ in
  match
    with_lock t (fun () -> List.find_opt (fun (m, _) -> m == miles) t.geo_memo)
  with
  | Some (_, fp) -> fp
  | None ->
    let fp = Fingerprint.env_geometry env_ in
    with_lock t (fun () -> t.geo_memo <- bounded_memo_add t.geo_memo (miles, fp));
    fp

let risk_fp t env_ =
  match
    with_lock t (fun () -> List.find_opt (fun (e, _) -> e == env_) t.risk_memo)
  with
  | Some (_, fp) -> fp
  | None ->
    let fp = Fingerprint.env_risk env_ in
    with_lock t (fun () -> t.risk_memo <- bounded_memo_add t.risk_memo (env_, fp));
    fp

let env ?(params = Riskroute.Params.default) ?advisory t n =
  let key =
    Fingerprint.combine
      [ net_fp t n; Fingerprint.params params; Fingerprint.advisory advisory ]
  in
  match
    with_lock t (fun () ->
        match Hashtbl.find_opt t.envs key with
        | Some e ->
          t.env_hits <- t.env_hits + 1;
          Some e
        | None -> None)
  with
  | Some e ->
    Rr_obs.Counter.incr c_env_hit;
    e
  | None ->
    let built =
      (* Continental-scale nets are synthetic: population fractions are
         the impact model (the census join is both slow and meaningless
         there), and Env.of_net picks its sparse representation by the
         same node-count threshold. *)
      let impact =
        if Rr_topology.Net.pop_count n > Riskroute.Env.dense_threshold then
          Some (Rr_topology.Net.population_fractions n)
        else None
      in
      Riskroute.Env.of_net ~params ~riskmap:(riskmap t) ?impact ?advisory n
    in
    Rr_obs.Counter.incr c_env_miss;
    with_lock t (fun () ->
        t.env_misses <- t.env_misses + 1;
        match Hashtbl.find_opt t.envs key with
        | Some e -> e (* concurrent build of the same key; results identical *)
        | None ->
          Hashtbl.replace t.envs key built;
          built)

let interdomain t =
  match with_lock t (fun () -> t.interdomain) with
  | Some v -> v
  | None ->
    let v =
      if t.uses_shared_zoo then Riskroute.Interdomain.shared ()
      else
        let merged = Riskroute.Interdomain.merge t.zoo.peering in
        (merged, Riskroute.Interdomain.env ~riskmap:(riskmap t) merged)
    in
    with_lock t (fun () ->
        match t.interdomain with
        | Some v -> v
        | None ->
          t.interdomain <- Some v;
          v)

let count_settled (tr : Rr_graph.Dijkstra.tree) =
  Array.fold_left (fun acc d -> if d < infinity then acc + 1 else acc) 0 tr.dist

let cached_tree t ~key ~compute =
  match
    with_lock t (fun () ->
        match Lru.find t.trees key with
        | Some tr ->
          t.tree_hits <- t.tree_hits + 1;
          Some tr
        | None -> None)
  with
  | Some tr ->
    Rr_obs.Counter.incr c_tree_hit;
    tr
  | None ->
    let tr = compute () in
    let settled = count_settled tr in
    Rr_obs.Counter.incr c_tree_miss;
    Rr_obs.Counter.add c_settled settled;
    let evicted = ref 0 in
    let result =
      with_lock t (fun () ->
          t.tree_misses <- t.tree_misses + 1;
          t.settled_nodes <- t.settled_nodes + settled;
          match Lru.find t.trees key with
          | Some existing -> existing
          | None ->
            let ev = Lru.add t.trees key tr in
            t.tree_evictions <- t.tree_evictions + ev;
            evicted := ev;
            tr)
    in
    if !evicted > 0 then begin
      Rr_obs.Counter.add c_tree_evict !evicted;
      Rr_obs.Flight.record ~kind:"evict" ~name:"engine.tree_lru"
        ~detail:(Printf.sprintf "evicted=%d" !evicted) ()
    end;
    result

let dist_trees t env_ =
  let fp = geometry_fp t env_ in
  let n = Riskroute.Env.node_count env_ in
  let off = Riskroute.Env.arc_off env_
  and tgt = Riskroute.Env.arc_tgt env_
  and miles = Riskroute.Env.arc_miles env_ in
  fun src ->
    cached_tree t
      ~key:(fp ^ ":d:" ^ string_of_int src)
      ~compute:(fun () ->
        Rr_graph.Dijkstra.single_source_flat ~n ~off ~tgt
          ~weight:(fun k -> Array.unsafe_get miles k)
          ~src)

let risk_trees t env_ =
  let fp = risk_fp t env_ in
  let n = Riskroute.Env.node_count env_ in
  let off = Riskroute.Env.arc_off env_
  and tgt = Riskroute.Env.arc_tgt env_
  and miles = Riskroute.Env.arc_miles env_
  and risk = Riskroute.Env.arc_risk env_ in
  let kappa = Riskroute.Env.mean_kappa env_ in
  fun src ->
    cached_tree t
      ~key:(fp ^ ":r:" ^ string_of_int src)
      ~compute:(fun () ->
        Rr_graph.Dijkstra.single_source_flat ~n ~off ~tgt
          ~weight:(fun k ->
            Array.unsafe_get miles k +. (kappa *. Array.unsafe_get risk k))
          ~src)

(* --- Delta-aware advisory stepping ----------------------------------

   [patched_env] is the incremental twin of [env]: instead of building
   the (net, params, advisory) environment from scratch it diffs the new
   advisory's risk field against the parent environment's, patches the
   parent ([Env.patch]), and migrates the parent's cached risk trees to
   the child's namespace — kept verbatim when no changed arc can reach
   into them, repaired in place ([Dijkstra.repair]) otherwise. The child
   is registered under the same content-addressed key a from-scratch
   build would use, so both paths unify in the env cache; its risk
   fingerprint chains (parent fingerprint + delta fingerprint,
   [Fingerprint.risk_delta]) at O(changed) cost. *)

let risk_prefix fp = fp ^ ":r:"

let trees_with_prefix t prefix =
  let plen = String.length prefix in
  Lru.fold t.trees ~init:[] ~f:(fun acc k tr ->
      if String.length k > plen && String.sub k 0 plen = prefix then
        (int_of_string (String.sub k plen (String.length k - plen)), k, tr)
        :: acc
      else acc)

let patched_env ?advisory t n ~parent =
  let params = Riskroute.Env.params parent in
  if Riskroute.Env.node_count parent <> Rr_topology.Net.pop_count n then
    invalid_arg "Context.patched_env: parent/network node-count mismatch";
  let key =
    Fingerprint.combine
      [ net_fp t n; Fingerprint.params params; Fingerprint.advisory advisory ]
  in
  match
    with_lock t (fun () ->
        match Hashtbl.find_opt t.envs key with
        | Some e ->
          t.env_hits <- t.env_hits + 1;
          Some e
        | None -> None)
  with
  | Some e ->
    Rr_obs.Counter.incr c_env_hit;
    e
  | None ->
    let d =
      Rr_forecast.Riskfield.diff_field
        ~rho_tropical:params.Riskroute.Params.rho_tropical
        ~rho_hurricane:params.Riskroute.Params.rho_hurricane
        ~old_field:(Riskroute.Env.forecast parent)
        ~next:advisory
        (Riskroute.Env.coords parent)
    in
    let p = Riskroute.Env.patch parent ~indices:d.indices ~values:d.values in
    let child = p.Riskroute.Env.env in
    let arcs = p.Riskroute.Env.patched_arcs in
    let parent_rfp = risk_fp t parent in
    let kept = ref 0 and repaired = ref 0 and evicted = ref 0 in
    let settled = ref 0 and lru_evicted = ref 0 in
    if Array.length arcs = 0 then begin
      (* The risk vectors are bit-for-bit unchanged (offshore tick, or a
         forecast move that cancels in node_risk): every cached tree for
         the parent stays valid under its existing key — including when
         the child IS the parent physically. *)
      with_lock t (fun () ->
          kept := List.length (trees_with_prefix t (risk_prefix parent_rfp));
          if not (child == parent) then
            t.risk_memo <- bounded_memo_add t.risk_memo (child, parent_rfp))
    end
    else begin
      let child_rfp =
        Fingerprint.risk_delta ~parent:parent_rfp ~indices:d.indices
          ~values:d.values
      in
      with_lock t (fun () ->
          t.risk_memo <- bounded_memo_add t.risk_memo (child, child_rfp));
      let n_nodes = Riskroute.Env.node_count parent in
      let off = Riskroute.Env.arc_off parent
      and tgt = Riskroute.Env.arc_tgt parent
      and mate = Riskroute.Env.arc_mate parent
      and miles = Riskroute.Env.arc_miles parent
      and old_risk = Riskroute.Env.arc_risk parent
      and new_risk = Riskroute.Env.arc_risk child in
      let kappa = Riskroute.Env.mean_kappa parent in
      let w_old k =
        Array.unsafe_get miles k +. (kappa *. Array.unsafe_get old_risk k)
      in
      let w_new k =
        Array.unsafe_get miles k +. (kappa *. Array.unsafe_get new_risk k)
      in
      (* Keep test: a changed arc (u -> v) can only matter to a tree if
         following it from the tree's distance at [u] could still beat
         the tree's distance at [v] under either weighting — if even
         min(w_old, w_new) overshoots strictly, the arc is slack in both
         worlds and the tree cannot see the change. *)
      let untouched_by (tr : Rr_graph.Dijkstra.tree) =
        Array.for_all
          (fun (k, u) ->
            let du = tr.dist.(u) in
            du = infinity
            || du +. Float.min (w_old k) (w_new k) > tr.dist.(tgt.(k)))
          arcs
      in
      let frontier_limit =
        max 1
          (int_of_float
             (Lazy.force repair_frontier_fraction *. float_of_int n_nodes))
      in
      let candidates =
        with_lock t (fun () -> trees_with_prefix t (risk_prefix parent_rfp))
      in
      let migrate src old_key tr =
        let new_key = risk_prefix child_rfp ^ string_of_int src in
        if untouched_by tr then begin
          incr kept;
          with_lock t (fun () ->
              ignore (Lru.remove t.trees old_key);
              let ev = Lru.add t.trees new_key tr in
              t.tree_evictions <- t.tree_evictions + ev;
              lru_evicted := !lru_evicted + ev)
        end
        else begin
          let tr', rs =
            Rr_graph.Dijkstra.repair ~n:n_nodes ~off ~tgt ~mate ~weight:w_new
              ~old_weight:w_old ~changed:arcs ~frontier_limit tr ~src
          in
          settled := !settled + rs.Rr_graph.Dijkstra.settled;
          if rs.Rr_graph.Dijkstra.full then incr evicted else incr repaired;
          with_lock t (fun () ->
              ignore (Lru.remove t.trees old_key);
              let ev = Lru.add t.trees new_key tr' in
              t.tree_evictions <- t.tree_evictions + ev;
              lru_evicted := !lru_evicted + ev)
        end
      in
      List.iter (fun (src, old_key, tr) -> migrate src old_key tr) candidates
    end;
    Rr_obs.Counter.incr c_delta_envs;
    Rr_obs.Counter.add c_delta_arcs (Array.length arcs);
    Rr_obs.Counter.add c_delta_kept !kept;
    Rr_obs.Counter.add c_delta_repaired !repaired;
    Rr_obs.Counter.add c_delta_evicted !evicted;
    if !settled > 0 then Rr_obs.Counter.add c_settled !settled;
    if !lru_evicted > 0 then Rr_obs.Counter.add c_tree_evict !lru_evicted;
    Rr_obs.Flight.record ~kind:"delta" ~name:"engine.patched_env"
      ~detail:
        (Printf.sprintf "arcs=%d kept=%d repaired=%d evicted=%d"
           (Array.length arcs) !kept !repaired !evicted)
      ();
    with_lock t (fun () ->
        t.env_patched <- t.env_patched + 1;
        t.delta_patched_arcs <- t.delta_patched_arcs + Array.length arcs;
        t.delta_trees_kept <- t.delta_trees_kept + !kept;
        t.delta_trees_repaired <- t.delta_trees_repaired + !repaired;
        t.delta_trees_evicted <- t.delta_trees_evicted + !evicted;
        t.settled_nodes <- t.settled_nodes + !settled;
        match Hashtbl.find_opt t.envs key with
        | Some e -> e (* concurrent build of the same key; results identical *)
        | None ->
          Hashtbl.replace t.envs key child;
          child)

(* Wire an environment's query facade to the tree LRU: landmark
   distance trees then live alongside every other cached tree for the
   same geometry, so advisory ticks (which share the parent env's
   geometry and facade) reuse them for free. *)
let query t env_ =
  let q = Riskroute.Env.query env_ in
  Rr_graph.Query.set_tree_provider q (dist_trees t env_);
  q

(* Env-free facade for a network: continental graphs skip the dense
   O(n^2) distance matrix entirely — per-arc miles are computed once per
   undirected edge (mirrored through the reverse-CSR mate, matching the
   dense path bitwise), so the same geometry fingerprint and tree-cache
   namespace unify with any Env built over the same net. *)
let build_net_query t (net : Rr_topology.Net.t) =
  let n = Rr_topology.Net.pop_count net in
  let off, tgt = Rr_graph.Graph.to_csr net.Rr_topology.Net.graph in
  let mate = Rr_graph.Graph.csr_mates ~off ~tgt in
  let miles = Array.make (Array.length tgt) 0.0 in
  for u = 0 to n - 1 do
    for k = off.(u) to off.(u + 1) - 1 do
      let v = tgt.(k) in
      if u < v then begin
        let d =
          Rr_geo.Distance.miles
            (Rr_topology.Net.pop net u).Rr_topology.Pop.coord
            (Rr_topology.Net.pop net v).Rr_topology.Pop.coord
        in
        miles.(k) <- d;
        miles.(mate.(k)) <- d
      end
    done
  done;
  let q = Rr_graph.Query.create ~n ~off ~tgt ~miles () in
  let fp = Fingerprint.geometry ~n ~off ~tgt ~miles in
  Rr_graph.Query.set_tree_provider q (fun src ->
      cached_tree t
        ~key:(fp ^ ":d:" ^ string_of_int src)
        ~compute:(fun () ->
          Rr_graph.Dijkstra.single_source_flat ~n ~off ~tgt
            ~weight:(fun k -> Array.unsafe_get miles k)
            ~src));
  q

let net_query t net =
  match
    with_lock t (fun () ->
        List.find_opt (fun (m, _) -> m == net) t.query_memo)
  with
  | Some (_, q) -> q
  | None ->
    let q = build_net_query t net in
    with_lock t (fun () ->
        match List.find_opt (fun (m, _) -> m == net) t.query_memo with
        | Some (_, existing) -> existing
        | None ->
          t.query_memo <- bounded_memo_add t.query_memo (net, q);
          q)

let continental ?spec t ~pops =
  match with_lock t (fun () -> List.assoc_opt pops t.continentals) with
  | Some net -> net
  | None ->
    let spec =
      match spec with
      | Some s -> s
      | None ->
        Rr_topology.Builder.continental_defaults
          ~name:(Printf.sprintf "continental-%d" pops)
          ~pop_count:pops
    in
    let net =
      Rr_topology.Builder.continental
        ~rng:(Rr_util.Prng.create Rr_topology.Zoo.default_seed)
        spec
    in
    with_lock t (fun () ->
        match List.assoc_opt pops t.continentals with
        | Some existing -> existing
        | None ->
          t.continentals <- (pops, net) :: t.continentals;
          net)

let snapshot t =
  {
    env_hits = t.env_hits;
    env_misses = t.env_misses;
    env_patched = t.env_patched;
    tree_hits = t.tree_hits;
    tree_misses = t.tree_misses;
    tree_evictions = t.tree_evictions;
    settled_nodes = t.settled_nodes;
    delta_patched_arcs = t.delta_patched_arcs;
    delta_trees_kept = t.delta_trees_kept;
    delta_trees_repaired = t.delta_trees_repaired;
    delta_trees_evicted = t.delta_trees_evicted;
  }

let stats t = with_lock t (fun () -> snapshot t)

(* One locked read feeds both the JSON body below and the time-series
   sampler's stats section (Rr_obs.Series.set_stats_provider): flat
   (name, value) pairs in a fixed order. *)
let stats_fields t =
  let s, env_len, tree_len =
    with_lock t (fun () -> (snapshot t, Hashtbl.length t.envs, Lru.length t.trees))
  in
  [
    ("env.hits", s.env_hits);
    ("env.misses", s.env_misses);
    ("env.patched", s.env_patched);
    ("env.cache_length", env_len);
    ("tree.hits", s.tree_hits);
    ("tree.misses", s.tree_misses);
    ("tree.evictions", s.tree_evictions);
    ("tree.cache_length", tree_len);
    ("tree.cache_capacity", Lru.capacity t.trees);
    ("tree.settled_nodes", s.settled_nodes);
    ("delta.patched_arcs", s.delta_patched_arcs);
    ("delta.trees_kept", s.delta_trees_kept);
    ("delta.trees_repaired", s.delta_trees_repaired);
    ("delta.trees_evicted", s.delta_trees_evicted);
  ]

let stats_json t =
  let f = stats_fields t in
  let g k = List.assoc k f in
  Printf.sprintf
    "{\n\
    \  \"schema\": 2,\n\
    \  \"env\": {\"hits\": %d, \"misses\": %d, \"patched\": %d, \
     \"cache_length\": %d},\n\
    \  \"tree\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d, \
     \"cache_length\": %d, \"cache_capacity\": %d, \"settled_nodes\": %d},\n\
    \  \"delta\": {\"patched_arcs\": %d, \"trees_kept\": %d, \
     \"trees_repaired\": %d, \"trees_evicted\": %d}\n\
     }\n"
    (g "env.hits") (g "env.misses") (g "env.patched") (g "env.cache_length")
    (g "tree.hits") (g "tree.misses") (g "tree.evictions")
    (g "tree.cache_length") (g "tree.cache_capacity") (g "tree.settled_nodes")
    (g "delta.patched_arcs") (g "delta.trees_kept") (g "delta.trees_repaired")
    (g "delta.trees_evicted")

let tree_cache_length t = with_lock t (fun () -> Lru.length t.trees)
let tree_cache_capacity t = Lru.capacity t.trees
let env_cache_length t = with_lock t (fun () -> Hashtbl.length t.envs)
