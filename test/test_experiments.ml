(* Unit tests of the experiment layer that avoid the full-size shared
   pipeline where possible (fast paths only; the expensive end-to-end
   checks live in test_integration.ml). *)

let ctx = lazy (Rr_engine.Context.create ())

let ctx () = Lazy.force ctx

let buffer_run f =
  let buffer = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buffer in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buffer

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

(* --- Table 1 --- *)

let test_table1_small_catalog () =
  let catalog = Rr_disaster.Catalog.generate ~seed:3L ~scale:0.02 () in
  let rows =
    Rr_experiments.Table1.compute ~catalog (ctx ())
      (Rr_engine.Spec.make ~max_events:400 ())
  in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  List.iter
    (fun (row : Rr_experiments.Table1.row) ->
      Alcotest.(check bool) "bandwidth positive" true
        (row.Rr_experiments.Table1.bandwidth > 0.0);
      Alcotest.(check bool) "entries scaled" true
        (row.Rr_experiments.Table1.entries
        < Rr_disaster.Event.paper_count row.Rr_experiments.Table1.kind))
    rows

let test_table1_paper_column () =
  let catalog = Rr_disaster.Catalog.generate ~seed:3L ~scale:0.02 () in
  let rows =
    Rr_experiments.Table1.compute ~catalog (ctx ())
      (Rr_engine.Spec.make ~max_events:200 ())
  in
  List.iter
    (fun (row : Rr_experiments.Table1.row) ->
      Alcotest.(check (float 1e-9)) "paper value attached"
        (Rr_disaster.Event.paper_bandwidth row.Rr_experiments.Table1.kind)
        row.Rr_experiments.Table1.paper_bandwidth)
    rows

(* --- Table 2 constants --- *)

let test_table2_paper_values () =
  Alcotest.(check int) "seven networks" 7 (List.length Rr_experiments.Table2.paper);
  match List.assoc_opt "Level3" Rr_experiments.Table2.paper with
  | Some (rr5, dr5, rr6, dr6) ->
    Alcotest.(check (float 1e-9)) "rr 1e5" 0.075 rr5;
    Alcotest.(check (float 1e-9)) "dr 1e5" 0.015 dr5;
    Alcotest.(check (float 1e-9)) "rr 1e6" 0.258 rr6;
    Alcotest.(check (float 1e-9)) "dr 1e6" 0.136 dr6
  | None -> Alcotest.fail "Level3 row missing"

(* --- Table 3 constants --- *)

let test_table3_paper_values () =
  Alcotest.(check int) "six characteristics" 6 (List.length Rr_experiments.Table3.paper);
  match List.assoc_opt "Geographic Footprint" Rr_experiments.Table3.paper with
  | Some (r2_risk, r2_dist) ->
    Alcotest.(check (float 1e-9)) "risk r2" 0.618 r2_risk;
    Alcotest.(check (float 1e-9)) "dist r2" 0.243 r2_dist
  | None -> Alcotest.fail "footprint row missing"

(* --- Fig 1 / Fig 2 dataset invariants --- *)

let test_fig1_totals () =
  Alcotest.(check int) "354 tier-1 PoPs" 354 (Rr_experiments.Fig1.tier1_pop_total (ctx ()));
  Alcotest.(check int) "455 regional PoPs" 455 (Rr_experiments.Fig1.regional_pop_total (ctx ()))

let test_fig2_edges () =
  (* tier-1 clique alone is 21 edges; regional multihoming adds more *)
  Alcotest.(check bool) "at least the clique" true (Rr_experiments.Fig2.edge_count (ctx ()) > 21)

(* --- Fig 4 geography --- *)

let test_fig4_concentrations () =
  let concentrations = Rr_experiments.Fig4.concentrations (ctx ()) in
  Alcotest.(check int) "five kinds" 5 (List.length concentrations);
  List.iter
    (fun (c : Rr_experiments.Fig4.concentration) ->
      Alcotest.(check bool)
        (Rr_disaster.Event.kind_name c.Rr_experiments.Fig4.kind
        ^ " concentrated where the paper says")
        true
        (c.Rr_experiments.Fig4.mass_share > 0.5))
    concentrations

(* --- Fig 5 ticks --- *)

let test_fig5_mentions_paper_times () =
  let out = buffer_run (Rr_experiments.Fig5.run (ctx ())) in
  Alcotest.(check bool) "Irene header" true (contains "Irene" out);
  Alcotest.(check bool) "wind radii shown" true (contains "tropical-storm-force" out
                                                 || contains "TROPICAL-STORM-FORCE" out)

(* --- Fig 10 --- *)

let test_fig10_fractions_bounded () =
  List.iter
    (fun (curve : Rr_experiments.Fig10.curve) ->
      Array.iter
        (fun f ->
          Alcotest.(check bool)
            (curve.Rr_experiments.Fig10.network ^ " fraction in (0, 1]")
            true
            (f > 0.0 && f <= 1.0 +. 1e-9))
        curve.Rr_experiments.Fig10.fractions)
    (Rr_experiments.Fig10.compute (ctx ())
       (Rr_engine.Spec.make ~networks:Rr_experiments.Fig10.default_spec.networks
          ~k:3 ()))

let test_fig10_level3_flattest () =
  (* the paper's Fig. 10 story: dense Level3 gains least from added links *)
  let curves =
    Rr_experiments.Fig10.compute (ctx ())
      (Rr_engine.Spec.make ~networks:Rr_experiments.Fig10.default_spec.networks
         ~k:3 ())
  in
  let final name =
    match
      List.find_opt
        (fun (c : Rr_experiments.Fig10.curve) ->
          String.equal c.Rr_experiments.Fig10.network name)
        curves
    with
    | Some c when Array.length c.Rr_experiments.Fig10.fractions > 0 ->
      c.Rr_experiments.Fig10.fractions.(Array.length c.Rr_experiments.Fig10.fractions - 1)
    | _ -> 1.0
  in
  Alcotest.(check bool) "Level3 improves less than Sprint" true
    (final "Level3" > final "Sprint");
  Alcotest.(check bool) "Level3 improves less than Teliasonera" true
    (final "Level3" > final "Teliasonera")

(* --- ablation runners produce output --- *)

(* --- CSV export --- *)

let test_csv_table2 () =
  let path = Filename.temp_file "riskroute" ".csv" in
  Rr_experiments.Csv_export.write_table2 (ctx ()) path;
  let ic = open_in path in
  let header = input_line ic in
  let lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "network,pops,rr_1e5,dr_1e5,rr_1e6,dr_1e6" header;
  Alcotest.(check int) "seven networks" 7 !lines

let test_csv_fig10 () =
  let path = Filename.temp_file "riskroute" ".csv" in
  Rr_experiments.Csv_export.write_fig10 (ctx ()) path;
  let ic = open_in path in
  let header = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "network,links_added,fraction_of_original_bit_risk"
    header

let test_ablation_runners () =
  List.iter
    (fun (name, run) ->
      let out = buffer_run run in
      Alcotest.(check bool) (name ^ " non-empty") true (String.length out > 40))
    [
      ("abl-kde", Rr_experiments.Ablation.run_kde (ctx ()));
      ("abl-seasonal", Rr_experiments.Ablation.run_seasonal (ctx ()));
    ]

let () =
  Alcotest.run "rr_experiments"
    [
      ( "table1",
        [
          Alcotest.test_case "small catalogue" `Slow test_table1_small_catalog;
          Alcotest.test_case "paper column" `Slow test_table1_paper_column;
        ] );
      ( "constants",
        [
          Alcotest.test_case "table2 paper values" `Quick test_table2_paper_values;
          Alcotest.test_case "table3 paper values" `Quick test_table3_paper_values;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "fig1 totals" `Quick test_fig1_totals;
          Alcotest.test_case "fig2 edges" `Quick test_fig2_edges;
          Alcotest.test_case "fig4 concentrations" `Slow test_fig4_concentrations;
          Alcotest.test_case "fig5 output" `Slow test_fig5_mentions_paper_times;
        ] );
      ( "fig10",
        [
          Alcotest.test_case "fractions bounded" `Slow test_fig10_fractions_bounded;
          Alcotest.test_case "Level3 flattest" `Slow test_fig10_level3_flattest;
        ] );
      ( "csv",
        [
          Alcotest.test_case "table2 csv" `Slow test_csv_table2;
          Alcotest.test_case "fig10 csv" `Slow test_csv_fig10;
        ] );
      ( "ablation",
        [ Alcotest.test_case "runners" `Slow test_ablation_runners ] );
    ]
