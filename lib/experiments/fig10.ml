type curve = {
  network : string;
  fractions : float array;
}

let compute ?(max_links = 8) () =
  let zoo = Rr_topology.Zoo.shared () in
  List.map
    (fun net ->
      let env = Riskroute.Env.of_net net in
      let picks = Riskroute.Augment.greedy ~k:max_links env in
      {
        network = net.Rr_topology.Net.name;
        fractions =
          Array.of_list
            (List.map (fun (p : Riskroute.Augment.pick) -> p.Riskroute.Augment.fraction) picks);
      })
    zoo.Rr_topology.Zoo.tier1s

let run ppf =
  Format.fprintf ppf "Fig 10: fraction of original bit-risk miles vs links added@.";
  let curves = compute () in
  Format.fprintf ppf "%-18s" "Network";
  for k = 1 to 8 do
    Format.fprintf ppf " %6s" (Printf.sprintf "+%d" k)
  done;
  Format.fprintf ppf "@.";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-18s" c.network;
      Array.iter (fun f -> Format.fprintf ppf " %6.3f" f) c.fractions;
      Format.fprintf ppf "@.")
    curves
