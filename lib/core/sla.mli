(** SLA-constrained RiskRoute (Sec. 6.4: "the RiskRoute framework could
    easily be expanded to include multiple objective functions that would
    balance risk and SLA-related issues such as latency").

    The operator question: {e minimise outage risk subject to a latency
    budget}. This is the classic restricted shortest path problem; it is
    solved here with LARAC (Lagrangian Relaxation Aggregated Cost):
    binary search on the multiplier of a combined [latency + lambda *
    risk] weight, which yields the optimal path of the relaxation and
    tight bounds in O(log) Dijkstra runs. *)

val propagation_ms_per_mile : float
(** One-way propagation in fibre: ~0.0082 ms per mile (c/1.468), plus
    nothing for equipment — a deliberately simple latency model. *)

val latency_ms : Env.t -> int list -> float
(** One-way propagation latency of a node path. *)

type constrained = {
  route : Router.route;
  latency : float;        (** achieved one-way latency, ms *)
  risk : float;           (** impact-scaled path risk (the minimised objective) *)
  optimal : bool;
      (** true when LARAC proved optimality (the relaxation closed);
          false when the returned path is feasible but possibly
          improvable *)
}

val constrained_route :
  ?iterations:int -> Env.t -> src:int -> dst:int -> max_latency_ms:float ->
  constrained option
(** Minimum-risk route whose latency respects the budget. [None] when
    even the latency-optimal path exceeds the budget or the pair is
    disconnected. When the unconstrained minimum-risk path already fits
    the budget it is returned directly (marked optimal). *)
