type networks =
  | Tier1s
  | Regionals
  | All_networks
  | Named of string list
  | Interdomain

type t = {
  networks : networks;
  params : Riskroute.Params.t;
  pair_cap : int option;
  k : int option;
  tick_stride : int option;
  max_events : int option;
  advisory : Rr_forecast.Advisory.t option;
  storm : Rr_forecast.Track.storm option;
}

let default =
  {
    networks = All_networks;
    params = Riskroute.Params.default;
    pair_cap = None;
    k = None;
    tick_stride = None;
    max_events = None;
    advisory = None;
    storm = None;
  }

let make ?(networks = All_networks) ?(params = Riskroute.Params.default)
    ?pair_cap ?k ?tick_stride ?max_events ?advisory ?storm () =
  { networks; params; pair_cap; k; tick_stride; max_events; advisory; storm }

let pair_cap ~default t = Option.value t.pair_cap ~default
let k ~default t = Option.value t.k ~default
let tick_stride ~default t = Option.value t.tick_stride ~default
let max_events ~default t = Option.value t.max_events ~default

let storm_exn t =
  match t.storm with
  | Some s -> s
  | None -> invalid_arg "Spec.storm_exn: spec carries no storm"
