let advisory (a : Advisory.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let lat = Rr_geo.Coord.lat a.Advisory.center in
  let lon = Rr_geo.Coord.lon a.Advisory.center in
  let classification =
    if a.Advisory.hurricane_radius_miles > 0.0 then "HURRICANE" else "TROPICAL STORM"
  in
  add "BULLETIN\n";
  add "%s %s ADVISORY NUMBER %d\n" classification a.Advisory.storm a.Advisory.number;
  add "NWS NATIONAL HURRICANE CENTER MIAMI FL\n";
  add "%s\n\n" a.Advisory.issued;
  add "...THE CENTER OF %s %s WAS LOCATED NEAR LATITUDE %.1f %s...LONGITUDE %.1f %s.\n"
    classification a.Advisory.storm (Float.abs lat)
    (if lat >= 0.0 then "NORTH" else "SOUTH")
    (Float.abs lon)
    (if lon >= 0.0 then "EAST" else "WEST");
  if a.Advisory.hurricane_radius_miles > 0.0 then
    add
      "HURRICANE-FORCE WINDS EXTEND OUTWARD UP TO %.0f MILES...%.0f KM...FROM THE CENTER.\n"
      a.Advisory.hurricane_radius_miles
      (Rr_geo.Distance.miles_to_km a.Advisory.hurricane_radius_miles);
  if a.Advisory.tropical_radius_miles > 0.0 then
    add
      "...AND TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO %.0f MILES...%.0f KM.\n"
      a.Advisory.tropical_radius_miles
      (Rr_geo.Distance.miles_to_km a.Advisory.tropical_radius_miles);
  Buffer.contents buf
