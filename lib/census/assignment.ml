(* Equirectangular squared distance: monotone in true distance at the
   scales involved, and an order of magnitude cheaper than haversine for
   the 216k-block x 233-PoP assignment loop. *)
let approx_dist2 ~cos_lat a_lat a_lon b_lat b_lon =
  let dlat = a_lat -. b_lat in
  let dlon = (a_lon -. b_lon) *. cos_lat in
  (dlat *. dlat) +. (dlon *. dlon)

let nearest_index sites point =
  let n = Array.length sites in
  if n = 0 then invalid_arg "Assignment.nearest_index: no sites";
  let plat = Rr_geo.Coord.lat point and plon = Rr_geo.Coord.lon point in
  let cos_lat = cos (plat *. Float.pi /. 180.0) in
  let best = ref 0 and best_d = ref infinity in
  for i = 0 to n - 1 do
    let d =
      approx_dist2 ~cos_lat plat plon
        (Rr_geo.Coord.lat sites.(i))
        (Rr_geo.Coord.lon sites.(i))
    in
    if d < !best_d then begin
      best_d := d;
      best := i
    end
  done;
  !best

let c_blocks = Rr_obs.Counter.make "census.blocks_assigned"

let populations ~sites blocks =
 Rr_obs.with_kernel "census.assign" @@ fun () ->
  Rr_obs.Counter.add c_blocks (Array.length blocks);
  (* The nearest-site search per block is independent and dominates the
     cost, so it fans out across the domain pool; the population totals
     are then accumulated sequentially in block order, keeping the sums
     bit-identical at any pool size. *)
  let indices =
    Rr_util.Parallel.map_array
      (fun (b : Block.t) -> nearest_index sites b.coord)
      blocks
  in
  let totals = Array.make (Array.length sites) 0.0 in
  Array.iteri
    (fun k i -> totals.(i) <- totals.(i) +. blocks.(k).Block.population)
    indices;
  totals

let fractions ~sites blocks =
  let totals = populations ~sites blocks in
  let grand = Rr_util.Arrayx.fsum totals in
  if grand <= 0.0 then totals else Array.map (fun v -> v /. grand) totals
