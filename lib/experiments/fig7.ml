type comparison = {
  lambda_h : float;
  shortest : Riskroute.Router.route;
  riskroute : Riskroute.Router.route;
}

let default_spec =
  Rr_engine.Spec.make ~networks:(Rr_engine.Spec.Named [ "Level3" ]) ()

let subject ctx (spec : Rr_engine.Spec.t) =
  match Rr_engine.Context.nets ctx spec.networks with
  | net :: _ -> net
  | [] -> failwith "Fig7: spec selects no network"

let endpoints net =
  match
    (Rr_topology.Net.find_pop net ~city:"Houston",
     Rr_topology.Net.find_pop net ~city:"Boston")
  with
  | Some h, Some b -> (h, b)
  | _ -> failwith "Fig7: Level3 map lacks a Houston or Boston PoP"

let compute ctx spec =
  let net = subject ctx spec in
  let src, dst = endpoints net in
  List.map
    (fun lambda_h ->
      let params = Riskroute.Params.with_lambda_h lambda_h Riskroute.Params.default in
      let env = Rr_engine.Context.env ~params ctx net in
      let get = function
        | Some route -> route
        | None -> failwith "Fig7: Houston and Boston are disconnected"
      in
      {
        lambda_h;
        shortest = get (Riskroute.Router.shortest env ~src ~dst);
        riskroute = get (Riskroute.Router.riskroute env ~src ~dst);
      })
    [ 1e4; 1e5 ]

let pp_route ppf net (route : Riskroute.Router.route) =
  let names =
    List.map
      (fun i -> (Rr_topology.Net.pop net i).Rr_topology.Pop.name)
      route.Riskroute.Router.path
  in
  Format.fprintf ppf "%s (%.0f bit-miles, %.0f bit-risk-miles)"
    (String.concat " -> " names)
    route.Riskroute.Router.bit_miles route.Riskroute.Router.bit_risk_miles

let run ctx ppf =
  let net = subject ctx default_spec in
  Format.fprintf ppf
    "Fig 7: Level3 routing between Houston, TX and Boston, MA@.";
  List.iter
    (fun c ->
      Format.fprintf ppf "lambda_h = %.0e@." c.lambda_h;
      Format.fprintf ppf "  shortest : %a@." (fun ppf -> pp_route ppf net) c.shortest;
      Format.fprintf ppf "  riskroute: %a@." (fun ppf -> pp_route ppf net) c.riskroute)
    (compute ctx default_spec)
