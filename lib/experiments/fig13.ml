let compute ?(pair_cap = 300) ?(tick_stride = 6) storm =
  let merged, base_env = Riskroute.Interdomain.shared () in
  let peering = Riskroute.Interdomain.peering merged in
  let nets = peering.Rr_topology.Peering.nets in
  let advisories = Rr_forecast.Track.advisories storm in
  List.filter_map
    (fun i ->
      match nets.(i).Rr_topology.Net.tier with
      | Rr_topology.Net.Tier1 -> None
      | Rr_topology.Net.Regional ->
        let fraction = Rr_forecast.Riskfield.scope_fraction advisories nets.(i) in
        if fraction > 0.2 then
          Some
            (Riskroute.Casestudy.regional ~pair_cap ~tick_stride ~storm ~merged
               ~base_env i)
        else None)
    (Rr_util.Listx.range 0 (Array.length nets))

let run ppf =
  Format.fprintf ppf
    "Fig 13: regional interdomain case studies (>20%% of PoPs in scope)@.";
  List.iter
    (fun storm ->
      Format.fprintf ppf "-- Hurricane %s --@." storm.Rr_forecast.Track.name;
      match compute storm with
      | [] -> Format.fprintf ppf "  (no regional network above the 20%% scope filter)@."
      | series -> Fig12.pp_series ppf series)
    Rr_forecast.Track.all
