(** Synthetic census-block dataset.

    The paper uses the US Census at block resolution (215,932 blocks in
    the CONUS). We reproduce that surface by scattering blocks around the
    real city gazetteer: each city receives blocks in proportion to its
    true population, placed with a Gaussian core (the city proper) plus a
    heavy-tailed Pareto ring (suburbs/exurbs), and a small uniform rural
    background covers the rest of the country. *)

val paper_block_count : int
(** 215,932 — the count reported in Sec. 4.2. *)

val generate : ?seed:int64 -> ?blocks:int -> unit -> Block.t array
(** [generate ()] builds [blocks] (default {!paper_block_count}) blocks
    whose populations sum to the gazetteer total. Deterministic in
    [seed]. *)

val shared : unit -> Block.t array
(** Default-parameter dataset, built once and memoised. *)

val heat_grid : Block.t array -> rows:int -> cols:int -> Rr_geo.Grid.t
(** Population mass rasterised over the CONUS (Fig. 3 left). The grid is
    normalised to total mass 1. *)
