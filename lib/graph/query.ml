open Rr_util

(* Point-to-point query facade over a CSR geometry.

   Three runners share one per-domain workspace:

   - Plain: the [Dijkstra.flat_loop] kernel verbatim (same push order,
     same strict [nd < dist] test), so costs, paths and equal-cost
     tie-breaks are bit-identical to [Dijkstra.single_pair_flat].
   - Bidir: bidirectional Dijkstra; the backward search weighs reverse
     arcs through the forward arc's index via the reverse-CSR mate
     array (arc weights are asymmetric: target-node risk). The final
     cost is recomputed as the left-fold of forward arc weights along
     the reconstructed path, so it matches Plain bitwise.
   - Alt: A* with landmark lower bounds (goal-directed). Landmarks are
     pure bit-miles distance trees, which stay admissible for every
     RiskRoute objective because risk only adds non-negative weight on
     top of miles: w(k) >= miles(k) implies the triangle-inequality
     bound still underestimates. Raw labels are the same left-folds
     Plain computes, so settled distances are bit-identical.

   Workspaces live in domain-local storage: the router is called from
   inside [Parallel.map_array] sweeps, so each domain keeps its own
   dist/parent/settled arrays, heaps and touched-node lists, restored
   to pristine after every query by undoing only the touched entries. *)

type runner = Plain | Bidir | Alt

type landmarks = {
  sources : int array;
  trees : float array array;  (* trees.(i).(v) = bit-miles dist from sources.(i) *)
}

type t = {
  n : int;
  off : int array;
  tgt : int array;
  miles : float array;
  mate : int array;
  landmark_count : int;
  lock : Mutex.t;
  mutable tree_provider : (int -> Dijkstra.tree) option;
  mutable landmarks : landmarks option;
}

let c_plain_runs = Rr_obs.Counter.make "query.plain.runs"
let c_plain_settled = Rr_obs.Counter.make "query.plain.settled"
let c_bidir_runs = Rr_obs.Counter.make "query.bidir.runs"
let c_bidir_settled = Rr_obs.Counter.make "query.bidir.settled"
let c_alt_runs = Rr_obs.Counter.make "query.alt.runs"
let c_alt_settled = Rr_obs.Counter.make "query.alt.settled"
let c_preps = Rr_obs.Counter.make "query.landmark_preps"

let default_landmark_count = 16

let create ?(landmark_count = default_landmark_count) ~n ~off ~tgt ~miles () =
  if landmark_count < 1 then
    invalid_arg "Query.create: landmark_count < 1";
  if Array.length off <> n + 1 || Array.length miles <> Array.length tgt then
    invalid_arg "Query.create: inconsistent CSR arrays";
  {
    n;
    off;
    tgt;
    miles;
    mate = Graph.csr_mates ~off ~tgt;
    landmark_count;
    lock = Mutex.create ();
    tree_provider = None;
    landmarks = None;
  }

let node_count t = t.n
let arc_off t = t.off
let arc_tgt t = t.tgt
let arc_miles t = t.miles

let set_tree_provider t provider =
  Mutex.lock t.lock;
  t.tree_provider <- Some provider;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Per-domain workspace                                               *)

type ws = {
  mutable cap : int;
  (* pristine between queries: infinity / -1 / false *)
  mutable dist_f : float array;
  mutable parent_f : int array;
  mutable settled_f : bool array;
  mutable dist_b : float array;
  mutable parent_b : int array;
  mutable settled_b : bool array;
  heap_f : int Heap.t;
  heap_b : int Heap.t;
  (* every node whose label was written this query (duplicates fine) *)
  mutable touched_f : int array;
  mutable tf_len : int;
  mutable touched_b : int array;
  mutable tb_len : int;
  (* potential memo, validated by a per-query stamp *)
  mutable pi : float array;
  mutable pi_stamp : int array;
  mutable stamp : int;
}

let ws_key : ws Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        cap = 0;
        dist_f = [||];
        parent_f = [||];
        settled_f = [||];
        dist_b = [||];
        parent_b = [||];
        settled_b = [||];
        heap_f = Heap.create ();
        heap_b = Heap.create ();
        touched_f = [||];
        tf_len = 0;
        touched_b = [||];
        tb_len = 0;
        pi = [||];
        pi_stamp = [||];
        stamp = 0;
      })

let get_ws n =
  let ws = Domain.DLS.get ws_key in
  if ws.cap < n then begin
    ws.cap <- n;
    ws.dist_f <- Array.make n infinity;
    ws.parent_f <- Array.make n (-1);
    ws.settled_f <- Array.make n false;
    ws.dist_b <- Array.make n infinity;
    ws.parent_b <- Array.make n (-1);
    ws.settled_b <- Array.make n false;
    if Array.length ws.touched_f = 0 then begin
      ws.touched_f <- Array.make (max 16 n) 0;
      ws.touched_b <- Array.make (max 16 n) 0
    end;
    ws.pi <- Array.make n 0.0;
    ws.pi_stamp <- Array.make n 0;
    ws.stamp <- 0;
    Heap.ensure_capacity ws.heap_f (max 16 n);
    Heap.ensure_capacity ws.heap_b (max 16 n)
  end;
  ws

let touch_f ws v =
  if ws.tf_len = Array.length ws.touched_f then begin
    let a = Array.make (2 * ws.tf_len) 0 in
    Array.blit ws.touched_f 0 a 0 ws.tf_len;
    ws.touched_f <- a
  end;
  ws.touched_f.(ws.tf_len) <- v;
  ws.tf_len <- ws.tf_len + 1

let touch_b ws v =
  if ws.tb_len = Array.length ws.touched_b then begin
    let a = Array.make (2 * ws.tb_len) 0 in
    Array.blit ws.touched_b 0 a 0 ws.tb_len;
    ws.touched_b <- a
  end;
  ws.touched_b.(ws.tb_len) <- v;
  ws.tb_len <- ws.tb_len + 1

(* Undo only what this query wrote; cheaper than O(n) refills and keeps
   the arrays pristine even when a run raises (negative weight). *)
let reset_ws ws =
  for i = 0 to ws.tf_len - 1 do
    let v = ws.touched_f.(i) in
    ws.dist_f.(v) <- infinity;
    ws.parent_f.(v) <- -1;
    ws.settled_f.(v) <- false
  done;
  ws.tf_len <- 0;
  for i = 0 to ws.tb_len - 1 do
    let v = ws.touched_b.(i) in
    ws.dist_b.(v) <- infinity;
    ws.parent_b.(v) <- -1;
    ws.settled_b.(v) <- false
  done;
  ws.tb_len <- 0;
  Heap.clear ws.heap_f;
  Heap.clear ws.heap_b

(* ------------------------------------------------------------------ *)
(* Landmark preparation                                               *)

let default_tree t src =
  Dijkstra.single_source_flat ~n:t.n ~off:t.off ~tgt:t.tgt
    ~weight:(fun k -> Array.unsafe_get t.miles k)
    ~src

let prepared t = t.landmarks <> None

(* Farthest-point selection: seed with the node farthest from node 0,
   then repeatedly add the node maximising the min bit-miles distance to
   the chosen set. Unreachable nodes (infinite min-distance) win the
   argmax, so extra components get their own landmark. Deterministic:
   ties break towards the smaller id. *)
let prepare t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  match t.landmarks with
  | Some _ -> ()
  | None ->
    Rr_obs.Counter.incr c_preps;
    let tree =
      match t.tree_provider with
      | Some f -> fun src -> (f src).Dijkstra.dist
      | None -> fun src -> (default_tree t src).Dijkstra.dist
    in
    let count = max 1 (min t.landmark_count t.n) in
    let sources = Array.make count 0 in
    let trees = Array.make count [||] in
    (* Seed: farthest reachable node from node 0 (node 0 itself when the
       graph is a single node or has no finite eccentricity). *)
    let d0 = tree 0 in
    let seed = ref 0 and seed_d = ref neg_infinity in
    for v = 0 to t.n - 1 do
      let d = d0.(v) in
      if Float.is_finite d && d > !seed_d then begin
        seed_d := d;
        seed := v
      end
    done;
    sources.(0) <- !seed;
    let mind = Array.make t.n infinity in
    for i = 0 to count - 1 do
      let di = tree sources.(i) in
      trees.(i) <- di;
      if i + 1 < count then begin
        for v = 0 to t.n - 1 do
          if di.(v) < mind.(v) then mind.(v) <- di.(v)
        done;
        let best = ref 0 and best_d = ref neg_infinity in
        for v = 0 to t.n - 1 do
          let d = mind.(v) in
          if d > !best_d then begin
            best_d := d;
            best := v
          end
        done;
        sources.(i + 1) <- !best
      end
    done;
    t.landmarks <- Some { sources; trees }

let landmark_sources t =
  match t.landmarks with
  | None -> [||]
  | Some lm -> Array.copy lm.sources

(* pi_t(v) = max_L |d_L(v) - d_L(t)|: a valid, consistent lower bound on
   dist(v, t) in any metric where arc weights dominate bit-miles.
   Landmark terms involving an unreachable endpoint are skipped (the
   difference is infinite or NaN and bounds nothing). *)
let potential t ~dst =
  match t.landmarks with
  | None -> None
  | Some lm ->
    let l = Array.length lm.sources in
    let dt = Array.init l (fun i -> lm.trees.(i).(dst)) in
    Some
      (fun v ->
        let p = ref 0.0 in
        for i = 0 to l - 1 do
          let a = Array.unsafe_get lm.trees.(i) v -. Array.unsafe_get dt i in
          if Float.is_finite a then begin
            let a = Float.abs a in
            if a > !p then p := a
          end
        done;
        !p)

(* ------------------------------------------------------------------ *)
(* Runners (src <> dst, both validated, workspace pristine on entry)  *)

let build_path parent ~src ~dst =
  let rec build acc v = if v = src then src :: acc else build (v :: acc) parent.(v) in
  build [] dst

let run_plain t ~weight ~src ~dst =
  let ws = get_ws t.n in
  let dist = ws.dist_f and parent = ws.parent_f and settled = ws.settled_f in
  let heap = ws.heap_f in
  let off = t.off and tgt = t.tgt in
  let settles = ref 0 in
  Fun.protect ~finally:(fun () -> reset_ws ws) @@ fun () ->
  dist.(src) <- 0.0;
  touch_f ws src;
  Heap.push heap 0.0 src;
  let finished = ref false in
  while (not !finished) && not (Heap.is_empty heap) do
    let d = Heap.min_key heap in
    let u = Heap.min_elt heap in
    Heap.drop_min heap;
    if not settled.(u) then begin
      settled.(u) <- true;
      incr settles;
      if u = dst then finished := true
      else
        for k = Array.unsafe_get off u to Array.unsafe_get off (u + 1) - 1 do
          let v = Array.unsafe_get tgt k in
          if not (Array.unsafe_get settled v) then begin
            let w = weight k in
            if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
            let nd = d +. w in
            if nd < Array.unsafe_get dist v then begin
              Array.unsafe_set dist v nd;
              Array.unsafe_set parent v u;
              Heap.push heap nd v;
              touch_f ws v
            end
          end
        done
    end
  done;
  let result =
    if dist.(dst) = infinity then None
    else Some (dist.(dst), build_path parent ~src ~dst)
  in
  (result, !settles)

(* Arc index of (a, b); exists whenever b was reached from a. *)
let find_arc t a b =
  let j = ref t.off.(a) in
  let hi = t.off.(a + 1) in
  while !j < hi && t.tgt.(!j) <> b do incr j done;
  if !j >= hi then invalid_arg "Query: path edge missing from CSR";
  !j

(* Left-fold of forward arc weights along [path] — the exact float
   association the plain runner accumulates, so recomputed bidirectional
   costs match it bitwise. *)
let fold_path_cost t ~weight path =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (acc +. weight (find_arc t a b)) rest
    | [ _ ] | [] -> acc
  in
  go 0.0 path

let run_bidir t ~weight ~src ~dst =
  let ws = get_ws t.n in
  let dist_f = ws.dist_f and parent_f = ws.parent_f and settled_f = ws.settled_f in
  let dist_b = ws.dist_b and parent_b = ws.parent_b and settled_b = ws.settled_b in
  let heap_f = ws.heap_f and heap_b = ws.heap_b in
  let off = t.off and tgt = t.tgt and mate = t.mate in
  let settles = ref 0 in
  Fun.protect ~finally:(fun () -> reset_ws ws) @@ fun () ->
  dist_f.(src) <- 0.0;
  touch_f ws src;
  Heap.push heap_f 0.0 src;
  dist_b.(dst) <- 0.0;
  touch_b ws dst;
  Heap.push heap_b 0.0 dst;
  let mu = ref infinity and meet = ref (-1) in
  let consider v total =
    if total < !mu then begin
      mu := total;
      meet := v
    end
  in
  let finished = ref false in
  while not !finished do
    let top_f = if Heap.is_empty heap_f then infinity else Heap.min_key heap_f in
    let top_b = if Heap.is_empty heap_b then infinity else Heap.min_key heap_b in
    (* Covers both-heaps-empty too: infinity >= mu for any mu. *)
    if top_f +. top_b >= !mu then finished := true
    else if top_f <= top_b then begin
      let u = Heap.min_elt heap_f in
      Heap.drop_min heap_f;
      if not settled_f.(u) then begin
        settled_f.(u) <- true;
        incr settles;
        let d = top_f in
        for k = Array.unsafe_get off u to Array.unsafe_get off (u + 1) - 1 do
          let v = Array.unsafe_get tgt k in
          if not (Array.unsafe_get settled_f v) then begin
            let w = weight k in
            if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
            let nd = d +. w in
            if nd < Array.unsafe_get dist_f v then begin
              Array.unsafe_set dist_f v nd;
              Array.unsafe_set parent_f v u;
              Heap.push heap_f nd v;
              touch_f ws v;
              let db = Array.unsafe_get dist_b v in
              if db < infinity then consider v (nd +. db)
            end
          end
        done
      end
    end
    else begin
      let u = Heap.min_elt heap_b in
      Heap.drop_min heap_b;
      if not settled_b.(u) then begin
        settled_b.(u) <- true;
        incr settles;
        let d = top_b in
        for k = Array.unsafe_get off u to Array.unsafe_get off (u + 1) - 1 do
          let v = Array.unsafe_get tgt k in
          if not (Array.unsafe_get settled_b v) then begin
            (* reverse arc (v, u) costs what forward arc mate.(k) costs *)
            let w = weight (Array.unsafe_get mate k) in
            if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
            let nd = d +. w in
            if nd < Array.unsafe_get dist_b v then begin
              Array.unsafe_set dist_b v nd;
              Array.unsafe_set parent_b v u;
              Heap.push heap_b nd v;
              touch_b ws v;
              let df = Array.unsafe_get dist_f v in
              if df < infinity then consider v (df +. nd)
            end
          end
        done
      end
    end
  done;
  let result =
    if !meet < 0 then None
    else begin
      let forward = build_path parent_f ~src ~dst:!meet in
      let rec extend acc v =
        if v = dst then List.rev (v :: acc) else extend (v :: acc) parent_b.(v)
      in
      let path =
        if !meet = dst then forward
        else forward @ List.tl (extend [] !meet)
      in
      Some (fold_path_cost t ~weight path, path)
    end
  in
  (result, !settles)

let run_alt t ~weight ~pot ~src ~dst =
  let ws = get_ws t.n in
  let dist = ws.dist_f and parent = ws.parent_f and settled = ws.settled_f in
  let heap = ws.heap_f in
  let off = t.off and tgt = t.tgt in
  ws.stamp <- ws.stamp + 1;
  let stamp = ws.stamp in
  let pi = ws.pi and pi_stamp = ws.pi_stamp in
  let potential v =
    if Array.unsafe_get pi_stamp v = stamp then Array.unsafe_get pi v
    else begin
      let p = pot v in
      Array.unsafe_set pi v p;
      Array.unsafe_set pi_stamp v stamp;
      p
    end
  in
  let settles = ref 0 in
  Fun.protect ~finally:(fun () -> reset_ws ws) @@ fun () ->
  dist.(src) <- 0.0;
  touch_f ws src;
  Heap.push heap (potential src) src;
  let finished = ref false in
  while (not !finished) && not (Heap.is_empty heap) do
    let u = Heap.min_elt heap in
    Heap.drop_min heap;
    if not settled.(u) then begin
      settled.(u) <- true;
      incr settles;
      if u = dst then finished := true
      else begin
        (* Raw label, not the heap key: keys carry the potential, labels
           stay the same left-folds the plain runner accumulates. *)
        let d = Array.unsafe_get dist u in
        for k = Array.unsafe_get off u to Array.unsafe_get off (u + 1) - 1 do
          let v = Array.unsafe_get tgt k in
          if not (Array.unsafe_get settled v) then begin
            let w = weight k in
            if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
            let nd = d +. w in
            if nd < Array.unsafe_get dist v then begin
              Array.unsafe_set dist v nd;
              Array.unsafe_set parent v u;
              Heap.push heap (nd +. potential v) v;
              touch_f ws v
            end
          end
        done
      end
    end
  done;
  let result =
    if dist.(dst) = infinity then None
    else Some (dist.(dst), build_path parent ~src ~dst)
  in
  (result, !settles)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)

(* Below [plain_threshold] the goal-directed machinery costs more than
   it saves (landmark prep is [landmark_count] full sweeps); between the
   thresholds bidirectional wins without preprocessing; past
   [alt_threshold] the graph is big enough that landmark prep amortises
   after a handful of queries. *)
let plain_threshold = 1024
let alt_threshold = 8192

let choose t =
  if t.n <= plain_threshold then Plain
  else if prepared t then Alt
  else if t.n <= alt_threshold then Bidir
  else Alt

let run_stats ?runner t ~weight ~src ~dst =
  if src < 0 || src >= t.n then invalid_arg "Dijkstra: source out of range";
  if dst < 0 || dst >= t.n then
    invalid_arg "Dijkstra: destination out of range";
  if src = dst then (Some (0.0, [ src ]), Plain, 0)
  else begin
    let r = match runner with Some r -> r | None -> choose t in
    match r with
    | Plain ->
      let result, settles = run_plain t ~weight ~src ~dst in
      Rr_obs.Counter.incr c_plain_runs;
      Rr_obs.Counter.add c_plain_settled settles;
      (result, Plain, settles)
    | Bidir ->
      let result, settles = run_bidir t ~weight ~src ~dst in
      Rr_obs.Counter.incr c_bidir_runs;
      Rr_obs.Counter.add c_bidir_settled settles;
      (result, Bidir, settles)
    | Alt ->
      if not (prepared t) then prepare t;
      let pot =
        match potential t ~dst with
        | Some f -> f
        | None -> fun _ -> 0.0 (* unreachable: prepare always succeeds *)
      in
      let result, settles = run_alt t ~weight ~pot ~src ~dst in
      Rr_obs.Counter.incr c_alt_runs;
      Rr_obs.Counter.add c_alt_settled settles;
      (result, Alt, settles)
  end

let run ?runner t ~weight ~src ~dst =
  let result, _, _ = run_stats ?runner t ~weight ~src ~dst in
  result

let runner_name = function Plain -> "plain" | Bidir -> "bidir" | Alt -> "alt"
