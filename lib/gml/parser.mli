(** Recursive-descent parser for GML documents. *)

exception Error of string
(** Raised on syntactically invalid documents. *)

val parse : string -> Ast.t
(** Parse GML text into a document. Raises {!Error} or
    {!Lexer.Error}. *)

val parse_file : string -> Ast.t
(** Read and parse a file. *)
