(** Bit-risk miles (Definition 1 / Eq. 1).

    For a path [p = p1 ... pK] between nodes [i = p1] and [j = pK]:
    [r_ij(p) = sum_{x=2..K} (d(p_x, p_{x-1})
               + kappa_ij * (lambda_h * o_h(p_x) + lambda_f * o_f(p_x)))]. *)

val bit_miles : Env.t -> int list -> float
(** Geographic length of a node path (the Level-3 "bit-miles"). *)

val bit_risk_miles : Env.t -> int list -> float
(** Eq. 1 on a node path; [kappa_ij] is taken from the path's endpoints.
    Returns 0 for paths shorter than two nodes. *)

val bit_risk_miles_kappa : Env.t -> kappa:float -> int list -> float
(** Eq. 1 with an explicit impact factor (pair-independent analyses). *)

val path_risk : Env.t -> int list -> float
(** The pure risk term [sum_{x=2..K} node_risk(p_x)] (unscaled by
    kappa). *)

(** {1 Term-level evaluation}

    Eq. 1 broken into its per-arc ingredients for attribution. The
    decomposition is exact: [term_weight ~kappa t] is bitwise equal to
    {!Env.edge_weight} on the same arc, and [terms_total ~kappa (terms
    env p)] is bitwise equal to {!bit_risk_miles_kappa} (both are the
    same left fold over the same per-arc values). *)

type term = {
  tail : int;  (** arc tail [p_{x-1}] *)
  head : int;  (** arc head [p_x] — the node whose risk is charged *)
  miles : float;  (** [d(p_x, p_{x-1})] *)
  hist : float;  (** [lambda_h * risk_scale * o_h(p_x)] *)
  fcst : float;  (** [lambda_f * o_f(p_x)] *)
}

val term : Env.t -> int -> int -> term
(** The decomposed weight of one directed arc. *)

val terms : Env.t -> int list -> term list
(** One term per hop of a node path, in path order. *)

val term_weight : kappa:float -> term -> float
(** [miles + kappa * (hist + fcst)] — bitwise {!Env.edge_weight}. *)

val terms_total : kappa:float -> term list -> float
(** Left fold of {!term_weight} from 0 — bitwise
    {!bit_risk_miles_kappa} when applied to [terms env path]. *)
