type point = {
  network : string;
  result : Riskroute.Ratios.result;
}

let default_pair_cap = 1200

let default_spec =
  Rr_engine.Spec.make ~networks:Rr_engine.Spec.Interdomain
    ~pair_cap:default_pair_cap ()

let compute_uncached ctx ~pair_cap =
  let merged, env = Rr_engine.Context.interdomain ctx in
  let trees = Rr_engine.Context.dist_trees ctx env in
  let peering = Riskroute.Interdomain.peering merged in
  let nets = peering.Rr_topology.Peering.nets in
  let dests = Riskroute.Interdomain.regional_nodes merged in
  List.filter_map
    (fun i ->
      match nets.(i).Rr_topology.Net.tier with
      | Rr_topology.Net.Tier1 -> None
      | Rr_topology.Net.Regional ->
        let sources = Riskroute.Interdomain.net_nodes merged i in
        let result = Riskroute.Ratios.between ~pair_cap ~trees env ~sources ~dests in
        Some { network = nets.(i).Rr_topology.Net.name; result })
    (Rr_util.Listx.range 0 (Array.length nets))

(* Table 3 re-reads Fig 8's points, so results are memoised per
   (context, pair_cap) — contexts compared physically. *)
let cache : ((Rr_engine.Context.t * int) * point list) list ref = ref []

let compute ctx (spec : Rr_engine.Spec.t) =
  let pair_cap = Rr_engine.Spec.pair_cap ~default:default_pair_cap spec in
  match
    List.find_opt (fun ((c, cap), _) -> c == ctx && cap = pair_cap) !cache
  with
  | Some (_, points) -> points
  | None ->
    let points = compute_uncached ctx ~pair_cap in
    cache := ((ctx, pair_cap), points) :: !cache;
    points

let run ctx ppf =
  Format.fprintf ppf
    "Fig 8: interdomain RiskRoute — regional networks, lambda_h = 1e5@.";
  Format.fprintf ppf "%-18s %14s %14s %8s@." "Network" "Distance ratio"
    "Risk ratio" "Pairs";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-18s %14.3f %14.3f %8d@." p.network
        p.result.Riskroute.Ratios.distance_increase
        p.result.Riskroute.Ratios.risk_reduction p.result.Riskroute.Ratios.pairs)
    (compute ctx default_spec)
