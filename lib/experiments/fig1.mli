(** Fig. 1: geographic placement of Tier-1 and regional infrastructure
    (PoP locations and links), rendered as ASCII density maps plus
    corpus summary statistics. *)

val run : Rr_engine.Context.t -> Format.formatter -> unit

val tier1_pop_total : Rr_engine.Context.t -> int
(** 354 in the paper. *)

val regional_pop_total : Rr_engine.Context.t -> int
(** 455 in the paper. *)
