(** A Point of Presence: the unit of physical infrastructure in the paper.

    PoP ids are dense indices [0 .. n-1] within their network and double
    as graph node ids. *)

type t = {
  id : int;
  name : string;  (** e.g. ["Houston, TX"] or ["Houston, TX (2)"] for a second metro PoP *)
  city : string;
  state : string;
  coord : Rr_geo.Coord.t;
}

val make :
  id:int -> city:string -> state:string -> ?metro_index:int ->
  Rr_geo.Coord.t -> t
(** [metro_index] greater than 1 marks additional PoPs in the same metro
    and is reflected in {!field-name}. *)

val pp : Format.formatter -> t -> unit
