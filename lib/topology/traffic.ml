type t = {
  demand : float array array;
  total : float;
}

let gravity ?(alpha = 1.0) ?(total_gbps = 1000.0) ~populations net =
  let n = Net.pop_count net in
  if Array.length populations <> n then
    invalid_arg "Traffic.gravity: population length mismatch";
  if total_gbps <= 0.0 then invalid_arg "Traffic.gravity: non-positive load";
  let raw =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0.0
            else begin
              let d = Float.max 1.0 (Net.link_miles net i j) in
              populations.(i) *. populations.(j) /. (d ** alpha)
            end))
  in
  let raw_total =
    Array.fold_left
      (fun acc row -> acc +. Rr_util.Arrayx.fsum row)
      0.0 raw
  in
  let scale = if raw_total > 0.0 then total_gbps /. raw_total else 0.0 in
  {
    demand = Array.map (Array.map (fun v -> v *. scale)) raw;
    total = (if raw_total > 0.0 then total_gbps else 0.0);
  }

let demand t i j = t.demand.(i).(j)

let total t = t.total

let top_flows t n =
  let flows = ref [] in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> if v > 0.0 then flows := (i, j, v) :: !flows) row)
    t.demand;
  List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a) !flows
  |> Rr_util.Listx.take n

let pair_weights t pairs = Array.map (fun (i, j) -> t.demand.(i).(j)) pairs
