(* Envvar — the canonical table of RISKROUTE_* environment variables.

   Every knob the process reads from the environment is declared here,
   once, with its default and a one-line description; call sites fetch
   values through {!raw} / {!trimmed} instead of [Sys.getenv_opt] so the
   `riskroute env` subcommand (and the README table) can never drift
   from what the code actually consumes. Parsing and invalid-value
   warnings stay at the call sites — each variable has its own
   semantics — this module only owns the namespace.

   Deliberately dependency-free (not even the rest of Rr_obs): the
   telemetry init block itself reads variables through this table. *)

type t = {
  name : string;  (** the environment variable, e.g. "RISKROUTE_DOMAINS" *)
  default : string;  (** human-readable effective default when unset *)
  doc : string;  (** one-line effect description *)
}

let v name default doc = { name; default; doc }

let domains =
  v "RISKROUTE_DOMAINS" "Domain.recommended_domain_count ()"
    "pool size for parallel sweeps (positive integer)"

let tree_cache =
  v "RISKROUTE_TREE_CACHE" "4096"
    "shortest-path-tree cache capacity per engine context (0 disables)"

let repair_frontier =
  v "RISKROUTE_REPAIR_FRONTIER" "0.25"
    "incremental-SSSP dirty-frontier fallback threshold, fraction of nodes (0-1]"

let replay_pairs =
  v "RISKROUTE_REPLAY_PAIRS" "8"
    "flow pairs tracked per storm replay (positive integer)"

let replay_ticks =
  v "RISKROUTE_REPLAY_TICKS" "all advisories"
    "cap on advisory ticks per storm replay (positive integer)"

let telemetry =
  v "RISKROUTE_TELEMETRY" "unset (off)"
    "enable telemetry; dump on exit (- / stderr / *.prom / file path)"

let trace =
  v "RISKROUTE_TRACE" "unset (off)"
    "enable telemetry; write a Chrome trace-event JSON on exit"

let series =
  v "RISKROUTE_SERIES" "unset (off)"
    "enable the time-series sampler; dump the sample ring on exit"

let sample_period =
  v "RISKROUTE_SAMPLE_PERIOD" "1.0"
    "sampling period in seconds for the series ring (positive float)"

let live =
  v "RISKROUTE_LIVE" "unset (off)"
    "start the live HTTP endpoint on the given port (0 = ephemeral)"

let log =
  v "RISKROUTE_LOG" "unset (warnings as plain text)"
    "log level (debug/info/warn/error); switches stderr to JSON lines"

let flight =
  v "RISKROUTE_FLIGHT" "per-pid file under the temp dir"
    "path for flight-recorder dumps on SIGUSR1 / crash"

let flight_cap =
  v "RISKROUTE_FLIGHT_CAP" "512"
    "flight ring capacity per domain (0 disables recording)"

let stall_deadline =
  v "RISKROUTE_STALL_DEADLINE" "60"
    "seconds before an open span marks /healthz degraded"

(* README-table order: execution knobs first, then observability. *)
let all =
  [
    domains;
    tree_cache;
    repair_frontier;
    replay_pairs;
    replay_ticks;
    telemetry;
    trace;
    series;
    sample_period;
    live;
    log;
    flight;
    flight_cap;
    stall_deadline;
  ]

let raw var = Sys.getenv_opt var.name

(* Unset and set-but-blank are the same "leave the default" gesture
   everywhere in this codebase; [trimmed] encodes that. *)
let trimmed var =
  match raw var with
  | None -> None
  | Some s ->
    let s = String.trim s in
    if s = "" then None else Some s
