(** Gaussian kernel on geographic distance.

    The paper (Eq. 2) uses [K(z) = (1 / 2pi) exp(-z^T z / 2)] over
    lat/lon offsets scaled by the bandwidth. We work directly with
    great-circle distance in miles, i.e. an isotropic 2D Gaussian with
    standard deviation [bandwidth] miles, normalised on the plane —
    accurate because every bandwidth in Table 1 is tiny relative to the
    Earth's radius. *)

val density : bandwidth:float -> dist_miles:float -> float
(** [1 / (2 pi h^2) * exp (-d^2 / 2 h^2)] — planar 2D Gaussian density
    (per square mile) at distance [d] for bandwidth [h > 0]. *)

val log_density : bandwidth:float -> dist_miles:float -> float
(** Log of {!density} (avoids underflow at large distances). *)

val support_miles : bandwidth:float -> float
(** Radius beyond which the kernel is treated as zero by the rasterised
    evaluator (4 bandwidths: mass beyond it is < 4e-4). *)
