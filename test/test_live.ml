(* The live observability plane: pure routing and rendering, golden
   responses over a real listener on an ephemeral port, and the
   span-stall watchdog driven through the swappable clock. *)

let with_telemetry f =
  Rr_obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Rr_obs.set_enabled false) f

(* Every listener test stops the server (and re-disables recording,
   which [Rr_live.start] turns on) even when an assertion fails. *)
let with_server f =
  match Rr_live.start ~port:0 () with
  | Error msg -> Alcotest.failf "start failed: %s" msg
  | Ok port ->
    Fun.protect
      ~finally:(fun () ->
        Rr_live.stop ();
        Rr_obs.set_enabled false)
      (fun () -> f port)

(* A minimal blocking HTTP client: one GET, read to EOF, split the
   status line, headers and body apart. *)
let http_get ?(request = fun path -> "GET " ^ path ^ " HTTP/1.1\r\n\r\n")
    port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with _ -> ())
  @@ fun () ->
  Unix.connect sock
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  let req = request path in
  ignore (Unix.write_substring sock req 0 (String.length req));
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read sock chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      drain ()
  in
  drain ();
  let raw = Buffer.contents b in
  let header_end =
    match String.index_opt raw '\r' with
    | None -> Alcotest.failf "no CRLF in response: %S" raw
    | Some _ -> (
      let rec find i =
        if i + 4 > String.length raw then
          Alcotest.failf "no header terminator in response: %S" raw
        else if String.sub raw i 4 = "\r\n\r\n" then i
        else find (i + 1)
      in
      find 0)
  in
  let head = String.sub raw 0 header_end in
  let body =
    String.sub raw (header_end + 4) (String.length raw - header_end - 4)
  in
  let lines = String.split_on_char '\n' head in
  let status_line = String.trim (List.hd lines) in
  let status =
    match String.split_on_char ' ' status_line with
    | _ :: code :: _ -> int_of_string code
    | _ -> Alcotest.failf "bad status line: %S" status_line
  in
  let headers =
    List.filter_map
      (fun l ->
        match String.index_opt l ':' with
        | Some i ->
          Some
            ( String.lowercase_ascii (String.sub l 0 i),
              String.trim (String.sub l (i + 1) (String.length l - i - 1)) )
        | None -> None)
      (List.tl lines)
  in
  (status, headers, body)

let header name headers =
  match List.assoc_opt name headers with
  | Some v -> v
  | None -> Alcotest.failf "response has no %s header" name

let json_of body =
  match Rr_perf.Json.parse body with
  | Ok j -> j
  | Error e -> Alcotest.failf "body is not valid JSON: %s\n%s" e body

let json_str key j =
  match Option.bind (Rr_perf.Json.member key j) Rr_perf.Json.to_str with
  | Some s -> s
  | None -> Alcotest.failf "JSON has no string %S" key

let json_int key j =
  match Option.bind (Rr_perf.Json.member key j) Rr_perf.Json.to_int with
  | Some n -> n
  | None -> Alcotest.failf "JSON has no int %S" key

(* --- pure routing core --- *)

let test_handle_routing () =
  with_telemetry @@ fun () ->
  let check_status path status =
    Alcotest.(check int) path status (Rr_live.handle path).Rr_live.status
  in
  check_status "/" 200;
  check_status "/metrics" 200;
  check_status "/healthz" 200;
  check_status "/stats" 200;
  check_status "/flight" 200;
  check_status "/series" 200;
  check_status "/nope" 404;
  (* /explain with no provider registered is a client error, not a
     crash: the default provider explains how to get one. *)
  check_status "/explain?net=Level3&src=Houston&dst=Boston" 400;
  (* Query strings are ignored, not 404ed. *)
  check_status "/metrics?refresh=1" 200;
  Alcotest.(check string) "metrics content type"
    "text/plain; version=0.0.4; charset=utf-8"
    (Rr_live.handle "/metrics").Rr_live.content_type

let test_render_golden () =
  let r =
    {
      Rr_live.status = 200;
      content_type = "text/plain";
      headers = [];
      body = "hi\n";
    }
  in
  Alcotest.(check string) "rendered bytes"
    "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 3\r\n\
     Connection: close\r\n\r\nhi\n"
    (Rr_live.render r);
  (* Extra headers slot in between Content-Type and Content-Length. *)
  Alcotest.(check string) "extra headers rendered"
    "HTTP/1.1 405 Method Not Allowed\r\nContent-Type: text/plain\r\n\
     Allow: GET\r\nContent-Length: 3\r\nConnection: close\r\n\r\nno\n"
    (Rr_live.render
       {
         Rr_live.status = 405;
         content_type = "text/plain";
         headers = [ ("Allow", "GET") ];
         body = "no\n";
       })

let test_stats_provider () =
  with_telemetry @@ fun () ->
  let golden = "{\"env\": {\"hits\": 3}}\n" in
  Rr_live.set_stats_provider (fun () -> golden);
  Alcotest.(check string) "provider body served verbatim" golden
    (Rr_live.handle "/stats").Rr_live.body;
  Rr_live.set_stats_provider (fun () -> failwith "cache exploded");
  let r = Rr_live.handle "/stats" in
  Alcotest.(check int) "raising provider is a 500" 500 r.Rr_live.status;
  Alcotest.(check bool) "error body names the exception" true
    (json_str "error" (json_of r.Rr_live.body) <> "");
  Rr_live.set_stats_provider (fun () -> golden)

(* --- query decoding and the /explain provider --- *)

let test_parse_query () =
  let pairs = Alcotest.(list (pair string string)) in
  Alcotest.(check pairs) "empty query" [] (Rr_live.parse_query "");
  Alcotest.(check pairs) "plain pairs"
    [ ("net", "Level3"); ("src", "Houston"); ("dst", "Boston") ]
    (Rr_live.parse_query "net=Level3&src=Houston&dst=Boston");
  Alcotest.(check pairs) "plus and percent escapes decode"
    [ ("src", "New York"); ("q", "a&b=c") ]
    (Rr_live.parse_query "src=New+York&q=a%26b%3Dc");
  Alcotest.(check pairs) "bare key becomes empty value" [ ("json", "") ]
    (Rr_live.parse_query "json");
  Alcotest.(check pairs) "malformed escape kept verbatim"
    [ ("x", "%zz"); ("y", "%4") ]
    (Rr_live.parse_query "x=%zz&y=%4");
  Alcotest.(check pairs) "empty segments dropped" [ ("a", "1") ]
    (Rr_live.parse_query "&a=1&")

let test_explain_provider () =
  with_telemetry @@ fun () ->
  Fun.protect ~finally:(fun () ->
      Rr_live.set_explain_provider (fun _ -> Error "no explain provider"))
  @@ fun () ->
  (* The handler decodes the query string and hands the provider the
     parsed pairs; an Ok body is served verbatim as JSON. *)
  let seen = ref [] in
  Rr_live.set_explain_provider (fun params ->
      seen := params;
      Ok "{\"schema\": 1}\n");
  let r = Rr_live.handle "/explain?net=Level3&src=New+York&dst=Boston" in
  Alcotest.(check int) "ok status" 200 r.Rr_live.status;
  Alcotest.(check string) "json content type" "application/json"
    r.Rr_live.content_type;
  Alcotest.(check string) "provider body verbatim" "{\"schema\": 1}\n"
    r.Rr_live.body;
  Alcotest.(check (list (pair string string))) "decoded params delivered"
    [ ("net", "Level3"); ("src", "New York"); ("dst", "Boston") ]
    !seen;
  (* A provider Error is the client's fault: 400 with the message. *)
  Rr_live.set_explain_provider (fun _ -> Error "unknown network \"nope\"");
  let r = Rr_live.handle "/explain?net=nope" in
  Alcotest.(check int) "error status" 400 r.Rr_live.status;
  Alcotest.(check string) "error body names the cause"
    "unknown network \"nope\""
    (json_str "error" (json_of r.Rr_live.body));
  (* A raising provider is a server error, mirroring /stats. *)
  Rr_live.set_explain_provider (fun _ -> failwith "cache exploded");
  let r = Rr_live.handle "/explain?net=Level3" in
  Alcotest.(check int) "crash status" 500 r.Rr_live.status;
  Alcotest.(check bool) "crash body names the exception" true
    (json_str "error" (json_of r.Rr_live.body) <> "")

(* --- the listener --- *)

let test_listener_endpoints () =
  with_server @@ fun port ->
  Alcotest.(check bool) "running" true (Rr_live.running ());
  Alcotest.(check (option int)) "port" (Some port) (Rr_live.port ());
  (* /metrics: valid Prometheus exposition — every line is a comment or
     a riskroute_* sample. *)
  let status, headers, body = http_get port "/metrics" in
  Alcotest.(check int) "metrics status" 200 status;
  Alcotest.(check string) "metrics content type"
    "text/plain; version=0.0.4; charset=utf-8"
    (header "content-type" headers);
  Alcotest.(check string) "content length matches body"
    (string_of_int (String.length body))
    (header "content-length" headers);
  List.iter
    (fun line ->
      if
        String.length line > 0
        && line.[0] <> '#'
        && not
             (String.length line > 10 && String.sub line 0 10 = "riskroute_")
      then Alcotest.failf "unexpected metrics line: %S" line)
    (String.split_on_char '\n' body);
  Alcotest.(check bool) "serves the live request counter" true
    (List.exists
       (fun l ->
         String.length l > 23 && String.sub l 0 23 = "riskroute_live_requests")
       (String.split_on_char '\n' body));
  (* /healthz: fresh process, nothing stalled. *)
  let status, _, body = http_get port "/healthz" in
  Alcotest.(check int) "healthz status" 200 status;
  let j = json_of body in
  Alcotest.(check string) "healthz verdict" "ok" (json_str "status" j);
  Alcotest.(check int) "healthz pid" (Unix.getpid ()) (json_int "pid" j);
  (* Build identity: the git revision (or "unknown" outside a repo)
     and the schema-version table ride on every health probe. *)
  Alcotest.(check bool) "healthz git_rev present" true
    (json_str "git_rev" j <> "");
  let schemas =
    match Rr_perf.Json.member "schemas" j with
    | Some s -> s
    | None -> Alcotest.fail "healthz has no schemas object"
  in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "schemas.%s is a positive version" name)
        true
        (match
           Option.bind (Rr_perf.Json.member name schemas) Rr_perf.Json.to_int
         with
        | Some v -> v >= 1
        | None -> false))
    [ "flight"; "series"; "telemetry" ];
  (* /stats: golden body through the provider. *)
  let golden = "{\"env\": {\"hits\": 0, \"misses\": 0}}\n" in
  Rr_live.set_stats_provider (fun () -> golden);
  let status, headers, body = http_get port "/stats" in
  Alcotest.(check int) "stats status" 200 status;
  Alcotest.(check string) "stats content type" "application/json"
    (header "content-type" headers);
  Alcotest.(check string) "stats golden body" golden body;
  (* /flight: parseable JSON with the documented shape. *)
  let status, _, body = http_get port "/flight" in
  Alcotest.(check int) "flight status" 200 status;
  let j = json_of body in
  Alcotest.(check int) "flight schema" 1 (json_int "schema" j);
  Alcotest.(check bool) "flight has events array" true
    (Option.bind (Rr_perf.Json.member "events" j) Rr_perf.Json.to_arr
    <> None);
  (* /series: parseable JSON with the sampler-ring shape (the sampler
     thread is not running here, so the ring is merely empty). *)
  let status, headers, body = http_get port "/series" in
  Alcotest.(check int) "series status" 200 status;
  Alcotest.(check string) "series content type" "application/json"
    (header "content-type" headers);
  let j = json_of body in
  Alcotest.(check int) "series schema" 1 (json_int "schema" j);
  Alcotest.(check bool) "series has samples array" true
    (Option.bind (Rr_perf.Json.member "samples" j) Rr_perf.Json.to_arr
    <> None);
  (* The index names every endpoint, including /series. *)
  let _, _, body = http_get port "/" in
  let contains needle hay =
    let n = String.length needle and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "index lists /series" true (contains "/series" body);
  Alcotest.(check bool) "index lists /explain" true
    (contains "/explain" body);
  (* Unknown path and non-GET method. *)
  let status, _, _ = http_get port "/nope" in
  Alcotest.(check int) "404 for unknown path" 404 status;
  let status, headers, _ =
    http_get ~request:(fun p -> "POST " ^ p ^ " HTTP/1.1\r\n\r\n") port "/"
  in
  Alcotest.(check int) "405 for POST" 405 status;
  Alcotest.(check string) "405 advertises the allowed method" "GET"
    (header "allow" headers)

let test_listener_single_instance () =
  with_server @@ fun _port ->
  match Rr_live.start ~port:0 () with
  | Ok p -> Alcotest.failf "second start succeeded on port %d" p
  | Error msg ->
    Alcotest.(check bool) "error names the running server" true
      (String.length msg > 0)

let test_listener_stop () =
  (match Rr_live.start ~port:0 () with
  | Error msg -> Alcotest.failf "start failed: %s" msg
  | Ok _ -> ());
  Rr_live.stop ();
  Rr_obs.set_enabled false;
  Alcotest.(check bool) "not running after stop" false (Rr_live.running ());
  Alcotest.(check (option int)) "no port after stop" None (Rr_live.port ());
  (* Idempotent. *)
  Rr_live.stop ()

(* --- the watchdog --- *)

let test_stall_deadline_validation () =
  Alcotest.check_raises "zero deadline rejected"
    (Invalid_argument "Rr_live.set_stall_deadline: need a positive deadline")
    (fun () -> Rr_live.set_stall_deadline 0.0);
  Alcotest.check_raises "negative deadline rejected"
    (Invalid_argument "Rr_live.set_stall_deadline: need a positive deadline")
    (fun () -> Rr_live.set_stall_deadline (-3.0))

(* Drive degraded -> recovered with the swappable clock: a span that
   stays open past the deadline flips the verdict and is named in the
   body; closing it recovers. *)
let test_watchdog_transitions () =
  with_telemetry @@ fun () ->
  let restore_deadline = Rr_live.stall_deadline () in
  Fun.protect ~finally:(fun () ->
      Rr_obs.Clock.reset_source ();
      Rr_live.set_stall_deadline restore_deadline)
  @@ fun () ->
  let t = ref (Rr_obs.Clock.monotonic ()) in
  Rr_obs.Clock.set_source (fun () -> !t);
  Rr_live.set_stall_deadline 5.0;
  Alcotest.(check (float 0.0)) "deadline readable" 5.0
    (Rr_live.stall_deadline ());
  Rr_obs.with_span "live.watchdog_probe" (fun () ->
      let healthy, body = Rr_live.healthz () in
      Alcotest.(check bool) "fresh span is healthy" true healthy;
      Alcotest.(check string) "fresh verdict" "ok"
        (json_str "status" (json_of body));
      (* Sit inside the span past the deadline. *)
      t := !t +. 10.0;
      let healthy, body = Rr_live.healthz () in
      Alcotest.(check bool) "stalled span degrades" false healthy;
      let j = json_of body in
      Alcotest.(check string) "degraded verdict" "degraded"
        (json_str "status" j);
      let stalled =
        match
          Option.bind (Rr_perf.Json.member "stalled" j) Rr_perf.Json.to_arr
        with
        | Some l -> l
        | None -> Alcotest.fail "no stalled array"
      in
      Alcotest.(check bool) "stalled names the span" true
        (List.exists
           (fun e ->
             Option.bind (Rr_perf.Json.member "name" e) Rr_perf.Json.to_str
             = Some "live.watchdog_probe")
           stalled);
      (* The degraded verdict rides out over HTTP as a 503. *)
      Alcotest.(check int) "healthz handler returns 503" 503
        (Rr_live.handle "/healthz").Rr_live.status);
  (* Span closed: recovered, even though the clock has not moved. *)
  let healthy, body = Rr_live.healthz () in
  Alcotest.(check bool) "closing the span recovers" true healthy;
  Alcotest.(check string) "recovered verdict" "ok"
    (json_str "status" (json_of body))

let () =
  Alcotest.run "live"
    [
      ( "routing",
        [
          Alcotest.test_case "path dispatch" `Quick test_handle_routing;
          Alcotest.test_case "render golden bytes" `Quick test_render_golden;
          Alcotest.test_case "stats provider hook" `Quick test_stats_provider;
          Alcotest.test_case "query decoding" `Quick test_parse_query;
          Alcotest.test_case "explain provider hook" `Quick
            test_explain_provider;
        ] );
      ( "listener",
        [
          Alcotest.test_case "endpoints over a real socket" `Quick
            test_listener_endpoints;
          Alcotest.test_case "single instance" `Quick
            test_listener_single_instance;
          Alcotest.test_case "stop is clean and idempotent" `Quick
            test_listener_stop;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "deadline validation" `Quick
            test_stall_deadline_validation;
          Alcotest.test_case "degraded and recovered transitions" `Quick
            test_watchdog_transitions;
        ] );
    ]
