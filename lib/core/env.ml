type t = {
  graph : Rr_graph.Graph.t;
  coords : Rr_geo.Coord.t array;
  params : Params.t;
  impact : float array;
  historical : float array;
  forecast : float array;
  node_risk : float array;
  dist_cache : (int, float) Hashtbl.t;
}

let compute_node_risk params historical forecast =
  Array.init (Array.length historical) (fun i ->
      (params.Params.lambda_h *. params.Params.risk_scale *. historical.(i))
      +. (params.Params.lambda_f *. forecast.(i)))

let make ?(params = Params.default) ~graph ~coords ~impact ~historical
    ?forecast () =
  Params.validate params;
  let n = Rr_graph.Graph.node_count graph in
  let forecast = match forecast with Some f -> f | None -> Array.make n 0.0 in
  if
    Array.length coords <> n || Array.length impact <> n
    || Array.length historical <> n
    || Array.length forecast <> n
  then invalid_arg "Env.make: array lengths must match the node count";
  {
    graph;
    coords;
    params;
    impact;
    historical;
    forecast;
    node_risk = compute_node_risk params historical forecast;
    dist_cache = Hashtbl.create (4 * max 16 (Rr_graph.Graph.edge_count graph));
  }

let forecast_of_advisory params coords advisory =
  Array.map
    (fun coord ->
      Rr_forecast.Riskfield.risk_at
        ~rho_tropical:params.Params.rho_tropical
        ~rho_hurricane:params.Params.rho_hurricane advisory coord)
    coords

let of_net ?(params = Params.default) ?riskmap ?advisory (net : Rr_topology.Net.t) =
  let riskmap =
    match riskmap with Some r -> r | None -> Rr_disaster.Riskmap.shared ()
  in
  let coords =
    Array.map (fun (p : Rr_topology.Pop.t) -> p.Rr_topology.Pop.coord)
      net.Rr_topology.Net.pops
  in
  let impact = Rr_census.Service.shared_fractions net in
  let historical = Rr_disaster.Riskmap.pop_risks riskmap net in
  let forecast =
    Option.map (forecast_of_advisory params coords) advisory
  in
  make ~params ~graph:net.Rr_topology.Net.graph ~coords ~impact ~historical
    ?forecast ()

let with_forecast t forecast =
  if Array.length forecast <> Array.length t.forecast then
    invalid_arg "Env.with_forecast: length mismatch";
  {
    t with
    forecast;
    node_risk = compute_node_risk t.params t.historical forecast;
  }

let with_advisory t advisory =
  match advisory with
  | None -> with_forecast t (Array.make (Array.length t.forecast) 0.0)
  | Some adv -> with_forecast t (forecast_of_advisory t.params t.coords adv)

let with_params t params =
  Params.validate params;
  { t with params; node_risk = compute_node_risk params t.historical t.forecast }

let with_graph t graph =
  if Rr_graph.Graph.node_count graph <> Array.length t.coords then
    invalid_arg "Env.with_graph: node-count mismatch";
  { t with graph }

let graph t = t.graph

let coords t = t.coords

let params t = t.params

let impact t = t.impact

let historical t = t.historical

let forecast t = t.forecast

let node_risk t v = t.node_risk.(v)

let node_count t = Array.length t.coords

let link_miles t u v =
  let n = Array.length t.coords in
  let key = if u < v then (u * n) + v else (v * n) + u in
  match Hashtbl.find_opt t.dist_cache key with
  | Some d -> d
  | None ->
    let d = Rr_geo.Distance.miles t.coords.(u) t.coords.(v) in
    Hashtbl.add t.dist_cache key d;
    d

let kappa t i j = t.impact.(i) +. t.impact.(j)

let mean_kappa t =
  let n = float_of_int (Array.length t.impact) in
  2.0 *. Rr_util.Arrayx.fsum t.impact /. n

let edge_weight t ~kappa u v = link_miles t u v +. (kappa *. t.node_risk.(v))

let distance_weight t u v = link_miles t u v
